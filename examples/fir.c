/* The paper's running example: a 5-tap FIR filter (Figure 3), sized to
   a 16-iteration stream so every unroll factor in the default tune grid
   (1, 2, 4, 8) divides the trip count. `roccc tune examples/fir`
   searches its unroll x bus x clock-target design space. */
void fir(int A[20], int C[16]) {
  int i;
  for (i = 0; i < 16; i = i + 1) {
    C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
  }
}
