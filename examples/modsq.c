/* Modular squaring over the Mersenne prime M = 2^31 - 1: the classic
 * wide-arithmetic streaming kernel (modular exponentiation, Lehmer-style
 * PRNGs, number-theoretic transforms).
 *
 * The 62-bit product x*x is too wide for a single-cycle multiplier, so
 * the compiler decomposes it into a pinned multi-stage region (partial
 * products + carry-save compression tree); the Mersenne reduction then
 * folds the high bits back with two shift-and-add passes and one
 * conditional subtract -- no divide.
 */
void modsq(uint32 A[16], uint32 C[16]) {
  int i;
  for (i = 0; i < 16; i++) {
    uint64 x, p, r;
    x = A[i] & 2147483647;
    p = x * x;
    r = (p & 2147483647) + (p >> 31);
    r = (r & 2147483647) + (r >> 31);
    if (r >= 2147483647) { r = r - 2147483647; }
    C[i] = r;
  }
}
