/* Two-kernel streaming gallery network (process networks): the paper's
   5-tap FIR feeds a 3-tap smoothing kernel through a sized FIFO channel
   instead of a round trip through off-chip memory.

     roccc compile examples/stream --entry firsmooth

   compiles both stages (cached per kernel), sizes the channel from the
   producer/consumer rates, co-simulates the two engines cycle by cycle
   with backpressure, and emits the network VHDL top level. */
void fir(int A[20], int C[16]) {
  int i;
  for (i = 0; i < 16; i = i + 1) {
    C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
  }
}

void smooth(int D[16], int E[14]) {
  int i;
  for (i = 0; i < 14; i = i + 1) {
    E[i] = (D[i] + 2*D[i+1] + D[i+2]) >> 2;
  }
}

pipeline firsmooth = fir -> smooth;
