(* The 8-point DCT (paper §5): full unrolling turns the transform into a
   block data path that produces all eight outputs every clock — eight times
   the Xilinx IP's throughput at a somewhat lower clock.

     dune exec examples/dct_pipeline.exe
*)

module Driver = Roccc_core.Driver
module Kernels = Roccc_core.Kernels
module Engine = Roccc_hw.Engine

let () =
  print_endline "== 1-D 8-point DCT, fully unrolled ==\n";
  print_endline Kernels.dct_source;
  let c = Kernels.compile Kernels.dct in
  print_endline (Driver.report c);
  Printf.printf "outputs per cycle: %d (the Xilinx IP produces 1)\n\n"
    (List.length c.Driver.kernel.Roccc_hir.Kernel.outputs);

  (* transform a ramp block *)
  let x = Array.init 8 (fun i -> Int64.of_int ((i * 16) - 64)) in
  let r = Driver.simulate ~arrays:[ "X", x ] c in
  let y = List.assoc "Y" r.Engine.output_arrays in
  print_endline "input  X:";
  Array.iter (fun v -> Printf.printf " %6Ld" v) x;
  print_endline "\noutput Y (scaled by 32):";
  Array.iter (fun v -> Printf.printf " %6Ld" v) y;
  Printf.printf "\n\nall 8 outputs in %d cycles (latency %d)\n"
    r.Engine.cycles r.Engine.pipeline_latency;

  (* a DC-only input produces a DC-only spectrum: quick sanity check *)
  let dc = Array.make 8 100L in
  let r2 = Driver.simulate ~arrays:[ "X", dc ] c in
  let y2 = List.assoc "Y" r2.Engine.output_arrays in
  Printf.printf "DC input: Y0 = %Ld, other bins: %s\n" y2.(0)
    (if Array.for_all (fun v -> Int64.equal v 0L) (Array.sub y2 1 7) then
       "all zero (as expected)"
     else "NONZERO (unexpected)");
  match Driver.verify ~arrays:[ "X", x ] c with
  | [] -> print_endline "co-simulation: hardware = software"
  | diffs ->
    List.iter print_endline diffs;
    exit 1
