examples/quickstart.ml: Array Int64 List Printf Roccc_core Roccc_hw Roccc_vhdl Str String
