examples/accumulator_feedback.ml: Array Int64 List Printf Roccc_cfront Roccc_core Roccc_datapath Roccc_hir Roccc_hw
