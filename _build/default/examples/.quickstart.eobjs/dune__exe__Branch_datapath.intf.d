examples/branch_datapath.mli:
