examples/wavelet_engine.ml: Array Int64 List Printf Roccc_core Roccc_datapath Roccc_fpga Roccc_hw
