examples/dct_pipeline.ml: Array Int64 List Printf Roccc_core Roccc_hir Roccc_hw
