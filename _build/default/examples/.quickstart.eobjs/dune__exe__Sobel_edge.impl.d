examples/sobel_edge.ml: Array Int64 List Printf Roccc_core Roccc_hw
