examples/wavelet_engine.mli:
