examples/accumulator_feedback.mli:
