examples/branch_datapath.ml: Int64 List Printf Roccc_core Roccc_datapath Roccc_hw Roccc_vhdl
