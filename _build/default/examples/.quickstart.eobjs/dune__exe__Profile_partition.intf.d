examples/profile_partition.mli:
