examples/profile_partition.ml: Array Int64 List Printf Roccc_core Roccc_fpga Roccc_hw
