examples/quickstart.mli:
