(* The 2-D (5,3) wavelet engine (paper §5, Table 1's last row): the
   standard lossless JPEG2000 transform, built from the row-pass kernel and
   the column-pass kernel. Each pass is compiled to its own circuit with a
   2-D smart buffer (line buffers); the host rearranges data between the
   passes, exactly as the off-chip engine of Figure 2 would.

     dune exec examples/wavelet_engine.exe
*)

module Driver = Roccc_core.Driver
module Kernels = Roccc_core.Kernels
module Engine = Roccc_hw.Engine
module Area = Roccc_fpga.Area

let rows = 16 and cols = 34
(* the row kernel consumes [16][34]; the column kernel consumes [34][16] *)

let () =
  print_endline "== the (5,3) wavelet engine: row pass + column pass ==\n";
  let row_c = Kernels.compile Kernels.wavelet in
  let col_c = Kernels.compile Kernels.wavelet_cols in
  Printf.printf "row pass   : %4d slices @ %6.1f MHz, latency %d\n"
    row_c.Driver.area.Area.slices row_c.Driver.area.Area.clock_mhz
    (Roccc_datapath.Pipeline.latency row_c.Driver.pipeline);
  Printf.printf "column pass: %4d slices @ %6.1f MHz, latency %d\n"
    col_c.Driver.area.Area.slices col_c.Driver.area.Area.clock_mhz
    (Roccc_datapath.Pipeline.latency col_c.Driver.pipeline);
  let total =
    row_c.Driver.area.Area.slices + col_c.Driver.area.Area.slices
  in
  Printf.printf
    "engine: %d slices = %.1f%% of the xc2v2000 (paper's handwritten \
     engine: 1464 slices)\n\n"
    total
    (100.0 *. float_of_int total /. float_of_int Area.xc2v2000_slices);

  (* an input image with structure *)
  let image =
    Array.init (rows * cols) (fun i ->
        let r = i / cols and c = i mod cols in
        Int64.of_int (50 + (30 * ((r / 4) mod 2)) + (20 * ((c / 6) mod 2))))
  in

  (* pass 1: rows *)
  let r1 = Driver.simulate ~arrays:[ "X", image ] row_c in
  let s_plane = List.assoc "S" r1.Engine.output_arrays in
  Printf.printf "row pass : %d cycles, %d windows, reuse %.2fx\n"
    r1.Engine.cycles r1.Engine.launches r1.Engine.reuse_ratio;

  (* host-side rearrangement: transpose the approximation plane into the
     column kernel's [34][16] layout (Figure 2's off-chip engine step) *)
  let transposed = Array.make (cols * rows) 0L in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      transposed.((c * rows) + r) <- s_plane.((r * cols) + c)
    done
  done;

  (* pass 2: columns *)
  let r2 = Driver.simulate ~arrays:[ "X", transposed ] col_c in
  Printf.printf "col pass : %d cycles, %d windows, reuse %.2fx\n\n"
    r2.Engine.cycles r2.Engine.launches r2.Engine.reuse_ratio;

  (* validate both passes against the C semantics *)
  (match
     ( Driver.verify ~arrays:[ "X", image ] row_c,
       Driver.verify ~arrays:[ "X", transposed ] col_c )
   with
  | [], [] -> print_endline "both passes verified: hardware = software"
  | d1, d2 ->
    List.iter print_endline (d1 @ d2);
    exit 1);

  (* the LL quadrant (approximation of approximations) should be smooth:
     print a downsampled view of the final S plane *)
  let ll = List.assoc "S" r2.Engine.output_arrays in
  print_endline "\nLL coefficients (every other even site):";
  for r = 1 to 7 do
    for c = 0 to 7 do
      Printf.printf " %5Ld" ll.((2 * r * rows) + (2 * c))
    done;
    print_newline ()
  done
