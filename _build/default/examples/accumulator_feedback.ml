(* The accumulator walk-through (paper Figures 4 and 7): how a loop-carried
   scalar becomes ROCCC_load_prev / ROCCC_store2next macros, then LPR/SNX
   opcodes with a feedback latch in the pipelined data path.

     dune exec examples/accumulator_feedback.exe
*)

module Driver = Roccc_core.Driver
module Kernel = Roccc_hir.Kernel

let source =
  "int sum = 0;\n\
   void acc(int A[32], int* out) {\n\
  \  int i;\n\
  \  for (i = 0; i < 32; i++) {\n\
  \    sum = sum + A[i];\n\
  \  }\n\
  \  *out = sum;\n\
   }\n"

let () =
  print_endline "== an accumulator in C (Figure 4) ==\n";
  let c = Driver.compile ~entry:"acc" source in
  let k = c.Driver.kernel in
  print_endline "(a) original:";
  print_endline (Roccc_cfront.Pretty.func_to_string k.Kernel.original);
  print_endline "\n(b) after scalar replacement:";
  print_endline (Roccc_cfront.Pretty.func_to_string k.Kernel.transformed);
  print_endline "\n(c) data-path function with feedback macros:";
  print_endline (Roccc_cfront.Pretty.func_to_string k.Kernel.dp);
  print_endline "\n== the data path (Figure 7) ==\n";
  print_endline (Roccc_datapath.Graph.to_string c.Driver.dp);
  print_endline (Roccc_datapath.Pipeline.describe c.Driver.pipeline);
  (* the SNX latch means one addition per cycle at initiation interval 1 *)
  let arrays = [ "A", Array.init 32 (fun i -> Int64.of_int (i + 1)) ] in
  let r = Driver.simulate ~arrays c in
  Printf.printf "sum of 1..32 = %Ld in %d cycles (II = 1)\n"
    (List.assoc "out" r.Roccc_hw.Engine.scalar_outputs)
    r.Roccc_hw.Engine.cycles;
  match Driver.verify ~arrays c with
  | [] -> print_endline "co-simulation: hardware = software"
  | diffs ->
    List.iter print_endline diffs;
    exit 1
