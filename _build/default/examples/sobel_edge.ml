(* Sobel edge magnitude over an image — the sliding-window image-processing
   workload the paper's introduction motivates ("image and signal
   processing", 2-D window operators that Streams-C could not express).

   A 3x3 window slides over a 16x16 image; the data path computes
   |Gx| + |Gy| per pixel. Demonstrates 2-D smart buffers (line buffers),
   per-element fetch, and hard mux nodes from the abs() branches.

     dune exec examples/sobel_edge.exe
*)

module Driver = Roccc_core.Driver
module Engine = Roccc_hw.Engine

let source =
  "void sobel(uint8 P[16][16], uint12 E[14][14]) {\n\
  \  int r, c;\n\
  \  for (r = 0; r < 14; r++) {\n\
  \    for (c = 0; c < 14; c++) {\n\
  \      int gx, gy, ax, ay;\n\
  \      gx = P[r][c+2] + 2*P[r+1][c+2] + P[r+2][c+2]\n\
  \         - P[r][c]   - 2*P[r+1][c]   - P[r+2][c];\n\
  \      gy = P[r+2][c] + 2*P[r+2][c+1] + P[r+2][c+2]\n\
  \         - P[r][c]   - 2*P[r][c+1]   - P[r][c+2];\n\
  \      ax = gx;\n\
  \      if (gx < 0) { ax = -gx; }\n\
  \      ay = gy;\n\
  \      if (gy < 0) { ay = -gy; }\n\
  \      E[r][c] = ax + ay;\n\
  \    }\n\
  \  }\n\
   }\n"

let () =
  print_endline "== Sobel edge detector: 3x3 window over a 16x16 image ==\n";
  let compiled = Driver.compile ~entry:"sobel" source in
  print_endline (Driver.report compiled);

  (* a synthetic image: bright square on a dark background *)
  let image =
    Array.init 256 (fun i ->
        let r = i / 16 and c = i mod 16 in
        if r >= 5 && r < 11 && c >= 5 && c < 11 then 200L else 20L)
  in
  let r = Driver.simulate ~arrays:[ "P", image ] compiled in
  Printf.printf "cycles: %d for %d pixels (%d memory reads, reuse %.2fx)\n\n"
    r.Engine.cycles r.Engine.launches r.Engine.memory_reads r.Engine.reuse_ratio;
  (* render the edge map *)
  let e = List.assoc "E" r.Engine.output_arrays in
  print_endline "edge magnitude map (. = 0, + = weak, # = strong):";
  for row = 0 to 13 do
    for col = 0 to 13 do
      let v = Int64.to_int e.((row * 14) + col) in
      print_char (if v > 400 then '#' else if v > 0 then '+' else '.')
    done;
    print_newline ()
  done;
  match Driver.verify ~arrays:[ "P", image ] compiled with
  | [] -> print_endline "\nco-simulation: hardware = software"
  | diffs ->
    List.iter print_endline diffs;
    exit 1
