(* The alternative-branch walk-through (paper Figures 5 and 6): both sides
   of an if/else become parallel soft nodes; a hard mux node merges them in
   front of the common successor, and a hard pipe node carries live
   variables around the branch region.

     dune exec examples/branch_datapath.exe
*)

module Driver = Roccc_core.Driver
module Graph = Roccc_datapath.Graph

let source =
  "void if_else(int x1, int x2, int* x3, int* x4) {\n\
  \  int a, c;\n\
  \  c = x1 - x2;\n\
  \  if (c < x2)\n\
  \    a = x1 * x1;\n\
  \  else\n\
  \    a = x1 * x2 + 3;\n\
  \  c = c - a;\n\
  \  *x3 = c;\n\
  \  *x4 = a;\n\
  \  return;\n\
   }\n"

let () =
  print_endline "== an alternative branch in C (Figure 5) ==\n";
  print_endline source;
  let c = Driver.compile ~entry:"if_else" source in
  print_endline "== its data path (Figure 6) ==\n";
  print_endline (Graph.to_string c.Driver.dp);
  let soft, mux, pipe =
    List.fold_left
      (fun (s, m, p) (n : Graph.node) ->
        match n.Graph.node_kind with
        | Graph.Soft _ -> s + 1, m, p
        | Graph.Mux_node _ -> s, m + 1, p
        | Graph.Pipe_node -> s, m, p + 1
        | Graph.Entry_node | Graph.Exit_node -> s, m, p)
      (0, 0, 0) c.Driver.dp.Graph.nodes
  in
  Printf.printf
    "%d soft nodes (paper nodes 1-4), %d mux node (node 7), %d pipe node(s) \
     (node 6)\n\n"
    soft mux pipe;
  print_endline "DOT graph (render with graphviz):";
  print_endline (Graph.to_dot c.Driver.dp);
  (* both branches execute in hardware; the mux selects *)
  List.iter
    (fun (x1, x2) ->
      let scalars = [ "x1", Int64.of_int x1; "x2", Int64.of_int x2 ] in
      let r = Driver.simulate ~scalars c in
      Printf.printf "if_else(%4d, %4d) -> x3 = %6Ld, x4 = %6Ld\n" x1 x2
        (List.assoc "x3" r.Roccc_hw.Engine.scalar_outputs)
        (List.assoc "x4" r.Roccc_hw.Engine.scalar_outputs))
    [ 5, 3; 3, 5; -4, 10; 100, -100 ];
  print_endline "\ngenerated VHDL components (one per node):";
  List.iter
    (fun (u : Roccc_vhdl.Ast.design_unit) ->
      Printf.printf "  entity %s (%d ports)\n"
        u.Roccc_vhdl.Ast.unit_entity.Roccc_vhdl.Ast.entity_name
        (List.length u.Roccc_vhdl.Ast.unit_entity.Roccc_vhdl.Ast.entity_ports))
    c.Driver.design.Roccc_vhdl.Ast.units
