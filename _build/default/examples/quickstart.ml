(* Quickstart: compile a C kernel to VHDL, inspect the result, and run it
   on the cycle-accurate execution model.

     dune exec examples/quickstart.exe
*)

module Driver = Roccc_core.Driver

let source =
  "void fir(int8 A[32], int16 C[28]) {\n\
  \  int i;\n\
  \  for (i = 0; i < 28; i++) {\n\
  \    C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];\n\
  \  }\n\
   }\n"

let () =
  print_endline "== quickstart: a 5-tap FIR from C to VHDL ==\n";
  print_endline source;

  (* 1. compile *)
  let compiled = Driver.compile ~entry:"fir" source in
  print_endline (Driver.report compiled);

  (* 2. look at the generated VHDL (top entity only, for brevity) *)
  let vhdl = Roccc_vhdl.Ast.to_string compiled.Driver.design in
  let top_at =
    try Str.search_forward (Str.regexp_string "entity fir_dp is") vhdl 0
    with Not_found -> 0
  in
  print_endline "--- generated VHDL (top entity) ---";
  print_endline
    (String.sub vhdl top_at (min 700 (String.length vhdl - top_at)));
  print_endline "... (full design via: roccc compile fir.c -e fir -o out/)\n";

  (* 3. simulate on the execution model and check against the C semantics *)
  let arrays = [ "A", Array.init 32 (fun i -> Int64.of_int ((i * 5) - 64)) ] in
  let r = Driver.simulate ~arrays compiled in
  Printf.printf "simulated %d cycles; first outputs: %s\n"
    r.Roccc_hw.Engine.cycles
    (String.concat ", "
       (Array.to_list
          (Array.sub (List.assoc "C" r.Roccc_hw.Engine.output_arrays) 0 6)
       |> List.map Int64.to_string));
  match Driver.verify ~arrays compiled with
  | [] -> print_endline "co-simulation: hardware behaviour = software behaviour"
  | diffs ->
    print_endline "MISMATCH:";
    List.iter print_endline diffs;
    exit 1
