(* Hardware/software partitioning with the profiling tool set (paper
   Figure 1 "Code Profiling", §2 and reference [10]): profile a small
   application, pick the hottest loop, compile just that kernel to hardware,
   and compare its share of dynamic work against the cost.

     dune exec examples/profile_partition.exe
*)

module Profile = Roccc_core.Profile
module Driver = Roccc_core.Driver
module Area = Roccc_fpga.Area

(* A toy application: edge-enhance then threshold then histogram-ish sum.
   Only the first loop is compute-dense; the rest is bookkeeping. *)
let app_source =
  "void app(int8 A[68], int16 B[64], int16 C[64], int* count) {\n\
  \  int i;\n\
  \  for (i = 0; i < 64; i++) {\n\
  \    B[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];\n\
  \  }\n\
  \  for (i = 0; i < 64; i++) {\n\
  \    int t;\n\
  \    t = B[i];\n\
  \    if (t < 0) { t = 0; }\n\
  \    C[i] = t;\n\
  \  }\n\
  \  int n;\n\
  \  n = 0;\n\
  \  for (i = 0; i < 64; i++) {\n\
  \    if (C[i] > 100) { n = n + 1; }\n\
  \  }\n\
  \  *count = n;\n\
   }\n"

(* The hottest loop extracted as a standalone kernel for the FPGA. *)
let kernel_source =
  "void fir(int8 A[68], int16 B[64]) {\n\
  \  int i;\n\
  \  for (i = 0; i < 64; i++) {\n\
  \    B[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];\n\
  \  }\n\
   }\n"

let () =
  print_endline "== step 1: profile the application ==\n";
  let arrays = [ "A", Array.init 68 (fun i -> Int64.of_int ((i * 7 mod 256) - 128)) ] in
  let p = Profile.analyze ~entry:"app" ~arrays app_source in
  print_string (Profile.report p);

  let hot = List.hd p.Profile.sites in
  Printf.printf
    "\n=> the %s loop carries %.0f%% of the dynamic operations with density \
     %.2f and %d branches:\n\
     it is the hardware kernel; the thresholding and counting loops stay \
     on the CPU.\n\n"
    hot.Profile.loop_path
    (100.0 *. Profile.fraction p hot)
    (Profile.computational_density hot)
    hot.Profile.branch_statements;

  print_endline "== step 2: compile the hot kernel to hardware ==\n";
  let c = Driver.compile ~entry:"fir" kernel_source in
  print_string (Driver.report c);

  print_endline "\n== step 3: validate the partition ==\n";
  let r = Driver.simulate ~arrays c in
  (match Driver.verify ~arrays c with
  | [] ->
    Printf.printf
      "kernel verified against the C semantics; %d results in %d cycles\n"
      r.Roccc_hw.Engine.launches r.Roccc_hw.Engine.cycles
  | diffs ->
    List.iter print_endline diffs;
    exit 1);
  let pw = Area.power c.Driver.area in
  Printf.printf
    "estimated cost: %d slices @ %.0f MHz, %.0f mW — covering %.0f%% of the \
     application's dynamic work\n"
    c.Driver.area.Area.slices c.Driver.area.Area.clock_mhz pw.Area.total_mw
    (100.0 *. Profile.fraction p hot)
