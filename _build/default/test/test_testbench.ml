(* Tests for the self-checking VHDL testbench generator. *)

module Driver = Roccc_core.Driver
module Testbench = Roccc_core.Testbench
module Kernels = Roccc_core.Kernels

let contains needle hay =
  let re = Str.regexp_string needle in
  try
    ignore (Str.search_forward re hay 0);
    true
  with Not_found -> false

let count needle hay =
  let re = Str.regexp_string needle in
  let rec loop pos acc =
    match Str.search_forward re hay pos with
    | exception Not_found -> acc
    | i -> loop (i + String.length needle) (acc + 1)
  in
  loop 0 0

let fir_src =
  "void fir(int8 A[12], int16 C[8]) {\n\
  \  int i;\n\
  \  for (i = 0; i < 8; i++) {\n\
  \    C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];\n\
  \  }\n\
   }\n"

let test_testbench_structure () =
  let c = Driver.compile ~entry:"fir" fir_src in
  let arrays = [ "A", Array.init 12 (fun i -> Int64.of_int (i - 6)) ] in
  let tb = Testbench.generate ~arrays c in
  Alcotest.(check bool) "entity" true (contains "entity fir_dp_tb is" tb);
  Alcotest.(check bool) "instantiates dut" true
    (contains "dut : entity work.fir_dp" tb);
  Alcotest.(check bool) "clock generator" true
    (contains "clk <= not clk after 5 ns;" tb);
  (* one assertion per iteration per output: 8 iterations, 1 output *)
  Alcotest.(check int) "8 assertions" 8 (count "assert Tmp0 = " tb);
  Alcotest.(check bool) "finishes" true
    (contains "report \"testbench finished\"" tb)

let test_testbench_expected_values_match_interp () =
  (* the asserted constants are exactly the interpreter's outputs *)
  let c = Driver.compile ~entry:"fir" fir_src in
  let arrays = [ "A", Array.init 12 (fun i -> Int64.of_int ((i * 7) - 20)) ] in
  let tb = Testbench.generate ~arrays c in
  let o = Driver.interpret ~arrays c in
  let expected = List.assoc "C" o.Roccc_cfront.Interp.arrays in
  Array.iteri
    (fun i v ->
      Alcotest.(check bool)
        (Printf.sprintf "iteration %d expects %Ld" i v)
        true
        (contains (Printf.sprintf "to_signed(%Ld, 16)" v) tb))
    expected

let test_testbench_multi_output () =
  (* the two-filter FIR asserts both ports *)
  let b = Kernels.fir in
  let c = Kernels.compile b in
  let arrays = b.Kernels.arrays () in
  let tb = Testbench.generate ~arrays c in
  Alcotest.(check bool) "asserts C" true (contains "assert Tmp0" tb);
  Alcotest.(check bool) "asserts E" true (contains "assert Tmp1" tb)

let test_testbench_feedback_kernel () =
  (* accumulator: expected values thread the feedback correctly *)
  let src =
    "int sum = 0;\n\
     void acc(int A[6], int* out) {\n\
    \  int i;\n\
    \  for (i = 0; i < 6; i++) { sum = sum + A[i]; }\n\
    \  *out = sum;\n\
     }"
  in
  let c = Driver.compile ~entry:"acc" src in
  let arrays = [ "A", [| 1L; 2L; 3L; 4L; 5L; 6L |] ] in
  let tb = Testbench.generate ~arrays c in
  (* running sums 1, 3, 6, 10, 15, 21 appear as expected values *)
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "partial sum %d asserted" v)
        true
        (contains (Printf.sprintf "to_signed(%d, 32)" v) tb))
    [ 1; 3; 6; 10; 15; 21 ]

let test_testbench_missing_input_rejected () =
  let c = Driver.compile ~entry:"fir" fir_src in
  match Testbench.generate ~arrays:[] c with
  | exception Testbench.Error _ -> ()
  | _ -> Alcotest.fail "expected missing-array error"

let suites =
  [ "core.testbench",
    [ Alcotest.test_case "structure" `Quick test_testbench_structure;
      Alcotest.test_case "expected values = interpreter" `Quick
        test_testbench_expected_values_match_interp;
      Alcotest.test_case "multiple outputs" `Quick test_testbench_multi_output;
      Alcotest.test_case "feedback kernel" `Quick
        test_testbench_feedback_kernel;
      Alcotest.test_case "missing input rejected" `Quick
        test_testbench_missing_input_rejected ] ]
