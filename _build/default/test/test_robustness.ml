(* Robustness: the front end fails cleanly (typed errors, never crashes) on
   malformed input; printers and dumps produce well-formed text. *)

open Roccc_cfront
module Driver = Roccc_core.Driver

(* ------------------------------------------------------------------ *)
(* Parser fuzz: arbitrary bytes raise only the declared error types    *)
(* ------------------------------------------------------------------ *)

let qcheck_case = QCheck_alcotest.to_alcotest

let prop_parser_total =
  QCheck.Test.make ~count:300 ~name:"parser never crashes on random bytes"
    QCheck.(string_of_size (QCheck.Gen.int_range 0 200))
    (fun s ->
      match Parser.parse_program s with
      | _ -> true
      | exception Parser.Error _ -> true
      | exception Lexer.Error _ -> true)

let prop_parser_total_c_like =
  (* token soup from C fragments is more likely to reach deep parser code *)
  let fragment =
    QCheck.Gen.oneofl
      [ "int"; "void"; "for"; "if"; "else"; "return"; "("; ")"; "{"; "}";
        "["; "]"; ";"; ","; "+"; "-"; "*"; "/"; "="; "=="; "<"; ">>"; "x";
        "A"; "42"; "0x1f"; "uint8"; "&&"; "~"; "!" ]
  in
  let gen =
    QCheck.Gen.(map (String.concat " ") (list_size (int_range 0 60) fragment))
  in
  QCheck.Test.make ~count:300 ~name:"parser never crashes on token soup"
    (QCheck.make gen ~print:(fun s -> s))
    (fun s ->
      match Parser.parse_program s with
      | _ -> true
      | exception Parser.Error _ -> true
      | exception Lexer.Error _ -> true)

let prop_driver_clean_errors =
  (* the driver wraps everything in Driver.Error or succeeds *)
  let gen =
    QCheck.Gen.oneofl
      [ "void k() {}";
        "void k(int A[4]) { A[0] = A[1]; }";
        "void k(int A[4], int C[4]) { int i; for (i=0;i<4;i++) C[i] = \
         A[zzz]; }";
        "int k(int x) { return k(x); }";
        "void k(int A[4][4][4]) { }";
        "void k(int* p) { *p = *q; }";
        "void k(int A[8], int C[8]) { int i; for (i=0;i<8;i++) C[i] = \
         A[i*i]; }";
        "garbage $$$";
        "void k(int A[8], int C[8]) { int i; for (i=0;i<8;i++) { C[i] = \
         A[i] / A[i+1]; } }" ]
  in
  QCheck.Test.make ~count:50 ~name:"driver raises only Driver.Error"
    (QCheck.make gen ~print:(fun s -> s))
    (fun src ->
      match Driver.compile ~entry:"k" src with
      | _ -> true
      | exception Driver.Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Error messages                                                      *)
(* ------------------------------------------------------------------ *)

let error_of src =
  match Driver.compile ~entry:"k" src with
  | _ -> Alcotest.fail "expected a compile error"
  | exception Driver.Error msg -> msg

let contains needle hay =
  let re = Str.regexp_string needle in
  try
    ignore (Str.search_forward re hay 0);
    true
  with Not_found -> false

let test_error_mentions_position () =
  let msg = error_of "void k() { int x\n  x = 1; }" in
  Alcotest.(check bool) ("position in: " ^ msg) true
    (contains "parse error at" msg)

let test_error_mentions_variable () =
  let msg = error_of "void k(int a, int* o) { *o = a + mystery; }" in
  Alcotest.(check bool) ("names the variable: " ^ msg) true
    (contains "mystery" msg)

let test_error_mentions_recursion () =
  let msg = error_of "int k(int n) { return k(n - 1); }" in
  Alcotest.(check bool) ("mentions recursion: " ^ msg) true
    (contains "recursion" msg)

let test_error_nonaffine () =
  let msg =
    error_of
      "void k(int A[8], int B[8], int C[8]) { int i; for (i=0;i<8;i++) C[i] \
       = A[B[i]]; }"
  in
  Alcotest.(check bool) ("mentions affine: " ^ msg) true
    (contains "affine" msg)

let test_error_trailing_loop_rejected () =
  (* a second unfused loop must not be silently dropped *)
  let msg =
    match
      Driver.compile
        ~options:{ Driver.default_options with Driver.fuse_loops = false }
        ~entry:"k"
        "void k(int A[8], int B[8], int C[8]) { int i; for (i=0;i<8;i++) \
         B[i] = A[i]; for (i=0;i<8;i++) C[i] = B[i]; }"
    with
    | _ -> Alcotest.fail "expected rejection of the second loop"
    | exception Driver.Error m -> m
  in
  Alcotest.(check bool) ("mentions fusion: " ^ msg) true
    (contains "fuse" msg)

let test_error_pre_loop_compute_rejected () =
  let msg =
    error_of
      "void k(int A[8], int C[8], int s) { int t; t = s * 2; int i; for \
       (i=0;i<8;i++) C[i] = A[i] + t; }"
  in
  Alcotest.(check bool) ("mentions the restriction: " ^ msg) true
    (contains "before the kernel loop" msg)

let test_driver_fuses_two_filter_loops () =
  (* with fusion on (the default), the pair compiles and verifies *)
  let src =
    "void pair(int8 A[20], int16 C[16], int16 E[16]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 16; i++) { C[i] = 3*A[i] + 5*A[i+1] - A[i+4]; }\n\
    \  for (i = 0; i < 16; i++) { E[i] = 2*A[i] + 4*A[i+2] + A[i+3]; }\n\
     }\n"
  in
  let c = Driver.compile ~entry:"pair" src in
  Alcotest.(check int) "one shared window" 1
    (List.length c.Driver.kernel.Roccc_hir.Kernel.windows);
  Alcotest.(check int) "two outputs" 2
    (List.length c.Driver.kernel.Roccc_hir.Kernel.outputs);
  let arrays = [ "A", Array.init 20 (fun i -> Int64.of_int ((i * 11) - 90)) ] in
  Alcotest.(check (list string)) "verifies" [] (Driver.verify ~arrays c)

let test_loop_carried_param_rejected () =
  (* a loop-carried parameter has no compile-time initial value: the
     compiler must refuse rather than seed the feedback register wrongly *)
  let msg =
    error_of
      "void k(int A[8], int s, int* o) {\n\
      \  int i;\n\
      \  for (i = 0; i < 8; i++) { s = s + A[i]; }\n\
      \  *o = s;\n\
       }"
  in
  Alcotest.(check bool) ("mentions initializer: " ^ msg) true
    (contains "initializer" msg)

let test_negative_global_initializer () =
  (* constant-expression initializers (unary minus, arithmetic) work *)
  let src =
    "int base = -(1 << 6);\n\
     void k(int A[4], int C[4]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 4; i++) { C[i] = A[i] + base; }\n\
     }"
  in
  let c = Driver.compile ~entry:"k" src in
  let arrays = [ "A", [| 100L; 200L; 300L; 400L |] ] in
  Alcotest.(check (list string)) "verifies" [] (Driver.verify ~arrays c);
  let r = Driver.simulate ~arrays c in
  Alcotest.(check int64) "100 - 64" 36L
    (List.assoc "C" r.Roccc_hw.Engine.output_arrays).(0)

let test_error_missing_entry () =
  let msg =
    match Driver.compile ~entry:"nope" "void k() {}" with
    | _ -> Alcotest.fail "expected error"
    | exception Driver.Error m -> m
  in
  Alcotest.(check bool) ("names the function: " ^ msg) true
    (contains "nope" msg)

(* ------------------------------------------------------------------ *)
(* Printers / dumps                                                    *)
(* ------------------------------------------------------------------ *)

let test_proc_printing () =
  let c =
    Driver.compile ~entry:"fir"
      "void fir(int A[12], int C[8]) { int i; for (i=0;i<8;i++) C[i] = \
       A[i] + A[i+4]; }"
  in
  let text = Roccc_vm.Proc.to_string c.Driver.proc in
  Alcotest.(check bool) "proc header" true (contains "proc fir_dp" text);
  Alcotest.(check bool) "shows inputs" true (contains "in  A0" text);
  Alcotest.(check bool) "shows outputs" true (contains "out Tmp0" text);
  Alcotest.(check bool) "shows a block" true (contains "L0:" text)

let test_dot_output_balanced () =
  let c =
    Driver.compile ~entry:"if_else"
      "void if_else(int x1, int x2, int* x3) { int a; if (x1 < x2) a = x1; \
       else a = x2; *x3 = a; }"
  in
  let dot = Roccc_datapath.Graph.to_dot c.Driver.dp in
  Alcotest.(check bool) "digraph" true (contains "digraph" dot);
  Alcotest.(check bool) "closing brace" true
    (String.length dot > 0 && String.sub dot (String.length dot - 2) 2 = "}\n");
  (* every node referenced by an edge is declared *)
  let declared = ref [] and used = ref [] in
  String.split_on_char '\n' dot
  |> List.iter (fun line ->
         if contains "[shape=" line then begin
           match String.index_opt line 'n' with
           | Some i -> (
             let rest = String.sub line i (String.length line - i) in
             match String.index_opt rest ' ' with
             | Some j -> declared := String.sub rest 0 j :: !declared
             | None -> ())
           | None -> ()
         end
         else if contains " -> " line then
           String.split_on_char ' ' (String.trim line)
           |> List.iter (fun tok ->
                  let tok =
                    if String.length tok > 0 && tok.[String.length tok - 1] = ';'
                    then String.sub tok 0 (String.length tok - 1)
                    else tok
                  in
                  if String.length tok > 1 && tok.[0] = 'n' then
                    used := tok :: !used));
  List.iter
    (fun u ->
      Alcotest.(check bool)
        (Printf.sprintf "edge endpoint %s declared" u)
        true
        (List.mem u !declared))
    !used

let test_kernel_describe () =
  let c = Roccc_core.Kernels.compile Roccc_core.Kernels.mul_acc in
  let text = Roccc_hir.Kernel.describe c.Driver.kernel in
  Alcotest.(check bool) "loop line" true (contains "loop i: 64 iterations" text);
  Alcotest.(check bool) "feedback line" true (contains "feedback acc" text);
  Alcotest.(check bool) "scalar output" true
    (contains "scalar out (last value)" text)

let suites =
  [ "robustness.fuzz",
    [ qcheck_case prop_parser_total;
      qcheck_case prop_parser_total_c_like;
      qcheck_case prop_driver_clean_errors ];
    "robustness.errors",
    [ Alcotest.test_case "parse error carries position" `Quick
        test_error_mentions_position;
      Alcotest.test_case "undeclared variable named" `Quick
        test_error_mentions_variable;
      Alcotest.test_case "recursion reported" `Quick
        test_error_mentions_recursion;
      Alcotest.test_case "non-affine access reported" `Quick
        test_error_nonaffine;
      Alcotest.test_case "trailing loop rejected" `Quick
        test_error_trailing_loop_rejected;
      Alcotest.test_case "pre-loop compute rejected" `Quick
        test_error_pre_loop_compute_rejected;
      Alcotest.test_case "fusion merges filter pair" `Quick
        test_driver_fuses_two_filter_loops;
      Alcotest.test_case "loop-carried parameter rejected" `Quick
        test_loop_carried_param_rejected;
      Alcotest.test_case "constant-expression global init" `Quick
        test_negative_global_initializer;
      Alcotest.test_case "missing entry named" `Quick
        test_error_missing_entry ];
    "robustness.printers",
    [ Alcotest.test_case "VM procedure printing" `Quick test_proc_printing;
      Alcotest.test_case "DOT output well-formed" `Quick
        test_dot_output_balanced;
      Alcotest.test_case "kernel description" `Quick test_kernel_describe ] ]
