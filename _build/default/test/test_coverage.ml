(* Operator-level coverage: every C operator swept through the full
   compile + cycle-accurate simulation against the interpreter; full
   unrolling through the driver; miscellaneous front-end edges. *)

open Roccc_cfront
module Driver = Roccc_core.Driver
module Engine = Roccc_hw.Engine

(* Build a one-operator kernel and check hw = sw over an input sweep. *)
let check_binary_op ?(rhs_nonzero = false) symbol =
  let src =
    Printf.sprintf
      "void k(int16 A[16], int16 B[16], int32 C[16]) {\n\
      \  int i;\n\
      \  for (i = 0; i < 16; i++) {\n\
      \    C[i] = A[i] %s B[i];\n\
      \  }\n\
       }"
      symbol
  in
  let c = Driver.compile ~entry:"k" src in
  let a = Array.init 16 (fun i -> Int64.of_int ((i * 773 mod 4001) - 2000)) in
  let b =
    Array.init 16 (fun i ->
        let v = (i * 359 mod 251) - 125 in
        let v = if rhs_nonzero && v = 0 then 7 else v in
        Int64.of_int v)
  in
  let diffs = Driver.verify ~arrays:[ "A", a; "B", b ] c in
  Alcotest.(check (list string)) (symbol ^ " hw = sw") [] diffs

let binary_op_case (name, symbol, rhs_nonzero) =
  Alcotest.test_case name `Quick (fun () ->
      check_binary_op ~rhs_nonzero symbol)

let binary_ops =
  [ "add", "+", false; "sub", "-", false; "mul", "*", false;
    "div", "/", true; "mod", "%", true;
    "and", "&", false; "or", "|", false; "xor", "^", false;
    "lt", "<", false; "le", "<=", false; "gt", ">", false;
    "ge", ">=", false; "eq", "==", false; "ne", "!=", false;
    "land", "&&", false; "lor", "||", false ]

let check_unary_op symbol =
  let src =
    Printf.sprintf
      "void k(int16 A[16], int32 C[16]) {\n\
      \  int i;\n\
      \  for (i = 0; i < 16; i++) { C[i] = %sA[i]; }\n\
       }"
      symbol
  in
  let c = Driver.compile ~entry:"k" src in
  let a = Array.init 16 (fun i -> Int64.of_int ((i * 917 mod 3001) - 1500)) in
  Alcotest.(check (list string)) (symbol ^ " hw = sw") []
    (Driver.verify ~arrays:[ "A", a ] c)

let test_unary_ops () =
  List.iter check_unary_op [ "-"; "~"; "!" ]

let test_shifts_by_constant () =
  List.iter
    (fun (op, amt) ->
      let src =
        Printf.sprintf
          "void k(int16 A[16], int32 C[16]) {\n\
          \  int i;\n\
          \  for (i = 0; i < 16; i++) { C[i] = A[i] %s %d; }\n\
           }"
          op amt
      in
      let c = Driver.compile ~entry:"k" src in
      let a = Array.init 16 (fun i -> Int64.of_int ((i * 529 mod 2001) - 1000)) in
      Alcotest.(check (list string))
        (Printf.sprintf "%s %d hw = sw" op amt)
        []
        (Driver.verify ~arrays:[ "A", a ] c))
    [ "<<", 0; "<<", 3; "<<", 7; ">>", 0; ">>", 1; ">>", 5 ]

let test_cast_narrowing () =
  let src =
    "void k(int16 A[8], int32 C[8]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 8; i++) { C[i] = (int8)A[i] + (uint4)A[i]; }\n\
     }"
  in
  let c = Driver.compile ~entry:"k" src in
  let a = Array.init 8 (fun i -> Int64.of_int ((i * 1234) - 4000)) in
  Alcotest.(check (list string)) "casts hw = sw" []
    (Driver.verify ~arrays:[ "A", a ] c)

let test_unsigned_comparison_semantics () =
  (* unsigned ports: comparisons must be unsigned *)
  let src =
    "void k(uint8 A[8], uint8 B[8], uint1 C[8]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 8; i++) { C[i] = A[i] > B[i]; }\n\
     }"
  in
  let c = Driver.compile ~entry:"k" src in
  let a = [| 255L; 200L; 1L; 0L; 128L; 127L; 5L; 250L |] in
  let b = [| 1L; 255L; 2L; 0L; 127L; 128L; 5L; 249L |] in
  Alcotest.(check (list string)) "unsigned compare hw = sw" []
    (Driver.verify ~arrays:[ "A", a; "B", b ] c);
  let r = Driver.simulate ~arrays:[ "A", a; "B", b ] c in
  Alcotest.(check (list int64)) "255 > 1 etc."
    [ 1L; 0L; 0L; 0L; 1L; 0L; 0L; 1L ]
    (Array.to_list (List.assoc "C" r.Engine.output_arrays))

(* ------------------------------------------------------------------ *)
(* Full unrolling through the driver                                   *)
(* ------------------------------------------------------------------ *)

let test_unroll_all_makes_block_kernel () =
  let src =
    "void k(int8 A[6], int16 C[4]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 4; i++) { C[i] = A[i] + A[i+1] + A[i+2]; }\n\
     }"
  in
  let c =
    Driver.compile
      ~options:{ Driver.default_options with Driver.unroll_all_max = 8 }
      ~entry:"k" src
  in
  Alcotest.(check bool) "full-unroll pass ran" true
    (List.mem "full-unroll" c.Driver.pass_trace);
  Alcotest.(check int) "block kernel (no loops)" 0
    (List.length c.Driver.kernel.Roccc_hir.Kernel.loops);
  Alcotest.(check int) "4 outputs per launch" 4
    (List.length c.Driver.kernel.Roccc_hir.Kernel.outputs);
  let a = Array.init 6 (fun i -> Int64.of_int (10 * (i + 1))) in
  Alcotest.(check (list string)) "verifies" [] (Driver.verify ~arrays:[ "A", a ] c);
  let r = Driver.simulate ~arrays:[ "A", a ] c in
  Alcotest.(check int) "single launch" 1 r.Engine.launches

let test_unroll_all_two_dim_block () =
  (* a fully unrolled 2-D nest becomes a 2-D block kernel *)
  let src =
    "void k(int8 P[3][3], int16 Q[2][2]) {\n\
    \  int r, c;\n\
    \  for (r = 0; r < 2; r++) {\n\
    \    for (c = 0; c < 2; c++) {\n\
    \      Q[r][c] = P[r][c] + P[r+1][c+1];\n\
    \    }\n\
    \  }\n\
     }"
  in
  let c =
    Driver.compile
      ~options:{ Driver.default_options with Driver.unroll_all_max = 8 }
      ~entry:"k" src
  in
  Alcotest.(check int) "block kernel" 0
    (List.length c.Driver.kernel.Roccc_hir.Kernel.loops);
  Alcotest.(check int) "4 outputs" 4
    (List.length c.Driver.kernel.Roccc_hir.Kernel.outputs);
  let p = Array.init 9 (fun i -> Int64.of_int (i + 1)) in
  Alcotest.(check (list string)) "verifies" []
    (Driver.verify ~arrays:[ "P", p ] c)

let test_unroll_all_vs_loop_same_results () =
  let src =
    "void k(int8 A[10], int16 C[8]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 8; i++) { C[i] = 2*A[i] - A[i+2]; }\n\
     }"
  in
  let looped = Driver.compile ~entry:"k" src in
  let unrolled =
    Driver.compile
      ~options:{ Driver.default_options with Driver.unroll_all_max = 8 }
      ~entry:"k" src
  in
  let a = Array.init 10 (fun i -> Int64.of_int ((i * 31 mod 200) - 100)) in
  let r1 = Driver.simulate ~arrays:[ "A", a ] looped in
  let r2 = Driver.simulate ~arrays:[ "A", a ] unrolled in
  Alcotest.(check bool) "same output array" true
    (List.assoc "C" r1.Engine.output_arrays
    = List.assoc "C" r2.Engine.output_arrays);
  Alcotest.(check bool) "unrolled finishes faster" true
    (r2.Engine.cycles <= r1.Engine.cycles)

(* ------------------------------------------------------------------ *)
(* Front-end edges                                                     *)
(* ------------------------------------------------------------------ *)

let test_lexer_numeric_edges () =
  let lits src =
    Lexer.tokenize src
    |> List.filter_map (fun t ->
           match t.Lexer.tok with Lexer.INT_LIT v -> Some v | _ -> None)
  in
  Alcotest.(check (list int64)) "zero" [ 0L ] (lits "0");
  Alcotest.(check (list int64)) "max int32" [ 2147483647L ] (lits "2147483647");
  Alcotest.(check (list int64)) "hex caps" [ 255L ] (lits "0XFF");
  Alcotest.(check (list int64)) "adjacent" [ 1L; 2L ] (lits "1 2")

let test_pretty_all_statement_forms () =
  (* every statement form round-trips through print + parse *)
  let src =
    "int g = 5;\n\
     void k(int8 A[4][4], int x, int* o) {\n\
    \  int t, u[8];\n\
    \  t = x + g;\n\
    \  u[0] = t;\n\
    \  A[1][2] = (int8)(t - 1);\n\
    \  if (t > 0) { t = t - 1; } else { t = t + 1; }\n\
    \  for (t = 0; t < 4; t++) { u[t] = t; }\n\
    \  *o = u[0];\n\
    \  return;\n\
     }"
  in
  let p1 = Parser.parse_program src in
  let printed = Pretty.program_to_string p1 in
  let p2 = Parser.parse_program printed in
  let reprinted = Pretty.program_to_string p2 in
  Alcotest.(check string) "print is a fixpoint" printed reprinted

let test_interp_global_array () =
  let src =
    "int tbl[4];\n\
     void k(int x, int* o) {\n\
    \  tbl[0] = x;\n\
    \  tbl[1] = x + 1;\n\
    \  *o = tbl[0] * tbl[1];\n\
     }"
  in
  let outcome = Interp.run_source src "k" ~scalars:[ "x", 6L ] in
  Alcotest.(check int64) "6*7" 42L
    (List.assoc "o" outcome.Interp.pointer_outputs)

let test_interp_short_circuit () =
  (* && must not evaluate the rhs when the lhs is false: division by zero
     on the rhs is never reached *)
  let src =
    "void k(int a, int b, int* o) {\n\
    \  int r;\n\
    \  r = 0;\n\
    \  if (a != 0 && (b / a) > 1) { r = 1; }\n\
    \  *o = r;\n\
     }"
  in
  let outcome = Interp.run_source src "k" ~scalars:[ "a", 0L; "b", 10L ] in
  Alcotest.(check int64) "no trap, r = 0" 0L
    (List.assoc "o" outcome.Interp.pointer_outputs)

let suites =
  [ "coverage.binary_ops", List.map binary_op_case binary_ops;
    "coverage.more_ops",
    [ Alcotest.test_case "unary operators" `Quick test_unary_ops;
      Alcotest.test_case "constant shifts" `Quick test_shifts_by_constant;
      Alcotest.test_case "casts" `Quick test_cast_narrowing;
      Alcotest.test_case "unsigned comparisons" `Quick
        test_unsigned_comparison_semantics ];
    "coverage.unroll_all",
    [ Alcotest.test_case "full unroll makes a block kernel" `Quick
        test_unroll_all_makes_block_kernel;
      Alcotest.test_case "unrolled = looped results" `Quick
        test_unroll_all_vs_loop_same_results;
      Alcotest.test_case "2-D block kernel" `Quick
        test_unroll_all_two_dim_block ];
    "coverage.frontend",
    [ Alcotest.test_case "lexer numeric edges" `Quick
        test_lexer_numeric_edges;
      Alcotest.test_case "pretty print fixpoint" `Quick
        test_pretty_all_statement_forms;
      Alcotest.test_case "global arrays" `Quick test_interp_global_array;
      Alcotest.test_case "short-circuit &&" `Quick test_interp_short_circuit ] ]
