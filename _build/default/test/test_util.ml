(* Unit coverage for the utility layer and small helpers that the property
   suites exercise only indirectly. *)

open Roccc_util

let test_id_gen () =
  let g = Id_gen.create () in
  Alcotest.(check int) "first" 0 (Id_gen.fresh g);
  Alcotest.(check int) "second" 1 (Id_gen.fresh g);
  Alcotest.(check int) "peek" 2 (Id_gen.peek g);
  Alcotest.(check int) "peek is not fresh" 2 (Id_gen.fresh g);
  Id_gen.reset g;
  Alcotest.(check int) "after reset" 0 (Id_gen.fresh g);
  let h = Id_gen.create ~start:10 () in
  Alcotest.(check int) "custom start" 10 (Id_gen.fresh h)

let test_bits_64_boundary () =
  (* width-64 operations must not shift out of range *)
  Alcotest.(check int64) "mask 64" (-1L) (Bits.mask 64);
  Alcotest.(check int64) "truncate unsigned 64 identity" (-1L)
    (Bits.truncate_unsigned 64 (-1L));
  Alcotest.(check int64) "truncate signed 64 identity" Int64.min_int
    (Bits.truncate_signed 64 Int64.min_int);
  Alcotest.(check int) "bits for -1 unsigned" 64 (Bits.bits_for_unsigned (-1L))

let test_bits_one_bit () =
  Alcotest.(check int64) "1-bit signed -1" (-1L) (Bits.truncate_signed 1 1L);
  Alcotest.(check int64) "1-bit signed 0" 0L (Bits.truncate_signed 1 2L);
  Alcotest.(check int64) "1-bit unsigned" 1L (Bits.truncate_unsigned 1 3L);
  Alcotest.(check int64) "min signed 1" (-1L) (Bits.min_value ~signed:true 1);
  Alcotest.(check int64) "max signed 1" 0L (Bits.max_value ~signed:true 1)

let test_bits_binary_string () =
  Alcotest.(check string) "5 in 4 bits" "0101" (Bits.to_binary_string ~width:4 5L);
  Alcotest.(check string) "-1 in 4 bits" "1111"
    (Bits.to_binary_string ~width:4 (-1L));
  Alcotest.(check string) "zero" "00000000" (Bits.to_binary_string ~width:8 0L)

let test_controller_sketch () =
  let c =
    Roccc_buffers.Controller.create ~total_iterations:17 ~pipeline_latency:3
  in
  let text = Roccc_buffers.Controller.to_vhdl_sketch c ~name:"fir" in
  Alcotest.(check bool) "mentions iteration count" true
    (let re = Str.regexp_string "17" in
     try ignore (Str.search_forward re text 0); true with Not_found -> false);
  Alcotest.(check bool) "lists states" true
    (let re = Str.regexp_string "idle, filling, steady, draining, done" in
     try ignore (Str.search_forward re text 0); true with Not_found -> false)

let test_controller_lifecycle () =
  let open Roccc_buffers.Controller in
  let c = create ~total_iterations:2 ~pipeline_latency:1 in
  Alcotest.(check string) "starts idle" "idle" (state_name c.state);
  start c;
  Alcotest.(check string) "filling after start" "filling" (state_name c.state);
  note_launch c;
  step c ~window_ready:true ~input_done:false;
  Alcotest.(check string) "steady after first launch" "steady"
    (state_name c.state);
  note_launch c;
  note_retire c;
  step c ~window_ready:false ~input_done:true;
  Alcotest.(check string) "draining when all launched" "draining"
    (state_name c.state);
  note_retire c;
  step c ~window_ready:false ~input_done:true;
  Alcotest.(check bool) "done when all retired" true (is_done c)

let test_proc_block_uses () =
  let open Roccc_vm in
  let proc = Proc.create "t" in
  let b = Proc.fresh_block proc in
  let k = Roccc_cfront.Ast.int32_kind in
  let r0 = Proc.fresh_reg proc k in
  let r1 = Proc.fresh_reg proc k in
  let r2 = Proc.fresh_reg proc k in
  b.Proc.instrs <- [ Instr.make ~dst:r2 Instr.Add [ r0; r1 ] k ];
  b.Proc.term <- Proc.Branch (r2, 0, 0);
  Alcotest.(check (list int)) "defs" [ r2 ] (Proc.block_defs b);
  Alcotest.(check (list int)) "uses include branch reg" [ r0; r1; r2 ]
    (List.sort compare (Proc.block_uses b))

let test_instr_printing () =
  let open Roccc_vm in
  let k = Roccc_cfront.Ast.int32_kind in
  let i = Instr.make ~dst:5 Instr.Add [ 1; 2 ] k in
  Alcotest.(check string) "add text" "v5 = add v1, v2 :s32"
    (Instr.to_string i);
  let snx = { Instr.op = Instr.Snx "sum"; dst = None; srcs = [ 7 ]; kind = k } in
  Alcotest.(check string) "snx text" "snx[sum] v7 :s32" (Instr.to_string snx)

let suites =
  [ "util",
    [ Alcotest.test_case "id generator" `Quick test_id_gen;
      Alcotest.test_case "64-bit boundary" `Quick test_bits_64_boundary;
      Alcotest.test_case "1-bit kinds" `Quick test_bits_one_bit;
      Alcotest.test_case "binary rendering" `Quick test_bits_binary_string;
      Alcotest.test_case "controller VHDL sketch" `Quick
        test_controller_sketch;
      Alcotest.test_case "controller lifecycle" `Quick
        test_controller_lifecycle;
      Alcotest.test_case "block defs/uses" `Quick test_proc_block_uses;
      Alcotest.test_case "instruction printing" `Quick test_instr_printing ] ]
