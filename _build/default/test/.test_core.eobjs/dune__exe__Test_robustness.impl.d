test/test_robustness.ml: Alcotest Array Int64 Lexer List Parser Printf QCheck QCheck_alcotest Roccc_cfront Roccc_core Roccc_datapath Roccc_hir Roccc_hw Roccc_vm Str String
