test/test_core_driver.ml: Alcotest Array Driver Int64 Kernels List Option Printf Roccc_core Roccc_datapath Roccc_fpga Roccc_hir Roccc_hw Roccc_ip
