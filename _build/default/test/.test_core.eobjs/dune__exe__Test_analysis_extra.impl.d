test/test_analysis_extra.ml: Alcotest Array Cfg Dataflow Eval Hashtbl Instr Int64 List Option Printf Proc Roccc_analysis Roccc_cfront Roccc_core Roccc_hw Roccc_vhdl Roccc_vm Ssa
