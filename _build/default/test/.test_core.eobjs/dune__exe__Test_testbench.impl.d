test/test_testbench.ml: Alcotest Array Int64 List Printf Roccc_cfront Roccc_core Str String
