test/test_kernel_gallery.ml: Alcotest Array Int64 List Printf Roccc_core Roccc_datapath Roccc_hw Str
