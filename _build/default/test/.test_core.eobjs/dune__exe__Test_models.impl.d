test/test_models.ml: Alcotest Array Gen Int64 List Printf QCheck QCheck_alcotest Roccc_buffers Roccc_core Roccc_datapath Roccc_fpga Roccc_hw
