test/test_vcd.ml: Alcotest Array Int64 List Roccc_core Roccc_hw Str
