test/test_fuzz2.ml: Alcotest Array Int64 List Printf QCheck QCheck_alcotest Roccc_core Roccc_datapath Roccc_hir Roccc_hw
