test/test_util.ml: Alcotest Bits Id_gen Instr Int64 List Proc Roccc_buffers Roccc_cfront Roccc_util Roccc_vm Str
