test/test_cfront.ml: Alcotest Array Ast Gen Int64 Interp Lexer List Parser Pretty Printf QCheck QCheck_alcotest Roccc_cfront Roccc_util Semant String
