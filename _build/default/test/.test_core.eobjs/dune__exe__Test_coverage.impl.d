test/test_coverage.ml: Alcotest Array Int64 Interp Lexer List Parser Pretty Printf Roccc_cfront Roccc_core Roccc_hir Roccc_hw
