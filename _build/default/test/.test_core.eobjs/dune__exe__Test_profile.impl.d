test/test_profile.ml: Alcotest Array Int64 List Printf Roccc_core Str String
