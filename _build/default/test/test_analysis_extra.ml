(* Extra coverage: synthetic cyclic CFGs for the dominator/dataflow
   libraries (the dp functions are acyclic, but the libraries are general),
   the driver's function-to-LUT conversion, determinism, and engine edge
   cases. *)

open Roccc_vm
open Roccc_analysis
module Driver = Roccc_core.Driver
module Ast = Roccc_cfront.Ast

(* Build a synthetic procedure with a loop:
     L0: v0 = ldc 0            (counter)
         v1 = ldc 10
         jump L1
     L1: v2 = add v0, v5?      -- we keep it non-SSA: v0 redefined
         v3 = slt v0, v1
         branch v3 ? L2 : L3
     L2: v0 = add v0, v4(=1)
         jump L1
     L3: ret                   (output v0)
*)
let build_loop_proc () =
  let proc = Proc.create "looper" in
  let k = Ast.int32_kind in
  let b0 = Proc.fresh_block proc in
  let b1 = Proc.fresh_block proc in
  let b2 = Proc.fresh_block proc in
  let b3 = Proc.fresh_block proc in
  let v0 = Proc.fresh_reg proc k in
  let v1 = Proc.fresh_reg proc k in
  let v3 = Proc.fresh_reg proc k in
  let v4 = Proc.fresh_reg proc k in
  b0.Proc.instrs <-
    [ Instr.make ~dst:v0 (Instr.Ldc 0L) [] k;
      Instr.make ~dst:v1 (Instr.Ldc 10L) [] k;
      Instr.make ~dst:v4 (Instr.Ldc 1L) [] k ];
  b0.Proc.term <- Proc.Jump b1.Proc.label;
  b1.Proc.instrs <- [ Instr.make ~dst:v3 Instr.Slt [ v0; v1 ] Ast.bool_kind ];
  b1.Proc.term <- Proc.Branch (v3, b2.Proc.label, b3.Proc.label);
  b2.Proc.instrs <- [ Instr.make ~dst:v0 Instr.Add [ v0; v4 ] k ];
  b2.Proc.term <- Proc.Jump b1.Proc.label;
  b3.Proc.term <- Proc.Ret;
  let proc =
    { proc with
      Proc.inputs = [];
      Proc.outputs = [ { Proc.port_name = "n"; port_reg = v0; port_kind = k } ]
    }
  in
  proc, (b0, b1, b2, b3)

let test_cfg_loop_dominators () =
  let proc, (b0, b1, b2, b3) = build_loop_proc () in
  let g = Cfg.build proc in
  Alcotest.(check bool) "b0 dominates all" true
    (List.for_all
       (fun (b : Proc.block) -> Cfg.dominates g b0.Proc.label b.Proc.label)
       proc.Proc.blocks);
  Alcotest.(check (option int)) "idom of loop head" (Some b0.Proc.label)
    (Cfg.immediate_dominator g b1.Proc.label);
  Alcotest.(check (option int)) "idom of body" (Some b1.Proc.label)
    (Cfg.immediate_dominator g b2.Proc.label);
  Alcotest.(check (option int)) "idom of exit" (Some b1.Proc.label)
    (Cfg.immediate_dominator g b3.Proc.label);
  Alcotest.(check bool) "body does not dominate exit" false
    (Cfg.dominates g b2.Proc.label b3.Proc.label)

let test_cfg_loop_dominance_frontier () =
  let proc, (_b0, b1, b2, _b3) = build_loop_proc () in
  let g = Cfg.build proc in
  let df = Cfg.dominance_frontiers g in
  (* the loop body's frontier contains the loop head (back edge) *)
  let df_b2 = Option.value (Hashtbl.find_opt df b2.Proc.label) ~default:[] in
  Alcotest.(check bool) "DF(body) contains head" true
    (List.mem b1.Proc.label df_b2);
  (* the head's frontier contains itself (it is in its own DF for loops) *)
  let df_b1 = Option.value (Hashtbl.find_opt df b1.Proc.label) ~default:[] in
  Alcotest.(check bool) "DF(head) contains head" true
    (List.mem b1.Proc.label df_b1)

let test_liveness_through_loop () =
  let proc, (b0, b1, b2, _b3) = build_loop_proc () in
  let g = Cfg.build proc in
  let sol = Dataflow.liveness g in
  (* v0 (reg of the counter) is live around the back edge *)
  let v0 =
    match b0.Proc.instrs with
    | { Instr.dst = Some d; _ } :: _ -> d
    | _ -> Alcotest.fail "shape"
  in
  Alcotest.(check bool) "counter live into the head" true
    (Dataflow.IS.mem v0 (Dataflow.in_of sol b1.Proc.label));
  Alcotest.(check bool) "counter live out of the body" true
    (Dataflow.IS.mem v0 (Dataflow.out_of sol b2.Proc.label))

let test_reaching_defs_loop () =
  let proc, (b0, b1, b2, _b3) = build_loop_proc () in
  let g = Cfg.build proc in
  let sol, sites = Dataflow.reaching_definitions g in
  (* both definitions of v0 (init in b0, update in b2) reach the head *)
  let v0 =
    match b0.Proc.instrs with
    | { Instr.dst = Some d; _ } :: _ -> d
    | _ -> Alcotest.fail "shape"
  in
  let v0_sites =
    List.filter (fun s -> s.Dataflow.site_reg = v0) sites
    |> List.map (fun s -> s.Dataflow.site_id)
  in
  Alcotest.(check int) "two defs of the counter" 2 (List.length v0_sites);
  let reach_head = Dataflow.in_of sol b1.Proc.label in
  List.iter
    (fun site ->
      Alcotest.(check bool)
        (Printf.sprintf "site %d reaches head" site)
        true
        (Dataflow.IS.mem site reach_head))
    v0_sites;
  ignore b2

let test_ssa_on_loop () =
  (* SSA conversion handles the cycle: phi at the loop head. *)
  let proc, (_b0, b1, _b2, _b3) = build_loop_proc () in
  let _g = Ssa.convert proc in
  Ssa.verify proc;
  let head = Proc.find_block proc b1.Proc.label in
  Alcotest.(check bool) "phi at loop head" true (head.Proc.phis <> []);
  List.iter
    (fun (p : Proc.phi) ->
      Alcotest.(check int) "two incoming edges" 2 (List.length p.Proc.phi_args))
    head.Proc.phis

let test_eval_loop_proc () =
  (* The evaluator executes the CFG cycle to completion. *)
  let proc, _ = build_loop_proc () in
  let _ = Ssa.convert proc in
  let r = Eval.run proc ~inputs:[] in
  Alcotest.(check int64) "counts to 10" 10L (List.assoc "n" r.Eval.outputs)

(* ------------------------------------------------------------------ *)
(* Function-to-LUT conversion via the driver                           *)
(* ------------------------------------------------------------------ *)

let lut_src =
  "int gamma_correct(uint8 x) { return (x * x) >> 6; }\n\
   void filter(uint8 A[16], uint16 C[16]) {\n\
  \  int i;\n\
  \  for (i = 0; i < 16; i++) {\n\
  \    C[i] = gamma_correct(A[i]) + 1;\n\
  \  }\n\
   }\n"

let test_driver_lut_conversion () =
  let c =
    Driver.compile
      ~options:{ Driver.default_options with Driver.lut_convert_max_bits = 8 }
      ~entry:"filter" lut_src
  in
  Alcotest.(check bool) "lut-conversion pass ran" true
    (List.mem "lut-conversion" c.Driver.pass_trace);
  Alcotest.(check int) "one table registered" 1 (List.length c.Driver.luts);
  (* the design instantiates the ROM *)
  let has_rom =
    List.exists
      (fun (u : Roccc_vhdl.Ast.design_unit) ->
        u.Roccc_vhdl.Ast.unit_entity.Roccc_vhdl.Ast.entity_name
        = "rom_gamma_correct")
      c.Driver.design.Roccc_vhdl.Ast.units
  in
  Alcotest.(check bool) "ROM entity generated" true has_rom;
  let arrays = [ "A", Array.init 16 (fun i -> Int64.of_int (i * 16)) ] in
  Alcotest.(check (list string)) "verifies" [] (Driver.verify ~arrays c)

let test_driver_lut_vs_inline_same_result () =
  let arrays = [ "A", Array.init 16 (fun i -> Int64.of_int (255 - (i * 10))) ] in
  let as_lut =
    Driver.compile
      ~options:{ Driver.default_options with Driver.lut_convert_max_bits = 8 }
      ~entry:"filter" lut_src
  in
  let inlined = Driver.compile ~entry:"filter" lut_src in
  Alcotest.(check bool) "inlined has no table" true (inlined.Driver.luts = []);
  let r1 = Driver.simulate ~arrays as_lut in
  let r2 = Driver.simulate ~arrays inlined in
  Alcotest.(check bool) "same outputs" true
    (r1.Roccc_hw.Engine.output_arrays = r2.Roccc_hw.Engine.output_arrays)

(* ------------------------------------------------------------------ *)
(* Determinism and engine edge cases                                   *)
(* ------------------------------------------------------------------ *)

let test_compile_deterministic () =
  let src = Roccc_core.Kernels.fir.Roccc_core.Kernels.source in
  let v1 =
    Roccc_vhdl.Ast.to_string
      (Driver.compile ~entry:"fir" src).Driver.design
  in
  let v2 =
    Roccc_vhdl.Ast.to_string
      (Driver.compile ~entry:"fir" src).Driver.design
  in
  Alcotest.(check bool) "identical VHDL across compilations" true (v1 = v2)

let test_engine_zero_iterations () =
  let src =
    "void nothing(int A[4], int C[4]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 0; i++) { C[i] = A[i]; }\n\
     }\n"
  in
  (* zero-trip loops fold the body away; scalar replacement sees no loop
     and no array accesses -> degenerate kernel; either a clean compile
     error or an immediate-done simulation is acceptable, never a hang *)
  match Driver.compile ~entry:"nothing" src with
  | exception Driver.Error _ -> ()
  | c -> (
    match
      Driver.simulate ~arrays:[ "A", Array.make 4 0L ] c
    with
    | r -> Alcotest.(check int) "no launches" 0 r.Roccc_hw.Engine.launches
    | exception Roccc_hw.Engine.Error _ -> ())

let test_engine_single_iteration () =
  let src =
    "void once(int A[3], int C[1]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 1; i++) { C[i] = A[i] + A[i+1] + A[i+2]; }\n\
     }\n"
  in
  let c = Driver.compile ~entry:"once" src in
  let r = Driver.simulate ~arrays:[ "A", [| 1L; 2L; 3L |] ] c in
  Alcotest.(check int) "one launch" 1 r.Roccc_hw.Engine.launches;
  Alcotest.(check int64) "sum" 6L
    (List.assoc "C" r.Roccc_hw.Engine.output_arrays).(0)

let test_engine_wide_bus_beyond_array () =
  let src = Roccc_core.Kernels.fir.Roccc_core.Kernels.source in
  let c =
    Driver.compile
      ~options:{ Driver.default_options with Driver.bus_elements = 16 }
      ~entry:"fir" src
  in
  let arrays = [ "A", Array.init 64 (fun i -> Int64.of_int i) ] in
  Alcotest.(check (list string)) "verifies with a 16-element bus" []
    (Driver.verify ~arrays c)

let test_strip_mined_kernel_verifies () =
  (* manual strip-mining then compilation of the inner strip as a kernel *)
  let src =
    "void strip(int A[20], int C[16]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 16; i++) {\n\
    \    C[i] = A[i] + A[i+4];\n\
    \  }\n\
     }\n"
  in
  let c = Driver.compile ~entry:"strip" src in
  let arrays = [ "A", Array.init 20 (fun i -> Int64.of_int (i * i)) ] in
  Alcotest.(check (list string)) "verifies" [] (Driver.verify ~arrays c)

let test_compile_all () =
  let source =
    "void fir(int8 A[16], int16 C[12]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 12; i++) { C[i] = A[i] + 2*A[i+2] - A[i+4]; }\n\
     }\n\
     int helper(int x) { return x + 1; }\n\
     void bad(int A[8], int B[8], int C[8]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 8; i++) { C[i] = A[B[i]]; }\n\
     }\n"
  in
  let oks, errs = Driver.compile_all source in
  Alcotest.(check (list string)) "compiled kernels" [ "fir" ]
    (List.map fst oks);
  Alcotest.(check (list string)) "failed kernels" [ "bad" ]
    (List.map fst errs);
  (* scalar-only helper is not a hardware kernel *)
  Alcotest.(check bool) "helper skipped" true
    (not (List.mem_assoc "helper" oks) && not (List.mem_assoc "helper" errs))

let suites =
  [ "analysis.loops",
    [ Alcotest.test_case "dominators on a cyclic CFG" `Quick
        test_cfg_loop_dominators;
      Alcotest.test_case "dominance frontier with back edge" `Quick
        test_cfg_loop_dominance_frontier;
      Alcotest.test_case "liveness through a loop" `Quick
        test_liveness_through_loop;
      Alcotest.test_case "reaching definitions in a loop" `Quick
        test_reaching_defs_loop;
      Alcotest.test_case "SSA with loop phis" `Quick test_ssa_on_loop;
      Alcotest.test_case "evaluator runs the cycle" `Quick
        test_eval_loop_proc ];
    "core.lut_conversion",
    [ Alcotest.test_case "function becomes a ROM" `Quick
        test_driver_lut_conversion;
      Alcotest.test_case "LUT = inline results" `Quick
        test_driver_lut_vs_inline_same_result ];
    "core.robustness",
    [ Alcotest.test_case "deterministic compilation" `Quick
        test_compile_deterministic;
      Alcotest.test_case "zero-iteration loop" `Quick
        test_engine_zero_iterations;
      Alcotest.test_case "single-iteration loop" `Quick
        test_engine_single_iteration;
      Alcotest.test_case "bus wider than needed" `Quick
        test_engine_wide_bus_beyond_array;
      Alcotest.test_case "offset-window kernel" `Quick
        test_strip_mined_kernel_verifies;
      Alcotest.test_case "compile-all partitions a file" `Quick
        test_compile_all ] ]
