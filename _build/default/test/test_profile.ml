(* Tests for the profiling tool set (paper Figure 1 / reference [10]). *)

module Profile = Roccc_core.Profile

let app_source =
  "void app(int A[64], int B[60], int C[60], int* checksum) {\n\
  \  int i, j;\n\
  \  for (i = 0; i < 60; i++) {\n\
  \    B[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];\n\
  \  }\n\
  \  for (i = 0; i < 4; i++) {\n\
  \    C[i] = B[i];\n\
  \  }\n\
  \  int sum;\n\
  \  sum = 0;\n\
  \  for (i = 0; i < 60; i++) {\n\
  \    sum = sum + B[i];\n\
  \  }\n\
  \  *checksum = sum;\n\
   }\n"

let analyze () =
  Profile.analyze ~entry:"app"
    ~arrays:[ "A", Array.init 64 Int64.of_int ]
    app_source

let test_counts_iterations () =
  let p = analyze () in
  let by_iters =
    List.sort
      (fun (a : Profile.site) b -> compare a.Profile.site_id b.Profile.site_id)
      p.Profile.sites
  in
  Alcotest.(check int) "three loops" 3 (List.length by_iters);
  Alcotest.(check (list int64)) "iteration counts"
    [ 60L; 4L; 60L ]
    (List.map (fun s -> s.Profile.iterations) by_iters)

let test_ranks_hot_loop_first () =
  let p = analyze () in
  match p.Profile.sites with
  | hot :: _ ->
    (* the FIR loop (9 ops x 60 iters) dominates *)
    Alcotest.(check bool) "FIR loop is hottest" true
      (hot.Profile.static_ops >= 8 && Int64.equal hot.Profile.iterations 60L)
  | [] -> Alcotest.fail "no sites"

let test_fractions_sum_to_one () =
  let p = analyze () in
  let total =
    List.fold_left (fun acc s -> acc +. Profile.fraction p s) 0.0 p.Profile.sites
  in
  Alcotest.(check bool)
    (Printf.sprintf "fractions sum to 1 (got %f)" total)
    true
    (abs_float (total -. 1.0) < 1e-9)

let test_candidates_threshold () =
  let p = analyze () in
  let top = Profile.kernel_candidates ~threshold:0.5 p in
  Alcotest.(check int) "one dominant kernel" 1 (List.length top);
  let all = Profile.kernel_candidates ~threshold:0.0 p in
  Alcotest.(check int) "all sites pass at 0" 3 (List.length all)

let test_computational_density () =
  let p = analyze () in
  List.iter
    (fun (s : Profile.site) ->
      Alcotest.(check bool) "density non-negative" true
        (Profile.computational_density s >= 0.0))
    p.Profile.sites;
  (* the FIR loop: 8 arith ops (4 mul, 3 add, 1 sub), 6 memory accesses
     (5 window reads + 1 store) -> density 8/6 *)
  let hot = List.hd p.Profile.sites in
  Alcotest.(check bool)
    (Printf.sprintf "FIR density ~1.33 (got %f)"
       (Profile.computational_density hot))
    true
    (abs_float (Profile.computational_density hot -. (8.0 /. 6.0)) < 0.01)

let test_control_density_flagged () =
  let p =
    Profile.analyze ~entry:"k"
      ~arrays:[ "A", Array.init 16 Int64.of_int ]
      "void k(int A[16], int C[16]) {\n\
      \  int i;\n\
      \  for (i = 0; i < 16; i++) {\n\
      \    int t;\n\
      \    if (A[i] > 8) { t = A[i] * 2; } else { t = A[i]; }\n\
      \    C[i] = t;\n\
      \  }\n\
       }"
  in
  match p.Profile.sites with
  | [ s ] -> Alcotest.(check int) "one branch" 1 s.Profile.branch_statements
  | _ -> Alcotest.fail "expected one site"

let test_nested_loops_separate_sites () =
  let p =
    Profile.analyze ~entry:"k"
      ~arrays:[ "A", Array.init 8 Int64.of_int ]
      "void k(int A[8], int* o) {\n\
      \  int i, j, s;\n\
      \  s = 0;\n\
      \  for (i = 0; i < 8; i++) {\n\
      \    for (j = 0; j < 3; j++) {\n\
      \      s = s + A[i] * j;\n\
      \    }\n\
      \  }\n\
      \  *o = s;\n\
       }"
  in
  let by_id =
    List.sort
      (fun (a : Profile.site) b -> compare a.Profile.site_id b.Profile.site_id)
      p.Profile.sites
  in
  match by_id with
  | [ outer; inner ] ->
    Alcotest.(check int64) "outer iters" 8L outer.Profile.iterations;
    Alcotest.(check int64) "inner iters" 24L inner.Profile.iterations;
    (* the outer loop body excludes the inner loop's ops *)
    Alcotest.(check int) "outer ops exclude inner" 0 outer.Profile.static_ops
  | _ -> Alcotest.fail "expected two sites"

let test_report_renders () =
  let p = analyze () in
  let text = Profile.report p in
  Alcotest.(check bool) "has header" true
    (String.length text > 0
    && String.sub text 0 4 = "loop");
  Alcotest.(check bool) "mentions candidates" true
    (let re = Str.regexp_string "hardware candidates" in
     try
       ignore (Str.search_forward re text 0);
       true
     with Not_found -> false)

let suites =
  [ "core.profile",
    [ Alcotest.test_case "iteration counts" `Quick test_counts_iterations;
      Alcotest.test_case "hot loop ranked first" `Quick
        test_ranks_hot_loop_first;
      Alcotest.test_case "fractions sum to one" `Quick
        test_fractions_sum_to_one;
      Alcotest.test_case "candidate threshold" `Quick
        test_candidates_threshold;
      Alcotest.test_case "computational density" `Quick
        test_computational_density;
      Alcotest.test_case "control density flagged" `Quick
        test_control_density_flagged;
      Alcotest.test_case "nested loops are separate sites" `Quick
        test_nested_loops_separate_sites;
      Alcotest.test_case "report renders" `Quick test_report_renders ] ]
