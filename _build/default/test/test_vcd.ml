(* Tests for the VCD waveform dump of execution-model runs. *)

module Driver = Roccc_core.Driver
module Vcd = Roccc_hw.Vcd
module Engine = Roccc_hw.Engine

let contains needle hay =
  let re = Str.regexp_string needle in
  try
    ignore (Str.search_forward re hay 0);
    true
  with Not_found -> false

let fir_src =
  "void fir(int8 A[12], int16 C[8]) {\n\
  \  int i;\n\
  \  for (i = 0; i < 8; i++) {\n\
  \    C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];\n\
  \  }\n\
   }\n"

let simulate () =
  let c = Driver.compile ~entry:"fir" fir_src in
  let arrays = [ "A", Array.init 12 (fun i -> Int64.of_int (i + 1)) ] in
  c, Driver.simulate ~arrays c

let test_vcd_structure () =
  let c, r = simulate () in
  let dump = Vcd.of_simulation ~design:"fir" c.Driver.kernel r in
  let text = Vcd.render dump in
  Alcotest.(check bool) "timescale" true (contains "$timescale" text);
  Alcotest.(check bool) "scope" true (contains "$scope module fir" text);
  Alcotest.(check bool) "controller var" true
    (contains "controller_state" text);
  Alcotest.(check bool) "window input var" true (contains " A0 $end" text);
  Alcotest.(check bool) "output var" true (contains " Tmp0 $end" text);
  Alcotest.(check bool) "definitions closed" true
    (contains "$enddefinitions $end" text)

let test_vcd_launch_retire_traces () =
  let _c, r = simulate () in
  Alcotest.(check int) "8 launches traced" 8
    (List.length r.Engine.launch_trace);
  Alcotest.(check int) "8 retires traced" 8
    (List.length r.Engine.retire_trace);
  (* each retirement happens exactly latency cycles after its launch *)
  List.iter2
    (fun (lc, _) (rc, _) ->
      Alcotest.(check int) "latency gap" r.Engine.pipeline_latency (rc - lc))
    r.Engine.launch_trace r.Engine.retire_trace;
  (* retired values are the FIR results in order *)
  let first_out = snd (List.hd r.Engine.retire_trace) in
  (* inputs 1..12: C[0] = 3*1+5*2+7*3+9*4-5 = 65 *)
  Alcotest.(check int64) "first result" 65L (List.assoc "Tmp0" first_out)

let test_vcd_value_lines () =
  let c, r = simulate () in
  let dump = Vcd.of_simulation ~design:"fir" c.Driver.kernel r in
  let text = Vcd.render dump in
  (* 65 in 16 bits *)
  Alcotest.(check bool) "first output value present" true
    (contains "b0000000001000001 " text);
  (* controller reaches done (state 4 = b100) *)
  Alcotest.(check bool) "done state" true (contains "b100 !" text)

let test_vcd_rejects_disorder () =
  let bad =
    { Vcd.design = "x";
      timescale_ns = 10;
      signals =
        [ { Vcd.sig_name = "s"; sig_bits = 8; changes = [ 5, 1L; 3, 2L ] } ];
      end_cycle = 10 }
  in
  match Vcd.render bad with
  | exception Vcd.Error _ -> ()
  | _ -> Alcotest.fail "expected out-of-order rejection"

let test_vcd_ident_uniqueness () =
  (* identifier generator yields distinct ids for the first few hundred *)
  let ids = List.init 300 Vcd.ident_of_index in
  Alcotest.(check int) "unique ids" 300
    (List.length (List.sort_uniq compare ids))

let suites =
  [ "hw.vcd",
    [ Alcotest.test_case "structure" `Quick test_vcd_structure;
      Alcotest.test_case "launch/retire traces" `Quick
        test_vcd_launch_retire_traces;
      Alcotest.test_case "value lines" `Quick test_vcd_value_lines;
      Alcotest.test_case "rejects out-of-order changes" `Quick
        test_vcd_rejects_disorder;
      Alcotest.test_case "identifier uniqueness" `Quick
        test_vcd_ident_uniqueness ] ]
