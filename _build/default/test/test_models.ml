(* Property tests over the cost models and buffers: monotonicity of the area
   model in port widths, pipeline depth monotone in the stage budget, 2-D
   smart buffer equivalence with direct indexing. *)

module Driver = Roccc_core.Driver
module Area = Roccc_fpga.Area
module Pipeline = Roccc_datapath.Pipeline
module Smart_buffer = Roccc_buffers.Smart_buffer

let qcheck_case = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Area model                                                          *)
(* ------------------------------------------------------------------ *)

let prop_area_monotone_in_width =
  (* widening the input ports never shrinks the estimated area *)
  QCheck.Test.make ~count:20 ~name:"area monotone in port width"
    QCheck.(pair (int_range 4 16) (int_range 1 15))
    (fun (w, extra) ->
      let kernel bits =
        Printf.sprintf
          "void k(int%d A[16], int32 C[12]) {\n\
          \  int i;\n\
          \  for (i = 0; i < 12; i++) {\n\
          \    C[i] = 3*A[i] + 5*A[i+1] - A[i+4] * A[i+2];\n\
          \  }\n\
           }"
          bits
      in
      let narrow = Driver.compile ~entry:"k" (kernel w) in
      let wide = Driver.compile ~entry:"k" (kernel (w + extra)) in
      wide.Driver.area.Area.slices >= narrow.Driver.area.Area.slices)

let prop_slices_of_monotone =
  QCheck.Test.make ~count:200 ~name:"slices_of monotone"
    QCheck.(pair (pair (int_range 0 5000) (int_range 0 5000)) (int_range 0 500))
    (fun ((luts, ffs), extra) ->
      Area.slices_of ~luts:(luts + extra) ~flip_flops:ffs
      >= Area.slices_of ~luts ~flip_flops:ffs
      && Area.slices_of ~luts ~flip_flops:(ffs + extra)
         >= Area.slices_of ~luts ~flip_flops:ffs)

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

let prop_pipeline_depth_monotone_in_budget =
  (* a smaller stage budget never yields a shallower pipeline *)
  QCheck.Test.make ~count:15 ~name:"pipeline depth monotone in stage budget"
    QCheck.(pair (QCheck.make (Gen.float_range 1.5 20.0)) (int_range 1 10))
    (fun (t1, delta) ->
      let t2 = t1 +. float_of_int delta in
      let compile target_ns =
        Driver.compile
          ~options:{ Driver.default_options with Driver.target_ns }
          ~entry:"fir"
          "void fir(int8 A[16], int16 C[12]) { int i; for (i=0;i<12;i++) \
           C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4]; }"
      in
      let deep = compile t1 and shallow = compile t2 in
      Pipeline.latency deep.Driver.pipeline
      >= Pipeline.latency shallow.Driver.pipeline)

let prop_latency_never_below_levels =
  (* the pipeline cannot collapse below one stage *)
  QCheck.Test.make ~count:10 ~name:"at least one pipeline stage"
    (QCheck.make (QCheck.Gen.float_range 1.0 100.0))
    (fun target_ns ->
      let c =
        Driver.compile
          ~options:{ Driver.default_options with Driver.target_ns }
          ~entry:"k" "void k(int a, int b, int* o) { *o = a * b + 1; }"
      in
      Pipeline.latency c.Driver.pipeline >= 1)

(* ------------------------------------------------------------------ *)
(* 2-D smart buffer                                                    *)
(* ------------------------------------------------------------------ *)

let prop_buffer_2d_matches_direct =
  QCheck.Test.make ~count:40
    ~name:"2-D smart buffer windows equal direct indexing"
    QCheck.(pair (int_range 1 3) (int_range 1 3))
    (fun (wr, wc) ->
      let rows = 6 and cols = 7 in
      let ir = rows - wr and ic = cols - wc in
      QCheck.assume (ir >= 1 && ic >= 1);
      let offsets =
        List.concat_map
          (fun r -> List.init wc (fun c -> [ r; c ]))
          (List.init wr (fun r -> r))
      in
      let cfg =
        { Smart_buffer.element_bits = 16;
          element_signed = true;
          bus_elements = 1;
          array_dims = [ rows; cols ];
          window_offsets = offsets;
          stride = [ 1; 1 ];
          iterations = [ ir; ic ];
          lower = [ 0; 0 ] }
      in
      let b = Smart_buffer.create cfg in
      let data =
        Array.init (rows * cols) (fun i -> Int64.of_int ((i * 13 mod 301) - 150))
      in
      let windows = ref [] in
      Array.iter
        (fun v ->
          Smart_buffer.push b [| v |];
          let rec drain () =
            match Smart_buffer.pop_window b with
            | Some w ->
              windows := !windows @ [ w ];
              drain ()
            | None -> ()
          in
          drain ())
        data;
      List.length !windows = ir * ic
      && List.for_all
           (fun (idx, w) ->
             let r0 = idx / ic and c0 = idx mod ic in
             Array.to_list w
             = List.map
                 (fun off ->
                   match off with
                   | [ dr; dc ] -> data.(((r0 + dr) * cols) + c0 + dc)
                   | _ -> assert false)
                 offsets)
           (List.mapi (fun i w -> i, w) !windows))

let prop_buffer_capacity_sufficient =
  (* the declared register capacity covers the live span of any window *)
  QCheck.Test.make ~count:100 ~name:"buffer capacity covers the window span"
    QCheck.(pair (int_range 1 6) (int_range 1 4))
    (fun (extent, bus) ->
      let n = 32 in
      let cfg =
        { Smart_buffer.element_bits = 8;
          element_signed = false;
          bus_elements = bus;
          array_dims = [ n ];
          window_offsets = List.init extent (fun i -> [ i ]);
          stride = [ 1 ];
          iterations = [ n - extent + 1 ];
          lower = [ 0 ] }
      in
      Smart_buffer.capacity_elements cfg >= extent
      && Smart_buffer.capacity_elements cfg <= extent + bus)

(* ------------------------------------------------------------------ *)
(* Engine invariants                                                   *)
(* ------------------------------------------------------------------ *)

let prop_engine_cycles_lower_bound =
  (* total cycles >= launches (II = 1) and >= latency *)
  QCheck.Test.make ~count:15 ~name:"cycle count lower bounds"
    QCheck.(int_range 4 24)
    (fun n ->
      let src =
        Printf.sprintf
          "void k(int A[%d], int C[%d]) { int i; for (i=0;i<%d;i++) C[i] = \
           A[i] * 2 + 1; }"
          (n + 1) n n
      in
      let c = Driver.compile ~entry:"k" src in
      let arrays = [ "A", Array.init (n + 1) Int64.of_int ] in
      let r = Driver.simulate ~arrays c in
      r.Roccc_hw.Engine.cycles >= r.Roccc_hw.Engine.launches
      && r.Roccc_hw.Engine.cycles >= r.Roccc_hw.Engine.pipeline_latency
      && r.Roccc_hw.Engine.launches = n)

let test_power_estimates () =
  let c = Roccc_core.Kernels.compile Roccc_core.Kernels.fir in
  let pw = Area.power c.Driver.area in
  Alcotest.(check bool) "positive" true
    (pw.Area.dynamic_mw > 0.0 && pw.Area.static_mw > 0.0);
  Alcotest.(check bool) "total = dyn + static" true
    (abs_float (pw.Area.total_mw -. pw.Area.dynamic_mw -. pw.Area.static_mw)
    < 1e-9);
  (* higher toggle rate -> more dynamic power *)
  let hot = Area.power ~toggle_rate:0.9 c.Driver.area in
  Alcotest.(check bool) "toggle monotone" true
    (hot.Area.dynamic_mw > pw.Area.dynamic_mw);
  (* a bigger circuit burns more power at the same clock *)
  let big = Roccc_core.Kernels.compile Roccc_core.Kernels.square_root in
  let pw_big = Area.power big.Driver.area in
  Alcotest.(check bool) "bigger kernel, more static power" true
    (pw_big.Area.static_mw > pw.Area.static_mw)

let suites =
  [ "models.properties",
    [ qcheck_case prop_area_monotone_in_width;
      qcheck_case prop_slices_of_monotone;
      qcheck_case prop_pipeline_depth_monotone_in_budget;
      qcheck_case prop_latency_never_below_levels;
      qcheck_case prop_buffer_2d_matches_direct;
      qcheck_case prop_buffer_capacity_sufficient;
      qcheck_case prop_engine_cycles_lower_bound;
      Alcotest.test_case "power model" `Quick test_power_estimates ] ]
