(* A gallery of realistic kernel patterns, each compiled end-to-end and
   co-verified: reductions with comparisons in the feedback loop, multiple
   input streams, saturation branches, median networks, scalar-parameter
   blending. Exercises distinctive data-path shapes beyond Table 1. *)

module Driver = Roccc_core.Driver
module Engine = Roccc_hw.Engine

let verify_kernel ?(scalars = []) name src arrays =
  let c = Driver.compile ~entry:name src in
  Alcotest.(check (list string)) (name ^ " hw = sw") []
    (Driver.verify ~scalars ~arrays c);
  c

(* max reduction: comparison + mux inside the feedback loop *)
let test_max_reduction () =
  let src =
    "int best = -32768;\n\
     void maxred(int16 A[32], int* out) {\n\
    \  int i;\n\
    \  for (i = 0; i < 32; i++) {\n\
    \    if (A[i] > best) { best = A[i]; }\n\
    \  }\n\
    \  *out = best;\n\
     }"
  in
  let a = Array.init 32 (fun i -> Int64.of_int (((i * 7919) mod 2000) - 1000)) in
  let c = verify_kernel "maxred" src [ "A", a ] in
  let r = Driver.simulate ~arrays:[ "A", a ] c in
  let want = Array.fold_left max (-32768L) a in
  Alcotest.(check int64) "max value" want
    (List.assoc "out" r.Engine.scalar_outputs);
  (* the feedback loop contains a mux: check it still fits one stage *)
  Alcotest.(check bool) "feedback bits allocated" true
    (c.Driver.pipeline.Roccc_datapath.Pipeline.feedback_bits >= 32)

(* dot product of two streams *)
let test_dot_product () =
  let src =
    "int acc = 0;\n\
     void dot(int12 A[24], int12 B[24], int* out) {\n\
    \  int i;\n\
    \  for (i = 0; i < 24; i++) { acc = acc + A[i] * B[i]; }\n\
    \  *out = acc;\n\
     }"
  in
  let a = Array.init 24 (fun i -> Int64.of_int ((i * 13) - 150)) in
  let b = Array.init 24 (fun i -> Int64.of_int (200 - (i * 17))) in
  let c = verify_kernel "dot" src [ "A", a; "B", b ] in
  let r = Driver.simulate ~arrays:[ "A", a; "B", b ] c in
  let want = ref 0L in
  Array.iteri (fun i v -> want := Int64.add !want (Int64.mul v b.(i))) a;
  Alcotest.(check int64) "dot product" !want
    (List.assoc "out" r.Engine.scalar_outputs)

(* saturating add: two nested saturation branches *)
let test_saturating_add () =
  let src =
    "void satadd(int8 A[16], int8 B[16], int8 C[16]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 16; i++) {\n\
    \    int s;\n\
    \    s = A[i] + B[i];\n\
    \    if (s > 127) { s = 127; }\n\
    \    if (s < -128) { s = -128; }\n\
    \    C[i] = s;\n\
    \  }\n\
     }"
  in
  let a = Array.init 16 (fun i -> Int64.of_int ((i * 31 mod 255) - 127)) in
  let b = Array.init 16 (fun i -> Int64.of_int (120 - (i * 29 mod 250))) in
  let c = verify_kernel "satadd" src [ "A", a; "B", b ] in
  (* two sequential diamonds -> two mux nodes *)
  let muxes =
    List.length
      (List.filter
         (fun (n : Roccc_datapath.Graph.node) ->
           match n.Roccc_datapath.Graph.node_kind with
           | Roccc_datapath.Graph.Mux_node _ -> true
           | _ -> false)
         c.Driver.dp.Roccc_datapath.Graph.nodes)
  in
  Alcotest.(check int) "two mux nodes" 2 muxes

(* median of three via comparison network *)
let test_median3 () =
  let src =
    "void median(int16 A[20], int16 C[18]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 18; i++) {\n\
    \    int a, b, cc, lo, hi, m;\n\
    \    a = A[i]; b = A[i+1]; cc = A[i+2];\n\
    \    lo = a; hi = b;\n\
    \    if (a > b) { lo = b; hi = a; }\n\
    \    m = cc;\n\
    \    if (cc < lo) { m = lo; }\n\
    \    if (cc > hi) { m = hi; }\n\
    \    C[i] = m;\n\
    \  }\n\
     }"
  in
  let a = Array.init 20 (fun i -> Int64.of_int ((i * 5741 mod 1000) - 500)) in
  let c = verify_kernel "median" src [ "A", a ] in
  let r = Driver.simulate ~arrays:[ "A", a ] c in
  let out = List.assoc "C" r.Engine.output_arrays in
  Array.iteri
    (fun i v ->
      let trio = List.sort compare [ a.(i); a.(i + 1); a.(i + 2) ] in
      Alcotest.(check int64)
        (Printf.sprintf "median[%d]" i)
        (List.nth trio 1) v)
    out

(* alpha blend of two streams with a scalar parameter *)
let test_alpha_blend () =
  let src =
    "void blend(uint8 A[16], uint8 B[16], int alpha, uint8 C[16]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 16; i++) {\n\
    \    C[i] = (A[i] * alpha + B[i] * (256 - alpha)) >> 8;\n\
    \  }\n\
     }"
  in
  let a = Array.init 16 (fun i -> Int64.of_int (i * 16)) in
  let b = Array.init 16 (fun i -> Int64.of_int (255 - (i * 16))) in
  let c =
    verify_kernel ~scalars:[ "alpha", 64L ] "blend" src [ "A", a; "B", b ]
  in
  let r =
    Driver.simulate ~scalars:[ "alpha", 64L ] ~arrays:[ "A", a; "B", b ] c
  in
  let out = List.assoc "C" r.Engine.output_arrays in
  Array.iteri
    (fun i v ->
      let want =
        Int64.of_int
          (((Int64.to_int a.(i) * 64) + (Int64.to_int b.(i) * 192)) asr 8
          land 255)
      in
      Alcotest.(check int64) (Printf.sprintf "blend[%d]" i) want v)
    out

(* RGB-to-luma: three input streams, weighted sum *)
let test_rgb_to_luma () =
  let src =
    "void luma(uint8 R[12], uint8 G[12], uint8 B[12], uint8 Y[12]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 12; i++) {\n\
    \    Y[i] = (77*R[i] + 150*G[i] + 29*B[i]) >> 8;\n\
    \  }\n\
     }"
  in
  let mk seed = Array.init 12 (fun i -> Int64.of_int ((i * seed) mod 256)) in
  let _c =
    verify_kernel "luma" src [ "R", mk 37; "G", mk 91; "B", mk 153 ]
  in
  ()

(* decimation: stride-2 window, half-rate output *)
let test_decimate_by_two () =
  let src =
    "void decim(int16 A[33], int16 C[16]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 32; i = i + 2) {\n\
    \    C[i] = (A[i] + 2*A[i+1] + A[i+2]) / 4;\n\
    \  }\n\
     }"
  in
  (* NOTE: the output is written at stride-2 positions of a 33-wide view in
     the C semantics; keep C wide enough for position 30 *)
  let src =
    Str.global_replace (Str.regexp_string "int16 C[16]") "int16 C[31]" src
  in
  let a = Array.init 33 (fun i -> Int64.of_int ((i * 23 mod 400) - 200)) in
  let c = verify_kernel "decim" src [ "A", a ] in
  let r = Driver.simulate ~arrays:[ "A", a ] c in
  Alcotest.(check int) "16 launches" 16 r.Engine.launches;
  Alcotest.(check bool) "each element fetched once" true
    (r.Engine.memory_reads = 33)

let suites =
  [ "gallery",
    [ Alcotest.test_case "max reduction (mux in feedback)" `Quick
        test_max_reduction;
      Alcotest.test_case "dot product" `Quick test_dot_product;
      Alcotest.test_case "saturating add" `Quick test_saturating_add;
      Alcotest.test_case "median of three" `Quick test_median3;
      Alcotest.test_case "alpha blend" `Quick test_alpha_blend;
      Alcotest.test_case "RGB to luma" `Quick test_rgb_to_luma;
      Alcotest.test_case "decimation by two" `Quick test_decimate_by_two ] ]
