(* Integration tests: the full driver pipeline on every Table 1 benchmark,
   co-simulated against the C interpreter, plus golden checks against the
   hand-written behavioural models. *)

open Roccc_core
module Behaviour = Roccc_ip.Behaviour
module Baselines = Roccc_ip.Baselines

(* ------------------------------------------------------------------ *)
(* Every benchmark compiles and matches the software semantics          *)
(* ------------------------------------------------------------------ *)

let check_benchmark name =
  match Kernels.find name with
  | None -> Alcotest.fail ("unknown benchmark " ^ name)
  | Some b ->
    let _c, _r, diffs = Kernels.run b in
    Alcotest.(check (list string)) (name ^ " hw = sw") [] diffs

let test_bench name () = check_benchmark name

let test_wavelet_cols () =
  let _c, _r, diffs = Kernels.run Kernels.wavelet_cols in
  Alcotest.(check (list string)) "wavelet_cols hw = sw" [] diffs

(* ------------------------------------------------------------------ *)
(* Golden behaviour checks                                              *)
(* ------------------------------------------------------------------ *)

let test_bit_correlator_golden () =
  let b = Kernels.bit_correlator in
  let c = Kernels.compile b in
  let arrays = b.Kernels.arrays () in
  let r = Driver.simulate ~arrays c in
  let x = List.assoc "X" arrays in
  let out = List.assoc "C" r.Roccc_hw.Engine.output_arrays in
  Array.iteri
    (fun i v ->
      let want =
        Behaviour.bit_correlator
          ~mask:(Int64.of_int Kernels.bit_correlator_mask) x.(i)
      in
      Alcotest.(check int64) (Printf.sprintf "count[%d]" i) want v)
    out

let test_udiv_golden () =
  let b = Kernels.udiv in
  let c = Kernels.compile b in
  let arrays = b.Kernels.arrays () in
  let r = Driver.simulate ~arrays c in
  let n = List.assoc "N" arrays and d = List.assoc "D" arrays in
  let q = List.assoc "Q" r.Roccc_hw.Engine.output_arrays in
  let rem = List.assoc "R" r.Roccc_hw.Engine.output_arrays in
  Array.iteri
    (fun i _ ->
      let wq, wr = Behaviour.udiv n.(i) d.(i) in
      Alcotest.(check int64) (Printf.sprintf "q[%d]" i) wq q.(i);
      Alcotest.(check int64) (Printf.sprintf "r[%d]" i) wr rem.(i))
    q

let test_sqrt_golden () =
  let b = Kernels.square_root in
  let c = Kernels.compile b in
  let arrays = b.Kernels.arrays () in
  let r = Driver.simulate ~arrays c in
  let x = List.assoc "X" arrays in
  let s = List.assoc "S" r.Roccc_hw.Engine.output_arrays in
  Array.iteri
    (fun i v ->
      Alcotest.(check int64)
        (Printf.sprintf "sqrt[%d] of %Ld" i x.(i))
        (Behaviour.isqrt x.(i))
        v)
    s

let test_cos_golden () =
  let b = Kernels.cos_kernel in
  let c = Kernels.compile b in
  let arrays = b.Kernels.arrays () in
  let r = Driver.simulate ~arrays c in
  let x = List.assoc "X" arrays in
  let y = List.assoc "Y" r.Roccc_hw.Engine.output_arrays in
  Array.iteri
    (fun i v ->
      let want =
        Roccc_hir.Lut_conv.lookup Kernels.cos_table x.(i)
      in
      Alcotest.(check int64) (Printf.sprintf "cos[%d]" i) want v)
    y

let test_dct_golden () =
  (* kernels' coefficient table must agree with the behavioural model *)
  Alcotest.(check bool) "coefficient tables agree" true
    (Kernels.dct8_coeff = Behaviour.dct8_coeff);
  let b = Kernels.dct in
  let c = Kernels.compile b in
  let arrays = b.Kernels.arrays () in
  let r = Driver.simulate ~arrays c in
  let x = List.assoc "X" arrays in
  let y = List.assoc "Y" r.Roccc_hw.Engine.output_arrays in
  let want = Behaviour.dct8 x in
  Alcotest.(check (list int64)) "dct outputs"
    (Array.to_list want) (Array.to_list y)

let test_fir_golden () =
  let b = Kernels.fir in
  let c = Kernels.compile b in
  let arrays = b.Kernels.arrays () in
  let r = Driver.simulate ~arrays c in
  let a = List.assoc "A" arrays in
  let out = List.assoc "C" r.Roccc_hw.Engine.output_arrays in
  let want = Behaviour.fir a in
  for i = 0 to 59 do
    Alcotest.(check int64) (Printf.sprintf "fir[%d]" i) want.(i) out.(i)
  done

(* ------------------------------------------------------------------ *)
(* Driver-level behaviour                                               *)
(* ------------------------------------------------------------------ *)

let test_pass_trace () =
  let c = Kernels.compile Kernels.fir in
  let trace = c.Driver.pass_trace in
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("pass " ^ expected) true
        (List.mem expected trace))
    [ "parse"; "semantic-check"; "inline"; "constant-fold";
      "scalar-replacement"; "feedback-detection"; "lower-to-suifvm";
      "ssa-and-cfg"; "datapath-build"; "bit-width-inference"; "pipelining";
      "vhdl-generation"; "area-estimation" ]

let test_dct_is_block_kernel () =
  (* DCT fully unrolls to a block kernel producing 8 outputs per cycle
     (paper §5: "ROCCC's throughput is eight output data per clock cycle"). *)
  let c = Kernels.compile Kernels.dct in
  Alcotest.(check int) "no loops" 0 (List.length c.Driver.kernel.Roccc_hir.Kernel.loops);
  Alcotest.(check int) "8 outputs" 8
    (List.length c.Driver.kernel.Roccc_hir.Kernel.outputs)

let test_width_ablation_reduces_area () =
  let b = Kernels.fir in
  let with_inference = Kernels.compile b in
  let without =
    Driver.compile
      ~options:
        { (b.Kernels.tune Driver.default_options) with
          Driver.infer_widths = false }
      ~luts:b.Kernels.luts ~entry:b.Kernels.entry b.Kernels.source
  in
  Alcotest.(check bool)
    (Printf.sprintf "inferred %d <= declared %d slices"
       with_inference.Driver.area.Roccc_fpga.Area.slices
       without.Driver.area.Roccc_fpga.Area.slices)
    true
    (with_inference.Driver.area.Roccc_fpga.Area.slices
    <= without.Driver.area.Roccc_fpga.Area.slices)

let test_quick_estimate_close () =
  (* The fast estimator (paper ref [13]) lands near the full model. *)
  List.iter
    (fun name ->
      match Kernels.find name with
      | None -> ()
      | Some b ->
        let c = Kernels.compile b in
        let full = c.Driver.area.Roccc_fpga.Area.slices in
        let quick = Roccc_fpga.Area.quick_estimate c.Driver.dp in
        let ratio = float_of_int quick /. float_of_int (max 1 full) in
        Alcotest.(check bool)
          (Printf.sprintf "%s: quick %d vs full %d" name quick full)
          true
          (ratio > 0.2 && ratio < 5.0))
    [ "fir"; "bit_correlator"; "mul_acc" ]

let test_area_positive_and_ordered () =
  (* Bigger kernels cost more slices: bit_correlator < udiv < square_root. *)
  let slices name =
    match Kernels.find name with
    | Some b -> (Kernels.compile b).Driver.area.Roccc_fpga.Area.slices
    | None -> Alcotest.fail "missing"
  in
  let bc = slices "bit_correlator" in
  let ud = slices "udiv" in
  let sq = slices "square_root" in
  Alcotest.(check bool) "all positive" true (bc > 0 && ud > 0 && sq > 0);
  Alcotest.(check bool)
    (Printf.sprintf "ordering %d < %d < %d" bc ud sq)
    true
    (bc < ud && ud < sq)

let test_paper_table_complete () =
  Alcotest.(check int) "9 published rows" 9
    (List.length Baselines.paper_table1);
  List.iter
    (fun (r : Baselines.row) ->
      Alcotest.(check bool) (r.Baselines.name ^ " has a model") true
        (Option.is_some (Baselines.model r.Baselines.name)))
    Baselines.paper_table1

let test_behaviour_wavelet_invertible_shape () =
  (* One level of the (5,3) transform keeps the sample count. *)
  let img = Array.init (8 * 8) (fun i -> Int64.of_int (i * 5 mod 97)) in
  let out = Behaviour.wavelet53_2d ~rows:8 ~cols:8 img in
  Alcotest.(check int) "same size" 64 (Array.length out)

let test_mul_acc_uses_mux_not_branch_in_dp () =
  (* the nd condition becomes mux/pipe hard nodes *)
  let c = Kernels.compile Kernels.mul_acc in
  let has_mux =
    List.exists
      (fun (n : Roccc_datapath.Graph.node) ->
        match n.Roccc_datapath.Graph.node_kind with
        | Roccc_datapath.Graph.Mux_node _ -> true
        | _ -> false)
      c.Driver.dp.Roccc_datapath.Graph.nodes
  in
  Alcotest.(check bool) "mux node present" true has_mux

let suites =
  [ "core.table1-kernels",
    (List.map
       (fun name ->
         Alcotest.test_case (name ^ " compiles & verifies") `Quick
           (test_bench name))
       [ "bit_correlator"; "mul_acc"; "udiv"; "square_root"; "cos";
         "arbitrary_lut"; "fir"; "dct"; "wavelet" ]
    @ [ Alcotest.test_case "wavelet_cols compiles & verifies" `Quick
          test_wavelet_cols ]);
    "core.golden",
    [ Alcotest.test_case "bit_correlator counts" `Quick
        test_bit_correlator_golden;
      Alcotest.test_case "udiv quotient/remainder" `Quick test_udiv_golden;
      Alcotest.test_case "square root" `Quick test_sqrt_golden;
      Alcotest.test_case "cos table" `Quick test_cos_golden;
      Alcotest.test_case "DCT" `Quick test_dct_golden;
      Alcotest.test_case "FIR" `Quick test_fir_golden ];
    "core.driver",
    [ Alcotest.test_case "pass trace (Figure 1)" `Quick test_pass_trace;
      Alcotest.test_case "DCT block kernel, 8 out/cycle" `Quick
        test_dct_is_block_kernel;
      Alcotest.test_case "bit-width ablation" `Quick
        test_width_ablation_reduces_area;
      Alcotest.test_case "quick area estimate" `Quick
        test_quick_estimate_close;
      Alcotest.test_case "area ordering" `Quick test_area_positive_and_ordered;
      Alcotest.test_case "paper table complete" `Quick
        test_paper_table_complete;
      Alcotest.test_case "wavelet behavioural shape" `Quick
        test_behaviour_wavelet_invertible_shape;
      Alcotest.test_case "mul_acc lowers branch to mux" `Quick
        test_mul_acc_uses_mux_not_branch_in_dp ] ]
