(* Tests for the back-end optimization passes (copy propagation, local value
   numbering, DCE), driver-level partial unrolling, and a differential
   fuzzer that pushes random kernels through the entire compiler and
   compares the cycle-accurate simulation against the C interpreter. *)

open Roccc_cfront
open Roccc_hir
open Roccc_vm
open Roccc_analysis
module Driver = Roccc_core.Driver
module Engine = Roccc_hw.Engine

let proc_of src name =
  let prog = Parser.parse_program src in
  let _ = Semant.check_program prog in
  let f = List.find (fun g -> g.Ast.fname = name) prog.Ast.funcs in
  let k = Feedback.annotate (Scalar_replacement.run prog f) in
  let proc = Lower.lower_kernel k in
  let _ = Ssa.convert proc in
  proc

let count_instrs (proc : Proc.t) =
  List.fold_left
    (fun acc (b : Proc.block) -> acc + List.length b.Proc.instrs)
    0 proc.Proc.blocks

(* ------------------------------------------------------------------ *)
(* Optimization passes                                                 *)
(* ------------------------------------------------------------------ *)

let test_value_numbering_shares () =
  (* (a + b) used twice computes one add *)
  let proc =
    proc_of "void f(int a, int b, int* o) { *o = (a + b) * (a + b); }" "f"
  in
  let before =
    List.length
      (List.filter
         (fun (i : Instr.instr) -> i.Instr.op = Instr.Add)
         (Proc.all_instrs proc))
  in
  Alcotest.(check int) "two adds before" 2 before;
  let _ = Optimize.run proc in
  Ssa.verify proc;
  let after =
    List.length
      (List.filter
         (fun (i : Instr.instr) -> i.Instr.op = Instr.Add)
         (Proc.all_instrs proc))
  in
  Alcotest.(check int) "one add after" 1 after;
  (* behaviour preserved *)
  let r = Eval.run proc ~inputs:[ "a", 3L; "b", 4L ] in
  Alcotest.(check int64) "49" 49L (List.assoc "o" r.Eval.outputs)

let test_dce_removes_dead_output_init () =
  (* the Ldc 0 initializing an always-written output is dead after SSA *)
  let proc = proc_of "void f(int a, int* o) { *o = a + 1; }" "f" in
  let _ = Optimize.run proc in
  let has_dead_ldc =
    List.exists
      (fun (i : Instr.instr) ->
        match i.Instr.op, i.Instr.dst with
        | Instr.Ldc 0L, Some d ->
          (* is d still read anywhere or exported? *)
          (not
             (List.exists
                (fun (p : Proc.port) -> p.Proc.port_reg = d)
                proc.Proc.outputs))
          && not
               (List.exists
                  (fun (j : Instr.instr) -> List.mem d j.Instr.srcs)
                  (Proc.all_instrs proc))
        | _ -> false)
      (Proc.all_instrs proc)
  in
  Alcotest.(check bool) "no dead ldc left" false has_dead_ldc

let test_optimize_shrinks_and_preserves () =
  List.iter
    (fun (src, name, inputs, expected_out, expected_val) ->
      let proc = proc_of src name in
      let before = count_instrs proc in
      let r0 = Eval.run proc ~inputs in
      let _ = Optimize.run proc in
      Ssa.verify proc;
      let after = count_instrs proc in
      let r1 = Eval.run proc ~inputs in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d -> %d instrs" name before after)
        true (after <= before);
      Alcotest.(check bool) "same outputs" true
        (r0.Eval.outputs = r1.Eval.outputs);
      Alcotest.(check int64) "expected value" expected_val
        (List.assoc expected_out r1.Eval.outputs))
    [ ( "void f(int a, int b, int* o) { *o = a*b + a*b + a*b; }", "f",
        [ "a", 3L; "b", 5L ], "o", 45L );
      ( "void g(int x, int* o) { int t, u; t = x + 1; u = x + 1; *o = t + u; \
         }", "g", [ "x", 10L ], "o", 22L ) ]

let test_optimize_preserves_feedback () =
  let src =
    "int sum = 0;\n\
     void acc(int A[8], int* out) {\n\
    \  int i;\n\
    \  for (i = 0; i < 8; i++) { sum = sum + A[i]; }\n\
    \  *out = sum;\n\
     }"
  in
  let proc = proc_of src "acc" in
  let _ = Optimize.run proc in
  Ssa.verify proc;
  (* the SNX must survive *)
  let has_snx =
    List.exists
      (fun (i : Instr.instr) ->
        match i.Instr.op with Instr.Snx _ -> true | _ -> false)
      (Proc.all_instrs proc)
  in
  Alcotest.(check bool) "snx kept" true has_snx;
  let stream = List.init 8 (fun i -> [ "A0", Int64.of_int (i + 1) ]) in
  let rs = Eval.run_stream proc stream in
  Alcotest.(check int64) "sum 1..8" 36L
    (List.assoc "Tmp0" (List.nth rs 7).Eval.outputs)

let test_optimize_ablation_smaller_area () =
  (* dct benefits from value numbering (shared butterfly terms) *)
  let b = Roccc_core.Kernels.dct in
  let on = Roccc_core.Kernels.compile b in
  let off =
    Driver.compile
      ~options:
        { (b.Roccc_core.Kernels.tune Driver.default_options) with
          Driver.optimize_vm = false }
      ~entry:b.Roccc_core.Kernels.entry b.Roccc_core.Kernels.source
  in
  Alcotest.(check bool)
    (Printf.sprintf "optimized %d <= unoptimized %d"
       on.Driver.area.Roccc_fpga.Area.slices
       off.Driver.area.Roccc_fpga.Area.slices)
    true
    (on.Driver.area.Roccc_fpga.Area.slices
    <= off.Driver.area.Roccc_fpga.Area.slices)

(* ------------------------------------------------------------------ *)
(* Partial unrolling through the driver                                *)
(* ------------------------------------------------------------------ *)

let fir_src =
  "void fir(int8 A[36], int16 C[32]) {\n\
  \  int i;\n\
  \  for (i = 0; i < 32; i++) {\n\
  \    C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];\n\
  \  }\n\
   }\n"

let test_partial_unroll_doubles_outputs () =
  let base = Driver.compile ~entry:"fir" fir_src in
  let unrolled =
    Driver.compile
      ~options:{ Driver.default_options with Driver.unroll_outer_factor = 2 }
      ~entry:"fir" fir_src
  in
  Alcotest.(check int) "1 output" 1
    (List.length base.Driver.kernel.Roccc_hir.Kernel.outputs);
  Alcotest.(check int) "2 outputs" 2
    (List.length unrolled.Driver.kernel.Roccc_hir.Kernel.outputs);
  (* simulate both; unrolled launches half as many iterations *)
  let arrays = [ "A", Array.init 36 (fun i -> Int64.of_int ((i * 3) - 50)) ] in
  let r1 = Driver.simulate ~arrays base in
  let r2 = Driver.simulate ~arrays unrolled in
  Alcotest.(check int) "half the launches" (r1.Engine.launches / 2)
    r2.Engine.launches;
  Alcotest.(check bool) "same output array" true
    (List.assoc "C" r1.Engine.output_arrays
    = List.assoc "C" r2.Engine.output_arrays);
  Alcotest.(check (list string)) "unrolled verifies" []
    (Driver.verify ~arrays unrolled)

let test_partial_unroll_factor_four () =
  let unrolled =
    Driver.compile
      ~options:{ Driver.default_options with Driver.unroll_outer_factor = 4 }
      ~entry:"fir" fir_src
  in
  Alcotest.(check int) "4 outputs" 4
    (List.length unrolled.Driver.kernel.Roccc_hir.Kernel.outputs);
  let arrays = [ "A", Array.init 36 (fun i -> Int64.of_int i) ] in
  Alcotest.(check (list string)) "verifies" []
    (Driver.verify ~arrays unrolled)

(* ------------------------------------------------------------------ *)
(* Differential fuzzing: random kernels, whole pipeline vs interpreter *)
(* ------------------------------------------------------------------ *)

(* Random loop bodies over a 3-wide window (A0..A2), one scalar parameter s,
   and temporaries; straight-line assignments and if/else over safe
   operators (no division by data). *)
let gen_kernel_source : string QCheck.Gen.t =
  let open QCheck.Gen in
  let var_pool = [ "A[i]"; "A[i+1]"; "A[i+2]"; "s" ] in
  let rec gen_expr depth vars =
    if depth <= 0 then
      oneof
        [ map (fun c -> string_of_int c) (int_range (-20) 20);
          oneofl (var_pool @ vars) ]
    else
      let sub = gen_expr (depth - 1) vars in
      oneof
        [ map (fun c -> string_of_int c) (int_range (-20) 20);
          oneofl (var_pool @ vars);
          map2 (fun a b -> Printf.sprintf "(%s + %s)" a b) sub sub;
          map2 (fun a b -> Printf.sprintf "(%s - %s)" a b) sub sub;
          map2 (fun a b -> Printf.sprintf "(%s * %s)" a b) sub sub;
          map2 (fun a b -> Printf.sprintf "(%s & %s)" a b) sub sub;
          map2 (fun a b -> Printf.sprintf "(%s | %s)" a b) sub sub;
          map2 (fun a b -> Printf.sprintf "(%s ^ %s)" a b) sub sub;
          map (fun a -> Printf.sprintf "(%s << 2)" a) sub;
          map (fun a -> Printf.sprintf "(%s >> 1)" a) sub;
          map2 (fun a b -> Printf.sprintf "(%s < %s)" a b) sub sub;
          map2 (fun a b -> Printf.sprintf "(%s == %s)" a b) sub sub;
          map (fun a -> Printf.sprintf "(%s / 5)" a) sub;
          map (fun a -> Printf.sprintf "(%s %% 7)" a) sub;
          map (fun a -> Printf.sprintf "(~%s)" a) sub;
          map (fun a -> Printf.sprintf "(-%s)" a) sub ]
  in
  let gen_stmt idx vars =
    let t = Printf.sprintf "t%d" idx in
    let* kind = int_range 0 2 in
    let+ s =
      if kind < 2 then
        let+ e = gen_expr 2 vars in
        Printf.sprintf "    int %s;\n    %s = %s;\n" t t e
      else
        let* cond_a = gen_expr 1 vars in
        let* cond_b = gen_expr 1 vars in
        let* e1 = gen_expr 2 vars in
        let+ e2 = gen_expr 2 vars in
        Printf.sprintf
          "    int %s;\n    if (%s < %s) { %s = %s; } else { %s = %s; }\n" t
          cond_a cond_b t e1 t e2
    in
    s, t
  in
  let* n_stmts = int_range 1 4 in
  let rec build idx vars acc =
    if idx >= n_stmts then return (acc, vars)
    else
      let* stmt, t = gen_stmt idx vars in
      build (idx + 1) (vars @ [ t ]) (acc ^ stmt)
  in
  let* body, vars = build 0 [] "" in
  let+ final = gen_expr 2 vars in
  Printf.sprintf
    "void k(int A[18], int s, int C[16]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 16; i++) {\n%s    C[i] = %s;\n\
    \  }\n\
     }\n"
    body final

let qcheck_case = QCheck_alcotest.to_alcotest

let prop_random_kernels_verify =
  QCheck.Test.make ~count:60
    ~name:"random kernels: full compile + cycle-accurate sim = interpreter"
    (QCheck.make gen_kernel_source ~print:(fun s -> s))
    (fun source ->
      let arrays =
        [ "A", Array.init 18 (fun i -> Int64.of_int ((i * 37 mod 211) - 100)) ]
      in
      let scalars = [ "s", 13L ] in
      match Driver.compile ~entry:"k" source with
      | exception Driver.Error _ -> QCheck.assume_fail ()
      | c -> Driver.verify ~scalars ~arrays c = [])

let prop_width_inference_sound =
  (* Evaluating the data path with every signal truncated to its inferred
     width must not change any output: the inferred widths are sufficient. *)
  QCheck.Test.make ~count:60
    ~name:"bit-width inference is sound (truncated eval = full eval)"
    (QCheck.make gen_kernel_source ~print:(fun s -> s))
    (fun source ->
      match Driver.compile ~entry:"k" source with
      | exception Driver.Error _ -> QCheck.assume_fail ()
      | c ->
        let dp = c.Driver.dp in
        let widths = c.Driver.widths in
        let inputs =
          [ "s", -9L ]
          @ List.concat_map
              (fun (w : Roccc_hir.Kernel.window_input) ->
                List.mapi
                  (fun j (_, name) -> name, Int64.of_int ((j * 91 mod 251) - 120))
                  w.Roccc_hir.Kernel.win_scalars)
              c.Driver.kernel.Roccc_hir.Kernel.windows
        in
        let full = Roccc_datapath.Dp_eval.run dp ~inputs in
        let narrow = Roccc_datapath.Dp_eval.run ~widths dp ~inputs in
        full.Roccc_datapath.Dp_eval.outputs
        = narrow.Roccc_datapath.Dp_eval.outputs)

let test_width_signed_mask_regression () =
  (* x & -1 must keep the full width of x (a negative mask is all ones). *)
  let src = "void f(int16 x, int16* o) { *o = x & -1; }" in
  let c = Driver.compile ~entry:"f" src in
  let full =
    Roccc_datapath.Dp_eval.run c.Driver.dp ~inputs:[ "x", -12345L ]
  in
  let narrow =
    Roccc_datapath.Dp_eval.run ~widths:c.Driver.widths c.Driver.dp
      ~inputs:[ "x", -12345L ]
  in
  Alcotest.(check bool) "same value" true
    (full.Roccc_datapath.Dp_eval.outputs
    = narrow.Roccc_datapath.Dp_eval.outputs);
  Alcotest.(check int64) "-12345 preserved" (-12345L)
    (List.assoc "o" narrow.Roccc_datapath.Dp_eval.outputs)

let prop_random_kernels_unoptimized_equal =
  QCheck.Test.make ~count:30
    ~name:"random kernels: optimized = unoptimized hardware results"
    (QCheck.make gen_kernel_source ~print:(fun s -> s))
    (fun source ->
      let arrays =
        [ "A", Array.init 18 (fun i -> Int64.of_int ((i * 53 mod 173) - 80)) ]
      in
      let scalars = [ "s", -7L ] in
      match
        ( Driver.compile ~entry:"k" source,
          Driver.compile
            ~options:{ Driver.default_options with Driver.optimize_vm = false }
            ~entry:"k" source )
      with
      | exception Driver.Error _ -> QCheck.assume_fail ()
      | on, off ->
        let r_on = Driver.simulate ~scalars ~arrays on in
        let r_off = Driver.simulate ~scalars ~arrays off in
        r_on.Engine.output_arrays = r_off.Engine.output_arrays)

(* ------------------------------------------------------------------ *)

let suites =
  [ "backend.optimize",
    [ Alcotest.test_case "value numbering shares computations" `Quick
        test_value_numbering_shares;
      Alcotest.test_case "DCE removes dead output init" `Quick
        test_dce_removes_dead_output_init;
      Alcotest.test_case "shrinks and preserves" `Quick
        test_optimize_shrinks_and_preserves;
      Alcotest.test_case "feedback survives optimization" `Quick
        test_optimize_preserves_feedback;
      Alcotest.test_case "ablation: smaller area" `Quick
        test_optimize_ablation_smaller_area ];
    "backend.partial_unroll",
    [ Alcotest.test_case "factor 2 doubles outputs" `Quick
        test_partial_unroll_doubles_outputs;
      Alcotest.test_case "factor 4" `Quick test_partial_unroll_factor_four ];
    "backend.widths_soundness",
    [ Alcotest.test_case "signed mask regression" `Quick
        test_width_signed_mask_regression;
      qcheck_case prop_width_inference_sound ];
    "backend.fuzz",
    [ qcheck_case prop_random_kernels_verify;
      qcheck_case prop_random_kernels_unoptimized_equal ] ]
