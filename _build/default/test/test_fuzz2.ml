(* Second-wave differential fuzzing: random kernels WITH loop-carried
   feedback (conditional and unconditional accumulation), random 2-D window
   kernels, and mixed-geometry inputs — always checking the cycle-accurate
   hardware simulation against the C interpreter. *)

module Driver = Roccc_core.Driver

let qcheck_case = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Feedback kernels                                                    *)
(* ------------------------------------------------------------------ *)

let gen_feedback_kernel : string QCheck.Gen.t =
  let open QCheck.Gen in
  let term =
    oneofl
      [ "A[i]"; "A[i+1]"; "(A[i] * 3)"; "(A[i] - A[i+1])"; "(A[i] & 255)";
        "(A[i] >> 1)" ]
  in
  let* update =
    oneofl
      [ (fun t -> Printf.sprintf "acc = acc + %s;" t);
        (fun t -> Printf.sprintf "acc = acc + %s; acc = acc & 65535;" t);
        (fun t ->
          Printf.sprintf "if (%s > 0) { acc = acc + %s; }" t t);
        (fun t ->
          Printf.sprintf
            "if (acc < 10000) { acc = acc + %s; } else { acc = acc - %s; }" t
            t) ]
  in
  let* t = term in
  let+ init = int_range (-50) 50 in
  Printf.sprintf
    "int acc = %d;\n\
     void k(int16 A[18], int* out) {\n\
    \  int i;\n\
    \  for (i = 0; i < 16; i++) {\n\
    \    %s\n\
    \  }\n\
    \  *out = acc;\n\
     }\n"
    init (update t)

let prop_feedback_kernels_verify =
  QCheck.Test.make ~count:60
    ~name:"random feedback kernels: hw = sw"
    (QCheck.make gen_feedback_kernel ~print:(fun s -> s))
    (fun source ->
      let arrays =
        [ "A", Array.init 18 (fun i -> Int64.of_int ((i * 457 mod 901) - 450)) ]
      in
      match Driver.compile ~entry:"k" source with
      | exception Driver.Error _ -> QCheck.assume_fail ()
      | c -> Driver.verify ~arrays c = [])

(* ------------------------------------------------------------------ *)
(* 2-D window kernels                                                  *)
(* ------------------------------------------------------------------ *)

let gen_2d_kernel : string QCheck.Gen.t =
  let open QCheck.Gen in
  let tap = oneofl [ "P[r][c]"; "P[r][c+1]"; "P[r+1][c]"; "P[r+1][c+1]";
                     "P[r][c+2]"; "P[r+2][c]" ] in
  let rec expr depth =
    if depth <= 0 then tap
    else
      let sub = expr (depth - 1) in
      oneof
        [ tap;
          map (fun c -> string_of_int c) (int_range (-9) 9);
          map2 (fun a b -> Printf.sprintf "(%s + %s)" a b) sub sub;
          map2 (fun a b -> Printf.sprintf "(%s - %s)" a b) sub sub;
          map2 (fun a b -> Printf.sprintf "(%s * %s)" a b) sub tap ]
  in
  let+ e = expr 2 in
  Printf.sprintf
    "void k(int8 P[8][8], int32 Q[6][6]) {\n\
    \  int r, c;\n\
    \  for (r = 0; r < 6; r++) {\n\
    \    for (c = 0; c < 6; c++) {\n\
    \      Q[r][c] = %s;\n\
    \    }\n\
    \  }\n\
     }\n"
    e

let prop_2d_kernels_verify =
  QCheck.Test.make ~count:50 ~name:"random 2-D window kernels: hw = sw"
    (QCheck.make gen_2d_kernel ~print:(fun s -> s))
    (fun source ->
      let arrays =
        [ "P", Array.init 64 (fun i -> Int64.of_int ((i * 83 mod 251) - 125)) ]
      in
      match Driver.compile ~entry:"k" source with
      | exception Driver.Error _ -> QCheck.assume_fail ()
      | c -> Driver.verify ~arrays c = [])

(* ------------------------------------------------------------------ *)
(* Mixed input geometries                                              *)
(* ------------------------------------------------------------------ *)

let test_different_array_lengths () =
  (* window lanes over arrays of different sizes stay in lockstep *)
  let src =
    "void k(int16 A[12], int16 B[20], int32 C[10]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 10; i++) {\n\
    \    C[i] = A[i] * B[i+8];\n\
    \  }\n\
     }"
  in
  let c = Driver.compile ~entry:"k" src in
  let a = Array.init 12 (fun i -> Int64.of_int (i + 1)) in
  let b = Array.init 20 (fun i -> Int64.of_int (i * 2)) in
  Alcotest.(check (list string)) "verifies" []
    (Driver.verify ~arrays:[ "A", a; "B", b ] c);
  let r = Driver.simulate ~arrays:[ "A", a; "B", b ] c in
  (* each element fetched at most once; the engine stops at done, so the
     longer array's unneeded tail may remain unfetched *)
  Alcotest.(check bool)
    (Printf.sprintf "reads %d within [28, 32]" r.Roccc_hw.Engine.memory_reads)
    true
    (r.Roccc_hw.Engine.memory_reads >= 28
    && r.Roccc_hw.Engine.memory_reads <= 32)

let test_window_far_offset () =
  (* a window whose smallest offset is far from zero *)
  let src =
    "void k(int16 A[40], int32 C[8]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 8; i++) {\n\
    \    C[i] = A[i+30] - A[i+25];\n\
    \  }\n\
     }"
  in
  let c = Driver.compile ~entry:"k" src in
  let a = Array.init 40 (fun i -> Int64.of_int (i * i)) in
  Alcotest.(check (list string)) "verifies" []
    (Driver.verify ~arrays:[ "A", a ] c)

let prop_feedback_width_soundness =
  (* width inference remains sound in the presence of feedback loops *)
  QCheck.Test.make ~count:40
    ~name:"width inference sound on feedback kernels"
    (QCheck.make gen_feedback_kernel ~print:(fun s -> s))
    (fun source ->
      match Driver.compile ~entry:"k" source with
      | exception Driver.Error _ -> QCheck.assume_fail ()
      | c ->
        let dp = c.Driver.dp in
        let inputs =
          List.concat_map
            (fun (w : Roccc_hir.Kernel.window_input) ->
              List.mapi
                (fun j (_, name) -> name, Int64.of_int ((j * 119 mod 400) - 200))
                w.Roccc_hir.Kernel.win_scalars)
            c.Driver.kernel.Roccc_hir.Kernel.windows
        in
        (* iterate a few times to move the feedback away from its init *)
        let stream = List.init 6 (fun _ -> inputs) in
        let full = Roccc_datapath.Dp_eval.run_stream dp stream in
        (* narrow evaluation: manual loop threading feedback *)
        let feedback_prev = ref [] in
        let narrow =
          List.map
            (fun inputs ->
              let r =
                Roccc_datapath.Dp_eval.run ~widths:c.Driver.widths
                  ~feedback_prev:!feedback_prev dp ~inputs
              in
              let merged =
                r.Roccc_datapath.Dp_eval.feedback_next
                @ List.filter
                    (fun (n, _) ->
                      not
                        (List.mem_assoc n r.Roccc_datapath.Dp_eval.feedback_next))
                    !feedback_prev
              in
              feedback_prev := merged;
              r)
            stream
        in
        List.for_all2
          (fun (a : Roccc_datapath.Dp_eval.result) b ->
            a.Roccc_datapath.Dp_eval.outputs
            = b.Roccc_datapath.Dp_eval.outputs)
          full narrow)

let suites =
  [ "fuzz2",
    [ qcheck_case prop_feedback_kernels_verify;
      qcheck_case prop_2d_kernels_verify;
      qcheck_case prop_feedback_width_soundness;
      Alcotest.test_case "different array lengths" `Quick
        test_different_array_lengths;
      Alcotest.test_case "far window offsets" `Quick test_window_far_offset ] ]
