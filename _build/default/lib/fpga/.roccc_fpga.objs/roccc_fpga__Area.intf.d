lib/fpga/area.mli: Roccc_buffers Roccc_datapath Roccc_hir
