lib/fpga/area.ml: Buffer Float Hashtbl Int64 List Printf Roccc_buffers Roccc_cfront Roccc_datapath Roccc_hir Roccc_util Roccc_vm
