(** Lowering the scalar data-path function (Figure 3c / 4c) onto the virtual
    machine IR. The dp functions produced by scalar replacement are loop-free
    (straight-line code plus if/else), so lowering builds a DAG-shaped CFG. *)

open Roccc_cfront.Ast
module K = Roccc_hir.Kernel

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

module M = Map.Make (String)

type env = {
  proc : Proc.t;
  mutable vars : (Instr.vreg * ikind) M.t;  (* variable -> dedicated reg *)
  mutable cur : Proc.block;
  luts : (string * Roccc_cfront.Semant.lut_signature) list;
}

let emit env i = env.cur.Proc.instrs <- env.cur.Proc.instrs @ [ i ]

let const_kind (v : int64) : ikind =
  if Roccc_util.Bits.fits ~signed:true 32 v then int32_kind
  else { signed = true; bits = 64 }

(* Result kind of a binary arithmetic op, mirroring Semant.join_kinds. *)
let join_kinds (a : ikind) (b : ikind) : ikind =
  let bits = max 32 (max a.bits b.bits) in
  let signed =
    if a.bits = b.bits then a.signed && b.signed
    else if a.bits > b.bits then a.signed
    else b.signed
  in
  { signed; bits }

let binop_opcode : binop -> Instr.opcode = function
  | Add -> Instr.Add | Sub -> Instr.Sub | Mul -> Instr.Mul
  | Div -> Instr.Div | Mod -> Instr.Rem
  | Shl -> Instr.Shl | Shr -> Instr.Shr
  | Band -> Instr.Band | Bor -> Instr.Bor | Bxor -> Instr.Bxor
  | Lt -> Instr.Slt | Le -> Instr.Sle | Gt -> Instr.Sgt | Ge -> Instr.Sge
  | Eq -> Instr.Seq | Ne -> Instr.Sne
  | Land -> Instr.Land | Lor -> Instr.Lor

let var_reg env name =
  match M.find_opt name env.vars with
  | Some (r, k) -> r, k
  | None -> errf "lowering: unbound variable %s" name

let bind_var env name kind =
  let r = Proc.fresh_reg env.proc kind in
  env.vars <- M.add name (r, kind) env.vars;
  r

(* Lower an expression; returns the register holding its value and its kind. *)
let rec lower_expr env (e : expr) : Instr.vreg * ikind =
  match e with
  | Const v ->
    let kind = const_kind v in
    let dst = Proc.fresh_reg env.proc kind in
    emit env (Instr.make ~dst (Instr.Ldc v) [] kind);
    dst, kind
  | Var x -> var_reg env x
  | Deref x -> var_reg env x
  | Index (a, _) -> errf "lowering: array access %s survived scalar replacement" a
  | Cast (k, inner) ->
    let src, _ = lower_expr env inner in
    let dst = Proc.fresh_reg env.proc k in
    emit env (Instr.make ~dst Instr.Cvt [ src ] k);
    dst, k
  | Unop (op, inner) ->
    let src, k = lower_expr env inner in
    let opcode, kind =
      match op with
      | Neg -> Instr.Neg, join_kinds k int32_kind
      | Bnot -> Instr.Bnot, join_kinds k int32_kind
      | Lnot -> Instr.Lnot, bool_kind
    in
    let dst = Proc.fresh_reg env.proc kind in
    emit env (Instr.make ~dst opcode [ src ] kind);
    dst, kind
  | Binop (op, a, b) ->
    let ra, ka = lower_expr env a in
    let rb, kb = lower_expr env b in
    let kind =
      if is_comparison op || is_logical op then bool_kind
      else join_kinds ka kb
    in
    let dst = Proc.fresh_reg env.proc kind in
    emit env (Instr.make ~dst (binop_opcode op) [ ra; rb ] kind);
    dst, kind
  | Call (f, [ Var x ]) when String.equal f roccc_load_prev ->
    let _, kind = var_reg env x in
    let dst = Proc.fresh_reg env.proc kind in
    emit env (Instr.make ~dst (Instr.Lpr x) [] kind);
    dst, kind
  | Call (f, args) -> (
    match List.assoc_opt f env.luts with
    | Some s -> (
      match args with
      | [ a ] ->
        let src, _ = lower_expr env a in
        let dst = Proc.fresh_reg env.proc s.lut_out in
        emit env (Instr.make ~dst (Instr.Lut f) [ src ] s.lut_out);
        dst, s.lut_out
      | _ -> errf "lowering: lookup table %s needs one argument" f)
    | None -> errf "lowering: residual call to %s (inline or register a LUT)" f)

(* Assign the value in [src] (of kind [src_kind]) to variable [name]: a mov
   when kinds agree, otherwise an explicit width conversion. *)
let assign_var env name (src : Instr.vreg) (src_kind : ikind) =
  let dst, kind = var_reg env name in
  let op = if equal_ikind kind src_kind then Instr.Mov else Instr.Cvt in
  emit env (Instr.make ~dst op [ src ] kind)

let rec lower_stmts env stmts = List.iter (lower_stmt env) stmts

and lower_stmt env (s : stmt) : unit =
  match s with
  | Sdecl (Tint kind, name, init) -> (
    let _ = bind_var env name kind in
    match init with
    | Some e ->
      let src, sk = lower_expr env e in
      assign_var env name src sk
    | None -> ())
  | Sdecl ((Tarray _ | Tptr _ | Tvoid), name, _) ->
    errf "lowering: unsupported local declaration %s" name
  | Sassign (Lvar x, e) | Sassign (Lderef x, e) ->
    let src, sk = lower_expr env e in
    assign_var env x src sk
  | Sassign (Lindex (a, _), _) ->
    errf "lowering: array store %s survived scalar replacement" a
  | Sexpr (Call (f, [ Var x; v ])) when String.equal f roccc_store2next ->
    let src, _ = lower_expr env v in
    let _, kind = var_reg env x in
    emit env { Instr.op = Instr.Snx x; dst = None; srcs = [ src ]; kind };
    (* Subsequent reads of x in this iteration see the stored value. *)
    let dst, _ = var_reg env x in
    emit env (Instr.make ~dst Instr.Mov [ src ] kind)
  | Sexpr _ -> ()  (* other expression statements have no effect *)
  | Sreturn _ -> ()  (* dp functions return through pointer outputs *)
  | Sif (cond, th, el) ->
    let rcond, _ = lower_expr env cond in
    let then_block = Proc.fresh_block env.proc in
    let else_block = Proc.fresh_block env.proc in
    let join_block = Proc.fresh_block env.proc in
    env.cur.Proc.term <-
      Proc.Branch (rcond, then_block.Proc.label, else_block.Proc.label);
    env.cur <- then_block;
    lower_stmts env th;
    env.cur.Proc.term <- Proc.Jump join_block.Proc.label;
    env.cur <- else_block;
    lower_stmts env el;
    env.cur.Proc.term <- Proc.Jump join_block.Proc.label;
    env.cur <- join_block
  | Sfor _ -> errf "lowering: loops must be handled before data-path lowering"

(** Lower a kernel's data-path function into a VM procedure. Inputs are the
    window scalars and scalar live-ins; outputs are the pointer ports;
    feedback variables become LPR/SNX-threaded signals. *)
let lower_kernel ?(luts = []) (k : K.t) : Proc.t =
  let f = k.K.dp in
  let feedbacks =
    List.map (fun fb -> fb.K.fb_name, fb.K.fb_kind, fb.K.fb_init) k.K.feedback
  in
  let proc = Proc.create ~feedbacks f.fname in
  let entry_block = Proc.fresh_block proc in
  let env = { proc; vars = M.empty; cur = entry_block; luts } in
  (* Bind parameters. *)
  let inputs, outputs =
    List.fold_left
      (fun (ins, outs) p ->
        match p.ptype with
        | Tint kind ->
          let r = bind_var env p.pname kind in
          ( ins @ [ { Proc.port_name = p.pname; port_reg = r; port_kind = kind } ],
            outs )
        | Tptr kind ->
          let r = bind_var env p.pname kind in
          (* Outputs start at 0; the port reg is rebound to the reaching
             definition after SSA conversion. *)
          emit env (Instr.make ~dst:r (Instr.Ldc 0L) [] kind);
          ( ins,
            outs @ [ { Proc.port_name = p.pname; port_reg = r; port_kind = kind } ] )
        | Tarray _ | Tvoid ->
          errf "lowering: dp parameter %s must be scalar or pointer" p.pname)
      ([], []) f.params
  in
  (* Bind feedback variables as ordinary variables; LPR/SNX handle the
     cross-iteration transfer, and a leading Lpr materializes the previous
     value for kernels that read the variable without the macro (exports). *)
  List.iter
    (fun fb ->
      let r = bind_var env fb.K.fb_name fb.K.fb_kind in
      emit env (Instr.make ~dst:r (Instr.Lpr fb.K.fb_name) [] fb.K.fb_kind))
    k.K.feedback;
  lower_stmts env f.body;
  env.cur.Proc.term <- Proc.Ret;
  let proc = env.proc in
  (* Record ports. *)
  let outputs =
    List.map
      (fun (o : Proc.port) ->
        match M.find_opt o.Proc.port_name env.vars with
        | Some (r, _) -> { o with Proc.port_reg = r }
        | None -> o)
      outputs
  in
  { proc with Proc.inputs; outputs }
