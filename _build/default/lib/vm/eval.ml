(** Reference evaluator for VM procedures: executes one invocation (= one
    loop iteration of the original kernel) over concrete values. Used to
    check that lowering, SSA conversion and data-path construction preserve
    the software semantics. *)

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type result = {
  outputs : (string * int64) list;
  feedback_next : (string * int64) list;
      (** values stored by SNX this iteration *)
}

let truncate (k : Instr.ikind) v =
  Roccc_util.Bits.truncate ~signed:k.Roccc_cfront.Ast.signed
    k.Roccc_cfront.Ast.bits v

(** Run [proc] once. [inputs] binds input port names to values;
    [feedback_prev] gives each feedback signal's previous-iteration value
    (defaults to its declared initial value); [luts] resolves table reads. *)
let run ?(luts = []) ?(feedback_prev = []) (proc : Proc.t)
    ~(inputs : (string * int64) list) : result =
  let regs : (Instr.vreg, int64) Hashtbl.t = Hashtbl.create 64 in
  let snx_values : (string, int64) Hashtbl.t = Hashtbl.create 4 in
  let read r =
    match Hashtbl.find_opt regs r with
    | Some v -> v
    | None -> errf "eval: register v%d read before definition" r
  in
  let lpr name =
    match List.assoc_opt name feedback_prev with
    | Some v -> v
    | None -> (
      match
        List.find_opt (fun (n, _, _) -> String.equal n name) proc.Proc.feedbacks
      with
      | Some (_, kind, init) -> truncate kind init
      | None -> errf "eval: unknown feedback signal %s" name)
  in
  let lut name v =
    match List.assoc_opt name luts with
    | Some f -> f v
    | None -> errf "eval: unknown lookup table %s" name
  in
  (* Bind inputs. *)
  List.iter
    (fun (port : Proc.port) ->
      match List.assoc_opt port.Proc.port_name inputs with
      | Some v ->
        Hashtbl.replace regs port.Proc.port_reg
          (truncate port.Proc.port_kind v)
      | None -> errf "eval: missing input %s" port.Proc.port_name)
    proc.Proc.inputs;
  (* Execute blocks, bounded to catch accidental CFG cycles. *)
  let max_blocks = 100_000 in
  let rec exec (prev : Proc.label option) (b : Proc.block) (n : int) : unit =
    if n > max_blocks then errf "eval: block budget exhausted (CFG cycle?)";
    (* Phis read the value coming from the edge we arrived on; evaluate them
       in parallel from pre-phi register state. *)
    (match prev with
    | None -> ()
    | Some prev_label ->
      let values =
        List.map
          (fun (phi : Proc.phi) ->
            match List.assoc_opt prev_label phi.Proc.phi_args with
            | Some src -> phi.Proc.phi_dst, read src
            | None ->
              errf "eval: phi in L%d has no arg for predecessor L%d"
                b.Proc.label prev_label)
          b.Proc.phis
      in
      List.iter (fun (dst, v) -> Hashtbl.replace regs dst v) values);
    List.iter
      (fun (i : Instr.instr) ->
        let operands = List.map read i.Instr.srcs in
        match i.Instr.op, i.Instr.dst with
        | Instr.Snx name, None -> (
          match operands with
          | [ v ] -> Hashtbl.replace snx_values name (truncate i.Instr.kind v)
          | _ -> errf "eval: snx arity")
        | op, Some dst ->
          let v = Instr.eval_op ~lut ~lpr op operands in
          Hashtbl.replace regs dst (truncate i.Instr.kind v)
        | _, None -> errf "eval: instruction without destination")
      b.Proc.instrs;
    match b.Proc.term with
    | Proc.Ret -> ()
    | Proc.Jump l -> exec (Some b.Proc.label) (Proc.find_block proc l) (n + 1)
    | Proc.Branch (r, l1, l2) ->
      let target = if Int64.equal (read r) 0L then l2 else l1 in
      exec (Some b.Proc.label) (Proc.find_block proc target) (n + 1)
  in
  exec None (Proc.entry proc) 0;
  let outputs =
    List.map
      (fun (port : Proc.port) ->
        port.Proc.port_name, truncate port.Proc.port_kind (read port.Proc.port_reg))
      proc.Proc.outputs
  in
  let feedback_next =
    List.filter_map
      (fun (name, _, _) ->
        Option.map (fun v -> name, v) (Hashtbl.find_opt snx_values name))
      proc.Proc.feedbacks
  in
  { outputs; feedback_next }

(** Iterate a procedure over a stream of per-iteration inputs, threading
    feedback values — the software model of the pipelined data path. *)
let run_stream ?(luts = []) (proc : Proc.t)
    (stream : (string * int64) list list) : result list =
  let feedback_prev = ref [] in
  List.map
    (fun inputs ->
      let r = run ~luts ~feedback_prev:!feedback_prev proc ~inputs in
      (* Updated signals replace previous values; untouched ones persist. *)
      let merged =
        r.feedback_next
        @ List.filter
            (fun (n, _) -> not (List.mem_assoc n r.feedback_next))
            !feedback_prev
      in
      feedback_prev := merged;
      r)
    stream
