(** Lowering the scalar data-path function (Figure 3c / 4c) onto the
    SUIFvm-like IR. The dp functions produced by scalar replacement are
    loop-free (straight-line code plus if/else), so lowering builds a
    DAG-shaped CFG with one dedicated register per variable (SSA conversion
    renames afterwards). *)

exception Error of string

val lower_kernel :
  ?luts:(string * Roccc_cfront.Semant.lut_signature) list ->
  Roccc_hir.Kernel.t ->
  Proc.t
(** Lower a kernel's data-path function: window scalars and live-in scalars
    become input ports, pointer parameters become output ports, feedback
    variables become LPR/SNX-threaded signals (with a leading LPR binding
    the previous value at entry). *)
