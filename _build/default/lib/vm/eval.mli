(** Reference evaluator for VM procedures: executes one invocation (= one
    loop iteration of the original kernel). Used to check that lowering,
    SSA conversion and data-path construction preserve the software
    semantics. *)

exception Error of string

type result = {
  outputs : (string * int64) list;
  feedback_next : (string * int64) list;
      (** values stored by SNX this iteration *)
}

val run :
  ?luts:(string * (int64 -> int64)) list ->
  ?feedback_prev:(string * int64) list ->
  Proc.t ->
  inputs:(string * int64) list ->
  result
(** Execute the CFG from entry to [Ret]. [feedback_prev] supplies each
    feedback signal's previous-iteration value (defaulting to its declared
    initial value). *)

val run_stream :
  ?luts:(string * (int64 -> int64)) list ->
  Proc.t ->
  (string * int64) list list ->
  result list
(** Iterate over per-iteration inputs, threading feedback values — the
    software model of the pipelined data path. *)
