lib/vm/lower.ml: Instr List Map Printf Proc Roccc_cfront Roccc_hir Roccc_util String
