lib/vm/instr.mli: Roccc_cfront
