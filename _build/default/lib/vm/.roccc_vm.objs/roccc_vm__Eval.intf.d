lib/vm/eval.mli: Proc
