lib/vm/proc.mli: Hashtbl Instr Roccc_util
