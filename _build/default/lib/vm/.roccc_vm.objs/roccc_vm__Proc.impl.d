lib/vm/proc.ml: Buffer Hashtbl Instr List Printf Roccc_cfront Roccc_util String
