lib/vm/instr.ml: Int64 List Printf Roccc_cfront String
