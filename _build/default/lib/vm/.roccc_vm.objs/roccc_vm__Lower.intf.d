lib/vm/lower.mli: Proc Roccc_cfront Roccc_hir
