lib/vm/eval.ml: Hashtbl Instr Int64 List Option Printf Proc Roccc_cfront Roccc_util String
