(** Procedures: basic blocks of VM instructions plus explicit control flow —
    the Machine-SUIF-style container the CFG, data-flow and SSA libraries
    operate on. *)

type label = int

type terminator =
  | Jump of label
  | Branch of Instr.vreg * label * label  (** if reg <> 0 then l1 else l2 *)
  | Ret

(** SSA phi: [dst = phi(args)], one arg per predecessor label. *)
type phi = {
  phi_dst : Instr.vreg;
  phi_args : (label * Instr.vreg) list;
  phi_kind : Instr.ikind;
}

type block = {
  label : label;
  mutable phis : phi list;
  mutable instrs : Instr.instr list;
  mutable term : terminator;
}

(** Input/output port of a procedure: the hardware-facing interface. Inputs
    bind registers at entry; each output names the register whose value at
    [Ret] is the port's result. *)
type port = { port_name : string; port_reg : Instr.vreg; port_kind : Instr.ikind }

type t = {
  pname : string;
  mutable blocks : block list;  (** entry block first *)
  inputs : port list;
  mutable outputs : port list;
  reg_kinds : (Instr.vreg, Instr.ikind) Hashtbl.t;
  reg_gen : Roccc_util.Id_gen.t;
  label_gen : Roccc_util.Id_gen.t;
  feedbacks : (string * Instr.ikind * int64) list;
      (** feedback signals threaded through LPR/SNX *)
}

let create ?(feedbacks = []) pname : t =
  { pname;
    blocks = [];
    inputs = [];
    outputs = [];
    reg_kinds = Hashtbl.create 32;
    reg_gen = Roccc_util.Id_gen.create ();
    label_gen = Roccc_util.Id_gen.create ();
    feedbacks }

let fresh_reg (p : t) (kind : Instr.ikind) : Instr.vreg =
  let r = Roccc_util.Id_gen.fresh p.reg_gen in
  Hashtbl.replace p.reg_kinds r kind;
  r

let reg_kind (p : t) (r : Instr.vreg) : Instr.ikind =
  match Hashtbl.find_opt p.reg_kinds r with
  | Some k -> k
  | None -> Roccc_cfront.Ast.int32_kind

let set_reg_kind (p : t) (r : Instr.vreg) (k : Instr.ikind) =
  Hashtbl.replace p.reg_kinds r k

let fresh_block (p : t) : block =
  let b =
    { label = Roccc_util.Id_gen.fresh p.label_gen;
      phis = [];
      instrs = [];
      term = Ret }
  in
  p.blocks <- p.blocks @ [ b ];
  b

let find_block (p : t) (l : label) : block =
  match List.find_opt (fun b -> b.label = l) p.blocks with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Proc.find_block: no block %d" l)

let entry (p : t) : block =
  match p.blocks with
  | b :: _ -> b
  | [] -> invalid_arg "Proc.entry: empty procedure"

let successors (b : block) : label list =
  match b.term with
  | Jump l -> [ l ]
  | Branch (_, l1, l2) -> [ l1; l2 ]
  | Ret -> []

(** Registers defined by a block (phis then instrs). *)
let block_defs (b : block) : Instr.vreg list =
  List.map (fun p -> p.phi_dst) b.phis
  @ List.filter_map (fun (i : Instr.instr) -> i.Instr.dst) b.instrs

(** Registers used by a block's instructions and terminator (phi uses are
    attributed to predecessors by analyses that need that precision). *)
let block_uses (b : block) : Instr.vreg list =
  List.concat_map (fun (i : Instr.instr) -> i.Instr.srcs) b.instrs
  @ (match b.term with Branch (r, _, _) -> [ r ] | Jump _ | Ret -> [])

let all_instrs (p : t) : Instr.instr list =
  List.concat_map (fun b -> b.instrs) p.blocks

let to_string (p : t) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "proc %s\n" p.pname);
  List.iter
    (fun port ->
      Buffer.add_string buf
        (Printf.sprintf "  in  %s = v%d :%s%d\n" port.port_name port.port_reg
           (if port.port_kind.signed then "s" else "u")
           port.port_kind.bits))
    p.inputs;
  List.iter
    (fun port ->
      Buffer.add_string buf
        (Printf.sprintf "  out %s <- v%d\n" port.port_name port.port_reg))
    p.outputs;
  List.iter
    (fun (name, _, init) ->
      Buffer.add_string buf (Printf.sprintf "  feedback %s (init %Ld)\n" name init))
    p.feedbacks;
  List.iter
    (fun b ->
      Buffer.add_string buf (Printf.sprintf "L%d:\n" b.label);
      List.iter
        (fun phi ->
          Buffer.add_string buf
            (Printf.sprintf "  v%d = phi %s\n" phi.phi_dst
               (String.concat ", "
                  (List.map
                     (fun (l, r) -> Printf.sprintf "[L%d: v%d]" l r)
                     phi.phi_args))))
        b.phis;
      List.iter
        (fun i -> Buffer.add_string buf ("  " ^ Instr.to_string i ^ "\n"))
        b.instrs;
      let term =
        match b.term with
        | Jump l -> Printf.sprintf "  jump L%d\n" l
        | Branch (r, l1, l2) -> Printf.sprintf "  branch v%d ? L%d : L%d\n" r l1 l2
        | Ret -> "  ret\n"
      in
      Buffer.add_string buf term)
    p.blocks;
  Buffer.contents buf
