(** The ROCCC compiler driver: the end-to-end pipeline of Figure 1.

    C source -> parse -> semantic checks -> inlining -> loop optimizations ->
    scalar replacement -> feedback annotation -> SUIFvm lowering -> SSA/CFG ->
    data-path building -> bit-width inference -> pipelining -> VHDL
    generation -> area/clock estimation. *)

module Ast = Roccc_cfront.Ast
module Parser = Roccc_cfront.Parser
module Semant = Roccc_cfront.Semant
module Interp = Roccc_cfront.Interp
module Const_fold = Roccc_hir.Const_fold
module Loop_opt = Roccc_hir.Loop_opt
module Inline = Roccc_hir.Inline
module Lut_conv = Roccc_hir.Lut_conv
module Scalar_replacement = Roccc_hir.Scalar_replacement
module Feedback = Roccc_hir.Feedback
module Kernel = Roccc_hir.Kernel
module Lower = Roccc_vm.Lower
module Proc = Roccc_vm.Proc
module Ssa = Roccc_analysis.Ssa
module Builder = Roccc_datapath.Builder
module Graph = Roccc_datapath.Graph
module Widths = Roccc_datapath.Widths
module Pipeline = Roccc_datapath.Pipeline
module Gen = Roccc_vhdl.Gen
module Lint = Roccc_vhdl.Lint
module Smart_buffer = Roccc_buffers.Smart_buffer
module Engine = Roccc_hw.Engine
module Area = Roccc_fpga.Area

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type options = {
  unroll_inner_max : int;
      (** fully unroll inner loops with at most this trip count *)
  unroll_all_max : int;
      (** fully unroll any constant loop with at most this trip count
          (turns small kernels into block kernels, as for the DCT) *)
  fuse_loops : bool;
  target_ns : float;             (** pipeline stage budget *)
  infer_widths : bool;           (** bit-width inference (ablation switch) *)
  optimize_vm : bool;            (** back-end CSE/copy-prop/DCE (ablation) *)
  unroll_outer_factor : int;     (** partial unrolling of the outer loop *)
  lut_convert_max_bits : int;
      (** convert pure called functions with inputs up to this width into
          ROM lookup tables instead of inlining (0 = always inline) *)
  bus_elements : int;            (** memory bus width, in elements *)
  check_vhdl : bool;             (** run the structural linter *)
}

let default_options =
  { unroll_inner_max = 0;
    unroll_all_max = 0;
    fuse_loops = true;
    target_ns = Pipeline.default_target_ns;
    infer_widths = true;
    optimize_vm = true;
    unroll_outer_factor = 1;
    lut_convert_max_bits = 0;
    bus_elements = 1;
    check_vhdl = true }

type compiled = {
  source : string;
  entry : string;
  options : options;
  program : Ast.program;          (** after front-end transformations *)
  kernel : Kernel.t;
  proc : Proc.t;                  (** SSA-form VM procedure *)
  dp : Graph.t;
  widths : Widths.t;
  pipeline : Pipeline.t;
  design : Roccc_vhdl.Ast.design;
  buffer_configs : Smart_buffer.config list;
  area : Area.estimate;
  luts : Lut_conv.table list;
  system_vhdl : string option;
      (** Figure 2 system wrapper (address generator + smart buffer +
          controller around the data path) for 1-D single-window kernels *)
  pass_trace : string list;       (** executed passes, in order (Figure 1) *)
}

(* Unroll loops nested inside other loops (the udiv/sqrt bit-step loops)
   while keeping the outer streaming loop. *)
let unroll_inner ~max_trip stmts =
  List.map
    (fun s ->
      match s with
      | Ast.Sfor (h, body) ->
        Ast.Sfor (h, Loop_opt.unroll_small_loops ~max_trip body)
      | s -> s)
    stmts

(* Smart-buffer configurations for the kernel's window inputs — shared by
   the simulator and the area estimator. *)
let buffer_configs_of ~(bus_elements : int) (k : Kernel.t) :
    Smart_buffer.config list =
  List.map
    (fun (w : Kernel.window_input) ->
      let ndims = List.length w.Kernel.win_dims in
      let iterations, stride, lower =
        if k.Kernel.loops = [] then
          ( List.init ndims (fun _ -> 1),
            List.init ndims (fun _ -> 0),
            List.init ndims (fun _ -> 0) )
        else
          ( List.map (fun d -> d.Kernel.count) k.Kernel.loops,
            List.map (fun d -> d.Kernel.step) k.Kernel.loops,
            List.map (fun d -> d.Kernel.lower) k.Kernel.loops )
      in
      { Smart_buffer.element_bits = w.Kernel.win_kind.Ast.bits;
        element_signed = w.Kernel.win_kind.Ast.signed;
        bus_elements;
        array_dims = w.Kernel.win_dims;
        window_offsets = w.Kernel.win_offsets;
        stride;
        iterations;
        lower })
    k.Kernel.windows

(** Compile one kernel function from C source to VHDL + estimates. *)
let compile ?(options = default_options) ?(luts = []) ~(entry : string)
    (source : string) : compiled =
  let trace = ref [] in
  let pass name = trace := !trace @ [ name ] in
  (* ---- front end ---- *)
  pass "parse";
  let program =
    try Parser.parse_program source
    with Parser.Error (msg, line, col) ->
      errf "parse error at %d:%d: %s" line col msg
  in
  pass "semantic-check";
  let lut_sigs = List.map Lut_conv.signature luts in
  let _env =
    try Semant.check_program ~luts:lut_sigs program
    with Semant.Error msg -> errf "semantic error: %s" msg
  in
  let f =
    match List.find_opt (fun g -> String.equal g.Ast.fname entry) program.Ast.funcs with
    | Some f -> f
    | None -> errf "no function named %s" entry
  in
  (* ---- function calls: lookup tables where feasible, else inlining ----
     "Function calls will either be inlined or whenever feasible made into
     a lookup table" (paper §2). A called function is tabulated when it is
     pure, takes one scalar of at most [lut_convert_max_bits], and returns
     an integer; otherwise it is inlined. *)
  let luts, program =
    if options.lut_convert_max_bits = 0 then luts, program
    else begin
      let called_names =
        Ast.fold_stmts
          (fun acc _ -> acc)
          (fun acc e ->
            match e with
            | Ast.Call (g, _) when not (Ast.is_intrinsic g) -> g :: acc
            | _ -> acc)
          [] f.Ast.body
        |> List.sort_uniq String.compare
      in
      let convertible =
        List.filter_map
          (fun name ->
            match
              List.find_opt
                (fun g -> String.equal g.Ast.fname name)
                program.Ast.funcs
            with
            | Some callee -> (
              match callee.Ast.params, callee.Ast.ret with
              | [ { Ast.ptype = Ast.Tint k; _ } ], Ast.Tint _
                when k.Ast.bits <= options.lut_convert_max_bits -> (
                match Lut_conv.from_function program callee with
                | table -> Some table
                | exception Lut_conv.Error _ -> None)
              | _ -> None)
            | None -> None)
          called_names
      in
      if convertible = [] then luts, program
      else begin
        pass "lut-conversion";
        luts @ convertible, Lut_conv.convert_calls program convertible
      end
    end
  in
  let lut_sigs = List.map Lut_conv.signature luts in
  let f =
    match
      List.find_opt (fun g -> String.equal g.Ast.fname entry) program.Ast.funcs
    with
    | Some f -> f
    | None -> errf "function %s lost during LUT conversion" entry
  in
  (* ---- loop-level optimizations ---- *)
  pass "inline";
  let f = Inline.inline_calls program f in
  pass "constant-fold";
  let global_consts = Const_fold.readonly_global_consts program f in
  let f = Const_fold.optimize_func ~consts:global_consts f in
  let f =
    if options.unroll_inner_max > 0 then begin
      pass "unroll-inner-loops";
      { f with
        Ast.body = unroll_inner ~max_trip:options.unroll_inner_max f.Ast.body }
    end
    else f
  in
  let f =
    if options.unroll_all_max > 0 then begin
      pass "full-unroll";
      { f with
        Ast.body =
          Loop_opt.unroll_small_loops ~max_trip:options.unroll_all_max
            f.Ast.body }
    end
    else f
  in
  let f =
    if options.unroll_outer_factor > 1 then begin
      pass "partial-unroll";
      let body =
        List.map
          (fun s ->
            match s with
            | Ast.Sfor (h, body) ->
              let h', body' =
                Loop_opt.partially_unroll ~factor:options.unroll_outer_factor
                  h body
              in
              Ast.Sfor (h', body')
            | s -> s)
          f.Ast.body
      in
      { f with Ast.body }
    end
    else f
  in
  let f =
    if options.fuse_loops then begin
      pass "loop-fusion";
      { f with Ast.body = Loop_opt.fuse_loops f.Ast.body }
    end
    else f
  in
  pass "constant-fold";
  let f = Const_fold.optimize_func ~consts:global_consts f in
  let program = { program with Ast.funcs = [ f ] } in
  (* ---- scalar replacement & feedback (storage level) ---- *)
  pass "scalar-replacement";
  let kernel =
    try Scalar_replacement.run program f
    with Scalar_replacement.Error msg -> errf "scalar replacement: %s" msg
  in
  pass "feedback-detection";
  let kernel = Feedback.annotate kernel in
  Feedback.validate kernel;
  (* ---- back end ---- *)
  pass "lower-to-suifvm";
  let proc = Lower.lower_kernel ~luts:lut_sigs kernel in
  pass "ssa-and-cfg";
  let _cfg = Ssa.convert proc in
  Ssa.verify proc;
  if options.optimize_vm then begin
    pass "vm-optimize";
    let _stats = Roccc_analysis.Optimize.run proc in
    Ssa.verify proc
  end;
  pass "datapath-build";
  let dp = Builder.build proc in
  Builder.verify_adjoining dp;
  pass "bit-width-inference";
  let widths =
    if options.infer_widths then Widths.infer dp else Widths.declared dp
  in
  pass "pipelining";
  let pipeline = Pipeline.build ~target_ns:options.target_ns dp widths in
  pass "vhdl-generation";
  let design = Gen.generate ~luts pipeline in
  if options.check_vhdl then begin
    pass "vhdl-lint";
    match Lint.check design with
    | _ -> ()
    | exception Lint.Error msg -> errf "generated VHDL fails lint: %s" msg
  end;
  pass "area-estimation";
  let buffer_configs = buffer_configs_of ~bus_elements:options.bus_elements kernel in
  let area = Area.estimate ~luts ~buffers:buffer_configs pipeline in
  (* Figure 2 system wrapper from the pre-existing VHDL component library,
     for the simple 1-D single-window shape. *)
  let system_vhdl =
    match kernel.Kernel.windows, kernel.Kernel.loops with
    | [ w ], [ _ ] when List.for_all (fun o -> List.length o = 1) w.Kernel.win_offsets
      ->
      let win_ports = List.map snd w.Kernel.win_scalars in
      let out_ports =
        List.map
          (fun (o : Kernel.output) ->
            o.Kernel.port, o.Kernel.port_kind.Ast.bits)
          kernel.Kernel.outputs
      in
      Some
        (Roccc_vhdl.Library.system_wrapper_vhdl
           ~dp_entity:proc.Proc.pname
           ~element_bits:w.Kernel.win_kind.Ast.bits ~win_ports ~out_ports
           ~total_words:(List.fold_left ( * ) 1 w.Kernel.win_dims)
           ~iterations:(Kernel.iteration_space kernel)
           ~latency:(Pipeline.latency pipeline))
    | _ -> None
  in
  { source; entry; options; program; kernel; proc; dp; widths; pipeline;
    design; buffer_configs; area; luts; system_vhdl; pass_trace = !trace }

(** Compile every hardware-eligible function in a source file (those with
    array or pointer parameters — the kernels); returns successes and
    per-function failures. *)
let compile_all ?(options = default_options) ?(luts = []) (source : string) :
    (string * compiled) list * (string * string) list =
  let program =
    try Parser.parse_program source
    with Parser.Error (msg, line, col) ->
      errf "parse error at %d:%d: %s" line col msg
  in
  let eligible (f : Ast.func) =
    List.exists
      (fun p ->
        match p.Ast.ptype with
        | Ast.Tarray _ | Ast.Tptr _ -> true
        | Ast.Tint _ | Ast.Tvoid -> false)
      f.Ast.params
  in
  List.fold_left
    (fun (oks, errs) (f : Ast.func) ->
      if not (eligible f) then oks, errs
      else
        match compile ~options ~luts ~entry:f.Ast.fname source with
        | c -> oks @ [ f.Ast.fname, c ], errs
        | exception Error msg -> oks, errs @ [ f.Ast.fname, msg ])
    ([], []) program.Ast.funcs

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

(** Run the compiled circuit on the cycle-accurate execution model. *)
let simulate ?(scalars = []) ?(arrays = []) (c : compiled) : Engine.result =
  let lut_bindings = List.map Lut_conv.interp_binding c.luts in
  Engine.simulate ~luts:lut_bindings ~scalars ~arrays
    ~bus_elements:c.options.bus_elements c.kernel ~dp:c.dp
    ~pipeline:c.pipeline

(** Run the original C through the reference interpreter (same inputs). *)
let interpret ?(scalars = []) ?(arrays = []) (c : compiled) : Interp.outcome =
  let lut_sigs = List.map Lut_conv.signature c.luts in
  let lut_funcs = List.map Lut_conv.interp_binding c.luts in
  Interp.run_source ~luts:lut_sigs ~lut_funcs ~scalars ~arrays c.source
    c.entry

(** Co-simulation check: hardware simulation equals software semantics on
    the given inputs. Returns the diff report ([] when equivalent). *)
let verify ?(scalars = []) ?(arrays = []) (c : compiled) : string list =
  let hw = simulate ~scalars ~arrays c in
  let sw = interpret ~scalars ~arrays c in
  let diffs = ref [] in
  (* array outputs *)
  List.iter
    (fun (name, hw_data) ->
      match List.assoc_opt name sw.Interp.arrays with
      | Some sw_data ->
        Array.iteri
          (fun i v ->
            if not (Int64.equal v sw_data.(i)) then
              diffs :=
                !diffs
                @ [ Printf.sprintf "%s[%d]: hw=%Ld sw=%Ld" name i v sw_data.(i) ])
          hw_data
      | None -> diffs := !diffs @ [ Printf.sprintf "missing sw array %s" name ])
    hw.Engine.output_arrays;
  (* scalar outputs *)
  List.iter
    (fun (name, v) ->
      match List.assoc_opt name sw.Interp.pointer_outputs with
      | Some sv when Int64.equal v sv -> ()
      | Some sv ->
        diffs := !diffs @ [ Printf.sprintf "%s: hw=%Ld sw=%Ld" name v sv ]
      | None -> diffs := !diffs @ [ Printf.sprintf "missing sw scalar %s" name ])
    hw.Engine.scalar_outputs;
  (* software-side outputs the hardware never produced: a non-input array
     written by the C code, or a pointer output, must appear on the
     hardware side too *)
  let input_names = List.map fst arrays in
  List.iter
    (fun (name, _) ->
      if
        (not (List.mem_assoc name hw.Engine.output_arrays))
        && not (List.mem name input_names)
      then diffs := !diffs @ [ Printf.sprintf "hw never wrote array %s" name ])
    sw.Interp.arrays;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name hw.Engine.scalar_outputs) then
        diffs := !diffs @ [ Printf.sprintf "hw never wrote scalar %s" name ])
    sw.Interp.pointer_outputs;
  !diffs

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let report (c : compiled) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "=== %s ===\n" c.entry);
  Buffer.add_string buf (Kernel.describe c.kernel);
  Buffer.add_string buf
    (Printf.sprintf "datapath: %d nodes, %d instrs (%d copies)\n"
       (List.length c.dp.Graph.nodes)
       (Graph.instr_count c.dp) (Graph.copy_count c.dp));
  Buffer.add_string buf (Pipeline.describe c.pipeline);
  Buffer.add_string buf (Area.describe c.area);
  let pw = Area.power c.area in
  Buffer.add_string buf
    (Printf.sprintf "power: %.0f mW total (%.0f dynamic + %.0f static)\n"
       pw.Area.total_mw pw.Area.dynamic_mw pw.Area.static_mw);
  Buffer.contents buf

let pass_pipeline_figure (c : compiled) : string =
  "ROCCC pass pipeline (Figure 1):\n  "
  ^ String.concat "\n  -> " c.pass_trace
