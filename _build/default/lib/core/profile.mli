(** The profiling tool set (paper Figure 1 "Code Profiling", §2 / reference
    [10]): interprets an application with instrumented loops and ranks them
    by dynamic operation count, identifying the frequently executing kernels
    — the hardware candidates — before compilation. *)

exception Error of string

(** One profiled loop site. *)
type site = {
  site_id : int;
  in_function : string;
  loop_path : string;  (** e.g. "app/i@0" (id disambiguates same names) *)
  static_ops : int;  (** arithmetic/logic ops per iteration (address
                         arithmetic excluded — it belongs to the address
                         generators) *)
  memory_accesses : int;  (** array reads + writes per iteration *)
  branch_statements : int;
  mutable iterations : int64;  (** measured dynamic trip count *)
}

type profile = {
  sites : site list;  (** sorted by dynamic operations, descending *)
  total_dynamic_ops : int64;
}

val dynamic_ops : site -> int64
val fraction : profile -> site -> float

val computational_density : site -> float
(** Operations per memory access — §4's "high computational density, low
    control density" characterization. *)

val instrument :
  Roccc_cfront.Ast.program -> Roccc_cfront.Ast.program * site list
(** Inject per-loop counters (globals [__prof_<i>]); exposed for tests. *)

val analyze :
  ?luts:(string * Roccc_cfront.Semant.lut_signature) list ->
  ?lut_funcs:(string * (int64 -> int64)) list ->
  ?scalars:(string * int64) list ->
  ?arrays:(string * int64 array) list ->
  entry:string ->
  string ->
  profile
(** Parse, check, instrument and interpret [entry] on the given inputs. *)

val kernel_candidates : ?threshold:float -> profile -> site list
(** Loops covering at least [threshold] (default 0.1) of dynamic ops. *)

val report : profile -> string
