(** VHDL testbench generation: given a compiled kernel and concrete inputs,
    emit a self-checking testbench that drives the data-path entity with the
    per-iteration window values and asserts the expected outputs after the
    pipeline latency — the artifact a user would hand to a VHDL simulator to
    validate the generated design against the software semantics. *)

module Kernel = Roccc_hir.Kernel
module Pipeline = Roccc_datapath.Pipeline
module Dp_eval = Roccc_datapath.Dp_eval
module Lut_conv = Roccc_hir.Lut_conv
module Ast = Roccc_cfront.Ast

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* Window values per iteration, in kernel launch order — the same schedule
   the smart buffer produces. *)
let iteration_inputs (c : Driver.compiled)
    ~(arrays : (string * int64 array) list)
    ~(scalars : (string * int64) list) : (string * int64) list list =
  let k = c.Driver.kernel in
  let windows_of (w : Kernel.window_input) =
    let data =
      match List.assoc_opt w.Kernel.win_array arrays with
      | Some d -> d
      | None -> errf "testbench: missing input array %s" w.Kernel.win_array
    in
    let dims = w.Kernel.win_dims in
    let flat pos = List.fold_left2 (fun acc d p -> (acc * d) + p) 0 dims pos in
    let geometry =
      if k.Kernel.loops = [] then [ { Kernel.index = ""; lower = 0; count = 1; step = 0 } ]
      else k.Kernel.loops
    in
    let rec positions (dims : Kernel.loop_dim list) : int list list =
      match dims with
      | [] -> [ [] ]
      | d :: rest ->
        let tails = positions rest in
        List.concat_map
          (fun i ->
            List.map
              (fun tail -> (d.Kernel.lower + (i * d.Kernel.step)) :: tail)
              tails)
          (List.init d.Kernel.count (fun i -> i))
    in
    let origins = positions geometry in
    List.map
      (fun origin ->
        List.map
          (fun (offset, name) ->
            let pos =
              if k.Kernel.loops = [] then offset
              else List.map2 (fun o c -> o + c) origin offset
            in
            name, data.(flat pos))
          w.Kernel.win_scalars)
      origins
  in
  let per_window = List.map windows_of k.Kernel.windows in
  let launch_count =
    match per_window with [] -> 1 | first :: _ -> List.length first
  in
  List.init launch_count (fun i ->
      List.concat_map (fun ws -> List.nth ws i) per_window
      @ List.map
          (fun (p : Ast.param) ->
            match List.assoc_opt p.Ast.pname scalars with
            | Some v -> p.Ast.pname, v
            | None -> errf "testbench: missing scalar %s" p.Ast.pname)
          k.Kernel.scalar_inputs)

let literal (kind : Ast.ikind) (v : int64) : string =
  if kind.Ast.signed then Printf.sprintf "to_signed(%Ld, %d)" v kind.Ast.bits
  else
    Printf.sprintf "to_unsigned(%Ld, %d)"
      (Roccc_util.Bits.truncate_unsigned kind.Ast.bits v)
      kind.Ast.bits

(** Generate the testbench text. [arrays]/[scalars] provide the stimulus;
    expected outputs come from the data-path evaluator (which the test suite
    keeps equal to the C interpreter). *)
let generate ?(scalars = []) ?(arrays = []) (c : Driver.compiled) : string =
  let k = c.Driver.kernel in
  let dp_name = c.Driver.proc.Roccc_vm.Proc.pname in
  (* +1 for the output register the generator places at the top level *)
  let latency = Pipeline.latency c.Driver.pipeline + 1 in
  let stimulus = iteration_inputs c ~arrays ~scalars in
  let lut_bindings = List.map Lut_conv.interp_binding c.Driver.luts in
  let results = Dp_eval.run_stream ~luts:lut_bindings c.Driver.dp stimulus in
  let kind_of_port name =
    let param =
      List.find_opt
        (fun (p : Ast.param) -> String.equal p.Ast.pname name)
        k.Kernel.dp.Ast.params
    in
    match param with
    | Some { Ast.ptype = Ast.Tint kd | Ast.Tptr kd; _ } -> kd
    | _ -> Ast.int32_kind
  in
  let in_ports =
    List.concat_map
      (fun (w : Kernel.window_input) -> List.map snd w.Kernel.win_scalars)
      k.Kernel.windows
    @ List.map (fun (p : Ast.param) -> p.Ast.pname) k.Kernel.scalar_inputs
  in
  let out_ports = List.map (fun (o : Kernel.output) -> o.Kernel.port) k.Kernel.outputs in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "-- self-checking testbench for %s: %d stimulus vectors, latency %d\n"
       dp_name (List.length stimulus) latency);
  Buffer.add_string buf
    "library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n\n";
  Buffer.add_string buf (Printf.sprintf "entity %s_tb is\nend entity %s_tb;\n\n" dp_name dp_name);
  Buffer.add_string buf
    (Printf.sprintf "architecture test of %s_tb is\n" dp_name);
  Buffer.add_string buf "  signal clk : std_logic := '0';\n";
  Buffer.add_string buf "  signal rst : std_logic := '1';\n";
  List.iter
    (fun name ->
      let kd = kind_of_port name in
      Buffer.add_string buf
        (Printf.sprintf "  signal %s : %s(%d downto 0) := (others => '0');\n"
           name
           (if kd.Ast.signed then "signed" else "unsigned")
           (kd.Ast.bits - 1)))
    (in_ports @ out_ports);
  Buffer.add_string buf "begin\n";
  Buffer.add_string buf "  clk <= not clk after 5 ns;\n\n";
  Buffer.add_string buf
    (Printf.sprintf "  dut : entity work.%s\n    port map (clk => clk, rst => rst" dp_name);
  List.iter
    (fun name -> Buffer.add_string buf (Printf.sprintf ",\n      %s => %s" name name))
    (in_ports @ out_ports);
  Buffer.add_string buf ");\n\n";
  Buffer.add_string buf "  stimulus : process\n  begin\n";
  Buffer.add_string buf "    rst <= '1';\n    wait until rising_edge(clk);\n";
  Buffer.add_string buf "    rst <= '0';\n";
  List.iteri
    (fun i inputs ->
      List.iter
        (fun (name, v) ->
          let kd = kind_of_port name in
          Buffer.add_string buf
            (Printf.sprintf "    %s <= %s;\n" name (literal kd v)))
        inputs;
      Buffer.add_string buf "    wait until rising_edge(clk);\n";
      (* one self-check per retired iteration, latency cycles back *)
      if i >= latency then begin
        let r = List.nth results (i - latency) in
        List.iter
          (fun (port, v) ->
            let kd = kind_of_port port in
            Buffer.add_string buf
              (Printf.sprintf
                 "    assert %s = %s report \"iteration %d: %s mismatch\" \
                  severity error;\n"
                 port (literal kd v) (i - latency) port))
          r.Dp_eval.outputs
      end)
    stimulus;
  (* drain the pipeline and check the tail *)
  let n = List.length stimulus in
  for i = n to n + latency - 1 do
    Buffer.add_string buf "    wait until rising_edge(clk);\n";
    if i >= latency && i - latency < n then begin
      let r = List.nth results (i - latency) in
      List.iter
        (fun (port, v) ->
          let kd = kind_of_port port in
          Buffer.add_string buf
            (Printf.sprintf
               "    assert %s = %s report \"iteration %d: %s mismatch\" \
                severity error;\n"
               port (literal kd v) (i - latency) port))
        r.Dp_eval.outputs
    end
  done;
  Buffer.add_string buf
    "    report \"testbench finished\" severity note;\n    wait;\n";
  Buffer.add_string buf "  end process;\nend architecture test;\n";
  Buffer.contents buf
