lib/core/kernels.mli: Driver Roccc_hir Roccc_hw
