lib/core/testbench.ml: Array Buffer Driver List Printf Roccc_cfront Roccc_datapath Roccc_hir Roccc_util Roccc_vm String
