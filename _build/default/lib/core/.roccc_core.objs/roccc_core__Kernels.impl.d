lib/core/kernels.ml: Array Buffer Driver Float Int64 List Printf Roccc_cfront Roccc_hir Roccc_hw String
