lib/core/profile.mli: Roccc_cfront
