lib/core/profile.ml: Buffer Int64 List Printf Roccc_cfront
