lib/core/driver.ml: Array Buffer Int64 List Printf Roccc_analysis Roccc_buffers Roccc_cfront Roccc_datapath Roccc_fpga Roccc_hir Roccc_hw Roccc_vhdl Roccc_vm String
