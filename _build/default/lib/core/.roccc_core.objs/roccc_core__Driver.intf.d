lib/core/driver.mli: Roccc_buffers Roccc_cfront Roccc_datapath Roccc_fpga Roccc_hir Roccc_hw Roccc_vhdl Roccc_vm
