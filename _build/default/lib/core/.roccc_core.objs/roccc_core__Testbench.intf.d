lib/core/testbench.mli: Driver
