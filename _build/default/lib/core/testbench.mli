(** Self-checking VHDL testbench generation: drives the data-path entity
    with the per-iteration window values the smart buffer would deliver and
    asserts the expected outputs after the pipeline latency. Expected values
    come from the data-path evaluator, which the test suite keeps equal to
    the C interpreter. *)

exception Error of string

val iteration_inputs :
  Driver.compiled ->
  arrays:(string * int64 array) list ->
  scalars:(string * int64) list ->
  (string * int64) list list
(** The stimulus schedule: window scalar values per launch, in kernel
    iteration order (the smart buffer's export order). Exposed for tests. *)

val generate :
  ?scalars:(string * int64) list ->
  ?arrays:(string * int64 array) list ->
  Driver.compiled ->
  string
(** Render the testbench VHDL text. Raises {!Error} when a named input
    array or scalar is missing. *)
