(** The ROCCC compiler driver — the library's primary public API.

    [compile] runs the end-to-end pipeline of the paper's Figure 1 on one
    kernel function; [simulate] executes the result on the cycle-accurate
    execution model (Figure 2); [verify] checks the hardware against the C
    semantics. *)

exception Error of string

(** Compilation options. Start from {!default_options} and override. *)
type options = {
  unroll_inner_max : int;
      (** fully unroll inner loops with at most this trip count (for
          bit-step algorithms like division and square root); 0 = off *)
  unroll_all_max : int;
      (** fully unroll any constant loop with at most this trip count,
          turning small kernels into block data paths; 0 = off *)
  fuse_loops : bool;  (** fuse adjacent independent loops *)
  target_ns : float;  (** combinational budget per pipeline stage *)
  infer_widths : bool;  (** bit-width inference (§4.2.4); ablation switch *)
  optimize_vm : bool;
      (** back-end value numbering / copy propagation / dead-code
          elimination; ablation switch *)
  unroll_outer_factor : int;
      (** partial unrolling of the streaming loop: the data path consumes
          [factor] windows and produces [factor] results per cycle *)
  lut_convert_max_bits : int;
      (** convert pure called functions with one scalar input of at most
          this width into ROM lookup tables instead of inlining; 0 = off *)
  bus_elements : int;  (** memory elements delivered per access *)
  check_vhdl : bool;  (** run the structural VHDL linter after generation *)
}

val default_options : options

(** Everything the compiler produces for one kernel. *)
type compiled = {
  source : string;
  entry : string;
  options : options;
  program : Roccc_cfront.Ast.program;  (** after front-end transformation *)
  kernel : Roccc_hir.Kernel.t;  (** scalar-replaced kernel (Figure 3/4) *)
  proc : Roccc_vm.Proc.t;  (** SSA-form virtual-machine procedure *)
  dp : Roccc_datapath.Graph.t;  (** the data path (Figures 6/7) *)
  widths : Roccc_datapath.Widths.t;  (** inferred signal widths *)
  pipeline : Roccc_datapath.Pipeline.t;  (** latch placement + clock *)
  design : Roccc_vhdl.Ast.design;  (** generated VHDL *)
  buffer_configs : Roccc_buffers.Smart_buffer.config list;
  area : Roccc_fpga.Area.estimate;  (** Virtex-II slices + clock *)
  luts : Roccc_hir.Lut_conv.table list;  (** registered lookup tables *)
  system_vhdl : string option;
      (** Figure 2 system wrapper (address generator + smart buffer +
          controller), available for 1-D single-window kernels *)
  pass_trace : string list;  (** executed passes, in order (Figure 1) *)
}

val compile :
  ?options:options ->
  ?luts:Roccc_hir.Lut_conv.table list ->
  entry:string ->
  string ->
  compiled
(** [compile ~entry source] compiles the function [entry] of the C [source].
    [luts] registers pre-existing lookup tables (e.g.
    {!Roccc_hir.Lut_conv.cos_table}) callable by name from the C code.
    Raises {!Error} with a user-facing message on any front-end or back-end
    failure. *)

val compile_all :
  ?options:options ->
  ?luts:Roccc_hir.Lut_conv.table list ->
  string ->
  (string * compiled) list * (string * string) list
(** Compile every hardware-eligible function (array/pointer parameters) in
    a source file: (name, compiled) successes and (name, error) failures. *)

val simulate :
  ?scalars:(string * int64) list ->
  ?arrays:(string * int64 array) list ->
  compiled ->
  Roccc_hw.Engine.result
(** Run the compiled circuit on the cycle-accurate execution model.
    [arrays] supplies input array contents by parameter name; [scalars] the
    live-in scalar parameters. *)

val interpret :
  ?scalars:(string * int64) list ->
  ?arrays:(string * int64 array) list ->
  compiled ->
  Roccc_cfront.Interp.outcome
(** Run the original C source through the reference interpreter. *)

val verify :
  ?scalars:(string * int64) list ->
  ?arrays:(string * int64 array) list ->
  compiled ->
  string list
(** Co-simulation check: simulate and interpret on the same inputs and
    report every output mismatch ([] means the hardware behaviour equals
    the software behaviour, the paper's §4.2.2 soft-node property). *)

val report : compiled -> string
(** Human-readable summary: kernel, data path, pipeline, area. *)

val pass_pipeline_figure : compiled -> string
(** The executed pass pipeline, matching the paper's Figure 1. *)
