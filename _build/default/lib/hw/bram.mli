(** Block-RAM model (paper Figure 2): one read port with single-cycle
    latency, one write port, access counting. The off-chip engine is assumed
    to stage input data before the circuit starts. *)

exception Error of string

type t = {
  name : string;
  data : int64 array;
  element_bits : int;
  element_signed : bool;
  mutable reads : int;
  mutable writes : int;
  mutable pending : (int * int) option;
  mutable read_out : int64 array;
}

val create :
  name:string -> element_bits:int -> ?element_signed:bool -> size:int ->
  unit -> t

val load : t -> int64 array -> unit
(** Stage contents (truncated to the element kind). *)

val contents : t -> int64 array
val size : t -> int

val request_read : t -> address:int -> count:int -> unit
(** Present a burst read request; data appears after the next {!clock}. *)

val write : t -> address:int -> int64 -> unit

val clock : t -> unit
(** Clock edge: capture the pending request into the read port register. *)

val read_port : t -> int64 array
(** Data from the previous cycle's request ([[||]] when none). *)
