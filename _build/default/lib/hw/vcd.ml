(** Value-change-dump (IEEE 1364 VCD) rendering of an execution-model run:
    the window inputs as they launch, the outputs as they retire, and the
    controller state — loadable into GTKWave next to a VHDL simulation of
    the generated design. *)

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(** One traced signal: name, bit width, and its value changes as
    (cycle, value) pairs in increasing cycle order. *)
type signal = {
  sig_name : string;
  sig_bits : int;
  changes : (int * int64) list;
}

type t = {
  design : string;
  timescale_ns : int;
  signals : signal list;
  end_cycle : int;
}

(* VCD identifier characters: printable ASCII 33..126. *)
let ident_of_index (i : int) : string =
  let base = 94 and first = 33 in
  let rec go i acc =
    let c = Char.chr (first + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let binary ~bits (v : int64) : string =
  Roccc_util.Bits.to_binary_string ~width:bits
    (Roccc_util.Bits.truncate_unsigned bits v)

(** Render the dump as VCD text. *)
let render (t : t) : string =
  List.iter
    (fun s ->
      if s.sig_bits < 1 || s.sig_bits > 64 then
        errf "vcd: signal %s has width %d" s.sig_name s.sig_bits;
      let rec sorted = function
        | (c1, _) :: ((c2, _) :: _ as rest) ->
          if c1 > c2 then errf "vcd: %s changes out of order" s.sig_name
          else sorted rest
        | _ -> ()
      in
      sorted s.changes)
    t.signals;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "$date generated $end\n");
  Buffer.add_string buf
    (Printf.sprintf "$version roccc-reproduction execution model $end\n");
  Buffer.add_string buf
    (Printf.sprintf "$timescale %d ns $end\n" t.timescale_ns);
  Buffer.add_string buf (Printf.sprintf "$scope module %s $end\n" t.design);
  let idents =
    List.mapi (fun i s -> s.sig_name, (ident_of_index i, s)) t.signals
  in
  List.iter
    (fun (_, (id, s)) ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire %d %s %s $end\n" s.sig_bits id s.sig_name))
    idents;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  (* group changes by cycle *)
  let by_cycle : (int, (string * signal * int64) list) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (_, (id, s)) ->
      List.iter
        (fun (cycle, v) ->
          let cur = Option.value (Hashtbl.find_opt by_cycle cycle) ~default:[] in
          Hashtbl.replace by_cycle cycle (cur @ [ id, s, v ]))
        s.changes)
    idents;
  let cycles =
    Hashtbl.fold (fun c _ acc -> c :: acc) by_cycle []
    |> List.sort_uniq compare
  in
  List.iter
    (fun cycle ->
      Buffer.add_string buf (Printf.sprintf "#%d\n" cycle);
      List.iter
        (fun (id, s, v) ->
          if s.sig_bits = 1 then
            Buffer.add_string buf
              (Printf.sprintf "%Ld%s\n" (Int64.logand v 1L) id)
          else
            Buffer.add_string buf
              (Printf.sprintf "b%s %s\n" (binary ~bits:s.sig_bits v) id))
        (Hashtbl.find by_cycle cycle))
    cycles;
  Buffer.add_string buf (Printf.sprintf "#%d\n" t.end_cycle);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Building a dump from a simulation                                   *)
(* ------------------------------------------------------------------ *)

(* Controller states as small integers for the state trace. *)
let state_code = function
  | "idle" -> 0L
  | "filling" -> 1L
  | "steady" -> 2L
  | "draining" -> 3L
  | "done" -> 4L
  | _ -> 7L

(** Build a VCD from a kernel and the simulation result: inputs change on
    the recorded launch cycles, outputs on their retire cycles, and the
    controller state on its transitions. *)
let of_simulation ~(design : string) (k : Roccc_hir.Kernel.t)
    (r : Engine.result) : t =
  let kind_of name =
    List.find_map
      (fun (p : Roccc_cfront.Ast.param) ->
        if String.equal p.Roccc_cfront.Ast.pname name then
          match p.Roccc_cfront.Ast.ptype with
          | Roccc_cfront.Ast.Tint kd | Roccc_cfront.Ast.Tptr kd -> Some kd
          | Roccc_cfront.Ast.Tarray _ | Roccc_cfront.Ast.Tvoid -> None
        else None)
      k.Roccc_hir.Kernel.dp.Roccc_cfront.Ast.params
  in
  let bits_of name =
    match kind_of name with
    | Some kd -> kd.Roccc_cfront.Ast.bits
    | None -> 32
  in
  let input_names =
    match r.Engine.launch_trace with
    | [] -> []
    | (_, first) :: _ -> List.map fst first
  in
  let input_signals =
    List.map
      (fun name ->
        { sig_name = name;
          sig_bits = bits_of name;
          changes =
            List.map
              (fun (cycle, inputs) -> cycle, List.assoc name inputs)
              r.Engine.launch_trace })
      input_names
  in
  let output_signals =
    List.map
      (fun (o : Roccc_hir.Kernel.output) ->
        { sig_name = o.Roccc_hir.Kernel.port;
          sig_bits = o.Roccc_hir.Kernel.port_kind.Roccc_cfront.Ast.bits;
          changes =
            List.filter_map
              (fun (cycle, outputs) ->
                Option.map
                  (fun v -> cycle, v)
                  (List.assoc_opt o.Roccc_hir.Kernel.port outputs))
              r.Engine.retire_trace })
      k.Roccc_hir.Kernel.outputs
  in
  let controller =
    { sig_name = "controller_state";
      sig_bits = 3;
      changes =
        List.map (fun (c, s) -> c, state_code s) r.Engine.controller_trace }
  in
  { design;
    timescale_ns = 10;
    signals = (controller :: input_signals) @ output_signals;
    end_cycle = r.Engine.cycles + 1 }
