(** Value-change-dump (VCD) rendering of execution-model runs, loadable into
    GTKWave: window inputs at their launch cycles, outputs at their retire
    cycles, and the controller state. *)

exception Error of string

type signal = {
  sig_name : string;
  sig_bits : int;
  changes : (int * int64) list;  (** (cycle, value), increasing cycles *)
}

type t = {
  design : string;
  timescale_ns : int;
  signals : signal list;
  end_cycle : int;
}

val ident_of_index : int -> string
(** Compact VCD identifier for the i-th signal (printable ASCII). *)

val render : t -> string
(** Render as VCD text; raises {!Error} on malformed signals. *)

val of_simulation :
  design:string -> Roccc_hir.Kernel.t -> Engine.result -> t
(** Build a dump from a kernel and its simulation result. *)
