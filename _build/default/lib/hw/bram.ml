(** Block-RAM model (paper Figure 2): single read port and single write
    port, one-cycle read latency, with access counting. An off-chip engine
    is assumed to have staged the input data into the BRAM before the
    circuit starts, and to drain the output BRAM afterwards. *)

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type t = {
  name : string;
  data : int64 array;
  element_bits : int;
  element_signed : bool;
  mutable reads : int;
  mutable writes : int;
  (* the read register: data captured this cycle, visible next cycle *)
  mutable pending : (int * int) option;  (** base address, count *)
  mutable read_out : int64 array;        (** data visible on the read port *)
}

let create ~name ~element_bits ?(element_signed = true) ~size () : t =
  { name;
    data = Array.make size 0L;
    element_bits;
    element_signed;
    reads = 0;
    writes = 0;
    pending = None;
    read_out = [||] }

let load (m : t) (values : int64 array) : unit =
  if Array.length values > Array.length m.data then
    errf "bram %s: %d values exceed capacity %d" m.name (Array.length values)
      (Array.length m.data);
  Array.iteri
    (fun i v ->
      m.data.(i) <-
        Roccc_util.Bits.truncate ~signed:m.element_signed m.element_bits v)
    values

let contents (m : t) : int64 array = Array.copy m.data

let size (m : t) = Array.length m.data

(** Present a read request this cycle; data appears after [clock]. *)
let request_read (m : t) ~(address : int) ~(count : int) : unit =
  if address < 0 || address + count > Array.length m.data then
    errf "bram %s: read [%d, %d) out of range" m.name address (address + count);
  m.pending <- Some (address, count)

(** Synchronous write, effective immediately after the clock edge. *)
let write (m : t) ~(address : int) (value : int64) : unit =
  if address < 0 || address >= Array.length m.data then
    errf "bram %s: write %d out of range" m.name address;
  m.data.(address) <-
    Roccc_util.Bits.truncate ~signed:m.element_signed m.element_bits value;
  m.writes <- m.writes + 1

(** Clock edge: the pending read is captured into the read port register. *)
let clock (m : t) : unit =
  match m.pending with
  | Some (address, count) ->
    m.read_out <- Array.sub m.data address count;
    m.reads <- m.reads + count;
    m.pending <- None
  | None -> m.read_out <- [||]

(** Data on the read port (result of the previous cycle's request). *)
let read_port (m : t) : int64 array = m.read_out
