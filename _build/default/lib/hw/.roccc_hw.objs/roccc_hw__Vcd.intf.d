lib/hw/vcd.mli: Engine Roccc_hir
