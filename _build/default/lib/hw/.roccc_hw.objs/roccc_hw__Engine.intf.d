lib/hw/engine.mli: Roccc_datapath Roccc_hir
