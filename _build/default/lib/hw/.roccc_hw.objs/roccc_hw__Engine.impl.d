lib/hw/engine.ml: Array Bram Hashtbl List Printf Queue Roccc_buffers Roccc_cfront Roccc_datapath Roccc_hir
