lib/hw/bram.mli:
