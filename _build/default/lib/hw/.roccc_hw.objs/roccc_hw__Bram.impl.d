lib/hw/bram.ml: Array Printf Roccc_util
