lib/hw/vcd.ml: Buffer Char Engine Hashtbl Int64 List Option Printf Roccc_cfront Roccc_hir Roccc_util String
