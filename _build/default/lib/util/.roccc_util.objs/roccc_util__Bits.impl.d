lib/util/bits.ml: Bytes Int64
