lib/util/bits.mli:
