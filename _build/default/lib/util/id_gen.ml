(** Deterministic integer id generators.

    Every IR in the compiler (virtual registers, CFG blocks, datapath nodes,
    VHDL signals) needs fresh ids. A generator is a value, not global state,
    so independent compilations are reproducible. *)

type t = { mutable next : int }

let create ?(start = 0) () = { next = start }

let fresh t =
  let id = t.next in
  t.next <- t.next + 1;
  id

let peek t = t.next

let reset t = t.next <- 0
