(** Deterministic integer id generators. *)

type t

val create : ?start:int -> unit -> t
(** [create ()] makes a generator starting at [start] (default 0). *)

val fresh : t -> int
(** [fresh t] returns the next id and advances the generator. *)

val peek : t -> int
(** [peek t] is the id the next [fresh] call would return. *)

val reset : t -> unit
(** [reset t] restarts the generator at 0. *)
