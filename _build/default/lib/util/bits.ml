(** Bit-level arithmetic helpers shared by the bit-width inference pass, the
    FPGA area model and the hardware simulator.

    All machine values in the compiler are carried as [int64] with an explicit
    width and signedness; these helpers implement the wrap/extend semantics of
    fixed-width two's-complement hardware. *)

let max_width = 64

(* Number of bits needed to represent [v] as an unsigned quantity. *)
let bits_for_unsigned (v : int64) : int =
  if Int64.compare v 0L < 0 then max_width
  else if Int64.equal v 0L then 1
  else
    let rec loop n acc = if Int64.equal n 0L then acc else loop (Int64.shift_right_logical n 1) (acc + 1) in
    loop v 0

(* Number of bits needed for [v] in two's complement (including sign bit). *)
let bits_for_signed (v : int64) : int =
  if Int64.compare v 0L >= 0 then bits_for_unsigned v + 1
  else
    (* -2^(n-1) <= v  <=>  n >= bits(-v - 1) + 1 *)
    bits_for_unsigned (Int64.sub (Int64.neg v) 1L) + 1

let mask width =
  if width >= 64 then -1L else Int64.sub (Int64.shift_left 1L width) 1L

(* Truncate [v] to [width] bits, zero-extended interpretation. *)
let truncate_unsigned width v = Int64.logand v (mask width)

(* Truncate [v] to [width] bits, sign-extended interpretation. *)
let truncate_signed width v =
  if width >= 64 then v
  else
    let m = truncate_unsigned width v in
    let sign_bit = Int64.shift_left 1L (width - 1) in
    if Int64.equal (Int64.logand m sign_bit) 0L then m
    else Int64.logor m (Int64.lognot (mask width))

let truncate ~signed width v =
  if signed then truncate_signed width v else truncate_unsigned width v

(* Range of representable values for a width/signedness. *)
let min_value ~signed width =
  if signed then Int64.neg (Int64.shift_left 1L (width - 1)) else 0L

let max_value ~signed width =
  if signed then Int64.sub (Int64.shift_left 1L (width - 1)) 1L
  else mask width

let fits ~signed width v =
  Int64.compare v (min_value ~signed width) >= 0
  && Int64.compare v (max_value ~signed width) <= 0

(* ceil(log2 n) for n >= 1: address width needed to index n entries. *)
let clog2 n =
  if n <= 1 then 0
  else
    let rec loop acc v = if v >= n then acc else loop (acc + 1) (v * 2) in
    loop 0 1

let to_binary_string ~width (v : int64) : string =
  let b = Bytes.create width in
  for i = 0 to width - 1 do
    let bit = Int64.logand (Int64.shift_right_logical v (width - 1 - i)) 1L in
    Bytes.set b i (if Int64.equal bit 1L then '1' else '0')
  done;
  Bytes.to_string b
