(** Fixed-width two's-complement arithmetic helpers. *)

val max_width : int

val bits_for_unsigned : int64 -> int
(** Minimal width representing the value as unsigned; 64 for negatives. *)

val bits_for_signed : int64 -> int
(** Minimal two's-complement width (including sign bit). *)

val mask : int -> int64
(** [mask w] has the low [w] bits set. *)

val truncate_unsigned : int -> int64 -> int64
val truncate_signed : int -> int64 -> int64

val truncate : signed:bool -> int -> int64 -> int64
(** Wrap a value to [width] bits under the given signedness. *)

val min_value : signed:bool -> int -> int64
val max_value : signed:bool -> int -> int64

val fits : signed:bool -> int -> int64 -> bool
(** Does the value fit in [width] bits without wrapping? *)

val clog2 : int -> int
(** [clog2 n] is the address width needed to index [n] entries. *)

val to_binary_string : width:int -> int64 -> string
(** Little-endian-free binary rendering, MSB first, used by ROM init files. *)
