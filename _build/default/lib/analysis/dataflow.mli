(** Bit-vector data-flow analysis framework — the Machine-SUIF DFA library
    equivalent (paper reference [15]): a generic worklist solver over
    integer sets, instantiated for live variables, reaching definitions and
    available expressions. *)

module Proc = Roccc_vm.Proc
module Instr = Roccc_vm.Instr
module IS : Set.S with type elt = int

type direction = Forward | Backward
type confluence = Union | Intersection

(** A block-level problem: GEN/KILL per block plus direction and meet. *)
type problem = {
  direction : direction;
  confluence : confluence;
  gen : Proc.block -> IS.t;
  kill : Proc.block -> IS.t;
  init : IS.t;  (** value at the boundary (entry or exit) *)
  universe : IS.t;  (** top for intersection problems *)
}

type solution = {
  live_in : (Proc.label, IS.t) Hashtbl.t;
  live_out : (Proc.label, IS.t) Hashtbl.t;
}

val in_of : solution -> Proc.label -> IS.t
val out_of : solution -> Proc.label -> IS.t

val solve : Cfg.t -> problem -> solution
(** Iterative worklist solver (round-robin with an iteration budget). *)

val liveness : Cfg.t -> solution
(** Live registers per block; output ports are live at exit and phi uses
    count as live-out of the matching predecessor. *)

type def_site = {
  site_id : int;
  site_block : Proc.label;
  site_reg : Instr.vreg;
}

val definition_sites : Proc.t -> def_site list

val reaching_definitions : Cfg.t -> solution * def_site list
(** Classic reaching definitions over numbered definition sites. *)

type expr_key = string

val available_expressions : Cfg.t -> solution * (expr_key, int) Hashtbl.t
(** Available pure expressions (keyed by opcode + operands), intersection
    confluence; returns the solution and the expression numbering. *)
