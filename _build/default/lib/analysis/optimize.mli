(** Back-end optimization passes over SSA-form procedures, run before
    data-path construction: copy propagation, local value numbering (CSE
    within blocks) and dead-code elimination. All three shrink the circuit
    without changing behaviour. *)

type stats = {
  copies_propagated : int;
  values_numbered : int;
  dead_removed : int;
}

val propagate_copies : Roccc_vm.Proc.t -> int
(** Redirect readers of same-kind Mov results to the source; returns the
    number of rewritten uses. *)

val value_number : Roccc_vm.Proc.t -> int
(** Share identical pure computations within each block; returns the number
    of instructions replaced by copies. *)

val eliminate_dead : Roccc_vm.Proc.t -> int
(** Drop instructions whose results reach no output, SNX, phi or branch;
    returns the number removed. *)

val run : Roccc_vm.Proc.t -> stats
(** Iterate the three passes to a fixpoint. *)
