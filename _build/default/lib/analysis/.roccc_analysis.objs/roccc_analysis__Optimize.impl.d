lib/analysis/optimize.ml: Hashtbl Int List Option Printf Roccc_cfront Roccc_vm Set String
