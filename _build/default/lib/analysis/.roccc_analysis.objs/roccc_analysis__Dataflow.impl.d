lib/analysis/dataflow.ml: Cfg Hashtbl Int List Option Printf Roccc_vm Set String
