lib/analysis/optimize.mli: Roccc_vm
