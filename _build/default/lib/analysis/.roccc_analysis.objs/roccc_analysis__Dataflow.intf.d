lib/analysis/dataflow.mli: Cfg Hashtbl Roccc_vm Set
