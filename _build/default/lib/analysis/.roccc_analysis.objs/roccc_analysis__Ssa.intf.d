lib/analysis/ssa.mli: Cfg Roccc_vm
