lib/analysis/ssa.ml: Array Cfg Hashtbl Int List Option Printf Roccc_vm Set
