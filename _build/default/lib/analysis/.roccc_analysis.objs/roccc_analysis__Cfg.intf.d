lib/analysis/cfg.mli: Hashtbl Roccc_vm
