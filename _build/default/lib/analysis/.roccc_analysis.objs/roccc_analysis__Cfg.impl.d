lib/analysis/cfg.ml: Array Buffer Hashtbl List Option Printf Roccc_vm
