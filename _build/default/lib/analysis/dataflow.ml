(** Bit-vector data-flow analysis framework — the Machine-SUIF DFA library
    equivalent (paper reference [15]). A generic worklist solver over integer
    sets, instantiated below for live variables, reaching definitions and
    available expressions. *)

module Proc = Roccc_vm.Proc
module Instr = Roccc_vm.Instr
module IS = Set.Make (Int)

type direction = Forward | Backward
type confluence = Union | Intersection

(** A block-level problem: GEN/KILL per block plus direction and meet. *)
type problem = {
  direction : direction;
  confluence : confluence;
  gen : Proc.block -> IS.t;
  kill : Proc.block -> IS.t;
  init : IS.t;           (** value at the boundary (entry or exit) *)
  universe : IS.t;       (** top for intersection problems *)
}

type solution = {
  live_in : (Proc.label, IS.t) Hashtbl.t;   (* IN sets *)
  live_out : (Proc.label, IS.t) Hashtbl.t;  (* OUT sets *)
}

let in_of (s : solution) l = Option.value (Hashtbl.find_opt s.live_in l) ~default:IS.empty
let out_of (s : solution) l = Option.value (Hashtbl.find_opt s.live_out l) ~default:IS.empty

(** Iterative worklist solver. *)
let solve (g : Cfg.t) (p : problem) : solution =
  let blocks = g.Cfg.proc.Proc.blocks in
  let in_sets = Hashtbl.create 16 and out_sets = Hashtbl.create 16 in
  let start_value =
    match p.confluence with Union -> IS.empty | Intersection -> p.universe
  in
  List.iter
    (fun (b : Proc.block) ->
      Hashtbl.replace in_sets b.Proc.label start_value;
      Hashtbl.replace out_sets b.Proc.label start_value)
    blocks;
  let meet values =
    match values, p.confluence with
    | [], Union -> IS.empty
    | [], Intersection -> p.init
    | v :: vs, Union -> List.fold_left IS.union v vs
    | v :: vs, Intersection -> List.fold_left IS.inter v vs
  in
  let transfer (b : Proc.block) x =
    IS.union (p.gen b) (IS.diff x (p.kill b))
  in
  let changed = ref true in
  let iteration_budget = ref (List.length blocks * List.length blocks * 4 + 64) in
  while !changed && !iteration_budget > 0 do
    changed := false;
    decr iteration_budget;
    List.iter
      (fun (b : Proc.block) ->
        let l = b.Proc.label in
        match p.direction with
        | Forward ->
          let preds = Cfg.predecessors g l in
          let in_v =
            if l = Cfg.entry_label g then p.init
            else meet (List.map (fun q -> Hashtbl.find out_sets q) preds)
          in
          let out_v = transfer b in_v in
          if not (IS.equal in_v (Hashtbl.find in_sets l)) then begin
            Hashtbl.replace in_sets l in_v;
            changed := true
          end;
          if not (IS.equal out_v (Hashtbl.find out_sets l)) then begin
            Hashtbl.replace out_sets l out_v;
            changed := true
          end
        | Backward ->
          let succs = Cfg.successors g l in
          let out_v =
            if succs = [] then p.init
            else meet (List.map (fun q -> Hashtbl.find in_sets q) succs)
          in
          let in_v = transfer b out_v in
          if not (IS.equal out_v (Hashtbl.find out_sets l)) then begin
            Hashtbl.replace out_sets l out_v;
            changed := true
          end;
          if not (IS.equal in_v (Hashtbl.find in_sets l)) then begin
            Hashtbl.replace in_sets l in_v;
            changed := true
          end)
      blocks
  done;
  { live_in = in_sets; live_out = out_sets }

(* ------------------------------------------------------------------ *)
(* Live variables                                                      *)
(* ------------------------------------------------------------------ *)

(* Upward-exposed uses of a block: used before (re)defined, scanning forward.
   Phi arguments count as uses in the *predecessor*, so here we treat a
   block's own phis as definitions only. *)
let block_ue_uses (b : Proc.block) : IS.t =
  let defined = ref IS.empty in
  List.iter (fun (p : Proc.phi) -> defined := IS.add p.Proc.phi_dst !defined) b.Proc.phis;
  let uses = ref IS.empty in
  List.iter
    (fun (i : Instr.instr) ->
      List.iter
        (fun s -> if not (IS.mem s !defined) then uses := IS.add s !uses)
        i.Instr.srcs;
      match i.Instr.dst with
      | Some d -> defined := IS.add d !defined
      | None -> ())
    b.Proc.instrs;
  (match b.Proc.term with
  | Proc.Branch (r, _, _) ->
    if not (IS.mem r !defined) then uses := IS.add r !uses
  | Proc.Jump _ | Proc.Ret -> ());
  !uses

let block_all_defs (b : Proc.block) : IS.t =
  IS.of_list (Proc.block_defs b)

(** Live-variable analysis on registers. Output-port registers are live at
    exit; phi uses are injected as live-out of the matching predecessor. *)
let liveness (g : Cfg.t) : solution =
  let proc = g.Cfg.proc in
  let exit_live =
    IS.of_list (List.map (fun (p : Proc.port) -> p.Proc.port_reg) proc.Proc.outputs)
  in
  (* Phi uses flowing along edges: pre-compute per predecessor. *)
  let phi_uses_of_pred = Hashtbl.create 16 in
  List.iter
    (fun (b : Proc.block) ->
      List.iter
        (fun (phi : Proc.phi) ->
          List.iter
            (fun (pred_label, src) ->
              let cur =
                Option.value (Hashtbl.find_opt phi_uses_of_pred pred_label)
                  ~default:IS.empty
              in
              Hashtbl.replace phi_uses_of_pred pred_label (IS.add src cur))
            phi.Proc.phi_args)
        b.Proc.phis)
    proc.Proc.blocks;
  let problem =
    { direction = Backward;
      confluence = Union;
      gen =
        (fun b ->
          IS.union (block_ue_uses b)
            (* Phi args used on outgoing edges behave like uses at block end
               — approximated as GEN (sound for DAG-shaped dp CFGs). *)
            IS.empty);
      kill = block_all_defs;
      init = exit_live;
      universe = IS.empty }
  in
  let sol = solve g problem in
  (* Patch in edge-carried phi uses: they are live-out of the predecessor. *)
  Hashtbl.iter
    (fun pred_label uses ->
      let cur = out_of sol pred_label in
      Hashtbl.replace sol.live_out pred_label (IS.union cur uses);
      (* and live-in if not defined locally *)
      let b = Proc.find_block proc pred_label in
      let defs = block_all_defs b in
      let flow_through = IS.diff uses defs in
      Hashtbl.replace sol.live_in pred_label
        (IS.union (in_of sol pred_label) flow_through))
    phi_uses_of_pred;
  sol

(* ------------------------------------------------------------------ *)
(* Reaching definitions                                                *)
(* ------------------------------------------------------------------ *)

(** Definition sites are numbered globally; [def_of i] gives (site, reg). *)
type def_site = { site_id : int; site_block : Proc.label; site_reg : Instr.vreg }

let definition_sites (proc : Proc.t) : def_site list =
  let id = ref 0 in
  List.concat_map
    (fun (b : Proc.block) ->
      let phi_defs =
        List.map
          (fun (p : Proc.phi) ->
            let s = { site_id = !id; site_block = b.Proc.label; site_reg = p.Proc.phi_dst } in
            incr id;
            s)
          b.Proc.phis
      in
      let instr_defs =
        List.filter_map
          (fun (i : Instr.instr) ->
            match i.Instr.dst with
            | Some d ->
              let s = { site_id = !id; site_block = b.Proc.label; site_reg = d } in
              incr id;
              Some s
            | None -> None)
          b.Proc.instrs
      in
      phi_defs @ instr_defs)
    proc.Proc.blocks

(** Classic reaching definitions over definition sites. *)
let reaching_definitions (g : Cfg.t) : solution * def_site list =
  let proc = g.Cfg.proc in
  let sites = definition_sites proc in
  let sites_of_block l =
    List.filter (fun s -> s.site_block = l) sites
  in
  let sites_of_reg r = List.filter (fun s -> s.site_reg = r) sites in
  let gen b =
    (* Last definition of each register in the block. *)
    let per_reg = Hashtbl.create 8 in
    List.iter
      (fun s -> Hashtbl.replace per_reg s.site_reg s.site_id)
      (sites_of_block b.Proc.label);
    Hashtbl.fold (fun _ v acc -> IS.add v acc) per_reg IS.empty
  in
  let kill b =
    let defs = IS.of_list (Proc.block_defs b) in
    IS.fold
      (fun r acc ->
        List.fold_left (fun acc s -> IS.add s.site_id acc) acc (sites_of_reg r))
      defs IS.empty
  in
  let problem =
    { direction = Forward;
      confluence = Union;
      gen;
      kill;
      init = IS.empty;
      universe = IS.empty }
  in
  solve g problem, sites

(* ------------------------------------------------------------------ *)
(* Available expressions                                               *)
(* ------------------------------------------------------------------ *)

(* Expressions keyed by (opcode, srcs); identified with the first instruction
   index computing them. Conservative: any redefinition of an operand kills. *)
type expr_key = string

let instr_key (i : Instr.instr) : expr_key option =
  match i.Instr.op with
  | Instr.Mov | Instr.Ldc _ | Instr.Lpr _ | Instr.Snx _ -> None
  | op ->
    let srcs =
      if Instr.is_commutative op then List.sort compare i.Instr.srcs
      else i.Instr.srcs
    in
    Some
      (Printf.sprintf "%s(%s)"
         (Instr.opcode_name op)
         (String.concat "," (List.map string_of_int srcs)))

(** Available-expression analysis; returns the IN table keyed by block and a
    numbering of expression keys. *)
let available_expressions (g : Cfg.t) : solution * (expr_key, int) Hashtbl.t =
  let proc = g.Cfg.proc in
  let numbering : (expr_key, int) Hashtbl.t = Hashtbl.create 32 in
  let next = ref 0 in
  let universe = ref IS.empty in
  List.iter
    (fun (b : Proc.block) ->
      List.iter
        (fun i ->
          match instr_key i with
          | Some k when not (Hashtbl.mem numbering k) ->
            Hashtbl.replace numbering k !next;
            universe := IS.add !next !universe;
            incr next
          | Some _ | None -> ())
        b.Proc.instrs)
    proc.Proc.blocks;
  let exprs_using_reg r =
    Hashtbl.fold
      (fun key id acc ->
        (* key contains operand regs in its textual form; cheap match *)
        let token = string_of_int r in
        let uses =
          String.split_on_char '(' key |> function
          | [ _; args ] ->
            String.split_on_char ')' args |> List.hd
            |> String.split_on_char ','
            |> List.exists (String.equal token)
          | _ -> false
        in
        if uses then IS.add id acc else acc)
      numbering IS.empty
  in
  let gen (b : Proc.block) =
    let avail = ref IS.empty in
    List.iter
      (fun (i : Instr.instr) ->
        (match i.Instr.dst with
        | Some d -> avail := IS.diff !avail (exprs_using_reg d)
        | None -> ());
        match instr_key i with
        | Some k -> avail := IS.add (Hashtbl.find numbering k) !avail
        | None -> ())
      b.Proc.instrs;
    !avail
  in
  let kill (b : Proc.block) =
    IS.fold
      (fun d acc -> IS.union acc (exprs_using_reg d))
      (block_all_defs b) IS.empty
  in
  let problem =
    { direction = Forward;
      confluence = Intersection;
      gen;
      kill;
      init = IS.empty;
      universe = !universe }
  in
  solve g problem, numbering
