(** The higher-level controller (paper §4.1): the FSM sequencing the address
    generators, smart buffer and data path. Compile-time scheduling means no
    handshake cycles (§3, vs. SA-C): progress is tracked by launch/retire
    counters. *)

type state = Idle | Filling | Steady | Draining | Done

val state_name : state -> string

type t = {
  mutable state : state;
  mutable cycle : int;
  mutable launched : int;
  mutable retired : int;
  total_iterations : int;
  pipeline_latency : int;
}

val create : total_iterations:int -> pipeline_latency:int -> t
val start : t -> unit

val step : t -> window_ready:bool -> input_done:bool -> unit
(** Evaluate one clock's transitions. *)

val note_launch : t -> unit
val note_retire : t -> unit
val is_done : t -> bool

val to_vhdl_sketch : t -> name:string -> string
(** Synthesizable two-process FSM skeleton for documentation dumps. *)
