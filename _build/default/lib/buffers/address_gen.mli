(** Address generators (paper §4.1): parameterized FSMs exporting memory
    addresses according to the access pattern. The input side streams every
    array element once, row-major, in bursts; the output side produces one
    store address per exported window. *)

exception Error of string

type request = { base_address : int; count : int }

type input_gen

val create_input : array_dims:int list -> bus_elements:int -> input_gen

val next_read : input_gen -> request option
(** Next burst request; [None] once the array is exhausted. *)

val input_done : input_gen -> bool
val issued : input_gen -> int

type output_gen

val create_output :
  out_dims:int list ->
  iterations:int list ->
  stride:int list ->
  lower:int list ->
  offset:int list ->
  output_gen

val total_outputs : output_gen -> int

val next_write : output_gen -> int option
(** Flat store address for the next window; [None] when complete. Raises
    {!Error} when the pattern escapes the output array. *)

val output_done : output_gen -> bool
