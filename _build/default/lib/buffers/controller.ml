(** The higher-level controller (paper §4.1): a finite state machine that
    sequences the address generators, the smart buffer and the data path.
    Because the compiler knows the access pattern at compile time, no
    handshaking cycles are spent between components (§3, vs. SA-C). *)

type state =
  | Idle     (** waiting for start *)
  | Filling  (** priming the smart buffer before the first window *)
  | Steady   (** one window per cycle enters the data path *)
  | Draining (** input exhausted; in-flight iterations completing *)
  | Done

let state_name = function
  | Idle -> "idle"
  | Filling -> "filling"
  | Steady -> "steady"
  | Draining -> "draining"
  | Done -> "done"

type t = {
  mutable state : state;
  mutable cycle : int;
  mutable launched : int;   (** iterations issued to the data path *)
  mutable retired : int;    (** iterations whose results were written *)
  total_iterations : int;
  pipeline_latency : int;
}

let create ~total_iterations ~pipeline_latency : t =
  { state = Idle;
    cycle = 0;
    launched = 0;
    retired = 0;
    total_iterations;
    pipeline_latency }

let start (c : t) = if c.state = Idle then c.state <- Filling

(* Transition rules evaluated once per clock by the simulator. Progress is
   tracked by launch/retire counters: the compile-time schedule means the
   controller needs no handshake with the buffer, only counts. *)
let step (c : t) ~(window_ready : bool) ~(input_done : bool) : unit =
  ignore window_ready;
  ignore input_done;
  c.cycle <- c.cycle + 1;
  (match c.state with
  | Idle -> ()
  | Filling ->
    if c.total_iterations = 0 then c.state <- Done
    else if c.launched > 0 then c.state <- Steady
  | Steady -> if c.launched >= c.total_iterations then c.state <- Draining
  | Draining -> if c.retired >= c.total_iterations then c.state <- Done
  | Done -> ());
  if c.state = Steady && c.launched >= c.total_iterations then
    c.state <- Draining;
  if c.state = Draining && c.retired >= c.total_iterations then c.state <- Done

let note_launch (c : t) = c.launched <- c.launched + 1
let note_retire (c : t) = c.retired <- c.retired + 1

let is_done (c : t) = c.state = Done

(** VHDL skeleton of the controller FSM — emitted alongside the data path
    for completeness (states, transitions and counters as a synthesizable
    two-process machine). *)
let to_vhdl_sketch (c : t) ~(name : string) : string =
  Printf.sprintf
    "-- controller %s: %d iterations, pipeline latency %d\n\
     -- states: idle -> filling -> steady -> draining -> done\n\
     type state_t is (idle, filling, steady, draining, done);\n\
     signal state : state_t := idle;\n\
     signal launched : unsigned(31 downto 0) := (others => '0');\n\
     signal retired  : unsigned(31 downto 0) := (others => '0');\n\
     -- transitions evaluated on rising_edge(clk):\n\
     --   filling -> steady when window_ready\n\
     --   steady  -> draining when launched = %d\n\
     --   draining -> done when retired = %d\n"
    name c.total_iterations c.pipeline_latency c.total_iterations
    c.total_iterations
