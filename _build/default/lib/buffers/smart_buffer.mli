(** The smart buffer (paper §4.1, reference [18]): generated from the memory
    access pattern — bus size, window size, data size, sliding-window
    stride — it reuses live input data so each array element is fetched from
    memory exactly once. *)

exception Error of string

(** Static configuration derived from the kernel's access pattern. All
    per-dimension lists are outermost-first; [window_offsets],
    [stride]/[iterations]/[lower] have one entry per array dimension. *)
type config = {
  element_bits : int;
  element_signed : bool;
  bus_elements : int;  (** elements delivered per memory access *)
  array_dims : int list;
  window_offsets : int list list;  (** offsets consumed per iteration *)
  stride : int list;  (** window advance per iteration *)
  iterations : int list;  (** iteration count per loop dimension *)
  lower : int list;  (** first window origin *)
}

type stats = {
  mutable fetched_elements : int;
  mutable exported_windows : int;
}

type t = {
  cfg : config;
  data : int64 array;
  mutable arrived : int;
  mutable window_index : int;
  stats : stats;
}

val capacity_elements : config -> int
(** Register capacity of the generated buffer: [extent + bus - 1] for 1-D
    windows, line buffers [(rows-1)*row_length + cols + bus - 1] for 2-D. *)

val capacity_bits : config -> int

val create : config -> t
(** Raises {!Error} for empty buses or >2-D arrays. *)

val remaining_fetch : t -> int
(** Elements still expected from memory. *)

val push : t -> int64 array -> unit
(** Deliver the next memory word (up to [bus_elements] values, row-major,
    in order — the input address generator's contract). *)

val window_ready : t -> bool
(** Is the next window fully buffered? *)

val pop_window : t -> int64 array option
(** Export the next window's values in offset order and advance; [None]
    while data is missing or once iteration completes. *)

val finished : t -> bool

val stats : t -> stats

val naive_fetches : config -> int
(** Memory traffic of a baseline that refetches the whole window every
    iteration (the Streams-C-style comparison of paper §3). *)

val reuse_ratio : t -> float
(** [naive_fetches / fetched_elements] — the data-reuse factor. *)
