lib/buffers/controller.mli:
