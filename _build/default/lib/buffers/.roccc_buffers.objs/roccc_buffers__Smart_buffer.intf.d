lib/buffers/smart_buffer.mli:
