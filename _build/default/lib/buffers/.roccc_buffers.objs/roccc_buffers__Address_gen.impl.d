lib/buffers/address_gen.ml: List Printf
