lib/buffers/address_gen.mli:
