lib/buffers/controller.ml: Printf
