lib/buffers/smart_buffer.ml: Array List Printf Roccc_util
