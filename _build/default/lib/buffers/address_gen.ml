(** Address generators (paper §4.1): parameterized FSMs that "export a
    series of memory addresses according to the memory access pattern".
    The input generator streams every array element once, in row-major
    order, [bus_elements] per access; the output generator produces one
    store address per exported window. *)

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(** A burst of consecutive addresses presented to the memory in one cycle. *)
type request = { base_address : int; count : int }

(* ------------------------------------------------------------------ *)
(* Input side: sequential whole-array scan                             *)
(* ------------------------------------------------------------------ *)

type input_gen = {
  total : int;
  bus_elements : int;
  mutable next : int;
}

let create_input ~(array_dims : int list) ~(bus_elements : int) : input_gen =
  if bus_elements < 1 then errf "address generator: bus must be >= 1";
  { total = List.fold_left ( * ) 1 array_dims; bus_elements; next = 0 }

(** Next read request, or [None] once the array is exhausted. *)
let next_read (g : input_gen) : request option =
  if g.next >= g.total then None
  else begin
    let count = min g.bus_elements (g.total - g.next) in
    let r = { base_address = g.next; count } in
    g.next <- g.next + count;
    Some r
  end

let input_done (g : input_gen) : bool = g.next >= g.total

(** Addresses issued so far (each element exactly once). *)
let issued (g : input_gen) : int = g.next

(* ------------------------------------------------------------------ *)
(* Output side: one address per iteration, following the write pattern *)
(* ------------------------------------------------------------------ *)

type output_gen = {
  out_dims : int list;       (** output array dimensions *)
  iterations : int list;     (** loop iteration counts, outermost first *)
  stride : int list;
  lower : int list;
  offset : int list;         (** write offset relative to loop indices *)
  mutable window : int;      (** next window number *)
}

let create_output ~(out_dims : int list) ~(iterations : int list)
    ~(stride : int list) ~(lower : int list) ~(offset : int list) : output_gen
    =
  { out_dims; iterations; stride; lower; offset; window = 0 }

let total_outputs (g : output_gen) : int =
  List.fold_left ( * ) 1 g.iterations

(* Mixed-radix split of a window number into per-dim iteration coords. *)
let rec split_coords w = function
  | [] -> []
  | [ _ ] -> [ w ]
  | _ :: rest ->
    let inner = List.fold_left ( * ) 1 rest in
    (w / inner) :: split_coords (w mod inner) rest

(** Store address for the next window, or [None] when complete. *)
let next_write (g : output_gen) : int option =
  if g.window >= total_outputs g then None
  else begin
    let coords = split_coords g.window g.iterations in
    let pos =
      List.map2 (fun (c, s) (l, o) -> l + (c * s) + o)
        (List.combine coords g.stride)
        (List.combine g.lower g.offset)
    in
    List.iter2
      (fun p d ->
        if p < 0 || p >= d then
          errf "output address generator: position out of the output array")
      pos g.out_dims;
    let addr = List.fold_left2 (fun acc d p -> (acc * d) + p) 0 g.out_dims pos in
    g.window <- g.window + 1;
    Some addr
  end

let output_done (g : output_gen) : bool = g.window >= total_outputs g
