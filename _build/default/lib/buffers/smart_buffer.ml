(** The smart buffer (paper §4.1, reference [18]): generated from the memory
    access pattern — bus size, window size, data size and sliding-window
    stride — it "reuses live input data, cleans unused data and exports the
    present valid input data set to the data path", so each array element is
    fetched from memory exactly once.

    1-D windows keep [extent + bus - 1] live registers; 2-D windows keep
    [(rows-1) * row_length + cols] (line buffers), matching the hardware
    structure the generator sizes. *)

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type config = {
  element_bits : int;
  element_signed : bool;
  bus_elements : int;       (** elements delivered per memory access *)
  array_dims : int list;    (** full array dimensions, outermost first *)
  window_offsets : int list list;  (** offsets consumed per iteration *)
  stride : int list;        (** window advance per iteration, per dim *)
  iterations : int list;    (** iteration count per loop dim *)
  lower : int list;         (** first window origin per dim *)
}

type stats = {
  mutable fetched_elements : int;  (** elements read from memory *)
  mutable exported_windows : int;  (** windows handed to the data path *)
}

type t = {
  cfg : config;
  data : int64 array;             (** arrival store, flat row-major *)
  mutable arrived : int;          (** elements received so far (in order) *)
  mutable window_index : int;     (** next window number to export *)
  stats : stats;
}

let total_elements cfg = List.fold_left ( * ) 1 cfg.array_dims

let total_windows cfg = List.fold_left ( * ) 1 cfg.iterations

(* Extent per dimension: max offset + 1 relative to the window origin
   (offsets are relative to the loop indices). *)
let extents cfg : int list =
  match cfg.window_offsets with
  | [] -> List.map (fun _ -> 1) cfg.array_dims
  | first :: _ ->
    List.mapi
      (fun d _ ->
        let vals = List.map (fun v -> List.nth v d) cfg.window_offsets in
        let lo = List.fold_left min (List.hd vals) vals in
        let hi = List.fold_left max (List.hd vals) vals in
        hi - lo + 1)
      first

(** Register capacity of the generated buffer, in elements. *)
let capacity_elements (cfg : config) : int =
  match extents cfg, cfg.array_dims with
  | [ e ], [ _ ] -> e + cfg.bus_elements - 1
  | [ er; ec ], [ _; cols ] -> ((er - 1) * cols) + ec + cfg.bus_elements - 1
  | _ -> errf "smart buffer: only 1-D and 2-D windows are supported"

let capacity_bits (cfg : config) : int =
  capacity_elements cfg * cfg.element_bits

let create (cfg : config) : t =
  if cfg.bus_elements < 1 then errf "smart buffer: bus must carry >= 1 element";
  (match cfg.array_dims with
  | [ _ ] | [ _; _ ] -> ()
  | _ -> errf "smart buffer: 1-D or 2-D arrays only");
  { cfg;
    data = Array.make (total_elements cfg) 0L;
    arrived = 0;
    window_index = 0;
    stats = { fetched_elements = 0; exported_windows = 0 } }

(** Elements still expected from memory. *)
let remaining_fetch (b : t) : int = total_elements b.cfg - b.arrived

(** Deliver the next memory word ([<= bus_elements] elements, in row-major
    order). The address generator guarantees in-order delivery. *)
let push (b : t) (elements : int64 array) : unit =
  if Array.length elements > b.cfg.bus_elements then
    errf "smart buffer: %d elements exceed the bus width %d"
      (Array.length elements) b.cfg.bus_elements;
  Array.iter
    (fun v ->
      if b.arrived >= total_elements b.cfg then
        errf "smart buffer: more data than the array holds";
      b.data.(b.arrived) <-
        Roccc_util.Bits.truncate ~signed:b.cfg.element_signed
          b.cfg.element_bits v;
      b.arrived <- b.arrived + 1;
      b.stats.fetched_elements <- b.stats.fetched_elements + 1)
    elements

(* Window origin (per-dim indices) of window number w. *)
let window_origin (b : t) (w : int) : int list =
  let rec split w dims =
    match dims with
    | [] -> []
    | [ _ ] -> [ w ]
    | d :: rest ->
      let inner = List.fold_left ( * ) 1 rest in
      (w / inner) :: split (w mod inner) (d :: rest |> List.tl)
  in
  let per_dim = split w b.cfg.iterations in
  List.map2
    (fun (o, s) l -> l + (o * s))
    (List.combine per_dim b.cfg.stride)
    b.cfg.lower
  |> fun l -> l

(* Flat row-major index of a multi-dim position. *)
let flat_index (dims : int list) (pos : int list) : int =
  List.fold_left2 (fun acc d p -> (acc * d) + p) 0 dims pos

(* Highest flat index the window at [origin] touches. *)
let window_reach (b : t) (origin : int list) : int =
  let positions =
    List.map
      (fun offset -> List.map2 (fun o c -> o + c) origin offset)
      b.cfg.window_offsets
  in
  List.fold_left
    (fun acc pos -> max acc (flat_index b.cfg.array_dims pos))
    0 positions

(** Is the next window fully buffered? *)
let window_ready (b : t) : bool =
  b.window_index < total_windows b.cfg
  &&
  let origin = window_origin b b.window_index in
  window_reach b origin < b.arrived

(** Export the next window's values (in offset order) to the data path and
    advance; [None] when data is still missing or iteration is complete. *)
let pop_window (b : t) : int64 array option =
  if not (window_ready b) then None
  else begin
    let origin = window_origin b b.window_index in
    let values =
      List.map
        (fun offset ->
          let pos = List.map2 (fun o c -> o + c) origin offset in
          List.iter2
            (fun p d ->
              if p < 0 || p >= d then
                errf "smart buffer: window position out of the array")
            pos b.cfg.array_dims;
          b.data.(flat_index b.cfg.array_dims pos))
        b.cfg.window_offsets
    in
    b.window_index <- b.window_index + 1;
    b.stats.exported_windows <- b.stats.exported_windows + 1;
    Some (Array.of_list values)
  end

let finished (b : t) : bool = b.window_index >= total_windows b.cfg

let stats (b : t) = b.stats

(** Memory traffic of a naive implementation that re-fetches the whole
    window every iteration — the Streams-C-style comparison in §3. *)
let naive_fetches (cfg : config) : int =
  total_windows cfg * List.length cfg.window_offsets

(** Reuse ratio: naive fetches / smart-buffer fetches. *)
let reuse_ratio (b : t) : float =
  if b.stats.fetched_elements = 0 then 1.0
  else
    float_of_int (naive_fetches b.cfg)
    /. float_of_int b.stats.fetched_elements
