(** Pretty-printer rendering the AST back to C source (used by the Figure 3
    and Figure 4 reproductions, and round-trip tested against the parser). *)

val kind_name : Ast.ikind -> string
val ctype_name : Ast.ctype -> string
val binop_symbol : Ast.binop -> string
val unop_symbol : Ast.unop -> string

val expr_to_string : Ast.expr -> string
val lvalue_to_string : Ast.lvalue -> string

val stmts_to_string : ?indent:int -> Ast.stmt list -> string
val func_to_string : Ast.func -> string
val program_to_string : Ast.program -> string
