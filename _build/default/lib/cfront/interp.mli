(** Reference interpreter for the C subset — the software semantics that the
    generated hardware is co-simulated against ("the soft nodes, by
    themselves, will have the same behavior on a CPU compared with the whole
    data path on a FPGA", paper §4.2.2). Values are int64, truncated to the
    declared kind at every assignment. *)

exception Error of string

type runtime

val default_max_steps : int

val create :
  ?max_steps:int ->
  ?lut_funcs:(string * (int64 -> int64)) list ->
  Ast.program ->
  runtime
(** Build a runtime: globals allocated, lookup-table functions registered.
    [max_steps] bounds total evaluation steps (guards non-termination). *)

val init_globals : runtime -> unit
(** Re-evaluate constant global initializers (called by {!run}). *)

(** Result of running a kernel. *)
type outcome = {
  return_value : int64 option;
  pointer_outputs : (string * int64) list;
      (** values written through pointer output parameters *)
  arrays : (string * int64 array) list;
      (** final contents of every array parameter *)
}

val run :
  ?scalars:(string * int64) list ->
  ?arrays:(string * int64 array) list ->
  runtime ->
  string ->
  outcome
(** [run rt fname] executes function [fname]. [scalars] binds scalar
    parameters (all required); [arrays] provides array parameter contents
    (unlisted arrays start zeroed); pointer parameters are outputs and need
    no argument. Globals are re-initialized on every call. *)

val read_global : runtime -> string -> int64 option
(** Read a global scalar's current value (after {!run}); [None] when the
    name is not a scalar global. *)

val run_source :
  ?luts:(string * Semant.lut_signature) list ->
  ?lut_funcs:(string * (int64 -> int64)) list ->
  ?scalars:(string * int64) list ->
  ?arrays:(string * int64 array) list ->
  string ->
  string ->
  outcome
(** Parse, check and run a source string in one step. *)
