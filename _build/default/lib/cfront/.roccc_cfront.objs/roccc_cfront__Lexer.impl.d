lib/cfront/lexer.ml: Int64 List Printf String
