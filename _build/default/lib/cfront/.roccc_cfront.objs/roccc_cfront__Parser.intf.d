lib/cfront/parser.mli: Ast
