lib/cfront/parser.ml: Ast Int64 Lexer List Option Printf String
