lib/cfront/semant.ml: Ast Hashtbl Int64 List Option Printf String
