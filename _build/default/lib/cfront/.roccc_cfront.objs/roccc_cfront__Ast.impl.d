lib/cfront/ast.ml: Int64 List Option Printf Roccc_util String
