lib/cfront/lexer.mli:
