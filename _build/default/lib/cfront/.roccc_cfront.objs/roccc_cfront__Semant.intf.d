lib/cfront/semant.mli: Ast Hashtbl
