lib/cfront/interp.mli: Ast Semant
