lib/cfront/pretty.ml: Ast Int64 List Printf String
