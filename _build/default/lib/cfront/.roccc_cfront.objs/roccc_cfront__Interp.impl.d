lib/cfront/interp.ml: Array Ast Hashtbl Int64 List Option Parser Printf Roccc_util Semant String
