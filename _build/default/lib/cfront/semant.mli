(** Semantic analysis: symbol resolution, the ROCCC C-subset restrictions
    (no recursion, statically analyzable pointers, literal array dims), and
    expression typing used by the VM lowering. *)

exception Error of string

(** Signature of a lookup-table function: input kind, output kind. *)
type lut_signature = { lut_in : Ast.ikind; lut_out : Ast.ikind }

type env = {
  vars : (string, Ast.ctype) Hashtbl.t;
  functions : (string, Ast.func) Hashtbl.t;
  luts : (string, lut_signature) Hashtbl.t;
}

val join_kinds : Ast.ikind -> Ast.ikind -> Ast.ikind
(** Usual arithmetic conversion (promotion to at least 32 bits). *)

val type_of_expr : env -> Ast.expr -> Ast.ikind
(** Raises {!Error} on ill-typed expressions. *)

val check_program :
  ?luts:(string * lut_signature) list -> Ast.program -> env
(** Check a whole program (recursion, pointer discipline, arities, array
    dimensionalities); returns the populated environment. *)
