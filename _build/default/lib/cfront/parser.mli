(** Recursive-descent parser for the ROCCC C subset. *)

exception Error of string * int * int
(** message, line, column (lexing errors are re-raised in this form too) *)

val parse_program : string -> Ast.program
(** Parse a whole translation unit: global integer/array declarations and
    function definitions. *)

val parse_func : string -> Ast.func
(** Parse a source string containing (at least) one function and return the
    first one; raises {!Error} when none is present. *)
