(** The Table 1 comparators.

    Two data series per kernel:

    - [paper]: the numbers published in the paper (Xilinx ISE 5.1i, IP core
      5.1i, xc2v2000-5). The IP cores are closed source, so their published
      measurements are carried as the reference series (DESIGN.md §2).
    - [model]: our structural estimate of the same hand-optimized design
      (distributed arithmetic, dedicated MULT18X18 blocks, half-wave ROMs),
      costed with the same slice-packing rules as the compiled circuits, so
      the fully-synthetic comparison uses one cost model on both sides. *)

type perf = { slices : int; clock_mhz : float }

type row = {
  name : string;
  paper_ip : perf;
  paper_roccc : perf;
  description : string;
}

(** Table 1 as published (IP columns and ROCCC columns). *)
let paper_table1 : row list =
  [ { name = "bit_correlator";
      paper_ip = { slices = 9; clock_mhz = 212.0 };
      paper_roccc = { slices = 19; clock_mhz = 144.0 };
      description = "count bits of an 8-bit input equal to a constant mask" };
    { name = "mul_acc";
      paper_ip = { slices = 18; clock_mhz = 238.0 };
      paper_roccc = { slices = 59; clock_mhz = 238.0 };
      description = "12-bit multiplier-accumulator with new-data flag" };
    { name = "udiv";
      paper_ip = { slices = 144; clock_mhz = 216.0 };
      paper_roccc = { slices = 495; clock_mhz = 272.0 };
      description = "8-bit unsigned divider" };
    { name = "square_root";
      paper_ip = { slices = 585; clock_mhz = 167.0 };
      paper_roccc = { slices = 1199; clock_mhz = 220.0 };
      description = "24-bit integer square root" };
    { name = "cos";
      paper_ip = { slices = 150; clock_mhz = 170.0 };
      paper_roccc = { slices = 150; clock_mhz = 170.0 };
      description = "10-bit to 16-bit cosine lookup (half-wave ROM)" };
    { name = "arbitrary_lut";
      paper_ip = { slices = 549; clock_mhz = 170.0 };
      paper_roccc = { slices = 549; clock_mhz = 170.0 };
      description = "10-bit to 16-bit arbitrary ROM lookup" };
    { name = "fir";
      paper_ip = { slices = 270; clock_mhz = 185.0 };
      paper_roccc = { slices = 293; clock_mhz = 194.0 };
      description = "two 5-tap 8-bit constant-coefficient FIR filters" };
    { name = "dct";
      paper_ip = { slices = 412; clock_mhz = 181.0 };
      paper_roccc = { slices = 724; clock_mhz = 133.0 };
      description = "1-D 8-point DCT, 8-bit input, 19-bit output" };
    { name = "wavelet";
      paper_ip = { slices = 1464; clock_mhz = 104.0 };
      paper_roccc = { slices = 2415; clock_mhz = 101.0 };
      description = "2-D (5,3) lossless JPEG2000 wavelet engine (handwritten)" } ]

let find_row name =
  List.find_opt (fun r -> String.equal r.name name) paper_table1

(* ------------------------------------------------------------------ *)
(* Structural models of the hand designs                               *)
(* ------------------------------------------------------------------ *)

let slices_of = Roccc_fpga.Area.slices_of

let mhz_of_delay = Roccc_datapath.Delay.clock_mhz_of_stage_delay

(** bit_correlator: 8 XNORs fold into the popcount compressors; two 4:3
    compressors + a 3-bit adder, one output register. *)
let model_bit_correlator () : perf =
  let luts = 2 * 4 (* compressors *) + 3 (* adder *) + 2 in
  let ffs = 4 in
  { slices = slices_of ~luts ~flip_flops:ffs;
    clock_mhz = mhz_of_delay 2.0 }

(** mul_acc: the 12x12 multiply maps to a dedicated MULT18X18 block (zero
    slices); slices cover the 26-bit accumulator and the nd gating. *)
let model_mul_acc () : perf =
  let luts = 26 + 2 in
  let ffs = 26 in
  { slices = slices_of ~luts ~flip_flops:ffs + 2;
    clock_mhz = mhz_of_delay 2.3 (* MULT18X18 + accumulate *) }

(** udiv: fully pipelined 8-stage restoring array divider, 9-bit conditional
    subtract per stage plus per-stage registers for n/q/d. *)
let model_udiv () : perf =
  let stages = 8 in
  let luts = stages * (9 + 9) in
  let ffs = stages * 26 in
  { slices = slices_of ~luts ~flip_flops:ffs;
    clock_mhz = mhz_of_delay 1.9 }

(** square_root: 12-stage non-restoring root over 24 bits; each stage holds
    a 26-bit add/sub, comparison and remainder/root registers. *)
let model_square_root () : perf =
  let stages = 12 in
  let luts = stages * (26 + 26) in
  let ffs = stages * 64 in
  { slices = slices_of ~luts ~flip_flops:ffs;
    clock_mhz = mhz_of_delay 3.2 }

(** cos: half-wave 512x16 distributed ROM plus mirror/negate logic. *)
let model_cos () : perf =
  let rom_luts = 512 * 16 / 16 in
  let luts = rom_luts / 2 (* quarter-wave folding halves it again *) + 24 in
  { slices = slices_of ~luts ~flip_flops:17;
    clock_mhz = mhz_of_delay 2.9 }

(** arbitrary LUT: full 1024x16 distributed ROM. *)
let model_arbitrary_lut () : perf =
  let rom_luts = 1024 * 16 / 16 in
  { slices = slices_of ~luts:rom_luts ~flip_flops:17;
    clock_mhz = mhz_of_delay 2.9 }

(** FIR: two 5-tap 8-bit constant-coefficient filters with distributed
    arithmetic — per filter: 8 DA stages of a 5-input table + 16-bit
    scaling accumulator. *)
let model_fir () : perf =
  let per_filter_luts = (8 * 16) + 16 in
  let per_filter_ffs = 16 * 6 in
  let luts = 2 * per_filter_luts in
  let ffs = 2 * per_filter_ffs in
  { slices = slices_of ~luts ~flip_flops:ffs;
    clock_mhz = mhz_of_delay 2.5 }

(** DCT: 8-point 1-D DA implementation producing one output per cycle —
    a serialized butterfly + DA tables for the 4 symmetric coefficient
    pairs, 19-bit accumulators. *)
let model_dct () : perf =
  let da_tables = 4 * 19 * 2 in
  let butterflies = 8 * 9 in
  let accumulators = 8 * 19 / 2 in
  let luts = da_tables + butterflies + accumulators in
  let ffs = 8 * 19 + 64 in
  { slices = slices_of ~luts ~flip_flops:ffs;
    clock_mhz = mhz_of_delay 2.6 }

(** Wavelet: handwritten 2-D (5,3) engine — row/column lifting data paths,
    two line buffers of 512x16, plus the address generators. *)
let model_wavelet () : perf =
  let lifting_luts = 2 * (3 * 17) in
  let line_buffer_ffs = 2 * 512 in
  let addr_luts = 64 in
  let luts = lifting_luts + addr_luts + 512 (* buffer steering *) in
  let ffs = line_buffer_ffs + 128 in
  { slices = slices_of ~luts ~flip_flops:ffs;
    clock_mhz = mhz_of_delay 5.2 }

let model name : perf option =
  match name with
  | "bit_correlator" -> Some (model_bit_correlator ())
  | "mul_acc" -> Some (model_mul_acc ())
  | "udiv" -> Some (model_udiv ())
  | "square_root" -> Some (model_square_root ())
  | "cos" -> Some (model_cos ())
  | "arbitrary_lut" -> Some (model_arbitrary_lut ())
  | "fir" -> Some (model_fir ())
  | "dct" -> Some (model_dct ())
  | "wavelet" -> Some (model_wavelet ())
  | _ -> None
