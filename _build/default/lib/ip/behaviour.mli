(** Golden behavioural models for the nine Table 1 kernels; both the IP
    baselines and the compiled ROCCC circuits are checked against these. *)

val popcount8 : int64 -> int64

val bit_correlator : mask:int64 -> int64 -> int64
(** Number of bits of the 8-bit input equal to the constant mask. *)

val mul_acc : (int64 * int64 * bool) list -> int64 list
(** Multiplier-accumulator over (a, b, new_data) items; running sums. *)

val udiv : int64 -> int64 -> int64 * int64
(** 8-bit unsigned division: (quotient, remainder); divide-by-zero yields
    the all-ones quotient like a restoring divider. *)

val isqrt : int64 -> int64
(** Floor integer square root. *)

val fir_taps : int list
(** The paper's Figure 3 coefficients: 3, 5, 7, 9, -1. *)

val fir : int64 array -> int64 array
(** 5-tap FIR over a padded input (output length = input - 4). *)

val dct8_coeff : int array array
(** round(64 * c(k)/2 * cos((2n+1) k pi / 16)); c(0) = 1/sqrt 2. *)

val dct8 : int64 array -> int64 array
(** Scaled integer 8-point DCT-II. *)

val wavelet53_1d : int64 array -> int64 array
(** One (5,3) lifting level of an even-length line: approximations in the
    first half, details in the second. *)

val wavelet53_2d : rows:int -> cols:int -> int64 array -> int64 array
(** Row pass then column pass over a row-major image. *)
