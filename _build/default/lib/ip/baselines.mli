(** The Table 1 comparators: the paper's published numbers (Xilinx ISE /
    IP 5.1i on xc2v2000-5) as the reference series, plus our structural
    models of the same hand-optimized designs costed with the repository's
    slice-packing rules, so the fully-synthetic comparison uses one cost
    model on both sides. *)

type perf = { slices : int; clock_mhz : float }

type row = {
  name : string;
  paper_ip : perf;
  paper_roccc : perf;
  description : string;
}

val paper_table1 : row list
(** The nine published rows, in Table 1 order. *)

val find_row : string -> row option

val model : string -> perf option
(** Our structural estimate of the hand design for a Table 1 row name:
    distributed-arithmetic FIR/DCT, MULT18X18-based mul_acc, restoring
    array divider, non-restoring square root, half-wave cos ROM, full
    arbitrary ROM, lifting wavelet engine. *)
