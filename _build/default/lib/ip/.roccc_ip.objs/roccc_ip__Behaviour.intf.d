lib/ip/behaviour.mli:
