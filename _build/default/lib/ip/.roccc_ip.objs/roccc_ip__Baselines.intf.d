lib/ip/baselines.mli:
