lib/ip/behaviour.ml: Array Float Int64 List
