lib/ip/baselines.ml: List Roccc_datapath Roccc_fpga String
