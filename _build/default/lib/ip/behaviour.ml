(** Golden behavioural models for the nine Table 1 kernels. Both the IP
    baselines and the ROCCC-compiled circuits are checked against these. *)

let popcount8 (v : int64) : int64 =
  let rec loop v acc =
    if Int64.equal v 0L then acc
    else
      loop (Int64.shift_right_logical v 1)
        (Int64.add acc (Int64.logand v 1L))
  in
  loop (Int64.logand v 0xffL) 0L

(** Number of bits of the 8-bit input equal to the constant mask. *)
let bit_correlator ~(mask : int64) (x : int64) : int64 =
  (* bits equal <=> xnor; count ones of ~(x ^ mask) over 8 bits *)
  popcount8 (Int64.lognot (Int64.logxor x mask))

(** Multiplier-accumulator over a stream of 12-bit pairs with a new-data
    flag; returns the running sums. *)
let mul_acc (items : (int64 * int64 * bool) list) : int64 list =
  let acc = ref 0L in
  List.map
    (fun (a, b, nd) ->
      if nd then acc := Int64.add !acc (Int64.mul a b);
      !acc)
    items

(** 8-bit unsigned division: (quotient, remainder). *)
let udiv (n : int64) (d : int64) : int64 * int64 =
  if Int64.equal d 0L then 0xffL, Int64.logand n 0xffL
  else Int64.div n d, Int64.rem n d

(** Integer square root of a 24-bit value (floor). *)
let isqrt (x : int64) : int64 =
  if Int64.compare x 0L <= 0 then 0L
  else begin
    let x = Int64.to_int x in
    let r = int_of_float (Float.sqrt (float_of_int x)) in
    (* fix float rounding at the boundary *)
    let r = if (r + 1) * (r + 1) <= x then r + 1 else r in
    let r = if r * r > x then r - 1 else r in
    Int64.of_int r
  end

(** 5-tap constant-coefficient FIR (the paper's Figure 3 coefficients). *)
let fir_taps = [ 3; 5; 7; 9; -1 ]

let fir (input : int64 array) : int64 array =
  let n = Array.length input - 4 in
  Array.init n (fun i ->
      List.fold_left
        (fun acc (j, c) ->
          Int64.add acc (Int64.mul (Int64.of_int c) input.(i + j)))
        0L
        (List.mapi (fun j c -> j, c) fir_taps))

(** 1-D 8-point DCT-II with integer (scaled) coefficients, matching a
    distributed-arithmetic fixed-point implementation: 8-bit input,
    wider output. Coefficients scaled by 2^6 and the products truncated. *)
let dct8_coeff : int array array =
  (* round(64 * c(k) * cos((2n+1) k pi / 16)), c(0)=1/sqrt2 *)
  Array.init 8 (fun k ->
      Array.init 8 (fun n ->
          let ck = if k = 0 then 1.0 /. Float.sqrt 2.0 else 1.0 in
          let v =
            64.0 *. ck /. 2.0
            *. Float.cos
                 (Float.pi *. float_of_int ((2 * n) + 1) *. float_of_int k
                 /. 16.0)
          in
          int_of_float (Float.round v)))

let dct8 (x : int64 array) : int64 array =
  Array.init 8 (fun k ->
      let acc = ref 0L in
      for n = 0 to 7 do
        acc :=
          Int64.add !acc
            (Int64.mul (Int64.of_int dct8_coeff.(k).(n)) x.(n))
      done;
      !acc)

(** One level of the 2-D (5,3) lifting wavelet used by lossless JPEG2000:
    returns (LL-ish approximation, detail planes flattened) — we model the
    row transform followed by the column transform on an even-sized image.
    Input row-major [rows][cols]. *)
let wavelet53_1d (line : int64 array) : int64 array =
  let n = Array.length line in
  let half = n / 2 in
  let out = Array.make n 0L in
  let get i = line.(max 0 (min (n - 1) i)) in
  (* lifting: d[j] = x[2j+1] - floor((x[2j] + x[2j+2]) / 2) *)
  for j = 0 to half - 1 do
    let d =
      Int64.sub (get ((2 * j) + 1))
        (Int64.div (Int64.add (get (2 * j)) (get ((2 * j) + 2))) 2L)
    in
    out.(half + j) <- d
  done;
  (* s[j] = x[2j] + floor((d[j-1] + d[j] + 2) / 4) *)
  for j = 0 to half - 1 do
    let dj = out.(half + j) in
    let djm1 = if j = 0 then dj else out.(half + j - 1) in
    let s =
      Int64.add (get (2 * j))
        (Int64.div (Int64.add (Int64.add djm1 dj) 2L) 4L)
    in
    out.(j) <- s
  done;
  out

let wavelet53_2d ~(rows : int) ~(cols : int) (img : int64 array) : int64 array
    =
  assert (Array.length img = rows * cols);
  let tmp = Array.make (rows * cols) 0L in
  (* rows *)
  for r = 0 to rows - 1 do
    let line = Array.sub img (r * cols) cols in
    let t = wavelet53_1d line in
    Array.blit t 0 tmp (r * cols) cols
  done;
  (* columns *)
  let out = Array.make (rows * cols) 0L in
  for c = 0 to cols - 1 do
    let line = Array.init rows (fun r -> tmp.((r * cols) + c)) in
    let t = wavelet53_1d line in
    for r = 0 to rows - 1 do
      out.((r * cols) + c) <- t.(r)
    done
  done;
  out
