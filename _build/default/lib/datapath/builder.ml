(** Data-path construction (paper §4.2.2, Figures 5 and 6).

    The SSA-form procedure is parsed into a structured region tree (the dp
    functions are loop-free: straight-line code and if/else diamonds). Each
    CFG node becomes a soft node; alternative branches get a mux node merging
    their phis in front of the common successor, and a pipe node copying
    live variables around them; every value whose definition and use are not
    in adjoining levels gets register-copy instructions inserted so that
    "a virtual register's definition and reference [are] adjoining". *)

module Instr = Roccc_vm.Instr
module Proc = Roccc_vm.Proc
module Cfg = Roccc_analysis.Cfg

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

module IM = Map.Make (Int)
module IS = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Region tree                                                         *)
(* ------------------------------------------------------------------ *)

type item =
  | Plain of Proc.label
  | Diamond of {
      parent : Proc.label;  (* block whose terminator branches *)
      cond : Instr.vreg;
      then_items : item list;
      else_items : item list;
      join : Proc.label;
    }

(* First block (in RPO order) reachable from both targets: the join of a
   structured diamond. *)
let find_join (g : Cfg.t) (l1 : Proc.label) (l2 : Proc.label) : Proc.label =
  let reach from =
    let seen = Hashtbl.create 8 in
    let rec dfs l =
      if not (Hashtbl.mem seen l) then begin
        Hashtbl.replace seen l ();
        List.iter dfs (Cfg.successors g l)
      end
    in
    dfs from;
    seen
  in
  let r1 = reach l1 and r2 = reach l2 in
  let common =
    Array.to_list g.Cfg.rpo
    |> List.filter (fun l -> Hashtbl.mem r1 l && Hashtbl.mem r2 l)
  in
  match common with
  | j :: _ -> j
  | [] -> errf "builder: branches never rejoin — unstructured CFG"

(* Parse blocks from [l] until [stop] (exclusive) into a region sequence. *)
let rec parse_seq (g : Cfg.t) (l : Proc.label) (stop : Proc.label option) :
    item list =
  if Some l = stop then []
  else
    let b = Proc.find_block g.Cfg.proc l in
    match b.Proc.term with
    | Proc.Ret -> [ Plain l ]
    | Proc.Jump m -> Plain l :: parse_seq g m stop
    | Proc.Branch (cond, l1, l2) ->
      let join = find_join g l1 l2 in
      let then_items = parse_seq g l1 (Some join) in
      let else_items = parse_seq g l2 (Some join) in
      Diamond { parent = l; cond; then_items; else_items; join }
      :: parse_seq g join stop

(* ------------------------------------------------------------------ *)
(* Level layout                                                        *)
(* ------------------------------------------------------------------ *)

type proto_node = {
  pn_kind : Graph.kind;
  pn_instrs : Instr.instr list;  (* original SSA names; srcs rewritten later *)
}

(* Growable array of levels, each a list of proto nodes. *)
type layout = { mutable lv : proto_node list array }

let ensure (lay : layout) (level : int) =
  if level >= Array.length lay.lv then begin
    let bigger = Array.make (max (level + 1) (2 * Array.length lay.lv + 1)) [] in
    Array.blit lay.lv 0 bigger 0 (Array.length lay.lv);
    lay.lv <- bigger
  end

let add_node (lay : layout) (level : int) (pn : proto_node) =
  ensure lay level;
  lay.lv.(level) <- lay.lv.(level) @ [ pn ]

(* Mux instructions for the phis of a join block: dst = mux(cond, v_then,
   v_else), where v_then is the phi arg arriving from the then side. *)
let mux_instrs (g : Cfg.t) ~(cond : Instr.vreg) ~(join : Proc.label)
    ~(then_side : IS.t) : Instr.instr list =
  let b = Proc.find_block g.Cfg.proc join in
  List.map
    (fun (phi : Proc.phi) ->
      match phi.Proc.phi_args with
      | [ (la, va); (lb, vb) ] ->
        let v_then, v_else =
          if IS.mem la then_side then va, vb
          else if IS.mem lb then_side then vb, va
          else errf "builder: phi in L%d has no arg from the then side" join
        in
        Instr.make ~dst:phi.Proc.phi_dst Instr.Mux [ cond; v_then; v_else ]
          phi.Proc.phi_kind
      | args ->
        errf "builder: phi with %d args in L%d (expected 2)" (List.length args)
          join)
    b.Proc.phis

(* Labels belonging to a region sequence (for then-side membership tests). *)
let rec seq_labels (items : item list) : IS.t =
  List.fold_left
    (fun acc it ->
      match it with
      | Plain l -> IS.add l acc
      | Diamond d ->
        acc |> IS.add d.parent
        |> IS.union (seq_labels d.then_items)
        |> IS.union (seq_labels d.else_items))
    IS.empty items

(* Lay out a region sequence starting at [level]; returns the next free
   level. The [g] CFG supplies block instructions and phis. *)
let rec layout_seq (g : Cfg.t) (lay : layout) (items : item list) (level : int)
    : int =
  List.fold_left (fun level it -> layout_item g lay it level) level items

and layout_item (g : Cfg.t) (lay : layout) (it : item) (level : int) : int =
  match it with
  | Plain l ->
    let b = Proc.find_block g.Cfg.proc l in
    add_node lay level { pn_kind = Graph.Soft l; pn_instrs = b.Proc.instrs };
    level + 1
  | Diamond d ->
    (* parent soft node *)
    let pb = Proc.find_block g.Cfg.proc d.parent in
    add_node lay level
      { pn_kind = Graph.Soft d.parent; pn_instrs = pb.Proc.instrs };
    let branch_start = level + 1 in
    let end_then = layout_seq g lay d.then_items branch_start in
    let end_else = layout_seq g lay d.else_items branch_start in
    let mux_level = max (max end_then end_else) branch_start in
    let then_side = IS.add d.parent (seq_labels d.then_items) in
    (* If a branch is empty, the phi arg arrives straight from the parent,
       which we count as the then side only when l1 leads directly to join;
       seq_labels includes the parent for that case. *)
    let muxes = mux_instrs g ~cond:d.cond ~join:d.join ~then_side in
    add_node lay mux_level { pn_kind = Graph.Mux_node d.join; pn_instrs = muxes };
    mux_level + 1

(* ------------------------------------------------------------------ *)
(* Copy insertion + final graph                                        *)
(* ------------------------------------------------------------------ *)

(** Build the data path of an SSA-form procedure. *)
let build (proc : Proc.t) : Graph.t =
  let g = Cfg.build proc in
  let items = parse_seq g (Cfg.entry_label g) None in
  let lay = { lv = Array.make 4 [] } in
  (* Entry node: input operands copied to the entry of the data flow. *)
  let entry_copies =
    List.map
      (fun (p : Proc.port) ->
        let dst = Proc.fresh_reg proc p.Proc.port_kind in
        Instr.make ~dst Instr.Mov [ p.Proc.port_reg ] p.Proc.port_kind)
      proc.Proc.inputs
  in
  add_node lay 0 { pn_kind = Graph.Entry_node; pn_instrs = entry_copies };
  let next = layout_seq g lay items 1 in
  let level_count = next in
  let levels = Array.sub lay.lv 0 level_count in
  (* ---- per-level original use sets (for needed-later analysis) ---- *)
  let uses_at_level =
    Array.map
      (fun nodes ->
        List.fold_left
          (fun acc pn ->
            List.fold_left
              (fun acc (i : Instr.instr) ->
                List.fold_left (fun acc s -> IS.add s acc) acc i.Instr.srcs)
              acc pn.pn_instrs)
          IS.empty nodes)
      levels
  in
  let output_regs =
    IS.of_list (List.map (fun (p : Proc.port) -> p.Proc.port_reg) proc.Proc.outputs)
  in
  (* used_after.(k) = regs used at any level > k, or by an output port *)
  let used_after = Array.make (level_count + 1) output_regs in
  for k = level_count - 1 downto 0 do
    used_after.(k) <- IS.union used_after.(k + 1) uses_at_level.(k)
  done;
  (* ---- forward pass: rewrite srcs, insert carrier copies ---- *)
  let node_id = Roccc_util.Id_gen.create () in
  let final_nodes : Graph.node list ref = ref [] in
  (* val_map: original SSA reg -> register carrying it after the previous
     level. Input ports start as themselves ("defined" at level -1). *)
  let val_map = ref IM.empty in
  List.iter
    (fun (p : Proc.port) ->
      val_map := IM.add p.Proc.port_reg p.Proc.port_reg !val_map)
    proc.Proc.inputs;
  let resolve local_defs r =
    if IS.mem r local_defs then r
    else
      match IM.find_opt r !val_map with
      | Some v -> v
      | None ->
        errf "builder: register v%d used before it is available (level rout)" r
  in
  for k = 0 to level_count - 1 do
    let nodes = levels.(k) in
    (* rewrite each node's instructions against the incoming val_map *)
    let rewritten =
      List.map
        (fun pn ->
          (* left-to-right fold: defs must be visible to later uses *)
          let _, rev_instrs =
            List.fold_left
              (fun (local_defs, acc) (i : Instr.instr) ->
                let srcs = List.map (resolve local_defs) i.Instr.srcs in
                let local_defs =
                  match i.Instr.dst with
                  | Some d -> IS.add d local_defs
                  | None -> local_defs
                in
                local_defs, { i with Instr.srcs } :: acc)
              (IS.empty, []) pn.pn_instrs
          in
          pn, List.rev rev_instrs)
        nodes
    in
    (* defs of this level *)
    let level_defs =
      List.fold_left
        (fun acc (_, instrs) ->
          List.fold_left
            (fun acc (i : Instr.instr) ->
              match i.Instr.dst with Some d -> IS.add d acc | None -> acc)
            acc instrs)
        IS.empty rewritten
    in
    (* values to carry across this level: in val_map, needed later, and not
       (re)defined here under the same SSA name *)
    let carried =
      IM.fold
        (fun orig _cur acc ->
          if IS.mem orig used_after.(k) && not (IS.mem orig level_defs) then
            orig :: acc
          else acc)
        !val_map []
      |> List.sort compare
    in
    let carry_copies =
      List.map
        (fun orig ->
          let cur = IM.find orig !val_map in
          let kind = Proc.reg_kind proc orig in
          let dst = Proc.fresh_reg proc kind in
          orig, Instr.make ~dst Instr.Mov [ cur ] kind)
        carried
    in
    (* choose/extend a carrier node *)
    let carrier_kind, attach_to_existing =
      match rewritten with
      | [ (pn, _) ] -> pn.pn_kind, true  (* single node: it carries *)
      | _ -> Graph.Pipe_node, false
    in
    let emitted =
      match attach_to_existing, rewritten with
      | true, [ (pn, instrs) ] ->
        [ { Graph.id = Roccc_util.Id_gen.fresh node_id;
            node_kind = pn.pn_kind;
            instrs = instrs @ List.map snd carry_copies;
            level = k } ]
      | _, _ ->
        let base =
          List.map
            (fun (pn, instrs) ->
              { Graph.id = Roccc_util.Id_gen.fresh node_id;
                node_kind = pn.pn_kind;
                instrs;
                level = k })
            rewritten
        in
        if carry_copies = [] then base
        else
          base
          @ [ { Graph.id = Roccc_util.Id_gen.fresh node_id;
                node_kind = carrier_kind;
                instrs = List.map snd carry_copies;
                level = k } ]
    in
    ignore carrier_kind;
    final_nodes := !final_nodes @ emitted;
    (* update val_map: copies then defs (defs shadow) *)
    List.iter
      (fun (orig, (i : Instr.instr)) ->
        match i.Instr.dst with
        | Some d -> val_map := IM.add orig d !val_map
        | None -> ())
      carry_copies;
    IS.iter (fun d -> val_map := IM.add d d !val_map) level_defs
  done;
  (* ---- exit node: output operands copied to the exit ---- *)
  let exit_ports, exit_copies =
    List.fold_left
      (fun (ports, copies) (p : Proc.port) ->
        let cur =
          match IM.find_opt p.Proc.port_reg !val_map with
          | Some v -> v
          | None -> errf "builder: output %s never defined" p.Proc.port_name
        in
        let dst = Proc.fresh_reg proc p.Proc.port_kind in
        ( ports @ [ { p with Proc.port_reg = dst } ],
          copies @ [ Instr.make ~dst Instr.Mov [ cur ] p.Proc.port_kind ] ))
      ([], []) proc.Proc.outputs
  in
  let exit_node =
    { Graph.id = Roccc_util.Id_gen.fresh node_id;
      node_kind = Graph.Exit_node;
      instrs = exit_copies;
      level = level_count }
  in
  let all_nodes = !final_nodes @ [ exit_node ] in
  let level_array = Array.make (level_count + 1) [] in
  List.iter
    (fun (n : Graph.node) ->
      level_array.(n.Graph.level) <- level_array.(n.Graph.level) @ [ n ])
    all_nodes;
  { Graph.proc;
    nodes = all_nodes;
    levels = level_array;
    input_ports = proc.Proc.inputs;
    output_ports = exit_ports }

(* ------------------------------------------------------------------ *)
(* Structural verification                                             *)
(* ------------------------------------------------------------------ *)

(** Check the def-use adjoining invariant: every register consumed by a node
    at level k is defined at level k-1 or within the node itself (external
    inputs feed level 0 only). *)
let verify_adjoining (dp : Graph.t) : unit =
  let produced_at = Hashtbl.create 64 in
  List.iter
    (fun (n : Graph.node) ->
      List.iter
        (fun d -> Hashtbl.replace produced_at d n.Graph.level)
        (Graph.node_defs n))
    dp.Graph.nodes;
  let inputs =
    IS.of_list
      (List.map (fun (p : Proc.port) -> p.Proc.port_reg) dp.Graph.input_ports)
  in
  List.iter
    (fun (n : Graph.node) ->
      let local = IS.of_list (Graph.node_defs n) in
      List.iter
        (fun (i : Instr.instr) ->
          List.iter
            (fun s ->
              if IS.mem s local then ()
              else if IS.mem s inputs then begin
                if n.Graph.level <> 0 then
                  errf
                    "adjoining violated: input v%d consumed at level %d (only \
                     level 0 may read external inputs)"
                    s n.Graph.level
              end
              else
                match Hashtbl.find_opt produced_at s with
                | Some lvl when lvl = n.Graph.level - 1 -> ()
                | Some lvl ->
                  errf
                    "adjoining violated: v%d produced at level %d, consumed \
                     at level %d"
                    s lvl n.Graph.level
                | None -> errf "adjoining: v%d has no producer" s)
            i.Instr.srcs)
        n.Graph.instrs)
    dp.Graph.nodes
