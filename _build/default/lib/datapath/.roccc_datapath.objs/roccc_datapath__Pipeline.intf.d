lib/datapath/pipeline.mli: Graph Roccc_vm Widths
