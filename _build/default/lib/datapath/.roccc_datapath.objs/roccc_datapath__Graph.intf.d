lib/datapath/graph.mli: Hashtbl Roccc_vm
