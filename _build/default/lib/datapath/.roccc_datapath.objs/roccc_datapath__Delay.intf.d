lib/datapath/delay.mli: Roccc_vm
