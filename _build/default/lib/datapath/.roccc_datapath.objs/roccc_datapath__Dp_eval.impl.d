lib/datapath/dp_eval.ml: Graph Hashtbl Int64 List Option Printf Roccc_cfront Roccc_util Roccc_vm String Widths
