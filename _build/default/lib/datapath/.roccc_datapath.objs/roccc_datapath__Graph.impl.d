lib/datapath/graph.ml: Array Buffer Hashtbl List Printf Roccc_vm
