lib/datapath/widths.mli: Graph Roccc_vm
