lib/datapath/builder.ml: Array Graph Hashtbl Int List Map Printf Roccc_analysis Roccc_util Roccc_vm Set
