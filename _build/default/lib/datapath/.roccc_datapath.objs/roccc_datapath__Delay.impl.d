lib/datapath/delay.ml: Int64 List Option Roccc_cfront Roccc_util Roccc_vm
