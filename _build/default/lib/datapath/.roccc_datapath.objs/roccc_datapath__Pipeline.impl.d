lib/datapath/pipeline.ml: Array Buffer Delay Float Graph Hashtbl List Option Printf Roccc_cfront Roccc_vm String Widths
