lib/datapath/dp_eval.mli: Graph Widths
