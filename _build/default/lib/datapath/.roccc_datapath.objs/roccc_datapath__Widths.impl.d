lib/datapath/widths.ml: Graph Hashtbl Int Int64 List Map Printf Roccc_cfront Roccc_util Roccc_vm
