lib/datapath/builder.mli: Graph Roccc_vm
