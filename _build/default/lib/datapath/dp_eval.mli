(** Evaluator for built data paths: executes every node (no control flow
    remains — both branch sides compute and muxes select), threading LPR/SNX
    feedback between iterations. Used to verify construction against the VM
    and C semantics, and as the functional core of the hardware simulator. *)

exception Error of string

type result = {
  outputs : (string * int64) list;
  feedback_next : (string * int64) list;
      (** values stored by SNX this iteration *)
}

val run :
  ?luts:(string * (int64 -> int64)) list ->
  ?feedback_prev:(string * int64) list ->
  ?widths:Widths.t ->
  Graph.t ->
  inputs:(string * int64) list ->
  result
(** Evaluate one iteration. With [widths], every intermediate is truncated
    to its inferred physical width — the soundness check for bit-width
    inference. Division by zero on a not-taken lane yields a harmless
    placeholder, as in hardware where the mux discards the lane. *)

val run_stream :
  ?luts:(string * (int64 -> int64)) list ->
  Graph.t ->
  (string * int64) list list ->
  result list
(** Iterate over a stream of per-iteration inputs, threading feedback. *)
