(** Combinational delay estimation per instruction (paper §4.2.3: "The latch
    location in a node is decided based on the delay estimation of
    instructions"). The model is calibrated to a Virtex-II speed-grade-5
    fabric: a 4-input LUT + local routing is ~1 ns; carry chains add ~0.05 ns
    per bit; LUT-style multipliers cost roughly one LUT level per partial
    product row. *)

module Instr = Roccc_vm.Instr

(** One LUT level including local routing, in nanoseconds. *)
let lut_level_ns = 0.9

(** Incremental carry-chain delay per bit, in nanoseconds. *)
let carry_per_bit_ns = 0.045

(** Flip-flop clock-to-out plus setup, charged once per pipeline stage. *)
let register_overhead_ns = 1.1

(* Width of the widest source operand, falling back to the result kind. *)
let operand_width (kind : Instr.ikind) (src_widths : int list) : int =
  match src_widths with
  | [] -> kind.Roccc_cfront.Ast.bits
  | ws -> List.fold_left max 1 ws

let popcount64 (v : int64) : int =
  let rec loop v acc =
    if Int64.equal v 0L then acc
    else
      loop (Int64.shift_right_logical v 1)
        (acc + Int64.to_int (Int64.logand v 1L))
  in
  loop (Int64.abs v) 0

(** Estimated combinational delay of one instruction, given the bit widths
    of its source operands. [const_operands] mark sources that carry
    compile-time constants (constant multipliers become shift-add trees,
    constant shifts become wiring). *)
let instr_delay_ns ?(const_operands : int64 option list = [])
    (op : Instr.opcode) (kind : Instr.ikind) (src_widths : int list) : float =
  let w = operand_width kind src_widths in
  let const_of n = List.nth_opt const_operands n |> Option.join in
  match op with
  | Instr.Add | Instr.Sub ->
    (* ripple-carry adder on the dedicated carry chain *)
    lut_level_ns +. (carry_per_bit_ns *. float_of_int w)
  | Instr.Neg -> lut_level_ns +. (carry_per_bit_ns *. float_of_int w)
  | Instr.Mul -> (
    match const_of 0, const_of 1 with
    | Some c, _ | _, Some c ->
      (* shift-add tree: depth log2(set bits) adder levels *)
      let terms = max 1 (popcount64 c) in
      let depth = max 1 (Roccc_util.Bits.clog2 terms) in
      float_of_int depth
      *. (lut_level_ns +. (carry_per_bit_ns *. float_of_int w))
    | None, None ->
      (* LUT-based array multiplier: ~one LUT level per two partial-product
         rows after the first, bounded below by two levels *)
      let rows = float_of_int (max 2 (w / 2)) in
      lut_level_ns *. (1.0 +. (rows /. 2.0)))
  | Instr.Div | Instr.Rem -> (
    match const_of 1 with
    | Some c
      when Int64.compare c 0L > 0 && Int64.equal (Int64.logand c (Int64.sub c 1L)) 0L ->
      (* power-of-two divisor: shift plus a rounding correction adder *)
      lut_level_ns +. (carry_per_bit_ns *. float_of_int w)
    | _ ->
      (* iterative array divider: one subtract per quotient bit *)
      float_of_int w
      *. (lut_level_ns +. (carry_per_bit_ns *. float_of_int w))
      /. 2.0)
  | Instr.Shl | Instr.Shr -> (
    match const_of 1 with
    | Some _ -> 0.0  (* constant shift is wiring *)
    | None ->
      (* barrel shifter: log2(w) mux levels *)
      lut_level_ns *. float_of_int (max 1 (Roccc_util.Bits.clog2 (max 2 w))))
  | Instr.Band | Instr.Bor | Instr.Bxor -> (
    match const_of 0, const_of 1 with
    | Some _, _ | _, Some _ -> 0.0  (* constant mask is wiring *)
    | None, None -> lut_level_ns)
  | Instr.Bnot -> lut_level_ns
  | Instr.Slt | Instr.Sle | Instr.Sgt | Instr.Sge ->
    lut_level_ns +. (carry_per_bit_ns *. float_of_int w)
  | Instr.Seq | Instr.Sne ->
    (* XOR reduce tree *)
    lut_level_ns *. float_of_int (max 1 (Roccc_util.Bits.clog2 (max 2 w)))
  | Instr.Land | Instr.Lor | Instr.Lnot -> lut_level_ns
  | Instr.Mov -> 0.0       (* plain wire *)
  | Instr.Cvt -> 0.0       (* wiring / sign-extension *)
  | Instr.Ldc _ -> 0.0     (* constant wiring *)
  | Instr.Mux -> lut_level_ns
  | Instr.Lpr _ -> 0.0     (* register read *)
  | Instr.Snx _ -> 0.0     (* register write (setup charged per stage) *)
  | Instr.Lut _ ->
    (* block-RAM/ROM access time *)
    2.5

(** Achievable clock for a given worst-stage combinational delay, with a
    routing pessimism factor (global routing roughly doubles logic delay on
    a real device). *)
let routing_factor = 1.55

let clock_mhz_of_stage_delay (worst_ns : float) : float =
  let period = (worst_ns *. routing_factor) +. register_overhead_ns in
  1000.0 /. period
