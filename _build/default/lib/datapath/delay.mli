(** Combinational delay estimation per instruction (paper §4.2.3), tuned to
    a Virtex-II speed-grade-5 fabric. *)

val lut_level_ns : float
(** One 4-LUT plus local routing. *)

val carry_per_bit_ns : float
(** Incremental dedicated carry-chain delay. *)

val register_overhead_ns : float
(** Flip-flop clock-to-out plus setup, charged once per pipeline stage. *)

val routing_factor : float
(** Global-routing pessimism applied to logic delay. *)

val instr_delay_ns :
  ?const_operands:int64 option list ->
  Roccc_vm.Instr.opcode ->
  Roccc_vm.Instr.ikind ->
  int list ->
  float
(** [instr_delay_ns op kind src_widths] estimates the combinational delay of
    one instruction. [const_operands] marks sources carrying compile-time
    constants: constant multipliers become shift-add trees, constant shifts
    and masks become wiring. *)

val clock_mhz_of_stage_delay : float -> float
(** Achievable clock for a worst-stage combinational delay, including
    routing pessimism and register overhead. *)
