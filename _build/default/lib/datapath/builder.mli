(** Data-path construction (paper §4.2.2, Figures 5 and 6): parses the
    SSA-form procedure into a structured region tree, lays soft nodes out in
    levels, inserts hard mux nodes (merging alternative branches in front of
    their common successor) and hard pipe nodes (carrying live variables
    around branch regions), and adds register copies so that every value's
    definition and use sit in adjoining levels. *)

exception Error of string

val build : Roccc_vm.Proc.t -> Graph.t
(** Build the data path of an SSA-form procedure (convert with
    {!Roccc_analysis.Ssa.convert} first). Raises {!Error} on unstructured
    control flow. *)

val verify_adjoining : Graph.t -> unit
(** Check the def-use adjoining invariant: every register consumed at level
    k is produced at level k-1 or within the same node (external inputs
    feed level 0 only). Raises {!Error} on violation. *)
