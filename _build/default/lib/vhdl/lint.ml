(** Structural checks over generated VHDL designs. We cannot run a vendor
    toolchain offline, so this linter enforces the static rules a VHDL
    front-end would: every referenced signal is declared, no signal has
    multiple drivers, component instantiations match a generated entity and
    map every formal, and output ports are never read inside their own
    architecture. *)

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let ident_re = Str.regexp "[A-Za-z_][A-Za-z0-9_]*"

(* VHDL keywords / functions appearing in generated expressions. *)
let builtin_names =
  [ "resize"; "to_signed"; "to_unsigned"; "to_integer"; "shift_left";
    "shift_right"; "signed"; "unsigned"; "when"; "else"; "and"; "or"; "xor";
    "not"; "rem"; "others"; "rising_edge"; "std_logic"; "std_logic_vector" ]

let identifiers_of (text : string) : string list =
  let rec loop pos acc =
    match Str.search_forward ident_re text pos with
    | exception Not_found -> List.rev acc
    | start ->
      let word = Str.matched_string text in
      loop (start + String.length word) (word :: acc)
  in
  loop 0 []
  |> List.filter (fun w ->
         (not (List.mem (String.lowercase_ascii w) builtin_names))
         && not (String.length w > 0 && w.[0] >= '0' && w.[0] <= '9'))

type report = {
  units_checked : int;
  instances_checked : int;
  signals_checked : int;
}

let check_unit (entities : (string * Ast.port list) list)
    (u : Ast.design_unit) : int * int =
  let e = u.Ast.unit_entity and a = u.Ast.unit_arch in
  let port_names = List.map (fun p -> p.Ast.port_name) e.Ast.entity_ports in
  let signal_names = List.map (fun s -> s.Ast.sig_name) a.Ast.signals in
  let declared = port_names @ signal_names in
  (* duplicate declarations *)
  let rec dup = function
    | [] -> ()
    | x :: rest ->
      if List.mem x rest then
        errf "%s: %s declared more than once" e.Ast.entity_name x
      else dup rest
  in
  dup declared;
  let out_ports =
    List.filter_map
      (fun p ->
        if p.Ast.port_dir = Ast.Dir_out then Some p.Ast.port_name else None)
      e.Ast.entity_ports
  in
  let check_ref where name =
    if not (List.mem name declared) then
      errf "%s: undeclared name %s in %s" e.Ast.entity_name name where
  in
  let check_read where name =
    check_ref where name;
    if List.mem name out_ports then
      errf "%s: output port %s read in %s" e.Ast.entity_name name where
  in
  let drivers = Hashtbl.create 16 in
  let drive where name =
    check_ref where name;
    if Hashtbl.mem drivers name then
      errf "%s: signal %s has multiple drivers" e.Ast.entity_name name
    else Hashtbl.replace drivers name where
  in
  let instances = ref 0 in
  List.iter
    (fun c ->
      match c with
      | Ast.Comment _ -> ()
      | Ast.Assign (target, rhs) ->
        drive "assignment" target;
        List.iter (check_read "assignment rhs") (identifiers_of rhs)
      | Ast.Selected { target; selector; cases; default } ->
        drive "selected assignment" target;
        List.iter (check_read "selector") (identifiers_of selector);
        List.iter
          (fun (v, _) -> List.iter (check_read "case value") (identifiers_of v))
          cases;
        List.iter (check_read "default value") (identifiers_of default)
      | Ast.Clocked_process { clock; assignments; reset_assignments; _ } ->
        check_ref "process sensitivity" clock;
        List.iter
          (fun (t, v) ->
            drive "clocked assignment" t;
            List.iter (check_read "clocked rhs") (identifiers_of v))
          assignments;
        List.iter
          (fun (t, v) ->
            check_ref "reset assignment" t;
            List.iter (check_read "reset rhs") (identifiers_of v))
          reset_assignments
      | Ast.Instance { inst_label; component; port_map } -> (
        incr instances;
        if not (List.mem_assoc component a.Ast.components) then
          errf "%s: instance %s uses undeclared component %s"
            e.Ast.entity_name inst_label component;
        match List.assoc_opt component entities with
        | None ->
          errf "%s: component %s has no generated entity" e.Ast.entity_name
            component
        | Some formal_ports ->
          let formal_names =
            List.map (fun p -> p.Ast.port_name) formal_ports
          in
          List.iter
            (fun (formal, actual) ->
              if not (List.mem formal formal_names) then
                errf "%s: instance %s maps unknown formal %s"
                  e.Ast.entity_name inst_label formal;
              List.iter (check_ref "port actual") (identifiers_of actual);
              (* actuals feeding in-ports must not read our out ports *)
              match
                List.find_opt (fun p -> p.Ast.port_name = formal) formal_ports
              with
              | Some p when p.Ast.port_dir = Ast.Dir_in ->
                List.iter (check_read "port actual") (identifiers_of actual)
              | Some _ ->
                (* actual of an out formal is driven by the instance *)
                List.iter (drive "instance output") (identifiers_of actual)
              | None -> ())
            port_map;
          (* every formal must be mapped *)
          List.iter
            (fun fname ->
              if not (List.mem_assoc fname port_map) then
                errf "%s: instance %s leaves formal %s unmapped"
                  e.Ast.entity_name inst_label fname)
            formal_names))
    a.Ast.body;
  !instances, List.length declared

(** Lint a whole design. Raises {!Error} on the first violation; returns a
    summary report on success. *)
let check (d : Ast.design) : report =
  let entities =
    List.map
      (fun u ->
        u.Ast.unit_entity.Ast.entity_name, u.Ast.unit_entity.Ast.entity_ports)
      d.Ast.units
  in
  (* duplicate entity names *)
  let rec dup = function
    | [] -> ()
    | (x, _) :: rest ->
      if List.mem_assoc x rest then errf "duplicate entity %s" x else dup rest
  in
  dup entities;
  let instances, signals =
    List.fold_left
      (fun (ai, asg) u ->
        let i, s = check_unit entities u in
        ai + i, asg + s)
      (0, 0) d.Ast.units
  in
  { units_checked = List.length d.Ast.units;
    instances_checked = instances;
    signals_checked = signals }
