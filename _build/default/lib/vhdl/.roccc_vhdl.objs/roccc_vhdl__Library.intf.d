lib/vhdl/library.mli:
