lib/vhdl/gen.mli: Ast Roccc_datapath Roccc_hir
