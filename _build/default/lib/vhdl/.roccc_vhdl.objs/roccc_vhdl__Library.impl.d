lib/vhdl/library.ml: Buffer List Printf String
