lib/vhdl/lint.mli: Ast
