lib/vhdl/lint.ml: Ast Hashtbl List Printf Str String
