lib/vhdl/gen.ml: Array Ast Hashtbl List Option Printf Roccc_cfront Roccc_datapath Roccc_hir Roccc_util Roccc_vm String
