lib/vhdl/ast.ml: Buffer List Printf
