lib/vhdl/ast.mli:
