(** VHDL code generation (paper §4.2.4): one component per data-path node;
    single-assigned virtual registers become wires; instructions become
    combinational or sequential statements depending on the pipeliner's
    latch placement; LUT instructions instantiate ROM components initialized
    from text files; SNX/LPR pairs become top-level feedback registers. *)

exception Error of string

val generate :
  ?luts:Roccc_hir.Lut_conv.table list ->
  Roccc_datapath.Pipeline.t ->
  Ast.design
(** Generate the complete design: ROM units, one unit per data-path node,
    and the structural top entity (clk/rst, input/output ports, feedback
    register process, input alignment registers, output registers). *)
