(** A compact VHDL design representation — entities, architectures, signals,
    concurrent assignments, clocked processes, selected assignments and
    component instances — with the text renderer (IEEE 1076.3 numeric_std
    arithmetic, paper §4.2.4). *)

type vtype =
  | Std_logic
  | Signed of int    (** signed(w-1 downto 0) *)
  | Unsigned of int  (** unsigned(w-1 downto 0) *)

type direction = Dir_in | Dir_out

type port = { port_name : string; port_dir : direction; port_type : vtype }

type signal_decl = { sig_name : string; sig_type : vtype }

(** Concurrent statements; RHS expressions are carried as strings built by
    the generator (the linter tokenizes them). *)
type concurrent =
  | Assign of string * string  (** target <= expression; *)
  | Instance of {
      inst_label : string;
      component : string;
      port_map : (string * string) list;  (** formal -> actual *)
    }
  | Clocked_process of {
      label : string;
      clock : string;
      reset : string option;
      assignments : (string * string) list;  (** on rising edge *)
      reset_assignments : (string * string) list;  (** when reset = '1' *)
    }
  | Comment of string
  | Selected of {
      target : string;
      selector : string;
      cases : (string * string) list;  (** value expression -> choice *)
      default : string;
    }  (** with selector select target <= ... when choice, ... *)

type architecture = {
  arch_name : string;
  of_entity : string;
  signals : signal_decl list;
  components : (string * port list) list;
  body : concurrent list;
}

type entity = { entity_name : string; entity_ports : port list }

type design_unit = { unit_entity : entity; unit_arch : architecture }

(** A full design: units in elaboration order (leaves first) plus ROM
    initialization text files keyed by table name. *)
type design = {
  design_name : string;
  units : design_unit list;
  rom_inits : (string * string) list;
}

val vtype_to_string : vtype -> string
val vtype_width : vtype -> int
val direction_to_string : direction -> string
val port_to_string : port -> string

val to_string : design -> string
(** Render the whole design as one VHDL source text. *)

val to_files : design -> (string * string) list
(** The design's files: the .vhd source plus per-table .init text files
    ("a pure text initialization file", §4.2.4). *)
