(** The pre-existing parameterized VHDL component library (paper §4.1): the
    controllers "are all implemented as pre-existing parameterized FSMs in a
    VHDL library". This module renders those components — a sequential-scan
    address generator, a sliding-window smart buffer, and the higher-level
    controller FSM — as generic VHDL entities, and assembles the full
    execution-model system (Figure 2) around a compiled data path for 1-D
    single-window kernels. *)


(* ------------------------------------------------------------------ *)
(* Parameterized library entities (generic-based, self-contained)      *)
(* ------------------------------------------------------------------ *)

(** Sequential input address generator: scans [0, total) in bursts of
    [bus_elements], one request per cycle while enabled. *)
let address_generator_vhdl : string =
  {|library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity roccc_addr_gen is
  generic (
    total_words  : integer := 64;
    addr_width   : integer := 10
  );
  port (
    clk     : in  std_logic;
    rst     : in  std_logic;
    enable  : in  std_logic;
    address : out unsigned(addr_width - 1 downto 0);
    valid   : out std_logic;
    done    : out std_logic
  );
end entity roccc_addr_gen;

architecture rtl of roccc_addr_gen is
  signal counter : unsigned(addr_width - 1 downto 0);
  signal running : std_logic;
begin
  address <= counter;
  valid   <= running and enable;
  done    <= not running;
  scan : process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        counter <= (others => '0');
        running <= '1';
      elsif running = '1' and enable = '1' then
        if counter = to_unsigned(total_words - 1, addr_width) then
          running <= '0';
        else
          counter <= counter + 1;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;
|}

(** 1-D smart buffer: a shift register of window_size elements; data shifts
    in once per cycle; the window is exported in parallel once primed
    ("reuses live input data, cleans unused data and exports the present
    valid input data set", §4.1). *)
let smart_buffer_vhdl ~(window : int) ~(element_bits : int) : string =
  let taps =
    String.concat ";\n"
      (List.init window (fun i ->
           Printf.sprintf "    win%d : out signed(%d downto 0)" i
             (element_bits - 1)))
  in
  let exports =
    String.concat "\n"
      (List.init window (fun i ->
           Printf.sprintf "  win%d <= regs(%d);" i (window - 1 - i)))
  in
  Printf.sprintf
    {|library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity roccc_smart_buffer is
  port (
    clk      : in  std_logic;
    rst      : in  std_logic;
    din      : in  signed(%d downto 0);
    din_valid: in  std_logic;
%s;
    window_valid : out std_logic
  );
end entity roccc_smart_buffer;

architecture rtl of roccc_smart_buffer is
  type reg_file is array (0 to %d) of signed(%d downto 0);
  signal regs  : reg_file;
  signal fill  : unsigned(7 downto 0);
begin
%s
  window_valid <= '1' when fill >= to_unsigned(%d, 8) else '0';
  shift : process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        fill <= (others => '0');
      elsif din_valid = '1' then
        regs(0) <= din;
        for i in 1 to %d loop
          regs(i) <= regs(i - 1);
        end loop;
        if fill < to_unsigned(%d, 8) then
          fill <= fill + 1;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;
|}
    (element_bits - 1) taps (window - 1) (element_bits - 1) exports window
    (window - 1) window

(** 2-D smart buffer: line buffers for a [win_rows] x [win_cols] window
    sliding over an image with [row_length] columns — (win_rows - 1) full
    line FIFOs plus the window register column, the structure the generator
    sizes for 2-D kernels (Sobel, wavelet). Taps are named
    [win_<r>_<c>]. *)
let line_buffer_vhdl ~(win_rows : int) ~(win_cols : int) ~(row_length : int)
    ~(element_bits : int) : string =
  let depth = ((win_rows - 1) * row_length) + win_cols in
  let taps =
    String.concat ";\n"
      (List.concat_map
         (fun r ->
           List.init win_cols (fun c ->
               Printf.sprintf "    win_%d_%d : out signed(%d downto 0)" r c
                 (element_bits - 1)))
         (List.init win_rows (fun r -> r)))
  in
  let exports =
    String.concat "\n"
      (List.concat_map
         (fun r ->
           List.init win_cols (fun c ->
               (* newest element is regs(0); tap (r, c) looks back by
                  (win_rows-1-r) lines plus (win_cols-1-c) elements *)
               let back =
                 ((win_rows - 1 - r) * row_length) + (win_cols - 1 - c)
               in
               Printf.sprintf "  win_%d_%d <= regs(%d);" r c back))
         (List.init win_rows (fun r -> r)))
  in
  Printf.sprintf
    {|library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity roccc_line_buffer is
  port (
    clk      : in  std_logic;
    rst      : in  std_logic;
    din      : in  signed(%d downto 0);
    din_valid: in  std_logic;
%s;
    window_valid : out std_logic
  );
end entity roccc_line_buffer;

architecture rtl of roccc_line_buffer is
  type reg_file is array (0 to %d) of signed(%d downto 0);
  signal regs : reg_file;
  signal fill : unsigned(15 downto 0);
begin
%s
  window_valid <= '1' when fill >= to_unsigned(%d, 16) else '0';
  shift : process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        fill <= (others => '0');
      elsif din_valid = '1' then
        regs(0) <= din;
        for i in 1 to %d loop
          regs(i) <= regs(i - 1);
        end loop;
        if fill < to_unsigned(%d, 16) then
          fill <= fill + 1;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;
|}
    (element_bits - 1) taps (depth - 1) (element_bits - 1) exports depth
    (depth - 1) depth

(** The higher-level controller FSM sequencing fill / steady / drain. *)
let controller_vhdl : string =
  {|library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity roccc_controller is
  generic (
    total_iterations : integer := 64;
    pipeline_latency : integer := 3
  );
  port (
    clk          : in  std_logic;
    rst          : in  std_logic;
    window_valid : in  std_logic;
    launch       : out std_logic;
    running      : out std_logic;
    finished     : out std_logic
  );
end entity roccc_controller;

architecture rtl of roccc_controller is
  type state_t is (s_filling, s_steady, s_draining, s_done);
  signal state    : state_t;
  signal launched : unsigned(31 downto 0);
  signal retired  : unsigned(31 downto 0);
begin
  launch   <= window_valid when (state = s_filling or state = s_steady) else '0';
  running  <= '0' when state = s_done else '1';
  finished <= '1' when state = s_done else '0';
  fsm : process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        state    <= s_filling;
        launched <= (others => '0');
        retired  <= (others => '0');
      else
        if window_valid = '1' and (state = s_filling or state = s_steady) then
          launched <= launched + 1;
          state    <= s_steady;
        end if;
        if launched > retired then
          retired <= retired + 1;
        end if;
        if state = s_steady and launched = to_unsigned(total_iterations, 32) then
          state <= s_draining;
        end if;
        if state = s_draining and retired = to_unsigned(total_iterations, 32) then
          state <= s_done;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;
|}

(* ------------------------------------------------------------------ *)
(* System assembly (Figure 2) for 1-D single-window kernels            *)
(* ------------------------------------------------------------------ *)

(** Names of library entities used by {!system_wrapper_vhdl}. *)
let library_entities = [ "roccc_addr_gen"; "roccc_smart_buffer"; "roccc_controller" ]

(** Render the Figure 2 system around a compiled data path: address
    generator -> BRAM port -> smart buffer -> data path, sequenced by the
    controller. The data-path entity is referenced by [dp_entity] with
    window ports [win_ports] (in window order) and output ports
    [out_ports]. 1-D unit-stride single-array kernels only (e.g. FIR). *)
let system_wrapper_vhdl ~(dp_entity : string) ~(element_bits : int)
    ~(win_ports : string list) ~(out_ports : (string * int) list)
    ~(total_words : int) ~(iterations : int) ~(latency : int) : string =
  let window = List.length win_ports in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (address_generator_vhdl);
  Buffer.add_string buf "\n";
  Buffer.add_string buf (smart_buffer_vhdl ~window ~element_bits);
  Buffer.add_string buf "\n";
  Buffer.add_string buf controller_vhdl;
  Buffer.add_string buf "\n";
  let out_decls =
    String.concat ";\n"
      (List.map
         (fun (name, bits) ->
           Printf.sprintf "    %s : out signed(%d downto 0)" name (bits - 1))
         out_ports)
  in
  Buffer.add_string buf
    (Printf.sprintf
       {|library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity %s_system is
  port (
    clk   : in  std_logic;
    rst   : in  std_logic;
    bram_data  : in  signed(%d downto 0);
    bram_valid : in  std_logic;
    bram_addr  : out unsigned(9 downto 0);
    bram_rd    : out std_logic;
%s;
    finished : out std_logic
  );
end entity %s_system;

architecture structural of %s_system is
%s
  signal window_valid : std_logic;
  signal launch       : std_logic;
begin
  u_addr : entity work.roccc_addr_gen
    generic map (total_words => %d, addr_width => 10)
    port map (clk => clk, rst => rst, enable => '1',
              address => bram_addr, valid => bram_rd, done => open);

  u_buffer : entity work.roccc_smart_buffer
    port map (clk => clk, rst => rst, din => bram_data,
              din_valid => bram_valid,
%s,
              window_valid => window_valid);

  u_control : entity work.roccc_controller
    generic map (total_iterations => %d, pipeline_latency => %d)
    port map (clk => clk, rst => rst, window_valid => window_valid,
              launch => launch, running => open, finished => finished);

  u_datapath : entity work.%s
    port map (clk => clk, rst => rst,
%s%s);
end architecture structural;
|}
       dp_entity (element_bits - 1) out_decls dp_entity dp_entity
       (String.concat "\n"
          (List.mapi
             (fun i _ ->
               Printf.sprintf "  signal w%d : signed(%d downto 0);" i
                 (element_bits - 1))
             win_ports))
       total_words
       (String.concat ",\n"
          (List.mapi (fun i _ -> Printf.sprintf "              win%d => w%d" i i) win_ports))
       iterations latency dp_entity
       (String.concat ",\n"
          (List.mapi
             (fun i p -> Printf.sprintf "              %s => w%d" p i)
             win_ports)
       ^ ",\n")
       (String.concat ",\n"
          (List.map
             (fun (name, _) -> Printf.sprintf "              %s => %s" name name)
             out_ports)));
  Buffer.contents buf
