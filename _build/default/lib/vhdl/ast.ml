(** A compact VHDL design representation — entities, architectures, signals,
    concurrent assignments, clocked processes and component instances —
    sufficient for the RTL the compiler emits (IEEE 1076.3 numeric_std
    arithmetic, paper §4.2.4), plus the text renderer. *)

type vtype =
  | Std_logic
  | Signed of int    (** signed(w-1 downto 0) *)
  | Unsigned of int  (** unsigned(w-1 downto 0) *)

type direction = Dir_in | Dir_out

type port = { port_name : string; port_dir : direction; port_type : vtype }

type signal_decl = { sig_name : string; sig_type : vtype }

(** Concurrent statements in an architecture body. RHS expressions are
    carried as strings built by the generator; the linter tokenizes them. *)
type concurrent =
  | Assign of string * string  (** target <= expression; *)
  | Instance of {
      inst_label : string;
      component : string;
      port_map : (string * string) list;  (** formal -> actual *)
    }
  | Clocked_process of {
      label : string;
      clock : string;
      reset : string option;
      assignments : (string * string) list;        (** on rising edge *)
      reset_assignments : (string * string) list;  (** when reset = '1' *)
    }
  | Comment of string
  | Selected of {
      target : string;
      selector : string;
      cases : (string * string) list;  (** value expression -> choice *)
      default : string;
    }  (** with selector select target <= ... when choice, ... *)

type architecture = {
  arch_name : string;
  of_entity : string;
  signals : signal_decl list;
  components : (string * port list) list;  (** component declarations *)
  body : concurrent list;
}

type entity = { entity_name : string; entity_ports : port list }

type design_unit = { unit_entity : entity; unit_arch : architecture }

(** A full design: units in elaboration order (leaf components first) plus
    ROM initialization files keyed by table name. *)
type design = {
  design_name : string;
  units : design_unit list;
  rom_inits : (string * string) list;  (** file name -> contents *)
}

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let vtype_to_string = function
  | Std_logic -> "std_logic"
  | Signed w -> Printf.sprintf "signed(%d downto 0)" (w - 1)
  | Unsigned w -> Printf.sprintf "unsigned(%d downto 0)" (w - 1)

let vtype_width = function Std_logic -> 1 | Signed w | Unsigned w -> w

let direction_to_string = function Dir_in -> "in" | Dir_out -> "out"

let port_to_string (p : port) =
  Printf.sprintf "%s : %s %s" p.port_name
    (direction_to_string p.port_dir)
    (vtype_to_string p.port_type)

let render_ports buf ports =
  match ports with
  | [] -> ()
  | _ ->
    Buffer.add_string buf "  port (\n";
    let n = List.length ports in
    List.iteri
      (fun i p ->
        Buffer.add_string buf ("    " ^ port_to_string p);
        Buffer.add_string buf (if i = n - 1 then "\n" else ";\n"))
      ports;
    Buffer.add_string buf "  );\n"

let render_concurrent buf = function
  | Assign (target, rhs) ->
    Buffer.add_string buf (Printf.sprintf "  %s <= %s;\n" target rhs)
  | Selected { target; selector; cases; default } ->
    Buffer.add_string buf (Printf.sprintf "  with %s select\n" selector);
    Buffer.add_string buf (Printf.sprintf "    %s <=\n" target);
    List.iter
      (fun (value, choice) ->
        Buffer.add_string buf
          (Printf.sprintf "      %s when %s,\n" value choice))
      cases;
    Buffer.add_string buf (Printf.sprintf "      %s when others;\n" default)
  | Comment text -> Buffer.add_string buf (Printf.sprintf "  -- %s\n" text)
  | Instance { inst_label; component; port_map } ->
    Buffer.add_string buf
      (Printf.sprintf "  %s : %s port map (\n" inst_label component);
    let n = List.length port_map in
    List.iteri
      (fun i (formal, actual) ->
        Buffer.add_string buf (Printf.sprintf "    %s => %s" formal actual);
        Buffer.add_string buf (if i = n - 1 then "\n" else ",\n"))
      port_map;
    Buffer.add_string buf "  );\n"
  | Clocked_process { label; clock; reset; assignments; reset_assignments } ->
    Buffer.add_string buf (Printf.sprintf "  %s : process(%s)\n" label clock);
    Buffer.add_string buf "  begin\n";
    Buffer.add_string buf
      (Printf.sprintf "    if rising_edge(%s) then\n" clock);
    (match reset with
    | Some r when reset_assignments <> [] ->
      Buffer.add_string buf (Printf.sprintf "      if %s = '1' then\n" r);
      List.iter
        (fun (t, v) ->
          Buffer.add_string buf (Printf.sprintf "        %s <= %s;\n" t v))
        reset_assignments;
      Buffer.add_string buf "      else\n";
      List.iter
        (fun (t, v) ->
          Buffer.add_string buf (Printf.sprintf "        %s <= %s;\n" t v))
        assignments;
      Buffer.add_string buf "      end if;\n"
    | Some _ | None ->
      List.iter
        (fun (t, v) ->
          Buffer.add_string buf (Printf.sprintf "      %s <= %s;\n" t v))
        assignments);
    Buffer.add_string buf "    end if;\n";
    Buffer.add_string buf "  end process;\n"

let render_unit buf (u : design_unit) =
  let e = u.unit_entity and a = u.unit_arch in
  Buffer.add_string buf "library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n\n";
  Buffer.add_string buf (Printf.sprintf "entity %s is\n" e.entity_name);
  render_ports buf e.entity_ports;
  Buffer.add_string buf (Printf.sprintf "end entity %s;\n\n" e.entity_name);
  Buffer.add_string buf
    (Printf.sprintf "architecture %s of %s is\n" a.arch_name a.of_entity);
  List.iter
    (fun (cname, ports) ->
      Buffer.add_string buf (Printf.sprintf "  component %s\n" cname);
      render_ports buf ports;
      Buffer.add_string buf "  end component;\n")
    a.components;
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  signal %s : %s;\n" s.sig_name
           (vtype_to_string s.sig_type)))
    a.signals;
  Buffer.add_string buf "begin\n";
  List.iter (render_concurrent buf) a.body;
  Buffer.add_string buf
    (Printf.sprintf "end architecture %s;\n\n" a.arch_name)

(** Render the whole design as one VHDL source text. *)
let to_string (d : design) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "-- %s : generated by ROCCC-reproduction\n\n" d.design_name);
  List.iter (render_unit buf) d.units;
  Buffer.contents buf

(** All files of the design: the VHDL source plus ROM init text files
    ("a pure text initialization file, which defines the lookup table's
    content", paper §4.2.4). *)
let to_files (d : design) : (string * string) list =
  ((d.design_name ^ ".vhd"), to_string d)
  :: List.map (fun (name, text) -> name ^ ".init", text) d.rom_inits
