(** Structural checks over generated VHDL designs — the static rules a VHDL
    front-end would enforce, run offline: every referenced name declared, no
    multiple drivers, component instances match generated entities and map
    every formal, output ports never read inside their own architecture. *)

exception Error of string

type report = {
  units_checked : int;
  instances_checked : int;
  signals_checked : int;
}

val identifiers_of : string -> string list
(** Identifiers appearing in an expression text (VHDL keywords and numeric
    literals filtered out). Exposed for tests. *)

val check : Ast.design -> report
(** Lint a whole design. Raises {!Error} describing the first violation;
    returns a summary on success. *)
