lib/hir/inline.ml: List Option Printf Roccc_cfront Roccc_util String
