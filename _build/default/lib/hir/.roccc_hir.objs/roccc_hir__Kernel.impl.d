lib/hir/kernel.ml: Buffer List Printf Roccc_cfront String
