lib/hir/feedback.mli: Kernel
