lib/hir/kernel.mli: Roccc_cfront
