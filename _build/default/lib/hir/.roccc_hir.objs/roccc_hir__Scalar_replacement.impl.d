lib/hir/scalar_replacement.ml: Hashtbl Int64 Kernel List Loop_opt Map Option Printf Roccc_cfront Roccc_util Set String
