lib/hir/loop_opt.ml: Int64 List Option Printf Roccc_cfront String
