lib/hir/inline.mli: Roccc_cfront
