lib/hir/const_fold.mli: Roccc_cfront
