lib/hir/loop_opt.mli: Roccc_cfront
