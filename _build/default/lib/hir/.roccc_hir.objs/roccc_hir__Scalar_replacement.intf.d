lib/hir/scalar_replacement.mli: Kernel Roccc_cfront
