lib/hir/feedback.ml: Kernel List Option Printf Roccc_cfront Roccc_util String
