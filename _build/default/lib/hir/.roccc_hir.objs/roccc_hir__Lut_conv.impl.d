lib/hir/lut_conv.ml: Array Buffer Float Int64 List Printf Roccc_cfront Roccc_util String
