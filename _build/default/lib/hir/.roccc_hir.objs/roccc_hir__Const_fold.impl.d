lib/hir/const_fold.ml: Int64 List Map Option Roccc_cfront Roccc_util Set String
