lib/hir/lut_conv.mli: Roccc_cfront
