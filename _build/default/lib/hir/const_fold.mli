(** Constant folding, algebraic simplification, constant propagation and
    dead-code elimination — ROCCC's "conventional optimizations" (§2). *)

val fold_expr : Roccc_cfront.Ast.expr -> Roccc_cfront.Ast.expr
(** Bottom-up folding and algebraic simplification (identities,
    reassociation of constant add/sub chains). Division by zero is never
    folded away. *)

val propagate_func :
  ?consts:(string * int64) list ->
  Roccc_cfront.Ast.func ->
  Roccc_cfront.Ast.func
(** Propagate known constants through the body (branch-aware; statically
    decided conditionals are spliced). [consts] seeds the environment. *)

val dce_func : Roccc_cfront.Ast.func -> Roccc_cfront.Ast.func
(** Remove scalar assignments whose results are never used. Pointer and
    array writes are the observable outputs and are kept; declarations are
    kept (only dead initializers are dropped). *)

val optimize_func :
  ?consts:(string * int64) list ->
  Roccc_cfront.Ast.func ->
  Roccc_cfront.Ast.func
(** Propagation + folding + DCE to a fixpoint. *)

val readonly_global_consts :
  Roccc_cfront.Ast.program ->
  Roccc_cfront.Ast.func ->
  (string * int64) list
(** Constant-initialized globals the function never writes — safe to
    substitute as constants (a read-only coefficient table scalar, say). *)
