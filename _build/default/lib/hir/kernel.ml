(** The compiler's central product at the loop level: a [kernel] couples the
    pure scalar data-path function (paper Figure 3c / 4c) with the memory
    access descriptors the controller and smart-buffer generators consume
    (paper §4.1), and the loop information driving iteration. *)

open Roccc_cfront.Ast

(** One normalized loop dimension: the index takes [count] values starting at
    [lower], advancing by [step]. Outermost dimension first in [t.loops]. *)
type loop_dim = { index : string; lower : int; count : int; step : int }

(** A sliding-window input array: each iteration the data path consumes the
    elements at [base + offset] for every offset, where [base] advances by
    the loop steps. [scalars] maps each offset vector to the name of the
    window scalar parameter in the dp function (A0, A1, ... in the paper). *)
type window_input = {
  win_array : string;
  win_kind : ikind;
  win_dims : int list;                     (** declared array dimensions *)
  win_offsets : int list list;             (** sorted offset vectors *)
  win_scalars : (int list * string) list;  (** offset -> dp parameter name *)
}

type output_target =
  | Out_array of { arr : string; kind : ikind; dims : int list; offset : int list }
      (** written at loop position + offset each iteration *)
  | Out_scalar of { name : string; kind : ikind }
      (** pointer output of the original function: holds the last value *)

(** An output port of the data path: dp writes [*port] each iteration; the
    surrounding circuit routes it to [target]. *)
type output = { port : string; port_kind : ikind; target : output_target }

(** A loop-carried scalar (accumulator): lives in a feedback register,
    accessed through LPR/SNX in the data path. *)
type feedback_var = { fb_name : string; fb_kind : ikind; fb_init : int64 }

type t = {
  kname : string;
  dp : func;             (** scalar data-path function (Figure 3c / 4c) *)
  transformed : func;    (** whole function after scalar replacement (3b) *)
  original : func;       (** the function as written (3a) *)
  loops : loop_dim list; (** empty for purely combinational kernels *)
  windows : window_input list;
  scalar_inputs : param list;  (** live-in scalar parameters fed to dp *)
  outputs : output list;
  feedback : feedback_var list;
}

let iteration_space (k : t) : int =
  List.fold_left (fun acc d -> acc * d.count) 1 k.loops

(** Window extent (max offset - min offset + 1) per dimension, or [] when the
    kernel has no window inputs. *)
let window_extent (w : window_input) : int list =
  match w.win_offsets with
  | [] -> []
  | first :: _ ->
    let ndims = List.length first in
    List.init ndims (fun d ->
        let dth v = List.nth v d in
        let lo =
          List.fold_left (fun acc v -> min acc (dth v)) (dth first)
            w.win_offsets
        and hi =
          List.fold_left (fun acc v -> max acc (dth v)) (dth first)
            w.win_offsets
        in
        hi - lo + 1)

(** Human-readable summary used by examples and the bench harness. *)
let describe (k : t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "kernel %s\n" k.kname);
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "  loop %s: %d iterations from %d step %d\n" d.index
           d.count d.lower d.step))
    k.loops;
  List.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf "  window on %s: offsets [%s] extent [%s]\n"
           w.win_array
           (String.concat "; "
              (List.map
                 (fun v -> String.concat "," (List.map string_of_int v))
                 w.win_offsets))
           (String.concat "," (List.map string_of_int (window_extent w)))))
    k.windows;
  List.iter
    (fun p -> Buffer.add_string buf (Printf.sprintf "  scalar in: %s\n" p.pname))
    k.scalar_inputs;
  List.iter
    (fun o ->
      match o.target with
      | Out_array { arr; offset; _ } ->
        Buffer.add_string buf
          (Printf.sprintf "  output %s -> %s[+%s]\n" o.port arr
             (String.concat "," (List.map string_of_int offset)))
      | Out_scalar { name; _ } ->
        Buffer.add_string buf
          (Printf.sprintf "  output %s -> scalar %s (last value)\n" o.port name))
    k.outputs;
  List.iter
    (fun fb ->
      Buffer.add_string buf
        (Printf.sprintf "  feedback %s (init %Ld)\n" fb.fb_name fb.fb_init))
    k.feedback;
  Buffer.contents buf
