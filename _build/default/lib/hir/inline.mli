(** Function inlining: "Function calls will either be inlined or whenever
    feasible made into a lookup table" (paper §2). Callee locals are
    renamed apart; nested calls are handled by iterating to a fixpoint
    (recursion is rejected upstream by the semantic checks). *)

exception Error of string

val inline_calls :
  Roccc_cfront.Ast.program -> Roccc_cfront.Ast.func -> Roccc_cfront.Ast.func
(** Inline every call to a program-defined function inside the given
    function's body. Calls to registered lookup tables and to the ROCCC
    intrinsics are left in place. *)
