(** Constant folding, algebraic simplification, constant propagation and
    dead-code elimination — ROCCC's "conventional optimizations" (paper §2). *)

open Roccc_cfront.Ast

(* Fold a binary operation over two constants using 64-bit semantics; the
   interpreter truncates at assignment boundaries, so folding wide is safe. *)
let fold_binop op a b : int64 option =
  let bool_to_i64 p = if p then 1L else 0L in
  match op with
  | Add -> Some (Int64.add a b)
  | Sub -> Some (Int64.sub a b)
  | Mul -> Some (Int64.mul a b)
  | Div -> if Int64.equal b 0L then None else Some (Int64.div a b)
  | Mod -> if Int64.equal b 0L then None else Some (Int64.rem a b)
  | Shl -> Some (Int64.shift_left a (Int64.to_int (Int64.logand b 63L)))
  | Shr -> Some (Int64.shift_right a (Int64.to_int (Int64.logand b 63L)))
  | Band -> Some (Int64.logand a b)
  | Bor -> Some (Int64.logor a b)
  | Bxor -> Some (Int64.logxor a b)
  | Lt -> Some (bool_to_i64 (Int64.compare a b < 0))
  | Le -> Some (bool_to_i64 (Int64.compare a b <= 0))
  | Gt -> Some (bool_to_i64 (Int64.compare a b > 0))
  | Ge -> Some (bool_to_i64 (Int64.compare a b >= 0))
  | Eq -> Some (bool_to_i64 (Int64.equal a b))
  | Ne -> Some (bool_to_i64 (not (Int64.equal a b)))
  | Land -> Some (bool_to_i64 (not (Int64.equal a 0L) && not (Int64.equal b 0L)))
  | Lor -> Some (bool_to_i64 (not (Int64.equal a 0L) || not (Int64.equal b 0L)))

(* x + c with the trivial cases collapsed. *)
let simplify_chain x (c : int64) : expr =
  if Int64.equal c 0L then x
  else if Int64.compare c 0L > 0 then Binop (Add, x, Const c)
  else Binop (Sub, x, Const (Int64.neg c))

(* One bottom-up simplification step on an already-simplified node. *)
let simplify_node (e : expr) : expr =
  match e with
  | Binop (op, Const a, Const b) -> (
    match fold_binop op a b with Some v -> Const v | None -> e)
  | Unop (Neg, Const a) -> Const (Int64.neg a)
  | Unop (Bnot, Const a) -> Const (Int64.lognot a)
  | Unop (Lnot, Const a) -> Const (if Int64.equal a 0L then 1L else 0L)
  | Unop (Neg, Unop (Neg, x)) -> x
  | Cast (k, Const a) ->
    Const (Roccc_util.Bits.truncate ~signed:k.signed k.bits a)
  (* Reassociation of constant add/sub chains: (x + a) + b -> x + (a+b). *)
  | Binop (Add, Binop (Add, x, Const a), Const b)
  | Binop (Add, Const b, Binop (Add, x, Const a))
  | Binop (Add, Binop (Add, Const a, x), Const b)
  | Binop (Add, Const b, Binop (Add, Const a, x)) ->
    simplify_chain x (Int64.add a b)
  | Binop (Sub, Binop (Add, x, Const a), Const b)
  | Binop (Sub, Binop (Add, Const a, x), Const b) ->
    simplify_chain x (Int64.sub a b)
  | Binop (Add, Binop (Sub, x, Const a), Const b)
  | Binop (Add, Const b, Binop (Sub, x, Const a)) ->
    simplify_chain x (Int64.sub b a)
  | Binop (Sub, Binop (Sub, x, Const a), Const b) ->
    simplify_chain x (Int64.neg (Int64.add a b))
  (* Algebraic identities. *)
  | Binop (Add, x, Const 0L) | Binop (Add, Const 0L, x) -> x
  | Binop (Sub, x, Const 0L) -> x
  | Binop (Mul, x, Const 1L) | Binop (Mul, Const 1L, x) -> x
  | Binop (Mul, _, Const 0L) | Binop (Mul, Const 0L, _) -> Const 0L
  | Binop (Div, x, Const 1L) -> x
  | Binop (Shl, x, Const 0L) | Binop (Shr, x, Const 0L) -> x
  | Binop (Band, _, Const 0L) | Binop (Band, Const 0L, _) -> Const 0L
  | Binop (Bor, x, Const 0L) | Binop (Bor, Const 0L, x) -> x
  | Binop (Bxor, x, Const 0L) | Binop (Bxor, Const 0L, x) -> x
  | Binop (Sub, Var x, Var y) when String.equal x y -> Const 0L
  | Binop (Bxor, Var x, Var y) when String.equal x y -> Const 0L
  | _ -> e

let fold_expr (e : expr) : expr = map_expr simplify_node e

(* ------------------------------------------------------------------ *)
(* Constant propagation + folding over statement lists                 *)
(* ------------------------------------------------------------------ *)

module Env = Map.Make (String)

(* Substitute known constants for variables, then fold. [env] maps variable
   names to constant values. *)
let subst_fold env e =
  let subst e' =
    match e' with
    | Var x -> (
      match Env.find_opt x env with Some v -> Const v | None -> e')
    | _ -> simplify_node e'
  in
  map_expr subst e

(* Remove every binding whose variable is (re)assigned inside [stmts];
   used when entering constructs executed a data-dependent number of times. *)
let kill_assigned stmts env =
  let assigned =
    fold_stmts
      (fun acc s ->
        match s with
        | Sassign (lv, _) -> lvalue_name lv :: acc
        | Sdecl (_, n, _) -> n :: acc
        | Sexpr (Call (f, Var x :: _)) when String.equal f roccc_store2next ->
          x :: acc
        | Sfor (h, _) -> h.index :: acc
        | Sif _ | Sreturn _ | Sexpr _ -> acc)
      (fun acc _ -> acc)
      [] stmts
  in
  List.fold_left (fun env x -> Env.remove x env) env assigned

let rec prop_stmts env stmts =
  let env, rev =
    List.fold_left
      (fun (env, acc) s ->
        let env, ss = prop_stmt env s in
        env, List.rev_append ss acc)
      (env, []) stmts
  in
  env, List.rev rev

(* Returns the rewritten statement(s): a statically-decided [if] splices the
   taken branch into the enclosing list. *)
and prop_stmt env (s : stmt) : int64 Env.t * stmt list =
  match s with
  | Sdecl (t, n, init) ->
    let init' = Option.map (subst_fold env) init in
    let env =
      match t, init' with
      | Tint _, Some (Const v) -> Env.add n v env
      | _ -> Env.remove n env
    in
    env, [ Sdecl (t, n, init') ]
  | Sassign (lv, e) ->
    let e' = subst_fold env e in
    let lv' = map_lvalue (fun x -> subst_fold env x) lv in
    let env =
      match lv' with
      | Lvar x -> (
        match e' with Const v -> Env.add x v env | _ -> Env.remove x env)
      | Lindex _ | Lderef _ -> env
    in
    env, [ Sassign (lv', e') ]
  | Sif (c, th, el) -> (
    let c' = subst_fold env c in
    match c' with
    | Const v ->
      (* Branch is statically decided: splice the taken side in. *)
      let taken = if Int64.equal v 0L then el else th in
      prop_stmts env taken
    | _ ->
      let env_th, th' = prop_stmts env th in
      let env_el, el' = prop_stmts env el in
      (* Keep only facts agreed on by both branches. *)
      let env' =
        Env.merge
          (fun _ a b ->
            match a, b with
            | Some x, Some y when Int64.equal x y -> Some x
            | _ -> None)
          env_th env_el
      in
      env', [ Sif (c', th', el') ])
  | Sfor (h, body) ->
    let init' = subst_fold env h.init in
    let bound' = subst_fold env h.bound in
    let step' = subst_fold env h.step in
    (* The body runs repeatedly: drop facts about anything it assigns,
       including the loop index, then propagate inside with that weaker env. *)
    let env_in = kill_assigned body (Env.remove h.index env) in
    let _, body' = prop_stmts env_in body in
    ( env_in,
      [ Sfor ({ h with init = init'; bound = bound'; step = step' }, body') ] )
  | Sreturn e -> env, [ Sreturn (Option.map (subst_fold env) e) ]
  | Sexpr e -> env, [ Sexpr (subst_fold env e) ]

(* ------------------------------------------------------------------ *)
(* Dead code elimination                                               *)
(* ------------------------------------------------------------------ *)

module S = Set.Make (String)

let has_side_effect_expr e =
  Roccc_cfront.Ast.fold_expr
    (fun acc e' ->
      acc || match e' with Call _ -> true | _ -> false)
    false e

(* Backward pass: a scalar assignment is dead if its target is not live.
   Array writes, pointer writes and calls are always live. *)
let rec dce_stmts live stmts =
  List.fold_right
    (fun s (live, acc) ->
      match dce_stmt live s with
      | live, None -> live, acc
      | live, Some s' -> live, s' :: acc)
    stmts (live, [])

and dce_stmt live (s : stmt) : S.t * stmt option =
  let add_reads e live = List.fold_right S.add (expr_reads e) live in
  match s with
  | Sassign (Lvar x, e) ->
    if S.mem x live || has_side_effect_expr e then
      S.union (S.remove x live) (add_reads e S.empty), Some s
    else live, None
  | Sassign ((Lindex (_, idx) as lv), e) ->
    let live = List.fold_right add_reads idx live in
    let live = add_reads e live in
    ignore lv;
    live, Some s
  | Sassign (Lderef _, e) -> add_reads e live, Some s
  | Sdecl (t, n, init) ->
    (* Declarations are kept: the variable may be (re)assigned later even
       when backward liveness is dead *here* (the later assignment kills
       it). Only a dead initializer is dropped. *)
    let is_array = match t with Tarray _ -> true | _ -> false in
    let live' = S.remove n live in
    (match init with
    | Some e when S.mem n live || is_array || has_side_effect_expr e ->
      add_reads e live', Some s
    | Some _ -> live', Some (Sdecl (t, n, None))
    | None -> live', Some s)
  | Sif (c, th, el) ->
    let live_th, th' = dce_stmts live th in
    let live_el, el' = dce_stmts live el in
    let live' = add_reads c (S.union live_th live_el) in
    if th' = [] && el' = [] && not (has_side_effect_expr c) then live, None
    else live', Some (Sif (c, th', el'))
  | Sfor (h, body) ->
    (* Fixpoint: variables live around the loop back-edge. *)
    let rec iterate live_in =
      let live_body, body' = dce_stmts (S.add h.index live_in) body in
      let live_next = S.union live_in live_body in
      if S.equal live_next live_in then live_body, body'
      else iterate live_next
    in
    let live_body, body' = iterate live in
    let live' =
      add_reads h.init (add_reads h.bound (add_reads h.step live_body))
    in
    live', Some (Sfor (h, body'))
  | Sreturn e ->
    (match e with Some e -> add_reads e live | None -> live), Some s
  | Sexpr e -> add_reads e live, Some s

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Fold + propagate constants through a function body. [consts] seeds the
    environment — e.g. read-only globals with constant initializers. *)
let propagate_func ?(consts = []) (f : func) : func =
  let env =
    List.fold_left (fun env (n, v) -> Env.add n v env) Env.empty consts
  in
  let _, body = prop_stmts env f.body in
  { f with body }

(** Eliminate scalar assignments whose results are never used. Pointer and
    array writes are the function's observable outputs and are kept. *)
let dce_func (f : func) : func =
  let _, body = dce_stmts S.empty f.body in
  { f with body }

(** The standard cleanup pipeline: propagate/fold to fixpoint, then DCE. *)
let optimize_func ?(consts = []) (f : func) : func =
  let rec fix f n =
    let f' = dce_func (propagate_func ~consts f) in
    if n = 0 || f'.body = f.body then f' else fix f' (n - 1)
  in
  fix f 8

(** Constant-initialized globals that [f] never writes — safe to propagate
    into the body as constants. *)
let readonly_global_consts (prog : program) (f : func) : (string * int64) list
    =
  let written =
    fold_stmts
      (fun acc s ->
        match s with
        | Sassign (lv, _) -> lvalue_name lv :: acc
        | Sexpr (Call (g, Var x :: _)) when String.equal g roccc_store2next ->
          x :: acc
        | Sdecl _ | Sif _ | Sfor _ | Sreturn _ | Sexpr _ -> acc)
      (fun acc _ -> acc)
      [] f.body
  in
  List.filter_map
    (fun g ->
      match g.gtype, g.ginit with
      | Tint _, Some init when not (List.mem g.gname written) ->
        Option.map (fun v -> g.gname, v) (const_value init)
      | _ -> None)
    prog.globals
