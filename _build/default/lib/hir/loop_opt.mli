(** Loop-level transformations (paper §2): full and partial unrolling,
    fusion, and strip-mining. *)

exception Error of string

val iteration_values : Roccc_cfront.Ast.for_header -> int list option
(** Index values of a constant-bound loop in execution order; [None] for
    non-constant headers or absurdly long ([> 2^20]) loops. *)

val trip_count : Roccc_cfront.Ast.for_header -> int option

val fully_unroll :
  Roccc_cfront.Ast.for_header ->
  Roccc_cfront.Ast.stmt list ->
  Roccc_cfront.Ast.stmt list
(** Replace a constant-bound loop by straight-line code, substituting each
    index value ("converts a for-loop with constant bounds into a
    non-iterative block of code", §2). Raises {!Error} otherwise. *)

val partially_unroll :
  factor:int ->
  Roccc_cfront.Ast.for_header ->
  Roccc_cfront.Ast.stmt list ->
  Roccc_cfront.Ast.for_header * Roccc_cfront.Ast.stmt list
(** Replicate the body [factor] times with stepped index offsets and scale
    the loop step; the trip count must be divisible by the factor. *)

val unroll_small_loops :
  max_trip:int -> Roccc_cfront.Ast.stmt list -> Roccc_cfront.Ast.stmt list
(** Fully unroll every constant-bound loop with at most [max_trip]
    iterations, anywhere in the statement list (innermost first). *)

val fuse_loops : Roccc_cfront.Ast.stmt list -> Roccc_cfront.Ast.stmt list
(** Fuse adjacent loops with identical headers when no array or scalar
    written by the first is touched by the second (conservative
    dependence test). *)

val strip_mine :
  width:int ->
  Roccc_cfront.Ast.for_header ->
  Roccc_cfront.Ast.stmt list ->
  Roccc_cfront.Ast.stmt
(** Split a constant-bound unit-step loop into strips of [width] (an outer
    strip loop over an inner unit loop); the trip count must be divisible
    by the width. *)
