(** Scalar replacement (paper §4.1, Figure 3): isolates memory accesses from
    calculation. Sliding-window array reads become scalar loads, array
    writes become scalar stores, and the pure computation in between is
    exported as the data-path function; the loop statement and access
    pattern feed the controller and smart-buffer generators.

    Accepted shapes: a purely combinational function (no loop, no arrays);
    a fully-unrolled block kernel (constant-index array accesses, e.g. the
    DCT); or constant scalar setup + one loop nest (1-D or 2-D, constant
    bounds, indices affine in the loop variables) + scalar exports. *)

exception Error of string

val run : Roccc_cfront.Ast.program -> Roccc_cfront.Ast.func -> Kernel.t
(** Transform a checked, inlined, constant-folded function into a kernel.
    Raises {!Error} with a user-facing message on shape violations
    (non-affine accesses, statements before/after the loop nest, etc.). *)
