(** Feedback annotation (paper §4.2.1, Figure 4): loop-carried scalars
    detected by scalar replacement are rewritten so that every read of the
    previous iteration's value goes through [ROCCC_load_prev] and the write
    of the new value goes through [ROCCC_store2next]. The back-end lowers
    these to LPR / SNX opcodes, and the pipeliner gives each SNX a latch
    feeding its LPR (paper §4.2.3). *)

open Roccc_cfront.Ast
module K = Kernel

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt


(* Rewrite the body of the data-path function for one feedback variable.
   Reads of [name] before its (re)definition on the current path become
   ROCCC_load_prev(name); intermediate assignments stay plain (SSA phis
   merge conditional updates into a single value); one unconditional
   ROCCC_store2next(name, name) is appended at the end of the body. The
   store must be unconditional: in hardware every lane executes and the
   feedback latch loads every cycle, so a store inside a branch would
   clobber the register on not-taken iterations. *)
let rewrite_var counter (name : string) (kind : ikind) (stmts : stmt list) :
    stmt list =
  ignore counter;
  ignore kind;
  (* [written] — may the variable have been assigned already? Reads become
     load_prev only while definitely unwritten; after a conditional write
     the raw variable carries the phi-merged value (the leading LPR bound at
     procedure entry supplies the not-taken lane). *)
  let load_rewrite ~written e =
    if written then e
    else
      map_expr
        (fun e' ->
          match e' with
          | Var x when String.equal x name -> Call (roccc_load_prev, [ Var x ])
          | _ -> e')
        e
  in
  let rec go written stmts =
    let written, rev =
      List.fold_left
        (fun (written, acc) s ->
          let written, ss = go_stmt written s in
          written, List.rev_append ss acc)
        (written, []) stmts
    in
    written, List.rev rev
  and go_stmt written s : bool * stmt list =
    match s with
    | Sassign (Lvar x, e) when String.equal x name ->
      let e' = load_rewrite ~written e in
      true, [ Sassign (Lvar x, e') ]
    | Sassign (lv, e) -> written, [ Sassign (lv, load_rewrite ~written e) ]
    | Sdecl (t, n, init) ->
      written, [ Sdecl (t, n, Option.map (load_rewrite ~written) init) ]
    | Sif (c, th, el) ->
      let c' = load_rewrite ~written c in
      let w_th, th' = go written th in
      let w_el, el' = go written el in
      (* Maybe-written if either branch wrote. *)
      w_th || w_el, [ Sif (c', th', el') ]
    | Sreturn e ->
      written, [ Sreturn (Option.map (load_rewrite ~written) e) ]
    | Sexpr e -> written, [ Sexpr (load_rewrite ~written e) ]
    | Sfor _ -> errf "feedback rewriting inside nested loops is unsupported"
  in
  let body = snd (go false stmts) in
  body @ [ Sexpr (Call (roccc_store2next, [ Var name; Var name ])) ]

(** Annotate the kernel's data-path function with LPR/SNX intrinsics for each
    detected feedback variable (no-op when there is no feedback). *)
let annotate (k : K.t) : K.t =
  if k.K.feedback = [] then k
  else begin
    let counter = Roccc_util.Id_gen.create () in
    let body =
      List.fold_left
        (fun body fb -> rewrite_var counter fb.K.fb_name fb.K.fb_kind body)
        k.K.dp.body k.K.feedback
    in
    { k with K.dp = { k.K.dp with body } }
  end

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

(* Every feedback variable must have exactly one store2next, unconditional
   at the top level of the dp body: the SNX latch loads every cycle, so the
   stored value must be defined on every path. *)
let validate (k : K.t) : unit =
  let dp_body = k.K.dp.body in
  List.iter
    (fun fb ->
      let name = fb.K.fb_name in
      let is_store s =
        match s with
        | Sexpr (Call (f, Var x :: _)) ->
          String.equal f roccc_store2next && String.equal x name
        | _ -> false
      in
      let top_level_stores = List.length (List.filter is_store dp_body) in
      let total_stores =
        fold_stmts
          (fun acc s -> if is_store s then acc + 1 else acc)
          (fun acc _ -> acc)
          0 dp_body
      in
      if total_stores = 0 then
        errf "feedback variable %s has no %s" name roccc_store2next;
      if total_stores <> 1 || top_level_stores <> 1 then
        errf
          "feedback variable %s must have exactly one unconditional %s (found \
           %d, %d at top level)"
          name roccc_store2next total_stores top_level_stores)
    k.K.feedback
