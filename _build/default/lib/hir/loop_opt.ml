(** Loop-level transformations: full/partial unrolling, fusion and
    strip-mining (paper §2: "at loop level ROCCC performs FPGA-specific
    optimizations, such as loop strip-mining, loop fusion, etc."). *)

open Roccc_cfront.Ast

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Trip counts                                                         *)
(* ------------------------------------------------------------------ *)

(** Iteration values of a constant-bound loop header, in execution order.
    Returns [None] when any of init/bound/step is not a literal constant. *)
let iteration_values (h : for_header) : int list option =
  match h.init, h.bound, h.step with
  | Const init, Const bound, Const step ->
    let init = Int64.to_int init
    and bound = Int64.to_int bound
    and step = Int64.to_int step in
    if step = 0 then None
    else begin
      let continue_at i =
        match h.cond_op with
        | Lt -> i < bound
        | Le -> i <= bound
        | Gt -> i > bound
        | Ge -> i >= bound
        | Ne -> i <> bound
        | _ -> false
      in
      (* Guard against unbounded Ne loops stepping over the bound. *)
      let max_iters = 1 lsl 20 in
      let rec loop i acc n =
        if not (continue_at i) then Some (List.rev acc)
        else if n > max_iters then None
        else loop (i + step) (i :: acc) (n + 1)
      in
      loop init [] 0
    end
  | (Const _ | Var _ | Index _ | Deref _ | Binop _ | Unop _ | Call _ | Cast _),
    _, _ ->
    None

let trip_count h = Option.map List.length (iteration_values h)

(* ------------------------------------------------------------------ *)
(* Unrolling                                                           *)
(* ------------------------------------------------------------------ *)

(* Substitute constant [value] for variable [name] in a statement list. *)
let subst_var name value stmts =
  let f = function
    | Var x when String.equal x name -> Const (Int64.of_int value)
    | e -> e
  in
  map_stmts f stmts

(** Fully unroll a constant-bound loop into straight-line code. "Full loop
    unrolling converts a for-loop with constant bounds into a non-iterative
    block of code and therefore eliminates the loop controller" (paper §2). *)
let fully_unroll (h : for_header) (body : stmt list) : stmt list =
  match iteration_values h with
  | None -> errf "cannot fully unroll: loop %s has non-constant bounds" h.index
  | Some values ->
    List.concat_map (fun i -> subst_var h.index i body) values

(** Unroll by [factor]: the body is replicated [factor] times per iteration
    with index offsets 0, step, 2*step, ...; the step is multiplied. The trip
    count must be divisible by the factor. *)
let partially_unroll ~factor (h : for_header) (body : stmt list) :
    for_header * stmt list =
  if factor < 1 then errf "unroll factor must be >= 1";
  if factor = 1 then h, body
  else
    match trip_count h, h.step with
    | Some n, Const step ->
      if n mod factor <> 0 then
        errf "unroll factor %d does not divide trip count %d" factor n;
      let step = Int64.to_int step in
      let shift_index k stmts =
        (* index -> index + k*step in every expression *)
        let f = function
          | Var x when String.equal x h.index ->
            Binop (Add, Var x, Const (Int64.of_int (k * step)))
          | e -> e
        in
        map_stmts f stmts
      in
      let body' =
        List.concat (List.init factor (fun k -> shift_index k body))
      in
      let h' = { h with step = Const (Int64.of_int (factor * step)) } in
      h', body'
    | _ -> errf "cannot unroll: loop %s has non-constant bounds" h.index

(* Apply full unrolling to every constant-bound loop in a body whose trip
   count is at most [max_trip]. *)
let rec unroll_small_loops ~max_trip stmts =
  List.concat_map
    (fun s ->
      match s with
      | Sfor (h, body) -> (
        let body = unroll_small_loops ~max_trip body in
        match trip_count h with
        | Some n when n <= max_trip -> fully_unroll h body
        | Some _ | None -> [ Sfor (h, body) ])
      | Sif (c, th, el) ->
        [ Sif (c, unroll_small_loops ~max_trip th,
               unroll_small_loops ~max_trip el) ]
      | Sdecl _ | Sassign _ | Sreturn _ | Sexpr _ -> [ s ])
    stmts

(* ------------------------------------------------------------------ *)
(* Fusion                                                              *)
(* ------------------------------------------------------------------ *)

(* Arrays written / read by a statement list. *)
let arrays_written stmts =
  fold_stmts
    (fun acc s ->
      match s with
      | Sassign (Lindex (a, _), _) -> a :: acc
      | Sassign _ | Sdecl _ | Sif _ | Sfor _ | Sreturn _ | Sexpr _ -> acc)
    (fun acc _ -> acc)
    [] stmts
  |> List.sort_uniq String.compare

let array_reads stmts =
  fold_stmts
    (fun acc _ -> acc)
    (fun acc e ->
      match e with
      | Index (a, _) -> a :: acc
      | Const _ | Var _ | Deref _ | Binop _ | Unop _ | Call _ | Cast _ -> acc)
    [] stmts
  |> List.sort_uniq String.compare

let scalars_written stmts =
  fold_stmts
    (fun acc s ->
      match s with
      | Sassign (Lvar x, _) | Sdecl (Tint _, x, Some _) -> x :: acc
      | Sexpr (Call (f, Var x :: _)) when String.equal f roccc_store2next ->
        x :: acc
      | Sassign _ | Sdecl _ | Sif _ | Sfor _ | Sreturn _ | Sexpr _ -> acc)
    (fun acc _ -> acc)
    [] stmts
  |> List.sort_uniq String.compare

let scalar_reads stmts =
  fold_stmts
    (fun acc _ -> acc)
    (fun acc e ->
      match e with
      | Var x -> x :: acc
      | Const _ | Index _ | Deref _ | Binop _ | Unop _ | Call _ | Cast _ -> acc)
    [] stmts
  |> List.sort_uniq String.compare

let same_header (h1 : for_header) (h2 : for_header) =
  String.equal h1.index h2.index
  && equal_expr h1.init h2.init
  && equal_expr h1.bound h2.bound
  && equal_expr h1.step h2.step
  && h1.cond_op = h2.cond_op

(* Conservative legality: the loops must have identical headers and be
   independent — no array or scalar written by loop 1 may be touched by
   loop 2 (and vice versa for writes). Offset-aware dependence testing is
   future work; this suffices for the paper's producer-free pairs. *)
let can_fuse (h1, b1) (h2, b2) =
  same_header h1 h2
  &&
  let w1 = arrays_written b1 and w2 = arrays_written b2 in
  let r2 = array_reads b2 in
  let sw1 = scalars_written b1 and sw2 = scalars_written b2 in
  let sr2 = scalar_reads b2 in
  List.for_all (fun a -> not (List.mem a r2) && not (List.mem a w2)) w1
  && List.for_all
       (fun x -> not (List.mem x sr2) && not (List.mem x sw2))
       sw1

(** Fuse adjacent independent loops with identical headers in a body. *)
let rec fuse_loops stmts =
  match stmts with
  | Sfor (h1, b1) :: Sfor (h2, b2) :: rest when can_fuse (h1, b1) (h2, b2) ->
    fuse_loops (Sfor (h1, b1 @ b2) :: rest)
  | Sfor (h, b) :: rest -> Sfor (h, fuse_loops b) :: fuse_loops rest
  | Sif (c, th, el) :: rest ->
    Sif (c, fuse_loops th, fuse_loops el) :: fuse_loops rest
  | s :: rest -> s :: fuse_loops rest
  | [] -> []

(* ------------------------------------------------------------------ *)
(* Strip-mining                                                        *)
(* ------------------------------------------------------------------ *)

(** Strip-mine a constant-bound unit-step loop into an outer loop over strips
    of [width] and an inner unit loop. The trip count must be divisible by
    the width (the common case when sizing strips to buffer capacity). *)
let strip_mine ~width (h : for_header) (body : stmt list) : stmt =
  if width < 1 then errf "strip width must be >= 1";
  match h.init, h.bound, h.step, h.cond_op with
  | Const init, Const bound, Const 1L, Lt ->
    let init = Int64.to_int init and bound = Int64.to_int bound in
    let n = bound - init in
    if n mod width <> 0 then
      errf "strip width %d does not divide trip count %d" width n;
    let outer_index = h.index ^ "_strip" in
    let inner =
      Sfor
        ( { index = h.index;
            init = Var outer_index;
            cond_op = Lt;
            bound = Binop (Add, Var outer_index, Const (Int64.of_int width));
            step = Const 1L },
          body )
    in
    Sfor
      ( { index = outer_index;
          init = Const (Int64.of_int init);
          cond_op = Lt;
          bound = Const (Int64.of_int bound);
          step = Const (Int64.of_int width) },
        [ inner ] )
  | _ -> errf "strip-mining requires a constant-bound unit-step loop"
