(** Scalar replacement (paper §4.1, Figure 3): isolates memory accesses from
    calculation. Array window reads become scalar loads at the top of the
    loop body, array writes become scalar stores at the bottom, and the pure
    computation in between is exported as the data-path function handed to
    the back-end. The loop statement and the load/store pattern feed the
    controller and smart-buffer generators. *)

open Roccc_cfront.Ast
module K = Kernel

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

module S = Set.Make (String)
module M = Map.Make (String)

(* ------------------------------------------------------------------ *)
(* Shape analysis: pre-statements, loop nest (<= 2 deep), post-statements *)
(* ------------------------------------------------------------------ *)

type nest = {
  dims : for_header list;  (* outermost first *)
  body : stmt list;        (* innermost body *)
}

let rec split_body (stmts : stmt list) : stmt list * (nest * stmt list) option
    =
  match stmts with
  | [] -> [], None
  | Sfor (h, inner) :: rest -> (
    (* Is [inner] itself just a loop (2-D nest)? Allow leading decls. *)
    let _decls, inner_rest =
      let rec take acc = function
        | (Sdecl (_, _, None) as d) :: tl -> take (d :: acc) tl
        | tl -> List.rev acc, tl
      in
      take [] inner
    in
    match inner_rest with
    | [ Sfor (h2, body2) ] -> [], Some ({ dims = [ h; h2 ]; body = body2 }, rest)
    | _ -> [], Some ({ dims = [ h ]; body = inner }, rest))
  | s :: rest ->
    let pre, nest = split_body rest in
    s :: pre, nest

(* Constant-normalize a loop header into a Kernel.loop_dim. *)
let normalize_header (h : for_header) : K.loop_dim =
  match Loop_opt.iteration_values h with
  | Some values ->
    let lower = match values with v :: _ -> v | [] -> 0 in
    let step =
      match values with a :: b :: _ -> b - a | [ _ ] | [] -> 1
    in
    { K.index = h.index; lower; count = List.length values; step }
  | None ->
    errf "loop %s must have constant bounds after constant folding" h.index

(* ------------------------------------------------------------------ *)
(* Affine index analysis                                               *)
(* ------------------------------------------------------------------ *)

(* Match an index expression against "loop_index + constant". *)
let affine_offset ~(loop_index : string) (e : expr) : int option =
  match e with
  | Var x when String.equal x loop_index -> Some 0
  | Binop (Add, Var x, Const c) when String.equal x loop_index ->
    Some (Int64.to_int c)
  | Binop (Add, Const c, Var x) when String.equal x loop_index ->
    Some (Int64.to_int c)
  | Binop (Sub, Var x, Const c) when String.equal x loop_index ->
    Some (-Int64.to_int c)
  | _ -> None

(* Offset vector of a multi-dim access w.r.t. the loop indices, dimension d
   matched against loop dimension d. With no loop indices (a fully-unrolled
   block kernel) the offsets are the literal constant positions. *)
let offset_vector ~(indices : string list) (idx : expr list) : int list option
    =
  if indices = [] then
    List.fold_right
      (fun e acc ->
        match e, acc with
        | Const c, Some l -> Some (Int64.to_int c :: l)
        | (Const _ | Var _ | Index _ | Deref _ | Binop _ | Unop _ | Call _
          | Cast _), _ ->
          None)
      idx (Some [])
  else if List.length idx <> List.length indices then None
  else
    let rec loop acc indices idx =
      match indices, idx with
      | [], [] -> Some (List.rev acc)
      | ix :: indices', e :: idx' -> (
        match affine_offset ~loop_index:ix e with
        | Some c -> loop (c :: acc) indices' idx'
        | None -> None)
      | _ -> None
    in
    loop [] indices idx

(* Paper-style window scalar names: A0, A1 ... for 1-D consecutive offsets,
   A_r_c for 2-D (negative offsets rendered m<k>). *)
let scalar_name array offset =
  let part c = if c < 0 then Printf.sprintf "m%d" (-c) else string_of_int c in
  match offset with
  | [ c ] when c >= 0 -> Printf.sprintf "%s%d" array c
  | parts -> Printf.sprintf "%s_%s" array (String.concat "_" (List.map part parts))

(* ------------------------------------------------------------------ *)
(* Read-before-write analysis for feedback detection                   *)
(* ------------------------------------------------------------------ *)

(* Scalars read in [stmts] before being definitely written in the same
   iteration — candidates for loop-carried feedback. *)
let upward_exposed_reads (stmts : stmt list) : S.t =
  let exposed = ref S.empty in
  let note_reads written e =
    List.iter
      (fun x -> if not (S.mem x written) then exposed := S.add x !exposed)
      (expr_reads e)
  in
  let rec go written stmts =
    List.fold_left
      (fun written s ->
        match s with
        | Sdecl (_, n, init) ->
          Option.iter (note_reads written) init;
          S.add n written
        | Sassign (lv, e) ->
          (match lv with
          | Lindex (_, idx) -> List.iter (note_reads written) idx
          | Lvar _ | Lderef _ -> ());
          note_reads written e;
          (match lv with
          | Lvar x | Lderef x -> S.add x written
          | Lindex _ -> written)
        | Sif (c, th, el) ->
          note_reads written c;
          let w_th = go written th in
          let w_el = go written el in
          S.union written (S.inter w_th w_el)
        | Sfor (h, body) ->
          note_reads written h.init;
          note_reads written h.bound;
          note_reads written h.step;
          ignore (go written body);
          written
        | Sreturn e ->
          Option.iter (note_reads written) e;
          written
        | Sexpr (Call (f, Var x :: args)) when String.equal f roccc_store2next
          ->
          List.iter (note_reads written) args;
          S.add x written
        | Sexpr e ->
          note_reads written e;
          written)
      written stmts
  in
  ignore (go S.empty stmts);
  !exposed

let written_scalars (stmts : stmt list) : S.t =
  fold_stmts
    (fun acc s ->
      match s with
      | Sassign (Lvar x, _) | Sassign (Lderef x, _) -> S.add x acc
      | Sexpr (Call (f, Var x :: _)) when String.equal f roccc_store2next ->
        S.add x acc
      | Sassign _ | Sdecl _ | Sif _ | Sfor _ | Sreturn _ | Sexpr _ -> acc)
    (fun acc _ -> acc)
    S.empty stmts

let declared_scalars (stmts : stmt list) : S.t =
  fold_stmts
    (fun acc s ->
      match s with
      | Sdecl (_, n, _) -> S.add n acc
      | Sassign _ | Sif _ | Sfor _ | Sreturn _ | Sexpr _ -> acc)
    (fun acc _ -> acc)
    S.empty stmts

(* ------------------------------------------------------------------ *)
(* The transformation                                                  *)
(* ------------------------------------------------------------------ *)

type accesses = {
  mutable reads : (string * int list) list;   (* (array, offset) reads *)
  mutable writes : (string * int list) list;  (* (array, offset) writes *)
}

(* Environment describing the original function. *)
type fenv = {
  arrays : (ikind * int list) M.t;   (* array params *)
  scalars : ikind M.t;               (* scalar params *)
  pointers : ikind M.t;              (* pointer-out params *)
  globals : (ikind * int64) M.t;     (* integer globals with init *)
}

let fenv_of (prog : program) (f : func) : fenv =
  let arrays, scalars, pointers =
    List.fold_left
      (fun (a, s, p) prm ->
        match prm.ptype with
        | Tarray (k, dims) -> M.add prm.pname (k, dims) a, s, p
        | Tint k -> a, M.add prm.pname k s, p
        | Tptr k -> a, s, M.add prm.pname k p
        | Tvoid -> a, s, p)
      (M.empty, M.empty, M.empty) f.params
  in
  let globals =
    List.fold_left
      (fun g gl ->
        match gl.gtype with
        | Tint k ->
          let init =
            match gl.ginit with
            | Some e -> Option.value (const_value e) ~default:0L
            | None -> 0L
          in
          M.add gl.gname (k, init) g
        | Tarray _ | Tptr _ | Tvoid -> g)
      M.empty prog.globals
  in
  { arrays; scalars; pointers; globals }

(* Collect and rewrite array accesses in the loop body. Returns the body with
   reads replaced by window scalars and writes replaced by Tmp scalars,
   plus the recorded accesses and (write-port expressions). *)
let rewrite_body ~indices ~(env : fenv) (body : stmt list) =
  let acc = { reads = []; writes = [] } in
  let out_counter = Roccc_util.Id_gen.create () in
  let outputs = ref [] in  (* (port, kind, array, offset) *)
  let record_read arr offset =
    if not (List.mem (arr, offset) acc.reads) then
      acc.reads <- acc.reads @ [ arr, offset ]
  in
  let replace_reads e =
    map_expr
      (fun e' ->
        match e' with
        | Index (a, idx) when M.mem a env.arrays -> (
          match offset_vector ~indices idx with
          | Some offset ->
            record_read a offset;
            Var (scalar_name a offset)
          | None ->
            errf "array access %s[...] is not affine in the loop indices" a)
        | _ -> e')
      e
  in
  let rec rw stmts = List.concat_map rw_stmt stmts
  and rw_stmt s =
    match s with
    | Sassign (Lindex (arr, idx), e) when M.mem arr env.arrays -> (
      match offset_vector ~indices idx with
      | Some offset ->
        acc.writes <- acc.writes @ [ arr, offset ];
        let kind, dims = M.find arr env.arrays in
        let port = Printf.sprintf "Tmp%d" (Roccc_util.Id_gen.fresh out_counter) in
        outputs := !outputs @ [ port, kind, `Array (arr, dims, offset) ];
        let e' = replace_reads e in
        (* Figure 3b keeps both: Tmp0 = expr; C[i] = Tmp0; *)
        [ Sdecl (Tint kind, port, None);
          Sassign (Lvar port, e');
          Sassign (Lindex (arr, idx), Var port) ]
      | None -> errf "array write %s[...] is not affine in the loop indices" arr)
    | Sassign (lv, e) -> [ Sassign (lv, replace_reads e) ]
    | Sdecl (t, n, init) -> [ Sdecl (t, n, Option.map replace_reads init) ]
    | Sif (c, th, el) -> [ Sif (replace_reads c, rw th, rw el) ]
    | Sfor _ -> errf "unexpected nested loop in innermost body"
    | Sreturn _ -> errf "return inside kernel loop is not supported"
    | Sexpr e -> [ Sexpr (replace_reads e) ]
  in
  let body' = rw body in
  body', acc, !outputs

(* Insert the load statements (A0 = A[i]; ...) at the top of the body. *)
let load_stmts ~indices ~(env : fenv) reads =
  List.map
    (fun (arr, offset) ->
      let kind, _dims = M.find arr env.arrays in
      let idx =
        if indices = [] then
          List.map (fun c -> Const (Int64.of_int c)) offset
        else
          List.map2
            (fun ix c ->
              if c = 0 then Var ix
              else if c > 0 then Binop (Add, Var ix, Const (Int64.of_int c))
              else Binop (Sub, Var ix, Const (Int64.of_int (-c))))
            indices offset
      in
      Sdecl (Tint kind, scalar_name arr offset, Some (Index (arr, idx))))
    reads

(* ------------------------------------------------------------------ *)
(* Kernel construction                                                 *)
(* ------------------------------------------------------------------ *)

(* Pure combinational kernel: no loop, no arrays. The dp function is the
   original function itself. *)
let pure_kernel (env : fenv) (f : func) : K.t =
  if not (M.is_empty env.arrays) then
    errf "function %s has array parameters but no loop" f.fname;
  let outputs =
    List.filter_map
      (fun p ->
        match p.ptype with
        | Tptr k ->
          Some { K.port = p.pname; port_kind = k;
                 target = K.Out_scalar { name = p.pname; kind = k } }
        | Tint _ | Tarray _ | Tvoid -> None)
      f.params
  in
  let scalar_inputs =
    List.filter
      (fun p -> match p.ptype with Tint _ -> true | _ -> false)
      f.params
  in
  { K.kname = f.fname;
    dp = { f with fname = f.fname ^ "_dp" };
    transformed = f;
    original = f;
    loops = [];
    windows = [];
    scalar_inputs;
    outputs;
    feedback = [] }

(* Fully-unrolled block kernel: no loop, but array accesses at constant
   positions (the shape full unrolling produces, e.g. an 8-point DCT). One
   "iteration" consumes the whole block and produces every output at once —
   hence the paper's 8-outputs-per-cycle DCT throughput. *)
let block_kernel (env : fenv) (f : func) : K.t =
  let body_no_ret =
    List.filter (function Sreturn None -> false | _ -> true) f.body
  in
  let body', acc, write_ports = rewrite_body ~indices:[] ~env body_no_ret in
  let loads = load_stmts ~indices:[] ~env acc.reads in
  let transformed = { f with body = loads @ body' } in
  let exposed = upward_exposed_reads body' in
  let scalar_inputs =
    List.filter
      (fun p ->
        match p.ptype with
        | Tint _ -> S.mem p.pname exposed
        | Tarray _ | Tptr _ | Tvoid -> false)
      f.params
  in
  let windows =
    let by_array = Hashtbl.create 4 in
    List.iter
      (fun (arr, offset) ->
        let cur = Option.value (Hashtbl.find_opt by_array arr) ~default:[] in
        Hashtbl.replace by_array arr (cur @ [ offset ]))
      acc.reads;
    Hashtbl.fold
      (fun arr offsets ws ->
        let kind, dims = M.find arr env.arrays in
        let offsets = List.sort_uniq compare offsets in
        { K.win_array = arr;
          win_kind = kind;
          win_dims = dims;
          win_offsets = offsets;
          win_scalars = List.map (fun o -> o, scalar_name arr o) offsets }
        :: ws)
      by_array []
    |> List.sort (fun a b -> String.compare a.K.win_array b.K.win_array)
  in
  let array_outputs =
    List.map
      (fun (port, kind, `Array (arr, dims, offset)) ->
        { K.port;
          port_kind = kind;
          target = K.Out_array { arr; kind; dims; offset } })
      write_ports
  in
  let pointer_outputs =
    List.filter_map
      (fun p ->
        match p.ptype with
        | Tptr k ->
          Some { K.port = p.pname; port_kind = k;
                 target = K.Out_scalar { name = p.pname; kind = k } }
        | Tint _ | Tarray _ | Tvoid -> None)
      f.params
  in
  let outputs = array_outputs @ pointer_outputs in
  let is_array_port n =
    List.exists (fun o -> String.equal o.K.port n) array_outputs
  in
  let rec to_dp_stmts stmts =
    List.concat_map
      (fun s ->
        match s with
        | Sassign (Lindex _, _) -> []
        | Sdecl (Tint _, n, None) when is_array_port n -> []
        | Sassign (Lvar n, e) when is_array_port n -> [ Sassign (Lderef n, e) ]
        | Sif (c, th, el) -> [ Sif (c, to_dp_stmts th, to_dp_stmts el) ]
        | s -> [ s ])
      stmts
  in
  let window_params =
    List.concat_map
      (fun w ->
        List.map
          (fun (_, name) -> { pname = name; ptype = Tint w.K.win_kind })
          w.K.win_scalars)
      windows
  in
  let ptr_params =
    List.filter (fun p -> match p.ptype with Tptr _ -> true | _ -> false)
      f.params
  in
  let tmp_params =
    List.map
      (fun o -> { pname = o.K.port; ptype = Tptr o.K.port_kind })
      array_outputs
  in
  let dp =
    { fname = f.fname ^ "_dp";
      ret = Tvoid;
      params = window_params @ scalar_inputs @ ptr_params @ tmp_params;
      body = to_dp_stmts body' }
  in
  { K.kname = f.fname;
    dp;
    transformed;
    original = f;
    loops = [];
    windows;
    scalar_inputs;
    outputs;
    feedback = [] }

(* Main entry: turn a checked, inlined, folded function into a kernel. *)
let run (prog : program) (f : func) : K.t =
  let env = fenv_of prog f in
  let pre, rest = split_body f.body in
  match rest with
  | None ->
    if M.is_empty env.arrays then
      (* No loop, no arrays: a purely combinational data path. *)
      pure_kernel env f
    else block_kernel env f
  | Some (nest, post) ->
    (* The kernel shape is: constant scalar setup, ONE loop nest, scalar
       exports. Anything else before/after the nest would be silently
       dropped from the hardware — reject it loudly instead. *)
    List.iter
      (fun s ->
        match s with
        | Sdecl ((Tint _ | Tarray _), _, _) -> ()
        | Sassign (Lvar _, Const _) -> ()
        | Sassign _ | Sdecl _ | Sif _ | Sfor _ | Sreturn _ | Sexpr _ ->
          errf
            "unsupported statement before the kernel loop (only declarations \
             and constant scalar initializations may precede it)")
      pre;
    List.iter
      (fun s ->
        match s with
        | Sassign (Lderef _, Var _) -> ()
        | Sreturn None -> ()
        | Sfor _ ->
          errf
            "a second loop follows the kernel loop — fuse the loops or \
             compile them as separate kernels"
        | Sassign _ | Sdecl _ | Sif _ | Sreturn (Some _) | Sexpr _ ->
          errf
            "unsupported statement after the kernel loop (only scalar \
             exports '*out = var;' may follow it)")
      post;
    let indices = List.map (fun h -> h.index) nest.dims in
    let loop_dims = List.map normalize_header nest.dims in
    let body', acc, write_ports = rewrite_body ~indices ~env nest.body in
    let loads = load_stmts ~indices ~env acc.reads in
    let new_body = loads @ body' in
    (* ---- transformed whole function (Figure 3b) ---- *)
    let rebuild_nest body =
      List.fold_right (fun h inner -> [ Sfor (h, inner) ]) nest.dims body
    in
    let transformed =
      { f with body = pre @ rebuild_nest new_body @ post }
    in
    (* ---- classify scalars ---- *)
    let exposed = upward_exposed_reads body' in
    let written = written_scalars body' in
    let declared_in_body = declared_scalars body' in
    let index_set = S.of_list indices in
    (* feedback: read-before-write in the body, defined outside the body *)
    let feedback_names =
      S.elements
        (S.filter
           (fun x ->
             S.mem x written
             && (not (S.mem x declared_in_body))
             && not (S.mem x index_set))
           exposed)
    in
    let feedback =
      List.map
        (fun x ->
          match M.find_opt x env.globals with
          | Some (k, init) -> { K.fb_name = x; fb_kind = k; fb_init = init }
          | None -> (
            (* local initialized before the loop: find constant init *)
            let kind =
              match
                List.find_map
                  (function
                    | Sdecl (Tint k, n, _) when String.equal n x -> Some k
                    | _ -> None)
                  pre
              with
              | Some k -> k
              | None -> (
                match M.find_opt x env.scalars with
                | Some k -> k
                | None -> int32_kind)
            in
            let init =
              List.fold_left
                (fun acc s ->
                  match s with
                  | Sdecl (_, n, Some e) when String.equal n x -> const_value e
                  | Sassign (Lvar n, e) when String.equal n x -> const_value e
                  | _ -> acc)
                None pre
            in
            match init with
            | Some v -> { K.fb_name = x; fb_kind = kind; fb_init = v }
            | None ->
              errf
                "loop-carried scalar %s needs a constant initializer before \
                 the loop"
                x))
        feedback_names
    in
    let feedback_set = S.of_list feedback_names in
    (* live-in scalars: exposed reads that are parameters (not feedback) *)
    let scalar_inputs =
      List.filter
        (fun p ->
          match p.ptype with
          | Tint _ -> S.mem p.pname exposed && not (S.mem p.pname feedback_set)
          | Tarray _ | Tptr _ | Tvoid -> false)
        f.params
    in
    (* ---- windows ---- *)
    let windows =
      let by_array = Hashtbl.create 4 in
      List.iter
        (fun (arr, offset) ->
          let cur = Option.value (Hashtbl.find_opt by_array arr) ~default:[] in
          Hashtbl.replace by_array arr (cur @ [ offset ]))
        acc.reads;
      Hashtbl.fold
        (fun arr offsets ws ->
          let kind, dims = M.find arr env.arrays in
          let offsets = List.sort_uniq compare offsets in
          { K.win_array = arr;
            win_kind = kind;
            win_dims = dims;
            win_offsets = offsets;
            win_scalars = List.map (fun o -> o, scalar_name arr o) offsets }
          :: ws)
        by_array []
      |> List.sort (fun a b -> String.compare a.K.win_array b.K.win_array)
    in
    (* ---- outputs ---- *)
    let array_outputs =
      List.map
        (fun (port, kind, `Array (arr, dims, offset)) ->
          { K.port;
            port_kind = kind;
            target = K.Out_array { arr; kind; dims; offset } })
        write_ports
    in
    (* scalar outputs: post-loop "*out = v" where v is loop-written *)
    let scalar_outputs =
      List.filter_map
        (fun s ->
          match s with
          | Sassign (Lderef out, Var v) when S.mem v written ->
            let kind =
              match M.find_opt out env.pointers with
              | Some k -> k
              | None -> int32_kind
            in
            Some (out, v, kind)
          | _ -> None)
        post
    in
    let out_counter =
      Roccc_util.Id_gen.create ~start:(List.length array_outputs) ()
    in
    let scalar_output_ports =
      List.map
        (fun (out, v, kind) ->
          let port = Printf.sprintf "Tmp%d" (Roccc_util.Id_gen.fresh out_counter) in
          ( { K.port; port_kind = kind;
              target = K.Out_scalar { name = out; kind } },
            (port, v) ))
        scalar_outputs
    in
    let outputs = array_outputs @ List.map fst scalar_output_ports in
    (* ---- data-path function (Figure 3c / 4c) ---- *)
    (* dp body: the rewritten computation, minus loads (they become params),
       with array stores dropped and output temps written through pointers;
       plus per-iteration exports of scalar outputs. *)
    let is_array_port n =
      List.exists (fun o -> String.equal o.K.port n) array_outputs
    in
    let rec to_dp_stmts stmts =
      List.concat_map
        (fun s ->
          match s with
          | Sassign (Lindex _, _) -> []  (* store handled by buffer *)
          | Sdecl (Tint _, n, None) when is_array_port n -> []
          | Sassign (Lvar n, e) when is_array_port n ->
            [ Sassign (Lderef n, e) ]
          | Sif (c, th, el) -> [ Sif (c, to_dp_stmts th, to_dp_stmts el) ]
          | s -> [ s ])
        stmts
    in
    let dp_body =
      to_dp_stmts body'
      @ List.map
          (fun (_, (port, v)) -> Sassign (Lderef port, Var v))
          scalar_output_ports
    in
    let window_params =
      List.concat_map
        (fun w ->
          List.map
            (fun (_, name) -> { pname = name; ptype = Tint w.K.win_kind })
            w.K.win_scalars)
        windows
    in
    let out_params =
      List.map (fun o -> { pname = o.K.port; ptype = Tptr o.K.port_kind }) outputs
    in
    let dp =
      { fname = f.fname ^ "_dp";
        ret = Tvoid;
        params = window_params @ scalar_inputs @ out_params;
        body = dp_body }
    in
    { K.kname = f.fname;
      dp;
      transformed;
      original = f;
      loops = loop_dims;
      windows;
      scalar_inputs;
      outputs;
      feedback }
