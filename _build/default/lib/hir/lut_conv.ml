(** Lookup-table support (paper §2, §4.2.4): function calls "whenever
    feasible made into a lookup table"; a LUT instruction instantiates a
    lookup-table component — a pre-existing one (e.g. cos) or a ROM IP with a
    text initialization file. *)

open Roccc_cfront.Ast

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(** A materialized lookup table: [contents.(x)] is the output for input x
    (inputs are treated as unsigned addresses). *)
type table = {
  lut_name : string;
  in_kind : ikind;
  out_kind : ikind;
  contents : int64 array;
  preexisting : bool;
      (** true for library tables like cos — the code generator instantiates
          the vendor component rather than a generic ROM (paper §5: "ROCCC-
          generated VHDL code instantiates Xilinx IP cores" for LUTs). *)
}

let size (t : table) = Array.length t.contents

let signature (t : table) : string * Roccc_cfront.Semant.lut_signature =
  t.lut_name, { Roccc_cfront.Semant.lut_in = t.in_kind; lut_out = t.out_kind }

let lookup (t : table) (x : int64) : int64 =
  let n = Array.length t.contents in
  let i = Int64.to_int (Roccc_util.Bits.truncate_unsigned t.in_kind.bits x) in
  if i < 0 || i >= n then errf "lookup table %s: index %d out of range" t.lut_name i
  else t.contents.(i)

let interp_binding (t : table) : string * (int64 -> int64) =
  t.lut_name, lookup t

(** The standard cosine table: input is a phase in [0, 2^in_bits) covering a
    full period; output is cos scaled to a signed [out_bits] value. *)
let cos_table ?(name = "cos") ~in_bits ~out_bits () : table =
  let n = 1 lsl in_bits in
  let amplitude = float_of_int ((1 lsl (out_bits - 1)) - 1) in
  let contents =
    Array.init n (fun x ->
        let angle = 2.0 *. Float.pi *. float_of_int x /. float_of_int n in
        let v = Float.round (cos angle *. amplitude) in
        Roccc_util.Bits.truncate_signed out_bits (Int64.of_float v))
  in
  { lut_name = name;
    in_kind = { signed = false; bits = in_bits };
    out_kind = { signed = true; bits = out_bits };
    contents;
    preexisting = true }

(** Arbitrary user table from explicit contents (e.g. loaded from a text
    initialization file). *)
let of_contents ~name ~in_kind ~out_kind contents : table =
  let expected = 1 lsl in_kind.bits in
  if Array.length contents <> expected then
    errf "table %s: %d entries given, %d expected" name (Array.length contents)
      expected;
  { lut_name = name; in_kind; out_kind;
    contents = Array.map (Roccc_util.Bits.truncate ~signed:out_kind.signed out_kind.bits) contents;
    preexisting = false }

(** Parse a plain-text ROM initialization file: one integer per line
    (decimal, or hex with 0x), '#' comments allowed. "The only thing the
    user needs to do is to edit a pure text initialization file" (§4.2.4). *)
let of_init_text ~name ~in_kind ~out_kind (text : string) : table =
  let lines = String.split_on_char '\n' text in
  let values =
    List.filter_map
      (fun line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then None
        else
          match Int64.of_string_opt line with
          | Some v -> Some v
          | None -> errf "table %s: bad init line %S" name line)
      lines
  in
  of_contents ~name ~in_kind ~out_kind (Array.of_list values)

(** Render a table back to an initialization file. *)
let to_init_text (t : table) : string =
  let buf = Buffer.create (size t * 8) in
  Buffer.add_string buf
    (Printf.sprintf "# %s: %d entries, %d-bit %s output\n" t.lut_name (size t)
       t.out_kind.bits
       (if t.out_kind.signed then "signed" else "unsigned"));
  Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%Ld\n" v)) t.contents;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Function -> table conversion                                        *)
(* ------------------------------------------------------------------ *)

let max_table_bits = 16

(** Convert a pure single-scalar-argument function into a table by
    exhaustive evaluation over its input domain. Feasible when the input is
    at most {!max_table_bits} wide and the function touches no arrays,
    globals or pointers. *)
let from_function (prog : program) (f : func) : table =
  let in_kind, pname =
    match f.params with
    | [ { pname; ptype = Tint k } ] -> k, pname
    | _ -> errf "%s: LUT conversion needs exactly one scalar parameter" f.fname
  in
  let out_kind =
    match f.ret with
    | Tint k -> k
    | Tvoid | Tarray _ | Tptr _ ->
      errf "%s: LUT conversion needs an integer return" f.fname
  in
  if in_kind.bits > max_table_bits then
    errf "%s: input width %d too large for LUT conversion (max %d)" f.fname
      in_kind.bits max_table_bits;
  (* Purity: no array/pointer access, no globals, no intrinsics. *)
  let impure =
    fold_stmts
      (fun acc s ->
        acc
        ||
        match s with
        | Sassign ((Lindex _ | Lderef _), _) -> true
        | Sexpr (Call (g, _)) when is_intrinsic g -> true
        | _ -> false)
      (fun acc e ->
        acc
        ||
        match e with
        | Index _ | Deref _ -> true
        | Call (g, _) -> is_intrinsic g
        | _ -> false)
      false f.body
  in
  if impure then errf "%s: not pure, cannot convert to a LUT" f.fname;
  let n = 1 lsl in_kind.bits in
  let rt = Roccc_cfront.Interp.create prog in
  let contents =
    Array.init n (fun x ->
        let arg =
          (* Address x maps to the signed value it encodes when signed. *)
          Roccc_util.Bits.truncate ~signed:in_kind.signed in_kind.bits
            (Int64.of_int x)
        in
        let outcome =
          Roccc_cfront.Interp.run rt f.fname ~scalars:[ pname, arg ]
        in
        match outcome.Roccc_cfront.Interp.return_value with
        | Some v ->
          Roccc_util.Bits.truncate ~signed:out_kind.signed out_kind.bits v
        | None -> errf "%s: no return value during LUT conversion" f.fname)
  in
  { lut_name = f.fname; in_kind; out_kind; contents; preexisting = false }

(** Replace calls to [converted] functions by calls to their table name (a
    registered LUT intrinsic); the functions themselves can then be dropped
    from the program. Returns the rewritten program. *)
let convert_calls (prog : program) (tables : table list) : program =
  let names = List.map (fun t -> t.lut_name) tables in
  let rewrite e =
    match e with
    | Call (g, args) when List.mem g names -> Call (g, args)
    | e -> e
  in
  let funcs =
    List.filter_map
      (fun f ->
        if List.mem f.fname names then None
        else Some { f with body = map_stmts rewrite f.body })
      prog.funcs
  in
  { prog with funcs }
