(** Lookup-table support (paper §2, §4.2.4): calls "whenever feasible made
    into a lookup table"; LUT instructions instantiate either pre-existing
    library tables (cos) or ROM IPs initialized from text files. *)

exception Error of string

type table = {
  lut_name : string;
  in_kind : Roccc_cfront.Ast.ikind;
  out_kind : Roccc_cfront.Ast.ikind;
  contents : int64 array;
  preexisting : bool;
      (** library tables (cos/sin) store a half wave and cost less area *)
}

val size : table -> int

val signature : table -> string * Roccc_cfront.Semant.lut_signature
val lookup : table -> int64 -> int64
val interp_binding : table -> string * (int64 -> int64)

val cos_table : ?name:string -> in_bits:int -> out_bits:int -> unit -> table
(** Full-period cosine, signed output scaled to [out_bits]. *)

val of_contents :
  name:string ->
  in_kind:Roccc_cfront.Ast.ikind ->
  out_kind:Roccc_cfront.Ast.ikind ->
  int64 array ->
  table

val of_init_text :
  name:string ->
  in_kind:Roccc_cfront.Ast.ikind ->
  out_kind:Roccc_cfront.Ast.ikind ->
  string ->
  table
(** Parse a text initialization file: one integer per line, '#' comments. *)

val to_init_text : table -> string

val max_table_bits : int

val from_function : Roccc_cfront.Ast.program -> Roccc_cfront.Ast.func -> table
(** Tabulate a pure single-scalar-argument function by exhaustive
    evaluation; raises {!Error} beyond {!max_table_bits} input bits or for
    impure bodies. *)

val convert_calls : Roccc_cfront.Ast.program -> table list -> Roccc_cfront.Ast.program
(** Drop converted function definitions; calls resolve to the tables. *)
