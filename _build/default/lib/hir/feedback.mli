(** Feedback annotation (paper §4.2.1, Figure 4): loop-carried scalars are
    rewritten so reads of the previous iteration's value go through
    [ROCCC_load_prev] and one unconditional [ROCCC_store2next] at the end of
    the body stores the (possibly phi-merged) new value. The store must be
    unconditional: the hardware feedback latch loads every cycle. *)

exception Error of string

val annotate : Kernel.t -> Kernel.t
(** Rewrite the kernel's data-path function for every detected feedback
    variable (no-op without feedback). *)

val validate : Kernel.t -> unit
(** Check that each feedback variable has exactly one unconditional
    store2next at the top level of the dp body. Raises {!Error}. *)
