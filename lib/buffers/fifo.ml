(** Bounded FIFO channel between two datapath engines (process-network
    mode). The channel is the hardware FIFO the VHDL top level
    instantiates between a producer's output port and a consumer's
    smart buffer: a fixed [depth], single push/pop per element, and
    occupancy counters the simulator uses to model backpressure
    (full -> producer stalls, empty -> consumer stalls).

    Instrumented with a high-water mark and stall counters so the
    sizing rule in [Roccc_net] can be checked against what actually
    happened during co-simulation. *)

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type t = {
  name : string;
  depth : int;                       (** capacity in elements *)
  buf : int64 Queue.t;
  mutable pushed : int;              (** total elements ever pushed *)
  mutable popped : int;              (** total elements ever popped *)
  mutable high_water : int;          (** max occupancy observed *)
  mutable full_stalls : int;         (** producer cycles blocked on space *)
  mutable empty_stalls : int;        (** consumer cycles blocked on data *)
}

let create ~(name : string) ~(depth : int) : t =
  if depth < 1 then errf "fifo %s: depth must be >= 1 (got %d)" name depth;
  { name;
    depth;
    buf = Queue.create ();
    pushed = 0;
    popped = 0;
    high_water = 0;
    full_stalls = 0;
    empty_stalls = 0 }

let length (f : t) : int = Queue.length f.buf
let space (f : t) : int = f.depth - Queue.length f.buf
let is_empty (f : t) : bool = Queue.is_empty f.buf
let is_full (f : t) : bool = Queue.length f.buf >= f.depth

(** Push one element; the engine must check [space] first — pushing
    into a full channel is a simulator bug, not backpressure. *)
let push (f : t) (v : int64) : unit =
  if is_full f then
    errf "fifo %s: push into a full channel (depth %d)" f.name f.depth;
  Queue.add v f.buf;
  f.pushed <- f.pushed + 1;
  if Queue.length f.buf > f.high_water then
    f.high_water <- Queue.length f.buf

let pop (f : t) : int64 option =
  if Queue.is_empty f.buf then None
  else begin
    let v = Queue.pop f.buf in
    f.popped <- f.popped + 1;
    Some v
  end

(** Record a cycle in which the producer wanted to launch but the
    channel had no credit for the results. *)
let note_full_stall (f : t) : unit = f.full_stalls <- f.full_stalls + 1

(** Record a cycle in which the consumer wanted data but the channel
    was empty. *)
let note_empty_stall (f : t) : unit = f.empty_stalls <- f.empty_stalls + 1
