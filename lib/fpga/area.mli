(** Virtex-II area/clock estimation — the stand-in for the synthesis tool in
    Table 1. Slices are derived from per-instruction LUT costs at the
    inferred signal widths, pipeline/feedback registers, smart-buffer
    storage, controllers and distributed ROMs, with an imperfect-packing
    factor. *)

type estimate = {
  luts : int;
  flip_flops : int;
  rom_luts : int;  (** distributed-ROM LUTs for lookup tables *)
  slices : int;  (** full system: data path + buffers + controllers *)
  operator_slices : int;
      (** data path + registers + ROMs only — comparable to an operator IP
          core without a memory-side wrapper *)
  clock_mhz : float;
  breakdown : (string * int) list;  (** component → slices *)
}

val slices_of : luts:int -> flip_flops:int -> int
(** Slice count for a LUT/FF pair under the Virtex-II packing model (two
    4-LUTs and two FFs per slice, with a packing-inefficiency factor). *)

val estimate :
  ?luts:Roccc_hir.Lut_conv.table list ->
  ?buffers:Roccc_buffers.Smart_buffer.config list ->
  Roccc_datapath.Pipeline.t ->
  estimate
(** Full-system estimate for a pipelined data path with its lookup tables
    and smart buffers. *)

val quick_estimate : Roccc_datapath.Graph.t -> int
(** The fast compile-time estimator of the paper's reference [13]: an
    O(#instructions) slice count used during unrolling decisions; the bench
    verifies it runs in well under a millisecond and tracks [estimate]. *)

val quick_clock_mhz :
  ?stage_budget:int ->
  ?decomp:Roccc_datapath.Delay.decomp ->
  target_ns:float ->
  Roccc_datapath.Graph.t ->
  Roccc_datapath.Widths.t ->
  float
(** Estimate-only clock costing for the autotuner's pruning tier: the
    clock achievable at a stage budget of [target_ns], priced from the
    worst single-instruction delay without running pipelining. Greedy
    chunking never builds a stage slower than max(target, worst single
    operator), so this is a conservative (pessimistic) clock bound. *)

val xc2v2000_slices : int
(** Slice capacity of the paper's target device. *)

val utilization : estimate -> float
val fits : estimate -> bool

type power_estimate = {
  dynamic_mw : float;
  static_mw : float;
  total_mw : float;
}

val power : ?toggle_rate:float -> estimate -> power_estimate
(** First-order Virtex-II power model (Figure 1 lists power as the third
    compile-time estimate): dynamic power scales with slices x clock x
    toggle rate (default 0.25); static covers leakage plus quiescent. *)

val describe : estimate -> string
(** Human-readable summary with the per-component breakdown. *)
