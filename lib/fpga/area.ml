(** Virtex-II area estimation (the paper's experimental substrate: a Xilinx
    xc2v2000-5; area reported in slices). One slice holds two 4-input LUTs
    and two flip-flops. This module plays the role of the synthesis tool in
    Table 1: it derives LUT/FF counts from the compiled data path (at the
    *inferred* signal widths) and converts them to slices with a packing
    factor.

    It also implements the compile-time area estimator from the paper's
    reference [13] — "in less than one millisecond and within 5% accuracy
    compile time area estimation can be achieved" — which the bench harness
    times. *)

module Instr = Roccc_vm.Instr
module Graph = Roccc_datapath.Graph
module Widths = Roccc_datapath.Widths
module Pipeline = Roccc_datapath.Pipeline
module Smart_buffer = Roccc_buffers.Smart_buffer
module Lut_conv = Roccc_hir.Lut_conv

type estimate = {
  luts : int;
  flip_flops : int;
  rom_luts : int;     (** distributed-ROM LUTs for lookup tables *)
  slices : int;       (** full system: data path + buffers + controllers *)
  operator_slices : int;
      (** data path + registers + ROMs only — comparable to an operator IP
          core that has no memory-side wrapper *)
  clock_mhz : float;
  breakdown : (string * int) list;  (** component -> slices *)
}

(* Imperfect packing: LUTs and FFs rarely share slices perfectly. *)
let packing_factor = 1.18

let slices_of ~luts ~flip_flops =
  let ideal = float_of_int (max luts flip_flops) /. 2.0 in
  int_of_float (Float.ceil (ideal *. packing_factor))

(* Constant operand detection shared with the delay model. *)
let constant_sources = Graph.constant_values

let popcount64 (v : int64) : int =
  let rec loop v acc =
    if Int64.equal v 0L then acc
    else loop (Int64.shift_right_logical v 1)
        (acc + Int64.to_int (Int64.logand v 1L))
  in
  loop (Int64.abs v) 0

(** LUT cost of one instruction at the given operand widths. *)
let instr_luts (consts : (Instr.vreg, int64) Hashtbl.t) (i : Instr.instr)
    (width_of : Instr.vreg -> int) : int =
  let src n = List.nth i.Instr.srcs n in
  let w n = width_of (src n) in
  let wmax () =
    match i.Instr.srcs with
    | [] -> 1
    | srcs -> List.fold_left (fun acc r -> max acc (width_of r)) 1 srcs
  in
  match i.Instr.op with
  | Instr.Add | Instr.Sub | Instr.Neg -> wmax ()
  | Instr.Mul -> (
    (* constant multiplier: one adder row per set bit beyond the first *)
    let const_of n = Hashtbl.find_opt consts (src n) in
    match const_of 0, const_of 1 with
    | Some c, _ | _, Some c ->
      let rows = max 0 (popcount64 c - 1) in
      rows * (w 0 + w 1)
    | None, None ->
      if w 0 + w 1 > 32 then
        (* wide multiply is the decomposed partial-product / compression
           tree, far below the naive w0*w1 LUT array *)
        Roccc_ip_wide.Wide.mul_luts ~width:(min 64 (w 0 + w 1))
      else w 0 * w 1)
  | Instr.Div | Instr.Rem -> (
    let power_of_two c =
      Int64.compare c 0L > 0
      && Int64.equal (Int64.logand c (Int64.sub c 1L)) 0L
    in
    match Hashtbl.find_opt consts (src 1) with
    | Some c when power_of_two c ->
      (* shift plus rounding-correction adder *)
      wmax ()
    | _ ->
      (* unrolled restoring divider: one conditional subtract per bit *)
      let wd = wmax () in
      wd * wd)
  | Instr.Shl | Instr.Shr -> (
    (* constant shift is wiring; variable shift is a barrel shifter *)
    match Hashtbl.find_opt consts (src 1) with
    | Some _ -> 0
    | None -> w 0 * max 1 (Roccc_util.Bits.clog2 (max 2 (w 0))))
  | Instr.Band | Instr.Bor | Instr.Bxor -> (
    (* a constant mask is wiring: only non-constant bit pairs need LUTs *)
    match Hashtbl.find_opt consts (src 0), Hashtbl.find_opt consts (src 1) with
    | Some _, _ | _, Some _ -> 0
    | None, None -> wmax ())
  | Instr.Bnot -> 0  (* absorbed into downstream logic *)
  | Instr.Slt | Instr.Sle | Instr.Sgt | Instr.Sge -> wmax ()
  | Instr.Seq | Instr.Sne -> wmax ()
  | Instr.Land | Instr.Lor | Instr.Lnot -> 1
  | Instr.Mov | Instr.Cvt | Instr.Ldc _ -> 0
  | Instr.Mux -> wmax ()
  | Instr.Lpr _ | Instr.Snx _ -> 0  (* register, counted as FFs *)
  | Instr.Lut _ -> 0                (* counted via rom_luts *)

(** Distributed-ROM LUT count: a 4-LUT holds 16 bits of ROM. Pre-existing
    library tables (cos/sin) store only a half wave and mirror the rest —
    "this cos/sin lookup table stores only half wave, which is one of the
    reasons [it] utilizes less area" (paper §5) — plus quarter-wave folding
    and the mirror logic. *)
let rom_luts_of (t : Lut_conv.table) : int =
  let entries = Lut_conv.size t in
  let bits = entries * t.Lut_conv.out_kind.Roccc_cfront.Ast.bits in
  let full = (bits + 15) / 16 in
  if t.Lut_conv.preexisting then
    (full / 4) + (2 * t.Lut_conv.out_kind.Roccc_cfront.Ast.bits)
  else full

(** Area of a compiled kernel: data path + pipeline latches + feedback
    registers + smart buffers + controllers + ROMs. *)
let estimate ?(luts = []) ?(buffers = []) (p : Pipeline.t) : estimate =
  let dp = p.Pipeline.dp in
  let widths = p.Pipeline.widths in
  let consts = constant_sources dp in
  let width_of r =
    try Widths.width widths r with _ -> 32
  in
  let dp_luts =
    List.fold_left
      (fun acc (n : Graph.node) ->
        List.fold_left
          (fun acc i -> acc + instr_luts consts i width_of)
          acc n.Graph.instrs)
      0 dp.Graph.nodes
  in
  (* pipeline flip-flops come from the pipeliner's own latch accounting —
     the area model does not re-derive register placement *)
  let latch_ffs = Pipeline.register_bits p in
  let buffer_bits =
    List.fold_left
      (fun acc cfg -> acc + Smart_buffer.capacity_bits cfg)
      0 buffers
  in
  (* buffer steering logic: one mux layer over the window elements *)
  let buffer_luts =
    List.fold_left
      (fun acc (cfg : Smart_buffer.config) ->
        acc
        + (List.length cfg.Smart_buffer.window_offsets
           * cfg.Smart_buffer.element_bits / 2))
      0 buffers
  in
  (* controllers: address counters + FSM *)
  let controller_slices = if buffers = [] then 4 else 12 + (6 * List.length buffers) in
  let table_luts = List.fold_left (fun acc t -> acc + rom_luts_of t) 0 luts in
  let total_luts = dp_luts + buffer_luts + table_luts in
  let total_ffs = latch_ffs + buffer_bits in
  let logic_slices = slices_of ~luts:total_luts ~flip_flops:total_ffs in
  let slices = logic_slices + controller_slices in
  let operator_slices =
    slices_of ~luts:(dp_luts + table_luts) ~flip_flops:latch_ffs
  in
  { luts = total_luts;
    flip_flops = total_ffs;
    rom_luts = table_luts;
    slices;
    operator_slices;
    clock_mhz = p.Pipeline.clock_mhz;
    breakdown =
      [ "datapath-logic", slices_of ~luts:dp_luts ~flip_flops:0;
        "pipeline-registers", slices_of ~luts:0 ~flip_flops:latch_ffs;
        "smart-buffers",
        slices_of ~luts:buffer_luts ~flip_flops:buffer_bits;
        "controllers", controller_slices;
        "lookup-tables", slices_of ~luts:table_luts ~flip_flops:0 ] }

(* ------------------------------------------------------------------ *)
(* Fast compile-time estimator (paper reference [13])                  *)
(* ------------------------------------------------------------------ *)

(** O(#instructions) area estimate used during loop-unrolling decisions —
    one width-inference pass plus per-instruction LUT costs, without the
    pipeline construction the full flow performs. The bench verifies it
    runs in well under a millisecond and tracks {!estimate} closely. *)
let quick_estimate (dp : Graph.t) : int =
  let consts = constant_sources dp in
  let widths = Widths.infer dp in
  let width_of r = try Widths.width widths r with _ -> 32 in
  let luts =
    List.fold_left
      (fun acc (n : Graph.node) ->
        List.fold_left
          (fun acc (i : Instr.instr) -> acc + instr_luts consts i width_of)
          acc n.Graph.instrs)
      0 dp.Graph.nodes
  in
  (* assume roughly one latch level of the non-constant signals *)
  let level_bits =
    List.fold_left
      (fun acc (n : Graph.node) ->
        acc
        + List.fold_left
            (fun acc (i : Instr.instr) ->
              match i.Instr.dst with
              | Some d when not (Hashtbl.mem consts d) -> acc + width_of d
              | Some _ | None -> acc)
            0 n.Graph.instrs)
      0 dp.Graph.nodes
  in
  slices_of ~luts ~flip_flops:(level_bits / 2)

(* Estimate-only clock costing for the autotuner's pruning tier: the
   stage delay of a greedy chunking is bounded by the target unless a
   single operator is slower than the whole budget, so the achievable
   clock is priced from max(target, worst single-instruction delay)
   without running pipelining at all. *)
let quick_clock_mhz ?stage_budget ?decomp ~(target_ns : float) (dp : Graph.t)
    (widths : Widths.t) : float =
  let worst =
    Roccc_datapath.Timing.worst_instr_delay_ns ?stage_budget ?decomp dp widths
  in
  Roccc_datapath.Delay.clock_mhz_of_stage_delay (Float.max target_ns worst)

(** The paper's target device: Xilinx Virtex-II xc2v2000-5. *)
let xc2v2000_slices = 10752

(** Device utilization fraction on the paper's part. *)
let utilization (e : estimate) : float =
  float_of_int e.slices /. float_of_int xc2v2000_slices

let fits (e : estimate) : bool = e.slices <= xc2v2000_slices

(* ------------------------------------------------------------------ *)
(* Power estimation (the third box of Figure 1's estimation trio)      *)
(* ------------------------------------------------------------------ *)

type power_estimate = {
  dynamic_mw : float;  (** switching power at the achieved clock *)
  static_mw : float;   (** leakage + quiescent *)
  total_mw : float;
}

(* Virtex-II (150 nm, 1.5 V) coarse coefficients: ~12 uW per active slice
   per MHz at full toggle, ~0.15 mW leakage per 100 slices plus a fixed
   ~30 mW quiescent draw for clocking resources. *)
let dynamic_uw_per_slice_mhz = 12.0
let leakage_mw_per_slice = 0.0015
let quiescent_mw = 30.0

(** First-order power model: dynamic power scales with occupied slices,
    achieved clock and the design's average toggle rate (0..1). *)
let power ?(toggle_rate = 0.25) (e : estimate) : power_estimate =
  let dynamic_mw =
    dynamic_uw_per_slice_mhz *. float_of_int e.slices *. e.clock_mhz
    *. toggle_rate /. 1000.0
  in
  let static_mw = quiescent_mw +. (leakage_mw_per_slice *. float_of_int e.slices) in
  { dynamic_mw; static_mw; total_mw = dynamic_mw +. static_mw }

let describe (e : estimate) : string =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "area: %d slices (%d LUTs, %d FFs), clock %.1f MHz\n"
       e.slices e.luts e.flip_flops e.clock_mhz);
  List.iter
    (fun (name, s) ->
      Buffer.add_string buf (Printf.sprintf "  %-20s %5d slices\n" name s))
    e.breakdown;
  Buffer.contents buf
