(** Decomposed wide-arithmetic operators (ROADMAP: the modular-math
    workload class). Every VDF-contest design pipelines its huge modular
    squarer out of the same three ingredients: partial products feeding a
    3:2 carry-save compression tree, a carry-save accumulator that defers
    carry resolution, and a block-pipelined carry-propagate adder. This
    module carries both halves of that story:

    - structural cost models (stage count and total combinational delay of
      each decomposition) that {!Roccc_datapath.Delay} turns into pinned
      multi-stage regions, parameterized on the fabric constants so this
      library stays dependency-free; and
    - exact behavioural models over [int64] (all arithmetic mod 2^64) that
      the data-path evaluator co-runs against the plain VM semantics, so
      the differential checker exercises the decomposition itself.

    The behavioural identities are exact: [csa_mul a b = Int64.mul a b] and
    [block_add a b = Int64.add a b] for every pair of operands — the
    decompositions reassociate, they never approximate. *)

(** Decomposition choice for a wide multiplier. [Csa] compresses the
    partial-product rows with a 3:2 carry-save tree before one final
    carry-propagate add (the VDF squarer shape); [Addtree] sums the rows
    pairwise in a binary adder tree (simpler, longer carry chains per
    level). *)
type decomp = Csa | Addtree

let decomp_name = function Csa -> "csa" | Addtree -> "addtree"

let decomp_of_string = function
  | "csa" -> Some Csa
  | "addtree" -> Some Addtree
  | _ -> None

let all_decomps = [ Csa; Addtree ]

(* ------------------------------------------------------------------ *)
(* Decomposition geometry                                              *)
(* ------------------------------------------------------------------ *)

(** Digit width the multiplier is split into — the DSP-tile-ish granule
    every partial product fits. *)
let digit_bits = 18

(** Block width of the pipelined carry-propagate adder: one stage per
    32-bit carry block. *)
let block_bits = 32

let cdiv a b = (a + b - 1) / b

(** Digits an operand of [width] bits splits into. *)
let digits width = max 1 (cdiv width digit_bits)

(** Partial-product rows of a [width] x [width] multiply after digit
    splitting. *)
let pp_rows width =
  let d = digits width in
  d * d

(** 3:2 compression levels reducing [rows] addends to two (Dadda
    recurrence: each level turns every full group of three rows into
    two). *)
let compress_levels rows =
  let rec loop n acc =
    if n <= 2 then acc else loop (n - (n / 3)) (acc + 1)
  in
  loop rows 0

(** Carry blocks of a [width]-bit pipelined adder. *)
let add_blocks width = max 1 (cdiv width block_bits)

(* ------------------------------------------------------------------ *)
(* Structural cost models                                               *)
(* ------------------------------------------------------------------ *)

(* Each cost is (stages, total_ns): the natural pipeline depth of the
   decomposition and the total combinational delay spread across it. The
   fabric constants (one LUT level incl. routing, carry chain per bit)
   come from the caller so Delay stays the single calibration point. *)

(** Block-pipelined carry-propagate add: one stage per carry block, each
    stage a [block_bits]-long carry chain. *)
let add_cost ~lut_ns ~carry_ns ~width : int * float =
  let blocks = add_blocks width in
  let per_block = lut_ns +. (carry_ns *. float_of_int block_bits) in
  blocks, float_of_int blocks *. per_block

(** Wide multiply under a decomposition choice. [Csa]: one stage of
    digit partial products, the 3:2 compression tree at three LUT levels
    per stage, then the block-pipelined final add. [Addtree]: the partial
    products feed a binary adder tree, one full-width adder level per
    stage. *)
let mul_cost (d : decomp) ~lut_ns ~carry_ns ~width : int * float =
  let rows = pp_rows width in
  match d with
  | Csa ->
    let levels = compress_levels rows in
    let compress_stages = max 1 (cdiv levels 3) in
    let cpa_stages, cpa_ns = add_cost ~lut_ns ~carry_ns ~width in
    ( 1 + compress_stages + cpa_stages,
      lut_ns +. (float_of_int levels *. lut_ns) +. cpa_ns )
  | Addtree ->
    let depth = max 1 (Roccc_util.Bits.clog2 (max 2 rows)) in
    let adder = lut_ns +. (carry_ns *. float_of_int width) in
    1 + depth, lut_ns +. (float_of_int depth *. adder)

(** Constant-coefficient wide multiply: a shift-add tree over the set bits
    of the coefficient, one full-width adder level per stage. *)
let const_mul_cost ~lut_ns ~carry_ns ~width ~terms : int * float =
  let depth = max 1 (Roccc_util.Bits.clog2 (max 2 terms)) in
  let adder = lut_ns +. (carry_ns *. float_of_int width) in
  depth, float_of_int depth *. adder

(** Iterative wide divide/remainder: one subtract per quotient bit,
    folded to eight quotient bits per pipeline stage. *)
let div_cost ~lut_ns ~carry_ns ~width : int * float =
  let stages = max 1 (cdiv width 8) in
  ( stages,
    float_of_int width *. (lut_ns +. (carry_ns *. float_of_int width)) /. 2.0 )

(** LUT cost of the decomposed wide multiplier: each digit pair is a
    [digit_bits]² partial-product tile, the compression tree one LUT per
    row bit per level, the final add one LUT per bit. Far below the naive
    w² array the narrow model would charge. *)
let mul_luts ~width : int =
  let d = digits width in
  let tiles = d * d in
  let levels = compress_levels tiles in
  (tiles * digit_bits * 2) + (levels * width) + width

(* ------------------------------------------------------------------ *)
(* Behavioural models (exact, mod 2^64)                                 *)
(* ------------------------------------------------------------------ *)

let digit_mask = Int64.sub (Int64.shift_left 1L digit_bits) 1L

(** Digit decomposition of the full 64-bit pattern, least significant
    first: [a = sum_i (split a).(i) * 2^(digit_bits * i)] mod 2^64. *)
let split (a : int64) : int64 list =
  List.init (cdiv 64 digit_bits) (fun i ->
      Int64.logand
        (Int64.shift_right_logical a (digit_bits * i))
        digit_mask)

(** Shifted partial products of [a * b]: digit-by-digit, each row already
    in place. Their sum mod 2^64 is exactly [Int64.mul a b]. Digit pairs
    whose shift reaches bit 64 contribute nothing mod 2^64 (and
    [Int64.shift_left] is unspecified there), so they are dropped. *)
let partial_products (a : int64) (b : int64) : int64 list =
  let da = split a and db = split b in
  List.concat
    (List.mapi
       (fun i ai ->
         List.concat
           (List.mapi
              (fun j bj ->
                if digit_bits * (i + j) >= 64 then []
                else
                  [ Int64.shift_left (Int64.mul ai bj) (digit_bits * (i + j)) ])
              db))
       da)

(** One 3:2 carry-save level: every group of three addends becomes a sum
    word and a carry word with the same total (mod 2^64). *)
let compress_3_2 (rows : int64 list) : int64 list =
  let rec loop = function
    | a :: b :: c :: rest ->
      let sum = Int64.logxor (Int64.logxor a b) c in
      let carry =
        Int64.shift_left
          (Int64.logor
             (Int64.logand a b)
             (Int64.logor (Int64.logand a c) (Int64.logand b c)))
          1
      in
      sum :: carry :: loop rest
    | rest -> rest
  in
  loop rows

(** Reduce addends to a redundant (sum, carry) pair through repeated 3:2
    levels. *)
let rec csa_reduce (rows : int64 list) : int64 * int64 =
  match rows with
  | [] -> 0L, 0L
  | [ s ] -> s, 0L
  | [ s; c ] -> s, c
  | rows -> csa_reduce (compress_3_2 rows)

(** Block-pipelined carry-propagate add: [block_bits]-wide blocks rippled
    with an explicit inter-block carry. Exactly [Int64.add a b]. *)
let block_add (a : int64) (b : int64) : int64 =
  let mask = Int64.sub (Int64.shift_left 1L block_bits) 1L in
  let blocks = cdiv 64 block_bits in
  let result = ref 0L and carry = ref 0L in
  for i = 0 to blocks - 1 do
    let sh = block_bits * i in
    let ai = Int64.logand (Int64.shift_right_logical a sh) mask in
    let bi = Int64.logand (Int64.shift_right_logical b sh) mask in
    let s = Int64.add (Int64.add ai bi) !carry in
    result := Int64.logor !result (Int64.shift_left (Int64.logand s mask) sh);
    carry := Int64.shift_right_logical s block_bits
  done;
  !result

(** Wide multiply through the carry-save decomposition: partial products,
    3:2 compression to a redundant pair, one final block add. *)
let csa_mul (a : int64) (b : int64) : int64 =
  let s, c = csa_reduce (partial_products a b) in
  block_add s c

(** Wide multiply through the binary adder tree over the same partial
    products. *)
let addtree_mul (a : int64) (b : int64) : int64 =
  let rec level = function
    | [] -> 0L
    | [ x ] -> x
    | rows ->
      let rec pair = function
        | a :: b :: rest -> block_add a b :: pair rest
        | rest -> rest
      in
      level (pair rows)
  in
  level (partial_products a b)

(** Carry-save accumulator: fold addends into a redundant pair, resolving
    the carries once at the end. Exactly [acc + sum xs] mod 2^64. *)
let csa_accumulate (acc : int64) (xs : int64 list) : int64 =
  let s, c =
    List.fold_left
      (fun (s, c) x -> csa_reduce [ s; c; x ])
      (acc, 0L) xs
  in
  block_add s c

(** The behavioural model a wide multiply routes through (both
    decompositions are extensionally [Int64.mul]). *)
let mul_model (d : decomp) : int64 -> int64 -> int64 =
  match d with Csa -> csa_mul | Addtree -> addtree_mul
