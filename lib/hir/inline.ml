(** Function inlining. "Function calls will either be inlined or whenever
    feasible made into a lookup table" (paper §2). *)

open Roccc_cfront.Ast

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* Rename every local/param of [callee] with a unique prefix so inlined
   copies never collide with caller names or with each other. The counter
   is per-[inline_calls] invocation, not global: inlined names must not
   depend on what else the process compiled before (reproducible output),
   and a module-level counter would race under parallel compilation. *)
let freshen_body rename_counter (callee : func) :
    (string * string) list * stmt list =
  let n = Roccc_util.Id_gen.fresh rename_counter in
  let prefix name = Printf.sprintf "%s_%d_%s" callee.fname n name in
  let declared =
    fold_stmts
      (fun acc s ->
        match s with
        | Sdecl (_, x, _) -> x :: acc
        | Sfor (h, _) -> h.index :: acc
        | Sassign _ | Sif _ | Sreturn _ | Sexpr _ -> acc)
      (fun acc _ -> acc)
      [] callee.body
  in
  let names =
    List.sort_uniq String.compare
      (List.map (fun p -> p.pname) callee.params @ declared)
  in
  let mapping = List.map (fun x -> x, prefix x) names in
  let rename_expr = function
    | Var x as e -> (
      match List.assoc_opt x mapping with Some x' -> Var x' | None -> e)
    | Index (a, idx) as e -> (
      match List.assoc_opt a mapping with
      | Some a' -> Index (a', idx)
      | None -> e)
    | Deref x as e -> (
      match List.assoc_opt x mapping with Some x' -> Deref x' | None -> e)
    | e -> e
  in
  let rec rename_stmt s =
    match s with
    | Sdecl (t, x, init) ->
      Sdecl (t, Option.value (List.assoc_opt x mapping) ~default:x,
             Option.map (map_expr rename_expr) init)
    | Sassign (lv, e) ->
      let lv' =
        match lv with
        | Lvar x -> Lvar (Option.value (List.assoc_opt x mapping) ~default:x)
        | Lderef x ->
          Lderef (Option.value (List.assoc_opt x mapping) ~default:x)
        | Lindex (a, idx) ->
          Lindex
            ( Option.value (List.assoc_opt a mapping) ~default:a,
              List.map (map_expr rename_expr) idx )
      in
      Sassign (lv', map_expr rename_expr e)
    | Sif (c, th, el) ->
      Sif (map_expr rename_expr c, List.map rename_stmt th,
           List.map rename_stmt el)
    | Sfor (h, body) ->
      let h' =
        { index = Option.value (List.assoc_opt h.index mapping) ~default:h.index;
          init = map_expr rename_expr h.init;
          cond_op = h.cond_op;
          bound = map_expr rename_expr h.bound;
          step = map_expr rename_expr h.step }
      in
      Sfor (h', List.map rename_stmt body)
    | Sreturn e -> Sreturn (Option.map (map_expr rename_expr) e)
    | Sexpr e -> Sexpr (map_expr rename_expr e)
  in
  mapping, List.map rename_stmt callee.body

(* Replace [return e] with an assignment to [result] (callee bodies must be
   single-exit: a return only as the last statement, which the C subset's
   kernels satisfy). *)
let rec replace_returns result stmts =
  List.map
    (fun s ->
      match s with
      | Sreturn (Some e) -> Sassign (Lvar result, e)
      | Sreturn None -> Sexpr (Const 0L)
      | Sif (c, th, el) ->
        Sif (c, replace_returns result th, replace_returns result el)
      | Sfor (h, body) -> Sfor (h, replace_returns result body)
      | Sdecl _ | Sassign _ | Sexpr _ -> s)
    stmts

let returns_anywhere_but_last stmts =
  let rec check = function
    | [] -> false
    | [ Sreturn _ ] -> false
    | Sreturn _ :: _ -> true
    | Sif (_, th, el) :: rest ->
      (* returns inside branches are fine only if nothing follows *)
      let branch_returns =
        List.exists (function Sreturn _ -> true | _ -> false) (th @ el)
      in
      (branch_returns && rest <> []) || check rest
    | Sfor (_, body) :: rest ->
      List.exists (function Sreturn _ -> true | _ -> false) body || check rest
    | (Sdecl _ | Sassign _ | Sexpr _) :: rest -> check rest
  in
  check stmts

(** Inline every call to a function defined in [prog] inside [f]'s body.
    Calls appear only in expression position; each becomes a block of
    [param decls; inlined body; result read]. Nested calls are handled by
    iterating to fixpoint (recursion is rejected upstream by Semant). *)
let inline_calls (prog : program) (f : func) : func =
  let find_callee name =
    List.find_opt (fun g -> String.equal g.fname name) prog.funcs
  in
  let rename_counter = Roccc_util.Id_gen.create () in
  let result_counter = Roccc_util.Id_gen.create () in
  (* Rewrite one statement list; hoists call setups before each statement. *)
  let rec rewrite_stmts stmts = List.concat_map rewrite_stmt stmts
  and rewrite_stmt s : stmt list =
    match s with
    | Sdecl (t, n, Some e) ->
      let pre, e' = extract_calls e in
      pre @ [ Sdecl (t, n, Some e') ]
    | Sdecl (_, _, None) -> [ s ]
    | Sassign (lv, e) ->
      let pre_idx, lv' =
        match lv with
        | Lvar _ | Lderef _ -> [], lv
        | Lindex (a, idx) ->
          let pres, idx' = List.split (List.map extract_calls idx) in
          List.concat pres, Lindex (a, idx')
      in
      let pre, e' = extract_calls e in
      pre_idx @ pre @ [ Sassign (lv', e') ]
    | Sif (c, th, el) ->
      let pre, c' = extract_calls c in
      pre @ [ Sif (c', rewrite_stmts th, rewrite_stmts el) ]
    | Sfor (h, body) -> [ Sfor (h, rewrite_stmts body) ]
    | Sreturn (Some e) ->
      let pre, e' = extract_calls e in
      pre @ [ Sreturn (Some e') ]
    | Sreturn None -> [ s ]
    | Sexpr (Call (g, _)) when is_intrinsic g -> [ s ]
    | Sexpr e ->
      let pre, e' = extract_calls e in
      pre @ [ Sexpr e' ]
  (* Pull user-function calls out of an expression, producing setup
     statements and the residual expression. *)
  and extract_calls (e : expr) : stmt list * expr =
    let pre = ref [] in
    let rec walk e =
      match e with
      | Const _ | Var _ | Deref _ -> e
      | Index (a, idx) -> Index (a, List.map walk idx)
      | Binop (op, a, b) ->
        let a' = walk a in
        let b' = walk b in
        Binop (op, a', b')
      | Unop (op, a) -> Unop (op, walk a)
      | Cast (k, a) -> Cast (k, walk a)
      | Call (g, args) when is_intrinsic g -> Call (g, List.map walk args)
      | Call (g, args) -> (
        match find_callee g with
        | None -> Call (g, List.map walk args)  (* LUT or external: keep *)
        | Some callee ->
          let args' = List.map walk args in
          if returns_anywhere_but_last callee.body then
            errf "cannot inline %s: return is not the final statement" g;
          let mapping, body = freshen_body rename_counter callee in
          (* Scalar formals consume the call arguments in order; pointer
             formals (the paper's multiple-return-value outputs) receive no
             argument and become plain scalar locals, so the freshened
             body's writes through them stay bound after inlining — the
             values die at the call site and DCE removes the dead stores. *)
          let param_decls =
            let rec bind params args =
              match params, args with
              | [], [] -> []
              | ({ ptype = Tint _; _ } as p) :: ps, a :: rest ->
                Sdecl (p.ptype, List.assoc p.pname mapping, Some a)
                :: bind ps rest
              | { ptype = Tptr k; pname; _ } :: ps, rest ->
                Sdecl (Tint k, List.assoc pname mapping, None) :: bind ps rest
              | { ptype = Tarray _ | Tvoid; pname; _ } :: _, _ ->
                errf "cannot inline %s: unsupported parameter %s" g pname
              | [], _ :: _ | { ptype = Tint _; _ } :: _, [] ->
                errf "call to %s: arity mismatch during inlining" g
            in
            bind callee.params args'
          in
          let ret_kind =
            match callee.ret with
            | Tint k -> k
            | Tvoid | Tarray _ | Tptr _ ->
              errf "cannot inline %s: non-integer return" g
          in
          let result =
            Printf.sprintf "%s_ret%d" g (Roccc_util.Id_gen.fresh result_counter)
          in
          let body = replace_returns result body in
          pre :=
            !pre
            @ param_decls
            @ [ Sdecl (Tint ret_kind, result, None) ]
            @ rewrite_stmts body;
          Var result)
    in
    let e' = walk e in
    !pre, e'
  in
  let rec fix body n =
    let body' = rewrite_stmts body in
    if n = 0 || body' = body then body' else fix body' (n - 1)
  in
  { f with body = fix f.body 8 }
