(** The compiler's central product at the loop level: a [kernel] couples the
    pure scalar data-path function (paper Figure 3c / 4c) with the memory
    access descriptors the controller and smart-buffer generators consume
    (paper §4.1), and the loop information driving iteration. *)

open Roccc_cfront.Ast

(** One normalized loop dimension: the index takes [count] values starting at
    [lower], advancing by [step]. Outermost dimension first in [t.loops]. *)
type loop_dim = { index : string; lower : int; count : int; step : int }

(** A sliding-window input array: each iteration the data path consumes the
    elements at [base + offset] for every offset, where [base] advances by
    the loop steps. [scalars] maps each offset vector to the name of the
    window scalar parameter in the dp function (A0, A1, ... in the paper). *)
type window_input = {
  win_array : string;
  win_kind : ikind;
  win_dims : int list;                     (** declared array dimensions *)
  win_offsets : int list list;             (** sorted offset vectors *)
  win_scalars : (int list * string) list;  (** offset -> dp parameter name *)
}

type output_target =
  | Out_array of { arr : string; kind : ikind; dims : int list; offset : int list }
      (** written at loop position + offset each iteration *)
  | Out_scalar of { name : string; kind : ikind }
      (** pointer output of the original function: holds the last value *)

(** An output port of the data path: dp writes [*port] each iteration; the
    surrounding circuit routes it to [target]. *)
type output = { port : string; port_kind : ikind; target : output_target }

(** A loop-carried scalar (accumulator): lives in a feedback register,
    accessed through LPR/SNX in the data path. *)
type feedback_var = { fb_name : string; fb_kind : ikind; fb_init : int64 }

type t = {
  kname : string;
  dp : func;             (** scalar data-path function (Figure 3c / 4c) *)
  transformed : func;    (** whole function after scalar replacement (3b) *)
  original : func;       (** the function as written (3a) *)
  loops : loop_dim list; (** empty for purely combinational kernels *)
  windows : window_input list;
  scalar_inputs : param list;  (** live-in scalar parameters fed to dp *)
  outputs : output list;
  feedback : feedback_var list;
}

let iteration_space (k : t) : int =
  List.fold_left (fun acc d -> acc * d.count) 1 k.loops

(* ------------------------------------------------------------------ *)
(* Well-formedness                                                     *)
(* ------------------------------------------------------------------ *)

exception Ill_formed of string

let illf fmt = Printf.ksprintf (fun s -> raise (Ill_formed s)) fmt

(** Invariants of a scalar-replaced kernel: the dp function is pure scalar
    code (no array parameters), every window scalar and live-in scalar is a
    scalar parameter of dp, every output port is a pointer parameter of dp,
    window offsets are consistent with the array rank, loop dimensions are
    non-degenerate, and feedback names are distinct. Raises {!Ill_formed}
    on the first violation. *)
let verify (k : t) : unit =
  let dp_params = k.dp.params in
  let param name = List.find_opt (fun p -> String.equal p.pname name) dp_params in
  List.iter
    (fun p ->
      match p.ptype with
      | Tarray _ ->
        illf "kernel %s: dp function keeps array parameter %s" k.kname p.pname
      | Tint _ | Tptr _ | Tvoid -> ())
    dp_params;
  List.iter
    (fun w ->
      let rank = List.length w.win_dims in
      if rank = 0 then illf "kernel %s: window on %s has no dimensions" k.kname w.win_array;
      List.iter
        (fun off ->
          if List.length off <> rank then
            illf "kernel %s: window offset on %s has rank %d, array has rank %d"
              k.kname w.win_array (List.length off) rank)
        w.win_offsets;
      if
        List.sort compare (List.map fst w.win_scalars)
        <> List.sort compare w.win_offsets
      then
        illf "kernel %s: window scalars on %s do not cover the offsets"
          k.kname w.win_array;
      List.iter
        (fun (_, name) ->
          match param name with
          | Some { ptype = Tint _; _ } -> ()
          | Some _ -> illf "kernel %s: window scalar %s is not a scalar dp parameter" k.kname name
          | None -> illf "kernel %s: window scalar %s missing from dp parameters" k.kname name)
        w.win_scalars)
    k.windows;
  List.iter
    (fun p ->
      match param p.pname with
      | Some { ptype = Tint _; _ } -> ()
      | Some _ -> illf "kernel %s: scalar input %s is not a scalar dp parameter" k.kname p.pname
      | None -> illf "kernel %s: scalar input %s missing from dp parameters" k.kname p.pname)
    k.scalar_inputs;
  List.iter
    (fun o ->
      match param o.port with
      | Some { ptype = Tptr _; _ } -> ()
      | Some _ -> illf "kernel %s: output port %s is not a pointer dp parameter" k.kname o.port
      | None -> illf "kernel %s: output port %s missing from dp parameters" k.kname o.port)
    k.outputs;
  List.iter
    (fun d ->
      if d.count < 1 then
        illf "kernel %s: loop %s has trip count %d" k.kname d.index d.count;
      if d.step = 0 then illf "kernel %s: loop %s has step 0" k.kname d.index)
    k.loops;
  let fb_names = List.map (fun f -> f.fb_name) k.feedback in
  if List.length (List.sort_uniq String.compare fb_names) <> List.length fb_names
  then illf "kernel %s: duplicate feedback variable" k.kname

(** Window extent (max offset - min offset + 1) per dimension, or [] when the
    kernel has no window inputs. *)
let window_extent (w : window_input) : int list =
  match w.win_offsets with
  | [] -> []
  | first :: _ ->
    let ndims = List.length first in
    List.init ndims (fun d ->
        let dth v = List.nth v d in
        let lo =
          List.fold_left (fun acc v -> min acc (dth v)) (dth first)
            w.win_offsets
        and hi =
          List.fold_left (fun acc v -> max acc (dth v)) (dth first)
            w.win_offsets
        in
        hi - lo + 1)

(** Human-readable summary used by examples and the bench harness. *)
let describe (k : t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "kernel %s\n" k.kname);
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "  loop %s: %d iterations from %d step %d\n" d.index
           d.count d.lower d.step))
    k.loops;
  List.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf "  window on %s: offsets [%s] extent [%s]\n"
           w.win_array
           (String.concat "; "
              (List.map
                 (fun v -> String.concat "," (List.map string_of_int v))
                 w.win_offsets))
           (String.concat "," (List.map string_of_int (window_extent w)))))
    k.windows;
  List.iter
    (fun p -> Buffer.add_string buf (Printf.sprintf "  scalar in: %s\n" p.pname))
    k.scalar_inputs;
  List.iter
    (fun o ->
      match o.target with
      | Out_array { arr; offset; _ } ->
        Buffer.add_string buf
          (Printf.sprintf "  output %s -> %s[+%s]\n" o.port arr
             (String.concat "," (List.map string_of_int offset)))
      | Out_scalar { name; _ } ->
        Buffer.add_string buf
          (Printf.sprintf "  output %s -> scalar %s (last value)\n" o.port name))
    k.outputs;
  List.iter
    (fun fb ->
      Buffer.add_string buf
        (Printf.sprintf "  feedback %s (init %Ld)\n" fb.fb_name fb.fb_init))
    k.feedback;
  Buffer.contents buf
