(** The compiler's central loop-level product: a [kernel] couples the pure
    scalar data-path function (Figures 3c / 4c) with the memory access
    descriptors the controller and smart-buffer generators consume (§4.1)
    and the loop information driving iteration. *)

open Roccc_cfront.Ast

(** One normalized loop dimension: [count] values from [lower], advancing by
    [step]. Outermost first in [t.loops]. *)
type loop_dim = { index : string; lower : int; count : int; step : int }

(** A sliding-window input array; [win_scalars] maps each offset vector to
    the dp parameter name carrying it (A0, A1, ... in the paper). *)
type window_input = {
  win_array : string;
  win_kind : ikind;
  win_dims : int list;
  win_offsets : int list list;  (** sorted offset vectors *)
  win_scalars : (int list * string) list;
}

type output_target =
  | Out_array of { arr : string; kind : ikind; dims : int list; offset : int list }
      (** written at loop position + offset each iteration *)
  | Out_scalar of { name : string; kind : ikind }
      (** pointer output: holds the last value *)

(** An output port: dp writes [*port] each iteration, routed to [target]. *)
type output = { port : string; port_kind : ikind; target : output_target }

(** A loop-carried scalar living in an LPR/SNX feedback register. *)
type feedback_var = { fb_name : string; fb_kind : ikind; fb_init : int64 }

type t = {
  kname : string;
  dp : func;  (** scalar data-path function (Figure 3c / 4c) *)
  transformed : func;  (** whole function after scalar replacement (3b) *)
  original : func;  (** as written (3a) *)
  loops : loop_dim list;  (** empty for block/combinational kernels *)
  windows : window_input list;
  scalar_inputs : param list;
  outputs : output list;
  feedback : feedback_var list;
}

val iteration_space : t -> int
(** Product of the loop trip counts (1 when loop-free). *)

exception Ill_formed of string

val verify : t -> unit
(** Well-formedness of a scalar-replaced kernel: dp is pure scalar code,
    window scalars / scalar inputs / output ports all appear as dp
    parameters of the right shape, offsets match the array rank, loops are
    non-degenerate, feedback names are distinct. Raises {!Ill_formed}. *)

val window_extent : window_input -> int list
(** Max offset − min offset + 1 per dimension. *)

val describe : t -> string
