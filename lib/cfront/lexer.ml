(** Hand-written lexer for the ROCCC C subset. *)

type token =
  | INT_LIT of int64
  | IDENT of string
  | KW_IF | KW_ELSE | KW_FOR | KW_RETURN | KW_VOID | KW_CONST
  | KW_INT | KW_UNSIGNED | KW_SIGNED | KW_CHAR | KW_SHORT | KW_LONG
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | SHL | SHR
  | LT | LE | GT | GE | EQEQ | NE
  | ANDAND | OROR
  | ASSIGN
  | PLUS_ASSIGN | MINUS_ASSIGN
  | PLUSPLUS | MINUSMINUS
  | QUESTION | COLON
  | ARROW  (** [->]: pipeline composition (process networks) *)
  | EOF

type located = { tok : token; line : int; col : int }

exception Error of string * int * int  (** message, line, column *)

let token_name = function
  | INT_LIT v -> Printf.sprintf "integer %Ld" v
  | IDENT s -> Printf.sprintf "identifier %S" s
  | KW_IF -> "'if'" | KW_ELSE -> "'else'" | KW_FOR -> "'for'"
  | KW_RETURN -> "'return'" | KW_VOID -> "'void'" | KW_CONST -> "'const'"
  | KW_INT -> "'int'" | KW_UNSIGNED -> "'unsigned'" | KW_SIGNED -> "'signed'"
  | KW_CHAR -> "'char'" | KW_SHORT -> "'short'" | KW_LONG -> "'long'"
  | LPAREN -> "'('" | RPAREN -> "')'" | LBRACE -> "'{'" | RBRACE -> "'}'"
  | LBRACKET -> "'['" | RBRACKET -> "']'" | SEMI -> "';'" | COMMA -> "','"
  | PLUS -> "'+'" | MINUS -> "'-'" | STAR -> "'*'" | SLASH -> "'/'"
  | PERCENT -> "'%'" | AMP -> "'&'" | PIPE -> "'|'" | CARET -> "'^'"
  | TILDE -> "'~'" | BANG -> "'!'" | SHL -> "'<<'" | SHR -> "'>>'"
  | LT -> "'<'" | LE -> "'<='" | GT -> "'>'" | GE -> "'>='"
  | EQEQ -> "'=='" | NE -> "'!='" | ANDAND -> "'&&'" | OROR -> "'||'"
  | ASSIGN -> "'='" | PLUS_ASSIGN -> "'+='" | MINUS_ASSIGN -> "'-='"
  | PLUSPLUS -> "'++'" | MINUSMINUS -> "'--'"
  | ARROW -> "'->'"
  | QUESTION -> "'?'" | COLON -> "':'"
  | EOF -> "end of input"

let keyword_table =
  [ "if", KW_IF; "else", KW_ELSE; "for", KW_FOR; "return", KW_RETURN;
    "void", KW_VOID; "const", KW_CONST; "int", KW_INT;
    "unsigned", KW_UNSIGNED; "signed", KW_SIGNED; "char", KW_CHAR;
    "short", KW_SHORT; "long", KW_LONG ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex_digit c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek_char st =
  if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek_char2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek_char st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let error st msg = raise (Error (msg, st.line, st.col))

let rec skip_trivia st =
  match peek_char st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '/' -> (
    match peek_char2 st with
    | Some '/' ->
      while peek_char st <> None && peek_char st <> Some '\n' do advance st done;
      skip_trivia st
    | Some '*' ->
      advance st;
      advance st;
      let rec close () =
        match peek_char st, peek_char2 st with
        | Some '*', Some '/' ->
          advance st;
          advance st
        | Some _, _ ->
          advance st;
          close ()
        | None, _ -> error st "unterminated comment"
      in
      close ();
      skip_trivia st
    | Some _ | None -> ())
  | Some _ | None -> ()

let lex_number st =
  (* Report literal errors at the literal's start, not wherever the scan
     stopped — by the time we know the text is bad, st points past it. *)
  let sline = st.line and scol = st.col in
  let start = st.pos in
  let hex =
    peek_char st = Some '0' && (peek_char2 st = Some 'x' || peek_char2 st = Some 'X')
  in
  if hex then (advance st; advance st);
  let digit_ok = if hex then is_hex_digit else is_digit in
  while (match peek_char st with Some c -> digit_ok c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  (* Allow (and ignore) u/U/l/L suffixes. *)
  while
    match peek_char st with
    | Some ('u' | 'U' | 'l' | 'L') -> true
    | Some _ | None -> false
  do
    advance st
  done;
  match Int64.of_string_opt text with
  | Some v -> INT_LIT v
  | None ->
    (* The scan only admits well-formed digit runs, so [None] means either
       a bare "0x" prefix or a value outside the 64-bit carrier: hex
       literals wider than 16 digits, or decimals beyond the signed
       64-bit range. Both must be loud — silently wrapping a width the
       hardware cannot hold would corrupt every later width inference. *)
    let msg =
      if hex && String.length text <= 2 then
        Printf.sprintf "invalid integer literal %S" text
      else
        Printf.sprintf
          "integer literal %s is out of range (it does not fit in 64 bits)"
          text
    in
    raise (Error (msg, sline, scol))

let lex_ident st =
  let start = st.pos in
  while (match peek_char st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match List.assoc_opt text keyword_table with
  | Some kw -> kw
  | None -> IDENT text

let next_token st : located =
  skip_trivia st;
  let line = st.line and col = st.col in
  let simple tok = advance st; tok in
  let with2 second two one =
    advance st;
    if peek_char st = Some second then (advance st; two) else one
  in
  let tok =
    match peek_char st with
    | None -> EOF
    | Some c when is_digit c -> lex_number st
    | Some c when is_ident_start c -> lex_ident st
    | Some '(' -> simple LPAREN
    | Some ')' -> simple RPAREN
    | Some '{' -> simple LBRACE
    | Some '}' -> simple RBRACE
    | Some '[' -> simple LBRACKET
    | Some ']' -> simple RBRACKET
    | Some ';' -> simple SEMI
    | Some ',' -> simple COMMA
    | Some '+' -> (
      advance st;
      match peek_char st with
      | Some '+' -> advance st; PLUSPLUS
      | Some '=' -> advance st; PLUS_ASSIGN
      | Some _ | None -> PLUS)
    | Some '-' -> (
      advance st;
      match peek_char st with
      | Some '-' -> advance st; MINUSMINUS
      | Some '=' -> advance st; MINUS_ASSIGN
      | Some '>' -> advance st; ARROW
      | Some _ | None -> MINUS)
    | Some '*' -> simple STAR
    | Some '/' -> simple SLASH
    | Some '%' -> simple PERCENT
    | Some '~' -> simple TILDE
    | Some '?' -> simple QUESTION
    | Some ':' -> simple COLON
    | Some '&' -> with2 '&' ANDAND AMP
    | Some '|' -> with2 '|' OROR PIPE
    | Some '^' -> simple CARET
    | Some '!' -> with2 '=' NE BANG
    | Some '=' -> with2 '=' EQEQ ASSIGN
    | Some '<' -> (
      advance st;
      match peek_char st with
      | Some '<' -> advance st; SHL
      | Some '=' -> advance st; LE
      | Some _ | None -> LT)
    | Some '>' -> (
      advance st;
      match peek_char st with
      | Some '>' -> advance st; SHR
      | Some '=' -> advance st; GE
      | Some _ | None -> GT)
    | Some c -> error st (Printf.sprintf "unexpected character %C" c)
  in
  { tok; line; col }

(** Tokenize a whole source string. Raises {!Error} on malformed input. *)
let tokenize (src : string) : located list =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec loop acc =
    let t = next_token st in
    if t.tok = EOF then List.rev (t :: acc) else loop (t :: acc)
  in
  loop []
