(** Recursive-descent parser for the ROCCC C subset. *)

exception Error of string * int * int  (** message, line, column *)

type state = { mutable toks : Lexer.located list }

let peek st =
  match st.toks with
  | t :: _ -> t
  | [] -> { Lexer.tok = Lexer.EOF; line = 0; col = 0 }

let peek2 st =
  match st.toks with
  | _ :: t :: _ -> Some t.Lexer.tok
  | _ :: [] | [] -> None

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let error_at (t : Lexer.located) msg = raise (Error (msg, t.line, t.col))

let expect st tok =
  let t = peek st in
  if t.tok = tok then advance st
  else
    error_at t
      (Printf.sprintf "expected %s but found %s" (Lexer.token_name tok)
         (Lexer.token_name t.tok))

let expect_ident st =
  let t = peek st in
  match t.tok with
  | Lexer.IDENT name -> advance st; name
  | other -> error_at t ("expected identifier but found " ^ Lexer.token_name other)

(* ------------------------------------------------------------------ *)
(* Type names                                                          *)
(* ------------------------------------------------------------------ *)

(* Recognize [intN] / [uintN] / [intN_t] / [uintN_t] identifiers. *)
let sized_int_of_ident name : Ast.ikind option =
  let strip_t s =
    if String.length s > 2 && String.sub s (String.length s - 2) 2 = "_t" then
      String.sub s 0 (String.length s - 2)
    else s
  in
  let name = strip_t name in
  let parse ~signed prefix =
    let n = String.length prefix in
    if String.length name > n && String.sub name 0 n = prefix then
      match int_of_string_opt (String.sub name n (String.length name - n)) with
      | Some bits when bits >= 1 && bits <= 64 -> Some { Ast.signed; bits }
      | Some _ | None -> None
    else None
  in
  match parse ~signed:false "uint" with
  | Some k -> Some k
  | None -> parse ~signed:true "int"

(* Does the upcoming token sequence start a type name? *)
let starts_type st =
  match (peek st).tok with
  | Lexer.KW_VOID | Lexer.KW_CONST | Lexer.KW_INT | Lexer.KW_UNSIGNED
  | Lexer.KW_SIGNED | Lexer.KW_CHAR | Lexer.KW_SHORT | Lexer.KW_LONG -> true
  | Lexer.IDENT name -> Option.is_some (sized_int_of_ident name)
  | _ -> false

(* Parse a base type: [void] or an integer kind. Consumes [const]. *)
let parse_base_type st : Ast.ctype =
  let t = peek st in
  (* skip any leading const *)
  let rec skip_const () =
    if (peek st).tok = Lexer.KW_CONST then (advance st; skip_const ())
  in
  skip_const ();
  let t0 = peek st in
  match t0.tok with
  | Lexer.KW_VOID -> advance st; Ast.Tvoid
  | Lexer.IDENT name -> (
    match sized_int_of_ident name with
    | Some k -> advance st; Ast.Tint k
    | None -> error_at t0 ("expected a type but found identifier " ^ name))
  | Lexer.KW_INT | Lexer.KW_UNSIGNED | Lexer.KW_SIGNED | Lexer.KW_CHAR
  | Lexer.KW_SHORT | Lexer.KW_LONG ->
    (* Collect the specifier words: signed/unsigned then char/short/int/long. *)
    let signed = ref true in
    let bits = ref 32 in
    let saw_any = ref false in
    let rec loop () =
      match (peek st).tok with
      | Lexer.KW_SIGNED -> advance st; signed := true; saw_any := true; loop ()
      | Lexer.KW_UNSIGNED -> advance st; signed := false; saw_any := true; loop ()
      | Lexer.KW_CHAR -> advance st; bits := 8; saw_any := true; loop ()
      | Lexer.KW_SHORT ->
        advance st;
        bits := 16;
        saw_any := true;
        (* allow "short int" *)
        if (peek st).tok = Lexer.KW_INT then advance st;
        loop ()
      | Lexer.KW_LONG ->
        advance st;
        bits := 32;
        saw_any := true;
        if (peek st).tok = Lexer.KW_INT then advance st;
        loop ()
      | Lexer.KW_INT -> advance st; bits := 32; saw_any := true; loop ()
      | _ -> ()
    in
    loop ();
    if not !saw_any then error_at t ("expected a type");
    Ast.Tint { Ast.signed = !signed; bits = !bits }
  | other -> error_at t0 ("expected a type but found " ^ Lexer.token_name other)

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing                                    *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st : Ast.expr = parse_logical_or st

and parse_logical_or st =
  let rec loop lhs =
    if (peek st).tok = Lexer.OROR then (
      advance st;
      let rhs = parse_logical_and st in
      loop (Ast.Binop (Ast.Lor, lhs, rhs)))
    else lhs
  in
  loop (parse_logical_and st)

and parse_logical_and st =
  let rec loop lhs =
    if (peek st).tok = Lexer.ANDAND then (
      advance st;
      let rhs = parse_bitor st in
      loop (Ast.Binop (Ast.Land, lhs, rhs)))
    else lhs
  in
  loop (parse_bitor st)

and parse_bitor st =
  let rec loop lhs =
    if (peek st).tok = Lexer.PIPE then (
      advance st;
      loop (Ast.Binop (Ast.Bor, lhs, parse_bitxor st)))
    else lhs
  in
  loop (parse_bitxor st)

and parse_bitxor st =
  let rec loop lhs =
    if (peek st).tok = Lexer.CARET then (
      advance st;
      loop (Ast.Binop (Ast.Bxor, lhs, parse_bitand st)))
    else lhs
  in
  loop (parse_bitand st)

and parse_bitand st =
  let rec loop lhs =
    if (peek st).tok = Lexer.AMP then (
      advance st;
      loop (Ast.Binop (Ast.Band, lhs, parse_equality st)))
    else lhs
  in
  loop (parse_equality st)

and parse_equality st =
  let rec loop lhs =
    match (peek st).tok with
    | Lexer.EQEQ ->
      advance st;
      loop (Ast.Binop (Ast.Eq, lhs, parse_relational st))
    | Lexer.NE ->
      advance st;
      loop (Ast.Binop (Ast.Ne, lhs, parse_relational st))
    | _ -> lhs
  in
  loop (parse_relational st)

and parse_relational st =
  let rec loop lhs =
    match (peek st).tok with
    | Lexer.LT -> advance st; loop (Ast.Binop (Ast.Lt, lhs, parse_shift st))
    | Lexer.LE -> advance st; loop (Ast.Binop (Ast.Le, lhs, parse_shift st))
    | Lexer.GT -> advance st; loop (Ast.Binop (Ast.Gt, lhs, parse_shift st))
    | Lexer.GE -> advance st; loop (Ast.Binop (Ast.Ge, lhs, parse_shift st))
    | _ -> lhs
  in
  loop (parse_shift st)

and parse_shift st =
  let rec loop lhs =
    match (peek st).tok with
    | Lexer.SHL -> advance st; loop (Ast.Binop (Ast.Shl, lhs, parse_additive st))
    | Lexer.SHR -> advance st; loop (Ast.Binop (Ast.Shr, lhs, parse_additive st))
    | _ -> lhs
  in
  loop (parse_additive st)

and parse_additive st =
  let rec loop lhs =
    match (peek st).tok with
    | Lexer.PLUS ->
      advance st;
      loop (Ast.Binop (Ast.Add, lhs, parse_multiplicative st))
    | Lexer.MINUS ->
      advance st;
      loop (Ast.Binop (Ast.Sub, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop lhs =
    match (peek st).tok with
    | Lexer.STAR -> advance st; loop (Ast.Binop (Ast.Mul, lhs, parse_unary st))
    | Lexer.SLASH -> advance st; loop (Ast.Binop (Ast.Div, lhs, parse_unary st))
    | Lexer.PERCENT -> advance st; loop (Ast.Binop (Ast.Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  let t = peek st in
  match t.tok with
  | Lexer.MINUS -> advance st; Ast.Unop (Ast.Neg, parse_unary st)
  | Lexer.TILDE -> advance st; Ast.Unop (Ast.Bnot, parse_unary st)
  | Lexer.BANG -> advance st; Ast.Unop (Ast.Lnot, parse_unary st)
  | Lexer.PLUS -> advance st; parse_unary st
  | Lexer.STAR ->
    advance st;
    let name = expect_ident st in
    Ast.Deref name
  | Lexer.LPAREN when cast_ahead st -> (
    advance st;
    let ty = parse_base_type st in
    expect st Lexer.RPAREN;
    let inner = parse_unary st in
    match ty with
    | Ast.Tint k -> Ast.Cast (k, inner)
    | Ast.Tvoid | Ast.Tarray _ | Ast.Tptr _ ->
      error_at t "only casts to integer types are supported")
  | _ -> parse_postfix st

(* Is "( type )" coming up? Lookahead for cast vs. parenthesized expr. *)
and cast_ahead st =
  match peek2 st with
  | Some
      ( Lexer.KW_VOID | Lexer.KW_CONST | Lexer.KW_INT | Lexer.KW_UNSIGNED
      | Lexer.KW_SIGNED | Lexer.KW_CHAR | Lexer.KW_SHORT | Lexer.KW_LONG ) ->
    true
  | Some (Lexer.IDENT name) -> Option.is_some (sized_int_of_ident name)
  | Some _ | None -> false

and parse_postfix st =
  let t = peek st in
  match t.tok with
  | Lexer.INT_LIT v -> advance st; Ast.Const v
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    e
  | Lexer.IDENT name -> (
    advance st;
    match (peek st).tok with
    | Lexer.LPAREN ->
      advance st;
      let args =
        if (peek st).tok = Lexer.RPAREN then []
        else
          let rec loop acc =
            let e = parse_expr st in
            if (peek st).tok = Lexer.COMMA then (advance st; loop (e :: acc))
            else List.rev (e :: acc)
          in
          loop []
      in
      expect st Lexer.RPAREN;
      Ast.Call (name, args)
    | Lexer.LBRACKET ->
      let rec dims acc =
        if (peek st).tok = Lexer.LBRACKET then (
          advance st;
          let e = parse_expr st in
          expect st Lexer.RBRACKET;
          dims (e :: acc))
        else List.rev acc
      in
      Ast.Index (name, dims [])
    | _ -> Ast.Var name)
  | Lexer.QUESTION ->
    error_at t "ternary ?: is not supported; use an if/else statement"
  | other -> error_at t ("expected an expression but found " ^ Lexer.token_name other)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let parse_lvalue st : Ast.lvalue =
  let t = peek st in
  match t.tok with
  | Lexer.STAR ->
    advance st;
    Ast.Lderef (expect_ident st)
  | Lexer.IDENT name -> (
    advance st;
    if (peek st).tok = Lexer.LBRACKET then
      let rec dims acc =
        if (peek st).tok = Lexer.LBRACKET then (
          advance st;
          let e = parse_expr st in
          expect st Lexer.RBRACKET;
          dims (e :: acc))
        else List.rev acc
      in
      Ast.Lindex (name, dims [])
    else Ast.Lvar name)
  | other -> error_at t ("expected an lvalue but found " ^ Lexer.token_name other)

(* Array dimensions after a declared name: [N] or [N][M]. *)
let parse_decl_dims st =
  let rec loop acc =
    if (peek st).tok = Lexer.LBRACKET then (
      advance st;
      let t = peek st in
      match t.tok with
      | Lexer.INT_LIT v ->
        advance st;
        expect st Lexer.RBRACKET;
        loop (Int64.to_int v :: acc)
      | other ->
        error_at t
          ("array dimensions must be integer literals, found "
          ^ Lexer.token_name other))
    else List.rev acc
  in
  loop []

(* Parse "index = e; index OP e; index-update" loop header after 'for ('. *)
let parse_for_header st : Ast.for_header =
  let t0 = peek st in
  (* optional "int" in the init clause: for (int i = 0; ...) *)
  if starts_type st then ignore (parse_base_type st);
  let index = expect_ident st in
  expect st Lexer.ASSIGN;
  let init = parse_expr st in
  expect st Lexer.SEMI;
  let cond_lhs = expect_ident st in
  if not (String.equal cond_lhs index) then
    error_at t0
      (Printf.sprintf "for-loop condition must test the index %s, found %s"
         index cond_lhs);
  let cond_op =
    let t = peek st in
    match t.tok with
    | Lexer.LT -> advance st; Ast.Lt
    | Lexer.LE -> advance st; Ast.Le
    | Lexer.GT -> advance st; Ast.Gt
    | Lexer.GE -> advance st; Ast.Ge
    | Lexer.NE -> advance st; Ast.Ne
    | other ->
      error_at t ("expected a comparison in for-loop, found " ^ Lexer.token_name other)
  in
  let bound = parse_expr st in
  expect st Lexer.SEMI;
  (* Update forms: i++ | ++i | i-- | i += k | i -= k | i = i + k | i = i - k *)
  let step =
    let t = peek st in
    match t.tok with
    | Lexer.PLUSPLUS ->
      advance st;
      let _ = expect_ident st in
      Ast.const 1
    | Lexer.MINUSMINUS ->
      advance st;
      let _ = expect_ident st in
      Ast.Unop (Ast.Neg, Ast.const 1)
    | Lexer.IDENT name ->
      if not (String.equal name index) then
        error_at t ("for-loop update must assign the index " ^ index);
      advance st;
      (match (peek st).tok with
      | Lexer.PLUSPLUS -> advance st; Ast.const 1
      | Lexer.MINUSMINUS -> advance st; Ast.Unop (Ast.Neg, Ast.const 1)
      | Lexer.PLUS_ASSIGN -> advance st; parse_expr st
      | Lexer.MINUS_ASSIGN ->
        advance st;
        Ast.Unop (Ast.Neg, parse_expr st)
      | Lexer.ASSIGN -> (
        advance st;
        let rhs = parse_expr st in
        match rhs with
        | Ast.Binop (Ast.Add, Ast.Var v, step) when String.equal v index -> step
        | Ast.Binop (Ast.Add, step, Ast.Var v) when String.equal v index -> step
        | Ast.Binop (Ast.Sub, Ast.Var v, step) when String.equal v index ->
          Ast.Unop (Ast.Neg, step)
        | _ ->
          error_at t
            (Printf.sprintf
               "for-loop update must have the form %s = %s +/- step" index index))
      | other ->
        error_at t ("unsupported for-loop update " ^ Lexer.token_name other))
    | other -> error_at t ("unsupported for-loop update " ^ Lexer.token_name other)
  in
  { Ast.index; init; cond_op; bound; step }

let rec parse_stmt st : Ast.stmt list =
  let t = peek st in
  match t.tok with
  | Lexer.SEMI -> advance st; []
  | Lexer.KW_RETURN ->
    advance st;
    if (peek st).tok = Lexer.SEMI then (advance st; [ Ast.Sreturn None ])
    else
      let e = parse_expr st in
      expect st Lexer.SEMI;
      [ Ast.Sreturn (Some e) ]
  | Lexer.KW_IF ->
    advance st;
    expect st Lexer.LPAREN;
    let cond = parse_expr st in
    expect st Lexer.RPAREN;
    let then_branch = parse_block_or_stmt st in
    let else_branch =
      if (peek st).tok = Lexer.KW_ELSE then (advance st; parse_block_or_stmt st)
      else []
    in
    [ Ast.Sif (cond, then_branch, else_branch) ]
  | Lexer.KW_FOR ->
    advance st;
    expect st Lexer.LPAREN;
    let header = parse_for_header st in
    expect st Lexer.RPAREN;
    let body = parse_block_or_stmt st in
    [ Ast.Sfor (header, body) ]
  | Lexer.LBRACE -> parse_block st
  | _ when starts_type st ->
    (* local declaration(s): type a = e, b, c[4]; *)
    let base = parse_base_type st in
    let elem_kind =
      match base with
      | Ast.Tint k -> k
      | Ast.Tvoid | Ast.Tarray _ | Ast.Tptr _ ->
        error_at t "local declarations must have integer type"
    in
    let rec declarators acc =
      let name = expect_ident st in
      let dims = parse_decl_dims st in
      let ty = if dims = [] then Ast.Tint elem_kind else Ast.Tarray (elem_kind, dims) in
      let init =
        if (peek st).tok = Lexer.ASSIGN then (advance st; Some (parse_expr st))
        else None
      in
      let acc = Ast.Sdecl (ty, name, init) :: acc in
      if (peek st).tok = Lexer.COMMA then (advance st; declarators acc)
      else (expect st Lexer.SEMI; List.rev acc)
    in
    declarators []
  | _ ->
    (* assignment or expression statement *)
    parse_assign_or_expr st

and parse_assign_or_expr st =
  let t = peek st in
  (* A call statement like ROCCC_store2next(sum, v); *)
  match t.tok, peek2 st with
  | Lexer.IDENT _, Some Lexer.LPAREN ->
    let e = parse_expr st in
    expect st Lexer.SEMI;
    [ Ast.Sexpr e ]
  | _ ->
    let lv = parse_lvalue st in
    let t1 = peek st in
    let stmt =
      match t1.tok with
      | Lexer.ASSIGN ->
        advance st;
        Ast.Sassign (lv, parse_expr st)
      | Lexer.PLUS_ASSIGN ->
        advance st;
        let rhs = parse_expr st in
        Ast.Sassign (lv, Ast.Binop (Ast.Add, lvalue_expr lv, rhs))
      | Lexer.MINUS_ASSIGN ->
        advance st;
        let rhs = parse_expr st in
        Ast.Sassign (lv, Ast.Binop (Ast.Sub, lvalue_expr lv, rhs))
      | Lexer.PLUSPLUS ->
        advance st;
        Ast.Sassign (lv, Ast.Binop (Ast.Add, lvalue_expr lv, Ast.const 1))
      | Lexer.MINUSMINUS ->
        advance st;
        Ast.Sassign (lv, Ast.Binop (Ast.Sub, lvalue_expr lv, Ast.const 1))
      | other ->
        error_at t1 ("expected an assignment, found " ^ Lexer.token_name other)
    in
    expect st Lexer.SEMI;
    [ stmt ]

and lvalue_expr = function
  | Ast.Lvar x -> Ast.Var x
  | Ast.Lindex (x, idx) -> Ast.Index (x, idx)
  | Ast.Lderef x -> Ast.Deref x

and parse_block st : Ast.stmt list =
  expect st Lexer.LBRACE;
  let rec loop acc =
    if (peek st).tok = Lexer.RBRACE then (advance st; List.rev acc)
    else if (peek st).tok = Lexer.EOF then
      error_at (peek st) "unexpected end of input inside block"
    else loop (List.rev_append (parse_stmt st) acc)
  in
  loop []

and parse_block_or_stmt st =
  if (peek st).tok = Lexer.LBRACE then parse_block st else parse_stmt st

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_param st : Ast.param =
  let base = parse_base_type st in
  let elem_kind =
    match base with
    | Ast.Tint k -> k
    | Ast.Tvoid | Ast.Tarray _ | Ast.Tptr _ ->
      error_at (peek st) "parameters must have integer (or pointer) type"
  in
  let is_ptr = (peek st).tok = Lexer.STAR in
  if is_ptr then advance st;
  let pname = expect_ident st in
  let dims = parse_decl_dims st in
  let ptype =
    if is_ptr then Ast.Tptr elem_kind
    else if dims = [] then Ast.Tint elem_kind
    else Ast.Tarray (elem_kind, dims)
  in
  { Ast.pname; ptype }

let parse_program (src : string) : Ast.program =
  let toks =
    try Lexer.tokenize src
    with Lexer.Error (msg, line, col) -> raise (Error (msg, line, col))
  in
  let st = { toks } in
  let globals = ref [] in
  let funcs = ref [] in
  let pipelines = ref [] in
  let rec loop () =
    if (peek st).tok = Lexer.EOF then ()
    else if
      (* top-level composition form (process networks):
         pipeline NAME = stageA -> stageB -> ... ; *)
      peek st |> fun t ->
      t.tok = Lexer.IDENT "pipeline"
      && (match peek2 st with Some (Lexer.IDENT _) -> true | _ -> false)
    then begin
      advance st;
      let name = expect_ident st in
      expect st Lexer.ASSIGN;
      let rec stages acc =
        let s = expect_ident st in
        if (peek st).tok = Lexer.ARROW then (advance st; stages (s :: acc))
        else List.rev (s :: acc)
      in
      let sts = stages [] in
      if List.length sts < 2 then
        error_at (peek st) "a pipeline needs at least two stages";
      expect st Lexer.SEMI;
      pipelines := { Ast.pl_name = name; pl_stages = sts } :: !pipelines;
      loop ()
    end
    else begin
      let ret = parse_base_type st in
      let name = expect_ident st in
      match (peek st).tok with
      | Lexer.LPAREN ->
        (* function definition *)
        advance st;
        let params =
          if (peek st).tok = Lexer.RPAREN then []
          else if (peek st).tok = Lexer.KW_VOID && peek2 st = Some Lexer.RPAREN
          then (advance st; [])
          else
            let rec ps acc =
              let p = parse_param st in
              if (peek st).tok = Lexer.COMMA then (advance st; ps (p :: acc))
              else List.rev (p :: acc)
            in
            ps []
        in
        expect st Lexer.RPAREN;
        let body = parse_block st in
        funcs := { Ast.fname = name; ret; params; body } :: !funcs;
        loop ()
      | _ ->
        (* global variable(s) *)
        let elem_kind =
          match ret with
          | Ast.Tint k -> k
          | Ast.Tvoid | Ast.Tarray _ | Ast.Tptr _ ->
            error_at (peek st) "global declarations must have integer type"
        in
        let rec declarators name =
          let dims = parse_decl_dims st in
          let gtype =
            if dims = [] then Ast.Tint elem_kind
            else Ast.Tarray (elem_kind, dims)
          in
          let ginit =
            if (peek st).tok = Lexer.ASSIGN then (advance st; Some (parse_expr st))
            else None
          in
          globals := { Ast.gtype; gname = name; ginit } :: !globals;
          if (peek st).tok = Lexer.COMMA then (
            advance st;
            declarators (expect_ident st))
          else expect st Lexer.SEMI
        in
        declarators name;
        loop ()
    end
  in
  loop ();
  { Ast.globals = List.rev !globals;
    funcs = List.rev !funcs;
    pipelines = List.rev !pipelines }

(** Parse a single function from a source string containing exactly one. *)
let parse_func (src : string) : Ast.func =
  match (parse_program src).funcs with
  | [ f ] -> f
  | [] -> raise (Error ("no function found in source", 1, 1))
  | f :: _ -> f
