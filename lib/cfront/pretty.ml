(** Pretty-printer rendering the AST back to C source; used by the figure
    reproductions (Figures 3 and 4 print each transformation stage). *)

open Ast

let kind_name (k : ikind) =
  match k.signed, k.bits with
  | true, 32 -> "int"
  | false, 32 -> "unsigned int"
  | true, 8 -> "char"
  | false, 8 -> "unsigned char"
  | true, 16 -> "short"
  | false, 16 -> "unsigned short"
  | true, n -> Printf.sprintf "int%d" n
  | false, n -> Printf.sprintf "uint%d" n

let ctype_name = function
  | Tint k -> kind_name k
  | Tptr k -> kind_name k ^ "*"
  | Tarray (k, dims) ->
    kind_name k ^ String.concat "" (List.map (Printf.sprintf "[%d]") dims)
  | Tvoid -> "void"

let binop_symbol = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Shl -> "<<" | Shr -> ">>"
  | Band -> "&" | Bor -> "|" | Bxor -> "^"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | Land -> "&&" | Lor -> "||"

let unop_symbol = function Neg -> "-" | Bnot -> "~" | Lnot -> "!"

(* Precedence levels used to omit redundant parentheses. *)
let binop_prec = function
  | Mul | Div | Mod -> 10
  | Add | Sub -> 9
  | Shl | Shr -> 8
  | Lt | Le | Gt | Ge -> 7
  | Eq | Ne -> 6
  | Band -> 5
  | Bxor -> 4
  | Bor -> 3
  | Land -> 2
  | Lor -> 1

let rec expr_doc ?(prec = 0) e =
  match e with
  | Const v -> Int64.to_string v
  | Var x -> x
  | Deref x -> "*" ^ x
  | Index (a, idx) ->
    a ^ String.concat "" (List.map (fun i -> "[" ^ expr_doc i ^ "]") idx)
  | Unop (op, a) ->
    let sym = unop_symbol op in
    let body = expr_doc ~prec:11 a in
    (* Avoid "--x" / "~~"-style token gluing when operands nest. *)
    if String.length body > 0 && body.[0] = sym.[0] then
      sym ^ "(" ^ body ^ ")"
    else sym ^ body
  | Cast (k, a) -> Printf.sprintf "(%s)%s" (kind_name k) (expr_doc ~prec:11 a)
  | Call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_doc args))
  | Binop (op, a, b) ->
    let p = binop_prec op in
    let s =
      Printf.sprintf "%s %s %s"
        (expr_doc ~prec:p a) (binop_symbol op) (expr_doc ~prec:(p + 1) b)
    in
    if p < prec then "(" ^ s ^ ")" else s

let expr_to_string e = expr_doc e

let lvalue_to_string = function
  | Lvar x -> x
  | Lderef x -> "*" ^ x
  | Lindex (a, idx) ->
    a ^ String.concat "" (List.map (fun i -> "[" ^ expr_doc i ^ "]") idx)

let rec stmt_lines ~indent s =
  let pad = String.make indent ' ' in
  match s with
  | Sdecl (t, n, init) ->
    let base, dims =
      match t with
      | Tarray (k, dims) ->
        kind_name k, String.concat "" (List.map (Printf.sprintf "[%d]") dims)
      | Tint k -> kind_name k, ""
      | Tptr k -> kind_name k ^ "*", ""
      | Tvoid -> "void", ""
    in
    let rhs = match init with None -> "" | Some e -> " = " ^ expr_doc e in
    [ Printf.sprintf "%s%s %s%s%s;" pad base n dims rhs ]
  | Sassign (lv, e) ->
    [ Printf.sprintf "%s%s = %s;" pad (lvalue_to_string lv) (expr_doc e) ]
  | Sexpr e -> [ Printf.sprintf "%s%s;" pad (expr_doc e) ]
  | Sreturn None -> [ pad ^ "return;" ]
  | Sreturn (Some e) -> [ Printf.sprintf "%sreturn %s;" pad (expr_doc e) ]
  | Sif (c, th, el) ->
    let head = Printf.sprintf "%sif (%s) {" pad (expr_doc c) in
    let body = List.concat_map (stmt_lines ~indent:(indent + 2)) th in
    if el = [] then head :: body @ [ pad ^ "}" ]
    else
      (head :: body)
      @ [ pad ^ "} else {" ]
      @ List.concat_map (stmt_lines ~indent:(indent + 2)) el
      @ [ pad ^ "}" ]
  | Sfor (h, body) ->
    let update =
      match h.step with
      | Const 1L -> h.index ^ "++"
      | Unop (Neg, Const 1L) -> h.index ^ "--"
      | Unop (Neg, step) ->
        Printf.sprintf "%s = %s - %s" h.index h.index (expr_doc step)
      | step -> Printf.sprintf "%s = %s + %s" h.index h.index (expr_doc step)
    in
    let head =
      Printf.sprintf "%sfor (%s = %s; %s %s %s; %s) {" pad h.index
        (expr_doc h.init) h.index (binop_symbol h.cond_op) (expr_doc h.bound)
        update
    in
    (head :: List.concat_map (stmt_lines ~indent:(indent + 2)) body)
    @ [ pad ^ "}" ]

let stmts_to_string ?(indent = 0) stmts =
  String.concat "\n" (List.concat_map (stmt_lines ~indent) stmts)

let param_to_string (p : param) =
  match p.ptype with
  | Tptr k -> Printf.sprintf "%s* %s" (kind_name k) p.pname
  | Tint k -> Printf.sprintf "%s %s" (kind_name k) p.pname
  | Tarray (k, dims) ->
    Printf.sprintf "%s %s%s" (kind_name k) p.pname
      (String.concat "" (List.map (Printf.sprintf "[%d]") dims))
  | Tvoid -> "void " ^ p.pname

let func_to_string (f : func) =
  let params = String.concat ", " (List.map param_to_string f.params) in
  Printf.sprintf "%s %s(%s) {\n%s\n}" (ctype_name f.ret) f.fname params
    (stmts_to_string ~indent:2 f.body)

let program_to_string (p : program) =
  let globals =
    List.map
      (fun g ->
        let rhs =
          match g.ginit with None -> "" | Some e -> " = " ^ expr_doc e
        in
        match g.gtype with
        | Tarray (k, dims) ->
          Printf.sprintf "%s %s%s%s;" (kind_name k) g.gname
            (String.concat "" (List.map (Printf.sprintf "[%d]") dims))
            rhs
        | t -> Printf.sprintf "%s %s%s;" (ctype_name t) g.gname rhs)
      p.globals
  in
  let pipelines =
    List.map
      (fun (pl : Ast.pipeline_decl) ->
        Printf.sprintf "pipeline %s = %s;" pl.pl_name
          (String.concat " -> " pl.pl_stages))
      p.pipelines
  in
  String.concat "\n\n" (globals @ List.map func_to_string p.funcs @ pipelines)
