(** Abstract syntax for the ROCCC-accepted C subset.

    Restrictions (paper §2): no recursion, pointers only as multiple-return
    outputs, for-loops with affine index updates, 1-D/2-D arrays, signed and
    unsigned integers up to 32 bits. Arbitrary widths are written [intN] /
    [uintN] (e.g. [int12], [uint19]); standard names map onto them
    (char = 8, short = 16, int = long = 32). *)

type ikind = { signed : bool; bits : int }

type ctype =
  | Tint of ikind
  | Tarray of ikind * int list  (** element kind, dimension sizes *)
  | Tptr of ikind               (** output parameter: [int *x] *)
  | Tvoid

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr
  | Band | Bor | Bxor
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor

type unop = Neg | Bnot | Lnot

type expr =
  | Const of int64
  | Var of string
  | Index of string * expr list  (** [A[i]] or [A[i][j]] *)
  | Deref of string              (** [*p] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list
  | Cast of ikind * expr

type lvalue =
  | Lvar of string
  | Lindex of string * expr list
  | Lderef of string

(** [for (index = init; index cond_op bound; index = index + step)] *)
type for_header = {
  index : string;
  init : expr;
  cond_op : binop;  (** one of Lt, Le, Gt, Ge, Ne *)
  bound : expr;
  step : expr;      (** amount added each iteration; negative for countdown *)
}

type stmt =
  | Sdecl of ctype * string * expr option
  | Sassign of lvalue * expr
  | Sif of expr * stmt list * stmt list
  | Sfor of for_header * stmt list
  | Sreturn of expr option
  | Sexpr of expr  (** expression statement, e.g. [ROCCC_store2next(s, v);] *)

type param = { pname : string; ptype : ctype }

type func = {
  fname : string;
  ret : ctype;
  params : param list;
  body : stmt list;
}

type global = { gtype : ctype; gname : string; ginit : expr option }

(** Top-level composition form (process networks):
    [pipeline name = stageA -> stageB -> ...;] chains kernels into a
    streaming network — each stage's output array feeds the next
    stage's input array through a sized FIFO channel. *)
type pipeline_decl = {
  pl_name : string;
  pl_stages : string list;  (** kernel function names, upstream first *)
}

type program = {
  globals : global list;
  funcs : func list;
  pipelines : pipeline_decl list;
}

(* ------------------------------------------------------------------ *)
(* Common kinds and small constructors                                 *)
(* ------------------------------------------------------------------ *)

let int32_kind = { signed = true; bits = 32 }
let uint32_kind = { signed = false; bits = 32 }
let bool_kind = { signed = false; bits = 1 }

let make_ikind ~signed bits =
  if bits < 1 || bits > 64 then
    invalid_arg (Printf.sprintf "Ast.make_ikind: width %d out of [1;64]" bits);
  { signed; bits }

let const i = Const (Int64.of_int i)

let is_comparison = function
  | Lt | Le | Gt | Ge | Eq | Ne -> true
  | Add | Sub | Mul | Div | Mod | Shl | Shr | Band | Bor | Bxor | Land | Lor ->
    false

let is_logical = function
  | Land | Lor -> true
  | Add | Sub | Mul | Div | Mod | Shl | Shr | Band | Bor | Bxor
  | Lt | Le | Gt | Ge | Eq | Ne -> false

(* ------------------------------------------------------------------ *)
(* Structural equality (modulo nothing; plain recursion)               *)
(* ------------------------------------------------------------------ *)

let equal_ikind (a : ikind) (b : ikind) = a.signed = b.signed && a.bits = b.bits

let equal_ctype a b =
  match a, b with
  | Tint k1, Tint k2 | Tptr k1, Tptr k2 -> equal_ikind k1 k2
  | Tarray (k1, d1), Tarray (k2, d2) -> equal_ikind k1 k2 && d1 = d2
  | Tvoid, Tvoid -> true
  | (Tint _ | Tarray _ | Tptr _ | Tvoid), _ -> false

let rec equal_expr a b =
  match a, b with
  | Const x, Const y -> Int64.equal x y
  | Var x, Var y | Deref x, Deref y -> String.equal x y
  | Index (x, xs), Index (y, ys) ->
    String.equal x y && List.length xs = List.length ys
    && List.for_all2 equal_expr xs ys
  | Binop (o1, a1, b1), Binop (o2, a2, b2) ->
    o1 = o2 && equal_expr a1 a2 && equal_expr b1 b2
  | Unop (o1, e1), Unop (o2, e2) -> o1 = o2 && equal_expr e1 e2
  | Call (f, xs), Call (g, ys) ->
    String.equal f g && List.length xs = List.length ys
    && List.for_all2 equal_expr xs ys
  | Cast (k1, e1), Cast (k2, e2) -> equal_ikind k1 k2 && equal_expr e1 e2
  | (Const _ | Var _ | Index _ | Deref _ | Binop _ | Unop _ | Call _ | Cast _), _
    -> false

(* ------------------------------------------------------------------ *)
(* Traversals                                                          *)
(* ------------------------------------------------------------------ *)

(** Fold over every sub-expression of [e], outermost first. *)
let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Const _ | Var _ | Deref _ -> acc
  | Index (_, idx) -> List.fold_left (fold_expr f) acc idx
  | Binop (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Unop (_, a) | Cast (_, a) -> fold_expr f acc a
  | Call (_, args) -> List.fold_left (fold_expr f) acc args

(** Rewrite every expression bottom-up with [f]. *)
let rec map_expr f e =
  let e' =
    match e with
    | Const _ | Var _ | Deref _ -> e
    | Index (a, idx) -> Index (a, List.map (map_expr f) idx)
    | Binop (op, a, b) -> Binop (op, map_expr f a, map_expr f b)
    | Unop (op, a) -> Unop (op, map_expr f a)
    | Cast (k, a) -> Cast (k, map_expr f a)
    | Call (g, args) -> Call (g, List.map (map_expr f) args)
  in
  f e'

let map_lvalue f = function
  | Lvar _ | Lderef _ as lv -> lv
  | Lindex (a, idx) -> Lindex (a, List.map (map_expr f) idx)

(** Rewrite every expression in a statement list bottom-up with [f]. *)
let rec map_stmts f stmts = List.map (map_stmt f) stmts

and map_stmt f = function
  | Sdecl (t, n, init) -> Sdecl (t, n, Option.map (map_expr f) init)
  | Sassign (lv, e) -> Sassign (map_lvalue f lv, map_expr f e)
  | Sif (c, th, el) -> Sif (map_expr f c, map_stmts f th, map_stmts f el)
  | Sfor (h, body) ->
    let h' =
      { h with
        init = map_expr f h.init;
        bound = map_expr f h.bound;
        step = map_expr f h.step }
    in
    Sfor (h', map_stmts f body)
  | Sreturn e -> Sreturn (Option.map (map_expr f) e)
  | Sexpr e -> Sexpr (map_expr f e)

(** Fold over every statement (pre-order) and expression in a body. *)
let rec fold_stmts fs fe acc stmts =
  List.fold_left (fold_stmt fs fe) acc stmts

and fold_stmt fs fe acc s =
  let acc = fs acc s in
  match s with
  | Sdecl (_, _, init) ->
    (match init with None -> acc | Some e -> fold_expr fe acc e)
  | Sassign (lv, e) ->
    let acc =
      match lv with
      | Lvar _ | Lderef _ -> acc
      | Lindex (_, idx) -> List.fold_left (fold_expr fe) acc idx
    in
    fold_expr fe acc e
  | Sif (c, th, el) ->
    let acc = fold_expr fe acc c in
    fold_stmts fs fe (fold_stmts fs fe acc th) el
  | Sfor (h, body) ->
    let acc = fold_expr fe acc h.init in
    let acc = fold_expr fe acc h.bound in
    let acc = fold_expr fe acc h.step in
    fold_stmts fs fe acc body
  | Sreturn e -> (match e with None -> acc | Some e -> fold_expr fe acc e)
  | Sexpr e -> fold_expr fe acc e

(** All variable names read by an expression (arrays count as reads). *)
let expr_reads e =
  fold_expr
    (fun acc e ->
      match e with
      | Var x | Index (x, _) | Deref x -> x :: acc
      | Const _ | Binop _ | Unop _ | Call _ | Cast _ -> acc)
    [] e
  |> List.sort_uniq String.compare

let lvalue_name = function Lvar x | Lindex (x, _) | Lderef x -> x

(** Compile-time constant value of an expression built only from literals
    and operators — what a C compiler accepts as a static initializer. *)
let rec const_value (e : expr) : int64 option =
  match e with
  | Const v -> Some v
  | Unop (Neg, a) -> Option.map Int64.neg (const_value a)
  | Unop (Bnot, a) -> Option.map Int64.lognot (const_value a)
  | Binop (Add, a, b) -> const_binop Int64.add a b
  | Binop (Sub, a, b) -> const_binop Int64.sub a b
  | Binop (Mul, a, b) -> const_binop Int64.mul a b
  | Binop (Shl, a, b) ->
    const_binop
      (fun x y -> Int64.shift_left x (Int64.to_int (Int64.logand y 63L)))
      a b
  | Binop (Shr, a, b) ->
    const_binop
      (fun x y -> Int64.shift_right x (Int64.to_int (Int64.logand y 63L)))
      a b
  | Binop (Bor, a, b) -> const_binop Int64.logor a b
  | Binop (Band, a, b) -> const_binop Int64.logand a b
  | Binop (Bxor, a, b) -> const_binop Int64.logxor a b
  | Cast (k, a) ->
    Option.map
      (fun v -> Roccc_util.Bits.truncate ~signed:k.signed k.bits v)
      (const_value a)
  | Var _ | Index _ | Deref _ | Binop _ | Unop _ | Call _ -> None

and const_binop f a b =
  match const_value a, const_value b with
  | Some x, Some y -> Some (f x y)
  | _ -> None

(* Names of ROCCC feedback intrinsics (paper §4.2.1). *)
let roccc_load_prev = "ROCCC_load_prev"
let roccc_store2next = "ROCCC_store2next"

let is_intrinsic name =
  String.equal name roccc_load_prev || String.equal name roccc_store2next
