(** Reference interpreter for the C subset — the software semantics the
    generated hardware is co-simulated against ("the soft nodes, by
    themselves, will have the same behavior on a CPU compared with the whole
    data path on a FPGA", paper §4.2.2). *)

open Ast

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type value =
  | Scalar of ikind * int64 ref
  | Arr of ikind * int list * int64 array

type runtime = {
  prog : program;
  vars : (string, value) Hashtbl.t;
  lut_funcs : (string, int64 -> int64) Hashtbl.t;
  mutable steps : int;
  max_steps : int;
}

let default_max_steps = 10_000_000

let dims_size dims = List.fold_left ( * ) 1 dims

let create ?(max_steps = default_max_steps) ?(lut_funcs = []) (prog : program) :
    runtime =
  let rt =
    { prog;
      vars = Hashtbl.create 16;
      lut_funcs = Hashtbl.create 4;
      steps = 0;
      max_steps }
  in
  List.iter (fun (n, f) -> Hashtbl.replace rt.lut_funcs n f) lut_funcs;
  List.iter
    (fun g ->
      match g.gtype with
      | Tint k ->
        let v = ref 0L in
        Hashtbl.replace rt.vars g.gname (Scalar (k, v))
      | Tarray (k, dims) ->
        Hashtbl.replace rt.vars g.gname
          (Arr (k, dims, Array.make (dims_size dims) 0L))
      | Tptr _ | Tvoid -> errf "unsupported global %s" g.gname)
    prog.globals;
  rt

(* Re-evaluate global initializers (constants only) — used by [reset]. *)
let init_globals rt =
  List.iter
    (fun g ->
      match g.ginit, Hashtbl.find_opt rt.vars g.gname with
      | Some init, Some (Scalar (k, r)) -> (
        match const_value init with
        | Some v -> r := Roccc_util.Bits.truncate ~signed:k.signed k.bits v
        | None -> errf "global %s initializer must be a constant" g.gname)
      | _, _ -> ())
    rt.prog.globals

let tick rt =
  rt.steps <- rt.steps + 1;
  if rt.steps > rt.max_steps then errf "interpreter step budget exhausted"

let find_var rt name =
  match Hashtbl.find_opt rt.vars name with
  | Some v -> v
  | None -> errf "undefined variable %s at runtime" name

let scalar_of rt name =
  match find_var rt name with
  | Scalar (k, r) -> k, r
  | Arr _ -> errf "%s is an array, expected scalar" name

let array_of rt name =
  match find_var rt name with
  | Arr (k, dims, data) -> k, dims, data
  | Scalar _ -> errf "%s is a scalar, expected array" name

let flat_index dims idx =
  (* Row-major: A[i][j] with dims [d0; d1] -> i*d1 + j. *)
  let rec loop dims idx acc =
    match dims, idx with
    | [], [] -> acc
    | d :: dims', i :: idx' ->
      if i < 0 || i >= d then errf "array index %d out of bounds [0;%d)" i d;
      loop dims' idx' ((acc * d) + i)
    | _ -> errf "dimension/index arity mismatch"
  in
  loop dims idx 0

let truncate_kind (k : ikind) v =
  Roccc_util.Bits.truncate ~signed:k.signed k.bits v

let bool_to_i64 b = if b then 1L else 0L
let i64_to_bool v = not (Int64.equal v 0L)

let eval_binop op (a : int64) (b : int64) : int64 =
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Div ->
    if Int64.equal b 0L then errf "division by zero" else Int64.div a b
  | Mod ->
    if Int64.equal b 0L then errf "modulo by zero" else Int64.rem a b
  | Shl -> Int64.shift_left a (Int64.to_int (Int64.logand b 63L))
  | Shr -> Int64.shift_right a (Int64.to_int (Int64.logand b 63L))
  | Band -> Int64.logand a b
  | Bor -> Int64.logor a b
  | Bxor -> Int64.logxor a b
  | Lt -> bool_to_i64 (Int64.compare a b < 0)
  | Le -> bool_to_i64 (Int64.compare a b <= 0)
  | Gt -> bool_to_i64 (Int64.compare a b > 0)
  | Ge -> bool_to_i64 (Int64.compare a b >= 0)
  | Eq -> bool_to_i64 (Int64.equal a b)
  | Ne -> bool_to_i64 (not (Int64.equal a b))
  | Land -> bool_to_i64 (i64_to_bool a && i64_to_bool b)
  | Lor -> bool_to_i64 (i64_to_bool a || i64_to_bool b)

exception Returned of int64 option

let rec eval_expr rt (e : expr) : int64 =
  tick rt;
  match e with
  | Const v -> v
  | Var x ->
    let _, r = scalar_of rt x in
    !r
  | Deref x ->
    let _, r = scalar_of rt x in
    !r
  | Index (a, idx) ->
    let _, dims, data = array_of rt a in
    let idx = List.map (fun i -> Int64.to_int (eval_expr rt i)) idx in
    data.(flat_index dims idx)
  | Binop (op, a, b) ->
    (* Short-circuit for logical operators, like C. *)
    (match op with
    | Land ->
      if i64_to_bool (eval_expr rt a) then
        bool_to_i64 (i64_to_bool (eval_expr rt b))
      else 0L
    | Lor ->
      if i64_to_bool (eval_expr rt a) then 1L
      else bool_to_i64 (i64_to_bool (eval_expr rt b))
    | _ -> eval_binop op (eval_expr rt a) (eval_expr rt b))
  | Unop (Neg, a) -> Int64.neg (eval_expr rt a)
  | Unop (Bnot, a) -> Int64.lognot (eval_expr rt a)
  | Unop (Lnot, a) -> bool_to_i64 (not (i64_to_bool (eval_expr rt a)))
  | Cast (k, a) -> truncate_kind k (eval_expr rt a)
  | Call (f, args) -> eval_call rt f args

and eval_call rt f args : int64 =
  if String.equal f roccc_load_prev then (
    match args with
    | [ Var x ] ->
      let _, r = scalar_of rt x in
      !r
    | _ -> errf "%s expects one variable" roccc_load_prev)
  else
    match Hashtbl.find_opt rt.lut_funcs f with
    | Some lut -> (
      match args with
      | [ a ] -> lut (eval_expr rt a)
      | _ -> errf "lookup table %s expects one argument" f)
    | None -> (
      match List.find_opt (fun fn -> String.equal fn.fname f) rt.prog.funcs with
      | None -> errf "call to unknown function %s" f
      | Some callee ->
        let arg_values = List.map (eval_expr rt) args in
        call_function rt callee arg_values)

(* Call a user function: bind parameters (saving shadowed names), run the
   body, restore. Recursion is rejected by Semant so shadowing is simple.
   Scalar formals consume the argument values in order; pointer formals —
   the paper's multiple-return-value outputs — receive no argument and are
   bound to fresh zeroed cells, so a callee body that writes through them
   (e.g. [*o = v]) executes instead of crashing on an unbound variable.
   The cells are local to the call: only the entry function's pointer
   outputs (bound by [run]) are observable results. *)
and call_function rt (callee : func) (arg_values : int64 list) : int64 =
  let saved =
    List.map (fun p -> p.pname, Hashtbl.find_opt rt.vars p.pname) callee.params
  in
  let rec bind params args =
    match params, args with
    | [], [] -> ()
    | ({ ptype = Tint k; _ } as p) :: ps, v :: vs ->
      Hashtbl.replace rt.vars p.pname (Scalar (k, ref (truncate_kind k v)));
      bind ps vs
    | ({ ptype = Tptr k; _ } as p) :: ps, vs ->
      Hashtbl.replace rt.vars p.pname (Scalar (k, ref 0L));
      bind ps vs
    | { ptype = Tarray _; pname; _ } :: _, _ ->
      errf "function %s: array parameter %s cannot be passed in a call"
        callee.fname pname
    | { ptype = Tvoid; pname; _ } :: _, _ ->
      errf "function %s: void parameter %s" callee.fname pname
    | [], _ :: _ | { ptype = Tint _; _ } :: _, [] ->
      errf "function %s: arity mismatch" callee.fname
  in
  bind callee.params arg_values;
  let result =
    try
      exec_stmts rt callee.body;
      0L
    with Returned r -> Option.value r ~default:0L
  in
  List.iter
    (fun (name, old) ->
      match old with
      | Some v -> Hashtbl.replace rt.vars name v
      | None -> Hashtbl.remove rt.vars name)
    saved;
  result

and exec_stmts rt stmts = List.iter (exec_stmt rt) stmts

and exec_stmt rt (s : stmt) : unit =
  tick rt;
  match s with
  | Sdecl (t, name, init) -> (
    match t with
    | Tint k ->
      let v = match init with None -> 0L | Some e -> eval_expr rt e in
      Hashtbl.replace rt.vars name (Scalar (k, ref (truncate_kind k v)))
    | Tarray (k, dims) ->
      Hashtbl.replace rt.vars name (Arr (k, dims, Array.make (dims_size dims) 0L))
    | Tptr _ | Tvoid -> errf "unsupported local declaration %s" name)
  | Sassign (lv, e) -> (
    let v = eval_expr rt e in
    match lv with
    | Lvar x | Lderef x ->
      let k, r = scalar_of rt x in
      r := truncate_kind k v
    | Lindex (a, idx) ->
      let k, dims, data = array_of rt a in
      let idx = List.map (fun i -> Int64.to_int (eval_expr rt i)) idx in
      data.(flat_index dims idx) <- truncate_kind k v)
  | Sif (c, th, el) ->
    if i64_to_bool (eval_expr rt c) then exec_stmts rt th else exec_stmts rt el
  | Sfor (h, body) ->
    let k, r =
      match Hashtbl.find_opt rt.vars h.index with
      | Some (Scalar (k, r)) -> k, r
      | Some (Arr _) -> errf "loop index %s is an array" h.index
      | None ->
        let r = ref 0L in
        Hashtbl.replace rt.vars h.index (Scalar (int32_kind, r));
        int32_kind, r
    in
    r := truncate_kind k (eval_expr rt h.init);
    let continue_loop () =
      i64_to_bool (eval_binop h.cond_op !r (eval_expr rt h.bound))
    in
    while continue_loop () do
      tick rt;
      exec_stmts rt body;
      r := truncate_kind k (Int64.add !r (eval_expr rt h.step))
    done
  | Sreturn e -> raise (Returned (Option.map (eval_expr rt) e))
  | Sexpr e -> (
    match e with
    | Call (f, [ Var x; v ]) when String.equal f roccc_store2next ->
      let k, r = scalar_of rt x in
      r := truncate_kind k (eval_expr rt v)
    | _ -> ignore (eval_expr rt e))

(* ------------------------------------------------------------------ *)
(* Kernel invocation                                                   *)
(* ------------------------------------------------------------------ *)

(** Result of running a kernel: the function return value (if non-void), the
    values written through pointer outputs, and the final contents of every
    array parameter (output arrays are read back from here). *)
type outcome = {
  return_value : int64 option;
  pointer_outputs : (string * int64) list;
  arrays : (string * int64 array) list;
}

(** Run function [fname] with scalar arguments [scalars] (by name) and array
    arguments [arrays] (by name; contents copied in). Pointer parameters
    need no argument — they are outputs. *)
let run ?(scalars = []) ?(arrays = []) (rt : runtime) (fname : string) : outcome
    =
  rt.steps <- 0;
  init_globals rt;
  let f =
    match List.find_opt (fun fn -> String.equal fn.fname fname) rt.prog.funcs with
    | Some f -> f
    | None -> errf "no function named %s" fname
  in
  let pointer_refs = ref [] in
  List.iter
    (fun p ->
      match p.ptype with
      | Tint k ->
        let v =
          match List.assoc_opt p.pname scalars with
          | Some v -> v
          | None -> errf "missing scalar argument %s" p.pname
        in
        Hashtbl.replace rt.vars p.pname (Scalar (k, ref (truncate_kind k v)))
      | Tptr k ->
        let r = ref 0L in
        pointer_refs := (p.pname, r) :: !pointer_refs;
        Hashtbl.replace rt.vars p.pname (Scalar (k, r))
      | Tarray (k, dims) ->
        let data =
          match List.assoc_opt p.pname arrays with
          | Some a ->
            if Array.length a <> dims_size dims then
              errf "array argument %s has %d elements, expected %d" p.pname
                (Array.length a) (dims_size dims);
            Array.map (truncate_kind k) a
          | None -> Array.make (dims_size dims) 0L
        in
        Hashtbl.replace rt.vars p.pname (Arr (k, dims, data))
      | Tvoid -> errf "void parameter %s" p.pname)
    f.params;
  let return_value =
    try
      exec_stmts rt f.body;
      None
    with Returned r -> r
  in
  let arrays_out =
    List.filter_map
      (fun p ->
        match Hashtbl.find_opt rt.vars p.pname with
        | Some (Arr (_, _, data)) -> Some (p.pname, Array.copy data)
        | Some (Scalar _) | None -> None)
      f.params
  in
  { return_value;
    pointer_outputs = List.rev_map (fun (n, r) -> n, !r) !pointer_refs;
    arrays = arrays_out }

(** Read a global scalar's current value (after a {!run}); [None] when the
    name is not a scalar global. Used by the profiler's counters. *)
let read_global (rt : runtime) (name : string) : int64 option =
  match Hashtbl.find_opt rt.vars name with
  | Some (Scalar (_, r)) -> Some !r
  | Some (Arr _) | None -> None

(** Convenience: parse, check and run a source string in one step. *)
let run_source ?(luts = []) ?(lut_funcs = []) ?scalars ?arrays src fname =
  let prog = Parser.parse_program src in
  let _env = Semant.check_program ~luts prog in
  let rt = create ~lut_funcs prog in
  run ?scalars ?arrays rt fname
