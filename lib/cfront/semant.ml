(** Semantic analysis: symbol resolution, the ROCCC C-subset restrictions
    (no recursion, statically analyzable pointers, literal array dims), and
    expression typing used by the VM lowering. *)

open Ast

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(** Signature of a lookup-table function: input kind, output kind. *)
type lut_signature = { lut_in : ikind; lut_out : ikind }

type env = {
  vars : (string, ctype) Hashtbl.t;  (** in-scope variables *)
  functions : (string, func) Hashtbl.t;
  luts : (string, lut_signature) Hashtbl.t;
}

let create_env ?(luts = []) (prog : program) : env =
  let vars = Hashtbl.create 16 in
  let functions = Hashtbl.create 4 in
  let lut_tbl = Hashtbl.create 4 in
  List.iter (fun g -> Hashtbl.replace vars g.gname g.gtype) prog.globals;
  List.iter (fun f -> Hashtbl.replace functions f.fname f) prog.funcs;
  List.iter (fun (name, s) -> Hashtbl.replace lut_tbl name s) luts;
  { vars; functions; luts = lut_tbl }

let var_type env name =
  match Hashtbl.find_opt env.vars name with
  | Some t -> t
  | None -> errf "undeclared variable %s" name

(* ------------------------------------------------------------------ *)
(* Expression typing                                                   *)
(* ------------------------------------------------------------------ *)

(* Usual arithmetic conversion between two integer kinds: promote to the
   wider width; the result is unsigned if either operand of that width is. *)
let join_kinds (a : ikind) (b : ikind) : ikind =
  let bits = max a.bits b.bits in
  let bits = max bits 32 in  (* C integer promotion to at least int *)
  let signed =
    if a.bits = b.bits then a.signed && b.signed
    else if a.bits > b.bits then a.signed
    else b.signed
  in
  { signed; bits }

let rec type_of_expr env (e : expr) : ikind =
  match e with
  | Const v ->
    if Int64.compare v 0L < 0 then
      (* negative literals are signed, widening past int only when the
         magnitude demands it *)
      { signed = true; bits = max 32 (Roccc_util.Bits.bits_for_signed v) }
    else if Int64.compare v 2147483647L <= 0 then int32_kind
    else { signed = false; bits = Roccc_util.Bits.bits_for_unsigned v }
  | Var x -> (
    match var_type env x with
    | Tint k -> k
    | Tarray _ -> errf "array %s used without an index" x
    | Tptr _ -> errf "pointer %s read without dereference" x
    | Tvoid -> errf "void variable %s" x)
  | Deref x -> (
    match var_type env x with
    | Tptr k -> k
    | Tint _ | Tarray _ | Tvoid -> errf "*%s: %s is not a pointer" x x)
  | Index (a, idx) -> (
    match var_type env a with
    | Tarray (k, dims) ->
      if List.length idx <> List.length dims then
        errf "array %s has %d dimension(s) but %d index(es) given" a
          (List.length dims) (List.length idx);
      k
    | Tint _ | Tptr _ | Tvoid -> errf "%s is not an array" a)
  | Unop (Lnot, _) -> bool_kind
  | Unop ((Neg | Bnot), a) -> join_kinds (type_of_expr env a) int32_kind
  | Cast (k, _) -> k
  | Binop (op, a, b) ->
    if is_comparison op || is_logical op then bool_kind
    else join_kinds (type_of_expr env a) (type_of_expr env b)
  | Call (f, args) ->
    if String.equal f roccc_load_prev then (
      match args with
      | [ Var x ] -> (
        match var_type env x with
        | Tint k -> k
        | Tarray _ | Tptr _ | Tvoid ->
          errf "%s expects a scalar variable" roccc_load_prev)
      | _ -> errf "%s expects exactly one variable argument" roccc_load_prev)
    else if String.equal f roccc_store2next then
      errf "%s is a statement, not an expression" roccc_store2next
    else (
      match Hashtbl.find_opt env.luts f with
      | Some s -> s.lut_out
      | None -> (
        match Hashtbl.find_opt env.functions f with
        | Some callee -> (
          match callee.ret with
          | Tint k -> k
          | Tvoid -> errf "void function %s used as an expression" f
          | Tarray _ | Tptr _ -> errf "function %s has unsupported return type" f)
        | None -> errf "call to unknown function %s" f))

(* ------------------------------------------------------------------ *)
(* Checks                                                              *)
(* ------------------------------------------------------------------ *)

let rec check_expr env (e : expr) : unit =
  ignore (type_of_expr env e);
  match e with
  | Const _ | Var _ | Deref _ -> ()
  | Index (_, idx) -> List.iter (check_expr env) idx
  | Binop (_, a, b) -> check_expr env a; check_expr env b
  | Unop (_, a) | Cast (_, a) -> check_expr env a
  | Call (f, args) ->
    if String.equal f roccc_load_prev then ()
    else (
      List.iter (check_expr env) args;
      match Hashtbl.find_opt env.functions f with
      | Some callee ->
        let n_scalar =
          List.length (List.filter (fun p ->
            match p.ptype with Tint _ -> true | Tarray _ | Tptr _ | Tvoid -> false)
            callee.params)
        in
        if List.length args <> n_scalar then
          errf "function %s expects %d scalar argument(s), got %d" f n_scalar
            (List.length args)
      | None ->
        if Hashtbl.mem env.luts f then (
          if List.length args <> 1 then
            errf "lookup table %s expects exactly one argument" f)
        else ())

let check_lvalue env (lv : lvalue) : unit =
  match lv with
  | Lvar x -> (
    match var_type env x with
    | Tint _ -> ()
    | Tarray _ -> errf "cannot assign whole array %s" x
    | Tptr _ -> errf "cannot reassign pointer %s (write through *%s)" x x
    | Tvoid -> errf "cannot assign void variable %s" x)
  | Lindex (a, idx) -> (
    List.iter (check_expr env) idx;
    match var_type env a with
    | Tarray (_, dims) ->
      if List.length idx <> List.length dims then
        errf "array %s has %d dimension(s) but %d index(es) given" a
          (List.length dims) (List.length idx)
    | Tint _ | Tptr _ | Tvoid -> errf "%s is not an array" a)
  | Lderef x -> (
    match var_type env x with
    | Tptr _ -> ()
    | Tint _ | Tarray _ | Tvoid -> errf "*%s: %s is not a pointer" x x)

let rec check_stmt env (s : stmt) : unit =
  match s with
  | Sdecl (t, name, init) ->
    (match t with
    | Tint _ | Tarray _ -> ()
    | Tptr _ -> errf "local pointer %s is not allowed" name
    | Tvoid -> errf "void local %s" name);
    Hashtbl.replace env.vars name t;
    Option.iter (check_expr env) init
  | Sassign (lv, e) ->
    check_lvalue env lv;
    check_expr env e
  | Sif (c, th, el) ->
    check_expr env c;
    List.iter (check_stmt env) th;
    List.iter (check_stmt env) el
  | Sfor (h, body) ->
    (* Loop index must be a declared integer. *)
    if not (Hashtbl.mem env.vars h.index) then
      Hashtbl.replace env.vars h.index (Tint int32_kind);
    check_expr env h.init;
    check_expr env h.bound;
    check_expr env h.step;
    List.iter (check_stmt env) body
  | Sreturn e -> Option.iter (check_expr env) e
  | Sexpr e -> (
    match e with
    | Call (f, [ Var x; v ]) when String.equal f roccc_store2next ->
      (match var_type env x with
      | Tint _ -> ()
      | Tarray _ | Tptr _ | Tvoid ->
        errf "%s expects a scalar variable" roccc_store2next);
      check_expr env v
    | Call (f, _) when String.equal f roccc_store2next ->
      errf "%s expects (variable, value)" roccc_store2next
    | Call _ -> check_expr env e
    | Const _ | Var _ | Index _ | Deref _ | Binop _ | Unop _ | Cast _ ->
      errf "expression statement has no effect")

(* Recursion check over the user-function call graph (paper §2: no recursion). *)
let check_no_recursion (prog : program) : unit =
  let callees f =
    fold_stmts
      (fun acc _ -> acc)
      (fun acc e ->
        match e with
        | Call (g, _) when not (is_intrinsic g) -> g :: acc
        | Call _ | Const _ | Var _ | Index _ | Deref _ | Binop _ | Unop _
        | Cast _ -> acc)
      [] f.body
  in
  let defined = List.map (fun f -> f.fname) prog.funcs in
  let graph =
    List.map (fun f -> f.fname, List.filter (fun g -> List.mem g defined) (callees f))
      prog.funcs
  in
  (* DFS cycle detection with colors. *)
  let color = Hashtbl.create 8 in
  let rec visit name =
    match Hashtbl.find_opt color name with
    | Some `Done -> ()
    | Some `Active -> errf "recursion involving function %s is not allowed" name
    | None ->
      Hashtbl.replace color name `Active;
      (match List.assoc_opt name graph with
      | Some cs -> List.iter visit cs
      | None -> ());
      Hashtbl.replace color name `Done
  in
  List.iter (fun (name, _) -> visit name) graph

(** Check a whole program. Returns the populated environment on success;
    raises {!Error} otherwise. *)
let check_program ?(luts = []) (prog : program) : env =
  let env = create_env ~luts prog in
  check_no_recursion prog;
  List.iter
    (fun g ->
      match g.gtype with
      | Tint _ | Tarray _ -> Option.iter (check_expr env) g.ginit
      | Tptr _ -> errf "global pointer %s is not allowed" g.gname
      | Tvoid -> errf "void global %s" g.gname)
    prog.globals;
  List.iter
    (fun f ->
      (* Parameters enter scope for the duration of the function body. The
         single shared table is fine because kernels are checked one at a
         time and names are unique per the subset's conventions. *)
      List.iter (fun p -> Hashtbl.replace env.vars p.pname p.ptype) f.params;
      List.iter (check_stmt env) f.body)
    prog.funcs;
  env
