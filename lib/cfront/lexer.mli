(** Hand-written lexer for the ROCCC C subset. *)

type token =
  | INT_LIT of int64
  | IDENT of string
  | KW_IF | KW_ELSE | KW_FOR | KW_RETURN | KW_VOID | KW_CONST
  | KW_INT | KW_UNSIGNED | KW_SIGNED | KW_CHAR | KW_SHORT | KW_LONG
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | SHL | SHR
  | LT | LE | GT | GE | EQEQ | NE
  | ANDAND | OROR
  | ASSIGN
  | PLUS_ASSIGN | MINUS_ASSIGN
  | PLUSPLUS | MINUSMINUS
  | QUESTION | COLON
  | ARROW  (** [->]: pipeline composition (process networks) *)
  | EOF

type located = { tok : token; line : int; col : int }

exception Error of string * int * int
(** message, line, column *)

val token_name : token -> string
(** Human-readable token name for error messages. *)

val tokenize : string -> located list
(** Tokenize a whole source string (the final element is EOF). Handles
    line and block comments, decimal and hex literals with u/U/l/L
    suffixes. Raises {!Error} on malformed input. *)
