(** Procedures: basic blocks of VM instructions plus explicit control flow —
    the Machine-SUIF-style container the CFG, data-flow and SSA libraries
    operate on. *)

type label = int

type terminator =
  | Jump of label
  | Branch of Instr.vreg * label * label  (** if reg <> 0 then l1 else l2 *)
  | Ret

(** SSA phi: [dst = phi(args)], one arg per predecessor label. *)
type phi = {
  phi_dst : Instr.vreg;
  phi_args : (label * Instr.vreg) list;
  phi_kind : Instr.ikind;
}

type block = {
  label : label;
  mutable phis : phi list;
  mutable instrs : Instr.instr list;
  mutable term : terminator;
}

(** Input/output port of a procedure: the hardware-facing interface. Inputs
    bind registers at entry; each output names the register whose value at
    [Ret] is the port's result. *)
type port = { port_name : string; port_reg : Instr.vreg; port_kind : Instr.ikind }

type t = {
  pname : string;
  mutable blocks : block list;  (** entry block first *)
  inputs : port list;
  mutable outputs : port list;
  reg_kinds : (Instr.vreg, Instr.ikind) Hashtbl.t;
  reg_gen : Roccc_util.Id_gen.t;
  label_gen : Roccc_util.Id_gen.t;
  feedbacks : (string * Instr.ikind * int64) list;
      (** feedback signals threaded through LPR/SNX *)
}

let create ?(feedbacks = []) pname : t =
  { pname;
    blocks = [];
    inputs = [];
    outputs = [];
    reg_kinds = Hashtbl.create 32;
    reg_gen = Roccc_util.Id_gen.create ();
    label_gen = Roccc_util.Id_gen.create ();
    feedbacks }

let fresh_reg (p : t) (kind : Instr.ikind) : Instr.vreg =
  let r = Roccc_util.Id_gen.fresh p.reg_gen in
  Hashtbl.replace p.reg_kinds r kind;
  r

let reg_kind (p : t) (r : Instr.vreg) : Instr.ikind =
  match Hashtbl.find_opt p.reg_kinds r with
  | Some k -> k
  | None -> Roccc_cfront.Ast.int32_kind

let set_reg_kind (p : t) (r : Instr.vreg) (k : Instr.ikind) =
  Hashtbl.replace p.reg_kinds r k

let fresh_block (p : t) : block =
  let b =
    { label = Roccc_util.Id_gen.fresh p.label_gen;
      phis = [];
      instrs = [];
      term = Ret }
  in
  p.blocks <- p.blocks @ [ b ];
  b

let find_block (p : t) (l : label) : block =
  match List.find_opt (fun b -> b.label = l) p.blocks with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Proc.find_block: no block %d" l)

let entry (p : t) : block =
  match p.blocks with
  | b :: _ -> b
  | [] -> invalid_arg "Proc.entry: empty procedure"

let successors (b : block) : label list =
  match b.term with
  | Jump l -> [ l ]
  | Branch (_, l1, l2) -> [ l1; l2 ]
  | Ret -> []

(** Registers defined by a block (phis then instrs). *)
let block_defs (b : block) : Instr.vreg list =
  List.map (fun p -> p.phi_dst) b.phis
  @ List.filter_map (fun (i : Instr.instr) -> i.Instr.dst) b.instrs

(** Registers used by a block's instructions and terminator (phi uses are
    attributed to predecessors by analyses that need that precision). *)
let block_uses (b : block) : Instr.vreg list =
  List.concat_map (fun (i : Instr.instr) -> i.Instr.srcs) b.instrs
  @ (match b.term with Branch (r, _, _) -> [ r ] | Jump _ | Ret -> [])

let all_instrs (p : t) : Instr.instr list =
  List.concat_map (fun b -> b.instrs) p.blocks

(** Deep copy: mutating the copy (SSA conversion, the optimizer) leaves the
    original untouched. Instructions and phis are immutable records, so the
    lists are shared; blocks and the kind table are fresh. *)
let copy (p : t) : t =
  { pname = p.pname;
    blocks =
      List.map
        (fun b ->
          { label = b.label; phis = b.phis; instrs = b.instrs; term = b.term })
        p.blocks;
    inputs = p.inputs;
    outputs = p.outputs;
    reg_kinds = Hashtbl.copy p.reg_kinds;
    reg_gen = Roccc_util.Id_gen.create ~start:(Roccc_util.Id_gen.peek p.reg_gen) ();
    label_gen =
      Roccc_util.Id_gen.create ~start:(Roccc_util.Id_gen.peek p.label_gen) ();
    feedbacks = p.feedbacks }

(* ------------------------------------------------------------------ *)
(* Well-formedness                                                     *)
(* ------------------------------------------------------------------ *)

exception Ill_formed of string

let illf fmt = Printf.ksprintf (fun s -> raise (Ill_formed s)) fmt

(** Structural CFG invariants, independent of SSA form: non-empty, unique
    block labels, terminator targets resolve, phi arguments come from
    actual predecessors and cover every predecessor, and every used
    register has a definition (an instruction, a phi, or an input port).
    Raises {!Ill_formed} on the first violation. *)
let verify_cfg (p : t) : unit =
  if p.blocks = [] then illf "proc %s has no blocks" p.pname;
  let labels = List.map (fun b -> b.label) p.blocks in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun l ->
      if Hashtbl.mem seen l then illf "proc %s: duplicate block L%d" p.pname l;
      Hashtbl.replace seen l ())
    labels;
  List.iter
    (fun b ->
      List.iter
        (fun l ->
          if not (Hashtbl.mem seen l) then
            illf "proc %s: L%d jumps to missing block L%d" p.pname b.label l)
        (successors b))
    p.blocks;
  (* predecessor map *)
  let preds : (label, label list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          Hashtbl.replace preds s
            (b.label :: Option.value (Hashtbl.find_opt preds s) ~default:[]))
        (successors b))
    p.blocks;
  List.iter
    (fun b ->
      let bpreds = Option.value (Hashtbl.find_opt preds b.label) ~default:[] in
      List.iter
        (fun phi ->
          let arg_labels = List.map fst phi.phi_args in
          let uniq = List.sort_uniq compare arg_labels in
          if List.length uniq <> List.length arg_labels then
            illf "proc %s: phi v%d in L%d repeats a predecessor" p.pname
              phi.phi_dst b.label;
          List.iter
            (fun l ->
              if not (List.mem l bpreds) then
                illf "proc %s: phi v%d in L%d names non-predecessor L%d"
                  p.pname phi.phi_dst b.label l)
            arg_labels;
          List.iter
            (fun l ->
              if not (List.mem l arg_labels) then
                illf "proc %s: phi v%d in L%d misses predecessor L%d" p.pname
                  phi.phi_dst b.label l)
            bpreds)
        b.phis)
    p.blocks;
  (* every use has some definition *)
  let defined = Hashtbl.create 64 in
  List.iter (fun port -> Hashtbl.replace defined port.port_reg ()) p.inputs;
  List.iter
    (fun b ->
      List.iter (fun phi -> Hashtbl.replace defined phi.phi_dst ()) b.phis;
      List.iter
        (fun (i : Instr.instr) ->
          match i.Instr.dst with
          | Some d -> Hashtbl.replace defined d ()
          | None -> ())
        b.instrs)
    p.blocks;
  let check_use where r =
    if not (Hashtbl.mem defined r) then
      illf "proc %s: %s uses undefined register v%d" p.pname where r
  in
  List.iter
    (fun b ->
      List.iter
        (fun phi ->
          List.iter
            (fun (_, r) ->
              check_use (Printf.sprintf "phi v%d in L%d" phi.phi_dst b.label) r)
            phi.phi_args)
        b.phis;
      List.iter
        (fun (i : Instr.instr) ->
          List.iter
            (check_use (Printf.sprintf "instruction in L%d" b.label))
            i.Instr.srcs)
        b.instrs;
      match b.term with
      | Branch (r, _, _) ->
        check_use (Printf.sprintf "branch in L%d" b.label) r
      | Jump _ | Ret -> ())
    p.blocks;
  List.iter
    (fun port ->
      check_use (Printf.sprintf "output port %s" port.port_name) port.port_reg)
    p.outputs

let to_string (p : t) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "proc %s\n" p.pname);
  List.iter
    (fun port ->
      Buffer.add_string buf
        (Printf.sprintf "  in  %s = v%d :%s%d\n" port.port_name port.port_reg
           (if port.port_kind.signed then "s" else "u")
           port.port_kind.bits))
    p.inputs;
  List.iter
    (fun port ->
      Buffer.add_string buf
        (Printf.sprintf "  out %s <- v%d\n" port.port_name port.port_reg))
    p.outputs;
  List.iter
    (fun (name, _, init) ->
      Buffer.add_string buf (Printf.sprintf "  feedback %s (init %Ld)\n" name init))
    p.feedbacks;
  List.iter
    (fun b ->
      Buffer.add_string buf (Printf.sprintf "L%d:\n" b.label);
      List.iter
        (fun phi ->
          Buffer.add_string buf
            (Printf.sprintf "  v%d = phi %s\n" phi.phi_dst
               (String.concat ", "
                  (List.map
                     (fun (l, r) -> Printf.sprintf "[L%d: v%d]" l r)
                     phi.phi_args))))
        b.phis;
      List.iter
        (fun i -> Buffer.add_string buf ("  " ^ Instr.to_string i ^ "\n"))
        b.instrs;
      let term =
        match b.term with
        | Jump l -> Printf.sprintf "  jump L%d\n" l
        | Branch (r, l1, l2) -> Printf.sprintf "  branch v%d ? L%d : L%d\n" r l1 l2
        | Ret -> "  ret\n"
      in
      Buffer.add_string buf term)
    p.blocks;
  Buffer.contents buf
