(** The SUIFvm-like instruction set (paper §4.2.1): three-address
    instructions over virtual registers, extended with the ROCCC-specific
    opcodes LPR (load previous), SNX (store next), LUT (table lookup) and
    MUX (hardware select materializing SSA phis). *)

type vreg = int

type ikind = Roccc_cfront.Ast.ikind

exception Vm_error of string
(** A runtime trap during VM/data-path evaluation — division or modulo by
    zero, or a malformed operand list. Raised by {!eval_op} instead of a
    bare [Failure] so callers (the execution engine, the driver, the CLI)
    can surface it as a user-facing simulation error. *)

type opcode =
  | Add | Sub | Mul | Div | Rem
  | Shl | Shr
  | Band | Bor | Bxor
  | Bnot | Neg
  | Slt | Sle | Sgt | Sge | Seq | Sne
  | Land | Lor | Lnot
  | Mov  (** register copy *)
  | Ldc of int64  (** load constant *)
  | Cvt  (** width/signedness conversion *)
  | Mux  (** srcs = [sel; a; b]: dst = sel ? a : b *)
  | Lpr of string  (** load the previous iteration's feedback value *)
  | Snx of string  (** store this iteration's feedback value *)
  | Lut of string  (** lookup-table read *)

type instr = {
  op : opcode;
  dst : vreg option;  (** [None] only for Snx *)
  srcs : vreg list;
  kind : ikind;  (** result kind (stored kind for Snx) *)
}

val arity : opcode -> int
val is_commutative : opcode -> bool
val opcode_name : opcode -> string
val to_string : instr -> string

val make : ?dst:vreg -> opcode -> vreg list -> ikind -> instr
(** Checked constructor: raises [Invalid_argument] on arity or destination
    mismatches. *)

val eval_op :
  lut:(string -> int64 -> int64) ->
  lpr:(string -> int64) ->
  opcode ->
  int64 list ->
  int64
(** Evaluate an opcode over fetched operand values (the caller truncates the
    result to [kind]). Snx is handled by the evaluators, not here. Raises
    {!Vm_error} on division/modulo by zero or an arity mismatch. *)
