(** Procedures: basic blocks of VM instructions plus explicit control flow —
    the Machine-SUIF-style container the CFG, data-flow and SSA libraries
    operate on. *)

type label = int

type terminator =
  | Jump of label
  | Branch of Instr.vreg * label * label  (** if reg <> 0 then l1 else l2 *)
  | Ret

(** SSA phi: one argument per predecessor label. *)
type phi = {
  phi_dst : Instr.vreg;
  phi_args : (label * Instr.vreg) list;
  phi_kind : Instr.ikind;
}

type block = {
  label : label;
  mutable phis : phi list;
  mutable instrs : Instr.instr list;
  mutable term : terminator;
}

(** Hardware-facing port: inputs bind registers at entry; each output names
    the register whose value at [Ret] is the result. *)
type port = {
  port_name : string;
  port_reg : Instr.vreg;
  port_kind : Instr.ikind;
}

type t = {
  pname : string;
  mutable blocks : block list;  (** entry block first *)
  inputs : port list;
  mutable outputs : port list;
  reg_kinds : (Instr.vreg, Instr.ikind) Hashtbl.t;
  reg_gen : Roccc_util.Id_gen.t;
  label_gen : Roccc_util.Id_gen.t;
  feedbacks : (string * Instr.ikind * int64) list;
      (** feedback signals threaded through LPR/SNX: name, kind, initial *)
}

val create : ?feedbacks:(string * Instr.ikind * int64) list -> string -> t

val fresh_reg : t -> Instr.ikind -> Instr.vreg
val reg_kind : t -> Instr.vreg -> Instr.ikind
val set_reg_kind : t -> Instr.vreg -> Instr.ikind -> unit

val fresh_block : t -> block
val find_block : t -> label -> block
val entry : t -> block

val successors : block -> label list
val block_defs : block -> Instr.vreg list
val block_uses : block -> Instr.vreg list
val all_instrs : t -> Instr.instr list

val copy : t -> t
(** Deep copy: mutating the copy (SSA conversion, the optimizer) leaves
    the original untouched. *)

exception Ill_formed of string

val verify_cfg : t -> unit
(** Structural well-formedness, independent of SSA form: unique block
    labels, terminator targets resolve, phi arguments come from actual
    predecessors and cover all of them, every used register has some
    definition (instruction, phi, or input port). Raises {!Ill_formed}. *)

val to_string : t -> string
