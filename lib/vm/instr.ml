(** The SUIFvm-like virtual-machine instruction set (paper §4.2.1): assembly-
    style three-address instructions over virtual registers, extended with
    the ROCCC-specific opcodes LPR (load previous), SNX (store next), LUT
    (table lookup) and MUX (hardware select, materializing SSA phis). *)

type vreg = int

type ikind = Roccc_cfront.Ast.ikind

exception Vm_error of string
(** A runtime trap during VM/data-path evaluation (division by zero,
    malformed operand list). Raised instead of a bare [Failure] so the
    driver and CLI can surface it as a user-facing message. *)

let vm_errf fmt = Printf.ksprintf (fun s -> raise (Vm_error s)) fmt

type opcode =
  | Add | Sub | Mul | Div | Rem
  | Shl | Shr
  | Band | Bor | Bxor
  | Bnot | Neg
  | Slt | Sle | Sgt | Sge | Seq | Sne
  | Land | Lor | Lnot
  | Mov                (** register copy *)
  | Ldc of int64       (** load constant *)
  | Cvt                (** width/signedness conversion (truncate/extend) *)
  | Mux                (** srcs = [sel; a; b]: dst = sel ? a : b *)
  | Lpr of string      (** load previous iteration's value of a feedback *)
  | Snx of string      (** store this iteration's value of a feedback *)
  | Lut of string      (** lookup-table read *)

type instr = {
  op : opcode;
  dst : vreg option;   (** None only for Snx *)
  srcs : vreg list;
  kind : ikind;        (** result kind (or stored kind for Snx) *)
}

let arity = function
  | Add | Sub | Mul | Div | Rem | Shl | Shr | Band | Bor | Bxor
  | Slt | Sle | Sgt | Sge | Seq | Sne | Land | Lor -> 2
  | Bnot | Neg | Lnot | Mov | Cvt | Lut _ | Snx _ -> 1
  | Ldc _ | Lpr _ -> 0
  | Mux -> 3

let is_commutative = function
  | Add | Mul | Band | Bor | Bxor | Seq | Sne | Land | Lor -> true
  | Sub | Div | Rem | Shl | Shr | Bnot | Neg | Slt | Sle | Sgt | Sge
  | Lnot | Mov | Ldc _ | Cvt | Mux | Lpr _ | Snx _ | Lut _ -> false

let opcode_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | Shl -> "shl" | Shr -> "shr"
  | Band -> "and" | Bor -> "or" | Bxor -> "xor"
  | Bnot -> "not" | Neg -> "neg"
  | Slt -> "slt" | Sle -> "sle" | Sgt -> "sgt" | Sge -> "sge"
  | Seq -> "seq" | Sne -> "sne"
  | Land -> "land" | Lor -> "lor" | Lnot -> "lnot"
  | Mov -> "mov"
  | Ldc v -> Printf.sprintf "ldc %Ld" v
  | Cvt -> "cvt"
  | Mux -> "mux"
  | Lpr s -> Printf.sprintf "lpr[%s]" s
  | Snx s -> Printf.sprintf "snx[%s]" s
  | Lut s -> Printf.sprintf "lut[%s]" s

let to_string (i : instr) : string =
  let dst = match i.dst with Some d -> Printf.sprintf "v%d = " d | None -> "" in
  let srcs = String.concat ", " (List.map (Printf.sprintf "v%d") i.srcs) in
  Printf.sprintf "%s%s %s :%s%d" dst (opcode_name i.op) srcs
    (if i.kind.signed then "s" else "u")
    i.kind.bits

let make ?(dst : vreg option) op srcs kind : instr =
  if List.length srcs <> arity op then
    invalid_arg
      (Printf.sprintf "Instr.make: %s expects %d operand(s), got %d"
         (opcode_name op) (arity op) (List.length srcs));
  (match op, dst with
  | Snx _, Some _ -> invalid_arg "Instr.make: snx has no destination"
  | Snx _, None -> ()
  | _, None -> invalid_arg "Instr.make: missing destination"
  | _, Some _ -> ());
  { op; dst; srcs; kind }

(* Evaluate an opcode over already-fetched operand values; [lookup] resolves
   LUT names, [feedback] resolves LPR names. Width truncation is applied by
   the caller using [kind]. *)
let eval_op ~(lut : string -> int64 -> int64) ~(lpr : string -> int64)
    (op : opcode) (operands : int64 list) : int64 =
  let bool_to_i64 p = if p then 1L else 0L in
  let nonzero v = not (Int64.equal v 0L) in
  match op, operands with
  | Add, [ a; b ] -> Int64.add a b
  | Sub, [ a; b ] -> Int64.sub a b
  | Mul, [ a; b ] -> Int64.mul a b
  | Div, [ a; b ] ->
    if Int64.equal b 0L then vm_errf "division by zero" else Int64.div a b
  | Rem, [ a; b ] ->
    if Int64.equal b 0L then vm_errf "modulo by zero" else Int64.rem a b
  | Shl, [ a; b ] -> Int64.shift_left a (Int64.to_int (Int64.logand b 63L))
  | Shr, [ a; b ] -> Int64.shift_right a (Int64.to_int (Int64.logand b 63L))
  | Band, [ a; b ] -> Int64.logand a b
  | Bor, [ a; b ] -> Int64.logor a b
  | Bxor, [ a; b ] -> Int64.logxor a b
  | Bnot, [ a ] -> Int64.lognot a
  | Neg, [ a ] -> Int64.neg a
  | Slt, [ a; b ] -> bool_to_i64 (Int64.compare a b < 0)
  | Sle, [ a; b ] -> bool_to_i64 (Int64.compare a b <= 0)
  | Sgt, [ a; b ] -> bool_to_i64 (Int64.compare a b > 0)
  | Sge, [ a; b ] -> bool_to_i64 (Int64.compare a b >= 0)
  | Seq, [ a; b ] -> bool_to_i64 (Int64.equal a b)
  | Sne, [ a; b ] -> bool_to_i64 (not (Int64.equal a b))
  | Land, [ a; b ] -> bool_to_i64 (nonzero a && nonzero b)
  | Lor, [ a; b ] -> bool_to_i64 (nonzero a || nonzero b)
  | Lnot, [ a ] -> bool_to_i64 (not (nonzero a))
  | Mov, [ a ] | Cvt, [ a ] -> a
  | Ldc v, [] -> v
  | Mux, [ sel; a; b ] -> if nonzero sel then a else b
  | Lpr name, [] -> lpr name
  | Lut name, [ a ] -> lut name a
  | Snx _, [ _ ] -> vm_errf "snx handled by the evaluator"
  | _ ->
    vm_errf "arity mismatch for %s: got %d operand(s), expected %d"
      (opcode_name op) (List.length operands) (arity op)
