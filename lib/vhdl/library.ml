(** The pre-existing parameterized VHDL component library (paper §4.1): the
    controllers "are all implemented as pre-existing parameterized FSMs in a
    VHDL library". This module renders those components — a sequential-scan
    address generator, a sliding-window smart buffer, and the higher-level
    controller FSM — as generic VHDL entities, and assembles the full
    execution-model system (Figure 2) around a compiled data path for 1-D
    single-window kernels. *)


(* ------------------------------------------------------------------ *)
(* Parameterized library entities (generic-based, self-contained)      *)
(* ------------------------------------------------------------------ *)

(** Sequential input address generator: scans [0, total) in bursts of
    [bus_elements], one request per cycle while enabled. *)
let address_generator_vhdl : string =
  {|library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity roccc_addr_gen is
  generic (
    total_words  : integer := 64;
    addr_width   : integer := 10
  );
  port (
    clk     : in  std_logic;
    rst     : in  std_logic;
    enable  : in  std_logic;
    address : out unsigned(addr_width - 1 downto 0);
    valid   : out std_logic;
    done    : out std_logic
  );
end entity roccc_addr_gen;

architecture rtl of roccc_addr_gen is
  signal counter : unsigned(addr_width - 1 downto 0);
  signal running : std_logic;
begin
  address <= counter;
  valid   <= running and enable;
  done    <= not running;
  scan : process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        counter <= (others => '0');
        running <= '1';
      elsif running = '1' and enable = '1' then
        if counter = to_unsigned(total_words - 1, addr_width) then
          running <= '0';
        else
          counter <= counter + 1;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;
|}

(** 1-D smart buffer: a shift register of window_size elements; data shifts
    in once per cycle; the window is exported in parallel once primed
    ("reuses live input data, cleans unused data and exports the present
    valid input data set", §4.1). *)
let smart_buffer_vhdl ~(window : int) ~(element_bits : int) : string =
  let taps =
    String.concat ";\n"
      (List.init window (fun i ->
           Printf.sprintf "    win%d : out signed(%d downto 0)" i
             (element_bits - 1)))
  in
  let exports =
    String.concat "\n"
      (List.init window (fun i ->
           Printf.sprintf "  win%d <= regs(%d);" i (window - 1 - i)))
  in
  Printf.sprintf
    {|library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity roccc_smart_buffer is
  port (
    clk      : in  std_logic;
    rst      : in  std_logic;
    din      : in  signed(%d downto 0);
    din_valid: in  std_logic;
%s;
    window_valid : out std_logic
  );
end entity roccc_smart_buffer;

architecture rtl of roccc_smart_buffer is
  type reg_file is array (0 to %d) of signed(%d downto 0);
  signal regs  : reg_file;
  signal fill  : unsigned(7 downto 0);
begin
%s
  window_valid <= '1' when fill >= to_unsigned(%d, 8) else '0';
  shift : process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        fill <= (others => '0');
      elsif din_valid = '1' then
        regs(0) <= din;
        for i in 1 to %d loop
          regs(i) <= regs(i - 1);
        end loop;
        if fill < to_unsigned(%d, 8) then
          fill <= fill + 1;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;
|}
    (element_bits - 1) taps (window - 1) (element_bits - 1) exports window
    (window - 1) window

(** 2-D smart buffer: line buffers for a [win_rows] x [win_cols] window
    sliding over an image with [row_length] columns — (win_rows - 1) full
    line FIFOs plus the window register column, the structure the generator
    sizes for 2-D kernels (Sobel, wavelet). Taps are named
    [win_<r>_<c>]. *)
let line_buffer_vhdl ~(win_rows : int) ~(win_cols : int) ~(row_length : int)
    ~(element_bits : int) : string =
  let depth = ((win_rows - 1) * row_length) + win_cols in
  let taps =
    String.concat ";\n"
      (List.concat_map
         (fun r ->
           List.init win_cols (fun c ->
               Printf.sprintf "    win_%d_%d : out signed(%d downto 0)" r c
                 (element_bits - 1)))
         (List.init win_rows (fun r -> r)))
  in
  let exports =
    String.concat "\n"
      (List.concat_map
         (fun r ->
           List.init win_cols (fun c ->
               (* newest element is regs(0); tap (r, c) looks back by
                  (win_rows-1-r) lines plus (win_cols-1-c) elements *)
               let back =
                 ((win_rows - 1 - r) * row_length) + (win_cols - 1 - c)
               in
               Printf.sprintf "  win_%d_%d <= regs(%d);" r c back))
         (List.init win_rows (fun r -> r)))
  in
  Printf.sprintf
    {|library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity roccc_line_buffer is
  port (
    clk      : in  std_logic;
    rst      : in  std_logic;
    din      : in  signed(%d downto 0);
    din_valid: in  std_logic;
%s;
    window_valid : out std_logic
  );
end entity roccc_line_buffer;

architecture rtl of roccc_line_buffer is
  type reg_file is array (0 to %d) of signed(%d downto 0);
  signal regs : reg_file;
  signal fill : unsigned(15 downto 0);
begin
%s
  window_valid <= '1' when fill >= to_unsigned(%d, 16) else '0';
  shift : process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        fill <= (others => '0');
      elsif din_valid = '1' then
        regs(0) <= din;
        for i in 1 to %d loop
          regs(i) <= regs(i - 1);
        end loop;
        if fill < to_unsigned(%d, 16) then
          fill <= fill + 1;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;
|}
    (element_bits - 1) taps (depth - 1) (element_bits - 1) exports depth
    (depth - 1) depth

(** The higher-level controller FSM sequencing fill / steady / drain. *)
let controller_vhdl : string =
  {|library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity roccc_controller is
  generic (
    total_iterations : integer := 64;
    pipeline_latency : integer := 3
  );
  port (
    clk          : in  std_logic;
    rst          : in  std_logic;
    window_valid : in  std_logic;
    launch       : out std_logic;
    running      : out std_logic;
    finished     : out std_logic
  );
end entity roccc_controller;

architecture rtl of roccc_controller is
  type state_t is (s_filling, s_steady, s_draining, s_done);
  signal state    : state_t;
  signal launched : unsigned(31 downto 0);
  signal retired  : unsigned(31 downto 0);
begin
  launch   <= window_valid when (state = s_filling or state = s_steady) else '0';
  running  <= '0' when state = s_done else '1';
  finished <= '1' when state = s_done else '0';
  fsm : process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        state    <= s_filling;
        launched <= (others => '0');
        retired  <= (others => '0');
      else
        if window_valid = '1' and (state = s_filling or state = s_steady) then
          launched <= launched + 1;
          state    <= s_steady;
        end if;
        if launched > retired then
          retired <= retired + 1;
        end if;
        if state = s_steady and launched = to_unsigned(total_iterations, 32) then
          state <= s_draining;
        end if;
        if state = s_draining and retired = to_unsigned(total_iterations, 32) then
          state <= s_done;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;
|}

(** Synchronous FIFO channel between two engines (process networks):
    standard circular-buffer FIFO with full/empty flags — the producer
    stalls on [full], the consumer on [empty], matching the simulator's
    backpressure semantics. *)
let fifo_vhdl : string =
  {|library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity roccc_fifo is
  generic (
    depth        : integer := 16;
    element_bits : integer := 32
  );
  port (
    clk    : in  std_logic;
    rst    : in  std_logic;
    wr_en  : in  std_logic;
    din    : in  signed(element_bits - 1 downto 0);
    full   : out std_logic;
    rd_en  : in  std_logic;
    dout   : out signed(element_bits - 1 downto 0);
    empty  : out std_logic
  );
end entity roccc_fifo;

architecture rtl of roccc_fifo is
  type mem_t is array (0 to depth - 1) of signed(element_bits - 1 downto 0);
  signal mem   : mem_t;
  signal wptr  : integer range 0 to depth - 1 := 0;
  signal rptr  : integer range 0 to depth - 1 := 0;
  signal count : integer range 0 to depth := 0;
begin
  full  <= '1' when count = depth else '0';
  empty <= '1' when count = 0 else '0';
  dout  <= mem(rptr);
  queue : process(clk)
    variable delta : integer;
  begin
    if rising_edge(clk) then
      if rst = '1' then
        wptr <= 0; rptr <= 0; count <= 0;
      else
        delta := 0;
        if wr_en = '1' and count < depth then
          mem(wptr) <= din;
          if wptr = depth - 1 then wptr <= 0; else wptr <= wptr + 1; end if;
          delta := delta + 1;
        end if;
        if rd_en = '1' and count > 0 then
          if rptr = depth - 1 then rptr <= 0; else rptr <= rptr + 1; end if;
          delta := delta - 1;
        end if;
        count <= count + delta;
      end if;
    end if;
  end process;
end architecture rtl;
|}

(* ------------------------------------------------------------------ *)
(* System assembly (Figure 2) for 1-D single-window kernels            *)
(* ------------------------------------------------------------------ *)

(** Names of library entities used by {!system_wrapper_vhdl}. *)
let library_entities = [ "roccc_addr_gen"; "roccc_smart_buffer"; "roccc_controller" ]

(** Names of library entities used by {!network_wrapper_vhdl}. *)
let network_entities = library_entities @ [ "roccc_fifo" ]

(** Render the Figure 2 system around a compiled data path: address
    generator -> BRAM port -> smart buffer -> data path, sequenced by the
    controller. The data-path entity is referenced by [dp_entity] with
    window ports [win_ports] (in window order) and output ports
    [out_ports]. 1-D unit-stride single-array kernels only (e.g. FIR). *)
let system_wrapper_vhdl ~(dp_entity : string) ~(element_bits : int)
    ~(win_ports : string list) ~(out_ports : (string * int) list)
    ~(total_words : int) ~(iterations : int) ~(latency : int) : string =
  let window = List.length win_ports in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (address_generator_vhdl);
  Buffer.add_string buf "\n";
  Buffer.add_string buf (smart_buffer_vhdl ~window ~element_bits);
  Buffer.add_string buf "\n";
  Buffer.add_string buf controller_vhdl;
  Buffer.add_string buf "\n";
  let out_decls =
    String.concat ";\n"
      (List.map
         (fun (name, bits) ->
           Printf.sprintf "    %s : out signed(%d downto 0)" name (bits - 1))
         out_ports)
  in
  Buffer.add_string buf
    (Printf.sprintf
       {|library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity %s_system is
  port (
    clk   : in  std_logic;
    rst   : in  std_logic;
    bram_data  : in  signed(%d downto 0);
    bram_valid : in  std_logic;
    bram_addr  : out unsigned(9 downto 0);
    bram_rd    : out std_logic;
%s;
    finished : out std_logic
  );
end entity %s_system;

architecture structural of %s_system is
%s
  signal window_valid : std_logic;
  signal launch       : std_logic;
begin
  u_addr : entity work.roccc_addr_gen
    generic map (total_words => %d, addr_width => 10)
    port map (clk => clk, rst => rst, enable => '1',
              address => bram_addr, valid => bram_rd, done => open);

  u_buffer : entity work.roccc_smart_buffer
    port map (clk => clk, rst => rst, din => bram_data,
              din_valid => bram_valid,
%s,
              window_valid => window_valid);

  u_control : entity work.roccc_controller
    generic map (total_iterations => %d, pipeline_latency => %d)
    port map (clk => clk, rst => rst, window_valid => window_valid,
              launch => launch, running => open, finished => finished);

  u_datapath : entity work.%s
    port map (clk => clk, rst => rst,
%s%s);
end architecture structural;
|}
       dp_entity (element_bits - 1) out_decls dp_entity dp_entity
       (String.concat "\n"
          (List.mapi
             (fun i _ ->
               Printf.sprintf "  signal w%d : signed(%d downto 0);" i
                 (element_bits - 1))
             win_ports))
       total_words
       (String.concat ",\n"
          (List.mapi (fun i _ -> Printf.sprintf "              win%d => w%d" i i) win_ports))
       iterations latency dp_entity
       (String.concat ",\n"
          (List.mapi
             (fun i p -> Printf.sprintf "              %s => w%d" p i)
             win_ports)
       ^ ",\n")
       (String.concat ",\n"
          (List.map
             (fun (name, _) -> Printf.sprintf "              %s => %s" name name)
             out_ports)));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Network assembly (process networks): engines chained through FIFOs  *)
(* ------------------------------------------------------------------ *)

(** One stage of a network top level, as seen by the wiring generator. *)
type net_stage = {
  ns_entity : string;                 (** data-path entity name *)
  ns_element_bits : int;              (** stream element width *)
  ns_out_ports : (string * int) list; (** output ports (name, bits) *)
}

(** Render the network top level: each stage's Figure 2 system entity is
    instantiated and chained to the next through a [roccc_fifo] channel
    instance of the statically sized depth. The first stage keeps the
    external BRAM read interface; the last stage's output ports and the
    final [finished] are exported. FIFO full/empty drive the stall
    inputs the per-stage controllers observe (the simulator's
    credit-based launch gating is the behavioural model of that
    wiring). *)
let network_wrapper_vhdl ~(name : string) ~(stages : net_stage list)
    ~(fifo_depths : int list) : string =
  let n = List.length stages in
  if n < 2 then invalid_arg "network_wrapper_vhdl: need >= 2 stages";
  if List.length fifo_depths <> n - 1 then
    invalid_arg "network_wrapper_vhdl: need one depth per adjacent pair";
  let buf = Buffer.create 2048 in
  Buffer.add_string buf fifo_vhdl;
  Buffer.add_string buf "\n";
  let first = List.hd stages in
  let last = List.nth stages (n - 1) in
  let out_decls =
    String.concat ";\n"
      (List.map
         (fun (port, bits) ->
           Printf.sprintf "    %s : out signed(%d downto 0)" port (bits - 1))
         last.ns_out_ports)
  in
  (* one data/handshake signal bundle per channel *)
  let channel_signals =
    String.concat "\n"
      (List.mapi
         (fun i (st : net_stage) ->
           Printf.sprintf
             "  signal ch%d_din   : signed(%d downto 0);\n\
              \  signal ch%d_dout  : signed(%d downto 0);\n\
              \  signal ch%d_wr    : std_logic;\n\
              \  signal ch%d_rd    : std_logic;\n\
              \  signal ch%d_full  : std_logic;\n\
              \  signal ch%d_empty : std_logic;\n\
              \  signal st%d_done  : std_logic;"
             i (st.ns_element_bits - 1) i (st.ns_element_bits - 1) i i i i i)
         (List.filteri (fun i _ -> i < n - 1) stages))
  in
  let fifo_insts =
    String.concat "\n"
      (List.mapi
         (fun i depth ->
           let st = List.nth stages i in
           Printf.sprintf
             "  u_fifo%d : entity work.roccc_fifo\n\
              \    generic map (depth => %d, element_bits => %d)\n\
              \    port map (clk => clk, rst => rst,\n\
              \              wr_en => ch%d_wr, din => ch%d_din, full => ch%d_full,\n\
              \              rd_en => ch%d_rd, dout => ch%d_dout, empty => ch%d_empty);"
             i depth st.ns_element_bits i i i i i i)
         fifo_depths)
  in
  let stage_insts =
    String.concat "\n"
      (List.mapi
         (fun i (st : net_stage) ->
           let sys = st.ns_entity ^ "_system" in
           let src_port, src_valid =
             if i = 0 then "bram_data", "bram_valid"
             else
               Printf.sprintf "ch%d_dout" (i - 1),
               Printf.sprintf "(not ch%d_empty)" (i - 1)
           in
           let first_out = fst (List.hd st.ns_out_ports) in
           let outs =
             if i = n - 1 then
               String.concat ",\n"
                 (List.map
                    (fun (port, _) ->
                      Printf.sprintf "              %s => %s" port port)
                    st.ns_out_ports)
             else
               (* stream port order: results enter the channel in output
                  port order, matching the simulator's retire order *)
               Printf.sprintf "              %s => ch%d_din" first_out i
           in
           let finished =
             if i = n - 1 then "finished" else Printf.sprintf "st%d_done" i
           in
           let addr_wiring =
             if i = 0 then
               "              bram_addr => bram_addr, bram_rd => bram_rd,\n"
             else
               Printf.sprintf
                 "              bram_addr => open, bram_rd => ch%d_rd,\n" (i - 1)
           in
           Printf.sprintf
             "  u_stage%d : entity work.%s\n\
              \    port map (clk => clk, rst => rst,\n\
              \              bram_data => %s, bram_valid => %s,\n\
              %s%s,\n\
              \              finished => %s);"
             i sys src_port src_valid addr_wiring outs finished)
         stages)
  in
  let wr_wiring =
    String.concat "\n"
      (List.mapi
         (fun i _ ->
           Printf.sprintf
             "  ch%d_wr <= (not st%d_done) and (not ch%d_full);" i i i)
         fifo_depths)
  in
  Buffer.add_string buf
    (Printf.sprintf
       {|library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity %s_net is
  port (
    clk   : in  std_logic;
    rst   : in  std_logic;
    bram_data  : in  signed(%d downto 0);
    bram_valid : in  std_logic;
    bram_addr  : out unsigned(9 downto 0);
    bram_rd    : out std_logic;
%s;
    finished : out std_logic
  );
end entity %s_net;

architecture structural of %s_net is
%s
begin
%s
%s
%s
end architecture structural;
|}
       name
       (first.ns_element_bits - 1)
       out_decls name name channel_signals wr_wiring fifo_insts stage_insts);
  Buffer.contents buf
