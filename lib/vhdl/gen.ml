(** VHDL code generation (paper §4.2.4): one component per data-path node;
    single-assigned virtual registers become wires; instructions become
    combinational or sequential statements depending on whether the pipeliner
    latched them; LUT instructions instantiate ROM components initialized
    from text files; SNX/LPR pairs become feedback registers. *)

module Instr = Roccc_vm.Instr
module Proc = Roccc_vm.Proc
module Graph = Roccc_datapath.Graph
module Widths = Roccc_datapath.Widths
module Pipeline = Roccc_datapath.Pipeline
module Lut_conv = Roccc_hir.Lut_conv

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let reg_name r = Printf.sprintf "v%d" r

(* Signal name of register [r] delayed by [k] pipeline stages. *)
let delayed_name r k = if k = 0 then reg_name r else Printf.sprintf "v%d_d%d" r k

let vtype_of (proc : Proc.t) (widths : Widths.t) (r : Instr.vreg) : Ast.vtype =
  let kind = Proc.reg_kind proc r in
  let w = try Widths.width widths r with _ -> kind.Roccc_cfront.Ast.bits in
  if kind.Roccc_cfront.Ast.signed then Ast.Signed w else Ast.Unsigned w

(* Literal rendering for numeric_std. Wide literals use bit-string form:
   to_signed/to_unsigned take a VHDL integer (32-bit), which cannot carry
   a >32-bit constant. *)
let literal (kind : Instr.ikind) (w : int) (v : int64) : string =
  if w > 32 then
    let bits =
      String.init w (fun i ->
          if
            Int64.equal
              (Int64.logand (Int64.shift_right_logical v (w - 1 - i)) 1L)
              1L
          then '1'
          else '0')
    in
    Printf.sprintf "%s'(\"%s\")"
      (if kind.Roccc_cfront.Ast.signed then "signed" else "unsigned")
      bits
  else if kind.Roccc_cfront.Ast.signed then
    Printf.sprintf "to_signed(%Ld, %d)" v w
  else
    Printf.sprintf "to_unsigned(%Ld, %d)"
      (Roccc_util.Bits.truncate_unsigned w v)
      w

(* resize helper text *)
let resized name w = Printf.sprintf "resize(%s, %d)" name w

(* ------------------------------------------------------------------ *)
(* Per-instruction RHS                                                 *)
(* ------------------------------------------------------------------ *)

(* Build the RHS expression for an instruction whose operands are available
   as signal texts [ops] with widths [ws]. The result is resized to the
   destination width by the caller when needed. *)
let instr_rhs (i : Instr.instr) ~(dst_width : int) ~(ops : string list)
    ~(ws : int list) : string =
  let op1 () = List.nth ops 0 in
  let op2 () = List.nth ops 1 in
  let bin symbol =
    Printf.sprintf "resize(%s %s %s, %d)"
      (resized (op1 ()) dst_width)
      symbol
      (resized (op2 ()) dst_width)
      dst_width
  in
  let cmp symbol =
    Printf.sprintf "\"1\" when %s %s %s else \"0\"" (op1 ()) symbol (op2 ())
  in
  ignore ws;
  match i.Instr.op with
  | Instr.Add -> bin "+"
  | Instr.Sub -> bin "-"
  | Instr.Mul -> Printf.sprintf "resize(%s * %s, %d)" (op1 ()) (op2 ()) dst_width
  | Instr.Div -> bin "/"
  | Instr.Rem -> bin "rem"
  | Instr.Neg -> Printf.sprintf "resize(-%s, %d)" (resized (op1 ()) dst_width) dst_width
  | Instr.Shl ->
    Printf.sprintf "shift_left(%s, to_integer(%s))"
      (resized (op1 ()) dst_width)
      (op2 ())
  | Instr.Shr ->
    Printf.sprintf "resize(shift_right(%s, to_integer(%s)), %d)" (op1 ())
      (op2 ()) dst_width
  | Instr.Band -> Printf.sprintf "resize(%s, %d) and resize(%s, %d)" (op1 ()) dst_width (op2 ()) dst_width
  | Instr.Bor -> Printf.sprintf "resize(%s, %d) or resize(%s, %d)" (op1 ()) dst_width (op2 ()) dst_width
  | Instr.Bxor -> Printf.sprintf "resize(%s, %d) xor resize(%s, %d)" (op1 ()) dst_width (op2 ()) dst_width
  | Instr.Bnot -> Printf.sprintf "not resize(%s, %d)" (op1 ()) dst_width
  | Instr.Slt -> cmp "<"
  | Instr.Sle -> cmp "<="
  | Instr.Sgt -> cmp ">"
  | Instr.Sge -> cmp ">="
  | Instr.Seq -> cmp "="
  | Instr.Sne -> cmp "/="
  | Instr.Land ->
    Printf.sprintf "\"1\" when (%s /= 0) and (%s /= 0) else \"0\"" (op1 ()) (op2 ())
  | Instr.Lor ->
    Printf.sprintf "\"1\" when (%s /= 0) or (%s /= 0) else \"0\"" (op1 ()) (op2 ())
  | Instr.Lnot -> Printf.sprintf "\"1\" when %s = 0 else \"0\"" (op1 ())
  | Instr.Mov -> resized (op1 ()) dst_width
  | Instr.Cvt -> resized (op1 ()) dst_width
  | Instr.Ldc v -> literal i.Instr.kind dst_width v
  | Instr.Mux ->
    Printf.sprintf "%s when %s /= 0 else %s"
      (resized (List.nth ops 1) dst_width)
      (List.nth ops 0)
      (resized (List.nth ops 2) dst_width)
  | Instr.Lpr _ | Instr.Snx _ -> errf "gen: feedback handled separately"
  | Instr.Lut _ -> errf "gen: LUT handled as component instance"

(* ------------------------------------------------------------------ *)
(* Node components                                                     *)
(* ------------------------------------------------------------------ *)

(* Data gathered per node for the top-level wiring. *)
type node_iface = {
  ni_node : Graph.node;
  ni_name : string;
  ni_in : (Instr.vreg * int) list;   (* (reg, delay) input ports *)
  ni_out : (Instr.vreg * int) list;  (* (reg, delay) output ports *)
  ni_lpr : string list;  (* feedback signals read *)
  ni_snx : string list;  (* feedback signals written *)
  ni_has_clk : bool;
}

(* The interface fields double as the debugging contract of a node. *)
let _node_iface_contract (ni : node_iface) =
  ni.ni_lpr, ni.ni_snx, ni.ni_has_clk

(* Delays of [r] needed by instruction [i]: the stage distance the pipeliner
   recorded for this edge ({!Pipeline.use_delay}) — the generator does not
   re-derive staging. *)
let use_delay (p : Pipeline.t) (i : Instr.instr) (r : Instr.vreg) : int =
  Pipeline.use_delay p i r

let feedback_port name = Printf.sprintf "fb_%s" name
let feedback_next_port name = Printf.sprintf "fb_%s_next" name

(* Generate the component for one data-path node. [external_defs] says which
   registers are defined outside the node; [consumed_delays r] lists the
   delayed versions of r that outside consumers need from this node. *)
let gen_node (proc : Proc.t) (widths : Widths.t) (p : Pipeline.t)
    (luts : Lut_conv.table list) (n : Graph.node)
    ~(consumed_delays : Instr.vreg -> int list) : Ast.design_unit * node_iface
    =
  let name = Printf.sprintf "%s_node%d" proc.Proc.pname n.Graph.id in
  let defs = Graph.node_defs n in
  let is_local r = List.mem r defs in
  (* inputs: (reg, delay) pairs needed by the node's instructions *)
  let in_pairs = ref [] in
  let lpr_names = ref [] and snx_names = ref [] in
  List.iter
    (fun (i : Instr.instr) ->
      (match i.Instr.op with
      | Instr.Lpr fb ->
        if not (List.mem fb !lpr_names) then lpr_names := !lpr_names @ [ fb ]
      | Instr.Snx fb ->
        if not (List.mem fb !snx_names) then snx_names := !snx_names @ [ fb ]
      | _ -> ());
      List.iter
        (fun r ->
          if not (is_local r) then begin
            let k = use_delay p i r in
            if not (List.mem (r, k) !in_pairs) then
              in_pairs := !in_pairs @ [ r, k ]
          end)
        i.Instr.srcs)
    n.Graph.instrs;
  (* outputs: delayed versions of local defs that outside consumers need *)
  let out_pairs =
    List.concat_map
      (fun d -> List.map (fun k -> d, k) (consumed_delays d))
      defs
  in
  (* internal delay chains needed: for each local def d, the max delay used
     locally or exported *)
  let max_delay d =
    let local_uses =
      List.concat_map
        (fun (i : Instr.instr) ->
          if List.mem d i.Instr.srcs then [ use_delay p i d ] else [])
        n.Graph.instrs
    in
    List.fold_left max 0 (local_uses @ List.map snd out_pairs)
  in
  let needs_clock =
    !snx_names <> [] || List.exists (fun d -> max_delay d > 0) defs
  in
  let clk_ports =
    if needs_clock then
      [ { Ast.port_name = "clk"; port_dir = Ast.Dir_in; port_type = Ast.Std_logic } ]
    else []
  in
  let ports =
    clk_ports
    @ List.map
        (fun (r, k) ->
          { Ast.port_name = delayed_name r k;
            port_dir = Ast.Dir_in;
            port_type = vtype_of proc widths r })
        !in_pairs
    @ List.map
        (fun fb ->
          let kind =
            match
              List.find_opt (fun (nm, _, _) -> String.equal nm fb) proc.Proc.feedbacks
            with
            | Some (_, k, _) -> k
            | None -> Roccc_cfront.Ast.int32_kind
          in
          { Ast.port_name = feedback_port fb;
            port_dir = Ast.Dir_in;
            port_type =
              (if kind.Roccc_cfront.Ast.signed then
                 Ast.Signed kind.Roccc_cfront.Ast.bits
               else Ast.Unsigned kind.Roccc_cfront.Ast.bits) })
        !lpr_names
    @ List.map
        (fun (r, k) ->
          { Ast.port_name = delayed_name r k;
            port_dir = Ast.Dir_out;
            port_type = vtype_of proc widths r })
        out_pairs
    @ List.map
        (fun fb ->
          let kind =
            match
              List.find_opt (fun (nm, _, _) -> String.equal nm fb) proc.Proc.feedbacks
            with
            | Some (_, k, _) -> k
            | None -> Roccc_cfront.Ast.int32_kind
          in
          { Ast.port_name = feedback_next_port fb;
            port_dir = Ast.Dir_out;
            port_type =
              (if kind.Roccc_cfront.Ast.signed then
                 Ast.Signed kind.Roccc_cfront.Ast.bits
               else Ast.Unsigned kind.Roccc_cfront.Ast.bits) })
        !snx_names
  in
  (* ---- architecture body ----
     Discipline: every locally computed value lives in an internal signal
     v<r>_i<k> (k = pipeline delay); out ports are driven by one final
     assignment each. Out ports are therefore never read internally. *)
  let internal_name r k = Printf.sprintf "v%d_i%d" r k in
  let signals = ref [] in
  let body = ref [] in
  let clocked = ref [] in
  let declare r k =
    let s =
      { Ast.sig_name = internal_name r k; sig_type = vtype_of proc widths r }
    in
    if not (List.mem s !signals) then signals := !signals @ [ s ]
  in
  let lut_components = ref [] in
  let inst_counter = Roccc_util.Id_gen.create () in
  (* operand text for instruction i reading r *)
  let operand i r =
    let k = use_delay p i r in
    if is_local r then internal_name r k else delayed_name r k
  in
  List.iter
    (fun (i : Instr.instr) ->
      match i.Instr.op, i.Instr.dst with
      | Instr.Snx fb, None ->
        let src = operand i (List.nth i.Instr.srcs 0) in
        body :=
          !body
          @ [ Ast.Comment (Printf.sprintf "snx[%s]" fb);
              Ast.Assign
                ( feedback_next_port fb,
                  resized src i.Instr.kind.Roccc_cfront.Ast.bits ) ]
      | Instr.Lpr fb, Some d ->
        declare d 0;
        body := !body @ [ Ast.Assign (internal_name d 0, feedback_port fb) ]
      | Instr.Lut table, Some d ->
        declare d 0;
        let t =
          match
            List.find_opt (fun t -> String.equal t.Lut_conv.lut_name table) luts
          with
          | Some t -> t
          | None -> errf "gen: unregistered lookup table %s" table
        in
        let comp = Printf.sprintf "rom_%s" t.Lut_conv.lut_name in
        let comp_ports =
          [ { Ast.port_name = "addr"; port_dir = Ast.Dir_in;
              port_type = Ast.Unsigned t.Lut_conv.in_kind.Roccc_cfront.Ast.bits };
            { Ast.port_name = "data"; port_dir = Ast.Dir_out;
              port_type =
                (if t.Lut_conv.out_kind.Roccc_cfront.Ast.signed then
                   Ast.Signed t.Lut_conv.out_kind.Roccc_cfront.Ast.bits
                 else Ast.Unsigned t.Lut_conv.out_kind.Roccc_cfront.Ast.bits) } ]
        in
        if not (List.mem_assoc comp !lut_components) then
          lut_components := !lut_components @ [ comp, comp_ports ];
        let src = operand i (List.nth i.Instr.srcs 0) in
        body :=
          !body
          @ [ Ast.Instance
                { inst_label =
                    Printf.sprintf "lut_inst%d" (Roccc_util.Id_gen.fresh inst_counter);
                  component = comp;
                  port_map =
                    [ "addr",
                      Printf.sprintf "unsigned(%s)"
                        (resized src t.Lut_conv.in_kind.Roccc_cfront.Ast.bits);
                      "data", internal_name d 0 ] } ]
      | _, Some d ->
        declare d 0;
        let dst_width = Ast.vtype_width (vtype_of proc widths d) in
        let ops = List.map (operand i) i.Instr.srcs in
        let ws =
          List.map (fun r -> Ast.vtype_width (vtype_of proc widths r)) i.Instr.srcs
        in
        let rhs = instr_rhs i ~dst_width ~ops ~ws in
        body := !body @ [ Ast.Assign (internal_name d 0, rhs) ]
      | _, None -> errf "gen: instruction without destination")
    n.Graph.instrs;
  (* delay chains for local defs: sequential statements (the latches) *)
  List.iter
    (fun d ->
      let m = max_delay d in
      for k = 1 to m do
        declare d k;
        clocked := !clocked @ [ internal_name d k, internal_name d (k - 1) ]
      done)
    defs;
  if !clocked <> [] then
    body :=
      !body
      @ [ Ast.Clocked_process
            { label = "latches";
              clock = "clk";
              reset = None;
              assignments = !clocked;
              reset_assignments = [] } ];
  (* drive each out port from its internal signal *)
  let port_assigns =
    List.map
      (fun (r, k) -> Ast.Assign (delayed_name r k, internal_name r k))
      out_pairs
  in
  let entity = { Ast.entity_name = name; entity_ports = ports } in
  let arch =
    { Ast.arch_name = "rtl";
      of_entity = name;
      signals = !signals;
      components = !lut_components;
      body = !body @ port_assigns }
  in
  ( { Ast.unit_entity = entity; unit_arch = arch },
    { ni_node = n;
      ni_name = name;
      ni_in = !in_pairs;
      ni_out = out_pairs;
      ni_lpr = !lpr_names;
      ni_snx = !snx_names;
      ni_has_clk = needs_clock } )

(* ------------------------------------------------------------------ *)
(* ROM components                                                      *)
(* ------------------------------------------------------------------ *)

let gen_rom (t : Lut_conv.table) : Ast.design_unit =
  let name = Printf.sprintf "rom_%s" t.Lut_conv.lut_name in
  let out_type =
    if t.Lut_conv.out_kind.Roccc_cfront.Ast.signed then
      Ast.Signed t.Lut_conv.out_kind.Roccc_cfront.Ast.bits
    else Ast.Unsigned t.Lut_conv.out_kind.Roccc_cfront.Ast.bits
  in
  let ports =
    [ { Ast.port_name = "addr"; port_dir = Ast.Dir_in;
        port_type = Ast.Unsigned t.Lut_conv.in_kind.Roccc_cfront.Ast.bits };
      { Ast.port_name = "data"; port_dir = Ast.Dir_out; port_type = out_type } ]
  in
  (* A behavioural ROM: with-select over the table contents (synthesis
     infers block RAM / distributed ROM; the text init file is carried
     alongside, paper §4.2.4). *)
  let n = Array.length t.Lut_conv.contents in
  let value i =
    if t.Lut_conv.out_kind.Roccc_cfront.Ast.signed then
      Printf.sprintf "to_signed(%Ld, %d)" t.Lut_conv.contents.(i)
        t.Lut_conv.out_kind.Roccc_cfront.Ast.bits
    else
      Printf.sprintf "to_unsigned(%Ld, %d)"
        (Roccc_util.Bits.truncate_unsigned
           t.Lut_conv.out_kind.Roccc_cfront.Ast.bits
           t.Lut_conv.contents.(i))
        t.Lut_conv.out_kind.Roccc_cfront.Ast.bits
  in
  let cases = List.init (max 0 (n - 1)) (fun i -> value i, string_of_int i) in
  let default = if n > 0 then value (n - 1) else "(others => '0')" in
  let arch =
    { Ast.arch_name = "rtl";
      of_entity = name;
      signals = [];
      components = [];
      body =
        [ Ast.Comment
            (Printf.sprintf
               "ROM %s: %d x %d-bit; contents in %s.init (text file)"
               t.Lut_conv.lut_name n t.Lut_conv.out_kind.Roccc_cfront.Ast.bits
               t.Lut_conv.lut_name);
          Ast.Selected
            { target = "data";
              selector = "to_integer(addr)";
              cases;
              default } ]
    }
  in
  { Ast.unit_entity = { Ast.entity_name = name; entity_ports = ports };
    unit_arch = arch }

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

(** Generate the complete design for a pipelined data path. *)
let generate ?(luts = []) (p : Pipeline.t) : Ast.design =
  let dp = p.Pipeline.dp in
  let proc = dp.Graph.proc in
  let widths = p.Pipeline.widths in
  (* Which delayed versions of each register do consumers outside the
     producing node need? *)
  let producer_node = Hashtbl.create 64 in
  List.iter
    (fun (n : Graph.node) ->
      List.iter (fun d -> Hashtbl.replace producer_node d n.Graph.id) (Graph.node_defs n))
    dp.Graph.nodes;
  let external_delays : (Instr.vreg, int list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (n : Graph.node) ->
      List.iter
        (fun (i : Instr.instr) ->
          List.iter
            (fun r ->
              match Hashtbl.find_opt producer_node r with
              | Some owner when owner <> n.Graph.id ->
                let k = use_delay p i r in
                let cur =
                  Option.value (Hashtbl.find_opt external_delays r) ~default:[]
                in
                if not (List.mem k cur) then
                  Hashtbl.replace external_delays r (cur @ [ k ])
              | Some _ | None -> ())
            i.Instr.srcs)
        n.Graph.instrs)
    dp.Graph.nodes;
  (* output ports consume their registers at delay 0 from the exit node *)
  let consumed_delays r =
    Option.value (Hashtbl.find_opt external_delays r) ~default:[]
    |> fun l ->
    if
      List.exists
        (fun (op : Proc.port) -> op.Proc.port_reg = r)
        dp.Graph.output_ports
      && not (List.mem 0 l)
    then 0 :: l
    else l
  in
  let units_ifaces =
    List.map
      (fun n -> gen_node proc widths p luts n ~consumed_delays)
      dp.Graph.nodes
  in
  let node_units = List.map fst units_ifaces in
  let ifaces = List.map snd units_ifaces in
  (* ---- top-level entity ---- *)
  let top_ports =
    [ { Ast.port_name = "clk"; port_dir = Ast.Dir_in; port_type = Ast.Std_logic };
      { Ast.port_name = "rst"; port_dir = Ast.Dir_in; port_type = Ast.Std_logic } ]
    @ List.map
        (fun (pt : Proc.port) ->
          { Ast.port_name = pt.Proc.port_name;
            port_dir = Ast.Dir_in;
            port_type = vtype_of proc widths pt.Proc.port_reg })
        dp.Graph.input_ports
    @ List.map
        (fun (pt : Proc.port) ->
          { Ast.port_name = pt.Proc.port_name;
            port_dir = Ast.Dir_out;
            port_type = vtype_of proc widths pt.Proc.port_reg })
        dp.Graph.output_ports
  in
  (* signals: every (reg, delay) that crosses node boundaries *)
  let signals = ref [] in
  let declare r k =
    let s = { Ast.sig_name = delayed_name r k; sig_type = vtype_of proc widths r } in
    if not (List.mem s !signals) then signals := !signals @ [ s ]
  in
  List.iter
    (fun ni ->
      List.iter (fun (r, k) -> declare r k) ni.ni_in;
      List.iter (fun (r, k) -> declare r k) ni.ni_out)
    ifaces;
  (* feedback registers *)
  let fb_signals =
    List.concat_map
      (fun (name, kind, _) ->
        let t =
          if kind.Roccc_cfront.Ast.signed then
            Ast.Signed kind.Roccc_cfront.Ast.bits
          else Ast.Unsigned kind.Roccc_cfront.Ast.bits
        in
        [ { Ast.sig_name = feedback_port name; sig_type = t };
          { Ast.sig_name = feedback_next_port name; sig_type = t } ])
      proc.Proc.feedbacks
  in
  (* input port registers feeding node inputs: input port name maps to the
     port reg signal *)
  let body = ref [] in
  List.iter
    (fun (pt : Proc.port) ->
      declare pt.Proc.port_reg 0;
      body :=
        !body @ [ Ast.Assign (reg_name pt.Proc.port_reg, pt.Proc.port_name) ])
    dp.Graph.input_ports;
  (* external input delay chains (inputs consumed at later stages) *)
  List.iter
    (fun ni ->
      List.iter
        (fun (r, k) ->
          if not (Hashtbl.mem producer_node r) then
            (* r is an external input; build its chain at top level *)
            for j = 1 to k do
              declare r j
            done)
        ni.ni_in)
    ifaces;
  let input_chain_assignments =
    List.concat_map
      (fun s ->
        (* find declared v<r>_d<k> signals for inputs *)
        ignore s;
        [])
      []
  in
  ignore input_chain_assignments;
  let top_clocked = ref [] in
  List.iter
    (fun s ->
      (* chain assignment for any _d signal whose base is an external input *)
      let name = s.Ast.sig_name in
      match String.index_opt name '_' with
      | Some i when i > 1 && name.[0] = 'v' -> (
        let base = String.sub name 0 i in
        let suffix = String.sub name (i + 1) (String.length name - i - 1) in
        if String.length suffix > 1 && suffix.[0] = 'd' then
          match
            ( int_of_string_opt (String.sub base 1 (String.length base - 1)),
              int_of_string_opt (String.sub suffix 1 (String.length suffix - 1))
            )
          with
          | Some r, Some k when not (Hashtbl.mem producer_node r) ->
            top_clocked :=
              !top_clocked @ [ delayed_name r k, delayed_name r (k - 1) ]
          | _ -> ())
      | _ -> ())
    !signals;
  if !top_clocked <> [] then
    body :=
      !body
      @ [ Ast.Clocked_process
            { label = "input_align";
              clock = "clk";
              reset = None;
              assignments = !top_clocked;
              reset_assignments = [] } ];
  (* feedback register process *)
  if proc.Proc.feedbacks <> [] then
    body :=
      !body
      @ [ Ast.Clocked_process
            { label = "feedback_regs";
              clock = "clk";
              reset = Some "rst";
              assignments =
                List.map
                  (fun (name, _, _) ->
                    feedback_port name, feedback_next_port name)
                  proc.Proc.feedbacks;
              reset_assignments =
                List.map
                  (fun (name, kind, init) ->
                    ( feedback_port name,
                      literal kind kind.Roccc_cfront.Ast.bits init ))
                  proc.Proc.feedbacks } ];
  (* node instances *)
  let component_decls = ref [] in
  List.iter
    (fun (u, ni) ->
      let ports = u.Ast.unit_entity.Ast.entity_ports in
      if not (List.mem_assoc ni.ni_name !component_decls) then
        component_decls := !component_decls @ [ ni.ni_name, ports ];
      let port_map =
        List.filter_map
          (fun (pp : Ast.port) ->
            let actual =
              if pp.Ast.port_name = "clk" then Some "clk"
              else Some pp.Ast.port_name
              (* formal and actual share the canonical signal names *)
            in
            Option.map (fun a -> pp.Ast.port_name, a) actual)
          ports
      in
      body :=
        !body
        @ [ Ast.Instance
              { inst_label = Printf.sprintf "u_node%d" ni.ni_node.Graph.id;
                component = ni.ni_name;
                port_map } ])
    units_ifaces;
  (* outputs: registered once at the boundary *)
  let out_regs =
    List.map
      (fun (pt : Proc.port) ->
        pt.Proc.port_name, reg_name pt.Proc.port_reg)
      dp.Graph.output_ports
  in
  List.iter
    (fun (pt : Proc.port) -> declare pt.Proc.port_reg 0)
    dp.Graph.output_ports;
  body :=
    !body
    @ [ Ast.Clocked_process
          { label = "output_regs";
            clock = "clk";
            reset = None;
            assignments = out_regs;
            reset_assignments = [] } ];
  let top =
    { Ast.unit_entity =
        { Ast.entity_name = proc.Proc.pname; entity_ports = top_ports };
      unit_arch =
        { Ast.arch_name = "structural";
          of_entity = proc.Proc.pname;
          signals = !signals @ fb_signals;
          components = !component_decls;
          body = !body } }
  in
  let rom_units = List.map gen_rom luts in
  { Ast.design_name = proc.Proc.pname;
    units = rom_units @ node_units @ [ top ];
    rom_inits =
      List.map
        (fun t -> t.Lut_conv.lut_name, Lut_conv.to_init_text t)
        luts }
