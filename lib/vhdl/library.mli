(** The pre-existing parameterized VHDL component library (paper §4.1: the
    controllers "are all implemented as pre-existing parameterized FSMs in a
    VHDL library") and the Figure 2 system assembly for 1-D single-window
    kernels. *)

val address_generator_vhdl : string
(** Sequential-scan input address generator (generic-parameterized). *)

val smart_buffer_vhdl : window:int -> element_bits:int -> string
(** 1-D sliding-window shift-register buffer with parallel window taps. *)

val controller_vhdl : string
(** The filling/steady/draining/done FSM. *)

val line_buffer_vhdl :
  win_rows:int -> win_cols:int -> row_length:int -> element_bits:int -> string
(** 2-D smart buffer: (win_rows - 1) line FIFOs plus the window column,
    with parallel taps [win_<r>_<c>]. *)

val fifo_vhdl : string
(** Synchronous circular-buffer FIFO channel with full/empty flags
    (process networks: producer stalls on full, consumer on empty). *)

val library_entities : string list

val network_entities : string list
(** Entities instantiated by {!network_wrapper_vhdl}. *)

(** One stage of a network top level, as seen by the wiring generator. *)
type net_stage = {
  ns_entity : string;                  (** data-path entity name *)
  ns_element_bits : int;               (** stream element width *)
  ns_out_ports : (string * int) list;  (** output ports (name, bits) *)
}

val network_wrapper_vhdl :
  name:string -> stages:net_stage list -> fifo_depths:int list -> string
(** Render the network top level: each stage's Figure 2 system entity
    chained to the next through a [roccc_fifo] instance of the statically
    sized depth. One depth per adjacent stage pair. *)

val system_wrapper_vhdl :
  dp_entity:string ->
  element_bits:int ->
  win_ports:string list ->
  out_ports:(string * int) list ->
  total_words:int ->
  iterations:int ->
  latency:int ->
  string
(** Render the Figure 2 system: address generator -> BRAM port -> smart
    buffer -> data path, sequenced by the controller. *)
