(* Pareto dominance over (clock up, slices down, latch bits down). *)

module Driver = Roccc_core.Driver

type metrics = {
  p_slices : int;
  p_clock_mhz : float;
  p_latch_bits : int;
}

let of_measurement (m : Driver.measurement) : metrics =
  { p_slices = m.Driver.ms_slices;
    p_clock_mhz = m.Driver.ms_clock_mhz;
    p_latch_bits = m.Driver.ms_latch_bits }

let of_quick (q : Driver.quick_measurement) : metrics =
  { p_slices = q.Driver.qk_slices;
    p_clock_mhz = q.Driver.qk_clock_mhz;
    p_latch_bits = 0 }

let dominates (a : metrics) (b : metrics) : bool =
  a.p_slices <= b.p_slices
  && a.p_clock_mhz >= b.p_clock_mhz
  && a.p_latch_bits <= b.p_latch_bits
  && (a.p_slices < b.p_slices
     || a.p_clock_mhz > b.p_clock_mhz
     || a.p_latch_bits < b.p_latch_bits)

(* [a] beats [b] by a factor of (1 + margin) on every axis — the only
   relation the approximate quick tier is allowed to prune on. *)
let margin_dominates ~(margin : float) (a : metrics) (b : metrics) : bool =
  let f = 1.0 +. margin in
  a.p_clock_mhz >= b.p_clock_mhz *. f
  && float_of_int a.p_slices *. f <= float_of_int b.p_slices
  && float_of_int a.p_latch_bits *. f <= float_of_int b.p_latch_bits

let front (points : ('a * metrics) list) : ('a * metrics) list =
  List.filter
    (fun (_, m) ->
      not (List.exists (fun (_, m') -> dominates m' m) points))
    points
