(** Tuning objectives: what [roccc tune] optimizes and under which
    constraint a design point counts as feasible. *)

type t =
  | Max_mhz of { slice_budget : int }
      (** fastest clock among designs fitting the slice budget *)
  | Min_slices of { target_mhz : float }
      (** smallest design meeting the clock target ([0.] = any clock) *)
  | Min_latch_bits
      (** fewest pipeline-register bits (the paper's §4.2.5 metric) *)

val parse :
  name:string ->
  slice_budget:int option ->
  target_mhz:float option ->
  (t, string) result
(** [name] is one of ["max-mhz"], ["min-slices"], ["min-latch-bits"].
    [slice_budget] applies only to [max-mhz] (default: the whole
    XC2V2000, {!Roccc_fpga.Area.xc2v2000_slices}); [target_mhz] only to
    [min-slices] (default [0.], unconstrained). A constraint flag given
    to the wrong objective is an error, not silently ignored. *)

val name : t -> string
val describe : t -> string
(** e.g. ["max-mhz (slices <= 4000)"]. *)

val feasible : t -> Pareto.metrics -> bool

val quick_feasible : margin:float -> t -> Pareto.metrics -> bool
(** Feasibility with the constraint relaxed by a factor of [1 + margin],
    so the approximate quick tier only discards candidates that miss the
    constraint by more than its own error bound. *)

val fitness : t -> Pareto.metrics -> float
(** Scalar score, higher is better; used only to order the front for
    display, never to prune. *)
