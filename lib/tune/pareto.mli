(** Pareto dominance over the design-space metrics the paper trades:
    clock rate (maximize) against slice area and pipeline-register bits
    (minimize). The autotuner's pruning and front extraction are both
    built on these two relations. *)

(** One candidate's position in objective space. *)
type metrics = {
  p_slices : int;
  p_clock_mhz : float;
  p_latch_bits : int;
}

val of_measurement : Roccc_core.Driver.measurement -> metrics

val of_quick : Roccc_core.Driver.quick_measurement -> metrics
(** Quick-tier metrics carry no latch count; the latch axis is set to 0
    for every candidate, collapsing dominance to the slices/clock plane. *)

val dominates : metrics -> metrics -> bool
(** [dominates a b]: [a] is no worse than [b] on every axis and strictly
    better on at least one. Irreflexive — equal points never dominate
    each other, so duplicated metrics can coexist on a front. *)

val margin_dominates : margin:float -> metrics -> metrics -> bool
(** [margin_dominates ~margin a b]: [a] beats [b] by at least a factor of
    [1 + margin] on {e every} axis. The quick tier prunes only on this
    relation: it stays correct as long as the quick estimates are within
    [margin] (relative) of the exact metrics. [margin = 0.] degenerates
    to weak dominance (equality included) — only use positive margins
    for pruning. *)

val front : ('a * metrics) list -> ('a * metrics) list
(** The non-dominated subset, preserving input order (deterministic for
    a deterministic input order). No element of the result is
    {!dominates}-dominated by any input element. *)
