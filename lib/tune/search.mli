(** The autotuner's search driver: enumerate the unroll x bus x
    clock-target grid and climb a successive-halving ladder of ever more
    expensive costing tiers, pruning between rungs, so only the surviving
    Pareto front pays for full VHDL generation.

    {ul
    {- {b quick} rung — cached mid-end plus the O(instructions) analytic
       costing ({!Roccc_core.Driver.quick_back_end}). Approximate, so it
       prunes only candidates beaten by a factor of [1 + margin] on every
       axis ({!Pareto.margin_dominates}) or missing the objective's
       constraint by more than [margin].}
    {- {b estimate} rung — the real back end minus VHDL generation and
       linting ({!Roccc_core.Driver.estimate_back_end}). Its
       slices/clock/latch numbers are {e identical} to a full compile's,
       so exact feasibility filtering and Pareto-front extraction here
       cannot drop a true front point.}
    {- {b full} rung — {!Roccc_service.Service.compile_cached} on the
       front only, producing the VHDL. The cached mid-end prefix is
       shared across all three rungs, so each distinct mid-end compiles
       once per search.}}

    Candidates sharing a front-end options fingerprint are seeded one
    representative first, then fanned across the domain scheduler, so a
    parallel search still compiles each distinct mid-end prefix once. *)

type space = {
  sp_unroll : int list;
  sp_bus : int list;
  sp_target_ns : float list;
  sp_stage_budget : int list;
      (** wide-operator stage-budget axis; the default singleton [[0]]
          (natural depth) leaves the historical grid unchanged *)
  sp_decomp : Roccc_datapath.Delay.decomp list;
      (** wide-multiplier decomposition axis; default [[Csa]] *)
}

val default_space : space
(** unroll [1;2;4;8] x bus [1;2;4] x target_ns [3;5;8] ns — 36 points
    (wide-operator axes at their single default values). *)

val space_size : space -> int
(** Grid size after per-axis deduplication. *)

type candidate = {
  cd_unroll : int;
  cd_bus : int;
  cd_target_ns : float;
  cd_stage_budget : int;
  cd_decomp : Roccc_datapath.Delay.decomp;
}

(** Why a candidate did or did not reach the front. *)
type status =
  | On_front
  | Dominated  (** exact metrics, beaten by a front point *)
  | Infeasible  (** exact metrics violate the objective's constraint *)
  | Pruned_quick of string
      (** discarded at the quick rung; the string names the reason
          (the margin-dominating candidate, or the missed constraint) *)
  | Failed of string

type row = {
  rw_cand : candidate;
  rw_label : string;
  rw_status : status;
  rw_quick : Roccc_core.Driver.quick_measurement option;
  rw_measure : Roccc_core.Driver.measurement option;
}

type settings = {
  st_objective : Objective.t;
  st_space : space;
  st_margin : float;  (** quick-rung pruning margin; [<= 0.] disables
                          quick-rung pruning (the rung still runs) *)
  st_use_quick : bool;  (** [false]: skip the quick rung entirely *)
  st_domains : int;  (** worker domains; [<= 0] = hardware default *)
  st_base : Roccc_core.Driver.options;  (** every other option field *)
}

val default_margin : float
val default_settings : Objective.t -> settings

type result = {
  res_entry : string;
  res_objective : Objective.t;
  res_space : space;
  res_rows : row list;  (** every candidate, in grid order *)
  res_front : (row * Roccc_service.Service.success) list;
      (** best fitness first; ties broken by (unroll, bus, target_ns) *)
  res_explored : int;  (** grid size — full compiles an exhaustive
                           search would have paid for *)
  res_quick_evals : int;
  res_estimate_evals : int;
  res_full_evals : int;
  res_workers : int;
  res_wall_s : float;
  res_cache : Roccc_service.Cache.stats option;
}

val run :
  ?cache:Roccc_service.Cache.t ->
  ?trace:Roccc_service.Trace.t ->
  ?config:Roccc_core.Pass.config ->
  ?luts:Roccc_hir.Lut_conv.table list ->
  settings ->
  source:string ->
  entry:string ->
  result
(** Deterministic for fixed inputs regardless of [st_domains]. Candidate
    evaluations appear in [trace] as [cat "tune"] spans wrapping the
    per-pass spans; reused mid-end passes show up as zero-duration spans
    with a [cached] argument. Raises nothing: per-candidate failures are
    recorded as {!Failed} rows. *)

val status_name : status -> string
(** ["front"], ["dominated"], ["infeasible"], ["pruned-quick"], ["failed"]. *)

val status_detail : status -> string option
(** The reason string of {!Pruned_quick} / {!Failed}. *)

val table : result -> string
(** The rendered front (best first) plus a search summary. *)

val to_json : result -> string
(** The [pareto.json] document: settings, per-rung evaluation counts
    (the pruning evidence), the front with full metrics, and every
    explored row with its status. *)
