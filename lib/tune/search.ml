(* The successive-halving search over the unroll x bus x target-ns grid:
   quick analytic costing on everything, exact estimate-only costing on
   the survivors, full VHDL generation on the Pareto front only. All
   three rungs share one content-addressed pass cache, so a mid-end
   prefix compiles once per search no matter how many candidates (or
   rungs) revisit it. *)

module Driver = Roccc_core.Driver
module Service = Roccc_service.Service
module Scheduler = Roccc_service.Scheduler
module Cache = Roccc_service.Cache
module Trace = Roccc_service.Trace
module Delay = Roccc_datapath.Delay

type space = {
  sp_unroll : int list;
  sp_bus : int list;
  sp_target_ns : float list;
  sp_stage_budget : int list;
  sp_decomp : Delay.decomp list;
}

let dedupe (xs : 'a list) : 'a list =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)

let default_space =
  { sp_unroll = [ 1; 2; 4; 8 ];
    sp_bus = [ 1; 2; 4 ];
    sp_target_ns = [ 3.0; 5.0; 8.0 ];
    sp_stage_budget = [ Delay.default_stage_budget ];
    sp_decomp = [ Delay.default_decomp ] }

let space_size (s : space) : int =
  List.length (dedupe s.sp_unroll)
  * List.length (dedupe s.sp_bus)
  * List.length (dedupe s.sp_target_ns)
  * List.length (dedupe s.sp_stage_budget)
  * List.length (dedupe s.sp_decomp)

type candidate = {
  cd_unroll : int;
  cd_bus : int;
  cd_target_ns : float;
  cd_stage_budget : int;
  cd_decomp : Delay.decomp;
}

type status =
  | On_front
  | Dominated
  | Infeasible
  | Pruned_quick of string
  | Failed of string

type row = {
  rw_cand : candidate;
  rw_label : string;
  rw_status : status;
  rw_quick : Driver.quick_measurement option;
  rw_measure : Driver.measurement option;
}

type settings = {
  st_objective : Objective.t;
  st_space : space;
  st_margin : float;
  st_use_quick : bool;
  st_domains : int;
  st_base : Driver.options;
}

let default_margin = 0.5

let default_settings (obj : Objective.t) : settings =
  { st_objective = obj;
    st_space = default_space;
    st_margin = default_margin;
    st_use_quick = true;
    st_domains = 0;
    st_base = Driver.default_options }

type result = {
  res_entry : string;
  res_objective : Objective.t;
  res_space : space;
  res_rows : row list;
  res_front : (row * Service.success) list;
  res_explored : int;
  res_quick_evals : int;
  res_estimate_evals : int;
  res_full_evals : int;
  res_workers : int;
  res_wall_s : float;
  res_cache : Cache.stats option;
}

let candidates (s : space) : candidate list =
  let us = dedupe s.sp_unroll
  and bs = dedupe s.sp_bus
  and ts = dedupe s.sp_target_ns
  and sbs = dedupe s.sp_stage_budget
  and dcs = dedupe s.sp_decomp in
  List.concat_map
    (fun u ->
      List.concat_map
        (fun b ->
          List.concat_map
            (fun t ->
              List.concat_map
                (fun sb ->
                  List.map
                    (fun dc ->
                      { cd_unroll = u;
                        cd_bus = b;
                        cd_target_ns = t;
                        cd_stage_budget = sb;
                        cd_decomp = dc })
                    dcs)
                sbs)
            ts)
        bs)
    us

(* Non-default wide-operator axes append label suffixes; the common
   single-cycle-only grid keeps its historical labels. *)
let label_of ~(entry : string) (c : candidate) : string =
  let base =
    Printf.sprintf "%s.u%d.b%d.t%g" entry c.cd_unroll c.cd_bus c.cd_target_ns
  in
  let base =
    if c.cd_stage_budget <> Delay.default_stage_budget then
      Printf.sprintf "%s.sb%d" base c.cd_stage_budget
    else base
  in
  if c.cd_decomp <> Delay.default_decomp then
    Printf.sprintf "%s.%s" base (Delay.decomp_name c.cd_decomp)
  else base

let options_of (st : settings) (c : candidate) : Driver.options =
  { st.st_base with
    Driver.unroll_outer_factor = c.cd_unroll;
    bus_elements = c.cd_bus;
    target_ns = c.cd_target_ns;
    stage_budget = c.cd_stage_budget;
    decomp = c.cd_decomp }

(* Evaluate [f] on candidate indices in two waves: one representative per
   distinct front-end options fingerprint first, then everyone else — so
   the wide wave finds every distinct mid-end prefix already cached
   instead of racing to compile it on several workers at once. *)
let eval_waves ~(num_domains : int) ~(fp : int -> string)
    ~(f : tid:int -> int -> 'b) (idxs : int list) :
    (int * ('b, string) Stdlib.result) list =
  let seen = Hashtbl.create 16 in
  let reps, rest =
    List.partition
      (fun i ->
        let k = fp i in
        if Hashtbl.mem seen k then false
        else (
          Hashtbl.add seen k ();
          true))
      idxs
  in
  let run_wave (wave : int list) =
    if wave = [] then []
    else
      let arr = Array.of_list wave in
      let res =
        Scheduler.parallel_map ~num_domains
          ~describe_error:Service.describe_error
          ~f:(fun ~tid i -> f ~tid i)
          arr
      in
      List.mapi (fun k i -> (i, res.(k))) wave
  in
  run_wave reps @ run_wave rest

let run ?cache ?trace ?config ?(luts = []) (st : settings) ~(source : string)
    ~(entry : string) : result =
  let t_start = Unix.gettimeofday () in
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let cands = Array.of_list (candidates st.st_space) in
  let n = Array.length cands in
  let labels = Array.map (fun c -> label_of ~entry c) cands in
  let jobs =
    Array.mapi
      (fun i c ->
        { Service.label = labels.(i);
          source;
          entry;
          options = options_of st c;
          luts })
      cands
  in
  let fp i = Driver.front_options_fingerprint jobs.(i).Service.options in
  let span ~tid ~t0 name tier =
    match trace with
    | None -> ()
    | Some tr ->
        Trace.add_span tr ~cat:"tune"
          ~args:[ ("tier", Trace.Str tier) ]
          ~tid ~name ~start_s:t0
          ~dur_s:(Unix.gettimeofday () -. t0)
          ()
  in
  let status = Array.make n (Failed "not evaluated") in
  let quick : Driver.quick_measurement option array = Array.make n None in
  let meas : Driver.measurement option array = Array.make n None in
  let all_idxs = List.init n Fun.id in

  (* Rung 1: quick analytic costing over the whole grid. *)
  let quick_evals = ref 0 in
  let survivors =
    if not st.st_use_quick then all_idxs
    else begin
      let results =
        eval_waves ~num_domains:st.st_domains ~fp
          ~f:(fun ~tid i ->
            let t0 = Unix.gettimeofday () in
            let q = Service.quick_cached ~cache ?config ?trace ~tid jobs.(i) in
            span ~tid ~t0 ("quick:" ^ labels.(i)) "quick";
            q)
          all_idxs
      in
      quick_evals := List.length results;
      List.iter
        (fun (i, r) ->
          match r with
          | Ok q -> quick.(i) <- Some q
          | Error msg -> status.(i) <- Failed msg)
        results;
      let metrics =
        List.filter_map
          (fun (i, r) ->
            match r with
            | Ok q -> Some (i, Pareto.of_quick q)
            | Error _ -> None)
          results
      in
      if st.st_margin <= 0.0 then List.map fst metrics
      else
        List.filter_map
          (fun (i, m) ->
            if not (Objective.quick_feasible ~margin:st.st_margin st.st_objective m)
            then begin
              status.(i) <-
                Pruned_quick
                  (Printf.sprintf "misses %s by > %g%% at the quick tier"
                     (Objective.describe st.st_objective)
                     (st.st_margin *. 100.0));
              None
            end
            else
              match
                List.find_opt
                  (fun (j, m') ->
                    j <> i && Pareto.margin_dominates ~margin:st.st_margin m' m)
                  metrics
              with
              | Some (j, _) ->
                  status.(i) <-
                    Pruned_quick
                      (Printf.sprintf "margin-dominated by %s" labels.(j));
                  None
              | None -> Some i)
          metrics
    end
  in

  (* Rung 2: exact estimate-only costing (identical metrics to a full
     compile, minus the VHDL) on the survivors. *)
  let est_results =
    eval_waves ~num_domains:st.st_domains ~fp
      ~f:(fun ~tid i ->
        let t0 = Unix.gettimeofday () in
        let m = Service.measure_cached ~cache ?config ?trace ~tid jobs.(i) in
        span ~tid ~t0 ("estimate:" ^ labels.(i)) "estimate";
        m)
      survivors
  in
  let estimate_evals = List.length est_results in
  let exact =
    List.filter_map
      (fun (i, r) ->
        match r with
        | Ok (md : Service.measured) ->
            meas.(i) <- Some md.Service.m_measure;
            Some (i, Pareto.of_measurement md.Service.m_measure)
        | Error msg ->
            status.(i) <- Failed msg;
            None)
      est_results
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let feasible =
    List.filter
      (fun (i, m) ->
        if Objective.feasible st.st_objective m then true
        else begin
          status.(i) <- Infeasible;
          false
        end)
      exact
  in
  let front_pts = Pareto.front feasible in
  let front_idx = List.map fst front_pts in
  List.iter
    (fun (i, _) ->
      status.(i) <- (if List.mem i front_idx then On_front else Dominated))
    feasible;

  (* Rung 3: full compiles (VHDL generation + lint) on the front only. *)
  let full_results =
    eval_waves ~num_domains:st.st_domains ~fp
      ~f:(fun ~tid i ->
        let t0 = Unix.gettimeofday () in
        let s = Service.compile_cached ~cache ?config ?trace ~tid jobs.(i) in
        span ~tid ~t0 ("full:" ^ labels.(i)) "full";
        s)
      front_idx
  in
  let full_evals = List.length full_results in
  let successes =
    List.filter_map
      (fun (i, r) ->
        match r with
        | Ok s -> Some (i, s)
        | Error msg ->
            status.(i) <- Failed msg;
            None)
      full_results
  in

  let rows_arr =
    Array.init n (fun i ->
        { rw_cand = cands.(i);
          rw_label = labels.(i);
          rw_status = status.(i);
          rw_quick = quick.(i);
          rw_measure = meas.(i) })
  in
  let fitness_of i =
    match meas.(i) with
    | Some m -> Objective.fitness st.st_objective (Pareto.of_measurement m)
    | None -> neg_infinity
  in
  let front =
    successes
    |> List.sort (fun (i, _) (j, _) ->
           let fi = fitness_of i and fj = fitness_of j in
           if fi <> fj then compare fj fi
           else
             compare
               ( cands.(i).cd_unroll, cands.(i).cd_bus, cands.(i).cd_target_ns,
                 cands.(i).cd_stage_budget,
                 Delay.decomp_name cands.(i).cd_decomp )
               ( cands.(j).cd_unroll, cands.(j).cd_bus, cands.(j).cd_target_ns,
                 cands.(j).cd_stage_budget,
                 Delay.decomp_name cands.(j).cd_decomp ))
    |> List.map (fun (i, s) -> (rows_arr.(i), s))
  in
  { res_entry = entry;
    res_objective = st.st_objective;
    res_space = st.st_space;
    res_rows = Array.to_list rows_arr;
    res_front = front;
    res_explored = n;
    res_quick_evals = !quick_evals;
    res_estimate_evals = estimate_evals;
    res_full_evals = full_evals;
    res_workers = Scheduler.effective_workers ~num_domains:st.st_domains n;
    res_wall_s = Unix.gettimeofday () -. t_start;
    res_cache = Some (Cache.stats cache) }

let status_name = function
  | On_front -> "front"
  | Dominated -> "dominated"
  | Infeasible -> "infeasible"
  | Pruned_quick _ -> "pruned-quick"
  | Failed _ -> "failed"

let status_detail = function
  | Pruned_quick r | Failed r -> Some r
  | On_front | Dominated | Infeasible -> None

let count_status (r : result) (name : string) : int =
  List.length
    (List.filter (fun rw -> status_name rw.rw_status = name) r.res_rows)

let table (r : result) : string =
  let b = Buffer.create 2048 in
  Printf.bprintf b "tune %s — %s\n" r.res_entry
    (Objective.describe r.res_objective);
  let ints xs = String.concat "," (List.map string_of_int (dedupe xs)) in
  let floats xs =
    String.concat "," (List.map (Printf.sprintf "%g") (dedupe xs))
  in
  let wide_axes =
    if
      List.length (dedupe r.res_space.sp_stage_budget) > 1
      || List.length (dedupe r.res_space.sp_decomp) > 1
      || r.res_space.sp_stage_budget <> [ Delay.default_stage_budget ]
      || r.res_space.sp_decomp <> [ Delay.default_decomp ]
    then
      Printf.sprintf " x stage-budget {%s} x decomp {%s}"
        (ints r.res_space.sp_stage_budget)
        (String.concat ","
           (List.map Delay.decomp_name (dedupe r.res_space.sp_decomp)))
    else ""
  in
  Printf.bprintf b
    "space: unroll {%s} x bus {%s} x target-ns {%s}%s = %d candidates\n\n"
    (ints r.res_space.sp_unroll)
    (ints r.res_space.sp_bus)
    (floats r.res_space.sp_target_ns)
    wide_axes r.res_explored;
  Printf.bprintf b "  %-3s %-20s %6s %4s %6s %10s %8s %10s %8s\n" "#" "label"
    "unroll" "bus" "t_ns" "clock MHz" "slices" "latch bits" "out/cyc";
  List.iteri
    (fun k ((rw : row), (s : Service.success)) ->
      let m =
        match rw.rw_measure with
        | Some m -> m
        | None ->
            (* shouldn't happen — the front is drawn from measured rows *)
            { Driver.ms_slices = s.Service.r_slices;
              ms_operator_slices = s.Service.r_operator_slices;
              ms_clock_mhz = s.Service.r_clock_mhz;
              ms_latency = s.Service.r_latency;
              ms_latch_bits = s.Service.r_latch_bits;
              ms_greedy_latch_bits = s.Service.r_latch_bits;
              ms_outputs_per_cycle = 1 }
      in
      Printf.bprintf b "  %-3d %-20s %6d %4d %6g %10.2f %8d %10d %8d\n" (k + 1)
        rw.rw_label rw.rw_cand.cd_unroll rw.rw_cand.cd_bus
        rw.rw_cand.cd_target_ns m.Driver.ms_clock_mhz m.Driver.ms_slices
        m.Driver.ms_latch_bits m.Driver.ms_outputs_per_cycle)
    r.res_front;
  Printf.bprintf b
    "\nexplored %d | quick %d | estimate %d | full %d (exhaustive: %d) | \
     pruned %d | dominated %d | infeasible %d | failed %d\n"
    r.res_explored r.res_quick_evals r.res_estimate_evals r.res_full_evals
    r.res_explored (count_status r "pruned-quick") (count_status r "dominated")
    (count_status r "infeasible") (count_status r "failed");
  (match r.res_cache with
  | Some c ->
      Printf.bprintf b
        "cache: %d hits, %d misses, %d stores (%d shards, %d contended)\n"
        c.Cache.hits c.Cache.misses c.Cache.stores c.Cache.shards
        c.Cache.contended
  | None -> ());
  Printf.bprintf b "wall %.3f s on %d worker%s\n" r.res_wall_s r.res_workers
    (if r.res_workers = 1 then "" else "s");
  Buffer.contents b

let to_json (r : result) : string =
  let b = Buffer.create 4096 in
  let str s = Printf.sprintf "\"%s\"" (Trace.escape s) in
  Printf.bprintf b "{\n";
  Printf.bprintf b "  \"entry\": %s,\n" (str r.res_entry);
  Printf.bprintf b "  \"objective\": %s,\n"
    (str (Objective.name r.res_objective));
  Printf.bprintf b "  \"constraint\": %s,\n"
    (str (Objective.describe r.res_objective));
  let ints xs = String.concat ", " (List.map string_of_int (dedupe xs)) in
  let floats xs =
    String.concat ", " (List.map (Printf.sprintf "%g") (dedupe xs))
  in
  Printf.bprintf b
    "  \"space\": { \"unroll\": [%s], \"bus\": [%s], \"target_ns\": [%s], \
     \"stage_budget\": [%s], \"decomp\": [%s] },\n"
    (ints r.res_space.sp_unroll)
    (ints r.res_space.sp_bus)
    (floats r.res_space.sp_target_ns)
    (ints r.res_space.sp_stage_budget)
    (String.concat ", "
       (List.map
          (fun d -> str (Delay.decomp_name d))
          (dedupe r.res_space.sp_decomp)));
  Printf.bprintf b "  \"explored\": %d,\n" r.res_explored;
  Printf.bprintf b "  \"quick_evals\": %d,\n" r.res_quick_evals;
  Printf.bprintf b "  \"estimate_evals\": %d,\n" r.res_estimate_evals;
  Printf.bprintf b "  \"full_evals\": %d,\n" r.res_full_evals;
  Printf.bprintf b "  \"exhaustive_full_evals\": %d,\n" r.res_explored;
  Printf.bprintf b "  \"pruning_ok\": %b,\n" (r.res_full_evals < r.res_explored);
  Printf.bprintf b
    "  \"counts\": { \"front\": %d, \"dominated\": %d, \"infeasible\": %d, \
     \"pruned_quick\": %d, \"failed\": %d },\n"
    (count_status r "front") (count_status r "dominated")
    (count_status r "infeasible")
    (count_status r "pruned-quick")
    (count_status r "failed");
  Printf.bprintf b "  \"front_size\": %d,\n" (List.length r.res_front);
  Printf.bprintf b "  \"workers\": %d,\n" r.res_workers;
  Printf.bprintf b "  \"wall_s\": %.6f,\n" r.res_wall_s;
  (match r.res_cache with
  | Some c ->
      Printf.bprintf b
        "  \"cache\": { \"hits\": %d, \"disk_hits\": %d, \"misses\": %d, \
         \"stores\": %d, \"shards\": %d, \"contended\": %d },\n"
        c.Cache.hits c.Cache.disk_hits c.Cache.misses c.Cache.stores
        c.Cache.shards c.Cache.contended
  | None -> Printf.bprintf b "  \"cache\": null,\n");
  let front_items =
    List.map
      (fun ((rw : row), (_ : Service.success)) ->
        let m = Option.get rw.rw_measure in
        let fitness =
          Objective.fitness r.res_objective (Pareto.of_measurement m)
        in
        Printf.sprintf
          "    { \"label\": %s, \"unroll\": %d, \"bus\": %d, \"target_ns\": \
           %g, \"stage_budget\": %d, \"decomp\": %s, \"clock_mhz\": %g, \
           \"slices\": %d, \"operator_slices\": %d, \
           \"latency\": %d, \"latch_bits\": %d, \"greedy_latch_bits\": %d, \
           \"outputs_per_cycle\": %d, \"fitness\": %g }"
          (str rw.rw_label) rw.rw_cand.cd_unroll rw.rw_cand.cd_bus
          rw.rw_cand.cd_target_ns rw.rw_cand.cd_stage_budget
          (str (Delay.decomp_name rw.rw_cand.cd_decomp))
          m.Driver.ms_clock_mhz m.Driver.ms_slices
          m.Driver.ms_operator_slices m.Driver.ms_latency m.Driver.ms_latch_bits
          m.Driver.ms_greedy_latch_bits m.Driver.ms_outputs_per_cycle fitness)
      r.res_front
  in
  Printf.bprintf b "  \"front\": [\n%s\n  ],\n" (String.concat ",\n" front_items);
  let row_items =
    List.map
      (fun (rw : row) ->
        let extra =
          match (rw.rw_measure, rw.rw_quick) with
          | Some m, _ ->
              Printf.sprintf
                ", \"slices\": %d, \"clock_mhz\": %g, \"latch_bits\": %d"
                m.Driver.ms_slices m.Driver.ms_clock_mhz m.Driver.ms_latch_bits
          | None, Some q ->
              Printf.sprintf ", \"quick_slices\": %d, \"quick_clock_mhz\": %g"
                q.Driver.qk_slices q.Driver.qk_clock_mhz
          | None, None -> ""
        in
        let detail =
          match status_detail rw.rw_status with
          | Some d -> Printf.sprintf ", \"detail\": %s" (str d)
          | None -> ""
        in
        Printf.sprintf
          "    { \"label\": %s, \"unroll\": %d, \"bus\": %d, \"target_ns\": \
           %g, \"stage_budget\": %d, \"decomp\": %s, \"status\": %s%s%s }"
          (str rw.rw_label) rw.rw_cand.cd_unroll rw.rw_cand.cd_bus
          rw.rw_cand.cd_target_ns rw.rw_cand.cd_stage_budget
          (str (Delay.decomp_name rw.rw_cand.cd_decomp))
          (str (status_name rw.rw_status))
          detail extra)
      r.res_rows
  in
  Printf.bprintf b "  \"rows\": [\n%s\n  ]\n" (String.concat ",\n" row_items);
  Printf.bprintf b "}\n";
  Buffer.contents b
