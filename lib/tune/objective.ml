type t =
  | Max_mhz of { slice_budget : int }
  | Min_slices of { target_mhz : float }
  | Min_latch_bits

let parse ~(name : string) ~(slice_budget : int option)
    ~(target_mhz : float option) : (t, string) result =
  let reject_budget what =
    match slice_budget with
    | Some _ ->
        Error (Printf.sprintf "--slice-budget only applies to max-mhz, not %s" what)
    | None -> Ok ()
  in
  let reject_target what =
    match target_mhz with
    | Some _ ->
        Error (Printf.sprintf "--target-mhz only applies to min-slices, not %s" what)
    | None -> Ok ()
  in
  match name with
  | "max-mhz" -> (
      match reject_target "max-mhz" with
      | Error _ as e -> e
      | Ok () -> (
          match slice_budget with
          | Some b when b <= 0 ->
              Error (Printf.sprintf "--slice-budget expects a positive slice count, got %d" b)
          | Some b -> Ok (Max_mhz { slice_budget = b })
          | None -> Ok (Max_mhz { slice_budget = Roccc_fpga.Area.xc2v2000_slices })))
  | "min-slices" -> (
      match reject_budget "min-slices" with
      | Error _ as e -> e
      | Ok () -> (
          match target_mhz with
          | Some m when (not (Float.is_finite m)) || m < 0.0 ->
              Error (Printf.sprintf "--target-mhz expects a non-negative clock, got %g" m)
          | Some m -> Ok (Min_slices { target_mhz = m })
          | None -> Ok (Min_slices { target_mhz = 0.0 })))
  | "min-latch-bits" -> (
      match reject_budget "min-latch-bits" with
      | Error _ as e -> e
      | Ok () -> (
          match reject_target "min-latch-bits" with
          | Error _ as e -> e
          | Ok () -> Ok Min_latch_bits))
  | other ->
      Error
        (Printf.sprintf
           "unknown objective %S (expected max-mhz, min-slices or min-latch-bits)"
           other)

let name = function
  | Max_mhz _ -> "max-mhz"
  | Min_slices _ -> "min-slices"
  | Min_latch_bits -> "min-latch-bits"

let describe = function
  | Max_mhz { slice_budget } ->
      Printf.sprintf "max-mhz (slices <= %d)" slice_budget
  | Min_slices { target_mhz } when target_mhz > 0.0 ->
      Printf.sprintf "min-slices (clock >= %g MHz)" target_mhz
  | Min_slices _ -> "min-slices (no clock constraint)"
  | Min_latch_bits -> "min-latch-bits"

let feasible (obj : t) (m : Pareto.metrics) : bool =
  match obj with
  | Max_mhz { slice_budget } -> m.Pareto.p_slices <= slice_budget
  | Min_slices { target_mhz } -> m.Pareto.p_clock_mhz >= target_mhz
  | Min_latch_bits -> true

(* Constraint check relaxed by the quick tier's error margin: only
   candidates that miss the budget/target by more than [margin]
   (relative) are discarded before exact costing. *)
let quick_feasible ~(margin : float) (obj : t) (m : Pareto.metrics) : bool =
  let f = 1.0 +. margin in
  match obj with
  | Max_mhz { slice_budget } ->
      float_of_int m.Pareto.p_slices <= float_of_int slice_budget *. f
  | Min_slices { target_mhz } -> m.Pareto.p_clock_mhz *. f >= target_mhz
  | Min_latch_bits -> true

let fitness (obj : t) (m : Pareto.metrics) : float =
  match obj with
  | Max_mhz _ -> m.Pareto.p_clock_mhz
  | Min_slices _ -> -.float_of_int m.Pareto.p_slices
  | Min_latch_bits -> -.float_of_int m.Pareto.p_latch_bits
