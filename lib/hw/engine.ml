(** Cycle-accurate simulator of the execution model (paper Figure 2):

    off-chip MEM -> BRAM -> smart buffer -> pipelined data path
                                         -> BRAM -> off-chip MEM

    Each input array lives in its own block RAM, scanned once by an address
    generator; smart buffers assemble sliding windows; one loop iteration
    enters the fully pipelined data path per cycle in steady state; results
    retire [latency] cycles after launch into the output BRAMs. Functional
    values come from the data-path evaluator, timing from the pipeliner.

    The engine is a steppable instance ([create] / [step] / [is_done] /
    [result]) so that several engines can be advanced in lockstep by the
    process-network simulator ([Roccc_net]): an input lane can be fed from
    a FIFO channel instead of a BRAM ([Feed_fifo]) and array outputs can
    stream into a FIFO instead of a BRAM ([Sink_fifo]), with credit-based
    backpressure (a launch is held until the channel has space for every
    in-flight iteration's results). [simulate] is the classic one-kernel
    BRAM-to-BRAM run, unchanged. *)

module K = Roccc_hir.Kernel
module Graph = Roccc_datapath.Graph
module Pipeline = Roccc_datapath.Pipeline
module Dp_eval = Roccc_datapath.Dp_eval
module Smart_buffer = Roccc_buffers.Smart_buffer
module Address_gen = Roccc_buffers.Address_gen
module Controller = Roccc_buffers.Controller
module Fifo = Roccc_buffers.Fifo

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type result = {
  cycles : int;                 (** total clock cycles until done *)
  launches : int;               (** iterations issued to the data path *)
  output_arrays : (string * int64 array) list;
  scalar_outputs : (string * int64) list;
  memory_reads : int;
  memory_writes : int;
  reuse_ratio : float;          (** naive fetches / actual fetches *)
  pipeline_latency : int;
  outputs_per_cycle : int;      (** results produced per steady-state cycle *)
  clock_mhz : float;            (** from the pipeliner's timed netlist *)
  stage_count : int;            (** pipeline stages *)
  latch_bits : int;             (** pipeline-register bits *)
  wall_time_us : float;         (** cycles at the estimated clock *)
  controller_trace : (int * string) list;  (** state transitions (cycle, state) *)
  launch_trace : (int * (string * int64) list) list;
      (** (cycle, window+scalar inputs) per launch, in order *)
  retire_trace : (int * (string * int64) list) list;
      (** (cycle, data-path outputs) per retirement, in order *)
}

(** Where a window input's elements come from. *)
type feed =
  | Feed_bram of int64 array   (** classic: preloaded BRAM, scanned once *)
  | Feed_fifo of Fifo.t        (** streamed from an upstream channel *)

(** Where array outputs go. *)
type sink =
  | Sink_bram                  (** classic: one BRAM per output array *)
  | Sink_fifo of Fifo.t        (** streamed to a downstream channel *)

type lane_source =
  | Src_bram of { bram : Bram.t; gen : Address_gen.input_gen }
  | Src_fifo of { fifo : Fifo.t; total : int; mutable taken : int }

type input_lane = {
  lane_window : K.window_input;
  lane_source : lane_source;
  lane_buffer : Smart_buffer.t;
}

type output_lane = {
  out_port : K.output;
  out_bram : Bram.t option;       (** None for scalar / streamed outputs *)
  out_gen : Address_gen.output_gen option;
}

type t = {
  kernel : K.t;
  dp : Graph.t;
  pipeline : Pipeline.t;
  luts : (string * (int64 -> int64)) list;
  latency : int;
  lanes : input_lane list;
  out_lanes : output_lane list;
  out_brams : (string * Bram.t) list ref;
  sink : sink;
  outputs_per_launch : int;       (** array elements pushed per retire *)
  scalar_out_regs : (string, int64) Hashtbl.t;
  scalar_inputs : (string * int64) list;
  total : int;
  controller : Controller.t;
  mutable feedback_prev : (string * int64) list;
  in_flight : (int * (string * int64) list) Queue.t;
      (** (retire_cycle, dp outputs) in launch order *)
  mutable cycle : int;
  mutable launches : int;
  mutable trace : (int * string) list;
  mutable launch_trace : (int * (string * int64) list) list;
  mutable retire_trace : (int * (string * int64) list) list;
}

let dims_size dims = List.fold_left ( * ) 1 dims

(* Per-array loop geometry: iteration counts / strides / lower bounds with
   one entry per array dimension. Block kernels (no loop) consume the block
   in a single launch. *)
let loop_geometry (k : K.t) ~(ndims : int) =
  if k.K.loops = [] then
    ( List.init ndims (fun _ -> 1),
      List.init ndims (fun _ -> 0),
      List.init ndims (fun _ -> 0) )
  else begin
    if List.length k.K.loops <> ndims then
      errf "engine: %d loop dims but a %d-D array" (List.length k.K.loops)
        ndims;
    ( List.map (fun d -> d.K.count) k.K.loops,
      List.map (fun d -> d.K.step) k.K.loops,
      List.map (fun d -> d.K.lower) k.K.loops )
  end

let total_iterations (k : K.t) =
  if k.K.loops = [] then 1 else K.iteration_space k

(** Build a steppable engine instance. [feeds] names the element source per
    window array (default: a BRAM loaded from [arrays]); [sink] is where
    array outputs retire to. *)
let create ?(luts = []) ?(scalars = []) ?(arrays = []) ?(bus_elements = 1)
    ?(feeds = []) ?(sink = Sink_bram) (k : K.t) ~(dp : Graph.t)
    ~(pipeline : Pipeline.t) : t =
  let latency = Pipeline.latency pipeline in
  (* ---- input lanes ---- *)
  let lanes =
    List.map
      (fun (w : K.window_input) ->
        let ndims = List.length w.K.win_dims in
        let iterations, stride, lower = loop_geometry k ~ndims in
        let size = dims_size w.K.win_dims in
        let source =
          match List.assoc_opt w.K.win_array feeds with
          | Some (Feed_fifo fifo) -> Src_fifo { fifo; total = size; taken = 0 }
          | (Some (Feed_bram _) | None) as feed -> (
            let bram =
              Bram.create ~name:w.K.win_array
                ~element_bits:w.K.win_kind.Roccc_cfront.Ast.bits
                ~element_signed:w.K.win_kind.Roccc_cfront.Ast.signed ~size ()
            in
            let values =
              match feed with
              | Some (Feed_bram values) -> Some values
              | _ -> List.assoc_opt w.K.win_array arrays
            in
            (match values with
            | Some values ->
              if Array.length values <> size then
                errf "engine: array %s has %d elements, expected %d"
                  w.K.win_array (Array.length values) size;
              Bram.load bram values
            | None -> errf "engine: missing input array %s" w.K.win_array);
            let gen =
              Address_gen.create_input ~array_dims:w.K.win_dims ~bus_elements
            in
            Src_bram { bram; gen })
        in
        let buffer =
          Smart_buffer.create
            { Smart_buffer.element_bits = w.K.win_kind.Roccc_cfront.Ast.bits;
              element_signed = w.K.win_kind.Roccc_cfront.Ast.signed;
              bus_elements;
              array_dims = w.K.win_dims;
              window_offsets = w.K.win_offsets;
              stride;
              iterations;
              lower }
        in
        { lane_window = w; lane_source = source; lane_buffer = buffer })
      k.K.windows
  in
  (* ---- output lanes ---- *)
  let out_brams : (string * Bram.t) list ref = ref [] in
  let out_lanes =
    List.map
      (fun (o : K.output) ->
        match o.K.target with
        | K.Out_array { arr; kind; dims; offset } -> (
          match sink with
          | Sink_fifo _ ->
            (* streamed: retires push into the channel in port order *)
            { out_port = o; out_bram = None; out_gen = None }
          | Sink_bram ->
            let bram =
              match List.assoc_opt arr !out_brams with
              | Some b -> b
              | None ->
                let b =
                  Bram.create ~name:arr
                    ~element_bits:kind.Roccc_cfront.Ast.bits
                    ~element_signed:kind.Roccc_cfront.Ast.signed
                    ~size:(dims_size dims) ()
                in
                out_brams := !out_brams @ [ arr, b ];
                b
            in
            let ndims = List.length dims in
            let iterations, stride, lower = loop_geometry k ~ndims in
            let gen =
              Address_gen.create_output ~out_dims:dims ~iterations ~stride
                ~lower ~offset
            in
            { out_port = o; out_bram = Some bram; out_gen = Some gen })
        | K.Out_scalar _ -> { out_port = o; out_bram = None; out_gen = None })
      k.K.outputs
  in
  let out_lanes =
    match sink with
    | Sink_bram -> out_lanes
    | Sink_fifo _ ->
      (* stream order = memory order: array ports ascending by write
         offset (unrolled kernels emit one port per unrolled store) *)
      List.stable_sort
        (fun a b ->
          match a.out_port.K.target, b.out_port.K.target with
          | K.Out_array { offset = oa; _ }, K.Out_array { offset = ob; _ } ->
            compare oa ob
          | K.Out_array _, K.Out_scalar _ -> -1
          | K.Out_scalar _, K.Out_array _ -> 1
          | K.Out_scalar _, K.Out_scalar _ -> 0)
        out_lanes
  in
  let outputs_per_launch =
    List.length
      (List.filter
         (fun (o : K.output) ->
           match o.K.target with K.Out_array _ -> true | K.Out_scalar _ -> false)
         k.K.outputs)
  in
  (* ---- control ---- *)
  let total = total_iterations k in
  let controller =
    Controller.create ~total_iterations:total ~pipeline_latency:latency
  in
  Controller.start controller;
  let scalar_inputs =
    List.map
      (fun (p : Roccc_cfront.Ast.param) ->
        match List.assoc_opt p.Roccc_cfront.Ast.pname scalars with
        | Some v -> p.Roccc_cfront.Ast.pname, v
        | None ->
          errf "engine: missing scalar input %s" p.Roccc_cfront.Ast.pname)
      k.K.scalar_inputs
  in
  { kernel = k;
    dp;
    pipeline;
    luts;
    latency;
    lanes;
    out_lanes;
    out_brams;
    sink;
    outputs_per_launch;
    scalar_out_regs = Hashtbl.create 4;
    scalar_inputs;
    total;
    controller;
    feedback_prev = [];
    in_flight = Queue.create ();
    cycle = 0;
    launches = 0;
    trace = [ 0, Controller.state_name controller.Controller.state ];
    launch_trace = [];
    retire_trace = [] }

let is_done (e : t) : bool = Controller.is_done e.controller

let lane_input_done (l : input_lane) : bool =
  match l.lane_source with
  | Src_bram { gen; _ } -> Address_gen.input_done gen
  | Src_fifo { total; taken; _ } -> taken >= total

(* Launch credit: a streamed producer may only launch when the channel can
   absorb the results of every in-flight iteration plus this one, even if
   the consumer pops nothing meanwhile. This is the backpressure rule the
   sized FIFO is proven against. *)
let has_launch_credit (e : t) : bool =
  match e.sink with
  | Sink_bram -> true
  | Sink_fifo f ->
    Fifo.space f >= (Queue.length e.in_flight + 1) * e.outputs_per_launch

(** Advance the engine by one clock cycle. *)
let step (e : t) : unit =
  if is_done e then ()
  else begin
    e.cycle <- e.cycle + 1;
    (* 1. memory reads: each BRAM lane returns last cycle's request and
       accepts a new one; each FIFO lane drains up to one bus worth of
       elements from its channel (an empty channel stalls the lane) *)
    List.iter
      (fun lane ->
        match lane.lane_source with
        | Src_bram { bram; gen } -> (
          Bram.clock bram;
          let arrived = Bram.read_port bram in
          if Array.length arrived > 0 then
            Smart_buffer.push lane.lane_buffer arrived;
          match Address_gen.next_read gen with
          | Some { Address_gen.base_address; count } ->
            Bram.request_read bram ~address:base_address ~count
          | None -> ())
        | Src_fifo src ->
          let bus = lane.lane_buffer.Smart_buffer.cfg.Smart_buffer.bus_elements in
          let want = min bus (src.total - src.taken) in
          if want > 0 then begin
            let got = ref [] in
            (try
               for _ = 1 to want do
                 match Fifo.pop src.fifo with
                 | Some v -> got := v :: !got
                 | None -> raise Exit
               done
             with Exit -> ());
            let got = List.rev !got in
            if got = [] then Fifo.note_empty_stall src.fifo
            else begin
              src.taken <- src.taken + List.length got;
              Smart_buffer.push lane.lane_buffer (Array.of_list got)
            end
          end)
      e.lanes;
    (* 2. launch an iteration when every buffer has its window and the
       output channel (if any) has credit for the results *)
    let all_ready =
      e.lanes <> []
      && List.for_all
           (fun l -> Smart_buffer.window_ready l.lane_buffer)
           e.lanes
      || (e.lanes = [] && e.launches < e.total)
    in
    if all_ready && e.launches < e.total then begin
      if not (has_launch_credit e) then
        match e.sink with
        | Sink_fifo f -> Fifo.note_full_stall f
        | Sink_bram -> ()
      else begin
        let window_inputs =
          List.concat_map
            (fun lane ->
              match Smart_buffer.pop_window lane.lane_buffer with
              | Some values ->
                List.map2
                  (fun (_, name) v -> name, v)
                  lane.lane_window.K.win_scalars (Array.to_list values)
              | None -> errf "engine: ready buffer refused to pop")
            e.lanes
        in
        let r =
          Dp_eval.run ~luts:e.luts ~feedback_prev:e.feedback_prev e.dp
            ~inputs:(window_inputs @ e.scalar_inputs)
        in
        let merged =
          r.Dp_eval.feedback_next
          @ List.filter
              (fun (n, _) -> not (List.mem_assoc n r.Dp_eval.feedback_next))
              e.feedback_prev
        in
        e.feedback_prev <- merged;
        e.launches <- e.launches + 1;
        e.launch_trace <-
          e.launch_trace @ [ e.cycle, window_inputs @ e.scalar_inputs ];
        Controller.note_launch e.controller;
        Queue.add (e.cycle + e.latency, r.Dp_eval.outputs) e.in_flight
      end
    end;
    (* 3. retire iterations whose results reach the output side *)
    while
      (not (Queue.is_empty e.in_flight))
      && fst (Queue.peek e.in_flight) <= e.cycle
    do
      let _, outputs = Queue.pop e.in_flight in
      e.retire_trace <- e.retire_trace @ [ e.cycle, outputs ];
      List.iter
        (fun ol ->
          let value =
            match List.assoc_opt ol.out_port.K.port outputs with
            | Some v -> v
            | None ->
              errf "engine: data path produced no %s" ol.out_port.K.port
          in
          match ol.out_bram, ol.out_gen with
          | Some bram, Some gen -> (
            match Address_gen.next_write gen with
            | Some address -> Bram.write bram ~address value
            | None -> errf "engine: output address generator exhausted")
          | _, _ -> (
            match ol.out_port.K.target with
            | K.Out_scalar { name; _ } ->
              Hashtbl.replace e.scalar_out_regs name value
            | K.Out_array _ -> (
              match e.sink with
              | Sink_fifo f -> Fifo.push f value
              | Sink_bram -> errf "engine: array output without BRAM")))
        e.out_lanes;
      Controller.note_retire e.controller
    done;
    (* 4. controller transition *)
    let prev_state = e.controller.Controller.state in
    Controller.step e.controller
      ~window_ready:
        (e.lanes <> []
        && List.for_all
             (fun l -> Smart_buffer.window_ready l.lane_buffer)
             e.lanes)
      ~input_done:(List.for_all lane_input_done e.lanes);
    if e.controller.Controller.state <> prev_state then
      e.trace <-
        e.trace
        @ [ e.cycle, Controller.state_name e.controller.Controller.state ]
  end

(** Collect the run's results. Call after [is_done] (or after giving up:
    the counters are valid at any point). *)
let result (e : t) : result =
  let memory_reads =
    List.fold_left
      (fun acc l ->
        match l.lane_source with
        | Src_bram { bram; _ } -> acc + bram.Bram.reads
        | Src_fifo _ -> acc)
      0 e.lanes
  in
  let memory_writes =
    List.fold_left (fun acc (_, b) -> acc + b.Bram.writes) 0 !(e.out_brams)
  in
  let reuse =
    match e.lanes with
    | [] -> 1.0
    | _ ->
      let naive =
        List.fold_left
          (fun acc l ->
            acc + Smart_buffer.naive_fetches l.lane_buffer.Smart_buffer.cfg)
          0 e.lanes
      in
      if memory_reads = 0 then 1.0
      else float_of_int naive /. float_of_int memory_reads
  in
  { cycles = e.cycle;
    launches = e.launches;
    output_arrays =
      List.map (fun (name, b) -> name, Bram.contents b) !(e.out_brams);
    scalar_outputs =
      Hashtbl.fold (fun n v acc -> (n, v) :: acc) e.scalar_out_regs []
      |> List.sort compare;
    memory_reads;
    memory_writes;
    reuse_ratio = reuse;
    pipeline_latency = e.latency;
    outputs_per_cycle = List.length e.kernel.K.outputs;
    clock_mhz = e.pipeline.Pipeline.clock_mhz;
    stage_count = e.pipeline.Pipeline.stage_count;
    latch_bits = e.pipeline.Pipeline.latch_bits;
    wall_time_us =
      (if e.pipeline.Pipeline.clock_mhz > 0.0 then
         float_of_int e.cycle /. e.pipeline.Pipeline.clock_mhz
       else 0.0);
    controller_trace = e.trace;
    launch_trace = e.launch_trace;
    retire_trace = e.retire_trace }

(** Iterations retired so far (progress indicator for stall diagnostics). *)
let retired (e : t) : int = e.controller.Controller.retired

let total_launches (e : t) : int = e.total
let latency (e : t) : int = e.latency

(** Simulate a kernel end to end. [arrays] supplies input array contents by
    name; [scalars] the live-in scalar values; [bus_elements] the number of
    elements each memory access delivers (the paper's "bus size"). *)
let simulate ?(luts = []) ?(scalars = []) ?(arrays = []) ?(bus_elements = 1)
    ?(max_cycles = 4_000_000) (k : K.t) ~(dp : Graph.t) ~(pipeline : Pipeline.t)
    : result =
  let e = create ~luts ~scalars ~arrays ~bus_elements k ~dp ~pipeline in
  while (not (is_done e)) && e.cycle < max_cycles do
    step e
  done;
  if not (is_done e) then
    errf "engine: cycle budget exhausted after %d cycles (%d/%d retired)"
      e.cycle e.controller.Controller.retired e.total;
  result e
