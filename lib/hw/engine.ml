(** Cycle-accurate simulator of the execution model (paper Figure 2):

    off-chip MEM -> BRAM -> smart buffer -> pipelined data path
                                         -> BRAM -> off-chip MEM

    Each input array lives in its own block RAM, scanned once by an address
    generator; smart buffers assemble sliding windows; one loop iteration
    enters the fully pipelined data path per cycle in steady state; results
    retire [latency] cycles after launch into the output BRAMs. Functional
    values come from the data-path evaluator, timing from the pipeliner. *)

module K = Roccc_hir.Kernel
module Graph = Roccc_datapath.Graph
module Pipeline = Roccc_datapath.Pipeline
module Dp_eval = Roccc_datapath.Dp_eval
module Smart_buffer = Roccc_buffers.Smart_buffer
module Address_gen = Roccc_buffers.Address_gen
module Controller = Roccc_buffers.Controller

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type result = {
  cycles : int;                 (** total clock cycles until done *)
  launches : int;               (** iterations issued to the data path *)
  output_arrays : (string * int64 array) list;
  scalar_outputs : (string * int64) list;
  memory_reads : int;
  memory_writes : int;
  reuse_ratio : float;          (** naive fetches / actual fetches *)
  pipeline_latency : int;
  outputs_per_cycle : int;      (** results produced per steady-state cycle *)
  clock_mhz : float;            (** from the pipeliner's timed netlist *)
  stage_count : int;            (** pipeline stages *)
  latch_bits : int;             (** pipeline-register bits *)
  wall_time_us : float;         (** cycles at the estimated clock *)
  controller_trace : (int * string) list;  (** state transitions (cycle, state) *)
  launch_trace : (int * (string * int64) list) list;
      (** (cycle, window+scalar inputs) per launch, in order *)
  retire_trace : (int * (string * int64) list) list;
      (** (cycle, data-path outputs) per retirement, in order *)
}

type input_lane = {
  lane_window : K.window_input;
  lane_bram : Bram.t;
  lane_gen : Address_gen.input_gen;
  lane_buffer : Smart_buffer.t;
}

type output_lane = {
  out_port : K.output;
  out_bram : Bram.t option;       (** None for scalar outputs *)
  out_gen : Address_gen.output_gen option;
}

let dims_size dims = List.fold_left ( * ) 1 dims

(* Per-array loop geometry: iteration counts / strides / lower bounds with
   one entry per array dimension. Block kernels (no loop) consume the block
   in a single launch. *)
let loop_geometry (k : K.t) ~(ndims : int) =
  if k.K.loops = [] then
    ( List.init ndims (fun _ -> 1),
      List.init ndims (fun _ -> 0),
      List.init ndims (fun _ -> 0) )
  else begin
    if List.length k.K.loops <> ndims then
      errf "engine: %d loop dims but a %d-D array" (List.length k.K.loops)
        ndims;
    ( List.map (fun d -> d.K.count) k.K.loops,
      List.map (fun d -> d.K.step) k.K.loops,
      List.map (fun d -> d.K.lower) k.K.loops )
  end

let total_iterations (k : K.t) =
  if k.K.loops = [] then 1 else K.iteration_space k

(** Simulate a kernel end to end. [arrays] supplies input array contents by
    name; [scalars] the live-in scalar values; [bus_elements] the number of
    elements each memory access delivers (the paper's "bus size"). *)
let simulate ?(luts = []) ?(scalars = []) ?(arrays = []) ?(bus_elements = 1)
    ?(max_cycles = 4_000_000) (k : K.t) ~(dp : Graph.t) ~(pipeline : Pipeline.t)
    : result =
  let latency = Pipeline.latency pipeline in
  (* ---- input lanes ---- *)
  let lanes =
    List.map
      (fun (w : K.window_input) ->
        let ndims = List.length w.K.win_dims in
        let iterations, stride, lower = loop_geometry k ~ndims in
        let size = dims_size w.K.win_dims in
        let bram =
          Bram.create ~name:w.K.win_array
            ~element_bits:w.K.win_kind.Roccc_cfront.Ast.bits
            ~element_signed:w.K.win_kind.Roccc_cfront.Ast.signed ~size ()
        in
        (match List.assoc_opt w.K.win_array arrays with
        | Some values ->
          if Array.length values <> size then
            errf "engine: array %s has %d elements, expected %d" w.K.win_array
              (Array.length values) size;
          Bram.load bram values
        | None -> errf "engine: missing input array %s" w.K.win_array);
        let gen =
          Address_gen.create_input ~array_dims:w.K.win_dims ~bus_elements
        in
        let buffer =
          Smart_buffer.create
            { Smart_buffer.element_bits = w.K.win_kind.Roccc_cfront.Ast.bits;
              element_signed = w.K.win_kind.Roccc_cfront.Ast.signed;
              bus_elements;
              array_dims = w.K.win_dims;
              window_offsets = w.K.win_offsets;
              stride;
              iterations;
              lower }
        in
        { lane_window = w; lane_bram = bram; lane_gen = gen;
          lane_buffer = buffer })
      k.K.windows
  in
  (* ---- output lanes ---- *)
  let out_brams : (string * Bram.t) list ref = ref [] in
  let out_lanes =
    List.map
      (fun (o : K.output) ->
        match o.K.target with
        | K.Out_array { arr; kind; dims; offset } ->
          let bram =
            match List.assoc_opt arr !out_brams with
            | Some b -> b
            | None ->
              let b =
                Bram.create ~name:arr
                  ~element_bits:kind.Roccc_cfront.Ast.bits
                  ~element_signed:kind.Roccc_cfront.Ast.signed
                  ~size:(dims_size dims) ()
              in
              out_brams := !out_brams @ [ arr, b ];
              b
          in
          let ndims = List.length dims in
          let iterations, stride, lower = loop_geometry k ~ndims in
          let gen =
            Address_gen.create_output ~out_dims:dims ~iterations ~stride
              ~lower ~offset
          in
          { out_port = o; out_bram = Some bram; out_gen = Some gen }
        | K.Out_scalar _ -> { out_port = o; out_bram = None; out_gen = None })
      k.K.outputs
  in
  let scalar_out_regs : (string, int64) Hashtbl.t = Hashtbl.create 4 in
  (* ---- control ---- *)
  let total = total_iterations k in
  let controller =
    Controller.create ~total_iterations:total ~pipeline_latency:latency
  in
  Controller.start controller;
  let trace = ref [ 0, Controller.state_name controller.Controller.state ] in
  let feedback_prev = ref [] in
  (* in-flight iterations: (retire_cycle, dp outputs) in launch order *)
  let in_flight : (int * (string * int64) list) Queue.t = Queue.create () in
  let cycle = ref 0 in
  let launches = ref 0 in
  let launch_trace = ref [] in
  let retire_trace = ref [] in
  let scalar_inputs =
    List.map
      (fun (p : Roccc_cfront.Ast.param) ->
        match List.assoc_opt p.Roccc_cfront.Ast.pname scalars with
        | Some v -> p.Roccc_cfront.Ast.pname, v
        | None ->
          errf "engine: missing scalar input %s" p.Roccc_cfront.Ast.pname)
      k.K.scalar_inputs
  in
  while (not (Controller.is_done controller)) && !cycle < max_cycles do
    incr cycle;
    (* 1. memory reads: each lane's BRAM returns last cycle's request and
       accepts a new one *)
    List.iter
      (fun lane ->
        Bram.clock lane.lane_bram;
        let arrived = Bram.read_port lane.lane_bram in
        if Array.length arrived > 0 then Smart_buffer.push lane.lane_buffer arrived;
        match Address_gen.next_read lane.lane_gen with
        | Some { Address_gen.base_address; count } ->
          Bram.request_read lane.lane_bram ~address:base_address ~count
        | None -> ())
      lanes;
    (* 2. launch an iteration when every buffer has its window *)
    let all_ready =
      lanes <> [] && List.for_all (fun l -> Smart_buffer.window_ready l.lane_buffer) lanes
      || (lanes = [] && !launches < total)
    in
    if all_ready && !launches < total then begin
      let window_inputs =
        List.concat_map
          (fun lane ->
            match Smart_buffer.pop_window lane.lane_buffer with
            | Some values ->
              List.map2
                (fun (_, name) v -> name, v)
                lane.lane_window.K.win_scalars (Array.to_list values)
            | None -> errf "engine: ready buffer refused to pop")
          lanes
      in
      let r =
        Dp_eval.run ~luts ~feedback_prev:!feedback_prev dp
          ~inputs:(window_inputs @ scalar_inputs)
      in
      let merged =
        r.Dp_eval.feedback_next
        @ List.filter
            (fun (n, _) -> not (List.mem_assoc n r.Dp_eval.feedback_next))
            !feedback_prev
      in
      feedback_prev := merged;
      incr launches;
      launch_trace := !launch_trace @ [ !cycle, window_inputs @ scalar_inputs ];
      Controller.note_launch controller;
      Queue.add (!cycle + latency, r.Dp_eval.outputs) in_flight
    end;
    (* 3. retire iterations whose results reach the output side *)
    while
      (not (Queue.is_empty in_flight))
      && fst (Queue.peek in_flight) <= !cycle
    do
      let _, outputs = Queue.pop in_flight in
      retire_trace := !retire_trace @ [ !cycle, outputs ];
      List.iter
        (fun ol ->
          let value =
            match List.assoc_opt ol.out_port.K.port outputs with
            | Some v -> v
            | None -> errf "engine: data path produced no %s" ol.out_port.K.port
          in
          match ol.out_bram, ol.out_gen with
          | Some bram, Some gen -> (
            match Address_gen.next_write gen with
            | Some address -> Bram.write bram ~address value
            | None -> errf "engine: output address generator exhausted")
          | _, _ -> (
            match ol.out_port.K.target with
            | K.Out_scalar { name; _ } ->
              Hashtbl.replace scalar_out_regs name value
            | K.Out_array _ -> errf "engine: array output without BRAM"))
        out_lanes;
      Controller.note_retire controller
    done;
    (* 4. controller transition *)
    let prev_state = controller.Controller.state in
    Controller.step controller
      ~window_ready:
        (lanes <> []
        && List.for_all (fun l -> Smart_buffer.window_ready l.lane_buffer) lanes)
      ~input_done:
        (List.for_all (fun l -> Address_gen.input_done l.lane_gen) lanes);
    if controller.Controller.state <> prev_state then
      trace :=
        !trace @ [ !cycle, Controller.state_name controller.Controller.state ]
  done;
  if not (Controller.is_done controller) then
    errf "engine: cycle budget exhausted after %d cycles (%d/%d retired)"
      !cycle controller.Controller.retired total;
  let memory_reads =
    List.fold_left (fun acc l -> acc + l.lane_bram.Bram.reads) 0 lanes
  in
  let memory_writes =
    List.fold_left (fun acc (_, b) -> acc + b.Bram.writes) 0 !out_brams
  in
  let reuse =
    match lanes with
    | [] -> 1.0
    | _ ->
      let naive =
        List.fold_left
          (fun acc l -> acc + Smart_buffer.naive_fetches l.lane_buffer.Smart_buffer.cfg)
          0 lanes
      in
      if memory_reads = 0 then 1.0
      else float_of_int naive /. float_of_int memory_reads
  in
  { cycles = !cycle;
    launches = !launches;
    output_arrays =
      List.map (fun (name, b) -> name, Bram.contents b) !out_brams;
    scalar_outputs =
      Hashtbl.fold (fun n v acc -> (n, v) :: acc) scalar_out_regs []
      |> List.sort compare;
    memory_reads;
    memory_writes;
    reuse_ratio = reuse;
    pipeline_latency = latency;
    outputs_per_cycle = List.length k.K.outputs;
    clock_mhz = pipeline.Pipeline.clock_mhz;
    stage_count = pipeline.Pipeline.stage_count;
    latch_bits = pipeline.Pipeline.latch_bits;
    wall_time_us =
      (if pipeline.Pipeline.clock_mhz > 0.0 then
         float_of_int !cycle /. pipeline.Pipeline.clock_mhz
       else 0.0);
    controller_trace = !trace;
    launch_trace = !launch_trace;
    retire_trace = !retire_trace }
