(** Cycle-accurate simulator of the execution model (paper Figure 2):
    off-chip MEM → BRAM → smart buffer → pipelined data path → BRAM.
    Functional values come from the data-path evaluator, timing from the
    pipeliner; the controller FSM sequences fill / steady / drain. *)

exception Error of string

type result = {
  cycles : int;  (** clock cycles until the controller reaches done *)
  launches : int;  (** iterations issued to the data path *)
  output_arrays : (string * int64 array) list;
  scalar_outputs : (string * int64) list;
  memory_reads : int;  (** elements read from input BRAMs (once each) *)
  memory_writes : int;
  reuse_ratio : float;  (** naive window fetches / actual fetches *)
  pipeline_latency : int;
  outputs_per_cycle : int;  (** results per steady-state cycle *)
  clock_mhz : float;  (** from the pipeliner's timed netlist *)
  stage_count : int;  (** pipeline stages *)
  latch_bits : int;  (** pipeline-register bits *)
  wall_time_us : float;  (** cycles at the estimated clock *)
  controller_trace : (int * string) list;
      (** controller state transitions as (cycle, state-name) *)
  launch_trace : (int * (string * int64) list) list;
      (** (cycle, window+scalar inputs) per launch, in order *)
  retire_trace : (int * (string * int64) list) list;
      (** (cycle, data-path outputs) per retirement, in order *)
}

(** Where a window input's elements come from. *)
type feed =
  | Feed_bram of int64 array
      (** classic: a preloaded BRAM scanned once by an address generator *)
  | Feed_fifo of Roccc_buffers.Fifo.t
      (** streamed from an upstream channel (process networks) *)

(** Where array outputs retire to. *)
type sink =
  | Sink_bram  (** classic: one BRAM per output array *)
  | Sink_fifo of Roccc_buffers.Fifo.t
      (** streamed to a downstream channel, in write-offset order *)

type t
(** A steppable engine instance: several can be advanced in lockstep by
    the process-network simulator. *)

val create :
  ?luts:(string * (int64 -> int64)) list ->
  ?scalars:(string * int64) list ->
  ?arrays:(string * int64 array) list ->
  ?bus_elements:int ->
  ?feeds:(string * feed) list ->
  ?sink:sink ->
  Roccc_hir.Kernel.t ->
  dp:Roccc_datapath.Graph.t ->
  pipeline:Roccc_datapath.Pipeline.t ->
  t
(** Build an engine without running it. [feeds] selects the element
    source per window array (default: a BRAM loaded from [arrays]);
    [sink] is where array outputs retire. Raises {!Error} on missing
    inputs. *)

val step : t -> unit
(** Advance the engine by one clock cycle (a no-op once done). A FIFO-fed
    lane that finds its channel empty stalls (counted on the channel); a
    FIFO-sinked engine launches only with credit — space for the results
    of every in-flight iteration plus the new one — and otherwise records
    a full-stall on the channel. *)

val is_done : t -> bool

val result : t -> result
(** Collect counters and outputs (valid at any point of the run). *)

val retired : t -> int
(** Iterations retired so far (progress indicator for stall diagnostics). *)

val total_launches : t -> int
(** Iterations the kernel needs in total. *)

val latency : t -> int

val simulate :
  ?luts:(string * (int64 -> int64)) list ->
  ?scalars:(string * int64) list ->
  ?arrays:(string * int64 array) list ->
  ?bus_elements:int ->
  ?max_cycles:int ->
  Roccc_hir.Kernel.t ->
  dp:Roccc_datapath.Graph.t ->
  pipeline:Roccc_datapath.Pipeline.t ->
  result
(** Simulate a compiled kernel end to end. [arrays] supplies the input
    array contents by name (loaded into per-array BRAMs before the circuit
    starts); [scalars] the live-in scalar parameters; [bus_elements] the
    memory bus width (the paper's "bus size"). One iteration enters the
    pipeline per cycle once its windows are buffered; results retire
    [pipeline latency] cycles later. Raises {!Error} on missing inputs or
    if the cycle budget is exhausted. *)
