(* A work-stealing-free parallel job scheduler over OCaml 5 domains.

   Jobs are drained from a shared atomic counter by [num_domains] workers
   (the calling domain is worker 0). Results land in a slot array indexed
   by submission order, so the output is deterministic regardless of which
   domain ran which job; Domain.join provides the happens-before edge that
   makes the slots safely readable afterwards. A job that raises is
   captured as [Error] in its own slot — one failing kernel cannot take
   down the batch. *)

let default_domains () = max 1 (Domain.recommended_domain_count ())

let parallel_map ?(num_domains = 0) ?(describe_error = fun _ -> None)
    ~(f : tid:int -> 'a -> 'b) (jobs : 'a array) : ('b, string) result array =
  let n = Array.length jobs in
  let num_domains = if num_domains <= 0 then default_domains () else num_domains in
  let workers = max 1 (min num_domains n) in
  let results : ('b, string) result option array = Array.make n None in
  let next = Atomic.make 0 in
  let worker tid () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let r =
          match f ~tid jobs.(i) with
          | v -> Ok v
          | exception e ->
            let msg =
              match describe_error e with
              | Some msg -> msg
              | None -> Printexc.to_string e
            in
            Error msg
        in
        results.(i) <- Some r;
        loop ()
      end
    in
    loop ()
  in
  if workers = 1 then worker 0 ()
  else begin
    let spawned =
      Array.init (workers - 1) (fun k -> Domain.spawn (worker (k + 1)))
    in
    worker 0 ();
    Array.iter Domain.join spawned
  end;
  Array.map
    (function Some r -> r | None -> Error "job was never scheduled")
    results
