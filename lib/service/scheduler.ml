(* A work-stealing-free parallel job scheduler over OCaml 5 domains,
   built on the shared {!Pool} abstraction (the same pool the serve
   loop's queue workers use).

   Jobs are drained in contiguous chunks from a shared atomic counter by
   the workers (the calling domain is worker 0 and does real work between
   claims). Chunked claiming keeps the atomic off the hot path when jobs
   are small; each result lands in its own separately-allocated slot box
   indexed by submission order, so writes from different workers touch
   different cache lines (no false sharing on a shared slot array) and the
   output is deterministic regardless of which domain ran which job.
   The pool's join provides the happens-before edge that makes the slots
   safely readable afterwards. A job that raises is captured as [Error] in
   its own slot — one failing kernel cannot take down the batch.

   Worker count is clamped to the hardware parallelism
   (Domain.recommended_domain_count): spawning more domains than cores
   cannot run anything in parallel but still pays domain startup and
   stop-the-world GC synchronisation per extra domain, which is exactly
   the negative scaling the service bench used to show. Pass
   [~clamp:false] to force true oversubscription (e.g. for jobs that
   block on IO). *)

let default_domains () = Pool.recommended ()

let effective_workers ?(clamp = true) ?(num_domains = 0) (n : int) : int =
  let requested = if num_domains <= 0 then default_domains () else num_domains in
  let hw = if clamp then default_domains () else requested in
  max 1 (min requested (min hw (max 1 n)))

let parallel_map ?(clamp = true) ?(num_domains = 0) ?(chunk = 0)
    ?(describe_error = fun _ -> None) ~(f : tid:int -> 'a -> 'b)
    (jobs : 'a array) : ('b, string) result array =
  let n = Array.length jobs in
  let workers = effective_workers ~clamp ~num_domains n in
  let chunk =
    if chunk > 0 then chunk
    else if workers = 1 then n
    else max 1 (n / (workers * 8))
  in
  (* one box per job: results.(i) is written by exactly one worker and the
     boxes are separate heap blocks, so concurrent writes don't contend *)
  let results : ('b, string) result option ref array =
    Array.init n (fun _ -> ref None)
  in
  let next = Atomic.make 0 in
  let run_one tid i =
    let r =
      (* the claim fault point fires inside the protected computation, so
         an injected fault lands in the job's own slot as [Error] instead
         of killing the worker domain *)
      match
        Faults.trip "scheduler_claim";
        f ~tid jobs.(i)
      with
      | v -> Ok v
      | exception e ->
        let msg =
          match describe_error e with
          | Some msg -> msg
          | None -> Printexc.to_string e
        in
        Error msg
    in
    results.(i) := Some r
  in
  Pool.run ~workers (fun ~tid ->
      let rec loop () =
        let start = Atomic.fetch_and_add next chunk in
        if start < n then begin
          let stop = min n (start + chunk) in
          for i = start to stop - 1 do
            run_one tid i
          done;
          loop ()
        end
      in
      loop ());
  Array.map
    (fun slot ->
      match !slot with Some r -> r | None -> Error "job was never scheduled")
    results
