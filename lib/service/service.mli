(** The batch compilation service: fans (source, entry, options) jobs
    across worker domains, memoizing stage outputs in a content-addressed
    {!Cache} and collecting per-pass timings in a {!Trace}.

    Results are deterministic: job [i]'s slot in the report is job [i]'s
    result no matter how many domains ran the batch, and the generated
    VHDL is byte-identical to a sequential uncached compilation. *)

type job = {
  label : string;  (** display name, unique within a batch *)
  source : string;
  entry : string;
  options : Roccc_core.Driver.options;
  luts : Roccc_hir.Lut_conv.table list;
}

(** Where a job's result came from. *)
type origin =
  | Cold  (** every pass ran *)
  | Warm_partial
      (** a prefix of the mid-end passes was reused; the rest re-ran *)
  | Warm_stage  (** every mid-end pass reused; only the back end ran *)
  | Warm_memory  (** finished artifact from the in-memory cache *)
  | Warm_disk  (** finished artifact reloaded from the disk cache *)
  | Coalesced
      (** a concurrent identical compile was already executing; this job
          blocked on that leader and shares its artifact (single-flight
          deduplication) *)

val origin_name : origin -> string

type success = {
  r_label : string;
  r_entry : string;
  r_vhdl : (string * string) list;  (** filename -> contents *)
  r_slices : int;
  r_operator_slices : int;
  r_clock_mhz : float;
  r_latency : int;
  r_latch_bits : int;  (** pipeline-register bits after retiming *)
  r_pass_trace : string list;
  r_elapsed_s : float;
  r_origin : origin;
}

type report = {
  rp_results : (job * (success, string) result) array;
      (** in submission order; [Error] is one job's failure message *)
  rp_wall_s : float;
  rp_domains : int;  (** domains requested *)
  rp_workers : int;
      (** workers actually used: the request clamped to the hardware
          parallelism and the job count ({!Scheduler.effective_workers}) *)
  rp_cache : Cache.stats option;
}

val run_mid_end :
  ?cache:Cache.t ->
  base_config:Roccc_core.Pass.config ->
  config:Roccc_core.Pass.config ->
  ?trace:Trace.t ->
  tid:int ->
  job ->
  Roccc_core.Pass.state * int * int
(** Resume the mid-end pipeline (parse through the kernel passes) from
    the deepest cached per-pass state, storing each newly computed
    state back. Returns the completed mid-end state, the index of the
    first pass that actually ran, and the number of selected passes.
    The process-network planner uses this to share per-kernel mid-end
    work between network and single-kernel compiles. *)

val compile_cached :
  ?cache:Cache.t ->
  ?config:Roccc_core.Pass.config ->
  ?trace:Trace.t ->
  ?tid:int ->
  job ->
  success
(** Compile one job, consulting the cache deepest-first — the finished
    artifact, then one chained fingerprint per mid-end pass (parse through
    feedback-detection) — resuming compilation from the deepest cached
    pipeline state and tracing each pass (reused passes appear with a
    [cached] argument and zero duration). [config] selects passes and
    enables IR verification / differential checks.

    Executions are single-flight per full fingerprint: with a cache,
    concurrent requests for the same key collapse to one execution — the
    followers block on the leader's completion and share its cached
    artifact with origin {!Coalesced} and a zero-duration ["coalesced"]
    trace span ({!Cache.stats} counts [flights] and [coalesced]).
    Raises {!Roccc_core.Driver.Error} on failure. *)

(** An estimate-only evaluation of one job (no VHDL). *)
type measured = {
  m_label : string;
  m_measure : Roccc_core.Driver.measurement;
  m_elapsed_s : float;
  m_origin : origin;
}

val measure_cached :
  ?cache:Cache.t ->
  ?config:Roccc_core.Pass.config ->
  ?trace:Trace.t ->
  ?tid:int ->
  job ->
  measured
(** Like {!compile_cached} but running the estimate-only back end (no
    VHDL generation or linting): the mid-end resumes from the same
    chained per-pass cache entries, so estimate runs and full runs warm
    each other's prefixes. The measurement's slices/clock/latch numbers
    are identical to a full compile's. Raises {!Roccc_core.Driver.Error}. *)

val quick_cached :
  ?cache:Cache.t ->
  ?config:Roccc_core.Pass.config ->
  ?trace:Trace.t ->
  ?tid:int ->
  job ->
  Roccc_core.Driver.quick_measurement
(** Cached mid-end plus the O(instructions) quick costing tier (stops
    before pipelining). Approximate; raises {!Roccc_core.Driver.Error}. *)

val run_batch :
  ?cache:Cache.t ->
  ?config:Roccc_core.Pass.config ->
  ?trace:Trace.t ->
  ?num_domains:int ->
  job list ->
  report
(** Run a batch across up to [num_domains] workers ([<= 0] or omitted:
    {!Scheduler.default_domains}). One kernel's failure does not affect
    the other jobs. *)

val describe_error : exn -> string option
(** User-facing message for the compiler's known exceptions. *)

val table1_jobs : unit -> job list
(** The paper's nine Table 1 kernels, with their per-kernel tuned options. *)

val sweep_jobs :
  ?base:Roccc_core.Driver.options ->
  ?luts:Roccc_hir.Lut_conv.table list ->
  ?target_ns:float list ->
  source:string ->
  entry:string ->
  unroll_factors:int list ->
  bus_widths:int list ->
  unit ->
  job list
(** The design-space grid: one job per (clock target, unroll factor, bus
    width) triple, labelled ["<entry>.u<f>.b<w>"] — with a [".t<ns>"]
    suffix when more than one [target_ns] is swept. An empty [target_ns]
    (the default) sweeps only the base options' clock target. *)

val vhdl_files : Roccc_core.Driver.compiled -> (string * string) list
(** The files a compile produces: the design's VHDL + ROM inits + the
    optional system wrapper. *)

val successes : report -> (job * success) list
val failures : report -> (job * string) list

val summary : report -> string
(** Human-readable per-job lines plus batch totals. *)

val report_json : report -> string
(** Batch summary as a JSON object (wall time, cache stats, per-job rows). *)

val trace_meta : report -> (string * Trace.arg) list
(** Batch-level metadata for {!Trace.to_chrome_json}'s [meta] object. *)
