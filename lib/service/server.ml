(* The resilient compile server behind `roccc serve`.

   Line-delimited JSON requests come in over connections (stdin, or any
   number of simultaneous Unix-socket connections — {!serve_socket} runs
   a concurrent accept loop); one JSON response line goes out per
   request, on the connection that sent it. Each connection gets a
   reader that parses, validates and either answers immediately (health,
   malformed input, load shed) or enqueues the request on ONE shared
   bounded queue that ONE shared pool of worker domains drains; each
   connection's output channel is write-locked so concurrent workers
   never interleave response bytes.

   Resilience properties, each deterministic and testable under
   {!Faults}:
   - bounded admission queue: when full, the request is shed with a
     structured "overloaded" response instead of growing without bound;
   - per-request deadlines: checked when the worker claims the request
     and again at every pass boundary via the pass manager's [cancel]
     hook, answering "deadline_exceeded" instead of hanging;
   - every failure — compile error, injected fault, even an unexpected
     exception — becomes a structured "error" response; the server never
     crashes on a request;
   - fair drain and shutdown: EOF on one connection closes only that
     connection (once its own admitted requests are answered) and never
     stalls the others; a shutdown request or SIGTERM ({!request_stop})
     stops accepting everywhere, then every queued request from every
     connection finishes before the workers join. *)

module Pass = Roccc_core.Pass
module Driver = Roccc_core.Driver

let now = Unix.gettimeofday

(* ------------------------------------------------------------------ *)
(* Limits and flag validation                                          *)
(* ------------------------------------------------------------------ *)

type limits = {
  workers : int;       (* worker domains; 0 = Scheduler.default_domains *)
  queue_depth : int;   (* admission queue bound *)
  deadline_ms : float option;  (* default per-request deadline *)
  max_request_bytes : int;     (* request line length bound *)
}

let default_limits =
  { workers = 0;
    queue_depth = 32;
    deadline_ms = None;
    max_request_bytes = 8 * 1024 * 1024 }

(* Friendly flag validation, shared with the CLI (which turns [Error]
   into an exit-code-2 usage failure instead of a raw exception). *)
let check_positive_int ~(flag : string) (v : int) : (int, string) result =
  if v > 0 then Ok v
  else Error (Printf.sprintf "%s expects a positive integer, got %d" flag v)

(* Worker counts across serve/batch/tune share one convention: 0 means
   auto (the machine's recommended domain count), negatives are usage
   errors. *)
let check_jobs ~(flag : string) (v : int) : (int, string) result =
  if v >= 0 then Ok v
  else
    Error
      (Printf.sprintf "%s expects a positive integer (or 0 for auto), got %d"
         flag v)

let check_positive_float ~(flag : string) (v : float) :
    (float, string) result =
  if Float.is_finite v && v > 0.0 then Ok v
  else Error (Printf.sprintf "%s expects a positive number, got %g" flag v)

(* Sweep/tune axis lists: every value must be positive; repeated values
   are deduplicated (first occurrence wins) so a duplicated sweep point
   is compiled once, not twice. An empty list is a usage error — the grid
   would be empty. *)
let dedupe (xs : 'a list) : 'a list =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc)
       [] xs)

let check_positive_int_list ~(flag : string) (vs : int list) :
    (int list, string) result =
  if vs = [] then Error (Printf.sprintf "%s expects a non-empty list" flag)
  else
    match List.find_opt (fun v -> v <= 0) vs with
    | Some v ->
      Error
        (Printf.sprintf "%s expects positive integers, got %d" flag v)
    | None -> Ok (dedupe vs)

(* Stage budgets admit 0 (= the decomposition's natural depth), unlike
   the strictly positive sweep axes. *)
let check_nonneg_int_list ~(flag : string) (vs : int list) :
    (int list, string) result =
  if vs = [] then Error (Printf.sprintf "%s expects a non-empty list" flag)
  else
    match List.find_opt (fun v -> v < 0) vs with
    | Some v ->
      Error
        (Printf.sprintf "%s expects non-negative integers, got %d" flag v)
    | None -> Ok (dedupe vs)

let check_positive_float_list ~(flag : string) (vs : float list) :
    (float list, string) result =
  if vs = [] then Error (Printf.sprintf "%s expects a non-empty list" flag)
  else
    match List.find_opt (fun v -> not (Float.is_finite v && v > 0.0)) vs with
    | Some v ->
      Error (Printf.sprintf "%s expects positive numbers, got %g" flag v)
    | None -> Ok (dedupe vs)

let validate_limits (l : limits) : (limits, string) result =
  match check_jobs ~flag:"--jobs" l.workers with
  | Error _ as e -> e
  | Ok _ -> (
    match check_positive_int ~flag:"--queue-depth" l.queue_depth with
    | Error _ as e -> e
    | Ok _ -> (
      match
        check_positive_int ~flag:"--max-request-bytes" l.max_request_bytes
      with
      | Error _ as e -> e
      | Ok _ -> (
        match l.deadline_ms with
        | Some ms when not (Float.is_finite ms && ms > 0.0) ->
          Error
            (Printf.sprintf "--deadline-ms expects a positive number, got %g"
               ms)
        | Some _ | None -> Ok l)))

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type kind =
  | Compile of Service.job * float option * bool
      (* job, per-request deadline override (ms), return the VHDL text? *)
  | Health of bool  (* drain first? *)
  | Shutdown

type request = { rq_id : Json.t; rq_kind : kind }

let known_option_keys =
  [ "target_ns"; "bus_elements"; "unroll_inner_max"; "unroll_all_max";
    "unroll_outer_factor"; "fuse_loops"; "infer_widths"; "optimize_vm";
    "check_vhdl"; "lut_convert_max_bits" ]

let options_of_json (j : Json.t) : (Driver.options, string) result =
  match j with
  | Json.Null -> Ok Driver.default_options
  | Json.Obj fields ->
    let rec apply (o : Driver.options) = function
      | [] -> Ok o
      | (key, v) :: rest -> (
        let bad what =
          Error (Printf.sprintf "option %s expects %s" key what)
        in
        let with_int f =
          match Json.to_int_opt v with
          | Some n when n >= 0 -> apply (f n) rest
          | Some _ | None -> bad "a non-negative integer"
        in
        let with_bool f =
          match Json.to_bool_opt v with
          | Some b -> apply (f b) rest
          | None -> bad "a boolean"
        in
        match key with
        | "target_ns" -> (
          match Json.to_float_opt v with
          | Some t when Float.is_finite t && t > 0.0 ->
            apply { o with Driver.target_ns = t } rest
          | Some _ | None -> bad "a positive number")
        | "bus_elements" -> (
          match Json.to_int_opt v with
          | Some n when n >= 1 -> apply { o with Driver.bus_elements = n } rest
          | Some _ | None -> bad "a positive integer")
        | "unroll_inner_max" ->
          with_int (fun n -> { o with Driver.unroll_inner_max = n })
        | "unroll_all_max" ->
          with_int (fun n -> { o with Driver.unroll_all_max = n })
        | "unroll_outer_factor" -> (
          match Json.to_int_opt v with
          | Some n when n >= 1 ->
            apply { o with Driver.unroll_outer_factor = n } rest
          | Some _ | None -> bad "a positive integer")
        | "lut_convert_max_bits" ->
          with_int (fun n -> { o with Driver.lut_convert_max_bits = n })
        | "fuse_loops" -> with_bool (fun b -> { o with Driver.fuse_loops = b })
        | "infer_widths" ->
          with_bool (fun b -> { o with Driver.infer_widths = b })
        | "optimize_vm" ->
          with_bool (fun b -> { o with Driver.optimize_vm = b })
        | "check_vhdl" ->
          with_bool (fun b -> { o with Driver.check_vhdl = b })
        | _ ->
          Error
            (Printf.sprintf "unknown option %S (known: %s)" key
               (String.concat ", " known_option_keys)))
    in
    apply Driver.default_options fields
  | _ -> Error "\"options\" must be an object"

(* Parse one request object. Errors carry the request id (when one could
   be read) so even a rejected request gets a correlatable response. *)
let parse_request ~(label : string) (j : Json.t) :
    (request, Json.t * string) result =
  let id = Option.value (Json.member "id" j) ~default:Json.Null in
  match j with
  | Json.Obj _ -> (
    let typ =
      match Json.member "type" j with
      | None -> Ok "compile"
      | Some t -> (
        match Json.to_string_opt t with
        | Some s -> Ok s
        | None -> Error "\"type\" must be a string")
    in
    match typ with
    | Error msg -> Error (id, msg)
    | Ok "health" ->
      let drain =
        match Json.member "drain" j with
        | Some b -> Option.value (Json.to_bool_opt b) ~default:false
        | None -> false
      in
      Ok { rq_id = id; rq_kind = Health drain }
    | Ok "shutdown" -> Ok { rq_id = id; rq_kind = Shutdown }
    | Ok "compile" -> (
      match
        Option.bind (Json.member "source" j) Json.to_string_opt,
        Option.bind (Json.member "entry" j) Json.to_string_opt
      with
      | None, _ -> Error (id, "missing string field \"source\"")
      | _, None -> Error (id, "missing string field \"entry\"")
      | Some source, Some entry -> (
        match
          options_of_json
            (Option.value (Json.member "options" j) ~default:Json.Null)
        with
        | Error msg -> Error (id, msg)
        | Ok options -> (
          let deadline =
            match Json.member "deadline_ms" j with
            | None -> Ok None
            | Some v -> (
              match Json.to_float_opt v with
              | Some ms when Float.is_finite ms && ms > 0.0 -> Ok (Some ms)
              | Some _ | None ->
                Error "\"deadline_ms\" expects a positive number")
          in
          match deadline with
          | Error msg -> Error (id, msg)
          | Ok deadline ->
            let return_vhdl =
              match Json.member "return_vhdl" j with
              | Some b -> Option.value (Json.to_bool_opt b) ~default:false
              | None -> false
            in
            let label =
              match id with Json.Str s -> s | _ -> label
            in
            Ok
              { rq_id = id;
                rq_kind =
                  Compile
                    ( { Service.label; source; entry; options; luts = [] },
                      deadline, return_vhdl ) })))
    | Ok other -> Error (id, Printf.sprintf "unknown request type %S" other))
  | _ -> Error (id, "request must be a JSON object")

(* ------------------------------------------------------------------ *)
(* The server                                                          *)
(* ------------------------------------------------------------------ *)

(* One client connection: its own output channel (write-locked so
   concurrent workers never interleave bytes) and its own count of
   admitted-but-unanswered requests, so the connection can be closed the
   moment *its* work is done without waiting on anyone else's. *)
type conn = {
  cn_id : int;
  cn_oc : out_channel;
  cn_lock : Mutex.t;
  mutable cn_inflight : int;  (* queued or executing; guarded by t.lock *)
  cn_fd : Unix.file_descr option;
      (* socket connections carry their fd so a stopping server can nudge
         an idle reader out of its blocking read *)
}

type pending = {
  p_id : Json.t;
  p_conn : conn;  (* where the response goes *)
  p_job : Service.job;
  p_deadline : float option;  (* absolute, seconds since the epoch *)
  p_return_vhdl : bool;
  p_enqueued_s : float;
}

type t = {
  limits : limits;  (* workers resolved to >= 1 *)
  configured_workers : int;  (* as requested: 0 = auto *)
  base_config : Pass.config;
  cache : Cache.t option;
  trace : Trace.t option;
  status_path : string option;  (* farm children publish health here *)
  metrics : Metrics.t;
  queue : pending Queue.t;
  lock : Mutex.t;
  work_ready : Condition.t;  (* queue non-empty, or draining *)
  idle : Condition.t;        (* some inflight count reached zero *)
  conns : (int, conn) Hashtbl.t;  (* live connections; guarded by lock *)
  mutable next_conn : int;
  mutable inflight : int;
  mutable draining : bool;
  mutable n_requests : int;  (* admission counter, for request labels *)
  stop_flag : bool Atomic.t; (* SIGTERM / shutdown request *)
}

let create ?cache ?config ?trace ?(limits = default_limits) ?status_path ()
    : t =
  let base =
    match config with Some c -> c | None -> Pass.default_config ()
  in
  (* The driver_pass fault point rides the instrument hook: it fires at
     the same boundary the cancellation hook polls, covering every
     executed pass without the core layer depending on this library. *)
  let base_config =
    { base with
      Pass.instrument =
        Some
          (fun ps ->
            Option.iter (fun f -> f ps) base.Pass.instrument;
            Faults.trip "driver_pass") }
  in
  let workers = Pool.resolve limits.workers in
  { limits = { limits with workers };
    configured_workers = limits.workers;
    base_config;
    cache;
    trace;
    status_path;
    (* one response-count slot per worker tid, plus slot 0 for the
       reader threads' own answers (health, rejects, sheds) *)
    metrics = Metrics.create ~worker_slots:(workers + 1) ();
    queue = Queue.create ();
    lock = Mutex.create ();
    work_ready = Condition.create ();
    idle = Condition.create ();
    conns = Hashtbl.create 8;
    next_conn = 0;
    inflight = 0;
    draining = false;
    n_requests = 0;
    stop_flag = Atomic.make false }

let metrics (srv : t) : Metrics.t = srv.metrics

let request_stop (srv : t) : unit = Atomic.set srv.stop_flag true
let stop_requested (srv : t) : bool = Atomic.get srv.stop_flag

let locked (srv : t) f =
  Mutex.lock srv.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock srv.lock) f

(* One response line per request, under the connection's output lock so
   concurrent workers never interleave bytes. A write failure (the
   client hung up before its answer) is counted and swallowed — a dead
   connection must never take a worker down. *)
let respond (srv : t) (conn : conn) (fields : (string * Json.t) list) : unit =
  let line = Json.to_string (Json.Obj fields) in
  Mutex.lock conn.cn_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.cn_lock)
    (fun () ->
      match
        output_string conn.cn_oc line;
        output_char conn.cn_oc '\n';
        flush conn.cn_oc
      with
      | () -> ()
      | exception Sys_error _ -> Metrics.incr_write_error srv.metrics)

(* Register a new connection (stdin counts as one too). *)
let new_conn ?fd (srv : t) (oc : out_channel) : conn =
  Metrics.incr_conn srv.metrics;
  locked srv (fun () ->
      srv.next_conn <- srv.next_conn + 1;
      let c =
        { cn_id = srv.next_conn;
          cn_oc = oc;
          cn_lock = Mutex.create ();
          cn_inflight = 0;
          cn_fd = fd }
      in
      Hashtbl.replace srv.conns c.cn_id c;
      c)

let forget_conn (srv : t) (conn : conn) : unit =
  locked srv (fun () -> Hashtbl.remove srv.conns conn.cn_id)

(* EOF on one connection must not stall the others: its closer waits
   only for the requests *this* connection admitted. *)
let wait_conn_idle (srv : t) (conn : conn) : unit =
  locked srv (fun () ->
      while conn.cn_inflight > 0 do
        Condition.wait srv.idle srv.lock
      done)

let queue_depth_sample (srv : t) : unit =
  Option.iter
    (fun tr ->
      let d = locked srv (fun () -> Queue.length srv.queue) in
      Trace.add_counter tr ~name:"queue_depth" ~value:(float_of_int d) ();
      (* one counter track per cache shard, so the viewer shows how the
         striped load spreads (and where it piles up) over time *)
      Option.iter
        (fun c ->
          Array.iteri
            (fun i (ss : Cache.shard_stats) ->
              Trace.add_counter tr
                ~name:(Printf.sprintf "cache_shard%d_lookups" i)
                ~value:
                  (float_of_int (ss.Cache.shard_hits + ss.Cache.shard_misses))
                ())
            (Cache.shard_stats c))
        srv.cache)
    srv.trace

(* ------------------------------------------------------------------ *)
(* Health                                                              *)
(* ------------------------------------------------------------------ *)

let health_json (srv : t) : Json.t =
  let s = Metrics.snapshot srv.metrics in
  let depth = locked srv (fun () -> Queue.length srv.queue) in
  let cache_json =
    match srv.cache with
    | None -> Json.Null
    | Some c ->
      let st = Cache.stats c in
      let looked_up = st.Cache.hits + st.Cache.disk_hits + st.Cache.misses in
      Json.Obj
        [ "hits", Json.int st.Cache.hits;
          "disk_hits", Json.int st.Cache.disk_hits;
          "misses", Json.int st.Cache.misses;
          "stores", Json.int st.Cache.stores;
          "retries", Json.int st.Cache.retries;
          "io_errors", Json.int st.Cache.io_errors;
          "tmp_swept", Json.int st.Cache.tmp_swept;
          "contended", Json.int st.Cache.contended;
          "flights", Json.int st.Cache.flights;
          "coalesced", Json.int st.Cache.coalesced;
          ( "hit_rate",
            if looked_up = 0 then Json.Null
            else
              Json.Num
                (float_of_int (st.Cache.hits + st.Cache.disk_hits)
                /. float_of_int looked_up) );
          "shard_count", Json.int st.Cache.shards;
          ( "shards",
            Json.Arr
              (Array.to_list
                 (Array.map
                    (fun (ss : Cache.shard_stats) ->
                      Json.Obj
                        [ "hits", Json.int ss.Cache.shard_hits;
                          "misses", Json.int ss.Cache.shard_misses;
                          "stores", Json.int ss.Cache.shard_stores;
                          "contended", Json.int ss.Cache.shard_contended;
                          "entries", Json.int ss.Cache.shard_entries ])
                    (Cache.shard_stats c))) ) ]
  in
  let faults_json =
    match Faults.counts () with
    | [] -> Json.Null
    | cs ->
      Json.Obj
        (List.map
           (fun (point, calls, fired) ->
             ( point,
               Json.Obj
                 [ "calls", Json.int calls; "fired", Json.int fired ] ))
           cs)
  in
  Json.Obj
    [ "uptime_s", Json.Num s.Metrics.s_uptime_s;
      ( "workers",
        Json.Obj
          [ "configured", Json.int srv.configured_workers;
            "effective", Json.int srv.limits.workers;
            ( "requests",
              (* responses completed per worker tid; slot 0 is the
                 admission thread (health, rejects, sheds) *)
              Json.Arr
                (Array.to_list
                   (Array.map Json.int s.Metrics.s_by_worker)) ) ] );
      "pid", Json.int (Unix.getpid ());
      ( "connections",
        Json.Obj
          [ "accepted", Json.int s.Metrics.s_conns;
            ( "active",
              Json.int (locked srv (fun () -> Hashtbl.length srv.conns)) );
            "read_errors", Json.int s.Metrics.s_read_errors;
            "write_errors", Json.int s.Metrics.s_write_errors ] );
      ( "queue",
        Json.Obj
          [ "depth", Json.int depth;
            "capacity", Json.int srv.limits.queue_depth ] );
      ( "requests",
        Json.Obj
          [ "received", Json.int s.Metrics.s_received;
            "ok", Json.int s.Metrics.s_ok;
            "failed", Json.int s.Metrics.s_failed;
            "shed", Json.int s.Metrics.s_shed;
            "deadline_exceeded", Json.int s.Metrics.s_deadline;
            "bad_request", Json.int s.Metrics.s_bad_request;
            "health", Json.int s.Metrics.s_health ] );
      ( "latency_ms",
        Json.Obj
          [ "count", Json.int s.Metrics.s_latency_count;
            "p50", Json.Num s.Metrics.s_p50_ms;
            "p95", Json.Num s.Metrics.s_p95_ms;
            "max", Json.Num s.Metrics.s_max_ms ] );
      "cache", cache_json;
      "faults", faults_json ]

let wait_idle (srv : t) : unit =
  locked srv (fun () ->
      while not (Queue.is_empty srv.queue && srv.inflight = 0) do
        Condition.wait srv.idle srv.lock
      done)

(* Publish the health snapshot to the status file (atomically, via the
   pid-suffixed tmp + rename dance the disk cache uses) so a farm
   supervisor can aggregate across children it cannot query directly.
   Written after each drain and each health request. *)
let write_status (srv : t) : unit =
  Option.iter
    (fun path ->
      let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
      match open_out tmp with
      | exception Sys_error _ -> ()
      | oc ->
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc (Json.to_string (health_json srv));
            output_char oc '\n');
        (try Sys.rename tmp path with Sys_error _ -> ()))
    srv.status_path

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

let handle (srv : t) (tid : int) (p : pending) : unit =
  let t0 = now () in
  let finish fields =
    let ms = (now () -. p.p_enqueued_s) *. 1e3 in
    Metrics.observe_ms srv.metrics ms;
    Metrics.incr_worker srv.metrics ~tid;
    respond srv p.p_conn
      (("id", p.p_id) :: fields @ [ "elapsed_ms", Json.Num ms ]);
    Option.iter
      (fun tr ->
        let status =
          match List.assoc_opt "status" fields with
          | Some (Json.Str s) -> s
          | _ -> "?"
        in
        Trace.add_span tr ~cat:"request" ~tid ~name:p.p_job.Service.label
          ~start_s:t0 ~dur_s:(now () -. t0)
          ~args:[ "status", Trace.Str status ] ())
      srv.trace
  in
  let past_deadline () =
    match p.p_deadline with
    | Some d when now () > d ->
      Some
        (Printf.sprintf "deadline exceeded after %.1f ms"
           ((now () -. p.p_enqueued_s) *. 1e3))
    | Some _ | None -> None
  in
  match
    Faults.trip "scheduler_claim";
    (* a request that already waited out its deadline in the queue is
       answered without compiling at all *)
    (match past_deadline () with
    | Some reason -> raise (Pass.Cancelled reason)
    | None -> ());
    let config =
      match p.p_deadline with
      | None -> srv.base_config
      | Some _ ->
        { srv.base_config with Pass.cancel = Some past_deadline }
    in
    Service.compile_cached ?cache:srv.cache ~config ?trace:srv.trace ~tid
      p.p_job
  with
  | s ->
    Metrics.incr_ok srv.metrics;
    let vhdl_bytes =
      List.fold_left
        (fun n (_, text) -> n + String.length text)
        0 s.Service.r_vhdl
    in
    finish
      ([ "status", Json.Str "ok";
         "entry", Json.Str s.Service.r_entry;
         "origin", Json.Str (Service.origin_name s.Service.r_origin);
         "slices", Json.int s.Service.r_slices;
         "clock_mhz", Json.Num s.Service.r_clock_mhz;
         "latency", Json.int s.Service.r_latency;
         "latch_bits", Json.int s.Service.r_latch_bits;
         "vhdl_bytes", Json.int vhdl_bytes ]
      @
      if p.p_return_vhdl then
        [ ( "vhdl",
            Json.Obj
              (List.map (fun (f, text) -> f, Json.Str text) s.Service.r_vhdl)
          ) ]
      else [])
  | exception Pass.Cancelled reason ->
    Metrics.incr_deadline srv.metrics;
    finish
      [ "status", Json.Str "deadline_exceeded"; "message", Json.Str reason ]
  | exception e ->
    Metrics.incr_failed srv.metrics;
    let kind, msg =
      match e with
      | Faults.Injected point -> "injected_fault", "injected fault at " ^ point
      | _ -> (
        match Service.describe_error e with
        | Some m -> "compile", m
        | None -> "internal", Printexc.to_string e)
    in
    finish
      [ "status", Json.Str "error";
        "kind", Json.Str kind;
        "message", Json.Str msg ]

let rec worker (srv : t) (tid : int) : unit =
  let next =
    locked srv (fun () ->
        let rec await () =
          if not (Queue.is_empty srv.queue) then begin
            let p = Queue.pop srv.queue in
            srv.inflight <- srv.inflight + 1;
            Some p
          end
          else if srv.draining then None
          else begin
            Condition.wait srv.work_ready srv.lock;
            await ()
          end
        in
        await ())
  in
  match next with
  | None -> ()
  | Some p ->
    queue_depth_sample srv;
    handle srv tid p;
    locked srv (fun () ->
        srv.inflight <- srv.inflight - 1;
        p.p_conn.cn_inflight <- p.p_conn.cn_inflight - 1;
        (* wake both the global drain (wait_idle) and any per-connection
           closer (wait_conn_idle) — either count may just have hit 0 *)
        Condition.broadcast srv.idle);
    worker srv tid

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

let bad_request (srv : t) (conn : conn) (id : Json.t) (msg : string) : unit =
  Metrics.incr_bad_request srv.metrics;
  Metrics.incr_worker srv.metrics ~tid:0;
  respond srv conn
    [ "id", id;
      "status", Json.Str "error";
      "kind", Json.Str "bad_request";
      "message", Json.Str msg ]

(* Handle one request line from one connection; [false] means a shutdown
   request asked the reader to stop. *)
let admit (srv : t) (conn : conn) (line : string) : bool =
  Metrics.incr_received srv.metrics;
  let n = locked srv (fun () -> srv.n_requests <- srv.n_requests + 1; srv.n_requests) in
  if String.length line > srv.limits.max_request_bytes then begin
    bad_request srv conn Json.Null
      (Printf.sprintf "request of %d bytes exceeds the %d-byte limit"
         (String.length line) srv.limits.max_request_bytes);
    true
  end
  else
    match Json.parse line with
    | Error msg ->
      bad_request srv conn Json.Null ("malformed JSON: " ^ msg);
      true
    | Ok j -> (
      match parse_request ~label:(Printf.sprintf "req-%d" n) j with
      | Error (id, msg) ->
        bad_request srv conn id msg;
        true
      | Ok { rq_id; rq_kind = Health drain } ->
        if drain then wait_idle srv;
        Metrics.incr_health srv.metrics;
        Metrics.incr_worker srv.metrics ~tid:0;
        respond srv conn
          [ "id", rq_id;
            "status", Json.Str "ok";
            "health", health_json srv ];
        write_status srv;
        true
      | Ok { rq_id; rq_kind = Shutdown } ->
        Metrics.incr_health srv.metrics;
        Metrics.incr_worker srv.metrics ~tid:0;
        respond srv conn
          [ "id", rq_id;
            "status", Json.Str "ok";
            "shutting_down", Json.Bool true ];
        request_stop srv;
        false
      | Ok { rq_id; rq_kind = Compile (job, deadline_ms, return_vhdl) } ->
        let deadline_ms =
          match deadline_ms with
          | Some _ as d -> d
          | None -> srv.limits.deadline_ms
        in
        let p =
          { p_id = rq_id;
            p_conn = conn;
            p_job = job;
            p_deadline =
              Option.map (fun ms -> now () +. (ms /. 1e3)) deadline_ms;
            p_return_vhdl = return_vhdl;
            p_enqueued_s = now () }
        in
        let accepted =
          locked srv (fun () ->
              if Queue.length srv.queue >= srv.limits.queue_depth then false
              else begin
                Queue.push p srv.queue;
                conn.cn_inflight <- conn.cn_inflight + 1;
                Condition.signal srv.work_ready;
                true
              end)
        in
        queue_depth_sample srv;
        if not accepted then begin
          Metrics.incr_shed srv.metrics;
          Metrics.incr_worker srv.metrics ~tid:0;
          respond srv conn
            [ "id", rq_id;
              "status", Json.Str "overloaded";
              "message",
              Json.Str
                (Printf.sprintf "admission queue full (depth %d)"
                   srv.limits.queue_depth) ]
        end;
        true)

(* ------------------------------------------------------------------ *)
(* The serve loop                                                      *)
(* ------------------------------------------------------------------ *)

(* One connection's read loop: admit lines until EOF, a shutdown
   request, or {!request_stop}. A read that fails for any other reason
   (the peer vanished, the fd was yanked) is COUNTED and logged — not
   silently swallowed — unless it is the stop nudge we sent ourselves. *)
let read_conn (srv : t) (conn : conn) (ic : in_channel) : unit =
  let rec read_loop () =
    if stop_requested srv then ()
    else
      match input_line ic with
      | exception End_of_file -> ()
      | exception Sys_error msg ->
        if not (stop_requested srv) then begin
          Metrics.incr_read_error srv.metrics;
          Printf.eprintf "roccc serve: read error on connection %d: %s\n%!"
            conn.cn_id msg
        end
      | line ->
        if String.equal (String.trim line) "" then read_loop ()
        else if admit srv conn line then read_loop ()
  in
  read_loop ()

(** Serve one request stream (e.g. stdin/stdout): spawn the worker pool,
    admit requests until EOF / shutdown / {!request_stop}, then drain —
    queued requests finish, workers join — and return the final metrics
    snapshot. The server value may serve several streams in sequence;
    metrics and cache persist across them. *)
let serve (srv : t) (ic : in_channel) (oc : out_channel) : Metrics.snapshot =
  locked srv (fun () -> srv.draining <- false);
  let pool = Pool.spawn ~workers:srv.limits.workers (fun ~tid -> worker srv tid) in
  let conn = new_conn srv oc in
  read_conn srv conn ic;
  locked srv (fun () ->
      srv.draining <- true;
      Condition.broadcast srv.work_ready);
  Pool.join pool;
  forget_conn srv conn;
  write_status srv;
  Metrics.snapshot srv.metrics

(* ------------------------------------------------------------------ *)
(* The concurrent socket accept loop                                   *)
(* ------------------------------------------------------------------ *)

(* Kick every idle connection reader out of its blocking [input_line] by
   half-closing the socket's read side. Runs under [srv.lock]: a fd is
   only closed after {!forget_conn} (which needs the same lock), so a
   registered fd can never be concurrently closed under our feet. *)
let nudge_all (srv : t) : unit =
  locked srv (fun () ->
      Hashtbl.iter
        (fun _ c ->
          Option.iter
            (fun fd ->
              try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
              with Unix.Unix_error _ -> ())
            c.cn_fd)
        srv.conns)

(* One socket connection, run on its own reader domain: register, read
   until EOF/shutdown, wait for THIS connection's admitted requests to be
   answered, then unregister and close. Closing never stalls on other
   connections' work. *)
let serve_conn (srv : t) (fd : Unix.file_descr) : unit =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let conn = new_conn ~fd srv oc in
  Option.iter
    (fun tr ->
      Trace.add_instant tr ~name:"conn_open"
        ~args:[ "conn", Trace.Int conn.cn_id ] ())
    srv.trace;
  read_conn srv conn ic;
  wait_conn_idle srv conn;
  forget_conn srv conn;
  Option.iter
    (fun tr ->
      Trace.add_instant tr ~name:"conn_close"
        ~args:[ "conn", Trace.Int conn.cn_id ] ())
    srv.trace;
  (try flush oc with Sys_error _ -> Metrics.incr_write_error srv.metrics);
  (try Unix.close fd with Unix.Unix_error _ -> ())

(** Serve a listening Unix-domain (or TCP) socket concurrently: ONE
    shared worker pool drains ONE shared admission queue fed by a reader
    domain per accepted connection. EOF on one connection closes only
    that connection; a shutdown request or {!request_stop} stops
    accepting, nudges idle readers, and drains every queued request from
    every connection before the workers join. Returns the final metrics
    snapshot. *)
let serve_socket ?(poll_interval_s = 0.05) (srv : t)
    (sock : Unix.file_descr) : Metrics.snapshot =
  locked srv (fun () -> srv.draining <- false);
  let pool = Pool.spawn ~workers:srv.limits.workers (fun ~tid -> worker srv tid) in
  let readers = Pool.dynamic () in
  let rec accept_loop () =
    if stop_requested srv then ()
    else
      (* select with a short timeout so a stop request (signal or
         shutdown verb on any connection) is noticed promptly even when
         no client is connecting *)
      match Unix.select [ sock ] [] [] poll_interval_s with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | [], _, _ -> accept_loop ()
      | _ :: _, _, _ ->
        (match Unix.accept sock with
        | exception Unix.Unix_error _ -> ()
        | fd, _ -> Pool.add readers (fun () -> serve_conn srv fd));
        accept_loop ()
  in
  accept_loop ();
  (* stop order matters: wake blocked readers first (their connections'
     queued work is still honoured), join them, THEN drain the workers *)
  nudge_all srv;
  Pool.join_all readers;
  locked srv (fun () ->
      srv.draining <- true;
      Condition.broadcast srv.work_ready);
  Pool.join pool;
  write_status srv;
  Metrics.snapshot srv.metrics
