(** Serve metrics: monotonic request counters plus a bounded ring of
    response latencies. Thread-safe; shared by the admission thread and
    the worker domains. *)

type t

val create : ?worker_slots:int -> unit -> t
(** [worker_slots] sizes the per-worker response counter array: one slot
    per worker tid, slot 0 for the admission thread (so a server with N
    workers passes [N + 1]). Defaults to 0 (no per-worker tracking). *)

val incr_received : t -> unit
(** Every request line read (compile, health, malformed, oversized). *)

val incr_ok : t -> unit
val incr_failed : t -> unit
val incr_shed : t -> unit
val incr_deadline : t -> unit
val incr_bad_request : t -> unit
val incr_health : t -> unit

val incr_conn : t -> unit
(** One accepted socket connection. *)

val incr_read_error : t -> unit
(** One failed request-stream read (a [Sys_error] that was not a
    requested stop). *)

val incr_write_error : t -> unit
(** One response dropped because its connection's output channel failed
    (e.g. the client disconnected before the answer was written). *)

val observe_ms : t -> float -> unit
(** Record one request's enqueue-to-response latency, in milliseconds. *)

val incr_worker : t -> tid:int -> unit
(** Count one response against worker slot [tid] (atomic, lock-free; a
    no-op for tids outside the slot array). *)

val worker_counts : t -> int array
(** Current per-worker response counts, indexed by tid. *)

type snapshot = {
  s_uptime_s : float;
  s_received : int;
  s_ok : int;
  s_failed : int;
  s_shed : int;
  s_deadline : int;
  s_bad_request : int;
  s_health : int;
  s_conns : int;  (** connections accepted (socket mode) *)
  s_read_errors : int;  (** failed request-stream reads *)
  s_write_errors : int;  (** responses lost to dead connections *)
  s_latency_count : int;
      (** samples ever observed (the ring keeps the most recent 4096) *)
  s_p50_ms : float;
  s_p95_ms : float;
  s_max_ms : float;
  s_by_worker : int array;
      (** responses per worker tid (slot 0 = the admission thread) *)
}

val snapshot : t -> snapshot
(** Consistent copy of all counters plus nearest-rank latency
    percentiles over the retained samples. *)
