(* The multi-process compile farm behind `roccc farm`.

   A supervisor forks N child processes that each run the SAME [child]
   closure — for the compile farm, a {!Server.serve_socket} loop over a
   listening socket bound BEFORE the fork, so every child accepts on the
   inherited fd and the kernel load-balances connections across them.
   The children share one disk cache tier; the in-memory tiers and
   single-flight registries are per-process (the disk tier deduplicates
   across processes at artifact granularity).

   Supervision policy:
   - a child that dies abnormally (signal, nonzero exit) is restarted,
     up to [max_restarts] per farm lifetime;
   - a child that exits cleanly (code 0 — it served a "shutdown"
     request and drained) triggers a farm-wide shutdown: the supervisor
     SIGTERMs the remaining children and waits for them to drain;
   - SIGTERM / SIGINT at the supervisor likewise shuts the farm down.

   Observability: each child publishes its health snapshot to
   [state_dir/child-<index>.json] (the server's [status_path]); the
   supervisor maintains [state_dir/farm.json] with the live pid table,
   and {!aggregate_health} folds the children's snapshots into one
   farm-wide view by summing every numeric leaf. *)

type child_slot = {
  cs_index : int;
  mutable cs_pid : int;
  mutable cs_restarts : int;
}

type outcome = {
  farm_spawns : int;  (* total forks, initial procs + restarts *)
  farm_restarts : int;
  farm_clean : bool;  (* shutdown came from a clean child exit *)
}

let status_file (state_dir : string) (index : int) : string =
  Filename.concat state_dir (Printf.sprintf "child-%d.json" index)

let farm_file (state_dir : string) : string =
  Filename.concat state_dir "farm.json"

(* Atomic single-file publish, same tmp+rename dance as the disk cache. *)
let write_file_atomic (path : string) (contents : string) : unit =
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  match open_out tmp with
  | exception Sys_error _ -> ()
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc contents);
    (try Sys.rename tmp path with Sys_error _ -> ())

let write_farm_state (state_dir : string) (slots : child_slot array) : unit =
  let j =
    Json.Obj
      [ "supervisor_pid", Json.int (Unix.getpid ());
        "procs", Json.int (Array.length slots);
        ( "children",
          Json.Arr
            (Array.to_list
               (Array.map
                  (fun s ->
                    Json.Obj
                      [ "index", Json.int s.cs_index;
                        "pid", Json.int s.cs_pid;
                        "restarts", Json.int s.cs_restarts ])
                  slots)) ) ]
  in
  write_file_atomic (farm_file state_dir) (Json.to_string j ^ "\n")

(* ------------------------------------------------------------------ *)
(* Health aggregation                                                  *)
(* ------------------------------------------------------------------ *)

(* Fold two health snapshots: numbers add, objects merge key-wise,
   equal-length arrays merge element-wise (the per-worker and per-shard
   count vectors), anything else keeps the first child's value. *)
let rec merge_json (a : Json.t) (b : Json.t) : Json.t =
  match a, b with
  | Json.Num x, Json.Num y -> Json.Num (x +. y)
  | Json.Obj xs, Json.Obj ys ->
    let keys =
      List.map fst xs
      @ List.filter
          (fun k -> not (List.mem_assoc k xs))
          (List.map fst ys)
    in
    Json.Obj
      (List.map
         (fun k ->
           match List.assoc_opt k xs, List.assoc_opt k ys with
           | Some va, Some vb -> k, merge_json va vb
           | Some v, None | None, Some v -> k, v
           | None, None -> k, Json.Null)
         keys)
  | Json.Arr xs, Json.Arr ys when List.length xs = List.length ys ->
    Json.Arr (List.map2 merge_json xs ys)
  | Json.Null, b -> b
  | a, _ -> a

let read_status (path : string) : Json.t option =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> None
        | exception Sys_error _ -> None
        | line -> ( match Json.parse line with Ok j -> Some j | Error _ -> None))

let aggregate_health ~(state_dir : string) : Json.t =
  let children = ref [] in
  (match Sys.readdir state_dir with
  | exception Sys_error _ -> ()
  | names ->
    Array.iter
      (fun name ->
        if
          String.length name > String.length "child-"
          && String.sub name 0 6 = "child-"
          && Filename.check_suffix name ".json"
        then
          Option.iter
            (fun j -> children := (name, j) :: !children)
            (read_status (Filename.concat state_dir name)))
      names);
  let children = List.sort compare !children in
  let aggregate =
    match children with
    | [] -> Json.Null
    | (_, first) :: rest ->
      List.fold_left (fun acc (_, j) -> merge_json acc j) first rest
  in
  Json.Obj
    [ "children_reporting", Json.int (List.length children);
      "aggregate", aggregate;
      ( "children",
        Json.Obj (List.map (fun (name, j) -> name, j) children) ) ]

(* ------------------------------------------------------------------ *)
(* The supervisor                                                      *)
(* ------------------------------------------------------------------ *)

let mkdir_p (dir : string) : unit =
  let rec mk d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      mk (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  mk dir

let spawn_child (child : index:int -> unit) (index : int) : int =
  match Unix.fork () with
  | 0 ->
    (* the child must NEVER return into the supervisor's code: run the
       closure, flush, and _exit (no at_exit handlers, no buffers shared
       with the parent flushed twice) *)
    let code =
      match child ~index with
      | () -> 0
      | exception e ->
        Printf.eprintf "roccc farm: child %d died: %s\n%!" index
          (Printexc.to_string e);
        1
    in
    (try flush stdout with Sys_error _ -> ());
    (try flush stderr with Sys_error _ -> ());
    Unix._exit code
  | pid -> pid

let run ?(poll_interval_s = 0.05) ?(max_restarts = 16) ~(procs : int)
    ~(state_dir : string) ~(child : index:int -> unit) () : outcome =
  if procs < 1 then invalid_arg "Farm.run: procs must be >= 1";
  mkdir_p state_dir;
  let stop = Atomic.make false in
  let prev_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set stop true))
  in
  let prev_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> Atomic.set stop true))
  in
  let slots =
    Array.init procs (fun i ->
        { cs_index = i; cs_pid = spawn_child child i; cs_restarts = 0 })
  in
  write_farm_state state_dir slots;
  let spawns = ref procs in
  let restarts = ref 0 in
  let clean = ref false in
  let find_slot pid =
    Array.fold_left
      (fun acc s -> if s.cs_pid = pid then Some s else acc)
      None slots
  in
  let live () =
    Array.exists (fun s -> s.cs_pid <> 0) slots
  in
  (* Main loop: reap children; restart abnormal deaths, treat a clean
     exit as a farm-wide shutdown request. *)
  let rec supervise () =
    if Atomic.get stop then ()
    else
      match Unix.waitpid [ Unix.WNOHANG ] (-1) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> supervise ()
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
      | 0, _ ->
        Unix.sleepf poll_interval_s;
        supervise ()
      | pid, status -> (
        match find_slot pid with
        | None -> supervise ()
        | Some slot -> (
          match status with
          | Unix.WEXITED 0 ->
            (* a child drained and exited after a shutdown request:
               bring the whole farm down *)
            slot.cs_pid <- 0;
            clean := true;
            Atomic.set stop true
          | Unix.WEXITED _ | Unix.WSIGNALED _ | Unix.WSTOPPED _ ->
            if !restarts >= max_restarts then begin
              Printf.eprintf
                "roccc farm: child %d died again; restart budget (%d) \
                 exhausted, shutting the farm down\n%!"
                slot.cs_index max_restarts;
              slot.cs_pid <- 0;
              Atomic.set stop true
            end
            else begin
              incr restarts;
              incr spawns;
              slot.cs_restarts <- slot.cs_restarts + 1;
              slot.cs_pid <- spawn_child child slot.cs_index;
              Printf.eprintf
                "roccc farm: restarted child %d (pid %d, restart %d)\n%!"
                slot.cs_index slot.cs_pid slot.cs_restarts;
              write_farm_state state_dir slots;
              supervise ()
            end))
  in
  supervise ();
  (* Shutdown: SIGTERM the survivors (their serve loops drain admitted
     work before exiting), then reap them all. *)
  Array.iter
    (fun s ->
      if s.cs_pid <> 0 then
        try Unix.kill s.cs_pid Sys.sigterm with Unix.Unix_error _ -> ())
    slots;
  let rec reap () =
    if live () then
      match Unix.waitpid [] (-1) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
      | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
        Array.iter (fun s -> s.cs_pid <- 0) slots
      | pid, _ ->
        (match find_slot pid with Some s -> s.cs_pid <- 0 | None -> ());
        reap ()
  in
  reap ();
  write_farm_state state_dir slots;
  Sys.set_signal Sys.sigterm prev_term;
  Sys.set_signal Sys.sigint prev_int;
  { farm_spawns = !spawns; farm_restarts = !restarts; farm_clean = !clean }
