(** Parallel job scheduler over OCaml 5 domains (fanning out through the
    shared {!Pool} abstraction): deterministic result ordering, per-job
    fault isolation, chunked job claiming, and worker counts clamped to
    the hardware parallelism so requesting more domains than cores never
    slows a batch down. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count], floored at 1. *)

val effective_workers : ?clamp:bool -> ?num_domains:int -> int -> int
(** [effective_workers ~num_domains n] is the worker count
    {!parallel_map} would actually use for [n] jobs: the requested count
    ([<= 0] means {!default_domains}), clamped to the hardware
    parallelism (unless [clamp] is [false]) and to the job count, floored
    at 1. Two requests with the same effective worker count run the same
    configuration. *)

val parallel_map :
  ?clamp:bool ->
  ?num_domains:int ->
  ?chunk:int ->
  ?describe_error:(exn -> string option) ->
  f:(tid:int -> 'a -> 'b) ->
  'a array ->
  ('b, string) result array
(** [parallel_map ~f jobs] fans [jobs] across {!effective_workers} workers
    (the calling domain participates as worker 0, so one worker is plain
    sequential execution and spawns nothing). Workers claim contiguous
    chunks of [chunk] jobs (default [n / (workers * 8)], floored at 1)
    from a shared atomic counter, and every result lands in its own
    separately-allocated slot, avoiding false sharing between workers.
    [f] receives the worker slot as [tid].

    Result [i] always corresponds to job [i]. A job that raises yields
    [Error msg] in its slot — [describe_error] may translate known
    exceptions into clean messages (return [None] to fall back to
    [Printexc.to_string]) — and the remaining jobs still run.

    [clamp:false] allows more workers than cores (useful only when jobs
    block outside the runtime). *)
