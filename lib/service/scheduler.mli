(** Parallel job scheduler over OCaml 5 domains: deterministic result
    ordering, per-job fault isolation. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count], floored at 1. *)

val parallel_map :
  ?num_domains:int ->
  ?describe_error:(exn -> string option) ->
  f:(tid:int -> 'a -> 'b) ->
  'a array ->
  ('b, string) result array
(** [parallel_map ~f jobs] fans [jobs] across up to [num_domains] workers
    (default {!default_domains}; [<= 0] means the default; the calling
    domain participates as worker 0, so [num_domains = 1] is plain
    sequential execution). [f] receives the worker slot as [tid].

    Result [i] always corresponds to job [i]. A job that raises yields
    [Error msg] in its slot — [describe_error] may translate known
    exceptions into clean messages (return [None] to fall back to
    [Printexc.to_string]) — and the remaining jobs still run. *)
