(* The content-addressed pass cache.

   In memory it maps fingerprints to intermediate pipeline states — one per
   executed mid-end pass, keyed by the chained per-pass fingerprints — and
   to finished artifacts (VHDL + estimates). On disk (optional, under
   _roccc_cache/) only artifacts are persisted: they are plain strings and
   numbers, so a marshalled artifact is safe to reload in any later
   process, whereas the in-memory IR values are not worth the versioning
   hazard.

   All operations are thread-safe; the cache is shared by the scheduler's
   worker domains. *)

module Pass = Roccc_core.Pass

type artifact = {
  art_entry : string;
  art_vhdl : (string * string) list;
      (* filename -> contents: the design's files plus the optional system
         wrapper, exactly what a batch compile writes out *)
  art_slices : int;
  art_operator_slices : int;
  art_clock_mhz : float;
  art_latency : int;
  art_latch_bits : int;
  art_pass_trace : string list;
}

type value =
  | State of Pass.state
      (* mid-end pipeline state (immutable IR only) after one pass *)
  | Artifact of artifact

type stats = {
  hits : int;       (* in-memory fingerprint hits *)
  disk_hits : int;  (* artifact loaded from _roccc_cache/ *)
  misses : int;
  stores : int;
  retries : int;    (* disk I/O attempts retried after a transient error *)
  io_errors : int;  (* disk operations degraded after exhausting retries *)
  tmp_swept : int;  (* stale *.art.tmp.<pid> files removed at open *)
}

type t = {
  mem : (string, value) Hashtbl.t;
  lock : Mutex.t;
  disk_dir : string option;
  mutable hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable retries : int;
  mutable io_errors : int;
  tmp_swept : int;
}

(* Bump when the artifact record changes shape: a stale marshalled value
   from an older build must be ignored, not mis-read. *)
let disk_magic = "ROCCC-ART2"

(* [save_artifact] writes <key>.art.tmp.<pid> then renames; a process
   that dies between the two strands the tmp file forever (the pid in the
   name means no later process ever reuses it). Sweep the debris when the
   cache opens — anything still matching the tmp shape at open time
   cannot belong to a live write of this process. *)
let is_tmp_name (name : string) : bool =
  let marker = ".art.tmp." in
  let n = String.length name and m = String.length marker in
  let rec scan i =
    i + m <= n && (String.equal (String.sub name i m) marker || scan (i + 1))
  in
  scan 0

let sweep_stale_tmp (dir : string) : int =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | files ->
    Array.fold_left
      (fun n f ->
        if is_tmp_name f then
          match Sys.remove (Filename.concat dir f) with
          | () -> n + 1
          | exception Sys_error _ -> n
        else n)
      0 files

let create ?disk_dir () =
  (match disk_dir with
  | Some dir when not (Sys.file_exists dir) -> (
    try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  | _ -> ());
  let tmp_swept =
    match disk_dir with Some dir -> sweep_stale_tmp dir | None -> 0
  in
  { mem = Hashtbl.create 64;
    lock = Mutex.create ();
    disk_dir;
    hits = 0;
    disk_hits = 0;
    misses = 0;
    stores = 0;
    retries = 0;
    io_errors = 0;
    tmp_swept }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Transient disk I/O — including faults injected at the cache_read /
   cache_write points — is retried a few times with jittered exponential
   backoff before the operation degrades (a failed read becomes a miss, a
   failed write is dropped); the cache never takes a request down. The
   jitter is a deterministic rotation, not randomness, so fault-injection
   runs stay reproducible. *)
let io_attempts = 3
let backoff_base_s = 0.0005
let jitter_phase = Atomic.make 0

let with_io_retries (t : t) (f : unit -> 'a) : ('a, exn) result =
  let rec go attempt =
    match f () with
    | v -> Ok v
    | exception ((Sys_error _ | Faults.Injected _) as e) ->
      if attempt + 1 >= io_attempts then Error e
      else begin
        locked t (fun () -> t.retries <- t.retries + 1);
        let k = Atomic.fetch_and_add jitter_phase 1 in
        let jitter = float_of_int (k land 7) /. 8.0 in
        Unix.sleepf
          (backoff_base_s *. float_of_int (1 lsl attempt) *. (1.0 +. jitter));
        go (attempt + 1)
      end
  in
  go 0

let count_io_error t = locked t (fun () -> t.io_errors <- t.io_errors + 1)

let disk_path t key =
  Option.map
    (fun dir -> Filename.concat dir (Fingerprint.to_hex key ^ ".art"))
    t.disk_dir

let load_artifact path : artifact option =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (String.length disk_magic) with
        | magic when String.equal magic disk_magic -> (
          match (Marshal.from_channel ic : artifact) with
          | a -> Some a
          | exception _ -> None)
        | _ -> None
        | exception End_of_file -> None)

let save_artifact t path (a : artifact) =
  (* Write-then-rename so a concurrent reader never sees a torn file. *)
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  let write () =
    Faults.trip "cache_write";
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc disk_magic;
        Marshal.to_channel oc a []);
    Sys.rename tmp path
  in
  match with_io_retries t write with
  | Ok () -> ()
  | Error _ ->
    (* degrade: drop the disk copy, keep serving from memory *)
    count_io_error t;
    (try Sys.remove tmp with Sys_error _ -> ())

type origin = Memory | Disk

let find_raw (t : t) (key : Fingerprint.t) : (value * origin) option =
  let mem_hit =
    locked t (fun () ->
        match Hashtbl.find_opt t.mem (Fingerprint.to_hex key) with
        | Some v ->
          t.hits <- t.hits + 1;
          Some (v, Memory)
        | None -> None)
  in
  match mem_hit with
  | Some _ as v -> v
  | None -> (
    match disk_path t key with
    | Some path when Sys.file_exists path -> (
      match load_artifact path with
      | Some a ->
        locked t (fun () ->
            t.disk_hits <- t.disk_hits + 1;
            Hashtbl.replace t.mem (Fingerprint.to_hex key) (Artifact a));
        Some (Artifact a, Disk)
      | None ->
        locked t (fun () -> t.misses <- t.misses + 1);
        None)
    | _ ->
      locked t (fun () -> t.misses <- t.misses + 1);
      None)

let find (t : t) (key : Fingerprint.t) : (value * origin) option =
  match
    with_io_retries t (fun () ->
        Faults.trip "cache_read";
        find_raw t key)
  with
  | Ok r -> r
  | Error _ ->
    (* degrade: a read that keeps failing is a miss, never a crash *)
    count_io_error t;
    locked t (fun () -> t.misses <- t.misses + 1);
    None

let store (t : t) (key : Fingerprint.t) (v : value) : unit =
  locked t (fun () ->
      t.stores <- t.stores + 1;
      Hashtbl.replace t.mem (Fingerprint.to_hex key) v);
  match v, disk_path t key with
  | Artifact a, Some path -> save_artifact t path a
  | _ -> ()

let stats (t : t) : stats =
  locked t (fun () ->
      { hits = t.hits;
        disk_hits = t.disk_hits;
        misses = t.misses;
        stores = t.stores;
        retries = t.retries;
        io_errors = t.io_errors;
        tmp_swept = t.tmp_swept })

let default_disk_dir = "_roccc_cache"
