(* The content-addressed pass cache.

   In memory it maps fingerprints to intermediate pipeline states — one per
   executed mid-end pass, keyed by the chained per-pass fingerprints — and
   to finished artifacts (VHDL + estimates). On disk (optional, under
   _roccc_cache/) only artifacts are persisted: they are plain strings and
   numbers, so a marshalled artifact is safe to reload in any later
   process, whereas the in-memory IR values are not worth the versioning
   hazard.

   The memory tier is lock-striped: the table is split across N shards
   (N a power of two, default the hardware parallelism), each with its
   own mutex and hashtable, selected by the fingerprint's leading hex
   digits. Worker domains touching different shards never contend, and
   stat counters live in [Atomic.int]s outside the locks entirely, so a
   counter bump never contends with a lookup. The disk tier stays a
   single shared directory — fingerprinted filenames already give
   per-artifact isolation there.

   All operations are thread-safe; the cache is shared by the pool's
   worker domains. *)

module Pass = Roccc_core.Pass

type artifact = {
  art_entry : string;
  art_vhdl : (string * string) list;
      (* filename -> contents: the design's files plus the optional system
         wrapper, exactly what a batch compile writes out *)
  art_slices : int;
  art_operator_slices : int;
  art_clock_mhz : float;
  art_latency : int;
  art_latch_bits : int;
  art_pass_trace : string list;
}

type value =
  | State of Pass.state
      (* mid-end pipeline state (immutable IR only) after one pass *)
  | Artifact of artifact

type stats = {
  hits : int;       (* in-memory fingerprint hits, all shards *)
  disk_hits : int;  (* artifact loaded from _roccc_cache/ *)
  misses : int;
  stores : int;
  retries : int;    (* disk I/O attempts retried after a transient error *)
  io_errors : int;  (* disk operations degraded after exhausting retries *)
  tmp_swept : int;  (* stale *.art.tmp.<pid> files removed at open *)
  contended : int;  (* shard-lock acquisitions that found the lock held *)
  shards : int;     (* stripe count (a power of two) *)
  flights : int;    (* single-flight leaders: compile executions started *)
  coalesced : int;  (* followers that waited on a leader instead of compiling *)
}

type shard_stats = {
  shard_hits : int;
  shard_misses : int;
  shard_stores : int;
  shard_contended : int;
  shard_entries : int;  (* live table size at snapshot time *)
}

(* One stripe: its own lock and table, plus its own atomic counters so
   two shards' stats never share a cache line through a common record. *)
type shard = {
  sh_lock : Mutex.t;
  sh_table : (string, value) Hashtbl.t;
  sh_hits : int Atomic.t;
  sh_misses : int Atomic.t;
  sh_stores : int Atomic.t;
  sh_contended : int Atomic.t;
}

type t = {
  shards : shard array;  (* length is a power of two, <= 256 *)
  mask : int;            (* Array.length shards - 1 *)
  disk_dir : string option;
  disk_hits : int Atomic.t;
  retries : int Atomic.t;
  io_errors : int Atomic.t;
  tmp_swept : int;
  (* single-flight registry: keys whose compile is currently executing.
     One lock + condition for the whole table — entries are rare (one per
     concurrently-executing distinct key) and held only for registry
     bookkeeping, never across a compile. *)
  fl_lock : Mutex.t;
  fl_cond : Condition.t;
  fl_inflight : (string, unit) Hashtbl.t;
  fl_flights : int Atomic.t;
  fl_coalesced : int Atomic.t;
}

(* Bump when the artifact record changes shape: a stale marshalled value
   from an older build must be ignored, not mis-read. *)
let disk_magic = "ROCCC-ART2"

(* [save_artifact] writes <key>.art.tmp.<pid> then renames; a process
   that dies between the two strands the tmp file forever (the pid in the
   name means no later process ever reuses it). Sweep the debris when the
   cache opens — but only debris: in a multi-process farm a sibling serve
   process may be mid-write at that very moment, so a tmp file is removed
   only when its owning pid is dead, or (when the pid cannot be read or
   is recycled) its mtime is older than a generous threshold. A live
   sibling's in-flight write is never deleted. *)
let tmp_marker = ".art.tmp."

let is_tmp_name (name : string) : bool =
  let n = String.length name and m = String.length tmp_marker in
  let rec scan i =
    i + m <= n
    && (String.equal (String.sub name i m) tmp_marker || scan (i + 1))
  in
  scan 0

(* The pid baked into a tmp name: everything after the last ".art.tmp.". *)
let tmp_owner_pid (name : string) : int option =
  let m = String.length tmp_marker in
  let rec last_at i best =
    if i + m > String.length name then best
    else if String.equal (String.sub name i m) tmp_marker then
      last_at (i + 1) (Some (i + m))
    else last_at (i + 1) best
  in
  Option.bind (last_at 0 None) (fun start ->
      let suffix = String.sub name start (String.length name - start) in
      match int_of_string_opt suffix with
      | Some pid when pid > 0 -> Some pid
      | Some _ | None -> None)

(* [kill pid 0] probes liveness without signalling: ESRCH means dead;
   EPERM (or anything else) means some process has that pid — treat it
   as alive, erring on the side of keeping the file. *)
let default_pid_alive (pid : int) : bool =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception _ -> true

(* Even a live-looking pid may be a recycled number; past this age the
   write it named cannot still be in flight. *)
let tmp_max_age_s = 600.0

let sweep_stale_tmp ?(max_age_s = tmp_max_age_s)
    ?(pid_alive = default_pid_alive) (dir : string) : int =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | files ->
    let now = Unix.gettimeofday () in
    Array.fold_left
      (fun n f ->
        if not (is_tmp_name f) then n
        else
          let path = Filename.concat dir f in
          let old_enough () =
            match Unix.stat path with
            | st -> now -. st.Unix.st_mtime > max_age_s
            | exception Unix.Unix_error _ -> false
          in
          let stale =
            match tmp_owner_pid f with
            | Some pid -> (not (pid_alive pid)) || old_enough ()
            | None -> old_enough ()
          in
          if stale then
            match Sys.remove path with
            | () -> n + 1
            | exception Sys_error _ -> n
          else n)
      0 files

(* Shard selection reads the first two hex digits of the key — a uniform
   digest prefix — which caps the useful stripe count at 256. *)
let max_shards = 256

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let default_shards () = min max_shards (next_pow2 (Pool.recommended ()))

let make_shard () =
  { sh_lock = Mutex.create ();
    sh_table = Hashtbl.create 64;
    sh_hits = Atomic.make 0;
    sh_misses = Atomic.make 0;
    sh_stores = Atomic.make 0;
    sh_contended = Atomic.make 0 }

let create ?shards ?disk_dir () =
  (match disk_dir with
  | Some dir when not (Sys.file_exists dir) -> (
    try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  | _ -> ());
  let tmp_swept =
    match disk_dir with Some dir -> sweep_stale_tmp dir | None -> 0
  in
  let n =
    match shards with
    | None -> default_shards ()
    | Some s -> min max_shards (next_pow2 (max 1 s))
  in
  { shards = Array.init n (fun _ -> make_shard ());
    mask = n - 1;
    disk_dir;
    disk_hits = Atomic.make 0;
    retries = Atomic.make 0;
    io_errors = Atomic.make 0;
    tmp_swept;
    fl_lock = Mutex.create ();
    fl_cond = Condition.create ();
    fl_inflight = Hashtbl.create 16;
    fl_flights = Atomic.make 0;
    fl_coalesced = Atomic.make 0 }

let shard_count (t : t) : int = Array.length t.shards

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> 0

let shard_of (t : t) (hex : string) : shard =
  let prefix =
    match String.length hex with
    | 0 -> 0
    | 1 -> hex_val hex.[0]
    | _ -> (hex_val hex.[0] * 16) + hex_val hex.[1]
  in
  t.shards.(prefix land t.mask)

(* Take a shard's lock, counting the acquisitions that had to wait — the
   contention signal the striping exists to drive down. *)
let locked_shard (sh : shard) f =
  if not (Mutex.try_lock sh.sh_lock) then begin
    Atomic.incr sh.sh_contended;
    Mutex.lock sh.sh_lock
  end;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.sh_lock) f

(* Transient disk I/O — including faults injected at the cache_read /
   cache_write points — is retried a few times with jittered exponential
   backoff before the operation degrades (a failed read becomes a miss, a
   failed write is dropped); the cache never takes a request down. The
   jitter is a deterministic rotation, not randomness, so fault-injection
   runs stay reproducible. *)
let io_attempts = 3
let backoff_base_s = 0.0005
let jitter_phase = Atomic.make 0

let with_io_retries (t : t) (f : unit -> 'a) : ('a, exn) result =
  let rec go attempt =
    match f () with
    | v -> Ok v
    | exception ((Sys_error _ | Faults.Injected _) as e) ->
      if attempt + 1 >= io_attempts then Error e
      else begin
        Atomic.incr t.retries;
        let k = Atomic.fetch_and_add jitter_phase 1 in
        let jitter = float_of_int (k land 7) /. 8.0 in
        Unix.sleepf
          (backoff_base_s *. float_of_int (1 lsl attempt) *. (1.0 +. jitter));
        go (attempt + 1)
      end
  in
  go 0

let count_io_error t = Atomic.incr t.io_errors

let disk_path t key =
  Option.map
    (fun dir -> Filename.concat dir (Fingerprint.to_hex key ^ ".art"))
    t.disk_dir

let load_artifact path : artifact option =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (String.length disk_magic) with
        | magic when String.equal magic disk_magic -> (
          match (Marshal.from_channel ic : artifact) with
          | a -> Some a
          | exception _ -> None)
        | _ -> None
        | exception End_of_file -> None)

let save_artifact t path (a : artifact) =
  (* Write-then-rename so a concurrent reader never sees a torn file. *)
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  let write () =
    Faults.trip "cache_write";
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc disk_magic;
        Marshal.to_channel oc a []);
    Sys.rename tmp path
  in
  match with_io_retries t write with
  | Ok () -> ()
  | Error _ ->
    (* degrade: drop the disk copy, keep serving from memory *)
    count_io_error t;
    (try Sys.remove tmp with Sys_error _ -> ())

type origin = Memory | Disk

let find_raw (t : t) (key : Fingerprint.t) : (value * origin) option =
  let hex = Fingerprint.to_hex key in
  let sh = shard_of t hex in
  let mem_hit = locked_shard sh (fun () -> Hashtbl.find_opt sh.sh_table hex) in
  match mem_hit with
  | Some v ->
    Atomic.incr sh.sh_hits;
    Some (v, Memory)
  | None -> (
    match disk_path t key with
    | Some path when Sys.file_exists path -> (
      match load_artifact path with
      | Some a ->
        Atomic.incr t.disk_hits;
        locked_shard sh (fun () ->
            Hashtbl.replace sh.sh_table hex (Artifact a));
        Some (Artifact a, Disk)
      | None ->
        Atomic.incr sh.sh_misses;
        None)
    | _ ->
      Atomic.incr sh.sh_misses;
      None)

let find (t : t) (key : Fingerprint.t) : (value * origin) option =
  match
    with_io_retries t (fun () ->
        Faults.trip "cache_read";
        find_raw t key)
  with
  | Ok r -> r
  | Error _ ->
    (* degrade: a read that keeps failing is a miss, never a crash *)
    count_io_error t;
    let sh = shard_of t (Fingerprint.to_hex key) in
    Atomic.incr sh.sh_misses;
    None

let store (t : t) (key : Fingerprint.t) (v : value) : unit =
  let hex = Fingerprint.to_hex key in
  let sh = shard_of t hex in
  Atomic.incr sh.sh_stores;
  locked_shard sh (fun () -> Hashtbl.replace sh.sh_table hex v);
  match v, disk_path t key with
  | Artifact a, Some path -> save_artifact t path a
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Single-flight                                                       *)
(* ------------------------------------------------------------------ *)

(* Concurrent compiles of the same key collapse to one execution: the
   first caller to enter becomes the leader (and must call [exit_flight]
   when done, success or failure); every concurrent caller of the same
   key blocks until the leader exits and is told it was coalesced — it
   then finds the leader's artifact in the cache instead of recompiling.
   The registry spans only this process; across farm processes the
   shared disk tier deduplicates at artifact granularity instead. *)
let enter_flight (t : t) (key : Fingerprint.t) : [ `Leader | `Coalesced ] =
  let hex = Fingerprint.to_hex key in
  Mutex.lock t.fl_lock;
  if Hashtbl.mem t.fl_inflight hex then begin
    Atomic.incr t.fl_coalesced;
    while Hashtbl.mem t.fl_inflight hex do
      Condition.wait t.fl_cond t.fl_lock
    done;
    Mutex.unlock t.fl_lock;
    `Coalesced
  end
  else begin
    Hashtbl.add t.fl_inflight hex ();
    Atomic.incr t.fl_flights;
    Mutex.unlock t.fl_lock;
    `Leader
  end

let exit_flight (t : t) (key : Fingerprint.t) : unit =
  let hex = Fingerprint.to_hex key in
  Mutex.lock t.fl_lock;
  Hashtbl.remove t.fl_inflight hex;
  Condition.broadcast t.fl_cond;
  Mutex.unlock t.fl_lock

(* A leader that re-probes after winning and finds a fresh artifact (the
   previous leader stored and exited between this caller's cache probe
   and its [enter_flight]) did not execute anything: retract the flight
   so [flights] stays an exact execution count. *)
let abort_flight (t : t) (key : Fingerprint.t) : unit =
  Atomic.decr t.fl_flights;
  exit_flight t key

(* Each counter is individually exact (atomic); the snapshot as a whole
   is consistent whenever the cache is quiescent — the accounting the
   tests and the health endpoint rely on, taken after a drain. *)
let stats (t : t) : stats =
  let sum f = Array.fold_left (fun n sh -> n + Atomic.get (f sh)) 0 t.shards in
  { hits = sum (fun sh -> sh.sh_hits);
    disk_hits = Atomic.get t.disk_hits;
    misses = sum (fun sh -> sh.sh_misses);
    stores = sum (fun sh -> sh.sh_stores);
    retries = Atomic.get t.retries;
    io_errors = Atomic.get t.io_errors;
    tmp_swept = t.tmp_swept;
    contended = sum (fun sh -> sh.sh_contended);
    shards = Array.length t.shards;
    flights = Atomic.get t.fl_flights;
    coalesced = Atomic.get t.fl_coalesced }

let shard_stats (t : t) : shard_stats array =
  Array.map
    (fun sh ->
      { shard_hits = Atomic.get sh.sh_hits;
        shard_misses = Atomic.get sh.sh_misses;
        shard_stores = Atomic.get sh.sh_stores;
        shard_contended = Atomic.get sh.sh_contended;
        shard_entries =
          locked_shard sh (fun () -> Hashtbl.length sh.sh_table) })
    t.shards

let default_disk_dir = "_roccc_cache"
