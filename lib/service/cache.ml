(* The content-addressed pass cache.

   In memory it maps fingerprints to intermediate pipeline states — one per
   executed mid-end pass, keyed by the chained per-pass fingerprints — and
   to finished artifacts (VHDL + estimates). On disk (optional, under
   _roccc_cache/) only artifacts are persisted: they are plain strings and
   numbers, so a marshalled artifact is safe to reload in any later
   process, whereas the in-memory IR values are not worth the versioning
   hazard.

   All operations are thread-safe; the cache is shared by the scheduler's
   worker domains. *)

module Pass = Roccc_core.Pass

type artifact = {
  art_entry : string;
  art_vhdl : (string * string) list;
      (* filename -> contents: the design's files plus the optional system
         wrapper, exactly what a batch compile writes out *)
  art_slices : int;
  art_operator_slices : int;
  art_clock_mhz : float;
  art_latency : int;
  art_latch_bits : int;
  art_pass_trace : string list;
}

type value =
  | State of Pass.state
      (* mid-end pipeline state (immutable IR only) after one pass *)
  | Artifact of artifact

type stats = {
  hits : int;       (* in-memory fingerprint hits *)
  disk_hits : int;  (* artifact loaded from _roccc_cache/ *)
  misses : int;
  stores : int;
}

type t = {
  mem : (string, value) Hashtbl.t;
  lock : Mutex.t;
  disk_dir : string option;
  mutable hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable stores : int;
}

(* Bump when the artifact record changes shape: a stale marshalled value
   from an older build must be ignored, not mis-read. *)
let disk_magic = "ROCCC-ART2"

let create ?disk_dir () =
  (match disk_dir with
  | Some dir when not (Sys.file_exists dir) -> (
    try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  | _ -> ());
  { mem = Hashtbl.create 64;
    lock = Mutex.create ();
    disk_dir;
    hits = 0;
    disk_hits = 0;
    misses = 0;
    stores = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let disk_path t key =
  Option.map
    (fun dir -> Filename.concat dir (Fingerprint.to_hex key ^ ".art"))
    t.disk_dir

let load_artifact path : artifact option =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (String.length disk_magic) with
        | magic when String.equal magic disk_magic -> (
          match (Marshal.from_channel ic : artifact) with
          | a -> Some a
          | exception _ -> None)
        | _ -> None
        | exception End_of_file -> None)

let save_artifact path (a : artifact) =
  (* Write-then-rename so a concurrent reader never sees a torn file. *)
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  match open_out_bin tmp with
  | exception Sys_error _ -> ()
  | oc ->
    output_string oc disk_magic;
    Marshal.to_channel oc a [];
    close_out oc;
    (try Sys.rename tmp path with Sys_error _ -> (try Sys.remove tmp with Sys_error _ -> ()))

type origin = Memory | Disk

let find (t : t) (key : Fingerprint.t) : (value * origin) option =
  let mem_hit =
    locked t (fun () ->
        match Hashtbl.find_opt t.mem (Fingerprint.to_hex key) with
        | Some v ->
          t.hits <- t.hits + 1;
          Some (v, Memory)
        | None -> None)
  in
  match mem_hit with
  | Some _ as v -> v
  | None -> (
    match disk_path t key with
    | Some path when Sys.file_exists path -> (
      match load_artifact path with
      | Some a ->
        locked t (fun () ->
            t.disk_hits <- t.disk_hits + 1;
            Hashtbl.replace t.mem (Fingerprint.to_hex key) (Artifact a));
        Some (Artifact a, Disk)
      | None ->
        locked t (fun () -> t.misses <- t.misses + 1);
        None)
    | _ ->
      locked t (fun () -> t.misses <- t.misses + 1);
      None)

let store (t : t) (key : Fingerprint.t) (v : value) : unit =
  locked t (fun () ->
      t.stores <- t.stores + 1;
      Hashtbl.replace t.mem (Fingerprint.to_hex key) v);
  match v, disk_path t key with
  | Artifact a, Some path -> save_artifact path a
  | _ -> ()

let stats (t : t) : stats =
  locked t (fun () ->
      { hits = t.hits;
        disk_hits = t.disk_hits;
        misses = t.misses;
        stores = t.stores })

let default_disk_dir = "_roccc_cache"
