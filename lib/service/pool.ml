(* The one worker-pool abstraction under every fan-out in the service
   stack.

   Before this module existed there were two divergent domain-spawning
   paths: the batch scheduler's inline [Array.init ... Domain.spawn] and
   the serve loop's hand-rolled worker array. Both reduce to the same two
   shapes, which is all this module provides:

   - [run]: a scoped pool for a fixed batch of work — the calling domain
     participates as worker 0 (so one worker is plain sequential
     execution and spawns nothing) and the call returns only when every
     worker has finished;
   - [spawn]/[join]: a detached pool of long-lived workers draining a
     queue the caller keeps feeding (the serve loop), joined when the
     stream drains.

   Joining is exception-safe in both shapes: every domain is joined even
   when one of them (or the caller's own body) raises, and the first
   exception is re-raised afterwards — a dying worker can never strand
   its siblings unjoined. Per-job fault isolation stays where it always
   was, in the body the caller supplies (the scheduler boxes each job's
   result; the server answers each request structurally), so a body
   exception reaching the pool is a bug being surfaced, not swallowed. *)

let recommended () = max 1 (Domain.recommended_domain_count ())

let resolve (n : int) : int = if n <= 0 then recommended () else n

type t = {
  size : int;  (* spawned domains; worker slots are 1..size *)
  domains : unit Domain.t array;
}

let size (t : t) : int = t.size

(* Join every domain; re-raise the first exception only after all of
   them are accounted for. *)
let join (t : t) : unit =
  let first_exn = ref None in
  Array.iter
    (fun d ->
      match Domain.join d with
      | () -> ()
      | exception e -> if !first_exn = None then first_exn := Some e)
    t.domains;
  match !first_exn with None -> () | Some e -> raise e

let spawn ~(workers : int) (body : tid:int -> unit) : t =
  let workers = max 0 workers in
  { size = workers;
    domains =
      Array.init workers (fun k -> Domain.spawn (fun () -> body ~tid:(k + 1)))
  }

(* A dynamic set of detached domains whose population is not known up
   front — the socket accept loop spawns one reader per accepted
   connection and joins whatever accumulated when the listener stops.
   [join_all] is exception-safe the same way [join] is: every domain is
   joined, then the first exception (if any) is re-raised. *)
type dynamic = {
  dyn_lock : Mutex.t;
  mutable dyn_domains : unit Domain.t list;
  mutable dyn_spawned : int;
}

let dynamic () =
  { dyn_lock = Mutex.create (); dyn_domains = []; dyn_spawned = 0 }

let add (d : dynamic) (body : unit -> unit) : unit =
  let dom = Domain.spawn body in
  Mutex.lock d.dyn_lock;
  d.dyn_domains <- dom :: d.dyn_domains;
  d.dyn_spawned <- d.dyn_spawned + 1;
  Mutex.unlock d.dyn_lock

let spawned (d : dynamic) : int =
  Mutex.lock d.dyn_lock;
  let n = d.dyn_spawned in
  Mutex.unlock d.dyn_lock;
  n

let join_all (d : dynamic) : unit =
  let doms =
    Mutex.lock d.dyn_lock;
    let ds = d.dyn_domains in
    d.dyn_domains <- [];
    Mutex.unlock d.dyn_lock;
    ds
  in
  let first_exn = ref None in
  List.iter
    (fun dom ->
      match Domain.join dom with
      | () -> ()
      | exception e -> if !first_exn = None then first_exn := Some e)
    doms;
  match !first_exn with None -> () | Some e -> raise e

let run ~(workers : int) (body : tid:int -> unit) : unit =
  let workers = max 1 workers in
  if workers = 1 then body ~tid:0
  else begin
    (* spawned workers take tids 1..workers-1; the caller is tid 0 *)
    let pool =
      { size = workers - 1;
        domains =
          Array.init (workers - 1) (fun k ->
              Domain.spawn (fun () -> body ~tid:(k + 1))) }
    in
    match body ~tid:0 with
    | () -> join pool
    | exception e ->
      (* still join the others before propagating, so no domain leaks *)
      (try join pool with _ -> ());
      raise e
  end
