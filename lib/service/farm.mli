(** The multi-process compile farm behind [roccc farm]: a supervisor
    forks [procs] children running the same closure — for the farm, a
    {!Server.serve_socket} loop over a listening socket bound BEFORE the
    fork, so every child accepts on the inherited descriptor and the
    kernel load-balances connections across them. Children share one
    disk cache tier ({!Cache.sweep_stale_tmp} keeps their write
    temporaries from treading on each other); memory tiers and
    single-flight registries stay per-process.

    Supervision: abnormal child deaths (signal, nonzero exit) restart
    the child, up to [max_restarts] per farm lifetime; a clean child
    exit (it served a ["shutdown"] request and drained) or SIGTERM /
    SIGINT at the supervisor shuts the whole farm down — remaining
    children get SIGTERM and drain before the supervisor returns. *)

type outcome = {
  farm_spawns : int;  (** total forks: initial [procs] plus restarts *)
  farm_restarts : int;
  farm_clean : bool;
      (** the shutdown was triggered by a clean child exit (a drained
          ["shutdown"] request), not a supervisor signal *)
}

val run :
  ?poll_interval_s:float ->
  ?max_restarts:int ->
  procs:int ->
  state_dir:string ->
  child:(index:int -> unit) ->
  unit ->
  outcome
(** Fork [procs] children running [child ~index] and supervise until
    shutdown. [state_dir] (created if missing) holds [farm.json] — the
    live pid table, atomically rewritten on every membership change —
    and is where children are expected to publish their health
    snapshots ([child-<index>.json], the server's [status_path]).
    [max_restarts] (default 16) bounds restarts per farm lifetime;
    [poll_interval_s] (default 0.05) is the reap-poll period. The child
    closure runs in the forked process and must not return into
    supervisor code — {!run} [_exit]s for it when it returns or raises. *)

val status_file : string -> int -> string
(** [status_file state_dir index] — the conventional path child [index]
    publishes its health snapshot to. *)

val farm_file : string -> string
(** [farm_file state_dir] — the supervisor's pid-table file. *)

val aggregate_health : state_dir:string -> Json.t
(** Fold every [child-*.json] snapshot under [state_dir] into one
    farm-wide view: [{children_reporting; aggregate; children}], where
    [aggregate] sums numeric leaves key-wise (objects merge, equal-length
    arrays merge element-wise, non-numeric leaves keep the first child's
    value). *)
