(** Content-addressed pass cache: fingerprints to pipeline states and
    artifacts, shared by the pool's worker domains (all operations are
    thread-safe).

    The memory tier is lock-striped: entries are spread over N shards (a
    power of two, default the hardware parallelism) selected by the
    fingerprint's leading hex digits, each shard with its own mutex and
    table, so workers touching different shards never contend. Stat
    counters are [Atomic.int]s outside the locks — a counter bump never
    contends with a lookup. The disk tier is a single shared directory.

    Mid-end pipeline states (one per executed pass, keyed by chained
    per-pass fingerprints) are memoized in memory only — they hold
    immutable compiler IR; finished artifacts — the VHDL text plus
    estimates — are additionally persisted under a disk directory when one
    is given, surviving the process. *)

(** A finished compilation, reduced to plain data (safe to marshal). *)
type artifact = {
  art_entry : string;
  art_vhdl : (string * string) list;  (** filename -> contents *)
  art_slices : int;
  art_operator_slices : int;
  art_clock_mhz : float;
  art_latency : int;
  art_latch_bits : int;
  art_pass_trace : string list;
}

type value =
  | State of Roccc_core.Pass.state
      (** mid-end pipeline state (immutable IR only) after one pass *)
  | Artifact of artifact

type stats = {
  hits : int;  (** in-memory fingerprint hits, summed over all shards *)
  disk_hits : int;  (** artifacts reloaded from the disk directory *)
  misses : int;
  stores : int;
  retries : int;
      (** disk I/O attempts retried (with jittered exponential backoff)
          after a transient error or an injected fault *)
  io_errors : int;
      (** disk operations degraded after exhausting retries: a failed
          read became a miss, a failed write was dropped *)
  tmp_swept : int;
      (** stale [*.art.tmp.<pid>] files (stranded by a process that died
          mid-write) removed when the cache opened *)
  contended : int;
      (** shard-lock acquisitions that found the lock held — the
          contention the striping exists to drive down *)
  shards : int;  (** stripe count (a power of two) *)
  flights : int;
      (** single-flight leaders — compile executions actually started
          (see {!enter_flight}) *)
  coalesced : int;
      (** single-flight followers — concurrent duplicate compiles that
          waited on a leader and shared its artifact instead of
          executing *)
}

(** One stripe's view of the same counters, for per-shard observability
    (the serve [health] endpoint and the Chrome-trace counter tracks). *)
type shard_stats = {
  shard_hits : int;
  shard_misses : int;
  shard_stores : int;
  shard_contended : int;
  shard_entries : int;  (** live table size at snapshot time *)
}

type t

val create : ?shards:int -> ?disk_dir:string -> unit -> t
(** [create ()] is an in-memory cache; [create ~disk_dir ()] additionally
    persists artifacts under [disk_dir] (created if missing), first
    sweeping any stale write-temporary files a dead process stranded.
    [shards] is rounded up to the next power of two and capped at 256;
    it defaults to the hardware parallelism (likewise rounded up). *)

val sweep_stale_tmp :
  ?max_age_s:float -> ?pid_alive:(int -> bool) -> string -> int
(** Remove stranded [*.art.tmp.<pid>] write-temporaries from a cache
    directory, returning how many were removed. Safe for multi-process
    farms sharing the directory: a tmp file is removed only when its
    owning pid is dead ([kill pid 0] raises [ESRCH]) or its mtime is
    older than [max_age_s] (default 600 s) — a live sibling's in-flight
    write is never deleted. [pid_alive] is injectable for tests.
    {!create} runs this automatically when given a [disk_dir]. *)

val enter_flight : t -> Fingerprint.t -> [ `Leader | `Coalesced ]
(** Single-flight admission for one compile execution of [key]:
    [`Leader] means the caller must run the compile (and is obliged to
    call {!exit_flight} afterwards, on success or failure); [`Coalesced]
    means a concurrent leader for the same key was already executing —
    the call blocked until that leader exited, and the caller should
    re-probe {!find} for the leader's artifact instead of compiling.
    The registry spans one process; across farm processes the shared
    disk tier deduplicates at artifact granularity instead. *)

val exit_flight : t -> Fingerprint.t -> unit
(** End the caller's leadership of [key], waking every coalesced
    follower. Must be called exactly once per [`Leader], even when the
    compile failed (followers then find no artifact and fall back to
    compiling themselves). *)

val abort_flight : t -> Fingerprint.t -> unit
(** Like {!exit_flight}, but also retracts the [flights] count: for a
    leader that re-probed after winning, found the artifact already
    stored (a previous leader finished in between), and will not
    execute. Keeps [flights] an exact count of compile executions. *)

type origin = Memory | Disk

val find : t -> Fingerprint.t -> (value * origin) option
(** Memory first, then disk (artifacts only); counts a hit or miss on
    the key's shard. Carries the ["cache_read"] fault point; transient
    failures are retried, then degrade to a miss. *)

val store : t -> Fingerprint.t -> value -> unit

val stats : t -> stats
(** Aggregate counters over all shards. Each counter is individually
    exact; the snapshot as a whole is consistent whenever the cache is
    quiescent (e.g. after a batch or a drain). *)

val shard_count : t -> int

val shard_stats : t -> shard_stats array
(** Per-shard counters, index [i] for shard [i] of {!shard_count}. *)

val default_disk_dir : string
(** ["_roccc_cache"] — the conventional disk cache location. *)
