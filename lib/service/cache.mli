(** Content-addressed pass cache: fingerprints to pipeline states and
    artifacts, shared by the scheduler's worker domains (all operations
    are thread-safe).

    Mid-end pipeline states (one per executed pass, keyed by chained
    per-pass fingerprints) are memoized in memory only — they hold
    immutable compiler IR; finished artifacts — the VHDL text plus
    estimates — are additionally persisted under a disk directory when one
    is given, surviving the process. *)

(** A finished compilation, reduced to plain data (safe to marshal). *)
type artifact = {
  art_entry : string;
  art_vhdl : (string * string) list;  (** filename -> contents *)
  art_slices : int;
  art_operator_slices : int;
  art_clock_mhz : float;
  art_latency : int;
  art_latch_bits : int;
  art_pass_trace : string list;
}

type value =
  | State of Roccc_core.Pass.state
      (** mid-end pipeline state (immutable IR only) after one pass *)
  | Artifact of artifact

type stats = {
  hits : int;  (** in-memory fingerprint hits *)
  disk_hits : int;  (** artifacts reloaded from the disk directory *)
  misses : int;
  stores : int;
  retries : int;
      (** disk I/O attempts retried (with jittered exponential backoff)
          after a transient error or an injected fault *)
  io_errors : int;
      (** disk operations degraded after exhausting retries: a failed
          read became a miss, a failed write was dropped *)
  tmp_swept : int;
      (** stale [*.art.tmp.<pid>] files (stranded by a process that died
          mid-write) removed when the cache opened *)
}

type t

val create : ?disk_dir:string -> unit -> t
(** [create ()] is an in-memory cache; [create ~disk_dir ()] additionally
    persists artifacts under [disk_dir] (created if missing), first
    sweeping any stale write-temporary files a dead process stranded. *)

type origin = Memory | Disk

val find : t -> Fingerprint.t -> (value * origin) option
(** Memory first, then disk (artifacts only); counts a hit or miss.
    Carries the ["cache_read"] fault point; transient failures are
    retried, then degrade to a miss. *)

val store : t -> Fingerprint.t -> value -> unit

val stats : t -> stats

val default_disk_dir : string
(** ["_roccc_cache"] — the conventional disk cache location. *)
