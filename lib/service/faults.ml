(* Deterministic fault injection for resilience testing.

   A plan names injection points with firing rates ("cache_read:0.5,
   driver_pass:1"); each point carries a rate accumulator that gains
   [rate] per call and fires — raising {!Injected} at the call site —
   each time it crosses 1. A rate of 1.0 fires on every call, 0.5 on
   every second call, 0.25 on every fourth; there is no randomness, so a
   soak run injects exactly the same fault sequence every time.

   A plan is installed process-globally ([install], or [from_env] reading
   ROCCC_FAULT); production code marks its fault points with {!trip},
   which is a no-op when nothing is installed — the cache's disk I/O, the
   scheduler's job claim and the driver's pass boundary all carry one.
   Per-point call/fire counters make "every fault point exercised"
   checkable from tests and the serve health snapshot. *)

exception Injected of string

type entry = {
  rate : float;
  mutable acc : float;
  mutable calls : int;
  mutable fired : int;
}

type t = {
  lock : Mutex.t;
  entries : (string * entry) list;
}

(* The named injection points, in the order they appear in the pipeline.
   [parse] rejects anything else so a typo in ROCCC_FAULT is an error,
   not a silently dead plan. *)
let known_points =
  [ "scheduler_claim"; "driver_pass"; "cache_read"; "cache_write" ]

let parse (spec : string) : (t, string) result =
  let items =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> not (String.equal s ""))
  in
  if items = [] then Error "empty fault spec"
  else
    let rec go acc = function
      | [] -> Ok { lock = Mutex.create (); entries = List.rev acc }
      | item :: rest -> (
        let point, rate_src =
          match String.index_opt item ':' with
          | None -> item, None
          | Some i ->
            ( String.sub item 0 i,
              Some (String.sub item (i + 1) (String.length item - i - 1)) )
        in
        if not (List.mem point known_points) then
          Error
            (Printf.sprintf "unknown fault point %S (known: %s)" point
               (String.concat ", " known_points))
        else
          let rate =
            match rate_src with
            | None -> Ok 1.0
            | Some r -> (
              match float_of_string_opt r with
              | Some v when v > 0.0 && v <= 1.0 -> Ok v
              | Some _ ->
                Error
                  (Printf.sprintf "fault point %s: rate %s is outside (0, 1]"
                     point r)
              | None ->
                Error (Printf.sprintf "fault point %s: bad rate %S" point r))
          in
          match rate with
          | Error _ as e -> e
          | Ok rate ->
            if List.mem_assoc point acc then
              Error (Printf.sprintf "fault point %s given twice" point)
            else
              go
                ((point, { rate; acc = 0.0; calls = 0; fired = 0 }) :: acc)
                rest)
    in
    go [] items

(* The installed plan. An [Atomic] so worker domains read a consistent
   pointer; the per-entry counters are guarded by the plan's own mutex. *)
let current : t option Atomic.t = Atomic.make None

let install (t : t) : unit = Atomic.set current (Some t)
let clear () : unit = Atomic.set current None
let installed () : t option = Atomic.get current

let env_var = "ROCCC_FAULT"

let from_env () : (t option, string) result =
  match Sys.getenv_opt env_var with
  | None | Some "" -> Ok None
  | Some spec -> Result.map Option.some (parse spec)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let trip (point : string) : unit =
  match Atomic.get current with
  | None -> ()
  | Some t -> (
    match List.assoc_opt point t.entries with
    | None -> ()
    | Some e ->
      let fire =
        locked t (fun () ->
            e.calls <- e.calls + 1;
            e.acc <- e.acc +. e.rate;
            (* the epsilon keeps rates like 0.2 firing exactly every 5th
               call despite accumulated float error *)
            if e.acc >= 1.0 -. 1e-9 then begin
              e.acc <- e.acc -. 1.0;
              e.fired <- e.fired + 1;
              true
            end
            else false)
      in
      if fire then raise (Injected point))

let counts () : (string * int * int) list =
  match Atomic.get current with
  | None -> []
  | Some t ->
    locked t (fun () ->
        List.map (fun (p, e) -> p, e.calls, e.fired) t.entries)

let describe (e : exn) : string option =
  match e with
  | Injected point -> Some (Printf.sprintf "injected fault at %s" point)
  | _ -> None
