(* The batch compilation service: content-addressed caching + the domain
   scheduler + structured tracing, over the pass-manager pipeline.

   A job is (source, entry, options, luts). Compilation consults the cache
   deepest-first at per-pass granularity:

     full artifact (all options)          -> memory or disk
     one chained key per mid-end pass     -> pipeline state, memory only

   The chained keys cover the front + kernel pipelines (parse through
   feedback-detection); each link digests the previous link, the pass name
   and that pass's own option fingerprint, so a warm rerun costs one
   lookup, a front option change re-runs only from the first affected
   pass, and a back-end option sweep (bus width, stage budget, width
   inference) reuses every mid-end pass and re-runs only the back end. *)

module Driver = Roccc_core.Driver
module Pass = Roccc_core.Pass
module Kernels = Roccc_core.Kernels
module Lut_conv = Roccc_hir.Lut_conv
module Area = Roccc_fpga.Area
module Pipeline = Roccc_datapath.Pipeline

let now = Unix.gettimeofday

type job = {
  label : string;          (* display name, unique within a batch *)
  source : string;
  entry : string;
  options : Driver.options;
  luts : Lut_conv.table list;
}

type origin =
  | Cold            (* every pass ran *)
  | Warm_partial    (* a mid-end prefix reused; the rest re-ran *)
  | Warm_stage      (* every mid-end pass reused; back end ran *)
  | Warm_memory     (* finished artifact from the in-memory cache *)
  | Warm_disk       (* finished artifact reloaded from _roccc_cache/ *)
  | Coalesced       (* waited on a concurrent identical compile (single-flight) *)

let origin_name = function
  | Cold -> "cold"
  | Warm_partial -> "warm-partial"
  | Warm_stage -> "warm-stage"
  | Warm_memory -> "warm"
  | Warm_disk -> "warm-disk"
  | Coalesced -> "coalesced"

type success = {
  r_label : string;
  r_entry : string;
  r_vhdl : (string * string) list;   (* filename -> contents *)
  r_slices : int;
  r_operator_slices : int;
  r_clock_mhz : float;
  r_latency : int;
  r_latch_bits : int;
  r_pass_trace : string list;
  r_elapsed_s : float;
  r_origin : origin;
}

type report = {
  rp_results : (job * (success, string) result) array;  (* submission order *)
  rp_wall_s : float;
  rp_domains : int;   (* requested *)
  rp_workers : int;   (* effective: clamped to cores and job count *)
  rp_cache : Cache.stats option;
}

(* ------------------------------------------------------------------ *)
(* One job                                                             *)
(* ------------------------------------------------------------------ *)

let vhdl_files (c : Driver.compiled) : (string * string) list =
  Roccc_vhdl.Ast.to_files c.Driver.design
  @
  match c.Driver.system_vhdl with
  | Some text -> [ c.Driver.entry ^ "_system.vhd", text ]
  | None -> []

let artifact_of (c : Driver.compiled) : Cache.artifact =
  { Cache.art_entry = c.Driver.entry;
    art_vhdl = vhdl_files c;
    art_slices = c.Driver.area.Area.slices;
    art_operator_slices = c.Driver.area.Area.operator_slices;
    art_clock_mhz = c.Driver.area.Area.clock_mhz;
    art_latency = Pipeline.latency c.Driver.pipeline;
    art_latch_bits = c.Driver.pipeline.Pipeline.latch_bits;
    art_pass_trace = c.Driver.pass_trace }

let success_of_artifact ~label ~elapsed ~origin (a : Cache.artifact) : success
    =
  { r_label = label;
    r_entry = a.Cache.art_entry;
    r_vhdl = a.Cache.art_vhdl;
    r_slices = a.Cache.art_slices;
    r_operator_slices = a.Cache.art_operator_slices;
    r_clock_mhz = a.Cache.art_clock_mhz;
    r_latency = a.Cache.art_latency;
    r_latch_bits = a.Cache.art_latch_bits;
    r_pass_trace = a.Cache.art_pass_trace;
    r_elapsed_s = elapsed;
    r_origin = origin }

(* The mid-end pipeline whose states are cached per pass: everything up to
   (and including) the storage-level kernel passes. The back end mutates
   its procedure in place, so its states are never shared. *)
let mid_passes = Pass.front_passes @ Pass.kernel_passes

(* The finished artifact's identity includes the pass selection: disabling
   an optional pass changes the generated VHDL without changing any option
   field, and artifacts persist in the disk cache across processes. *)
let full_key ?config (job : job) : Fingerprint.t =
  let config =
    match config with Some c -> c | None -> Pass.default_config ()
  in
  Fingerprint.make ~stage:"full"
    ~selection:(Pass.selection_fingerprint config)
    ~source:job.source ~entry:job.entry
    ~options_fp:(Driver.options_fingerprint job.options)
    ~luts:job.luts

(** The chained per-pass fingerprints of the job's mid-end pipeline, in
    execution order: one (pass, key-of-state-after-it) per statically
    selected pass. *)
let pass_keys ?config (job : job) : (Pass.pass * Fingerprint.t) list =
  let selected = Pass.executed ?config job.options mid_passes in
  let seed =
    Fingerprint.seed ~source:job.source ~entry:job.entry ~luts:job.luts
  in
  let _, keyed =
    List.fold_left
      (fun (fp, acc) (p : Pass.pass) ->
        let fp =
          Fingerprint.chain fp ~pass:p.Pass.name
            ~options_fp:(p.Pass.fingerprint job.options)
        in
        fp, (p, fp) :: acc)
      (seed, []) selected
  in
  List.rev keyed

(* The tracing instrument every cached entry point installs: forward to
   the caller's hook, then record a per-pass span. *)
let traced_config ?trace ~tid (job : job) (base_config : Pass.config) :
    Pass.config =
  { base_config with
    Pass.instrument =
      Some
        (fun (ps : Driver.pass_stats) ->
          Option.iter (fun f -> f ps) base_config.Pass.instrument;
          Option.iter
            (fun tr ->
              Trace.add_span tr ~cat:"pass" ~tid ~name:ps.Driver.pass_name
                ~start_s:ps.Driver.started_s ~dur_s:ps.Driver.elapsed_s
                ~args:
                  [ "job", Trace.Str job.label;
                    "ir_size", Trace.Int ps.Driver.ir_size ]
                ())
            trace) }

(* Resume the mid-end pipeline from the deepest cached per-pass state
   (storing each newly computed state back), returning the completed
   mid-end state and how many passes were reused. Reused passes appear in
   [trace] with a [cached] argument and zero duration. *)
let run_mid_end ?cache ~(base_config : Pass.config) ~(config : Pass.config)
    ?trace ~tid (job : job) : Pass.state * int * int =
  let keyed = Array.of_list (pass_keys ~config:base_config job) in
  let n = Array.length keyed in
  (* deepest cached state first *)
  let rec probe i =
    if i < 0 then None
    else
      match Option.bind cache (fun c -> Cache.find c (snd keyed.(i))) with
      | Some (Cache.State st, _) -> Some (i, st)
      | _ -> probe (i - 1)
  in
  let st, start_idx =
    match if cache = None then None else probe (n - 1) with
    | Some (idx, st) ->
      (* Cached mid-end states hold only immutable IR; re-bind the
         job-specific options (the chain guarantees every option field a
         reused pass reads is equal). Reused passes get zero-duration
         spans so the trace still shows the full Figure 1 pipeline. *)
      Option.iter
        (fun tr ->
          let t = now () in
          List.iter
            (fun name ->
              Trace.add_span tr ~cat:"pass" ~tid ~name ~start_s:t ~dur_s:0.0
                ~args:[ "job", Trace.Str job.label; "cached", Trace.Int 1 ]
                ())
            st.Pass.st_trace)
        trace;
      { st with Pass.st_options = job.options }, idx + 1
    | None ->
      ( Pass.initial ~luts:job.luts ~options:job.options ~entry:job.entry
          job.source,
        0 )
  in
  let st = ref st in
  for i = start_idx to n - 1 do
    let p, key = keyed.(i) in
    st := Pass.step ~config p !st;
    Option.iter (fun c -> Cache.store c key (Cache.State !st)) cache
  done;
  !st, start_idx, n

(** Compile one job, consulting [cache] deepest-first — the full artifact,
    then the chained per-pass states of the mid-end pipeline — resuming
    from the deepest cached state and reporting per-pass spans to [trace]
    (reused passes appear with a [cached] argument and zero duration).

    Executions are single-flight per full fingerprint: when a cache is
    given and the same key is already compiling on another domain, this
    call blocks on that leader's completion and shares its cached
    artifact (origin {!Coalesced}, a zero-duration ["coalesced"] trace
    span, and a bump of the cache's [coalesced] counter) instead of
    compiling again. Raises {!Driver.Error} on failure. *)
let compile_cached ?cache ?config ?trace ?(tid = 0) (job : job) : success =
  let t0 = now () in
  let base_config =
    match config with Some c -> c | None -> Pass.default_config ()
  in
  Pass.validate_selection base_config;
  let config = traced_config ?trace ~tid job base_config in
  let full_key = full_key ~config:base_config job in
  let finish origin (c : Driver.compiled) =
    let art = artifact_of c in
    Option.iter (fun cache -> Cache.store cache full_key (Cache.Artifact art)) cache;
    success_of_artifact ~label:job.label ~elapsed:(now () -. t0) ~origin art
  in
  let from_artifact origin (a : Cache.artifact) =
    success_of_artifact ~label:job.label ~elapsed:(now () -. t0) ~origin a
  in
  let execute () =
    let st, start_idx, n =
      run_mid_end ?cache ~base_config ~config ?trace ~tid job
    in
    let c = Driver.back_end ~config ~options:job.options (Driver.staged_of_state st) in
    let origin =
      if start_idx = 0 then Cold
      else if start_idx < n then Warm_partial
      else Warm_stage
    in
    finish origin c
  in
  match Option.bind cache (fun c -> Cache.find c full_key) with
  | Some (Cache.Artifact a, where) ->
    let origin =
      match where with Cache.Memory -> Warm_memory | Cache.Disk -> Warm_disk
    in
    from_artifact origin a
  | Some _ | None -> (
    match cache with
    | None -> execute ()
    | Some c -> (
      match Cache.enter_flight c full_key with
      | `Leader -> (
        (* re-probe under leadership: a previous leader may have stored
           and exited between our probe above and winning the flight, in
           which case there is nothing to execute and the flight is
           retracted (so [flights] counts executions exactly) *)
        match Cache.find c full_key with
        | Some (Cache.Artifact a, where) ->
          Cache.abort_flight c full_key;
          let origin =
            match where with
            | Cache.Memory -> Warm_memory
            | Cache.Disk -> Warm_disk
          in
          from_artifact origin a
        | Some _ | None ->
          (* the flight is exited on success AND failure: a dying leader
             must wake its followers, who then compile for themselves *)
          Fun.protect
            ~finally:(fun () -> Cache.exit_flight c full_key)
            execute)
      | `Coalesced -> (
        (* we slept through any deadline while the leader ran; honour it
           before answering from the shared artifact *)
        (match base_config.Pass.cancel with
        | Some check -> (
          match check () with
          | Some reason -> raise (Pass.Cancelled reason)
          | None -> ())
        | None -> ());
        Option.iter
          (fun tr ->
            Trace.add_span tr ~cat:"pass" ~tid ~name:"coalesced"
              ~start_s:(now ()) ~dur_s:0.0
              ~args:
                [ "job", Trace.Str job.label; "coalesced", Trace.Int 1 ]
              ())
          trace;
        match Cache.find c full_key with
        | Some (Cache.Artifact a, _) -> from_artifact Coalesced a
        | Some _ | None ->
          (* the leader failed (or its store degraded); fall back to our
             own execution — its warm per-pass states still help *)
          execute ())))

type measured = {
  m_label : string;
  m_measure : Driver.measurement;
  m_elapsed_s : float;
  m_origin : origin;
}

(** Measure one job without generating VHDL: the mid-end resumes from the
    same chained per-pass cache entries {!compile_cached} uses (so an
    estimate run warms the cache for a later full run and vice versa),
    then the estimate-only back end prices it. Raises {!Driver.Error}. *)
let measure_cached ?cache ?config ?trace ?(tid = 0) (job : job) : measured =
  let t0 = now () in
  let base_config =
    match config with Some c -> c | None -> Pass.default_config ()
  in
  Pass.validate_selection base_config;
  let config = traced_config ?trace ~tid job base_config in
  let st, start_idx, n =
    run_mid_end ?cache ~base_config ~config ?trace ~tid job
  in
  let m =
    Driver.estimate_back_end ~config ~options:job.options
      (Driver.staged_of_state st)
  in
  { m_label = job.label;
    m_measure = m;
    m_elapsed_s = now () -. t0;
    m_origin =
      (if start_idx = 0 then Cold
       else if start_idx < n then Warm_partial
       else Warm_stage) }

(** Quick-cost one job: cached mid-end, then the O(instructions) costing
    tier (no pipelining). Raises {!Driver.Error}. *)
let quick_cached ?cache ?config ?trace ?(tid = 0) (job : job) :
    Driver.quick_measurement =
  let base_config =
    match config with Some c -> c | None -> Pass.default_config ()
  in
  Pass.validate_selection base_config;
  let config = traced_config ?trace ~tid job base_config in
  let st, _, _ = run_mid_end ?cache ~base_config ~config ?trace ~tid job in
  Driver.quick_back_end ~config ~options:job.options
    (Driver.staged_of_state st)

(* ------------------------------------------------------------------ *)
(* Batches                                                             *)
(* ------------------------------------------------------------------ *)

let describe_error (e : exn) : string option =
  match e with
  | Driver.Error msg -> Some msg
  | Roccc_cfront.Parser.Error (msg, line, col) ->
    Some (Printf.sprintf "parse error at %d:%d: %s" line col msg)
  | Roccc_cfront.Semant.Error msg -> Some ("semantic error: " ^ msg)
  | Roccc_vm.Instr.Vm_error msg -> Some ("vm error: " ^ msg)
  | Pass.Cancelled reason -> Some ("cancelled: " ^ reason)
  | Faults.Injected _ -> Faults.describe e
  | _ -> None

let run_batch ?cache ?config ?trace ?(num_domains = 0) (jobs : job list) :
    report =
  let t0 = now () in
  let arr = Array.of_list jobs in
  let domains =
    if num_domains <= 0 then Scheduler.default_domains () else num_domains
  in
  let workers =
    Scheduler.effective_workers ~num_domains:domains (Array.length arr)
  in
  let f ~tid (job : job) : success =
    let j0 = now () in
    match compile_cached ?cache ?config ?trace ~tid job with
    | s ->
      Option.iter
        (fun tr ->
          Trace.add_span tr ~cat:"job" ~tid ~name:job.label ~start_s:j0
            ~dur_s:(now () -. j0)
            ~args:
              [ "status", Trace.Str "ok";
                "origin", Trace.Str (origin_name s.r_origin);
                "slices", Trace.Int s.r_slices ]
            ())
        trace;
      s
    | exception e ->
      Option.iter
        (fun tr ->
          Trace.add_span tr ~cat:"job" ~tid ~name:job.label ~start_s:j0
            ~dur_s:(now () -. j0)
            ~args:
              [ "status", Trace.Str "error";
                "message",
                Trace.Str
                  (Option.value (describe_error e)
                     ~default:(Printexc.to_string e)) ]
            ())
        trace;
      raise e
  in
  let results = Scheduler.parallel_map ~num_domains:domains ~describe_error ~f arr in
  { rp_results = Array.map2 (fun j r -> j, r) arr results;
    rp_wall_s = now () -. t0;
    rp_domains = domains;
    rp_workers = workers;
    rp_cache = Option.map Cache.stats cache }

(* ------------------------------------------------------------------ *)
(* Job builders                                                        *)
(* ------------------------------------------------------------------ *)

let table1_jobs () : job list =
  List.map
    (fun (b : Kernels.benchmark) ->
      { label = b.Kernels.bench_name;
        source = b.Kernels.source;
        entry = b.Kernels.entry;
        options = b.Kernels.tune Driver.default_options;
        luts = b.Kernels.luts })
    Kernels.table1

let sweep_jobs ?(base = Driver.default_options) ?(luts = [])
    ?(target_ns : float list = []) ~(source : string) ~(entry : string)
    ~(unroll_factors : int list) ~(bus_widths : int list) () : job list =
  (* an empty clock axis means "sweep only the base target" — labels then
     keep their historical u/b shape *)
  let targets, label_target =
    match target_ns with
    | [] -> [ base.Driver.target_ns ], false
    | ts -> ts, List.length ts > 1
  in
  List.concat_map
    (fun tns ->
      List.concat_map
        (fun unroll ->
          List.map
            (fun bus ->
              let label =
                if label_target then
                  Printf.sprintf "%s.u%d.b%d.t%g" entry unroll bus tns
                else Printf.sprintf "%s.u%d.b%d" entry unroll bus
              in
              { label;
                source;
                entry;
                options =
                  { base with
                    Driver.unroll_outer_factor = unroll;
                    bus_elements = bus;
                    target_ns = tns };
                luts })
            bus_widths)
        unroll_factors)
    targets

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let successes (r : report) : (job * success) list =
  Array.to_list r.rp_results
  |> List.filter_map (fun (j, res) ->
         match res with Ok s -> Some (j, s) | Error _ -> None)

let failures (r : report) : (job * string) list =
  Array.to_list r.rp_results
  |> List.filter_map (fun (j, res) ->
         match res with Ok _ -> None | Error msg -> Some (j, msg))

let trace_meta (r : report) : (string * Trace.arg) list =
  let cache_meta =
    match r.rp_cache with
    | None -> [ "cache_enabled", Trace.Int 0 ]
    | Some s ->
      [ "cache_enabled", Trace.Int 1;
        "cache_hits", Trace.Int s.Cache.hits;
        "cache_disk_hits", Trace.Int s.Cache.disk_hits;
        "cache_misses", Trace.Int s.Cache.misses;
        "cache_stores", Trace.Int s.Cache.stores ]
  in
  [ "wall_s", Trace.Float r.rp_wall_s;
    "domains", Trace.Int r.rp_domains;
    "workers", Trace.Int r.rp_workers;
    "jobs", Trace.Int (Array.length r.rp_results);
    "failed", Trace.Int (List.length (failures r)) ]
  @ cache_meta

let report_json (r : report) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{";
  Buffer.add_string buf (Printf.sprintf "\"wall_s\":%.6f," r.rp_wall_s);
  Buffer.add_string buf (Printf.sprintf "\"domains\":%d," r.rp_domains);
  Buffer.add_string buf (Printf.sprintf "\"workers\":%d," r.rp_workers);
  (match r.rp_cache with
  | None -> Buffer.add_string buf "\"cache\":null,"
  | Some s ->
    Buffer.add_string buf
      (Printf.sprintf
         "\"cache\":{\"hits\":%d,\"disk_hits\":%d,\"misses\":%d,\"stores\":%d},"
         s.Cache.hits s.Cache.disk_hits s.Cache.misses s.Cache.stores));
  Buffer.add_string buf "\"jobs\":[";
  Array.iteri
    (fun i (j, res) ->
      if i > 0 then Buffer.add_char buf ',';
      match res with
      | Ok s ->
        Buffer.add_string buf
          (Trace.args_json
             [ "label", Trace.Str j.label;
               "status", Trace.Str "ok";
               "origin", Trace.Str (origin_name s.r_origin);
               "elapsed_s", Trace.Float s.r_elapsed_s;
               "slices", Trace.Int s.r_slices;
               "clock_mhz", Trace.Float s.r_clock_mhz;
               "latency", Trace.Int s.r_latency;
               "latch_bits", Trace.Int s.r_latch_bits ])
      | Error msg ->
        Buffer.add_string buf
          (Trace.args_json
             [ "label", Trace.Str j.label;
               "status", Trace.Str "error";
               "message", Trace.Str msg ]))
    r.rp_results;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let summary (r : report) : string =
  let buf = Buffer.create 256 in
  Array.iter
    (fun (j, res) ->
      match res with
      | Ok s ->
        Buffer.add_string buf
          (Printf.sprintf
             "%-24s ok    %5d slices @ %6.1f MHz, %2d-stage, %5d latch \
              bits, %7.1f ms (%s)\n"
             j.label s.r_slices s.r_clock_mhz s.r_latency s.r_latch_bits
             (s.r_elapsed_s *. 1e3)
             (origin_name s.r_origin))
      | Error msg ->
        Buffer.add_string buf (Printf.sprintf "%-24s ERROR %s\n" j.label msg))
    r.rp_results;
  let nfail = List.length (failures r) in
  Buffer.add_string buf
    (Printf.sprintf "%d job(s), %d failed, %d worker(s), %.1f ms wall"
       (Array.length r.rp_results) nfail r.rp_workers (r.rp_wall_s *. 1e3));
  (match r.rp_cache with
  | Some s ->
    Buffer.add_string buf
      (Printf.sprintf "; cache: %d hit(s) (%d disk), %d miss(es)"
         (s.Cache.hits + s.Cache.disk_hits)
         s.Cache.disk_hits s.Cache.misses)
  | None -> ());
  Buffer.contents buf
