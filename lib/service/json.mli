(** Minimal JSON for the serve protocol (the repo deliberately carries no
    JSON dependency): values, a parser with byte offsets in its errors,
    and a compact one-line printer. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val int : int -> t

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] for other values or missing keys. *)

val to_string_opt : t -> string option
val to_float_opt : t -> float option

val to_int_opt : t -> int option
(** [Num] values that are exact integers only. *)

val to_bool_opt : t -> bool option

val to_string : t -> string
(** Compact one-line rendering (never contains a newline). *)

val parse : string -> (t, string) result
