(** The resilient compile server behind [roccc serve].

    Requests are line-delimited JSON objects read from a channel (stdin,
    or any number of simultaneous Unix-socket connections —
    {!serve_socket} runs a concurrent accept loop); each gets exactly
    one JSON response line, on the connection that sent it. Request
    types: ["compile"] (default — fields [source], [entry], optional
    [options] object, [deadline_ms], [return_vhdl], [id]), ["health"]
    (optional ["drain": true] to wait for quiescence first) and
    ["shutdown"]. Response [status] is one of ["ok"], ["error"] (with a
    [kind]: [bad_request] / [compile] / [injected_fault] / [internal]),
    ["overloaded"] (load shed — the bounded admission queue was full) or
    ["deadline_exceeded"] (cancelled cooperatively at a pass boundary).
    The server answers every admitted line; it never crashes or hangs on
    a request, including under {!Faults} injection.

    Concurrency model: ONE bounded admission queue and ONE pool of
    worker domains serve every connection; each accepted connection gets
    a reader domain that parses and enqueues, and a write-locked output
    channel so concurrent workers never interleave response bytes. EOF
    on one connection closes only that connection (after its own
    admitted requests are answered) and never stalls the others. *)

type limits = {
  workers : int;  (** worker domains; [0] picks the hardware default *)
  queue_depth : int;  (** bound on the admission queue; beyond it, shed *)
  deadline_ms : float option;
      (** default per-request deadline; a request's own [deadline_ms]
          overrides it *)
  max_request_bytes : int;  (** longer request lines are rejected *)
}

val default_limits : limits
(** workers auto, depth 32, no deadline, 8 MiB request bound. *)

(** {2 Flag validation}

    Shared with the CLI so [--jobs -1] and friends die with a friendly
    message and exit code 2 instead of a crash or a silent surprise. *)

val check_positive_int : flag:string -> int -> (int, string) result
val check_positive_float : flag:string -> float -> (float, string) result

val check_jobs : flag:string -> int -> (int, string) result
(** Worker-count convention shared by [serve], [batch] and [tune]:
    [0] means auto (the machine's recommended domain count) and is
    accepted; negatives are usage errors. *)

val check_positive_int_list :
  flag:string -> int list -> (int list, string) result
(** Sweep/tune axis validation: rejects empty lists and non-positive
    values; deduplicates repeated values (first occurrence wins) so a
    duplicated sweep point is compiled once, not twice. *)

val check_nonneg_int_list :
  flag:string -> int list -> (int list, string) result
(** Like {!check_positive_int_list} but admits [0] — used for the
    wide-operator stage-budget axis where [0] means "natural depth". *)

val check_positive_float_list :
  flag:string -> float list -> (float list, string) result
val validate_limits : limits -> (limits, string) result

type t

val create :
  ?cache:Cache.t ->
  ?config:Roccc_core.Pass.config ->
  ?trace:Trace.t ->
  ?limits:limits ->
  ?status_path:string ->
  unit ->
  t
(** The server value owns the metrics and may serve several request
    streams in sequence; metrics and cache persist across streams.
    [status_path], when given, is a file the server atomically rewrites
    with its {!health_json} after each drain and each health request —
    the farm supervisor aggregates these across children it cannot query
    directly. *)

val serve : t -> in_channel -> out_channel -> Metrics.snapshot
(** Serve one stream: spawn the workers, admit until EOF / a shutdown
    request / {!request_stop}, then drain — queued requests finish,
    workers join — and return the final metrics snapshot. *)

val serve_socket :
  ?poll_interval_s:float -> t -> Unix.file_descr -> Metrics.snapshot
(** Serve a listening socket concurrently: accept connections until a
    shutdown request (on any connection) or {!request_stop}, running a
    reader domain per connection over one shared queue and worker pool.
    On stop: stop accepting, nudge idle readers out of their blocked
    reads, answer everything already admitted from every connection,
    join workers, and return the final snapshot. [poll_interval_s]
    (default 0.05) bounds how long a stop request can go unnoticed while
    no client is connecting. *)

val request_stop : t -> unit
(** Ask the serve loop to stop admitting (async-signal-safe: sets an
    atomic flag; safe to call from a signal handler). *)

val stop_requested : t -> bool

val metrics : t -> Metrics.t

val health_json : t -> Json.t
(** The metrics snapshot a ["health"] request returns: request counters,
    latency percentiles, live queue depth/capacity, the worker pool
    (configured and effective counts plus per-worker response counts),
    cache statistics with a per-shard breakdown, and fault-injection
    counters. *)
