(** The single worker-pool abstraction behind every domain fan-out in
    the service stack: the batch scheduler ({!Scheduler.parallel_map},
    used by [batch] and [tune]) and the serve loop's queue workers both
    build on these two shapes instead of hand-rolling [Domain.spawn]
    arrays.

    Joins are exception-safe: every spawned domain is joined even when
    one raises, and the first exception is re-raised only afterwards. *)

val recommended : unit -> int
(** Hardware parallelism ([Domain.recommended_domain_count]), floored
    at 1. *)

val resolve : int -> int
(** [resolve n] is [n] for positive [n] and {!recommended} for [n <= 0]
    — the shared "[0] means auto" worker-count convention. *)

type t
(** A detached pool of spawned worker domains. *)

val spawn : workers:int -> (tid:int -> unit) -> t
(** [spawn ~workers body] starts [workers] domains, each running
    [body ~tid] with [tid] in [1..workers]; slot 0 is left to the
    calling domain (the serve loop's admission thread). Negative counts
    are treated as 0. The caller must eventually {!join}. *)

val join : t -> unit
(** Join every domain in the pool. If any body raised, the first
    exception is re-raised after all domains are joined. *)

val size : t -> int
(** Number of spawned domains. *)

type dynamic
(** A detached set of domains whose population is not known up front —
    the socket accept loop spawns one reader domain per accepted
    connection and joins whatever accumulated when the listener stops. *)

val dynamic : unit -> dynamic

val add : dynamic -> (unit -> unit) -> unit
(** Spawn one more domain into the set. *)

val spawned : dynamic -> int
(** Domains spawned into the set so far (joined or not). *)

val join_all : dynamic -> unit
(** Join every domain added so far. If any body raised, the first
    exception is re-raised after all domains are joined. *)

val run : workers:int -> (tid:int -> unit) -> unit
(** [run ~workers body] executes [body ~tid] once per worker slot
    [0..workers-1], the calling domain participating as tid 0 (so
    [workers = 1] spawns nothing and is plain sequential execution), and
    returns once every slot has finished — even if a body raised, in
    which case every remaining domain is still joined before the first
    exception propagates. *)
