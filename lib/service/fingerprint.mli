(** Content-addressed cache keys for compilation stage outputs. *)

type t = private string
(** A hex digest; equal fingerprints mean "same stage output". *)

val make :
  selection:string ->
  stage:string ->
  source:string ->
  entry:string ->
  options_fp:string ->
  luts:Roccc_hir.Lut_conv.table list ->
  t
(** Digest of everything that determines a stage's output. [options_fp]
    should be {!Roccc_core.Driver.front_options_fingerprint} for front-end
    stages and {!Roccc_core.Driver.options_fingerprint} for full results,
    so that back-end-only option changes still share front-end work.
    [selection] is the normalized pass selection
    ({!Roccc_core.Pass.selection_fingerprint}) — selection changes the
    generated artifact without changing any option field, so it must be
    part of a finished artifact's identity. *)

val seed :
  source:string -> entry:string -> luts:Roccc_hir.Lut_conv.table list -> t
(** The chain origin for per-pass keys: everything that determines the
    initial pipeline state of a compilation. *)

val chain : t -> pass:string -> options_fp:string -> t
(** [chain prev ~pass ~options_fp] is the key of the pipeline state after
    running [pass] (with its per-pass option fingerprint) on the state
    keyed by [prev]. *)

val to_hex : t -> string
(** The key as a filesystem-safe hex string. *)
