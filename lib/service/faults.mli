(** Deterministic fault injection for resilience testing.

    A plan maps named injection points to firing rates; each point's rate
    accumulator gains [rate] per {!trip} and fires ({!Injected}) each time
    it crosses 1 — every call at 1.0, every second call at 0.5, with no
    randomness, so a soak run injects exactly the same fault sequence
    every time. Install via [--inject-fault SPEC] or [ROCCC_FAULT=SPEC]
    where SPEC is ["point[:rate],..."], e.g.
    ["cache_read:0.5,driver_pass:0.1"]. *)

exception Injected of string
(** Raised at a firing fault point, carrying the point's name. *)

type t

val known_points : string list
(** The named injection points, in pipeline order: ["scheduler_claim"]
    (worker claims a request/job), ["driver_pass"] (every executed
    compiler pass), ["cache_read"] / ["cache_write"] (disk-cache I/O,
    where firing exercises the retry-then-degrade path). *)

val parse : string -> (t, string) result
(** Parse ["point[:rate],..."]; rates default to 1.0 and must lie in
    (0, 1]. Unknown points and duplicate entries are errors. *)

val install : t -> unit
(** Make the plan current for the whole process (all domains). *)

val clear : unit -> unit

val installed : unit -> t option

val env_var : string
(** ["ROCCC_FAULT"]. *)

val from_env : unit -> (t option, string) result
(** Parse {!env_var} if set ([Ok None] when unset or empty). *)

val trip : string -> unit
(** Mark a fault point: raises {!Injected} when an installed plan says
    this call fires; a no-op otherwise. *)

val counts : unit -> (string * int * int) list
(** Per-point (name, calls, fired) of the installed plan ([[]] if none) —
    the basis for "every fault point exercised" assertions. *)

val describe : exn -> string option
(** User-facing message for {!Injected}. *)
