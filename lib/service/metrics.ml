(* Serve metrics: monotonic request counters plus a bounded ring of
   response latencies, shared by the admission thread and the worker
   domains (all updates take the lock; reads snapshot consistently).
   Per-worker completion counts sit outside the lock in an atomic array
   — one slot per worker tid (slot 0 is the admission thread) — so the
   hot per-request bump never contends with a concurrent snapshot. *)

type t = {
  lock : Mutex.t;
  started_s : float;
  mutable received : int;
  mutable ok : int;
  mutable failed : int;
  mutable shed : int;
  mutable deadline : int;
  mutable bad_request : int;
  mutable health : int;
  mutable conns : int;        (* connections accepted (socket mode) *)
  mutable read_errors : int;  (* request-stream reads that failed *)
  mutable write_errors : int; (* responses lost to a dead connection *)
  samples : float array;   (* latency ring, milliseconds *)
  mutable n_samples : int; (* total ever observed (ring index basis) *)
  by_worker : int Atomic.t array;  (* responses per worker tid *)
}

let ring_capacity = 4096

let create ?(worker_slots = 0) () =
  { lock = Mutex.create ();
    started_s = Unix.gettimeofday ();
    received = 0;
    ok = 0;
    failed = 0;
    shed = 0;
    deadline = 0;
    bad_request = 0;
    health = 0;
    conns = 0;
    read_errors = 0;
    write_errors = 0;
    samples = Array.make ring_capacity 0.0;
    n_samples = 0;
    by_worker = Array.init (max 0 worker_slots) (fun _ -> Atomic.make 0) }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let incr_received t = locked t (fun () -> t.received <- t.received + 1)
let incr_ok t = locked t (fun () -> t.ok <- t.ok + 1)
let incr_failed t = locked t (fun () -> t.failed <- t.failed + 1)
let incr_shed t = locked t (fun () -> t.shed <- t.shed + 1)
let incr_deadline t = locked t (fun () -> t.deadline <- t.deadline + 1)
let incr_bad_request t = locked t (fun () -> t.bad_request <- t.bad_request + 1)
let incr_health t = locked t (fun () -> t.health <- t.health + 1)
let incr_conn t = locked t (fun () -> t.conns <- t.conns + 1)
let incr_read_error t = locked t (fun () -> t.read_errors <- t.read_errors + 1)

let incr_write_error t =
  locked t (fun () -> t.write_errors <- t.write_errors + 1)

let observe_ms t (ms : float) =
  locked t (fun () ->
      t.samples.(t.n_samples mod ring_capacity) <- ms;
      t.n_samples <- t.n_samples + 1)

let incr_worker t ~tid =
  if tid >= 0 && tid < Array.length t.by_worker then
    Atomic.incr t.by_worker.(tid)

let worker_counts t = Array.map Atomic.get t.by_worker

type snapshot = {
  s_uptime_s : float;
  s_received : int;
  s_ok : int;
  s_failed : int;
  s_shed : int;
  s_deadline : int;
  s_bad_request : int;
  s_health : int;
  s_conns : int;
  s_read_errors : int;
  s_write_errors : int;
  s_latency_count : int;  (** samples ever observed (ring keeps the last 4096) *)
  s_p50_ms : float;
  s_p95_ms : float;
  s_max_ms : float;
  s_by_worker : int array;  (* responses per worker tid (0 = admission) *)
}

(* Nearest-rank percentile over the sorted retained samples. *)
let percentile (sorted : float array) (q : float) : float =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let snapshot (t : t) : snapshot =
  locked t (fun () ->
      let kept = min t.n_samples ring_capacity in
      let sorted = Array.sub t.samples 0 kept in
      Array.sort Float.compare sorted;
      { s_uptime_s = Unix.gettimeofday () -. t.started_s;
        s_received = t.received;
        s_ok = t.ok;
        s_failed = t.failed;
        s_shed = t.shed;
        s_deadline = t.deadline;
        s_bad_request = t.bad_request;
        s_health = t.health;
        s_conns = t.conns;
        s_read_errors = t.read_errors;
        s_write_errors = t.write_errors;
        s_latency_count = t.n_samples;
        s_p50_ms = percentile sorted 0.50;
        s_p95_ms = percentile sorted 0.95;
        s_max_ms = (if kept = 0 then 0.0 else sorted.(kept - 1));
        s_by_worker = Array.map Atomic.get t.by_worker })
