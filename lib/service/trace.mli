(** Structured tracing: per-pass and per-job spans collected across worker
    domains (thread-safe), exported as Chrome [trace_event] JSON. *)

type arg = Int of int | Float of float | Str of string

type span = {
  sp_name : string;
  sp_cat : string;  (** ["pass"], ["job"], ... *)
  sp_tid : int;  (** worker slot *)
  sp_start_s : float;  (** absolute wall-clock seconds *)
  sp_dur_s : float;
  sp_args : (string * arg) list;
}

type t

val create : unit -> t

val add_span :
  t ->
  ?cat:string ->
  ?args:(string * arg) list ->
  tid:int ->
  name:string ->
  start_s:float ->
  dur_s:float ->
  unit ->
  unit

val spans : t -> span list
(** All spans, in chronological order. *)

(** A named value sampled over time (Chrome ["C"] events) — e.g. the
    serve loop's queue depth. *)
type counter = {
  c_name : string;
  c_tid : int;
  c_ts_s : float;  (** absolute wall-clock seconds, stamped at add time *)
  c_value : float;
}

val add_counter : t -> ?tid:int -> name:string -> value:float -> unit -> unit

val counters : t -> counter list
(** All counter samples, in chronological order. *)

(** A point in time worth a tick mark (Chrome ["i"] events) — a
    connection opening or closing, a farm child restarting. *)
type instant = {
  i_name : string;
  i_tid : int;
  i_ts_s : float;  (** absolute wall-clock seconds, stamped at add time *)
  i_args : (string * arg) list;
}

val add_instant :
  t -> ?tid:int -> ?args:(string * arg) list -> name:string -> unit -> unit

val instants : t -> instant list
(** All instant events, in chronological order. *)

val to_chrome_json : ?meta:(string * arg) list -> t -> string
(** The Chrome trace_event document: [{"traceEvents": [...], "meta": ...}].
    Load it at chrome://tracing or ui.perfetto.dev. [meta] carries
    batch-level summary values (wall time, cache hits, ...). *)

val pass_totals : t -> (string * int * float) list
(** Aggregate over ["pass"] spans: (pass name, run count, total seconds),
    hottest pass first. *)

val args_json : (string * arg) list -> string
(** Render an argument list as one JSON object (shared JSON helper). *)

val escape : string -> string
(** JSON string-body escaping (shared with {!Json}). *)
