(* Structured tracing for the batch service.

   Workers record one span per executed compiler pass (via the driver's
   instrument hook) and one per job; the collector renders them as Chrome
   trace_event JSON (load the file at chrome://tracing or ui.perfetto.dev)
   with a "meta" object carrying batch-level summary data — wall time,
   cache statistics, per-job outcomes. Everything is hand-rolled JSON: the
   repo deliberately has no json dependency. *)

type arg = Int of int | Float of float | Str of string

type span = {
  sp_name : string;
  sp_cat : string;            (* "pass" | "job" | ... *)
  sp_tid : int;               (* worker slot (0 = the calling domain) *)
  sp_start_s : float;         (* absolute wall-clock, seconds *)
  sp_dur_s : float;
  sp_args : (string * arg) list;
}

(* Counter ("C") events: a named value sampled over time — the serve
   loop's queue depth. Kept separate from spans so existing span
   consumers (pass_totals, the tests) see exactly what they always did. *)
type counter = {
  c_name : string;
  c_tid : int;
  c_ts_s : float;   (* absolute wall-clock, seconds *)
  c_value : float;
}

(* Instant ("i") events: a point in time worth a tick mark in the viewer
   — a connection opening or closing, a farm child restarting. *)
type instant = {
  i_name : string;
  i_tid : int;
  i_ts_s : float;  (* absolute wall-clock, seconds *)
  i_args : (string * arg) list;
}

type t = {
  lock : Mutex.t;
  mutable spans : span list;  (* newest first *)
  mutable counters : counter list;  (* newest first *)
  mutable instants : instant list;  (* newest first *)
}

let create () =
  { lock = Mutex.create (); spans = []; counters = []; instants = [] }

let add_span t ?(cat = "pass") ?(args = []) ~tid ~name ~start_s ~dur_s () =
  let sp =
    { sp_name = name; sp_cat = cat; sp_tid = tid; sp_start_s = start_s;
      sp_dur_s = dur_s; sp_args = args }
  in
  Mutex.lock t.lock;
  t.spans <- sp :: t.spans;
  Mutex.unlock t.lock

let add_counter t ?(tid = 0) ~name ~value () =
  let c =
    { c_name = name; c_tid = tid; c_ts_s = Unix.gettimeofday ();
      c_value = value }
  in
  Mutex.lock t.lock;
  t.counters <- c :: t.counters;
  Mutex.unlock t.lock

let add_instant t ?(tid = 0) ?(args = []) ~name () =
  let i =
    { i_name = name; i_tid = tid; i_ts_s = Unix.gettimeofday ();
      i_args = args }
  in
  Mutex.lock t.lock;
  t.instants <- i :: t.instants;
  Mutex.unlock t.lock

let spans t =
  Mutex.lock t.lock;
  let s = t.spans in
  Mutex.unlock t.lock;
  List.sort (fun a b -> Float.compare a.sp_start_s b.sp_start_s) s

let counters t =
  Mutex.lock t.lock;
  let c = t.counters in
  Mutex.unlock t.lock;
  List.sort (fun a b -> Float.compare a.c_ts_s b.c_ts_s) c

let instants t =
  Mutex.lock t.lock;
  let i = t.instants in
  Mutex.unlock t.lock;
  List.sort (fun a b -> Float.compare a.i_ts_s b.i_ts_s) i

(* ---- JSON rendering ---- *)

let escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let arg_json = function
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_finite f then Printf.sprintf "%.6g" f else "null"
  | Str s -> Printf.sprintf "\"%s\"" (escape s)

let args_json (args : (string * arg) list) : string =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (arg_json v)) args)
  ^ "}"

(* Complete ("X") events, microsecond timestamps relative to the earliest
   span so the numbers stay small and the viewer starts at zero. *)
let span_json ~t0 (sp : span) : string =
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.1f,\"dur\":%.1f,\"args\":%s}"
    (escape sp.sp_name) (escape sp.sp_cat) sp.sp_tid
    ((sp.sp_start_s -. t0) *. 1e6)
    (sp.sp_dur_s *. 1e6)
    (args_json sp.sp_args)

let counter_json ~t0 (c : counter) : string =
  Printf.sprintf
    "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"ts\":%.1f,\"args\":%s}"
    (escape c.c_name) c.c_tid
    ((c.c_ts_s -. t0) *. 1e6)
    (args_json [ "value", Float c.c_value ])

let instant_json ~t0 (i : instant) : string =
  Printf.sprintf
    "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%.1f,\"args\":%s}"
    (escape i.i_name) i.i_tid
    ((i.i_ts_s -. t0) *. 1e6)
    (args_json i.i_args)

let to_chrome_json ?(meta = []) (t : t) : string =
  let ss = spans t in
  let cs = counters t in
  let is = instants t in
  let t0 =
    let min3 a b = match a, b with
      | Some a, Some b -> Some (Float.min a b)
      | (Some _ as s), None | None, (Some _ as s) -> s
      | None, None -> None
    in
    let first f = function [] -> None | x :: _ -> Some (f x) in
    Option.value
      (min3
         (min3 (first (fun sp -> sp.sp_start_s) ss)
            (first (fun c -> c.c_ts_s) cs))
         (first (fun i -> i.i_ts_s) is))
      ~default:0.0
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (span_json ~t0 sp))
    ss;
  List.iteri
    (fun i c ->
      if i > 0 || ss <> [] then Buffer.add_string buf ",\n";
      Buffer.add_string buf (counter_json ~t0 c))
    cs;
  List.iteri
    (fun i ev ->
      if i > 0 || ss <> [] || cs <> [] then Buffer.add_string buf ",\n";
      Buffer.add_string buf (instant_json ~t0 ev))
    is;
  Buffer.add_string buf "\n],\n\"displayTimeUnit\":\"ms\",\n\"meta\":";
  Buffer.add_string buf (args_json meta);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Per-pass aggregate: pass name -> (count, total seconds), hottest first. *)
let pass_totals (t : t) : (string * int * float) list =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun sp ->
      if String.equal sp.sp_cat "pass" then begin
        let n, s =
          Option.value (Hashtbl.find_opt tbl sp.sp_name) ~default:(0, 0.0)
        in
        Hashtbl.replace tbl sp.sp_name (n + 1, s +. sp.sp_dur_s)
      end)
    (spans t);
  Hashtbl.fold (fun name (n, s) acc -> (name, n, s) :: acc) tbl []
  |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a)
