(* Minimal JSON for the serve protocol: values, a recursive-descent
   parser with byte offsets in its errors, and a compact one-line
   printer. Hand-rolled on purpose — the repo deliberately carries no
   JSON dependency (see trace.ml), and the protocol needs only this. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- constructors / accessors ---- *)

let int (i : int) : t = Num (float_of_int i)

let member (key : string) (j : t) : t option =
  match j with Obj fields -> List.assoc_opt key fields | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_float_opt = function Num v -> Some v | _ -> None

let to_int_opt = function
  | Num v when Float.is_integer v && Float.abs v <= 1e15 ->
    Some (int_of_float v)
  | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None

(* ---- printing ---- *)

let rec add_value buf (j : t) : unit =
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v ->
    if not (Float.is_finite v) then Buffer.add_string buf "null"
    else if Float.is_integer v && Float.abs v < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.0f" v)
    else Buffer.add_string buf (Printf.sprintf "%.12g" v)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (Trace.escape s);
    Buffer.add_char buf '"'
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        add_value buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (Trace.escape k);
        Buffer.add_string buf "\":";
        add_value buf v)
      fields;
    Buffer.add_char buf '}'

let to_string (j : t) : string =
  let buf = Buffer.create 256 in
  add_value buf j;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Parse of string * int  (* message, byte offset *)

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Parse (m, !pos))) fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos else fail "expected '%c'" c
  in
  let keyword word v =
    let len = String.length word in
    if !pos + len <= n && String.equal (String.sub s !pos len) word then begin
      pos := !pos + len;
      v
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      incr pos;
      if Char.equal c '"' then Buffer.contents buf
      else if Char.equal c '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        incr pos;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          (if !pos + 4 > n then fail "truncated \\u escape");
          let hex = String.sub s !pos 4 in
          (* validate the 4 chars as hex digits by hand: int_of_string
             would also accept OCaml numeric-literal underscores, so
             "\u0_41" must not sneak through as "A" *)
          let is_hex = function
            | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
            | _ -> false
          in
          if not (String.for_all is_hex hex) then
            fail "bad \\u escape %S" hex;
          pos := !pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | None -> fail "bad \\u escape %S" hex
          | Some code ->
            (* UTF-8 encode the BMP code point (surrogate halves come out
               as individual 3-byte sequences — good enough here) *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf
                (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end)
        | c -> fail "bad escape \\%c" c);
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    (* each digit run must be non-empty: JSON forbids "-", "1." and
       "1e" even though float_of_string would accept some of them *)
    let digits what =
      let seen = ref 0 in
      while
        match peek () with Some '0' .. '9' -> true | _ -> false
      do
        incr pos;
        incr seen
      done;
      if !seen = 0 then fail "expected %s digits" what
    in
    digits "integer";
    if peek () = Some '.' then begin
      incr pos;
      digits "fraction"
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      incr pos;
      (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
      digits "exponent"
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some v when Float.is_finite v -> Num v
    | Some _ | None -> fail "bad number %S" text
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elements (v :: acc)
          | Some ']' ->
            incr pos;
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> keyword "true" (Bool true)
    | Some 'f' -> keyword "false" (Bool false)
    | Some 'n' -> keyword "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character %C" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing input after value";
    v
  with
  | v -> Ok v
  | exception Parse (msg, at) ->
    Error (Printf.sprintf "%s at offset %d" msg at)
