(* Content-addressed cache keys: a stage output is identified by a digest
   of everything that determines it — the C source, the entry function,
   the (stage-relevant) compile options, the registered lookup tables and
   the stage name. Two jobs with equal fingerprints may share one cached
   result; any changed input changes the digest. *)

module Lut_conv = Roccc_hir.Lut_conv
module Ast = Roccc_cfront.Ast

type t = string

let kind_part (k : Ast.ikind) =
  Printf.sprintf "%c%d" (if k.Ast.signed then 's' else 'u') k.Ast.bits

(* A table's identity is its name, kinds and full contents — a user table
   rebuilt with different values must miss the cache. *)
let lut_part (t : Lut_conv.table) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf t.Lut_conv.lut_name;
  Buffer.add_char buf ':';
  Buffer.add_string buf (kind_part t.Lut_conv.in_kind);
  Buffer.add_string buf (kind_part t.Lut_conv.out_kind);
  Buffer.add_string buf (if t.Lut_conv.preexisting then "p" else "-");
  Array.iter
    (fun v ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (Int64.to_string v))
    t.Lut_conv.contents;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let make ~(selection : string) ~(stage : string) ~(source : string)
    ~(entry : string) ~(options_fp : string) ~(luts : Lut_conv.table list) :
    t =
  let parts =
    [ "roccc-cache-v3"; stage; entry; options_fp; selection;
      Digest.to_hex (Digest.string source) ]
    @ List.map lut_part luts
  in
  Digest.to_hex (Digest.string (String.concat "\x00" parts))

(* Per-pass chained keys: the key after pass N is a digest of the key
   after pass N-1, the pass name and that pass's own option fingerprint.
   Equal chains mean "same pipeline state" — a back-end option sweep keeps
   every mid-end chain link equal, so all mid-end states are shared. *)

let seed ~(source : string) ~(entry : string)
    ~(luts : Lut_conv.table list) : t =
  let parts =
    [ "roccc-cache-v3"; "seed"; entry;
      Digest.to_hex (Digest.string source) ]
    @ List.map lut_part luts
  in
  Digest.to_hex (Digest.string (String.concat "\x00" parts))

let chain (prev : t) ~(pass : string) ~(options_fp : string) : t =
  Digest.to_hex
    (Digest.string (String.concat "\x00" [ prev; pass; options_fp ]))

let to_hex (t : t) : string = t
