(** Process networks: chains of kernels compiled into a network of
    datapaths connected by sized FIFO channels — smart buffer feeding
    smart buffer with no round-trip through off-chip memory (after
    Alias et al., "Improving Communication Patterns in Polyhedral
    Process Networks").

    A network comes from the front end's top-level composition form

      pipeline name = stageA -> stageB -> ... ;

    Each stage is an ordinary ROCCC kernel, compiled independently
    (cached per-kernel through the service's per-pass cache and fanned
    over the domain scheduler); the network layer then

    - validates the streaming shape (1-D single-window stages, array
      outputs, matching element counts across each channel),
    - sizes each FIFO from static producer/consumer rate analysis of
      the adjacent smart-buffer access patterns,
    - co-simulates all engines cycle by cycle with FIFO backpressure
      (full -> producer stalls, empty -> consumer stalls), and
    - proves the network output equals the sequential composition of
      the per-kernel software models. *)

module Driver = Roccc_core.Driver
module Pass = Roccc_core.Pass
module Service = Roccc_service.Service
module Scheduler = Roccc_service.Scheduler
module Engine = Roccc_hw.Engine
module Fifo = Roccc_buffers.Fifo
module K = Roccc_hir.Kernel
module Lut_conv = Roccc_hir.Lut_conv
module Ast = Roccc_cfront.Ast
module Parser = Roccc_cfront.Parser
module Interp = Roccc_cfront.Interp
module Pipeline = Roccc_datapath.Pipeline
module Library = Roccc_vhdl.Library
module Proc = Roccc_vm.Proc

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Network description                                                 *)
(* ------------------------------------------------------------------ *)

(** One compiled stage with its streaming shape. *)
type stage = {
  sg_name : string;              (** kernel entry function *)
  sg_compiled : Driver.compiled;
  sg_in_array : string;          (** the window input array *)
  sg_out_array : string;         (** the (single) output array *)
  sg_elements_in : int;
  sg_elements_out : int;
  sg_rate_out : int;             (** array elements produced per launch *)
  sg_intake : int;               (** elements accepted per cycle (bus) *)
  sg_latency : int;              (** pipeline latency in cycles *)
}

(** A sized channel between stage [i] and stage [i+1]. *)
type channel = {
  ch_name : string;
  ch_elements : int;             (** total elements streamed through *)
  ch_depth : int;                (** sized FIFO depth *)
  ch_min_depth : int;            (** the rate-analysis lower bound *)
  ch_producer_rate : int;
  ch_consumer_intake : int;
  ch_producer_latency : int;
}

type t = {
  net_name : string;
  net_stages : stage list;       (** upstream first *)
  net_channels : channel list;   (** one per adjacent stage pair *)
}

(* ------------------------------------------------------------------ *)
(* Front end: the composition form                                     *)
(* ------------------------------------------------------------------ *)

(** Pipeline declarations of a source file, in order. *)
let pipelines_of_source (source : string) : Ast.pipeline_decl list =
  let program =
    try Parser.parse_program source
    with Parser.Error (msg, line, col) ->
      errf "parse error at %d:%d: %s" line col msg
  in
  program.Ast.pipelines

let find_pipeline ~(name : string) (source : string) : Ast.pipeline_decl =
  match
    List.find_opt
      (fun (pl : Ast.pipeline_decl) -> String.equal pl.Ast.pl_name name)
      (pipelines_of_source source)
  with
  | Some pl -> pl
  | None -> errf "no pipeline named %s in the source" name

(* ------------------------------------------------------------------ *)
(* Rate analysis and FIFO sizing                                       *)
(* ------------------------------------------------------------------ *)

(* Minimum safe depth for a channel. The producer's launches are gated
   by credit: a launch needs space for the results of every in-flight
   iteration plus its own, so with up to [latency] iterations in flight
   at one launch per cycle the producer runs stall-free only when the
   channel can hold (latency + 1) bursts of [rate] elements; one extra
   consumer bus worth covers the pop granularity. Anything deeper than
   the whole intermediate array is wasted registers, so the bound is
   capped at [elements] (a full double buffer of the array). *)
let min_depth ~(rate : int) ~(latency : int) ~(intake : int)
    ~(elements : int) : int =
  min elements ((rate * (latency + 1)) + intake)

(* ------------------------------------------------------------------ *)
(* Stage validation                                                    *)
(* ------------------------------------------------------------------ *)

(* The streaming shapes the network supports: a 1-D single-window kernel
   whose array outputs all land in one output array. Elements cross a
   channel in row-major order, which is exactly the order the producer's
   output address generator would have written them and the order the
   consumer's smart buffer expects them. *)
let stage_of_compiled ~(name : string) (c : Driver.compiled) : stage =
  let k = c.Driver.kernel in
  let w =
    match k.K.windows with
    | [ w ] -> w
    | [] -> errf "stage %s: a network stage needs an array input" name
    | _ -> errf "stage %s: network stages take exactly one input array" name
  in
  (match w.K.win_dims with
  | [ _ ] -> ()
  | _ -> errf "stage %s: network stages stream 1-D arrays only" name);
  (match k.K.loops with
  | [ _ ] -> ()
  | [] -> errf "stage %s: network stages need a loop" name
  | _ -> errf "stage %s: network stages are single-loop kernels" name);
  let array_outputs =
    List.filter_map
      (fun (o : K.output) ->
        match o.K.target with
        | K.Out_array { arr; dims; _ } -> Some (arr, dims)
        | K.Out_scalar _ -> None)
      k.K.outputs
  in
  let out_array, out_dims =
    match array_outputs with
    | [] -> errf "stage %s: a network stage needs an array output" name
    | (arr, dims) :: rest ->
      List.iter
        (fun (arr', _) ->
          if not (String.equal arr arr') then
            errf "stage %s: network stages write one output array (%s vs %s)"
              name arr arr')
        rest;
      arr, dims
  in
  (match out_dims with
  | [ _ ] -> ()
  | _ -> errf "stage %s: network stages stream 1-D arrays only" name);
  { sg_name = name;
    sg_compiled = c;
    sg_in_array = w.K.win_array;
    sg_out_array = out_array;
    sg_elements_in = List.fold_left ( * ) 1 w.K.win_dims;
    sg_elements_out = List.fold_left ( * ) 1 out_dims;
    sg_rate_out = List.length array_outputs;
    sg_intake = c.Driver.options.Driver.bus_elements;
    sg_latency = Pipeline.latency c.Driver.pipeline }

let link_channels (stages : stage list) : channel list =
  let rec go acc = function
    | p :: (cns :: _ as rest) ->
      if p.sg_elements_out <> cns.sg_elements_in then
        errf
          "channel %s -> %s: the producer streams %d elements but the \
           consumer expects %d"
          p.sg_name cns.sg_name p.sg_elements_out cns.sg_elements_in;
      let depth =
        min_depth ~rate:p.sg_rate_out ~latency:p.sg_latency
          ~intake:cns.sg_intake ~elements:p.sg_elements_out
      in
      let ch =
        { ch_name = Printf.sprintf "%s->%s" p.sg_name cns.sg_name;
          ch_elements = p.sg_elements_out;
          ch_depth = depth;
          ch_min_depth = depth;
          ch_producer_rate = p.sg_rate_out;
          ch_consumer_intake = cns.sg_intake;
          ch_producer_latency = p.sg_latency }
      in
      go (ch :: acc) rest
    | [ _ ] | [] -> List.rev acc
  in
  go [] stages

(* ------------------------------------------------------------------ *)
(* Planning: compile every stage, then link them                       *)
(* ------------------------------------------------------------------ *)

(* Compile one stage. With a cache the mid end resumes from the deepest
   cached per-pass state (exactly like a service compile) and only the
   back end runs fresh; without one it is a plain driver compile. *)
let compile_stage ?cache ?config ~options ~luts ~source ~tid entry :
    Driver.compiled =
  match cache with
  | None -> Driver.compile ?config ~options ~luts ~entry source
  | Some _ ->
    let base_config =
      match config with Some c -> c | None -> Pass.default_config ()
    in
    let job = { Service.label = entry; source; entry; options; luts } in
    let st, _, _ =
      Service.run_mid_end ?cache ~base_config ~config:base_config ~tid job
    in
    Driver.back_end ~config:base_config ~options (Driver.staged_of_state st)

(** Build a network plan for pipeline [name] of [source]: compile every
    stage (fanned out over the domain scheduler, per-pass cached when
    [cache] is given), validate the streaming shapes and size the
    channels. [stage_options] overrides the compile options per stage
    name (e.g. to unroll only the producer). *)
let plan ?cache ?config ?(options = Driver.default_options)
    ?(stage_options = []) ?(luts = []) ?(jobs = 0) ~(name : string)
    (source : string) : t =
  let pl = find_pipeline ~name source in
  let eligible = Driver.eligible_entries source in
  List.iter
    (fun s ->
      if not (List.mem s eligible) then
        errf "pipeline %s: stage %s is not a kernel in this source" name s)
    pl.Ast.pl_stages;
  let opts_of s =
    match List.assoc_opt s stage_options with
    | Some o -> o
    | None -> options
  in
  let entries = Array.of_list pl.Ast.pl_stages in
  let compiled =
    Scheduler.parallel_map ~num_domains:jobs
      ~describe_error:Service.describe_error
      ~f:(fun ~tid entry ->
        compile_stage ?cache ?config ~options:(opts_of entry) ~luts ~source
          ~tid entry)
      entries
  in
  let stages =
    Array.to_list
      (Array.mapi
         (fun i r ->
           match r with
           | Ok c -> stage_of_compiled ~name:entries.(i) c
           | Error msg -> errf "stage %s: %s" entries.(i) msg)
         compiled)
  in
  { net_name = name; net_stages = stages; net_channels = link_channels stages }

(* ------------------------------------------------------------------ *)
(* Multi-engine co-simulation                                          *)
(* ------------------------------------------------------------------ *)

type channel_stats = {
  cs_name : string;
  cs_depth : int;
  cs_min_depth : int;
  cs_high_water : int;           (** max occupancy observed *)
  cs_pushed : int;               (** total elements through the channel *)
  cs_full_stalls : int;          (** producer cycles blocked on space *)
  cs_empty_stalls : int;         (** consumer cycles blocked on data *)
}

type sim_result = {
  nr_cycles : int;               (** network cycles until the last retire *)
  nr_output_arrays : (string * int64 array) list;  (** final stage *)
  nr_scalar_outputs : (string * int64) list;       (** final stage *)
  nr_stage_results : (string * Engine.result) list;
  nr_channels : channel_stats list;
}

(** Step every engine of the network once per cycle until all are done.
    Engines are stepped downstream-first, so an element pushed into a
    channel this cycle is visible to its consumer on the next one — one
    cycle of channel latency, like the registered FIFO it models.
    [depths] overrides the sized depth per channel (for what-if and
    stress runs); a depth below the producer's burst size deadlocks and
    is rejected. *)
let simulate ?(scalars = []) ?(arrays = []) ?depths
    ?(max_cycles = 4_000_000) (net : t) : sim_result =
  let depth_of i (ch : channel) =
    match depths with
    | Some ds when i < List.length ds -> List.nth ds i
    | _ -> ch.ch_depth
  in
  let fifos =
    List.mapi
      (fun i (ch : channel) ->
        let depth = depth_of i ch in
        if depth < ch.ch_producer_rate then
          errf
            "channel %s: depth %d cannot hold one %d-element burst \
             (deadlock)"
            ch.ch_name depth ch.ch_producer_rate;
        Fifo.create ~name:ch.ch_name ~depth)
      net.net_channels
  in
  let n = List.length net.net_stages in
  let engines =
    List.mapi
      (fun i (sg : stage) ->
        let c = sg.sg_compiled in
        let luts = List.map Lut_conv.interp_binding c.Driver.luts in
        let feeds =
          if i = 0 then []
          else [ sg.sg_in_array, Engine.Feed_fifo (List.nth fifos (i - 1)) ]
        in
        let sink =
          if i = n - 1 then Engine.Sink_bram
          else Engine.Sink_fifo (List.nth fifos i)
        in
        let scalars =
          List.filter
            (fun (nm, _) ->
              List.exists
                (fun (p : Ast.param) -> String.equal p.Ast.pname nm)
                c.Driver.kernel.K.scalar_inputs)
            scalars
        in
        try
          Engine.create ~luts ~scalars ~arrays
            ~bus_elements:c.Driver.options.Driver.bus_elements ~feeds ~sink
            c.Driver.kernel ~dp:c.Driver.dp ~pipeline:c.Driver.pipeline
        with Engine.Error msg -> errf "stage %s: %s" sg.sg_name msg)
      net.net_stages
  in
  (* downstream-first stepping order *)
  let stepping = List.rev engines in
  let cycle = ref 0 in
  (try
     while
       (not (List.for_all Engine.is_done engines)) && !cycle < max_cycles
     do
       incr cycle;
       List.iter Engine.step stepping
     done
   with Engine.Error msg -> errf "network %s: %s" net.net_name msg);
  if not (List.for_all Engine.is_done engines) then begin
    let progress =
      String.concat ", "
        (List.map2
           (fun (sg : stage) e ->
             Printf.sprintf "%s %d/%d" sg.sg_name (Engine.retired e)
               (Engine.total_launches e))
           net.net_stages engines)
    in
    errf "network %s: cycle budget exhausted after %d cycles (%s)"
      net.net_name !cycle progress
  end;
  let stage_results =
    List.map2
      (fun (sg : stage) e -> sg.sg_name, Engine.result e)
      net.net_stages engines
  in
  let last = snd (List.nth stage_results (n - 1)) in
  { nr_cycles = !cycle;
    nr_output_arrays = last.Engine.output_arrays;
    nr_scalar_outputs = last.Engine.scalar_outputs;
    nr_stage_results = stage_results;
    nr_channels =
      List.map2
        (fun (ch : channel) (f : Fifo.t) ->
          { cs_name = ch.ch_name;
            cs_depth = f.Fifo.depth;
            cs_min_depth = ch.ch_min_depth;
            cs_high_water = f.Fifo.high_water;
            cs_pushed = f.Fifo.pushed;
            cs_full_stalls = f.Fifo.full_stalls;
            cs_empty_stalls = f.Fifo.empty_stalls })
        net.net_channels fifos }

(* ------------------------------------------------------------------ *)
(* Sequential composition (the software reference)                     *)
(* ------------------------------------------------------------------ *)

(** Run the kernels one after another through the C interpreter, each
    stage's output array renamed into the next stage's input array —
    the semantics the network must reproduce. Returns the last stage's
    outcome. *)
let sequential ?(scalars = []) ?(arrays = []) (net : t) : Interp.outcome =
  let rec go input = function
    | [] -> errf "network %s has no stages" net.net_name
    | [ (last : stage) ] -> Driver.interpret ~scalars ~arrays:input last.sg_compiled
    | (s : stage) :: ((next : stage) :: _ as rest) ->
      let o = Driver.interpret ~scalars ~arrays:input s.sg_compiled in
      let out =
        match List.assoc_opt s.sg_out_array o.Interp.arrays with
        | Some a -> a
        | None ->
          errf "stage %s never wrote its output array %s" s.sg_name
            s.sg_out_array
      in
      go [ next.sg_in_array, out ] rest
  in
  go arrays net.net_stages

(** Co-simulation check for the whole network: the multi-engine run's
    final output must be byte-identical to the sequential composition
    of the per-kernel software models. Returns the diff report
    ([] when equivalent). *)
let verify ?(scalars = []) ?(arrays = []) ?depths (net : t) : string list =
  let hw = simulate ~scalars ~arrays ?depths net in
  let sw = sequential ~scalars ~arrays net in
  let diffs = ref [] in
  List.iter
    (fun (name, hw_data) ->
      match List.assoc_opt name sw.Interp.arrays with
      | Some sw_data ->
        if Array.length hw_data <> Array.length sw_data then
          diffs :=
            !diffs
            @ [ Printf.sprintf "%s: hw has %d elements, sw %d" name
                  (Array.length hw_data) (Array.length sw_data) ]
        else
          Array.iteri
            (fun i v ->
              if not (Int64.equal v sw_data.(i)) then
                diffs :=
                  !diffs
                  @ [ Printf.sprintf "%s[%d]: hw=%Ld sw=%Ld" name i v
                        sw_data.(i) ])
            hw_data
      | None -> diffs := !diffs @ [ Printf.sprintf "missing sw array %s" name ])
    hw.nr_output_arrays;
  List.iter
    (fun (name, v) ->
      match List.assoc_opt name sw.Interp.pointer_outputs with
      | Some sv when Int64.equal v sv -> ()
      | Some sv ->
        diffs := !diffs @ [ Printf.sprintf "%s: hw=%Ld sw=%Ld" name v sv ]
      | None -> diffs := !diffs @ [ Printf.sprintf "missing sw scalar %s" name ])
    hw.nr_scalar_outputs;
  !diffs

(* ------------------------------------------------------------------ *)
(* VHDL top level                                                      *)
(* ------------------------------------------------------------------ *)

(** The network top level: every stage's Figure 2 system entity chained
    through [roccc_fifo] channel instances of the sized depths. *)
let network_vhdl (net : t) : string =
  let stages =
    List.map
      (fun (sg : stage) ->
        let c = sg.sg_compiled in
        let w = List.hd c.Driver.kernel.K.windows in
        { Library.ns_entity = c.Driver.proc.Proc.pname;
          ns_element_bits = w.K.win_kind.Ast.bits;
          ns_out_ports =
            List.filter_map
              (fun (o : K.output) ->
                match o.K.target with
                | K.Out_array _ -> Some (o.K.port, o.K.port_kind.Ast.bits)
                | K.Out_scalar _ -> None)
              c.Driver.kernel.K.outputs })
      net.net_stages
  in
  Library.network_wrapper_vhdl ~name:net.net_name ~stages
    ~fifo_depths:(List.map (fun (ch : channel) -> ch.ch_depth) net.net_channels)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* The two-kernel gallery network (examples/stream.c)                  *)
(* ------------------------------------------------------------------ *)

let gallery_pipeline = "firsmooth"

(** The gallery network used by the tests, the bench, and the golden
    dump: the paper's 5-tap FIR feeding a 3-tap smoothing kernel
    (kept in sync with [examples/stream.c]). *)
let gallery_source =
  "void fir(int A[20], int C[16]) {\n\
  \  int i;\n\
  \  for (i = 0; i < 16; i = i + 1) {\n\
  \    C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];\n\
  \  }\n\
   }\n\
   \n\
   void smooth(int D[16], int E[14]) {\n\
  \  int i;\n\
  \  for (i = 0; i < 14; i = i + 1) {\n\
  \    E[i] = (D[i] + 2*D[i+1] + D[i+2]) >> 2;\n\
  \  }\n\
   }\n\
   \n\
   pipeline firsmooth = fir -> smooth;\n"

let gallery_arrays () =
  [ "A", Array.init 20 (fun i -> Int64.of_int ((7 * i) - 40 + (i * i mod 13))) ]

let describe (net : t) : string =
  let b = Buffer.create 256 in
  Printf.bprintf b "pipeline %s = %s\n" net.net_name
    (String.concat " -> "
       (List.map (fun (s : stage) -> s.sg_name) net.net_stages));
  List.iter
    (fun (ch : channel) ->
      Printf.bprintf b
        "  fifo %-24s depth %3d (rate %d/launch, latency %d, intake \
         %d/cycle; full buffer would be %d)\n"
        ch.ch_name ch.ch_depth ch.ch_producer_rate ch.ch_producer_latency
        ch.ch_consumer_intake ch.ch_elements)
    net.net_channels;
  Buffer.contents b
