(** Deterministic integer id generators.

    Every IR in the compiler (virtual registers, CFG blocks, datapath nodes,
    VHDL signals) needs fresh ids. A generator is a value, not global state,
    so independent compilations are reproducible.

    Any generator that nonetheless must outlive one compilation (a
    long-lived counter) is required to be {!register}ed; the pass manager
    calls {!reset_registered} at the start of every compilation
    ([Pass.initial]) so repeated compiles in one process — and cache
    replays — produce byte-identical IR and VHDL. The registry is
    domain-local: a batch worker resets only its own generators, never
    another domain's mid-compilation. All generators in the compiler today
    are function-local or per-procedure; the registry is the guard that
    keeps any future long-lived counter deterministic too. *)

type t = { mutable next : int; start : int }

(* Domain-local registry of long-lived generators, reset at the start of
   every compilation. Registration is rare (normally never); keeping the
   registry per-domain means concurrent batch workers cannot reset each
   other's generators. *)
let registry : t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let create ?(start = 0) () = { next = start; start }

let register t =
  let r = Domain.DLS.get registry in
  if not (List.memq t !r) then r := t :: !r

let fresh t =
  let id = t.next in
  t.next <- t.next + 1;
  id

let peek t = t.next

let reset t = t.next <- t.start

let reset_registered () = List.iter reset !(Domain.DLS.get registry)
