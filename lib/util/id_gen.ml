(** Deterministic integer id generators.

    Every IR in the compiler (virtual registers, CFG blocks, datapath nodes,
    VHDL signals) needs fresh ids. A generator is a value, not global state,
    so independent compilations are reproducible.

    Any generator that nonetheless must outlive one compilation (a
    process-wide counter) is required to be {!register}ed; the driver calls
    {!reset_registered} at the start of every compilation so repeated
    compiles in one process — and cache replays — produce byte-identical IR
    and VHDL. All generators in the compiler today are function-local or
    per-procedure; the registry is the guard that keeps any future global
    counter deterministic too. *)

type t = { mutable next : int; start : int }

(* Process-wide generators, reset at the start of every compilation.
   Registration is rare (normally never) but must be safe from any domain. *)
let registry : t list ref = ref []
let registry_lock = Mutex.create ()

let create ?(start = 0) () = { next = start; start }

let register t =
  Mutex.lock registry_lock;
  if not (List.memq t !registry) then registry := t :: !registry;
  Mutex.unlock registry_lock

let fresh t =
  let id = t.next in
  t.next <- t.next + 1;
  id

let peek t = t.next

let reset t = t.next <- t.start

let reset_registered () =
  Mutex.lock registry_lock;
  let gens = !registry in
  Mutex.unlock registry_lock;
  List.iter reset gens
