(** Deterministic integer id generators. *)

type t

val create : ?start:int -> unit -> t
(** [create ()] makes a generator starting at [start] (default 0). *)

val fresh : t -> int
(** [fresh t] returns the next id and advances the generator. *)

val peek : t -> int
(** [peek t] is the id the next [fresh] call would return. *)

val reset : t -> unit
(** [reset t] restarts the generator at its start value. *)

val register : t -> unit
(** Enroll a long-lived generator in the calling domain's reset registry.
    Generators should normally be function-local values; any generator that
    outlives one compilation must be registered so {!reset_registered}
    restores it between compilations, keeping repeated compiles
    byte-identical. The registry is domain-local, so parallel batch
    workers cannot reset each other's generators. *)

val reset_registered : unit -> unit
(** Reset every generator registered in the calling domain to its start
    value. The pass manager calls this at the start of each compilation
    (from [Pass.initial]). *)
