(** Deterministic integer id generators. *)

type t

val create : ?start:int -> unit -> t
(** [create ()] makes a generator starting at [start] (default 0). *)

val fresh : t -> int
(** [fresh t] returns the next id and advances the generator. *)

val peek : t -> int
(** [peek t] is the id the next [fresh] call would return. *)

val reset : t -> unit
(** [reset t] restarts the generator at its start value. *)

val register : t -> unit
(** Enroll a process-wide generator in the reset registry. Generators
    should normally be function-local values; any generator that outlives
    one compilation must be registered so {!reset_registered} restores it
    between compilations, keeping repeated compiles byte-identical. *)

val reset_registered : unit -> unit
(** Reset every registered generator to its start value. The driver calls
    this at the start of each compilation. *)
