(** Packed bit-vectors over a fixed interned universe [\[0, length)] — the
    substrate of the bit-vector data-flow engine. All meet/transfer
    operators run whole native words at a time; the in-place operators
    report whether the destination changed, which is exactly what a
    worklist solver needs to decide what to requeue. *)

type t

val word_bits : int
(** Facts per machine word ([Sys.int_size]). *)

val create : int -> t
(** [create n] is the empty set over the universe [\[0, n)]. *)

val length : t -> int
(** The universe size the set was created with. *)

val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool

val clear_all : t -> unit
val fill_all : t -> unit
(** Make the set empty / equal to the whole universe. *)

val copy : t -> t

val blit : src:t -> dst:t -> unit
(** Overwrite [dst] with [src]. Both must share a universe size. *)

val union_into : dst:t -> t -> bool
(** [dst <- dst ∪ src]; returns whether [dst] changed. *)

val inter_into : dst:t -> t -> bool
(** [dst <- dst ∩ src]; returns whether [dst] changed. *)

val diff_into : dst:t -> t -> bool
(** [dst <- dst \ src]; returns whether [dst] changed. *)

val equal : t -> t -> bool
val is_empty : t -> bool
val cardinal : t -> int

val iter : (int -> unit) -> t -> unit
(** Visit set members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t
val to_string : t -> string
