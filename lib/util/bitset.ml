(* Packed bit-vectors over a fixed interned universe [0, length) — the
   Machine-SUIF bit-vector substrate the data-flow engine runs on. One
   OCaml native int carries [word_bits] facts; all the data-flow meet and
   transfer operators are in-place whole-word loops, and the mutating set
   operators report whether anything changed so a worklist solver can
   requeue exactly the nodes whose values moved.

   Invariant: bits at positions >= length in the last word are always 0,
   so [equal]/[is_empty]/[cardinal] are plain word comparisons. *)

let word_bits = Sys.int_size (* 63 on 64-bit systems *)

type t = { words : int array; length : int }

let nwords n = if n = 0 then 1 else (n + word_bits - 1) / word_bits

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative universe";
  { words = Array.make (nwords n) 0; length = n }

let length t = t.length

(* Mask keeping only the in-universe bits of the last word. *)
let last_mask t =
  let r = t.length mod word_bits in
  if r = 0 then -1 else (1 lsl r) - 1

let check t i =
  if i < 0 || i >= t.length then
    invalid_arg (Printf.sprintf "Bitset: bit %d outside universe [0,%d)" i t.length)

let set t i =
  check t i;
  let w = i / word_bits and b = i mod word_bits in
  Array.unsafe_set t.words w (Array.unsafe_get t.words w lor (1 lsl b))

let clear t i =
  check t i;
  let w = i / word_bits and b = i mod word_bits in
  Array.unsafe_set t.words w (Array.unsafe_get t.words w land lnot (1 lsl b))

let mem t i =
  check t i;
  let w = i / word_bits and b = i mod word_bits in
  Array.unsafe_get t.words w land (1 lsl b) <> 0

let clear_all t = Array.fill t.words 0 (Array.length t.words) 0

let fill_all t =
  let n = Array.length t.words in
  Array.fill t.words 0 n (-1);
  if n > 0 then t.words.(n - 1) <- t.words.(n - 1) land last_mask t

let copy t = { words = Array.copy t.words; length = t.length }

let same_universe a b =
  if a.length <> b.length then
    invalid_arg
      (Printf.sprintf "Bitset: universes differ (%d vs %d)" a.length b.length)

let blit ~src ~dst =
  same_universe src dst;
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

(* In-place set operators; each returns whether [dst] changed. *)

let union_into ~dst src =
  same_universe dst src;
  let changed = ref false in
  for w = 0 to Array.length dst.words - 1 do
    let old = Array.unsafe_get dst.words w in
    let v = old lor Array.unsafe_get src.words w in
    if v <> old then begin
      Array.unsafe_set dst.words w v;
      changed := true
    end
  done;
  !changed

let inter_into ~dst src =
  same_universe dst src;
  let changed = ref false in
  for w = 0 to Array.length dst.words - 1 do
    let old = Array.unsafe_get dst.words w in
    let v = old land Array.unsafe_get src.words w in
    if v <> old then begin
      Array.unsafe_set dst.words w v;
      changed := true
    end
  done;
  !changed

let diff_into ~dst src =
  same_universe dst src;
  let changed = ref false in
  for w = 0 to Array.length dst.words - 1 do
    let old = Array.unsafe_get dst.words w in
    let v = old land lnot (Array.unsafe_get src.words w) in
    if v <> old then begin
      Array.unsafe_set dst.words w v;
      changed := true
    end
  done;
  !changed

let equal a b =
  same_universe a b;
  let rec go w =
    w < 0
    || (Array.unsafe_get a.words w = Array.unsafe_get b.words w && go (w - 1))
  in
  go (Array.length a.words - 1)

let is_empty t =
  let rec go w = w < 0 || (Array.unsafe_get t.words w = 0 && go (w - 1)) in
  go (Array.length t.words - 1)

let popcount_word x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal t =
  let acc = ref 0 in
  for w = 0 to Array.length t.words - 1 do
    acc := !acc + popcount_word (Array.unsafe_get t.words w)
  done;
  !acc

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let bits = ref (Array.unsafe_get t.words w) in
    let base = w * word_bits in
    while !bits <> 0 do
      let low = !bits land - !bits in
      (* index of the lowest set bit *)
      let rec idx b i = if b = 1 then i else idx (b lsr 1) (i + 1) in
      f (base + idx low 0);
      bits := !bits land (!bits - 1)
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n l =
  let t = create n in
  List.iter (fun i -> set t i) l;
  t

let to_string t =
  "{" ^ String.concat "," (List.map string_of_int (elements t)) ^ "}"
