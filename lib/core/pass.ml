(** The pass manager: every transformation of the Figure 1 pipeline —
    loop-level (HIR), SUIFvm (VM) and data-path — is a first-class value
    carrying its name, layer, option gate, IR-size metric, per-pass option
    fingerprint, an invariant verifier and an optional differential
    semantics check. The driver's stages are declarative lists of these
    values executed by {!run}; the batch service chains the per-pass
    fingerprints into cache keys so a back-end option sweep reuses every
    mid-end pass, not just whole stages.

    The manager:
    - runs each pass's verifier after it under [verify_ir]
      (or the [ROCCC_VERIFY_IR] environment variable);
    - co-runs the C interpreter, the VM evaluator and the data-path
      evaluator on deterministic vectors after each layer boundary under
      [differential], reporting the first diverging pass;
    - supports pass selection ([only_passes] / [disabled_passes]) for the
      optional (optimization) passes and IR printing ([dump_after]);
    - reports one {!pass_stats} record per executed pass to [instrument];
    - prefixes every error with the failing pass's name. *)

module Ast = Roccc_cfront.Ast
module Parser = Roccc_cfront.Parser
module Semant = Roccc_cfront.Semant
module Interp = Roccc_cfront.Interp
module Pretty = Roccc_cfront.Pretty
module Const_fold = Roccc_hir.Const_fold
module Loop_opt = Roccc_hir.Loop_opt
module Inline = Roccc_hir.Inline
module Lut_conv = Roccc_hir.Lut_conv
module Scalar_replacement = Roccc_hir.Scalar_replacement
module Feedback = Roccc_hir.Feedback
module Kernel = Roccc_hir.Kernel
module Lower = Roccc_vm.Lower
module Proc = Roccc_vm.Proc
module Eval = Roccc_vm.Eval
module Ssa = Roccc_analysis.Ssa
module Optimize = Roccc_analysis.Optimize
module Builder = Roccc_datapath.Builder
module Graph = Roccc_datapath.Graph
module Widths = Roccc_datapath.Widths
module Pipeline = Roccc_datapath.Pipeline
module Dp_eval = Roccc_datapath.Dp_eval
module Gen = Roccc_vhdl.Gen
module Lint = Roccc_vhdl.Lint
module Area = Roccc_fpga.Area

exception Error of string

exception Cancelled of string
(* Cooperative cancellation: raised between passes when the config's
   [cancel] hook reports a reason (e.g. a service request's deadline).
   Deliberately not an [Error]: callers distinguish "the compiler failed"
   from "the caller gave up". *)

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* Translate the libraries' typed exceptions into the user-facing [Error]
   so no pass lets a raw internal exception escape to a caller (the CLI,
   the batch service). *)
let user_message (e : exn) : string option =
  match e with
  | Loop_opt.Error m -> Some ("loop optimization: " ^ m)
  | Inline.Error m -> Some ("inlining: " ^ m)
  | Lut_conv.Error m -> Some ("lut conversion: " ^ m)
  | Feedback.Error m -> Some ("feedback: " ^ m)
  | Scalar_replacement.Error m -> Some ("scalar replacement: " ^ m)
  | Kernel.Ill_formed m -> Some ("kernel: " ^ m)
  | Lower.Error m -> Some ("lowering: " ^ m)
  | Proc.Ill_formed m -> Some ("vm cfg: " ^ m)
  | Ssa.Error m -> Some ("ssa: " ^ m)
  | Builder.Error m -> Some ("datapath construction: " ^ m)
  | Graph.Ill_formed m -> Some ("datapath: " ^ m)
  | Widths.Error m -> Some ("width inference: " ^ m)
  | Pipeline.Error m -> Some ("pipelining: " ^ m)
  | Gen.Error m -> Some ("vhdl generation: " ^ m)
  | Lint.Error m -> Some ("vhdl lint: " ^ m)
  | Eval.Error m -> Some ("vm evaluation: " ^ m)
  | Dp_eval.Error m -> Some ("datapath evaluation: " ^ m)
  | Interp.Error m -> Some ("interpretation: " ^ m)
  | Roccc_vm.Instr.Vm_error m -> Some ("vm: " ^ m)
  | _ -> None

let guard (f : unit -> 'a) : 'a =
  try f ()
  with e -> (
    match user_message e with Some m -> raise (Error m) | None -> raise e)

(* ------------------------------------------------------------------ *)
(* Options                                                             *)
(* ------------------------------------------------------------------ *)

type options = {
  unroll_inner_max : int;
      (** fully unroll inner loops with at most this trip count *)
  unroll_all_max : int;
      (** fully unroll any constant loop with at most this trip count
          (turns small kernels into block kernels, as for the DCT) *)
  fuse_loops : bool;
  target_ns : float;             (** pipeline stage budget *)
  stage_budget : int;
      (** cap on the stage count of a multi-stage (wide) operator region
          (0 = the decomposition's natural depth) *)
  decomp : Roccc_datapath.Delay.decomp;
      (** wide-multiplier decomposition choice *)
  infer_widths : bool;           (** bit-width inference (ablation switch) *)
  optimize_vm : bool;            (** back-end CSE/copy-prop/DCE (ablation) *)
  unroll_outer_factor : int;     (** partial unrolling of the outer loop *)
  lut_convert_max_bits : int;
      (** convert pure called functions with inputs up to this width into
          ROM lookup tables instead of inlining (0 = always inline) *)
  bus_elements : int;            (** memory bus width, in elements *)
  check_vhdl : bool;             (** run the structural linter *)
}

let default_options =
  { unroll_inner_max = 0;
    unroll_all_max = 0;
    fuse_loops = true;
    target_ns = Pipeline.default_target_ns;
    stage_budget = Roccc_datapath.Delay.default_stage_budget;
    decomp = Roccc_datapath.Delay.default_decomp;
    infer_widths = true;
    optimize_vm = true;
    unroll_outer_factor = 1;
    lut_convert_max_bits = 0;
    bus_elements = 1;
    check_vhdl = true }

(* Option fingerprints: a canonical rendering of exactly the fields each
   group of passes reads, so a content-addressed cache can share front-end
   work between jobs that differ only in back-end options. The per-pass
   [fingerprint] fields below refine this to single-pass granularity. *)

let front_options_fingerprint (o : options) : string =
  Printf.sprintf "ui=%d;ua=%d;fuse=%b;uo=%d;lut=%d" o.unroll_inner_max
    o.unroll_all_max o.fuse_loops o.unroll_outer_factor
    o.lut_convert_max_bits

let options_fingerprint (o : options) : string =
  Printf.sprintf "%s;tns=%h;sb=%d;dc=%s;w=%b;ovm=%b;bus=%d;lint=%b"
    (front_options_fingerprint o)
    o.target_ns o.stage_budget
    (Roccc_datapath.Delay.decomp_name o.decomp)
    o.infer_widths o.optimize_vm o.bus_elements o.check_vhdl

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

type pass_stats = {
  pass_name : string;
  started_s : float;   (** absolute wall-clock, seconds since the epoch *)
  elapsed_s : float;
  ir_size : int;       (** size of the active IR after the pass (0 = n/a) *)
}

type instrument = pass_stats -> unit

(* ------------------------------------------------------------------ *)
(* Pipeline state                                                      *)
(* ------------------------------------------------------------------ *)

(** The pipeline state threaded through the passes. Fields are filled in as
    the layers complete; a pass that needs a missing field is a pipeline
    construction error, reported by name. States up to the end of the HIR
    layer hold only immutable values (ASTs, kernels) and are safe to share
    across domains and cache; VM procedures are mutated in place by SSA
    conversion and the optimizer, so back-end states must not be shared. *)
type state = {
  st_source : string;
  st_entry : string;
  st_options : options;
  st_luts : Lut_conv.table list;
  st_seed_luts : Lut_conv.table list;
      (** the tables registered at compilation start (before any
          lut-conversion) — what the original C source may call *)
  st_program : Ast.program option;  (** whole program, post-HIR transforms *)
  st_func : Ast.func option;        (** the entry function *)
  st_kernel : Kernel.t option;
  st_proc : Proc.t option;
  st_proc_lowered : Proc.t option;
      (** deep copy taken right after lowering, before SSA mutates the
          procedure — the reference point for differential checks *)
  st_dp : Graph.t option;
  st_widths : Widths.t option;
  st_pipeline : Pipeline.t option;
  st_design : Roccc_vhdl.Ast.design option;
  st_buffer_configs : Roccc_buffers.Smart_buffer.config list;
  st_area : Area.estimate option;
  st_trace : string list;           (** executed pass names, in order *)
}

let initial ?(luts = []) ~(options : options) ~(entry : string)
    (source : string) : state =
  (* Reset this domain's registered id generators at compilation start so
     repeated compiles in one process produce byte-identical IR. *)
  Roccc_util.Id_gen.reset_registered ();
  { st_source = source;
    st_entry = entry;
    st_options = options;
    st_luts = luts;
    st_seed_luts = luts;
    st_program = None;
    st_func = None;
    st_kernel = None;
    st_proc = None;
    st_proc_lowered = None;
    st_dp = None;
    st_widths = None;
    st_pipeline = None;
    st_design = None;
    st_buffer_configs = [];
    st_area = None;
    st_trace = [] }

let need what = function
  | Some v -> v
  | None -> errf "pipeline state is missing the %s" what

let program_of st = need "program" st.st_program
let func_of st = need "entry function" st.st_func
let kernel_of st = need "kernel" st.st_kernel
let proc_of st = need "vm procedure" st.st_proc
let dp_of st = need "data path" st.st_dp
let widths_of st = need "signal widths" st.st_widths
let pipeline_of st = need "pipeline" st.st_pipeline

let ast_size (f : Ast.func) : int =
  Ast.fold_stmts (fun n _ -> n + 1) (fun n _ -> n + 1) 0 f.Ast.body

let program_size (p : Ast.program) : int =
  List.fold_left (fun n f -> n + ast_size f) 0 p.Ast.funcs

let proc_size (p : Proc.t) : int = List.length (Proc.all_instrs p)

(* ------------------------------------------------------------------ *)
(* Pass values                                                         *)
(* ------------------------------------------------------------------ *)

type layer = Cfront | Hir | Vm | Datapath | Vhdl | Fpga

let layer_name = function
  | Cfront -> "cfront"
  | Hir -> "hir"
  | Vm -> "vm"
  | Datapath -> "datapath"
  | Vhdl -> "vhdl"
  | Fpga -> "fpga"

type pass = {
  name : string;         (** the Figure 1 pass name, e.g. ["datapath-build"] *)
  layer : layer;
  optional : bool;
      (** optimization passes may be disabled by selection; required
          structural passes may not *)
  enabled : options -> bool;   (** static option gate *)
  applicable : state -> bool;  (** dynamic gate (e.g. nothing to convert) *)
  transform : state -> state;
  ir_size : state -> int;
  verifier : (state -> unit) option;      (** run under [verify_ir] *)
  differential : (state -> unit) option;  (** run under [differential] *)
  dump : state -> string;                 (** IR printer for [dump_after] *)
  fingerprint : options -> string;
      (** canonical rendering of exactly the option fields the pass reads
          — the per-pass refinement of {!options_fingerprint} *)
}

let always _ = true
let no_fp (_ : options) = ""

(* ------------------------------------------------------------------ *)
(* Manager configuration                                               *)
(* ------------------------------------------------------------------ *)

type config = {
  verify_ir : bool;           (** run each pass's verifier after it *)
  differential : bool;        (** run the differential semantics checks *)
  only_passes : string list option;
      (** when set, only these optional passes run (required passes always
          run) — the CLI's [--passes] *)
  disabled_passes : string list;  (** the CLI's [--disable-pass] *)
  dump_after : string list;       (** pass names to print IR after *)
  on_dump : string -> string -> unit;  (** receives (pass name, dump text) *)
  instrument : instrument option;
  cancel : (unit -> string option) option;
      (** cooperative cancellation hook, polled at every pass boundary:
          returning [Some reason] makes {!step} raise {!Cancelled} before
          doing any further work (the service's per-request deadlines) *)
}

let env_flag name =
  match Sys.getenv_opt name with
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some _ | None -> false

let default_config () =
  { verify_ir = env_flag "ROCCC_VERIFY_IR";
    differential = env_flag "ROCCC_DIFFERENTIAL";
    only_passes = None;
    disabled_passes = [];
    dump_after = [];
    on_dump =
      (fun name text ->
        print_string (Printf.sprintf "=== after %s ===\n%s\n" name text));
    instrument = None;
    cancel = None }

(* ------------------------------------------------------------------ *)
(* Deterministic test vectors for the differential checker              *)
(* ------------------------------------------------------------------ *)

let diff_iterations = 4

(* Small positive values inside the kind's range: enough to exercise the
   arithmetic (including width truncation) without tripping division by
   zero on kernels that divide by an input. Kinds too narrow to hold a
   positive value (signed 1-bit, whose range is [-1, 0]) get 0. *)
let det_value ~(seed : int) ~(i : int) (kind : Ast.ikind) : int64 =
  let h = ((seed * 1103515245) + ((i + 1) * 12345)) land 0x3FFFFFFF in
  let cap =
    if kind.Ast.signed then (1 lsl (min 30 (kind.Ast.bits - 1))) - 1
    else (1 lsl min 30 kind.Ast.bits) - 1
  in
  if cap < 1 then 0L else Int64.of_int (1 + (h mod min 96 cap))

let seed_of (s : string) : int = Hashtbl.hash s land 0xFFFFFF

(* One scalar vector per stream iteration, keyed by port name — valid for
   the interpreter (dp parameters), the VM evaluator and the data-path
   evaluator, which all use the same names. *)
let port_vectors (ports : Proc.port list) : (string * int64) list list =
  List.init diff_iterations (fun it ->
      List.map
        (fun (p : Proc.port) ->
          ( p.Proc.port_name,
            det_value
              ~seed:(seed_of p.Proc.port_name + (31 * it))
              ~i:it p.Proc.port_kind ))
        ports)

let diff_errf name fmt =
  Printf.ksprintf
    (fun s -> errf "differential check (%s): %s" name s)
    fmt

let compare_values ~(check : string) ~(iter : int) ~(a_name : string)
    ~(b_name : string) (a : (string * int64) list) (b : (string * int64) list)
    : unit =
  List.iter
    (fun (name, va) ->
      match List.assoc_opt name b with
      | Some vb when Int64.equal va vb -> ()
      | Some vb ->
        diff_errf check "iteration %d: %s: %s=%Ld but %s=%Ld" iter name a_name
          va b_name vb
      | None ->
        diff_errf check "iteration %d: %s missing %s" iter b_name name)
    a;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name a) then
        diff_errf check "iteration %d: %s missing %s" iter a_name name)
    b

let lut_bindings luts = List.map Lut_conv.interp_binding luts

(* HIR boundary: the loop-level transformations (LUT conversion, inlining,
   folding, unrolling, fusion) must preserve the C semantics — interpret
   the original source and the transformed program on the same
   deterministic inputs and compare every observable output. *)
let differential_front (st : state) : unit =
  let f = func_of st in
  let program = program_of st in
  let scalars =
    List.filter_map
      (fun (p : Ast.param) ->
        match p.Ast.ptype with
        | Ast.Tint k ->
          Some (p.Ast.pname, det_value ~seed:(seed_of p.Ast.pname) ~i:0 k)
        | Ast.Tarray _ | Ast.Tptr _ | Ast.Tvoid -> None)
      f.Ast.params
  in
  let arrays =
    List.filter_map
      (fun (p : Ast.param) ->
        match p.Ast.ptype with
        | Ast.Tarray (k, dims) ->
          let total = List.fold_left ( * ) 1 dims in
          Some
            ( p.Ast.pname,
              Array.init total (fun i ->
                  det_value ~seed:(seed_of p.Ast.pname) ~i k) )
        | Ast.Tint _ | Ast.Tptr _ | Ast.Tvoid -> None)
      f.Ast.params
  in
  let pre = st.st_seed_luts in
  let original =
    Interp.run_source
      ~luts:(List.map Lut_conv.signature pre)
      ~lut_funcs:(lut_bindings pre) ~scalars ~arrays st.st_source st.st_entry
  in
  let rt =
    Interp.create
      ~lut_funcs:(lut_bindings st.st_luts)
      { program with Ast.funcs = [ f ] }
  in
  let transformed = Interp.run rt st.st_entry ~scalars ~arrays in
  compare_values ~check:"hir" ~iter:0 ~a_name:"original C"
    ~b_name:"transformed C" original.Interp.pointer_outputs
    transformed.Interp.pointer_outputs;
  List.iter
    (fun (name, data) ->
      match List.assoc_opt name transformed.Interp.arrays with
      | None -> diff_errf "hir" "transformed C lost array %s" name
      | Some data' ->
        if Array.length data <> Array.length data' then
          diff_errf "hir" "array %s changed length" name;
        Array.iteri
          (fun i v ->
            if not (Int64.equal v data'.(i)) then
              diff_errf "hir" "array %s[%d]: original=%Ld transformed=%Ld"
                name i v data'.(i))
          data)
    original.Interp.arrays

(* VM boundary: run the C interpreter over the scalar dp function and the
   VM evaluator over the lowered procedure on the same vectors. Kernels
   with feedback skip the interpreter anchor (the dp function's
   ROCCC_load_prev has no cross-iteration meaning under plain
   interpretation); they are still covered by the VM-vs-VM and VM-vs-dp
   comparisons of the later boundaries. *)
let differential_lower (st : state) : unit =
  let kernel = kernel_of st in
  let proc = proc_of st in
  let vecs = port_vectors proc.Proc.inputs in
  let vm_results =
    Eval.run_stream ~luts:(lut_bindings st.st_luts) proc vecs
  in
  if kernel.Kernel.feedback = [] then begin
    let dp = kernel.Kernel.dp in
    let program =
      match st.st_program with
      | Some p -> { p with Ast.funcs = [ dp ] }
      | None -> { Ast.globals = []; funcs = [ dp ]; pipelines = [] }
    in
    let rt = Interp.create ~lut_funcs:(lut_bindings st.st_luts) program in
    List.iteri
      (fun it (vec, (vm : Eval.result)) ->
        let o = Interp.run rt dp.Ast.fname ~scalars:vec in
        compare_values ~check:"lower-to-suifvm" ~iter:it ~a_name:"C dp"
          ~b_name:"vm" o.Interp.pointer_outputs vm.Eval.outputs)
      (List.combine vecs vm_results)
  end

(* SSA / optimizer boundary: the mutated procedure must still compute what
   the freshly lowered procedure computed. *)
let differential_vm (check : string) (st : state) : unit =
  let proc = proc_of st in
  let lowered = need "lowered procedure snapshot" st.st_proc_lowered in
  let vecs = port_vectors proc.Proc.inputs in
  let luts = lut_bindings st.st_luts in
  let before = Eval.run_stream ~luts lowered vecs in
  let after = Eval.run_stream ~luts proc vecs in
  List.iteri
    (fun it ((b : Eval.result), (a : Eval.result)) ->
      compare_values ~check ~iter:it ~a_name:"lowered vm" ~b_name:"vm"
        b.Eval.outputs a.Eval.outputs;
      compare_values ~check ~iter:it ~a_name:"lowered vm feedback"
        ~b_name:"vm feedback" b.Eval.feedback_next a.Eval.feedback_next)
    (List.combine before after)

(* Data-path boundary: all control flow is gone (both branch lanes compute,
   muxes select); the node graph must still match the VM procedure. *)
let differential_dp (st : state) : unit =
  let proc = proc_of st in
  let dp = dp_of st in
  let vecs = port_vectors proc.Proc.inputs in
  let luts = lut_bindings st.st_luts in
  let vm = Eval.run_stream ~luts proc vecs in
  let hw = Dp_eval.run_stream ~luts dp vecs in
  List.iteri
    (fun it ((a : Eval.result), (b : Dp_eval.result)) ->
      compare_values ~check:"datapath-build" ~iter:it ~a_name:"vm"
        ~b_name:"datapath" a.Eval.outputs b.Dp_eval.outputs;
      compare_values ~check:"datapath-build" ~iter:it ~a_name:"vm feedback"
        ~b_name:"datapath feedback" a.Eval.feedback_next
        b.Dp_eval.feedback_next)
    (List.combine vm hw)

(* Width boundary: evaluating with every signal truncated to its inferred
   width must equal full-width evaluation (the §4.2.4 soundness claim). *)
let differential_widths (st : state) : unit =
  let dp = dp_of st in
  let widths = widths_of st in
  let vecs = port_vectors dp.Graph.input_ports in
  let luts = lut_bindings st.st_luts in
  let rec go it fb_full fb_narrow = function
    | [] -> ()
    | vec :: rest ->
      let full =
        Dp_eval.run ~luts ?feedback_prev:fb_full dp ~inputs:vec
      in
      let narrow =
        Dp_eval.run ~luts ?feedback_prev:fb_narrow ~widths dp ~inputs:vec
      in
      compare_values ~check:"bit-width-inference" ~iter:it ~a_name:"full"
        ~b_name:"narrowed" full.Dp_eval.outputs narrow.Dp_eval.outputs;
      go (it + 1)
        (Some full.Dp_eval.feedback_next)
        (Some narrow.Dp_eval.feedback_next)
        rest
  in
  go 0 None None vecs

(* ------------------------------------------------------------------ *)
(* The registry                                                        *)
(* ------------------------------------------------------------------ *)

let dump_func st = Pretty.func_to_string (func_of st)

let dump_kernel st =
  let k = kernel_of st in
  Kernel.describe k ^ Pretty.func_to_string k.Kernel.dp

let dump_proc st = Proc.to_string (proc_of st)
let dump_dp st = Graph.to_string (dp_of st)

let find_entry (program : Ast.program) (entry : string) ~(where : string) :
    Ast.func =
  match
    List.find_opt (fun g -> String.equal g.Ast.fname entry) program.Ast.funcs
  with
  | Some f -> f
  | None ->
    if String.equal where "parse" then errf "no function named %s" entry
    else errf "function %s lost during %s" entry where

let parse_pass =
  { name = "parse";
    layer = Cfront;
    optional = false;
    enabled = always;
    applicable = always;
    transform =
      (fun st ->
        let program =
          try Parser.parse_program st.st_source
          with Parser.Error (msg, line, col) ->
            errf "parse error at %d:%d: %s" line col msg
        in
        { st with st_program = Some program });
    ir_size = (fun st -> program_size (program_of st));
    verifier = None;
    differential = None;
    dump = (fun st -> Pretty.program_to_string (program_of st));
    fingerprint = no_fp }

let semantic_check_pass =
  { name = "semantic-check";
    layer = Cfront;
    optional = false;
    enabled = always;
    applicable = always;
    transform =
      (fun st ->
        let program = program_of st in
        let lut_sigs = List.map Lut_conv.signature st.st_luts in
        (try ignore (Semant.check_program ~luts:lut_sigs program)
         with Semant.Error msg -> errf "semantic error: %s" msg);
        let f = find_entry program st.st_entry ~where:"parse" in
        { st with st_func = Some f });
    ir_size = (fun _ -> 0);
    verifier = None;
    differential = None;
    dump = dump_func;
    fingerprint = no_fp }

(* "Function calls will either be inlined or whenever feasible made into a
   lookup table" (paper §2). A called function is tabulated when it is
   pure, takes one scalar of at most [lut_convert_max_bits], and returns an
   integer; otherwise it is inlined. *)
let convertible_luts (st : state) : Lut_conv.table list =
  let program = program_of st in
  let f = func_of st in
  let called_names =
    Ast.fold_stmts
      (fun acc _ -> acc)
      (fun acc e ->
        match e with
        | Ast.Call (g, _) when not (Ast.is_intrinsic g) -> g :: acc
        | _ -> acc)
      [] f.Ast.body
    |> List.sort_uniq String.compare
  in
  List.filter_map
    (fun name ->
      match
        List.find_opt
          (fun g -> String.equal g.Ast.fname name)
          program.Ast.funcs
      with
      | Some callee -> (
        match callee.Ast.params, callee.Ast.ret with
        | [ { Ast.ptype = Ast.Tint k; _ } ], Ast.Tint _
          when k.Ast.bits <= st.st_options.lut_convert_max_bits -> (
          match Lut_conv.from_function program callee with
          | table -> Some table
          | exception Lut_conv.Error _ -> None)
        | _ -> None)
      | None -> None)
    called_names

let lut_conversion_pass =
  { name = "lut-conversion";
    layer = Hir;
    optional = true;
    enabled = (fun o -> o.lut_convert_max_bits > 0);
    applicable = (fun st -> convertible_luts st <> []);
    transform =
      (fun st ->
        let convertible = convertible_luts st in
        let program =
          Lut_conv.convert_calls (program_of st) convertible
        in
        let f = find_entry program st.st_entry ~where:"LUT conversion" in
        { st with
          st_program = Some program;
          st_func = Some f;
          st_luts = st.st_luts @ convertible });
    ir_size = (fun st -> List.length st.st_luts);
    verifier = None;
    differential = None;
    dump = dump_func;
    fingerprint = (fun o -> Printf.sprintf "lut=%d" o.lut_convert_max_bits) }

let update_func (st : state) (f : Ast.func) : state =
  { st with
    st_func = Some f;
    st_program =
      Option.map
        (fun (p : Ast.program) ->
          { p with
            Ast.funcs =
              List.map
                (fun g ->
                  if String.equal g.Ast.fname f.Ast.fname then f else g)
                p.Ast.funcs })
        st.st_program }

let inline_pass =
  { name = "inline";
    layer = Hir;
    optional = false;  (* lowering cannot digest residual calls *)
    enabled = always;
    applicable = always;
    transform =
      (fun st -> update_func st (Inline.inline_calls (program_of st) (func_of st)));
    ir_size = (fun st -> ast_size (func_of st));
    verifier = None;
    differential = None;
    dump = dump_func;
    fingerprint = no_fp }

let constant_fold_transform st =
  let program = program_of st in
  let f = func_of st in
  let consts = Const_fold.readonly_global_consts program f in
  update_func st (Const_fold.optimize_func ~consts f)

let constant_fold_pass =
  { name = "constant-fold";
    layer = Hir;
    optional = true;
    enabled = always;
    applicable = always;
    transform = constant_fold_transform;
    ir_size = (fun st -> ast_size (func_of st));
    verifier = None;
    differential = None;
    dump = dump_func;
    fingerprint = no_fp }

(* Unroll loops nested inside other loops (the udiv/sqrt bit-step loops)
   while keeping the outer streaming loop. *)
let unroll_inner ~max_trip stmts =
  List.map
    (fun s ->
      match s with
      | Ast.Sfor (h, body) ->
        Ast.Sfor (h, Loop_opt.unroll_small_loops ~max_trip body)
      | s -> s)
    stmts

let unroll_inner_pass =
  { name = "unroll-inner-loops";
    layer = Hir;
    optional = true;
    enabled = (fun o -> o.unroll_inner_max > 0);
    applicable = always;
    transform =
      (fun st ->
        let f = func_of st in
        update_func st
          { f with
            Ast.body =
              unroll_inner ~max_trip:st.st_options.unroll_inner_max f.Ast.body });
    ir_size = (fun st -> ast_size (func_of st));
    verifier = None;
    differential = None;
    dump = dump_func;
    fingerprint = (fun o -> Printf.sprintf "ui=%d" o.unroll_inner_max) }

let full_unroll_pass =
  { name = "full-unroll";
    layer = Hir;
    optional = true;
    enabled = (fun o -> o.unroll_all_max > 0);
    applicable = always;
    transform =
      (fun st ->
        let f = func_of st in
        update_func st
          { f with
            Ast.body =
              Loop_opt.unroll_small_loops ~max_trip:st.st_options.unroll_all_max
                f.Ast.body });
    ir_size = (fun st -> ast_size (func_of st));
    verifier = None;
    differential = None;
    dump = dump_func;
    fingerprint = (fun o -> Printf.sprintf "ua=%d" o.unroll_all_max) }

let partial_unroll_pass =
  { name = "partial-unroll";
    layer = Hir;
    optional = true;
    enabled = (fun o -> o.unroll_outer_factor > 1);
    applicable = always;
    transform =
      (fun st ->
        let f = func_of st in
        let body =
          List.map
            (fun s ->
              match s with
              | Ast.Sfor (h, body) ->
                let h', body' =
                  Loop_opt.partially_unroll
                    ~factor:st.st_options.unroll_outer_factor h body
                in
                Ast.Sfor (h', body')
              | s -> s)
            f.Ast.body
        in
        update_func st { f with Ast.body });
    ir_size = (fun st -> ast_size (func_of st));
    verifier = None;
    differential = None;
    dump = dump_func;
    fingerprint = (fun o -> Printf.sprintf "uo=%d" o.unroll_outer_factor) }

let loop_fusion_pass =
  { name = "loop-fusion";
    layer = Hir;
    optional = true;
    enabled = (fun o -> o.fuse_loops);
    applicable = always;
    transform =
      (fun st ->
        let f = func_of st in
        update_func st { f with Ast.body = Loop_opt.fuse_loops f.Ast.body });
    ir_size = (fun st -> ast_size (func_of st));
    verifier = None;
    differential = None;
    dump = dump_func;
    fingerprint = (fun o -> Printf.sprintf "fuse=%b" o.fuse_loops) }

let scalar_replacement_pass =
  { name = "scalar-replacement";
    layer = Hir;
    optional = false;
    enabled = always;
    applicable = always;
    transform =
      (fun st ->
        let program = program_of st in
        let f = func_of st in
        let program = { program with Ast.funcs = [ f ] } in
        let kernel =
          try Scalar_replacement.run program f
          with Scalar_replacement.Error msg ->
            errf "scalar replacement: %s" msg
        in
        { st with st_kernel = Some kernel });
    ir_size = (fun st -> ast_size (kernel_of st).Kernel.dp);
    verifier = Some (fun st -> Kernel.verify (kernel_of st));
    differential = Some differential_front;
    dump = dump_kernel;
    fingerprint = no_fp }

let feedback_detection_pass =
  { name = "feedback-detection";
    layer = Hir;
    optional = false;
    enabled = always;
    applicable = always;
    transform =
      (fun st ->
        let k = Feedback.annotate (kernel_of st) in
        Feedback.validate k;
        { st with st_kernel = Some k });
    ir_size = (fun st -> ast_size (kernel_of st).Kernel.dp);
    verifier = Some (fun st -> Kernel.verify (kernel_of st));
    differential = None;
    dump = dump_kernel;
    fingerprint = no_fp }

let lower_pass =
  { name = "lower-to-suifvm";
    layer = Vm;
    optional = false;
    enabled = always;
    applicable = always;
    transform =
      (fun st ->
        let lut_sigs = List.map Lut_conv.signature st.st_luts in
        let proc = Lower.lower_kernel ~luts:lut_sigs (kernel_of st) in
        { st with
          st_proc = Some proc;
          st_proc_lowered = Some (Proc.copy proc) });
    ir_size = (fun st -> proc_size (proc_of st));
    verifier = Some (fun st -> Proc.verify_cfg (proc_of st));
    differential = Some differential_lower;
    dump = dump_proc;
    fingerprint = no_fp }

let vm_verifier st =
  let proc = proc_of st in
  Proc.verify_cfg proc;
  Ssa.verify proc;
  Ssa.verify_dominance proc

let ssa_pass =
  { name = "ssa-and-cfg";
    layer = Vm;
    optional = false;
    enabled = always;
    applicable = always;
    transform =
      (fun st ->
        let proc = proc_of st in
        let _cfg = Ssa.convert proc in
        Ssa.verify proc;
        st);
    ir_size = (fun st -> proc_size (proc_of st));
    verifier = Some vm_verifier;
    differential = Some (differential_vm "ssa-and-cfg");
    dump = dump_proc;
    fingerprint = no_fp }

let vm_optimize_pass =
  { name = "vm-optimize";
    layer = Vm;
    optional = true;
    enabled = (fun o -> o.optimize_vm);
    applicable = always;
    transform =
      (fun st ->
        let proc = proc_of st in
        let _stats = Optimize.run proc in
        Ssa.verify proc;
        st);
    ir_size = (fun st -> proc_size (proc_of st));
    verifier = Some vm_verifier;
    differential = Some (differential_vm "vm-optimize");
    dump = dump_proc;
    fingerprint = (fun o -> Printf.sprintf "ovm=%b" o.optimize_vm) }

let datapath_build_pass =
  { name = "datapath-build";
    layer = Datapath;
    optional = false;
    enabled = always;
    applicable = always;
    transform =
      (fun st ->
        let dp = Builder.build (proc_of st) in
        Builder.verify_adjoining dp;
        { st with st_dp = Some dp });
    ir_size = (fun st -> Graph.instr_count (dp_of st));
    verifier =
      Some
        (fun st ->
          let dp = dp_of st in
          Graph.verify dp;
          Builder.verify_adjoining dp);
    differential = Some differential_dp;
    dump = dump_dp;
    fingerprint = no_fp }

let widths_verifier st =
  let dp = dp_of st in
  let widths = widths_of st in
  List.iter
    (fun (n : Graph.node) ->
      List.iter
        (fun (i : Roccc_vm.Instr.instr) ->
          match i.Roccc_vm.Instr.dst with
          | Some d ->
            let w = Widths.width widths d in
            if w < 1 || w > 64 then
              errf "width inference: v%d has width %d outside [1,64]" d w
          | None -> ())
        n.Graph.instrs)
    dp.Graph.nodes

let width_inference_pass =
  { name = "bit-width-inference";
    layer = Datapath;
    optional = false;  (* always produces widths; ablate via infer_widths *)
    enabled = always;
    applicable = always;
    transform =
      (fun st ->
        let dp = dp_of st in
        let widths =
          if st.st_options.infer_widths then Widths.infer dp
          else Widths.declared dp
        in
        { st with st_widths = Some widths });
    ir_size = (fun st -> Graph.instr_count (dp_of st));
    verifier = Some widths_verifier;
    differential = Some differential_widths;
    dump =
      (fun st ->
        Printf.sprintf "total inferred bits: %d\n"
          (Widths.total_bits (widths_of st)));
    fingerprint = (fun o -> Printf.sprintf "w=%b" o.infer_widths) }

let pipelining_pass =
  { name = "pipelining";
    layer = Datapath;
    optional = false;
    enabled = always;
    applicable = always;
    transform =
      (fun st ->
        let p =
          Pipeline.build ~target_ns:st.st_options.target_ns
            ~stage_budget:st.st_options.stage_budget
            ~decomp:st.st_options.decomp ~retime:false (dp_of st)
            (widths_of st)
        in
        { st with st_pipeline = Some p });
    ir_size = (fun st -> Pipeline.latency (pipeline_of st));
    verifier = Some (fun st -> Pipeline.verify (pipeline_of st));
    differential = None;
    dump = (fun st -> Pipeline.describe (pipeline_of st));
    fingerprint =
      (fun o ->
        Printf.sprintf "tns=%h;sb=%d;dc=%s" o.target_ns o.stage_budget
          (Roccc_datapath.Delay.decomp_name o.decomp)) }

(* Slack-based retiming over the greedy staging. Disabling it
   (--disable-pass retiming) is the greedy-placement ablation. *)
let retiming_pass =
  { name = "retiming";
    layer = Datapath;
    optional = true;
    enabled = always;
    applicable = always;
    transform =
      (fun st -> { st with st_pipeline = Some (Pipeline.retime (pipeline_of st)) });
    ir_size = (fun st -> (pipeline_of st).Pipeline.latch_bits);
    verifier = Some (fun st -> Pipeline.verify (pipeline_of st));
    differential = None;
    dump = (fun st -> Pipeline.describe (pipeline_of st));
    fingerprint =
      (fun o ->
        Printf.sprintf "tns=%h;sb=%d;dc=%s" o.target_ns o.stage_budget
          (Roccc_datapath.Delay.decomp_name o.decomp)) }

let vhdl_generation_pass =
  { name = "vhdl-generation";
    layer = Vhdl;
    optional = false;
    enabled = always;
    applicable = always;
    transform =
      (fun st ->
        let design = Gen.generate ~luts:st.st_luts (pipeline_of st) in
        { st with st_design = Some design });
    ir_size =
      (fun st ->
        match st.st_design with
        | Some d -> List.length d.Roccc_vhdl.Ast.units
        | None -> 0);
    verifier = None;  (* the linter below is the VHDL verifier *)
    differential = None;
    dump =
      (fun st ->
        match st.st_design with
        | Some d -> Roccc_vhdl.Ast.to_string d
        | None -> "");
    fingerprint = no_fp }

let vhdl_lint_pass =
  { name = "vhdl-lint";
    layer = Vhdl;
    optional = true;
    enabled = (fun o -> o.check_vhdl);
    applicable = always;
    transform =
      (fun st ->
        (match st.st_design with
        | Some design -> (
          match Lint.check design with
          | _ -> ()
          | exception Lint.Error msg ->
            errf "generated VHDL fails lint: %s" msg)
        | None -> errf "pipeline state is missing the design");
        st);
    ir_size = (fun _ -> 0);
    verifier = None;
    differential = None;
    dump = (fun _ -> "");
    fingerprint = no_fp }

(* Smart-buffer configurations for the kernel's window inputs — shared by
   the simulator and the area estimator. *)
let buffer_configs_of ~(bus_elements : int) (k : Kernel.t) :
    Roccc_buffers.Smart_buffer.config list =
  List.map
    (fun (w : Kernel.window_input) ->
      let ndims = List.length w.Kernel.win_dims in
      let iterations, stride, lower =
        if k.Kernel.loops = [] then
          ( List.init ndims (fun _ -> 1),
            List.init ndims (fun _ -> 0),
            List.init ndims (fun _ -> 0) )
        else
          ( List.map (fun d -> d.Kernel.count) k.Kernel.loops,
            List.map (fun d -> d.Kernel.step) k.Kernel.loops,
            List.map (fun d -> d.Kernel.lower) k.Kernel.loops )
      in
      { Roccc_buffers.Smart_buffer.element_bits = w.Kernel.win_kind.Ast.bits;
        element_signed = w.Kernel.win_kind.Ast.signed;
        bus_elements;
        array_dims = w.Kernel.win_dims;
        window_offsets = w.Kernel.win_offsets;
        stride;
        iterations;
        lower })
    k.Kernel.windows

let area_estimation_pass =
  { name = "area-estimation";
    layer = Fpga;
    optional = false;
    enabled = always;
    applicable = always;
    transform =
      (fun st ->
        let buffer_configs =
          buffer_configs_of ~bus_elements:st.st_options.bus_elements
            (kernel_of st)
        in
        let area =
          Area.estimate ~luts:st.st_luts ~buffers:buffer_configs
            (pipeline_of st)
        in
        { st with st_buffer_configs = buffer_configs; st_area = Some area });
    ir_size =
      (fun st ->
        match st.st_area with Some a -> a.Area.slices | None -> 0);
    verifier = None;
    differential = None;
    dump =
      (fun st ->
        match st.st_area with Some a -> Area.describe a | None -> "");
    fingerprint = (fun o -> Printf.sprintf "bus=%d" o.bus_elements) }

(* The three stage pipelines of the driver. The second constant-fold run
   cleans up after unrolling and fusion, exactly as in the paper's flow. *)
let front_passes : pass list =
  [ parse_pass;
    semantic_check_pass;
    lut_conversion_pass;
    inline_pass;
    constant_fold_pass;
    unroll_inner_pass;
    full_unroll_pass;
    partial_unroll_pass;
    loop_fusion_pass;
    constant_fold_pass ]

let kernel_passes : pass list =
  [ scalar_replacement_pass; feedback_detection_pass ]

let back_passes : pass list =
  [ lower_pass;
    ssa_pass;
    vm_optimize_pass;
    datapath_build_pass;
    width_inference_pass;
    pipelining_pass;
    retiming_pass;
    vhdl_generation_pass;
    vhdl_lint_pass;
    area_estimation_pass ]

let all_passes : pass list = front_passes @ kernel_passes @ back_passes

let pass_names () : string list =
  let seen = Hashtbl.create 32 in
  List.filter_map
    (fun p ->
      if Hashtbl.mem seen p.name then None
      else begin
        Hashtbl.replace seen p.name ();
        Some p.name
      end)
    all_passes

let find (name : string) : pass option =
  List.find_opt (fun p -> String.equal p.name name) all_passes

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let prefix_pass name msg =
  if String.length msg >= String.length name
     && String.equal (String.sub msg 0 (String.length name)) name
  then msg
  else name ^ ": " ^ msg

(* Satellite of the refactor: every error escaping a pass carries the
   failing pass's name, so the CLI and the batch service report "where",
   not just "what". *)
let with_pass_name (name : string) (f : unit -> 'a) : 'a =
  try f () with
  | Error msg -> raise (Error (prefix_pass name msg))
  | e -> (
    match user_message e with
    | Some m -> raise (Error (prefix_pass name m))
    | None -> raise e)

let selected_in (config : config) (p : pass) : bool =
  (not p.optional)
  || ((not (List.mem p.name config.disabled_passes))
     &&
     match config.only_passes with
     | None -> true
     | Some names -> List.mem p.name names)

(** The passes of [passes] that would execute under [config] and
    [options], in order — the basis for the service's chained per-pass
    cache fingerprints. (A pass whose dynamic [applicable] gate skips is
    still listed: the skip is a deterministic function of the inputs, so
    the chained key remains sound.) *)
let executed ?config (options : options) (passes : pass list) : pass list =
  let config =
    match config with Some c -> c | None -> default_config ()
  in
  List.filter (fun p -> p.enabled options && selected_in config p) passes

(** Canonical rendering of the config's pass selection — the part of a
    finished artifact's cache identity that [options_fingerprint] cannot
    see (disabling [vm-optimize] changes the generated VHDL without
    changing any option field). Order-insensitive: selections that execute
    the same passes render identically. *)
let selection_fingerprint (config : config) : string =
  let canon names = String.concat "," (List.sort_uniq String.compare names) in
  let only =
    match config.only_passes with None -> "*" | Some names -> canon names
  in
  Printf.sprintf "only=%s;disabled=%s" only (canon config.disabled_passes)

let validate_selection (config : config) : unit =
  let known = pass_names () in
  let check_known what n =
    if not (List.mem n known) then
      errf "%s: unknown pass %s (known: %s)" what n (String.concat ", " known)
  in
  List.iter (check_known "--disable-pass") config.disabled_passes;
  List.iter (check_known "--dump-after") config.dump_after;
  Option.iter (List.iter (check_known "--passes")) config.only_passes;
  List.iter
    (fun n ->
      match find n with
      | Some p when not p.optional ->
        errf "pass %s is required and cannot be disabled" n
      | Some _ | None -> ())
    config.disabled_passes

(** Run one pass on the state: skipped (returning the state unchanged)
    when its option gate, selection or dynamic applicability says so;
    otherwise transformed, traced, instrumented, verified and dumped
    according to [config]. *)
let check_cancel (config : config) : unit =
  match config.cancel with
  | None -> ()
  | Some poll -> (
    match poll () with
    | Some reason -> raise (Cancelled reason)
    | None -> ())

let step ?config (p : pass) (st : state) : state =
  let config =
    match config with Some c -> c | None -> default_config ()
  in
  check_cancel config;
  if not (p.enabled st.st_options && selected_in config p) then st
  else if not (with_pass_name p.name (fun () -> p.applicable st)) then st
  else begin
    let t0 = Unix.gettimeofday () in
    let st' = with_pass_name p.name (fun () -> p.transform st) in
    let t1 = Unix.gettimeofday () in
    let st' = { st' with st_trace = st'.st_trace @ [ p.name ] } in
    (match config.instrument with
    | Some emit ->
      emit
        { pass_name = p.name;
          started_s = t0;
          elapsed_s = t1 -. t0;
          ir_size = with_pass_name p.name (fun () -> p.ir_size st') }
    | None -> ());
    if config.verify_ir then
      Option.iter
        (fun v ->
          try v st' with
          | Error msg ->
            raise (Error (prefix_pass p.name ("ir verification: " ^ msg)))
          | e -> (
            match user_message e with
            | Some m ->
              raise (Error (prefix_pass p.name ("ir verification: " ^ m)))
            | None -> raise e))
        p.verifier;
    if config.differential then
      Option.iter
        (fun d -> with_pass_name p.name (fun () -> d st'))
        p.differential;
    if List.mem p.name config.dump_after then
      config.on_dump p.name (with_pass_name p.name (fun () -> p.dump st'));
    st'
  end

(** Run a pass pipeline over the state. Raises {!Error} with the failing
    pass's name on any failure. *)
let run ?config (passes : pass list) (st : state) : state =
  let config =
    match config with Some c -> c | None -> default_config ()
  in
  validate_selection config;
  List.fold_left (fun st p -> step ~config p st) st passes
