(** The nine Table 1 benchmark kernels as C sources, with deterministic
    input generators and per-kernel compile options: bit_correlator,
    mul_acc, udiv, square_root, cos, arbitrary LUT, FIR, DCT and the (5,3)
    wavelet engine (paper §5). *)

type benchmark = {
  bench_name : string;
  source : string;
  entry : string;
  luts : Roccc_hir.Lut_conv.table list;
  tune : Driver.options -> Driver.options;
  arrays : unit -> (string * int64 array) list;
  scalars : (string * int64) list;
}

val paper_fir_source : string
(** The running FIR example from the paper's Figure 2. *)

val paper_acc_source : string
(** The global-accumulator (scalar feedback) example. *)

val paper_if_else_source : string
(** The if-conversion (predicated mux) example. *)

val bit_correlator : benchmark
val bit_correlator_mask : int
val mul_acc : benchmark
val udiv : benchmark
val square_root : benchmark
val cos_kernel : benchmark
val cos_table : Roccc_hir.Lut_conv.table
val arbitrary_lut : benchmark
val user_rom_table : Roccc_hir.Lut_conv.table
val fir : benchmark
val dct : benchmark
val dct_source : string
val dct8_coeff : int array array
(** round(64 * c(k)/2 * cos((2n+1) k pi / 16)) — shared with the golden
    behavioural model. *)

val wavelet : benchmark
(** The (5,3) lifting row pass; the full engine pairs it with
    {!wavelet_cols}. *)

val wavelet_cols : benchmark
val wavelet_rows_source : string
val wavelet_cols_source : string

val modsq : benchmark
(** Modular squaring over the Mersenne prime 2^31-1 — the wide-arithmetic
    workload: its 62-bit square compiles to a pinned multi-stage operator
    region. Not a Table 1 row; carried in the {!gallery}. *)

val modsq_source : string
(** Same source as [examples/modsq.c]. *)

val table1 : benchmark list
(** The nine rows in Table 1 order. *)

val gallery : benchmark list
(** Every built-in kernel: {!table1} plus the wide-arithmetic additions. *)

val find : string -> benchmark option
(** Looks a kernel up in the {!gallery}. *)

val compile : benchmark -> Driver.compiled
(** Compile with the benchmark's tuned options and tables. *)

val run : benchmark -> Driver.compiled * Roccc_hw.Engine.result * string list
(** Compile, simulate on the deterministic inputs, and co-verify; the
    third component lists hardware/software mismatches ([] = verified). *)
