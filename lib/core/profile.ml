(** The profiling tool set (paper Figure 1 "Code Profiling", §2 and
    reference [10]): runs an application through the interpreter with
    instrumented loops and ranks them by dynamic operation count, so the
    frequently executing kernels — the hardware candidates — are identified
    before compilation.

    Loops are instrumented by injecting a counter-increment into each body;
    per-iteration weights (arithmetic operations, memory accesses, branch
    statements) come from a static walk of the body, giving the paper's
    "computational density / control density" characterization (§4: "ROCCC
    targets high computational density, low control density
    applications"). *)

module Ast = Roccc_cfront.Ast
module Parser = Roccc_cfront.Parser
module Semant = Roccc_cfront.Semant
module Interp = Roccc_cfront.Interp

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(** One profiled loop site. *)
type site = {
  site_id : int;
  in_function : string;
  loop_path : string;  (** e.g. "fir/i" or "wavelet/r/j" *)
  static_ops : int;    (** arithmetic/logic operations per iteration *)
  memory_accesses : int;  (** array reads + writes per iteration *)
  branch_statements : int;  (** if statements per iteration *)
  mutable iterations : int64;  (** measured dynamic trip count *)
}

type profile = {
  sites : site list;  (** sorted by dynamic operations, descending *)
  total_dynamic_ops : int64;
}

let dynamic_ops (s : site) : int64 =
  Int64.mul s.iterations (Int64.of_int (max 1 s.static_ops))

let fraction (p : profile) (s : site) : float =
  if Int64.equal p.total_dynamic_ops 0L then 0.0
  else Int64.to_float (dynamic_ops s) /. Int64.to_float p.total_dynamic_ops

(** Operations per memory access — the paper's computational density. *)
let computational_density (s : site) : float =
  float_of_int s.static_ops /. float_of_int (max 1 s.memory_accesses)

(* ------------------------------------------------------------------ *)
(* Static weights                                                      *)
(* ------------------------------------------------------------------ *)

(* (arith/logic ops, memory accesses); address arithmetic inside array
   indices is NOT counted as data-path work — it belongs to the address
   generators in the compiled circuit. *)
let rec expr_ops (e : Ast.expr) : int * int =
  match e with
  | Ast.Const _ | Ast.Var _ | Ast.Deref _ -> 0, 0
  | Ast.Index (_, _) -> 0, 1
  | Ast.Binop (_, a, b) ->
    let oa, ma = expr_ops a and ob, mb = expr_ops b in
    1 + oa + ob, ma + mb
  | Ast.Unop (_, a) | Ast.Cast (_, a) ->
    let o, m = expr_ops a in
    (match e with Ast.Cast _ -> o, m | _ -> 1 + o, m)
  | Ast.Call (_, args) ->
    List.fold_left
      (fun (o, m) a ->
        let oa, ma = expr_ops a in
        o + oa, m + ma)
      (1, 0) args

(* Weights of one loop body, EXCLUDING nested loops (they are their own
   sites). *)
let body_weights (stmts : Ast.stmt list) : int * int * int =
  let rec go (ops, mem, branches) stmts =
    List.fold_left
      (fun (ops, mem, branches) s ->
        match s with
        | Ast.Sdecl (_, _, init) ->
          let o, m =
            match init with Some e -> expr_ops e | None -> 0, 0
          in
          ops + o, mem + m, branches
        | Ast.Sassign (lv, e) ->
          let o, m = expr_ops e in
          let m_extra =
            match lv with
            | Ast.Lindex (_, idx) ->
              1 + List.fold_left (fun acc i -> acc + snd (expr_ops i)) 0 idx
            | Ast.Lvar _ | Ast.Lderef _ -> 0
          in
          ops + o, mem + m + m_extra, branches
        | Ast.Sif (c, th, el) ->
          let o, m = expr_ops c in
          go (ops + o, mem + m, branches + 1) (th @ el)
        | Ast.Sfor _ -> ops, mem, branches  (* nested loop = its own site *)
        | Ast.Sreturn (Some e) | Ast.Sexpr e ->
          let o, m = expr_ops e in
          ops + o, mem + m, branches
        | Ast.Sreturn None -> ops, mem, branches)
      (ops, mem, branches) stmts
  in
  go (0, 0, 0) stmts

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

let counter_name id = Printf.sprintf "__prof_%d" id

(* Walk every function, assigning site ids to loops (outer to inner) and
   injecting counter increments as the first body statement. *)
let instrument (prog : Ast.program) : Ast.program * site list =
  let sites = ref [] in
  let next = ref 0 in
  let rec instr_stmts fname path stmts =
    List.map
      (fun s ->
        match s with
        | Ast.Sfor (h, body) ->
          let id = !next in
          incr next;
          (* the id suffix disambiguates same-named loops in one function *)
          let loop_path = Printf.sprintf "%s/%s@%d" path h.Ast.index id in
          let ops, mem, branches = body_weights body in
          sites :=
            !sites
            @ [ { site_id = id;
                  in_function = fname;
                  loop_path;
                  static_ops = ops;
                  memory_accesses = mem;
                  branch_statements = branches;
                  iterations = 0L } ];
          let bump =
            Ast.Sassign
              ( Ast.Lvar (counter_name id),
                Ast.Binop (Ast.Add, Ast.Var (counter_name id), Ast.Const 1L) )
          in
          Ast.Sfor (h, bump :: instr_stmts fname loop_path body)
        | Ast.Sif (c, th, el) ->
          Ast.Sif (c, instr_stmts fname path th, instr_stmts fname path el)
        | Ast.Sdecl _ | Ast.Sassign _ | Ast.Sreturn _ | Ast.Sexpr _ -> s)
      stmts
  in
  let funcs =
    List.map
      (fun (f : Ast.func) ->
        { f with Ast.body = instr_stmts f.Ast.fname f.Ast.fname f.Ast.body })
      prog.Ast.funcs
  in
  let counters =
    List.map
      (fun s ->
        { Ast.gtype = Ast.Tint { Ast.signed = true; bits = 32 };
          gname = counter_name s.site_id;
          ginit = Some (Ast.Const 0L) })
      !sites
  in
  { Ast.globals = prog.Ast.globals @ counters; funcs; pipelines = prog.Ast.pipelines }, !sites

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

(** Profile [entry] of the program in [source] on the given inputs. *)
let analyze ?(luts = []) ?(lut_funcs = []) ?(scalars = []) ?(arrays = [])
    ~(entry : string) (source : string) : profile =
  let prog =
    try Parser.parse_program source
    with Parser.Error (msg, line, col) ->
      errf "parse error at %d:%d: %s" line col msg
  in
  let _ = Semant.check_program ~luts prog in
  let prog', sites = instrument prog in
  if not (List.exists (fun (f : Ast.func) -> f.Ast.fname = entry) prog'.Ast.funcs)
  then errf "no function named %s" entry;
  let rt = Interp.create ~lut_funcs prog' in
  let _ = Interp.run rt entry ~scalars ~arrays in
  List.iter
    (fun s ->
      match Interp.read_global rt (counter_name s.site_id) with
      | Some v -> s.iterations <- v
      | None -> ())
    sites;
  let total =
    List.fold_left (fun acc s -> Int64.add acc (dynamic_ops s)) 0L sites
  in
  let sorted =
    List.sort
      (fun a b -> Int64.compare (dynamic_ops b) (dynamic_ops a))
      sites
  in
  { sites = sorted; total_dynamic_ops = total }

(** The hardware candidates: innermost hot loops covering at least
    [threshold] of the dynamic operations (default 10%), ranked. *)
let kernel_candidates ?(threshold = 0.1) (p : profile) : site list =
  List.filter (fun s -> fraction p s >= threshold) p.sites

let report (p : profile) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "%-24s %12s %10s %8s %10s %10s\n" "loop" "iterations" "dyn ops"
       "share" "ops/mem" "branches");
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%-24s %12Ld %10Ld %7.1f%% %10.2f %10d\n" s.loop_path
           s.iterations (dynamic_ops s)
           (100.0 *. fraction p s)
           (computational_density s)
           s.branch_statements))
    p.sites;
  (match kernel_candidates p with
  | [] -> Buffer.add_string buf "no hardware candidates above threshold\n"
  | cs ->
    Buffer.add_string buf "hardware candidates (>= 10% of dynamic ops):\n";
    List.iter
      (fun s ->
        Buffer.add_string buf
          (Printf.sprintf "  %s  (%.1f%%, density %.2f%s)\n" s.loop_path
             (100.0 *. fraction p s)
             (computational_density s)
             (if s.branch_statements > 0 then ", control-heavy" else "")))
      cs);
  Buffer.contents buf
