(** First-class pass manager for the Figure 1 pipeline.

    Every transformation — loop-level (HIR), SUIFvm (VM) and data-path — is
    a {!pass} value carrying its name, layer, option gate, IR-size metric,
    per-pass option fingerprint, an invariant verifier and an optional
    differential semantics check. The driver's stages are the declarative
    pipelines {!front_passes}, {!kernel_passes} and {!back_passes}, executed
    by {!run}; the batch service uses {!executed} and each pass's
    [fingerprint] to build chained per-pass cache keys and {!step} to resume
    a pipeline from a cached intermediate state. *)

exception Error of string
(** All pass failures, prefixed with the failing pass's name. *)

exception Cancelled of string
(** Raised by {!step} between passes when the config's [cancel] hook
    reports a reason (cooperative cancellation — e.g. a serve request's
    deadline). Deliberately distinct from {!Error}: the compiler did not
    fail, the caller gave up. *)

val user_message : exn -> string option
(** Translate a library's typed exception into a user-facing message
    ([None] for exceptions that should propagate unchanged). *)

val guard : (unit -> 'a) -> 'a
(** Run [f], translating known library exceptions into {!Error}. *)

(** {1 Options} *)

type options = {
  unroll_inner_max : int;
      (** fully unroll inner loops with at most this trip count *)
  unroll_all_max : int;
      (** fully unroll any constant loop with at most this trip count *)
  fuse_loops : bool;
  target_ns : float;             (** pipeline stage budget *)
  stage_budget : int;
      (** cap on the stage count of a multi-stage (wide) operator region
          (0 = the decomposition's natural depth) *)
  decomp : Roccc_datapath.Delay.decomp;
      (** wide-multiplier decomposition choice *)
  infer_widths : bool;           (** bit-width inference (ablation switch) *)
  optimize_vm : bool;            (** back-end CSE/copy-prop/DCE (ablation) *)
  unroll_outer_factor : int;     (** partial unrolling of the outer loop *)
  lut_convert_max_bits : int;
      (** convert pure called functions with inputs up to this width into
          ROM lookup tables instead of inlining (0 = always inline) *)
  bus_elements : int;            (** memory bus width, in elements *)
  check_vhdl : bool;             (** run the structural linter *)
}

val default_options : options

val front_options_fingerprint : options -> string
(** Canonical rendering of the option fields the front end reads. *)

val options_fingerprint : options -> string
(** Canonical rendering of every option field (cache key component). *)

(** {1 Instrumentation} *)

type pass_stats = {
  pass_name : string;
  started_s : float;   (** absolute wall-clock, seconds since the epoch *)
  elapsed_s : float;
  ir_size : int;       (** size of the active IR after the pass (0 = n/a) *)
}

type instrument = pass_stats -> unit

(** {1 Pipeline state} *)

(** The state threaded through the passes; fields fill in as layers
    complete. States up to the end of the HIR layer hold only immutable
    values and are safe to cache and share across domains; VM procedures
    are mutated in place by SSA/optimization, so back-end states are not. *)
type state = {
  st_source : string;
  st_entry : string;
  st_options : options;
  st_luts : Roccc_hir.Lut_conv.table list;
  st_seed_luts : Roccc_hir.Lut_conv.table list;
      (** the tables registered at compilation start *)
  st_program : Roccc_cfront.Ast.program option;
  st_func : Roccc_cfront.Ast.func option;
  st_kernel : Roccc_hir.Kernel.t option;
  st_proc : Roccc_vm.Proc.t option;
  st_proc_lowered : Roccc_vm.Proc.t option;
      (** deep copy taken right after lowering — the reference point for
          the differential checks of the later VM passes *)
  st_dp : Roccc_datapath.Graph.t option;
  st_widths : Roccc_datapath.Widths.t option;
  st_pipeline : Roccc_datapath.Pipeline.t option;
  st_design : Roccc_vhdl.Ast.design option;
  st_buffer_configs : Roccc_buffers.Smart_buffer.config list;
  st_area : Roccc_fpga.Area.estimate option;
  st_trace : string list;  (** executed pass names, in order *)
}

val initial :
  ?luts:Roccc_hir.Lut_conv.table list ->
  options:options ->
  entry:string ->
  string ->
  state
(** Fresh pipeline state for one compilation of [source]. Also resets the
    calling domain's registered {!Roccc_util.Id_gen} generators, keeping
    repeated compiles in one process byte-identical. *)

val buffer_configs_of :
  bus_elements:int -> Roccc_hir.Kernel.t -> Roccc_buffers.Smart_buffer.config list
(** Smart-buffer configurations for the kernel's window inputs — shared by
    the simulator and the area estimator. *)

val ast_size : Roccc_cfront.Ast.func -> int
(** Statement + expression count (the HIR IR-size metric). *)

(** {1 Pass values} *)

type layer = Cfront | Hir | Vm | Datapath | Vhdl | Fpga

val layer_name : layer -> string

type pass = {
  name : string;          (** the Figure 1 pass name *)
  layer : layer;
  optional : bool;        (** may be disabled by selection *)
  enabled : options -> bool;   (** static option gate *)
  applicable : state -> bool;  (** dynamic gate (e.g. nothing to convert) *)
  transform : state -> state;
  ir_size : state -> int;
  verifier : (state -> unit) option;      (** run under [verify_ir] *)
  differential : (state -> unit) option;  (** run under [differential] *)
  dump : state -> string;                 (** IR printer for [dump_after] *)
  fingerprint : options -> string;
      (** canonical rendering of exactly the option fields the pass reads *)
}

val front_passes : pass list
(** parse .. loop-level optimization (stage 1 of the driver). *)

val kernel_passes : pass list
(** scalar replacement + feedback detection (stage 2). *)

val back_passes : pass list
(** SUIFvm lowering .. VHDL + area estimation (stage 3). *)

val all_passes : pass list

val pass_names : unit -> string list
(** Every distinct pass name, in pipeline order. *)

val find : string -> pass option

(** {1 Manager configuration} *)

type config = {
  verify_ir : bool;          (** run each pass's verifier after it *)
  differential : bool;       (** run the differential semantics checks *)
  only_passes : string list option;
      (** when set, only these optional passes run (required passes always
          run) — the CLI's [--passes] *)
  disabled_passes : string list;   (** the CLI's [--disable-pass] *)
  dump_after : string list;        (** pass names to print IR after *)
  on_dump : string -> string -> unit;  (** receives (pass name, dump) *)
  instrument : instrument option;
  cancel : (unit -> string option) option;
      (** cooperative cancellation hook, polled at every pass boundary:
          returning [Some reason] makes {!step} raise {!Cancelled} before
          doing any further work *)
}

val default_config : unit -> config
(** [verify_ir] / [differential] default from the [ROCCC_VERIFY_IR] /
    [ROCCC_DIFFERENTIAL] environment variables; dumps go to stdout. *)

val selection_fingerprint : config -> string
(** Canonical, order-insensitive rendering of the config's pass selection
    ([only_passes] / [disabled_passes]) — a cache-key component alongside
    {!options_fingerprint}, since selection changes the generated artifact
    without changing any option field. *)

val validate_selection : config -> unit
(** Reject unknown pass names and attempts to disable required passes. *)

val executed : ?config:config -> options -> pass list -> pass list
(** The passes that would execute under the config and options, in order —
    the basis for chained per-pass cache fingerprints. (A pass whose
    dynamic [applicable] gate later skips is still listed; the skip is a
    deterministic function of the pass inputs, so chained keys stay
    sound.) *)

val step : ?config:config -> pass -> state -> state
(** Run one pass (or skip it, returning the state unchanged, when its
    gates say so): transform, trace, instrument, then verify / check /
    dump according to [config]. Raises {!Error} with the pass name. *)

val run : ?config:config -> pass list -> state -> state
(** {!validate_selection} then fold {!step} over the pipeline. *)
