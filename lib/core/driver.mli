(** The ROCCC compiler driver — the library's primary public API.

    [compile] runs the end-to-end pipeline of the paper's Figure 1 on one
    kernel function; [simulate] executes the result on the cycle-accurate
    execution model (Figure 2); [verify] checks the hardware against the C
    semantics.

    The pipeline is also exposed stage by stage ({!front_end},
    {!lower_to_kernel}, {!back_end}) so callers such as the batch
    compilation service can memoize stage outputs content-addressed on
    (source, entry, options) and observe per-pass timings through the
    {!instrument} hook. *)

exception Error of string
(** Equal to {!Pass.Error}: every failure carries the failing pass's name. *)

(** Compilation options. Start from {!default_options} and override.
    Equal to {!Pass.options}. *)
type options = Pass.options = {
  unroll_inner_max : int;
      (** fully unroll inner loops with at most this trip count (for
          bit-step algorithms like division and square root); 0 = off *)
  unroll_all_max : int;
      (** fully unroll any constant loop with at most this trip count,
          turning small kernels into block data paths; 0 = off *)
  fuse_loops : bool;  (** fuse adjacent independent loops *)
  target_ns : float;  (** combinational budget per pipeline stage *)
  stage_budget : int;
      (** cap on the stage count of a multi-stage (wide) operator region
          (0 = the decomposition's natural depth) *)
  decomp : Roccc_datapath.Delay.decomp;
      (** wide-multiplier decomposition choice *)
  infer_widths : bool;  (** bit-width inference (§4.2.4); ablation switch *)
  optimize_vm : bool;
      (** back-end value numbering / copy propagation / dead-code
          elimination; ablation switch *)
  unroll_outer_factor : int;
      (** partial unrolling of the streaming loop: the data path consumes
          [factor] windows and produces [factor] results per cycle *)
  lut_convert_max_bits : int;
      (** convert pure called functions with one scalar input of at most
          this width into ROM lookup tables instead of inlining; 0 = off *)
  bus_elements : int;  (** memory elements delivered per access *)
  check_vhdl : bool;  (** run the structural VHDL linter after generation *)
}

val default_options : options

val front_options_fingerprint : options -> string
(** Canonical rendering of exactly the option fields the front end
    ({!front_end} and {!lower_to_kernel}) reads — two option records with
    equal front fingerprints produce identical front-end results for the
    same source and entry, which is what lets a cache share front-end work
    across a back-end option sweep. *)

val options_fingerprint : options -> string
(** Canonical rendering of every option field (the full cache key). *)

(** {1 Pass instrumentation} *)

(** One executed pass, as reported to the {!instrument} hook.
    Equal to {!Pass.pass_stats}. *)
type pass_stats = Pass.pass_stats = {
  pass_name : string;  (** the Figure 1 pass name, e.g. ["datapath-build"] *)
  started_s : float;  (** absolute wall-clock start, seconds since epoch *)
  elapsed_s : float;  (** wall-clock duration in seconds *)
  ir_size : int;
      (** a size counter for the IR the pass produced (statements,
          instructions, datapath nodes, pipeline stages...); 0 = n/a *)
}

type instrument = pass_stats -> unit
(** Called once per executed pass, in execution order, on the thread
    running the compilation. *)

(** {1 Staged pipeline} *)

(** Front-end result: parse, semantic checks, LUT conversion, inlining and
    loop-level optimization. Immutable — safe to share across domains. *)
type front = {
  fr_source : string;
  fr_entry : string;
  fr_program : Roccc_cfront.Ast.program;  (** restricted to the entry *)
  fr_func : Roccc_cfront.Ast.func;
  fr_luts : Roccc_hir.Lut_conv.table list;  (** registered + converted *)
  fr_seed_luts : Roccc_hir.Lut_conv.table list;
      (** the tables registered before compilation began *)
  fr_trace : string list;
}

(** Storage-level result: scalar replacement + feedback annotation.
    Immutable — safe to share across domains. *)
type staged_kernel = {
  sk_front : front;
  sk_kernel : Roccc_hir.Kernel.t;
  sk_trace : string list;
}

(** Everything the compiler produces for one kernel. *)
type compiled = {
  source : string;
  entry : string;
  options : options;
  program : Roccc_cfront.Ast.program;  (** after front-end transformation *)
  kernel : Roccc_hir.Kernel.t;  (** scalar-replaced kernel (Figure 3/4) *)
  proc : Roccc_vm.Proc.t;  (** SSA-form virtual-machine procedure *)
  dp : Roccc_datapath.Graph.t;  (** the data path (Figures 6/7) *)
  widths : Roccc_datapath.Widths.t;  (** inferred signal widths *)
  pipeline : Roccc_datapath.Pipeline.t;  (** latch placement + clock *)
  design : Roccc_vhdl.Ast.design;  (** generated VHDL *)
  buffer_configs : Roccc_buffers.Smart_buffer.config list;
  area : Roccc_fpga.Area.estimate;  (** Virtex-II slices + clock *)
  luts : Roccc_hir.Lut_conv.table list;  (** registered lookup tables *)
  system_vhdl : string option;
      (** Figure 2 system wrapper (address generator + smart buffer +
          controller), available for 1-D single-window kernels *)
  pass_trace : string list;  (** executed passes, in order (Figure 1) *)
}

val front_end :
  ?instrument:instrument ->
  ?config:Pass.config ->
  ?options:options ->
  ?luts:Roccc_hir.Lut_conv.table list ->
  entry:string ->
  string ->
  front
(** Parse and optimize down to the loop level. Only the option fields in
    {!front_options_fingerprint} are read. Raises {!Error}. *)

val lower_to_kernel :
  ?instrument:instrument -> ?config:Pass.config -> front -> staged_kernel
(** Scalar replacement and feedback detection (reads no options).
    Raises {!Error}. *)

val back_end :
  ?instrument:instrument ->
  ?config:Pass.config ->
  ?options:options ->
  staged_kernel ->
  compiled
(** SUIFvm lowering, SSA, data-path construction, pipelining, VHDL
    generation and estimation. Raises {!Error}. *)

(** {1 Estimate-only back ends}

    The autotuner's costing tiers: same mid-end, cheaper back half. *)

(** Exact design metrics without generating VHDL: the result of running
    the back end minus [vhdl-generation] and [vhdl-lint]. Neither skipped
    pass feeds the area model, so these numbers are identical to the ones
    a full {!back_end} run reports — dominance pruning over them is
    exact. *)
type measurement = {
  ms_slices : int;
  ms_operator_slices : int;
  ms_clock_mhz : float;
  ms_latency : int;  (** pipeline stages *)
  ms_latch_bits : int;  (** after retiming (when the pass is selected) *)
  ms_greedy_latch_bits : int;
  ms_outputs_per_cycle : int;
}

(** O(instructions) costing after bit-width inference, before pipelining:
    slices from {!Roccc_fpga.Area.quick_estimate} (the paper's ref [13]),
    clock from {!Roccc_fpga.Area.quick_clock_mhz}. Approximate — the
    autotuner prunes on it only with a safety margin. *)
type quick_measurement = {
  qk_slices : int;
  qk_clock_mhz : float;
}

val measurement_of_compiled : compiled -> measurement

val estimate_back_end :
  ?instrument:instrument ->
  ?config:Pass.config ->
  ?options:options ->
  staged_kernel ->
  measurement
(** Run the back end through area estimation, skipping VHDL generation
    and linting. Raises {!Error}. *)

val quick_back_end :
  ?instrument:instrument ->
  ?config:Pass.config ->
  ?options:options ->
  staged_kernel ->
  quick_measurement
(** Run the back end through bit-width inference only, then the
    O(instructions) quick costing. Raises {!Error}. *)

val compile :
  ?instrument:instrument ->
  ?config:Pass.config ->
  ?options:options ->
  ?luts:Roccc_hir.Lut_conv.table list ->
  entry:string ->
  string ->
  compiled
(** [compile ~entry source] compiles the function [entry] of the C [source]
    ({!front_end} |> {!lower_to_kernel} |> {!back_end}). [luts] registers
    pre-existing lookup tables (e.g. {!Roccc_hir.Lut_conv.cos_table})
    callable by name from the C code. Raises {!Error} with a user-facing
    message on any front-end or back-end failure. *)

val eligible_entries : string -> string list
(** The kernel-eligible functions (array or pointer parameters) of a C
    source file, in definition order. Raises {!Error} on parse failure. *)

val compile_all :
  ?config:Pass.config ->
  ?options:options ->
  ?luts:Roccc_hir.Lut_conv.table list ->
  string ->
  (string * compiled) list * (string * string) list
(** Compile every hardware-eligible function (array/pointer parameters) in
    a source file: (name, compiled) successes and (name, error) failures. *)

(** {1 Pipeline-state conversions}

    Used by callers that drive the {!Pass} pipelines directly (the batch
    service resumes compilation from per-pass cached states). *)

val front_of_state : Pass.state -> front
(** Project a state that has completed {!Pass.front_passes} (restricts the
    program to the entry function). Raises {!Error} on missing fields. *)

val staged_of_state : Pass.state -> staged_kernel
(** Project a state that has completed {!Pass.kernel_passes}. *)

val state_of_front : ?options:options -> front -> Pass.state
(** Rebuild the pipeline state from a front-end result. *)

val state_of_staged : options:options -> staged_kernel -> Pass.state
(** Rebuild the pipeline state from a staged kernel. *)

val simulate :
  ?scalars:(string * int64) list ->
  ?arrays:(string * int64 array) list ->
  compiled ->
  Roccc_hw.Engine.result
(** Run the compiled circuit on the cycle-accurate execution model.
    [arrays] supplies input array contents by parameter name; [scalars] the
    live-in scalar parameters. Raises {!Error} (not a bare [Failure]) when
    the model traps — e.g. a division by zero in the data path. *)

val interpret :
  ?scalars:(string * int64) list ->
  ?arrays:(string * int64 array) list ->
  compiled ->
  Roccc_cfront.Interp.outcome
(** Run the original C source through the reference interpreter. *)

val verify :
  ?scalars:(string * int64) list ->
  ?arrays:(string * int64 array) list ->
  compiled ->
  string list
(** Co-simulation check: simulate and interpret on the same inputs and
    report every output mismatch ([] means the hardware behaviour equals
    the software behaviour, the paper's §4.2.2 soft-node property). *)

val report : compiled -> string
(** Human-readable summary: kernel, data path, pipeline, area. *)

val pass_pipeline_figure : compiled -> string
(** The executed pass pipeline, matching the paper's Figure 1. *)
