(** The ROCCC compiler driver: the end-to-end pipeline of Figure 1.

    C source -> parse -> semantic checks -> inlining -> loop optimizations ->
    scalar replacement -> feedback annotation -> SUIFvm lowering -> SSA/CFG ->
    data-path building -> bit-width inference -> pipelining -> VHDL
    generation -> area/clock estimation.

    Every transformation is a first-class {!Pass.pass} value; the driver is
    a thin projection layer that runs the declarative pipelines
    ({!Pass.front_passes}, {!Pass.kernel_passes}, {!Pass.back_passes}) and
    converts between the {!Pass.state} threaded through them and the staged
    result records ({!front}, {!staged_kernel}, {!compiled}) that callers
    such as the batch service memoize. *)

module Ast = Roccc_cfront.Ast
module Parser = Roccc_cfront.Parser
module Interp = Roccc_cfront.Interp
module Lut_conv = Roccc_hir.Lut_conv
module Kernel = Roccc_hir.Kernel
module Proc = Roccc_vm.Proc
module Graph = Roccc_datapath.Graph
module Widths = Roccc_datapath.Widths
module Pipeline = Roccc_datapath.Pipeline
module Smart_buffer = Roccc_buffers.Smart_buffer
module Engine = Roccc_hw.Engine
module Area = Roccc_fpga.Area

exception Error = Pass.Error

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type options = Pass.options = {
  unroll_inner_max : int;
  unroll_all_max : int;
  fuse_loops : bool;
  target_ns : float;
  stage_budget : int;
  decomp : Roccc_datapath.Delay.decomp;
  infer_widths : bool;
  optimize_vm : bool;
  unroll_outer_factor : int;
  lut_convert_max_bits : int;
  bus_elements : int;
  check_vhdl : bool;
}

let default_options = Pass.default_options
let front_options_fingerprint = Pass.front_options_fingerprint
let options_fingerprint = Pass.options_fingerprint

type pass_stats = Pass.pass_stats = {
  pass_name : string;
  started_s : float;
  elapsed_s : float;
  ir_size : int;
}

type instrument = pass_stats -> unit

(* ------------------------------------------------------------------ *)
(* Stage results                                                       *)
(* ------------------------------------------------------------------ *)

type front = {
  fr_source : string;
  fr_entry : string;
  fr_program : Ast.program;       (** restricted to the entry function *)
  fr_func : Ast.func;             (** after inlining and loop transforms *)
  fr_luts : Lut_conv.table list;  (** registered + converted tables *)
  fr_seed_luts : Lut_conv.table list;  (** registered before compilation *)
  fr_trace : string list;
}

type staged_kernel = {
  sk_front : front;
  sk_kernel : Kernel.t;
  sk_trace : string list;         (** cumulative (includes the front's) *)
}

type compiled = {
  source : string;
  entry : string;
  options : options;
  program : Ast.program;          (** after front-end transformations *)
  kernel : Kernel.t;
  proc : Proc.t;                  (** SSA-form VM procedure *)
  dp : Graph.t;
  widths : Widths.t;
  pipeline : Pipeline.t;
  design : Roccc_vhdl.Ast.design;
  buffer_configs : Smart_buffer.config list;
  area : Area.estimate;
  luts : Lut_conv.table list;
  system_vhdl : string option;
      (** Figure 2 system wrapper (address generator + smart buffer +
          controller around the data path) for 1-D single-window kernels *)
  pass_trace : string list;       (** executed passes, in order (Figure 1) *)
}

(* ------------------------------------------------------------------ *)
(* State projections                                                   *)
(* ------------------------------------------------------------------ *)

let need what = function
  | Some v -> v
  | None -> errf "pipeline state is missing the %s" what

let front_of_state (st : Pass.state) : front =
  let f = need "entry function" st.Pass.st_func in
  let program = need "program" st.Pass.st_program in
  { fr_source = st.Pass.st_source;
    fr_entry = st.Pass.st_entry;
    fr_program = { program with Ast.funcs = [ f ] };
    fr_func = f;
    fr_luts = st.Pass.st_luts;
    fr_seed_luts = st.Pass.st_seed_luts;
    fr_trace = st.Pass.st_trace }

let staged_of_state (st : Pass.state) : staged_kernel =
  { sk_front = front_of_state st;
    sk_kernel = need "kernel" st.Pass.st_kernel;
    sk_trace = st.Pass.st_trace }

let state_of_front ?(options = default_options) (fr : front) : Pass.state =
  { (Pass.initial ~luts:fr.fr_luts ~options ~entry:fr.fr_entry fr.fr_source) with
    Pass.st_seed_luts = fr.fr_seed_luts;
    st_program = Some fr.fr_program;
    st_func = Some fr.fr_func;
    st_trace = fr.fr_trace }

let state_of_staged ~(options : options) (sk : staged_kernel) : Pass.state =
  { (state_of_front ~options sk.sk_front) with
    Pass.st_kernel = Some sk.sk_kernel;
    st_trace = sk.sk_trace }

(* Figure 2 system wrapper from the pre-existing VHDL component library,
   for the simple 1-D single-window shape. *)
let system_vhdl_of (kernel : Kernel.t) (proc : Proc.t) (pipeline : Pipeline.t)
    : string option =
  match kernel.Kernel.windows, kernel.Kernel.loops with
  | [ w ], [ _ ] when List.for_all (fun o -> List.length o = 1) w.Kernel.win_offsets
    ->
    let win_ports = List.map snd w.Kernel.win_scalars in
    let out_ports =
      List.map
        (fun (o : Kernel.output) ->
          o.Kernel.port, o.Kernel.port_kind.Ast.bits)
        kernel.Kernel.outputs
    in
    Some
      (Roccc_vhdl.Library.system_wrapper_vhdl
         ~dp_entity:proc.Proc.pname
         ~element_bits:w.Kernel.win_kind.Ast.bits ~win_ports ~out_ports
         ~total_words:(List.fold_left ( * ) 1 w.Kernel.win_dims)
         ~iterations:(Kernel.iteration_space kernel)
         ~latency:(Pipeline.latency pipeline))
  | _ -> None

let compiled_of_state (st : Pass.state) : compiled =
  let kernel = need "kernel" st.Pass.st_kernel in
  let proc = need "vm procedure" st.Pass.st_proc in
  let pipeline = need "pipeline" st.Pass.st_pipeline in
  let f = need "entry function" st.Pass.st_func in
  let program = need "program" st.Pass.st_program in
  { source = st.Pass.st_source;
    entry = st.Pass.st_entry;
    options = st.Pass.st_options;
    program = { program with Ast.funcs = [ f ] };
    kernel;
    proc;
    dp = need "data path" st.Pass.st_dp;
    widths = need "signal widths" st.Pass.st_widths;
    pipeline;
    design = need "design" st.Pass.st_design;
    buffer_configs = st.Pass.st_buffer_configs;
    area = need "area estimate" st.Pass.st_area;
    luts = st.Pass.st_luts;
    system_vhdl = system_vhdl_of kernel proc pipeline;
    pass_trace = st.Pass.st_trace }

(* The explicit [?instrument] argument (the historical hook) overrides the
   one carried by [?config]. *)
let resolve_config ?instrument ?config () : Pass.config =
  let c =
    match config with Some c -> c | None -> Pass.default_config ()
  in
  match instrument with
  | Some _ -> { c with Pass.instrument }
  | None -> c

(* ------------------------------------------------------------------ *)
(* Stages                                                              *)
(* ------------------------------------------------------------------ *)

let front_end ?instrument ?config ?(options = default_options) ?(luts = [])
    ~(entry : string) (source : string) : front =
  let config = resolve_config ?instrument ?config () in
  let st = Pass.initial ~luts ~options ~entry source in
  front_of_state (Pass.run ~config Pass.front_passes st)

let lower_to_kernel ?instrument ?config (fr : front) : staged_kernel =
  let config = resolve_config ?instrument ?config () in
  let st = state_of_front fr in
  staged_of_state (Pass.run ~config Pass.kernel_passes st)

let back_end ?instrument ?config ?(options = default_options)
    (sk : staged_kernel) : compiled =
  let config = resolve_config ?instrument ?config () in
  let st = state_of_staged ~options sk in
  compiled_of_state (Pass.run ~config Pass.back_passes st)

(* ------------------------------------------------------------------ *)
(* Estimate-only back ends (the autotuner's costing tiers)             *)
(* ------------------------------------------------------------------ *)

type measurement = {
  ms_slices : int;
  ms_operator_slices : int;
  ms_clock_mhz : float;
  ms_latency : int;
  ms_latch_bits : int;
  ms_greedy_latch_bits : int;
  ms_outputs_per_cycle : int;
}

type quick_measurement = {
  qk_slices : int;
  qk_clock_mhz : float;
}

(* The full back end minus VHDL generation and linting. Neither skipped
   pass feeds the area model, so the measurement's slices, clock and
   latch bits are identical to what [back_end] would report — the
   autotuner's dominance pruning over these numbers is exact. *)
let estimate_passes : Pass.pass list =
  List.filter
    (fun (p : Pass.pass) ->
      p.Pass.name <> "vhdl-generation" && p.Pass.name <> "vhdl-lint")
    Pass.back_passes

let measurement_of_state (st : Pass.state) : measurement =
  let area = need "area estimate" st.Pass.st_area in
  let pipeline = need "pipeline" st.Pass.st_pipeline in
  { ms_slices = area.Area.slices;
    ms_operator_slices = area.Area.operator_slices;
    ms_clock_mhz = area.Area.clock_mhz;
    ms_latency = Pipeline.latency pipeline;
    ms_latch_bits = pipeline.Pipeline.latch_bits;
    ms_greedy_latch_bits = pipeline.Pipeline.greedy_latch_bits;
    ms_outputs_per_cycle = Pipeline.outputs_per_cycle pipeline }

let measurement_of_compiled (c : compiled) : measurement =
  { ms_slices = c.area.Area.slices;
    ms_operator_slices = c.area.Area.operator_slices;
    ms_clock_mhz = c.area.Area.clock_mhz;
    ms_latency = Pipeline.latency c.pipeline;
    ms_latch_bits = c.pipeline.Pipeline.latch_bits;
    ms_greedy_latch_bits = c.pipeline.Pipeline.greedy_latch_bits;
    ms_outputs_per_cycle = Pipeline.outputs_per_cycle c.pipeline }

let estimate_back_end ?instrument ?config ?(options = default_options)
    (sk : staged_kernel) : measurement =
  let config = resolve_config ?instrument ?config () in
  let st = state_of_staged ~options sk in
  measurement_of_state (Pass.run ~config estimate_passes st)

(* Everything through bit-width inference, then O(instructions) costing:
   slices from the paper's ref [13] quick estimator, clock bounded by the
   worst single-operator delay against the stage budget. *)
let quick_passes : Pass.pass list =
  let rec upto acc = function
    | [] -> List.rev acc
    | (p : Pass.pass) :: rest ->
      if p.Pass.name = "bit-width-inference" then List.rev (p :: acc)
      else upto (p :: acc) rest
  in
  upto [] Pass.back_passes

let quick_back_end ?instrument ?config ?(options = default_options)
    (sk : staged_kernel) : quick_measurement =
  let config = resolve_config ?instrument ?config () in
  let st = state_of_staged ~options sk in
  let st = Pass.run ~config quick_passes st in
  let dp = need "data path" st.Pass.st_dp in
  let widths = need "signal widths" st.Pass.st_widths in
  { qk_slices = Area.quick_estimate dp;
    qk_clock_mhz =
      Area.quick_clock_mhz ~stage_budget:options.stage_budget
        ~decomp:options.decomp ~target_ns:options.target_ns dp widths }

(** Compile one kernel function from C source to VHDL + estimates. *)
let compile ?instrument ?config ?(options = default_options) ?(luts = [])
    ~(entry : string) (source : string) : compiled =
  let fr = front_end ?instrument ?config ~options ~luts ~entry source in
  let sk = lower_to_kernel ?instrument ?config fr in
  back_end ?instrument ?config ~options sk

(** The kernel-eligible functions of a source file (array or pointer
    parameters), in definition order. *)
let eligible_entries (source : string) : string list =
  let program =
    try Parser.parse_program source
    with Parser.Error (msg, line, col) ->
      errf "parse error at %d:%d: %s" line col msg
  in
  let eligible (f : Ast.func) =
    List.exists
      (fun p ->
        match p.Ast.ptype with
        | Ast.Tarray _ | Ast.Tptr _ -> true
        | Ast.Tint _ | Ast.Tvoid -> false)
      f.Ast.params
  in
  List.filter_map
    (fun (f : Ast.func) -> if eligible f then Some f.Ast.fname else None)
    program.Ast.funcs

(** Compile every hardware-eligible function in a source file (those with
    array or pointer parameters — the kernels); returns successes and
    per-function failures. *)
let compile_all ?config ?(options = default_options) ?(luts = [])
    (source : string) : (string * compiled) list * (string * string) list =
  let entries = eligible_entries source in
  List.fold_left
    (fun (oks, errs) entry ->
      match compile ?config ~options ~luts ~entry source with
      | c -> oks @ [ entry, c ], errs
      | exception Error msg -> oks, errs @ [ entry, msg ])
    ([], []) entries

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

(** Run the compiled circuit on the cycle-accurate execution model. *)
let simulate ?(scalars = []) ?(arrays = []) (c : compiled) : Engine.result =
  let lut_bindings = List.map Lut_conv.interp_binding c.luts in
  try
    Engine.simulate ~luts:lut_bindings ~scalars ~arrays
      ~bus_elements:c.options.bus_elements c.kernel ~dp:c.dp
      ~pipeline:c.pipeline
  with
  | Roccc_vm.Instr.Vm_error msg -> errf "simulation of %s: %s" c.entry msg
  | Engine.Error msg -> errf "simulation of %s: %s" c.entry msg

(** Run the original C through the reference interpreter (same inputs). *)
let interpret ?(scalars = []) ?(arrays = []) (c : compiled) : Interp.outcome =
  let lut_sigs = List.map Lut_conv.signature c.luts in
  let lut_funcs = List.map Lut_conv.interp_binding c.luts in
  try
    Interp.run_source ~luts:lut_sigs ~lut_funcs ~scalars ~arrays c.source
      c.entry
  with Interp.Error msg -> errf "interpretation of %s: %s" c.entry msg

(** Co-simulation check: hardware simulation equals software semantics on
    the given inputs. Returns the diff report ([] when equivalent). *)
let verify ?(scalars = []) ?(arrays = []) (c : compiled) : string list =
  let hw = simulate ~scalars ~arrays c in
  let sw = interpret ~scalars ~arrays c in
  let diffs = ref [] in
  (* array outputs *)
  List.iter
    (fun (name, hw_data) ->
      match List.assoc_opt name sw.Interp.arrays with
      | Some sw_data ->
        Array.iteri
          (fun i v ->
            if not (Int64.equal v sw_data.(i)) then
              diffs :=
                !diffs
                @ [ Printf.sprintf "%s[%d]: hw=%Ld sw=%Ld" name i v sw_data.(i) ])
          hw_data
      | None -> diffs := !diffs @ [ Printf.sprintf "missing sw array %s" name ])
    hw.Engine.output_arrays;
  (* scalar outputs *)
  List.iter
    (fun (name, v) ->
      match List.assoc_opt name sw.Interp.pointer_outputs with
      | Some sv when Int64.equal v sv -> ()
      | Some sv ->
        diffs := !diffs @ [ Printf.sprintf "%s: hw=%Ld sw=%Ld" name v sv ]
      | None -> diffs := !diffs @ [ Printf.sprintf "missing sw scalar %s" name ])
    hw.Engine.scalar_outputs;
  (* software-side outputs the hardware never produced: a non-input array
     written by the C code, or a pointer output, must appear on the
     hardware side too *)
  let input_names = List.map fst arrays in
  List.iter
    (fun (name, _) ->
      if
        (not (List.mem_assoc name hw.Engine.output_arrays))
        && not (List.mem name input_names)
      then diffs := !diffs @ [ Printf.sprintf "hw never wrote array %s" name ])
    sw.Interp.arrays;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name hw.Engine.scalar_outputs) then
        diffs := !diffs @ [ Printf.sprintf "hw never wrote scalar %s" name ])
    sw.Interp.pointer_outputs;
  !diffs

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let report (c : compiled) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "=== %s ===\n" c.entry);
  Buffer.add_string buf (Kernel.describe c.kernel);
  Buffer.add_string buf
    (Printf.sprintf "datapath: %d nodes, %d instrs (%d copies)\n"
       (List.length c.dp.Graph.nodes)
       (Graph.instr_count c.dp) (Graph.copy_count c.dp));
  Buffer.add_string buf (Pipeline.describe c.pipeline);
  Buffer.add_string buf (Area.describe c.area);
  let pw = Area.power c.area in
  Buffer.add_string buf
    (Printf.sprintf "power: %.0f mW total (%.0f dynamic + %.0f static)\n"
       pw.Area.total_mw pw.Area.dynamic_mw pw.Area.static_mw);
  Buffer.contents buf

let pass_pipeline_figure (c : compiled) : string =
  "ROCCC pass pipeline (Figure 1):\n  "
  ^ String.concat "\n  -> " c.pass_trace
