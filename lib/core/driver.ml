(** The ROCCC compiler driver: the end-to-end pipeline of Figure 1.

    C source -> parse -> semantic checks -> inlining -> loop optimizations ->
    scalar replacement -> feedback annotation -> SUIFvm lowering -> SSA/CFG ->
    data-path building -> bit-width inference -> pipelining -> VHDL
    generation -> area/clock estimation.

    The pipeline is exposed as three explicit stages — {!front_end},
    {!lower_to_kernel}, {!back_end} — so a caller (the batch service) can
    memoize stage outputs content-addressed on (source, entry, options) and
    time every named pass through the {!instrument} hook. *)

module Ast = Roccc_cfront.Ast
module Parser = Roccc_cfront.Parser
module Semant = Roccc_cfront.Semant
module Interp = Roccc_cfront.Interp
module Const_fold = Roccc_hir.Const_fold
module Loop_opt = Roccc_hir.Loop_opt
module Inline = Roccc_hir.Inline
module Lut_conv = Roccc_hir.Lut_conv
module Scalar_replacement = Roccc_hir.Scalar_replacement
module Feedback = Roccc_hir.Feedback
module Kernel = Roccc_hir.Kernel
module Lower = Roccc_vm.Lower
module Proc = Roccc_vm.Proc
module Ssa = Roccc_analysis.Ssa
module Builder = Roccc_datapath.Builder
module Graph = Roccc_datapath.Graph
module Widths = Roccc_datapath.Widths
module Pipeline = Roccc_datapath.Pipeline
module Gen = Roccc_vhdl.Gen
module Lint = Roccc_vhdl.Lint
module Smart_buffer = Roccc_buffers.Smart_buffer
module Engine = Roccc_hw.Engine
module Area = Roccc_fpga.Area

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* Translate the libraries' typed exceptions into the driver's user-facing
   [Error] so no stage lets a raw internal exception escape to a caller
   (the CLI, the batch service). *)
let user_message (e : exn) : string option =
  match e with
  | Loop_opt.Error m -> Some ("loop optimization: " ^ m)
  | Inline.Error m -> Some ("inlining: " ^ m)
  | Lut_conv.Error m -> Some ("lut conversion: " ^ m)
  | Feedback.Error m -> Some ("feedback: " ^ m)
  | Scalar_replacement.Error m -> Some ("scalar replacement: " ^ m)
  | Ssa.Error m -> Some ("ssa: " ^ m)
  | Builder.Error m -> Some ("datapath construction: " ^ m)
  | Widths.Error m -> Some ("width inference: " ^ m)
  | Pipeline.Error m -> Some ("pipelining: " ^ m)
  | Gen.Error m -> Some ("vhdl generation: " ^ m)
  | Lint.Error m -> Some ("vhdl lint: " ^ m)
  | Roccc_vm.Instr.Vm_error m -> Some ("vm: " ^ m)
  | _ -> None

let guard (f : unit -> 'a) : 'a =
  try f ()
  with e -> (
    match user_message e with Some m -> raise (Error m) | None -> raise e)

type options = {
  unroll_inner_max : int;
      (** fully unroll inner loops with at most this trip count *)
  unroll_all_max : int;
      (** fully unroll any constant loop with at most this trip count
          (turns small kernels into block kernels, as for the DCT) *)
  fuse_loops : bool;
  target_ns : float;             (** pipeline stage budget *)
  infer_widths : bool;           (** bit-width inference (ablation switch) *)
  optimize_vm : bool;            (** back-end CSE/copy-prop/DCE (ablation) *)
  unroll_outer_factor : int;     (** partial unrolling of the outer loop *)
  lut_convert_max_bits : int;
      (** convert pure called functions with inputs up to this width into
          ROM lookup tables instead of inlining (0 = always inline) *)
  bus_elements : int;            (** memory bus width, in elements *)
  check_vhdl : bool;             (** run the structural linter *)
}

let default_options =
  { unroll_inner_max = 0;
    unroll_all_max = 0;
    fuse_loops = true;
    target_ns = Pipeline.default_target_ns;
    infer_widths = true;
    optimize_vm = true;
    unroll_outer_factor = 1;
    lut_convert_max_bits = 0;
    bus_elements = 1;
    check_vhdl = true }

(* Option fingerprints: a canonical rendering of exactly the fields each
   stage reads, so a content-addressed cache can share front-end work
   between jobs that differ only in back-end options (e.g. a bus-width
   sweep). Keep in sync with the stage bodies below. *)

let front_options_fingerprint (o : options) : string =
  Printf.sprintf "ui=%d;ua=%d;fuse=%b;uo=%d;lut=%d" o.unroll_inner_max
    o.unroll_all_max o.fuse_loops o.unroll_outer_factor
    o.lut_convert_max_bits

let options_fingerprint (o : options) : string =
  Printf.sprintf "%s;tns=%h;w=%b;ovm=%b;bus=%d;lint=%b"
    (front_options_fingerprint o)
    o.target_ns o.infer_widths o.optimize_vm o.bus_elements o.check_vhdl

(* ------------------------------------------------------------------ *)
(* Pass instrumentation                                                *)
(* ------------------------------------------------------------------ *)

type pass_stats = {
  pass_name : string;
  started_s : float;   (** absolute wall-clock, seconds since the epoch *)
  elapsed_s : float;
  ir_size : int;       (** size of the active IR after the pass (0 = n/a) *)
}

type instrument = pass_stats -> unit

(* A pass runner shared by the stages: appends to the Figure 1 trace and,
   when instrumented, reports wall-clock timing and an IR-size counter.
   The polymorphic field lets one runner time passes of any result type. *)
type runner = {
  run : 'a. ?size:('a -> int) -> string -> (unit -> 'a) -> 'a;
}

let make_runner ?instrument (trace : string list ref) : runner =
  { run =
      (fun ?(size = fun _ -> 0) name f ->
        match instrument with
        | None ->
          let r = f () in
          trace := !trace @ [ name ];
          r
        | Some emit ->
          let t0 = Unix.gettimeofday () in
          let r = f () in
          let t1 = Unix.gettimeofday () in
          trace := !trace @ [ name ];
          emit
            { pass_name = name;
              started_s = t0;
              elapsed_s = t1 -. t0;
              ir_size = size r };
          r) }

let ast_size (f : Ast.func) : int =
  Ast.fold_stmts (fun n _ -> n + 1) (fun n _ -> n + 1) 0 f.Ast.body

(* ------------------------------------------------------------------ *)
(* Stage results                                                       *)
(* ------------------------------------------------------------------ *)

type front = {
  fr_source : string;
  fr_entry : string;
  fr_program : Ast.program;       (** restricted to the entry function *)
  fr_func : Ast.func;             (** after inlining and loop transforms *)
  fr_luts : Lut_conv.table list;  (** registered + converted tables *)
  fr_trace : string list;
}

type staged_kernel = {
  sk_front : front;
  sk_kernel : Kernel.t;
  sk_trace : string list;         (** cumulative (includes the front's) *)
}

type compiled = {
  source : string;
  entry : string;
  options : options;
  program : Ast.program;          (** after front-end transformations *)
  kernel : Kernel.t;
  proc : Proc.t;                  (** SSA-form VM procedure *)
  dp : Graph.t;
  widths : Widths.t;
  pipeline : Pipeline.t;
  design : Roccc_vhdl.Ast.design;
  buffer_configs : Smart_buffer.config list;
  area : Area.estimate;
  luts : Lut_conv.table list;
  system_vhdl : string option;
      (** Figure 2 system wrapper (address generator + smart buffer +
          controller around the data path) for 1-D single-window kernels *)
  pass_trace : string list;       (** executed passes, in order (Figure 1) *)
}

(* Unroll loops nested inside other loops (the udiv/sqrt bit-step loops)
   while keeping the outer streaming loop. *)
let unroll_inner ~max_trip stmts =
  List.map
    (fun s ->
      match s with
      | Ast.Sfor (h, body) ->
        Ast.Sfor (h, Loop_opt.unroll_small_loops ~max_trip body)
      | s -> s)
    stmts

(* Smart-buffer configurations for the kernel's window inputs — shared by
   the simulator and the area estimator. *)
let buffer_configs_of ~(bus_elements : int) (k : Kernel.t) :
    Smart_buffer.config list =
  List.map
    (fun (w : Kernel.window_input) ->
      let ndims = List.length w.Kernel.win_dims in
      let iterations, stride, lower =
        if k.Kernel.loops = [] then
          ( List.init ndims (fun _ -> 1),
            List.init ndims (fun _ -> 0),
            List.init ndims (fun _ -> 0) )
        else
          ( List.map (fun d -> d.Kernel.count) k.Kernel.loops,
            List.map (fun d -> d.Kernel.step) k.Kernel.loops,
            List.map (fun d -> d.Kernel.lower) k.Kernel.loops )
      in
      { Smart_buffer.element_bits = w.Kernel.win_kind.Ast.bits;
        element_signed = w.Kernel.win_kind.Ast.signed;
        bus_elements;
        array_dims = w.Kernel.win_dims;
        window_offsets = w.Kernel.win_offsets;
        stride;
        iterations;
        lower })
    k.Kernel.windows

(* ------------------------------------------------------------------ *)
(* Stage 1: the front end (parse .. loop-level optimization)           *)
(* ------------------------------------------------------------------ *)

let front_end ?instrument ?(options = default_options) ?(luts = [])
    ~(entry : string) (source : string) : front =
  guard @@ fun () ->
  let trace = ref [] in
  let { run } = make_runner ?instrument trace in
  let program_size (p : Ast.program) =
    List.fold_left (fun n f -> n + ast_size f) 0 p.Ast.funcs
  in
  (* ---- front end ---- *)
  let program =
    run ~size:program_size "parse" (fun () ->
        try Parser.parse_program source
        with Parser.Error (msg, line, col) ->
          errf "parse error at %d:%d: %s" line col msg)
  in
  let lut_sigs = List.map Lut_conv.signature luts in
  let _env =
    run "semantic-check" (fun () ->
        try Semant.check_program ~luts:lut_sigs program
        with Semant.Error msg -> errf "semantic error: %s" msg)
  in
  let f =
    match List.find_opt (fun g -> String.equal g.Ast.fname entry) program.Ast.funcs with
    | Some f -> f
    | None -> errf "no function named %s" entry
  in
  (* ---- function calls: lookup tables where feasible, else inlining ----
     "Function calls will either be inlined or whenever feasible made into
     a lookup table" (paper §2). A called function is tabulated when it is
     pure, takes one scalar of at most [lut_convert_max_bits], and returns
     an integer; otherwise it is inlined. *)
  let luts, program =
    if options.lut_convert_max_bits = 0 then luts, program
    else begin
      let called_names =
        Ast.fold_stmts
          (fun acc _ -> acc)
          (fun acc e ->
            match e with
            | Ast.Call (g, _) when not (Ast.is_intrinsic g) -> g :: acc
            | _ -> acc)
          [] f.Ast.body
        |> List.sort_uniq String.compare
      in
      let convertible =
        List.filter_map
          (fun name ->
            match
              List.find_opt
                (fun g -> String.equal g.Ast.fname name)
                program.Ast.funcs
            with
            | Some callee -> (
              match callee.Ast.params, callee.Ast.ret with
              | [ { Ast.ptype = Ast.Tint k; _ } ], Ast.Tint _
                when k.Ast.bits <= options.lut_convert_max_bits -> (
                match Lut_conv.from_function program callee with
                | table -> Some table
                | exception Lut_conv.Error _ -> None)
              | _ -> None)
            | None -> None)
          called_names
      in
      if convertible = [] then luts, program
      else
        run
          ~size:(fun (ts, _) -> List.length ts)
          "lut-conversion"
          (fun () ->
            luts @ convertible, Lut_conv.convert_calls program convertible)
    end
  in
  let f =
    match
      List.find_opt (fun g -> String.equal g.Ast.fname entry) program.Ast.funcs
    with
    | Some f -> f
    | None -> errf "function %s lost during LUT conversion" entry
  in
  (* ---- loop-level optimizations ---- *)
  let f = run ~size:ast_size "inline" (fun () -> Inline.inline_calls program f) in
  let global_consts = Const_fold.readonly_global_consts program f in
  let f =
    run ~size:ast_size "constant-fold" (fun () ->
        Const_fold.optimize_func ~consts:global_consts f)
  in
  let f =
    if options.unroll_inner_max > 0 then
      run ~size:ast_size "unroll-inner-loops" (fun () ->
          { f with
            Ast.body =
              unroll_inner ~max_trip:options.unroll_inner_max f.Ast.body })
    else f
  in
  let f =
    if options.unroll_all_max > 0 then
      run ~size:ast_size "full-unroll" (fun () ->
          { f with
            Ast.body =
              Loop_opt.unroll_small_loops ~max_trip:options.unroll_all_max
                f.Ast.body })
    else f
  in
  let f =
    if options.unroll_outer_factor > 1 then
      run ~size:ast_size "partial-unroll" (fun () ->
          let body =
            List.map
              (fun s ->
                match s with
                | Ast.Sfor (h, body) ->
                  let h', body' =
                    Loop_opt.partially_unroll
                      ~factor:options.unroll_outer_factor h body
                  in
                  Ast.Sfor (h', body')
                | s -> s)
              f.Ast.body
          in
          { f with Ast.body })
    else f
  in
  let f =
    if options.fuse_loops then
      run ~size:ast_size "loop-fusion" (fun () ->
          { f with Ast.body = Loop_opt.fuse_loops f.Ast.body })
    else f
  in
  let f =
    run ~size:ast_size "constant-fold" (fun () ->
        Const_fold.optimize_func ~consts:global_consts f)
  in
  let program = { program with Ast.funcs = [ f ] } in
  { fr_source = source;
    fr_entry = entry;
    fr_program = program;
    fr_func = f;
    fr_luts = luts;
    fr_trace = !trace }

(* ------------------------------------------------------------------ *)
(* Stage 2: scalar replacement & feedback (storage level)              *)
(* ------------------------------------------------------------------ *)

let lower_to_kernel ?instrument (fr : front) : staged_kernel =
  guard @@ fun () ->
  let trace = ref fr.fr_trace in
  let { run } = make_runner ?instrument trace in
  let kernel_size (k : Kernel.t) = ast_size k.Kernel.dp in
  let kernel =
    run ~size:kernel_size "scalar-replacement" (fun () ->
        try Scalar_replacement.run fr.fr_program fr.fr_func
        with Scalar_replacement.Error msg -> errf "scalar replacement: %s" msg)
  in
  let kernel =
    run ~size:kernel_size "feedback-detection" (fun () ->
        let k = Feedback.annotate kernel in
        Feedback.validate k;
        k)
  in
  { sk_front = fr; sk_kernel = kernel; sk_trace = !trace }

(* ------------------------------------------------------------------ *)
(* Stage 3: the back end (SUIFvm .. VHDL + estimates)                  *)
(* ------------------------------------------------------------------ *)

let back_end ?instrument ?(options = default_options) (sk : staged_kernel) :
    compiled =
  guard @@ fun () ->
  let fr = sk.sk_front in
  let kernel = sk.sk_kernel in
  let luts = fr.fr_luts in
  let trace = ref sk.sk_trace in
  let { run } = make_runner ?instrument trace in
  let lut_sigs = List.map Lut_conv.signature luts in
  let proc_size (p : Proc.t) = List.length (Proc.all_instrs p) in
  let proc =
    run ~size:proc_size "lower-to-suifvm" (fun () ->
        Lower.lower_kernel ~luts:lut_sigs kernel)
  in
  run ~size:(fun _ -> proc_size proc) "ssa-and-cfg" (fun () ->
      let _cfg = Ssa.convert proc in
      Ssa.verify proc);
  if options.optimize_vm then
    run ~size:(fun _ -> proc_size proc) "vm-optimize" (fun () ->
        let _stats = Roccc_analysis.Optimize.run proc in
        Ssa.verify proc);
  let dp =
    run ~size:Graph.instr_count "datapath-build" (fun () ->
        let dp = Builder.build proc in
        Builder.verify_adjoining dp;
        dp)
  in
  let widths =
    run ~size:(fun _ -> Graph.instr_count dp) "bit-width-inference" (fun () ->
        if options.infer_widths then Widths.infer dp else Widths.declared dp)
  in
  let pipeline =
    run ~size:Pipeline.latency "pipelining" (fun () ->
        Pipeline.build ~target_ns:options.target_ns dp widths)
  in
  let design =
    run
      ~size:(fun (d : Roccc_vhdl.Ast.design) -> List.length d.Roccc_vhdl.Ast.units)
      "vhdl-generation"
      (fun () -> Gen.generate ~luts pipeline)
  in
  if options.check_vhdl then
    run "vhdl-lint" (fun () ->
        match Lint.check design with
        | _ -> ()
        | exception Lint.Error msg -> errf "generated VHDL fails lint: %s" msg);
  let buffer_configs, area =
    run
      ~size:(fun (_, (a : Area.estimate)) -> a.Area.slices)
      "area-estimation"
      (fun () ->
        let buffer_configs =
          buffer_configs_of ~bus_elements:options.bus_elements kernel
        in
        buffer_configs, Area.estimate ~luts ~buffers:buffer_configs pipeline)
  in
  (* Figure 2 system wrapper from the pre-existing VHDL component library,
     for the simple 1-D single-window shape. *)
  let system_vhdl =
    match kernel.Kernel.windows, kernel.Kernel.loops with
    | [ w ], [ _ ] when List.for_all (fun o -> List.length o = 1) w.Kernel.win_offsets
      ->
      let win_ports = List.map snd w.Kernel.win_scalars in
      let out_ports =
        List.map
          (fun (o : Kernel.output) ->
            o.Kernel.port, o.Kernel.port_kind.Ast.bits)
          kernel.Kernel.outputs
      in
      Some
        (Roccc_vhdl.Library.system_wrapper_vhdl
           ~dp_entity:proc.Proc.pname
           ~element_bits:w.Kernel.win_kind.Ast.bits ~win_ports ~out_ports
           ~total_words:(List.fold_left ( * ) 1 w.Kernel.win_dims)
           ~iterations:(Kernel.iteration_space kernel)
           ~latency:(Pipeline.latency pipeline))
    | _ -> None
  in
  { source = fr.fr_source; entry = fr.fr_entry; options;
    program = fr.fr_program; kernel; proc; dp; widths; pipeline; design;
    buffer_configs; area; luts; system_vhdl; pass_trace = !trace }

(** Compile one kernel function from C source to VHDL + estimates. *)
let compile ?instrument ?(options = default_options) ?(luts = [])
    ~(entry : string) (source : string) : compiled =
  let fr = front_end ?instrument ~options ~luts ~entry source in
  let sk = lower_to_kernel ?instrument fr in
  back_end ?instrument ~options sk

(** The kernel-eligible functions of a source file (array or pointer
    parameters), in definition order. *)
let eligible_entries (source : string) : string list =
  let program =
    try Parser.parse_program source
    with Parser.Error (msg, line, col) ->
      errf "parse error at %d:%d: %s" line col msg
  in
  let eligible (f : Ast.func) =
    List.exists
      (fun p ->
        match p.Ast.ptype with
        | Ast.Tarray _ | Ast.Tptr _ -> true
        | Ast.Tint _ | Ast.Tvoid -> false)
      f.Ast.params
  in
  List.filter_map
    (fun (f : Ast.func) -> if eligible f then Some f.Ast.fname else None)
    program.Ast.funcs

(** Compile every hardware-eligible function in a source file (those with
    array or pointer parameters — the kernels); returns successes and
    per-function failures. *)
let compile_all ?(options = default_options) ?(luts = []) (source : string) :
    (string * compiled) list * (string * string) list =
  let entries = eligible_entries source in
  List.fold_left
    (fun (oks, errs) entry ->
      match compile ~options ~luts ~entry source with
      | c -> oks @ [ entry, c ], errs
      | exception Error msg -> oks, errs @ [ entry, msg ])
    ([], []) entries

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

(** Run the compiled circuit on the cycle-accurate execution model. *)
let simulate ?(scalars = []) ?(arrays = []) (c : compiled) : Engine.result =
  let lut_bindings = List.map Lut_conv.interp_binding c.luts in
  try
    Engine.simulate ~luts:lut_bindings ~scalars ~arrays
      ~bus_elements:c.options.bus_elements c.kernel ~dp:c.dp
      ~pipeline:c.pipeline
  with
  | Roccc_vm.Instr.Vm_error msg -> errf "simulation of %s: %s" c.entry msg
  | Engine.Error msg -> errf "simulation of %s: %s" c.entry msg

(** Run the original C through the reference interpreter (same inputs). *)
let interpret ?(scalars = []) ?(arrays = []) (c : compiled) : Interp.outcome =
  let lut_sigs = List.map Lut_conv.signature c.luts in
  let lut_funcs = List.map Lut_conv.interp_binding c.luts in
  try
    Interp.run_source ~luts:lut_sigs ~lut_funcs ~scalars ~arrays c.source
      c.entry
  with Interp.Error msg -> errf "interpretation of %s: %s" c.entry msg

(** Co-simulation check: hardware simulation equals software semantics on
    the given inputs. Returns the diff report ([] when equivalent). *)
let verify ?(scalars = []) ?(arrays = []) (c : compiled) : string list =
  let hw = simulate ~scalars ~arrays c in
  let sw = interpret ~scalars ~arrays c in
  let diffs = ref [] in
  (* array outputs *)
  List.iter
    (fun (name, hw_data) ->
      match List.assoc_opt name sw.Interp.arrays with
      | Some sw_data ->
        Array.iteri
          (fun i v ->
            if not (Int64.equal v sw_data.(i)) then
              diffs :=
                !diffs
                @ [ Printf.sprintf "%s[%d]: hw=%Ld sw=%Ld" name i v sw_data.(i) ])
          hw_data
      | None -> diffs := !diffs @ [ Printf.sprintf "missing sw array %s" name ])
    hw.Engine.output_arrays;
  (* scalar outputs *)
  List.iter
    (fun (name, v) ->
      match List.assoc_opt name sw.Interp.pointer_outputs with
      | Some sv when Int64.equal v sv -> ()
      | Some sv ->
        diffs := !diffs @ [ Printf.sprintf "%s: hw=%Ld sw=%Ld" name v sv ]
      | None -> diffs := !diffs @ [ Printf.sprintf "missing sw scalar %s" name ])
    hw.Engine.scalar_outputs;
  (* software-side outputs the hardware never produced: a non-input array
     written by the C code, or a pointer output, must appear on the
     hardware side too *)
  let input_names = List.map fst arrays in
  List.iter
    (fun (name, _) ->
      if
        (not (List.mem_assoc name hw.Engine.output_arrays))
        && not (List.mem name input_names)
      then diffs := !diffs @ [ Printf.sprintf "hw never wrote array %s" name ])
    sw.Interp.arrays;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name hw.Engine.scalar_outputs) then
        diffs := !diffs @ [ Printf.sprintf "hw never wrote scalar %s" name ])
    sw.Interp.pointer_outputs;
  !diffs

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let report (c : compiled) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "=== %s ===\n" c.entry);
  Buffer.add_string buf (Kernel.describe c.kernel);
  Buffer.add_string buf
    (Printf.sprintf "datapath: %d nodes, %d instrs (%d copies)\n"
       (List.length c.dp.Graph.nodes)
       (Graph.instr_count c.dp) (Graph.copy_count c.dp));
  Buffer.add_string buf (Pipeline.describe c.pipeline);
  Buffer.add_string buf (Area.describe c.area);
  let pw = Area.power c.area in
  Buffer.add_string buf
    (Printf.sprintf "power: %.0f mW total (%.0f dynamic + %.0f static)\n"
       pw.Area.total_mw pw.Area.dynamic_mw pw.Area.static_mw);
  Buffer.contents buf

let pass_pipeline_figure (c : compiled) : string =
  "ROCCC pass pipeline (Figure 1):\n  "
  ^ String.concat "\n  -> " c.pass_trace
