(** The nine Table 1 benchmark kernels as C sources for the compiler, with
    deterministic input generators and per-kernel compile options.

    bit_correlator, mul_acc, udiv, square_root, cos, arbitrary LUT, FIR,
    DCT and the (5,3) wavelet engine (paper §5). *)

module Lut_conv = Roccc_hir.Lut_conv
module Ast = Roccc_cfront.Ast

(* Deterministic pseudo-random inputs (xorshift); keeps benches stable. *)
let prng seed =
  let state = ref (if seed = 0 then 0x9E3779B9 else seed) in
  fun bound ->
    let x = !state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 17) in
    let x = x lxor (x lsl 5) in
    state := x land 0x3FFFFFFF;
    !state mod bound

type benchmark = {
  bench_name : string;
  source : string;
  entry : string;
  luts : Lut_conv.table list;
  tune : Driver.options -> Driver.options;
  arrays : unit -> (string * int64 array) list;
  scalars : (string * int64) list;
}

let no_tune o = o

(* ------------------------------------------------------------------ *)
(* The running examples from the paper's figures (the Figure 2 FIR,    *)
(* the global accumulator, and the if-conversion example) -- shared by *)
(* the benches and the test suite.                                     *)
(* ------------------------------------------------------------------ *)

let paper_fir_source =
  "void fir(int A[21], int C[17]) {\n\
  \  int i;\n\
  \  for (i = 0; i < 17; i = i + 1) {\n\
  \    C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];\n\
  \  }\n\
   }\n"

let paper_acc_source =
  "int sum = 0;\n\
   void acc(int A[32], int* out) {\n\
  \  int i;\n\
  \  for (i = 0; i < 32; i++) {\n\
  \    sum = sum + A[i];\n\
  \  }\n\
  \  *out = sum;\n\
   }\n"

let paper_if_else_source =
  "void if_else(int x1, int x2, int* x3, int* x4) {\n\
  \  int a, c;\n\
  \  c = x1 - x2;\n\
  \  if (c < x2)\n\
  \    a = x1 * x1;\n\
  \  else\n\
  \    a = x1 * x2 + 3;\n\
  \  c = c - a;\n\
  \  *x3 = c;\n\
  \  *x4 = a;\n\
  \  return;\n\
   }\n"

(* ------------------------------------------------------------------ *)
(* bit_correlator: bits of an 8-bit input equal to the constant mask    *)
(* ------------------------------------------------------------------ *)

let bit_correlator_mask = 0xA5

let bit_correlator =
  let source =
    Printf.sprintf
      "void bit_correlator(uint8 X[64], uint4 C[64]) {\n\
      \  int i;\n\
      \  for (i = 0; i < 64; i++) {\n\
      \    int t, cnt;\n\
      \    t = ~(X[i] ^ %d) & 255;\n\
      \    cnt = (t & 1) + ((t >> 1) & 1) + ((t >> 2) & 1) + ((t >> 3) & 1)\n\
      \        + ((t >> 4) & 1) + ((t >> 5) & 1) + ((t >> 6) & 1)\n\
      \        + ((t >> 7) & 1);\n\
      \    C[i] = cnt;\n\
      \  }\n\
       }\n"
      bit_correlator_mask
  in
  { bench_name = "bit_correlator";
    source;
    entry = "bit_correlator";
    luts = [];
    tune = no_tune;
    arrays =
      (fun () ->
        let rand = prng 11 in
        [ "X", Array.init 64 (fun _ -> Int64.of_int (rand 256)) ]);
    scalars = [] }

(* ------------------------------------------------------------------ *)
(* mul_acc: 12-bit multiplier-accumulator with a new-data flag          *)
(* ------------------------------------------------------------------ *)

let mul_acc =
  { bench_name = "mul_acc";
    source =
      "int acc = 0;\n\
       void mul_acc(int12 A[64], int12 B[64], uint1 ND[64], int* out) {\n\
      \  int i;\n\
      \  for (i = 0; i < 64; i++) {\n\
      \    if (ND[i]) { acc = acc + A[i] * B[i]; }\n\
      \  }\n\
      \  *out = acc;\n\
       }\n";
    entry = "mul_acc";
    luts = [];
    tune = no_tune;
    arrays =
      (fun () ->
        let rand = prng 23 in
        [ "A", Array.init 64 (fun _ -> Int64.of_int (rand 2048 - 1024));
          "B", Array.init 64 (fun _ -> Int64.of_int (rand 2048 - 1024));
          "ND", Array.init 64 (fun _ -> Int64.of_int (rand 2)) ]);
    scalars = [] }

(* ------------------------------------------------------------------ *)
(* udiv: 8-bit unsigned restoring division, bit loop fully unrolled     *)
(* ------------------------------------------------------------------ *)

let udiv =
  { bench_name = "udiv";
    source =
      "void udiv(uint8 N[16], uint8 D[16], uint8 Q[16], uint8 R[16]) {\n\
      \  int i;\n\
      \  for (i = 0; i < 16; i++) {\n\
      \    int n, d, rem, q, b;\n\
      \    n = N[i];\n\
      \    d = D[i];\n\
      \    rem = 0;\n\
      \    q = 0;\n\
      \    for (b = 7; b >= 0; b--) {\n\
      \      rem = (rem << 1) | ((n >> b) & 1);\n\
      \      if (rem >= d) {\n\
      \        rem = rem - d;\n\
      \        q = q | (1 << b);\n\
      \      }\n\
      \    }\n\
      \    Q[i] = q;\n\
      \    R[i] = rem;\n\
      \  }\n\
       }\n";
    entry = "udiv";
    luts = [];
    tune = (fun o -> { o with Driver.unroll_inner_max = 8 });
    arrays =
      (fun () ->
        let rand = prng 37 in
        [ "N", Array.init 16 (fun _ -> Int64.of_int (rand 256));
          "D", Array.init 16 (fun _ -> Int64.of_int (1 + rand 255)) ]);
    scalars = [] }

(* ------------------------------------------------------------------ *)
(* square_root: 24-bit integer square root, 12 unrolled root steps      *)
(* ------------------------------------------------------------------ *)

let square_root =
  { bench_name = "square_root";
    source =
      "void square_root(uint24 X[16], uint12 S[16]) {\n\
      \  int i;\n\
      \  for (i = 0; i < 16; i++) {\n\
      \    int x, rem, root, b, trial;\n\
      \    x = X[i];\n\
      \    rem = x;\n\
      \    root = 0;\n\
      \    for (b = 11; b >= 0; b--) {\n\
      \      trial = ((root << 1) + (1 << b)) << b;\n\
      \      if (rem >= trial) {\n\
      \        rem = rem - trial;\n\
      \        root = root + (1 << b);\n\
      \      }\n\
      \    }\n\
      \    S[i] = root;\n\
      \  }\n\
       }\n";
    entry = "square_root";
    luts = [];
    tune = (fun o -> { o with Driver.unroll_inner_max = 12 });
    arrays =
      (fun () ->
        let rand = prng 41 in
        [ "X", Array.init 16 (fun _ -> Int64.of_int (rand 16777216)) ]);
    scalars = [] }

(* ------------------------------------------------------------------ *)
(* cos / arbitrary LUT: 10-bit address, 16-bit data ROM lookups         *)
(* ------------------------------------------------------------------ *)

let cos_table = Lut_conv.cos_table ~in_bits:10 ~out_bits:16 ()

let cos_kernel =
  { bench_name = "cos";
    source =
      "void cos_kernel(uint10 X[64], int16 Y[64]) {\n\
      \  int i;\n\
      \  for (i = 0; i < 64; i++) {\n\
      \    Y[i] = cos(X[i]);\n\
      \  }\n\
       }\n";
    entry = "cos_kernel";
    luts = [ cos_table ];
    tune = no_tune;
    arrays =
      (fun () ->
        let rand = prng 53 in
        [ "X", Array.init 64 (fun _ -> Int64.of_int (rand 1024)) ]);
    scalars = [] }

let user_rom_table =
  let rand = prng 97 in
  Lut_conv.of_contents ~name:"user_rom"
    ~in_kind:(Ast.make_ikind ~signed:false 10)
    ~out_kind:(Ast.make_ikind ~signed:true 16)
    (Array.init 1024 (fun _ -> Int64.of_int (rand 65536 - 32768)))

let arbitrary_lut =
  { bench_name = "arbitrary_lut";
    source =
      "void arbitrary_lut(uint10 X[64], int16 Y[64]) {\n\
      \  int i;\n\
      \  for (i = 0; i < 64; i++) {\n\
      \    Y[i] = user_rom(X[i]);\n\
      \  }\n\
       }\n";
    entry = "arbitrary_lut";
    luts = [ user_rom_table ];
    tune = no_tune;
    arrays =
      (fun () ->
        let rand = prng 59 in
        [ "X", Array.init 64 (fun _ -> Int64.of_int (rand 1024)) ]);
    scalars = [] }

(* ------------------------------------------------------------------ *)
(* FIR: two 5-tap 8-bit constant-coefficient filters, 16-bit bus        *)
(* ------------------------------------------------------------------ *)

let fir =
  { bench_name = "fir";
    source =
      "void fir(int8 A[64], int16 C[60], int16 E[60]) {\n\
      \  int i;\n\
      \  for (i = 0; i < 60; i++) {\n\
      \    C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];\n\
      \    E[i] = 2*A[i] + 4*A[i+1] + 6*A[i+2] + 4*A[i+3] + 2*A[i+4];\n\
      \  }\n\
       }\n";
    entry = "fir";
    luts = [];
    tune = (fun o -> { o with Driver.bus_elements = 2 });
    arrays =
      (fun () ->
        let rand = prng 61 in
        [ "A", Array.init 64 (fun _ -> Int64.of_int (rand 256 - 128)) ]);
    scalars = [] }

(* ------------------------------------------------------------------ *)
(* DCT: 1-D 8-point, 8-bit input, 19-bit output, fully unrolled         *)
(* ------------------------------------------------------------------ *)

(* round(64 * c(k)/2 * cos((2n+1) k pi / 16)); c(0) = 1/sqrt2. *)
let dct8_coeff : int array array =
  Array.init 8 (fun k ->
      Array.init 8 (fun n ->
          let ck = if k = 0 then 1.0 /. Float.sqrt 2.0 else 1.0 in
          let v =
            64.0 *. ck /. 2.0
            *. Float.cos
                 (Float.pi *. float_of_int ((2 * n) + 1) *. float_of_int k
                 /. 16.0)
          in
          int_of_float (Float.round v)))

(* "Both ROCCC DCT and Xilinx IP DCT explore the symmetry within the cosine
   coefficients" (§5): the even/odd butterfly halves the multiplier count —
   even outputs depend on s_n = X[n] + X[7-n], odd on d_n = X[n] - X[7-n],
   4 constant multiplies each instead of 8. *)
let dct_source : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "void dct(int8 X[8], int19 Y[8]) {\n";
  Buffer.add_string buf "  int s0, s1, s2, s3, d0, d1, d2, d3;\n";
  for n = 0 to 3 do
    Buffer.add_string buf
      (Printf.sprintf "  s%d = X[%d] + X[%d];\n" n n (7 - n));
    Buffer.add_string buf
      (Printf.sprintf "  d%d = X[%d] - X[%d];\n" n n (7 - n))
  done;
  let term c v =
    if c >= 0 then Printf.sprintf "+ %d*%s" c v
    else Printf.sprintf "- %d*%s" (-c) v
  in
  let strip rhs =
    if String.length rhs > 2 && String.sub rhs 0 2 = "+ " then
      String.sub rhs 2 (String.length rhs - 2)
    else rhs
  in
  Array.iteri
    (fun k row ->
      let terms =
        if k mod 2 = 0 then
          (* even rows are symmetric: row.(n) = row.(7-n) *)
          List.init 4 (fun n -> term row.(n) (Printf.sprintf "s%d" n))
        else
          (* odd rows are antisymmetric: row.(n) = -row.(7-n) *)
          List.init 4 (fun n -> term row.(n) (Printf.sprintf "d%d" n))
      in
      Buffer.add_string buf
        (Printf.sprintf "  Y[%d] = %s;\n" k (strip (String.concat " " terms))))
    dct8_coeff;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let dct =
  { bench_name = "dct";
    source = dct_source;
    entry = "dct";
    luts = [];
    tune = no_tune;
    arrays =
      (fun () ->
        let rand = prng 71 in
        [ "X", Array.init 8 (fun _ -> Int64.of_int (rand 256 - 128)) ]);
    scalars = [] }

(* ------------------------------------------------------------------ *)
(* Wavelet: 2-D (5,3) lifting, row pass and column pass kernels         *)
(* ------------------------------------------------------------------ *)

(* The row pass walks even columns with a 5-wide window, producing the
   approximation (S) and detail (Dd) planes; d[j-1] is recomputed from the
   window instead of fed back, trading multipliers for registers (one of the
   compiler's recompute-vs-store choices). Interior columns only; image
   boundaries are handled by the host's symmetric extension. *)
let wavelet_rows_source =
  "void wavelet_rows(int16 X[16][34], int16 S[16][34], int16 Dd[16][34]) {\n\
  \  int r, j;\n\
  \  for (r = 0; r < 16; r++) {\n\
  \    for (j = 2; j < 32; j = j + 2) {\n\
  \      int d, dm1, s;\n\
  \      d = X[r][j+1] - (X[r][j] + X[r][j+2]) / 2;\n\
  \      dm1 = X[r][j-1] - (X[r][j-2] + X[r][j]) / 2;\n\
  \      s = X[r][j] + (dm1 + d + 2) / 4;\n\
  \      S[r][j] = s;\n\
  \      Dd[r][j] = d;\n\
  \    }\n\
  \  }\n\
   }\n"

let wavelet_cols_source =
  "void wavelet_cols(int16 X[34][16], int16 S[34][16], int16 Dd[34][16]) {\n\
  \  int r, c;\n\
  \  for (r = 2; r < 32; r = r + 2) {\n\
  \    for (c = 0; c < 16; c++) {\n\
  \      int d, dm1, s;\n\
  \      d = X[r+1][c] - (X[r][c] + X[r+2][c]) / 2;\n\
  \      dm1 = X[r-1][c] - (X[r-2][c] + X[r][c]) / 2;\n\
  \      s = X[r][c] + (dm1 + d + 2) / 4;\n\
  \      S[r][c] = s;\n\
  \      Dd[r][c] = d;\n\
  \    }\n\
  \  }\n\
   }\n"

let wavelet =
  { bench_name = "wavelet";
    source = wavelet_rows_source;
    entry = "wavelet_rows";
    luts = [];
    tune = no_tune;
    arrays =
      (fun () ->
        let rand = prng 83 in
        [ "X", Array.init (16 * 34) (fun _ -> Int64.of_int (rand 512 - 256)) ]);
    scalars = [] }

let wavelet_cols =
  { bench_name = "wavelet_cols";
    source = wavelet_cols_source;
    entry = "wavelet_cols";
    luts = [];
    tune = no_tune;
    arrays =
      (fun () ->
        let rand = prng 89 in
        [ "X", Array.init (34 * 16) (fun _ -> Int64.of_int (rand 512 - 256)) ]);
    scalars = [] }

(* ------------------------------------------------------------------ *)
(* Modular square (wide arithmetic): x*x mod 2^31-1, Mersenne folding   *)
(* ------------------------------------------------------------------ *)

(* Same source as examples/modsq.c. The 62-bit square becomes a pinned
   multi-stage operator region; the reduction is two shift-and-add folds
   plus one conditional subtract. *)
let modsq_source =
  "void modsq(uint32 A[16], uint32 C[16]) {\n\
  \  int i;\n\
  \  for (i = 0; i < 16; i++) {\n\
  \    uint64 x, p, r;\n\
  \    x = A[i] & 2147483647;\n\
  \    p = x * x;\n\
  \    r = (p & 2147483647) + (p >> 31);\n\
  \    r = (r & 2147483647) + (r >> 31);\n\
  \    if (r >= 2147483647) { r = r - 2147483647; }\n\
  \    C[i] = r;\n\
  \  }\n\
   }\n"

let modsq =
  { bench_name = "modsq";
    source = modsq_source;
    entry = "modsq";
    luts = [];
    tune = no_tune;
    arrays =
      (fun () ->
        let rand = prng 101 in
        [ ( "A",
            Array.init 16 (fun _ ->
                Int64.add
                  (Int64.mul (Int64.of_int (rand 65536)) 65536L)
                  (Int64.of_int (rand 65536))) ) ]);
    scalars = [] }

(* ------------------------------------------------------------------ *)

(** Table 1 order. The wavelet engine is the row pass + column pass pair;
    [wavelet_cols] is carried separately and summed by the harness. *)
let table1 : benchmark list =
  [ bit_correlator; mul_acc; udiv; square_root; cos_kernel; arbitrary_lut;
    fir; dct; wavelet ]

(** Every built-in kernel: the nine Table 1 rows plus the wide-arithmetic
    gallery additions. *)
let gallery : benchmark list = table1 @ [ modsq ]

let find name = List.find_opt (fun b -> String.equal b.bench_name name) gallery

(** Compile a benchmark with its tuned options. *)
let compile (b : benchmark) : Driver.compiled =
  Driver.compile ~options:(b.tune Driver.default_options) ~luts:b.luts
    ~entry:b.entry b.source

(** Compile and co-simulate a benchmark on its deterministic inputs;
    returns (compiled, simulation result, diffs-vs-software). *)
let run (b : benchmark) : Driver.compiled * Roccc_hw.Engine.result * string list
    =
  let c = compile b in
  let arrays = b.arrays () in
  let r = Driver.simulate ~scalars:b.scalars ~arrays c in
  let diffs = Driver.verify ~scalars:b.scalars ~arrays c in
  c, r, diffs
