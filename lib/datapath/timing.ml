(** The timed netlist (paper §4.2.3 substrate): every data-path instruction
    annotated with its estimated combinational delay, its producer/consumer
    edges, and its ASAP/ALAP stage levels under a clock-period target of
    [target_ns] nanoseconds of combinational logic per stage.

    This layer owns the timing facts the back half of the compiler shares:
    the pipeliner places and retimes latches over it, the VHDL generator
    derives delay chains from the resulting stage assignment, the hardware
    model takes latency from it, and the area model charges pipeline
    registers from the same latch-bit accounting ({!latch_bits}). *)

module Instr = Roccc_vm.Instr
module Proc = Roccc_vm.Proc

type tinstr = {
  ti : Instr.instr;
  ti_node : int;          (** owning data-path node id *)
  ti_index : int;         (** position in the topological order *)
  ti_delay : float;       (** per-stage combinational delay, ns *)
  ti_stages : int;        (** stages occupied: 1 = single-cycle, >1 = a
                              pinned multi-stage region starting at the
                              assigned stage *)
  mutable asap : int;     (** earliest delay-feasible (start) stage *)
  mutable alap : int;     (** latest stage keeping every consumer feasible *)
}

(* A multi-stage instruction occupies stages [stage, stage + ti_stages - 1]
   as one pinned region: operands are latched at the region entry boundary
   and the result is registered at the region exit, so consumers sit at
   [stage + ti_stages] or later and never chain combinationally into or out
   of the region. [region_span] is the extra stage distance the region
   imposes on its consumers (0 for single-cycle instructions, which
   consumers may share a stage with). *)
let region_span (ti : tinstr) : int = if ti.ti_stages > 1 then ti.ti_stages else 0

type t = {
  dp : Graph.t;
  widths : Widths.t;
  target_ns : float;      (** combinational budget per stage, ns *)
  instrs : tinstr list;   (** topological (level, node, program) order *)
  producer : (Instr.vreg, tinstr) Hashtbl.t;
  consumers : (Instr.vreg, tinstr list) Hashtbl.t;
  asap_stage_count : int; (** stages the ASAP schedule occupies *)
}

let mobility (ti : tinstr) : int = max 0 (ti.alap - ti.asap)

(* Physical width of a register: the inferred width, falling back to the
   32-bit C default for registers outside the analyzed set (entry copies of
   unused ports). Shared by every latch-bit computation. *)
let reg_width (t : t) (r : Instr.vreg) : int =
  Option.value (Widths.width_opt t.widths r) ~default:32

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(* The largest single-instruction combinational delay — a lower bound on
   any achievable stage delay, computable without building the netlist.
   The autotuner's cheap costing tier prices clock from it. *)
let worst_instr_delay_ns ?stage_budget ?decomp (dp : Graph.t)
    (widths : Widths.t) : float =
  let consts = Graph.constant_values dp in
  List.fold_left
    (fun acc (_, (i : Instr.instr)) ->
      let sw =
        List.map
          (fun r -> Option.value (Widths.width_opt widths r) ~default:32)
          i.Instr.srcs
      in
      let const_operands =
        List.map (fun r -> Hashtbl.find_opt consts r) i.Instr.srcs
      in
      Float.max acc
        (Delay.instr_delay_ns ?stage_budget ?decomp ~const_operands i.Instr.op
           i.Instr.kind sw))
    0.0 (Graph.flatten dp)

let build ?(target_ns = 5.0) ?stage_budget ?decomp (dp : Graph.t)
    (widths : Widths.t) : t =
  let consts = Graph.constant_values dp in
  let instrs =
    List.mapi
      (fun idx (node_id, (i : Instr.instr)) ->
        let sw =
          List.map
            (fun r -> Option.value (Widths.width_opt widths r) ~default:32)
            i.Instr.srcs
        in
        let const_operands =
          List.map (fun r -> Hashtbl.find_opt consts r) i.Instr.srcs
        in
        let d =
          Delay.instr_delay ?stage_budget ?decomp ~const_operands i.Instr.op
            i.Instr.kind sw
        in
        { ti = i;
          ti_node = node_id;
          ti_index = idx;
          ti_delay = d.Delay.per_stage_ns;
          ti_stages = d.Delay.stages;
          asap = 0;
          alap = 0 })
      (Graph.flatten dp)
  in
  let producer : (Instr.vreg, tinstr) Hashtbl.t = Hashtbl.create 64 in
  let consumers : (Instr.vreg, tinstr list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ti ->
      (match ti.ti.Instr.dst with
      | Some d -> Hashtbl.replace producer d ti
      | None -> ());
      List.iter
        (fun r ->
          let cur = Option.value (Hashtbl.find_opt consumers r) ~default:[] in
          Hashtbl.replace consumers r (cur @ [ ti ]))
        ti.ti.Instr.srcs)
    instrs;
  (* ---- ASAP: greedy delay-chunked levels, forward ----
     An instruction starts when its latest same-stage operand finishes; when
     the chain would exceed [target_ns] (and the operands arrive mid-stage,
     so a boundary can help), its operands are latched and it opens the next
     stage. A single instruction slower than the whole budget still gets a
     stage of its own. *)
  let finish : (Instr.vreg, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ti ->
      (* first stage a produced operand is usable combinationally: same
         stage for single-cycle producers, the stage after the region exit
         register for multi-stage ones *)
      let avail r =
        match Hashtbl.find_opt producer r with
        | Some p -> p.asap + region_span p
        | None -> 0
      in
      let max_src_stage =
        List.fold_left (fun acc r -> max acc (avail r)) 0 ti.ti.Instr.srcs
      in
      if ti.ti_stages > 1 then begin
        (* pinned region: operands latched at the entry boundary, so the
           region starts strictly after every producing stage; the result
           is registered at the exit, so downstream arrival is 0 *)
        let s =
          List.fold_left
            (fun acc r ->
              match Hashtbl.find_opt producer r with
              | Some p ->
                max acc (p.asap + if p.ti_stages > 1 then p.ti_stages else 1)
              | None -> acc)
            0 ti.ti.Instr.srcs
        in
        ti.asap <- s;
        match ti.ti.Instr.dst with
        | Some d -> Hashtbl.replace finish d 0.0
        | None -> ()
      end
      else begin
        let arrival r =
          match Hashtbl.find_opt producer r with
          | Some p when p.ti_stages = 1 && p.asap = max_src_stage ->
            Option.value
              (Option.bind p.ti.Instr.dst (Hashtbl.find_opt finish))
              ~default:0.0
          | Some _ | None -> 0.0
        in
        let start =
          List.fold_left (fun acc r -> Float.max acc (arrival r)) 0.0
            ti.ti.Instr.srcs
        in
        let s, f =
          if start +. ti.ti_delay > target_ns && start > 0.0 then
            max_src_stage + 1, ti.ti_delay
          else max_src_stage, start +. ti.ti_delay
        in
        ti.asap <- s;
        match ti.ti.Instr.dst with
        | Some d -> Hashtbl.replace finish d f
        | None -> ()
      end)
    instrs;
  let asap_stage_count =
    1
    + List.fold_left
        (fun acc ti -> max acc (ti.asap + ti.ti_stages - 1))
        0 instrs
  in
  (* ---- ALAP: the backward mirror within the ASAP stage count ----
     [tail d] is the combinational time from the producer of [d] starting
     to the end of its longest same-stage downstream chain. A sink may sit
     in the last stage; an instruction slides as late as its earliest
     consumer allows, crossing one boundary back when the downstream chain
     would no longer fit the budget. *)
  let tail : (Instr.vreg, float) Hashtbl.t = Hashtbl.create 64 in
  (* the latest stage a producer may occupy to satisfy consumer [c]: its
     own stage for single-cycle consumers (combinational chaining), one
     earlier for staged consumers (operands latched at the region entry) *)
  let allowed c = c.alap - if c.ti_stages > 1 then 1 else 0 in
  List.iter
    (fun ti ->
      let cons =
        match ti.ti.Instr.dst with
        | Some d -> Option.value (Hashtbl.find_opt consumers d) ~default:[]
        | None -> []
      in
      (if ti.ti_stages > 1 then
         (* pinned region: no mobility *)
         ti.alap <- ti.asap
       else
         match cons with
         | [] ->
           ti.alap <- asap_stage_count - 1
         | _ ->
           let min_cons_alap =
             List.fold_left (fun acc c -> min acc (allowed c)) max_int cons
           in
           let tail_in =
             List.fold_left
               (fun acc c ->
                 if c.ti_stages = 1 && allowed c = min_cons_alap then
                   Float.max acc
                     (Option.value
                        (Option.bind c.ti.Instr.dst (Hashtbl.find_opt tail))
                        ~default:c.ti_delay)
                 else acc)
               0.0 cons
           in
           if tail_in +. ti.ti_delay > target_ns && tail_in > 0.0 then
             ti.alap <- min_cons_alap - 1
           else ti.alap <- min_cons_alap);
      (* never earlier than the ASAP level: mobility stays non-negative *)
      if ti.alap < ti.asap then ti.alap <- ti.asap;
      match ti.ti.Instr.dst with
      | Some d ->
        let t_here =
          if ti.ti_stages > 1 then ti.ti_delay
          else
            let cons_same =
              List.fold_left
                (fun acc c ->
                  if c.ti_stages = 1 && c.alap = ti.alap then
                    Float.max acc
                      (Option.value
                         (Option.bind c.ti.Instr.dst (Hashtbl.find_opt tail))
                         ~default:c.ti_delay)
                  else acc)
                0.0 cons
            in
            ti.ti_delay +. cons_same
        in
        Hashtbl.replace tail d t_here
      | None -> ())
    (List.rev instrs);
  { dp; widths; target_ns; instrs; producer; consumers; asap_stage_count }

(* ------------------------------------------------------------------ *)
(* Accounting over a stage assignment                                  *)
(* ------------------------------------------------------------------ *)

(* The latch-placement model charges the edge producer(r) -> consumer with
   one latch per crossed stage boundary; a register's chain is as long as
   its furthest consumer, and output-port registers are carried to the
   final boundary at [stage_count]. *)

let last_uses (t : t) ~(stage_of : tinstr -> int) ~(stage_count : int) :
    (Instr.vreg, int) Hashtbl.t =
  let last_use : (Instr.vreg, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ti ->
      List.iter
        (fun r ->
          let cur = Option.value (Hashtbl.find_opt last_use r) ~default:(-1) in
          if stage_of ti > cur then Hashtbl.replace last_use r (stage_of ti))
        ti.ti.Instr.srcs)
    t.instrs;
  List.iter
    (fun (p : Proc.port) -> Hashtbl.replace last_use p.Proc.port_reg stage_count)
    t.dp.Graph.output_ports;
  last_use

let latch_bits (t : t) ~(stage_of : tinstr -> int) ~(stage_count : int) : int =
  Hashtbl.fold
    (fun r use_stage acc ->
      let def_stage =
        match Hashtbl.find_opt t.producer r with
        | Some p -> stage_of p
        | None -> 0  (* external input: available at stage 0 *)
      in
      acc + (max 0 (use_stage - def_stage) * reg_width t r))
    (last_uses t ~stage_of ~stage_count)
    0

let feedback_bits (t : t) : int =
  List.fold_left
    (fun acc (_, kind, _) -> acc + kind.Roccc_cfront.Ast.bits)
    0 t.dp.Graph.proc.Proc.feedbacks

(* Worst combinational path per stage: an operand produced in the same
   stage arrives at its producer's finish time, one produced earlier (or
   externally) at the stage boundary. A multi-stage region charges its
   per-stage delay to every stage it occupies; its operands are latched at
   the entry boundary and its result registered at the exit, so nothing
   chains across the region walls. *)
let stage_delays (t : t) ~(stage_of : tinstr -> int) ~(stage_count : int) :
    float array =
  let delays = Array.make (max 1 stage_count) 0.0 in
  let finish : (Instr.vreg, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ti ->
      let s = stage_of ti in
      if ti.ti_stages > 1 then begin
        for j = max 0 s to min (s + ti.ti_stages - 1) (Array.length delays - 1)
        do
          if ti.ti_delay > delays.(j) then delays.(j) <- ti.ti_delay
        done;
        match ti.ti.Instr.dst with
        | Some d -> Hashtbl.replace finish d 0.0
        | None -> ()
      end
      else begin
        let start =
          List.fold_left
            (fun acc r ->
              match Hashtbl.find_opt t.producer r with
              | Some p when p.ti_stages = 1 && stage_of p = s ->
                Float.max acc
                  (Option.value
                     (Option.bind p.ti.Instr.dst (Hashtbl.find_opt finish))
                     ~default:0.0)
              | Some _ | None -> acc)
            0.0 ti.ti.Instr.srcs
        in
        let f = start +. ti.ti_delay in
        (match ti.ti.Instr.dst with
        | Some d -> Hashtbl.replace finish d f
        | None -> ());
        if s >= 0 && s < Array.length delays && f > delays.(s) then
          delays.(s) <- f
      end)
    t.instrs;
  delays

(* Slack of the edge producer(r) -> [consumer] under a stage assignment:
   the number of latch boundaries the value crosses to reach this use. *)
let edge_slack (t : t) ~(stage_of : tinstr -> int) (consumer : tinstr)
    (r : Instr.vreg) : int =
  let def_stage =
    match Hashtbl.find_opt t.producer r with
    | Some p -> stage_of p
    | None -> 0
  in
  max 0 (stage_of consumer - def_stage)

(* ------------------------------------------------------------------ *)
(* Feedback structure                                                  *)
(* ------------------------------------------------------------------ *)

(** Per feedback signal, the instructions on its LPR-to-SNX path (forward
    reachability from the LPRs intersected with backward reachability from
    the SNXs, plus the LPRs themselves). The pipeliner constrains each such
    path to a single stage — "each pipeline stage is an instance of single
    iteration in the for-loop body" — and the retimer pins it. *)
let feedback_paths (t : t) : (string * tinstr list) list =
  List.filter_map
    (fun (name, _, _) ->
      let lprs =
        List.filter
          (fun ti ->
            match ti.ti.Instr.op with
            | Instr.Lpr n -> String.equal n name
            | _ -> false)
          t.instrs
      in
      let snxs =
        List.filter
          (fun ti ->
            match ti.ti.Instr.op with
            | Instr.Snx n -> String.equal n name
            | _ -> false)
          t.instrs
      in
      if snxs = [] then None
      else begin
        let fwd = Hashtbl.create 16 in
        let rec forward ti =
          if not (Hashtbl.mem fwd ti.ti_index) then begin
            Hashtbl.replace fwd ti.ti_index ();
            match ti.ti.Instr.dst with
            | Some d ->
              List.iter forward
                (Option.value (Hashtbl.find_opt t.consumers d) ~default:[])
            | None -> ()
          end
        in
        List.iter forward lprs;
        let bwd = Hashtbl.create 16 in
        let rec backward ti =
          if not (Hashtbl.mem bwd ti.ti_index) then begin
            Hashtbl.replace bwd ti.ti_index ();
            List.iter
              (fun r ->
                match Hashtbl.find_opt t.producer r with
                | Some p -> backward p
                | None -> ())
              ti.ti.Instr.srcs
          end
        in
        List.iter backward snxs;
        let on_path ti =
          Hashtbl.mem fwd ti.ti_index && Hashtbl.mem bwd ti.ti_index
        in
        let members =
          List.filter (fun ti -> on_path ti || List.memq ti lprs) t.instrs
        in
        Some (name, members)
      end)
    t.dp.Graph.proc.Proc.feedbacks
