(** Data-path pipelining (paper §4.2.3): latch placement over the {!Timing}
    netlist, followed by slack-based retiming that slides low-fanout
    instructions across stage boundaries to minimize latch bits at the same
    clock target. Every SNX gets a latch feeding its LPR, and each
    LPR-to-SNX feedback path is constrained to a single stage so the
    pipeline accepts one iteration per cycle. *)

module Instr = Roccc_vm.Instr

exception Error of string

val default_target_ns : float
(** Default combinational budget per stage. *)

type staged_instr = {
  si : Instr.instr;
  si_node : int;  (** owning data-path node id *)
  mutable stage : int;  (** start stage of the instruction's region *)
  si_delay : float;  (** per-stage combinational delay *)
  si_stages : int;  (** stages occupied: >1 = pinned multi-stage region *)
}

type t = {
  dp : Graph.t;
  widths : Widths.t;
  timing : Timing.t;  (** the timed netlist staged over *)
  instrs : staged_instr list;  (** topological order *)
  stage_count : int;
  stage_delays : float array;  (** worst combinational path per stage *)
  clock_mhz : float;
  latch_bits : int;  (** total pipeline-register bits *)
  greedy_latch_bits : int;  (** latch bits before retiming *)
  retime_moves : int;  (** accepted retiming moves *)
  feedback_bits : int;  (** SNX register bits *)
  target_ns : float;
  def_stage : (Instr.vreg, int) Hashtbl.t;
  instr_stage : (Instr.instr, int) Hashtbl.t;
}

val latency : t -> int
(** Number of pipeline stages. *)

val outputs_per_cycle : t -> int
(** Results produced per steady-state cycle (one iteration enters each
    cycle; equals the number of output ports). *)

val stage_of_def : t -> Instr.vreg -> int
(** Stage where a register's value is produced (0 for external inputs). *)

val stage_of_instr : t -> Instr.instr -> int
(** Stage an instruction executes in. *)

val use_delay : t -> Instr.instr -> Instr.vreg -> int
(** Latch boundaries operand [r] crosses to reach instruction [i] — the
    delay-chain depth the VHDL generator materializes for this use. *)

val register_bits : t -> int
(** All pipeline flip-flop bits this staging implies: latch bits plus the
    SNX feedback registers. The area model charges registers from here. *)

val staged_regions : t -> (Instr.instr * int * int) list
(** Pinned multi-stage regions as [(instr, start_stage, stages)]. Empty
    for a purely single-cycle data path. *)

val multi_stage_ops : t -> int
(** Number of multi-stage operators in the staging. *)

val build :
  ?target_ns:float -> ?stage_budget:int -> ?decomp:Delay.decomp ->
  ?retime:bool -> Graph.t -> Widths.t -> t
(** Stage the data path: greedy delay-chunked placement at the ASAP levels
    of the timed netlist, feedback paths collapsed to one stage, then —
    unless [~retime:false] — the {!retime} pass. Raises {!Error} if a
    feedback path cannot fit a single stage. *)

val retime : t -> t
(** Slack-based retiming: slide unpinned instructions across one stage
    boundary at a time, accepting only moves that strictly decrease total
    latch bits while keeping the worst per-stage delay within the current
    schedule's. LPR/SNX instructions and feedback paths are pinned.
    Idempotent at a fixpoint; never increases latch bits or stage count. *)

val describe : t -> string

val verify : t -> unit
(** Invariant check on a staged pipeline: every data-path instruction
    staged once within [0, stage_count), forward dataflow across stages
    (LPRs excepted), multi-stage regions inside the schedule with no
    consumer reaching into a region (producers of a staged instruction
    retire before its entry boundary; its result exists only past the exit
    register), each feedback LPR/SNX pair in a single stage, and the
    recorded latch/feedback bit totals balancing an independent
    recomputation from the stage assignment. Raises {!Error}. *)
