(** Data-path pipelining (paper §4.2.3): latch placement driven by
    per-instruction delay estimation. Every SNX gets a latch feeding its
    LPR, and each LPR-to-SNX feedback path is constrained to a single stage
    so the pipeline accepts one iteration per cycle. *)

module Instr = Roccc_vm.Instr

exception Error of string

val default_target_ns : float
(** Default combinational budget per stage. *)

type staged_instr = {
  si : Instr.instr;
  si_node : int;  (** owning data-path node id *)
  mutable stage : int;
  si_delay : float;
}

type t = {
  dp : Graph.t;
  widths : Widths.t;
  instrs : staged_instr list;  (** topological order *)
  stage_count : int;
  stage_delays : float array;  (** worst combinational path per stage *)
  clock_mhz : float;
  latch_bits : int;  (** total pipeline-register bits *)
  feedback_bits : int;  (** SNX register bits *)
  target_ns : float;
}

val latency : t -> int
(** Number of pipeline stages. *)

val outputs_per_cycle : t -> int
(** Results produced per steady-state cycle (one iteration enters each
    cycle; equals the number of output ports). *)

val build : ?target_ns:float -> Graph.t -> Widths.t -> t
(** Stage the data path. Raises {!Error} if a feedback path cannot fit a
    single stage. *)

val describe : t -> string

val verify : t -> unit
(** Invariant check on a staged pipeline: every data-path instruction
    staged once within [0, stage_count), forward dataflow across stages
    (LPRs excepted), each feedback LPR/SNX pair in a single stage, and the
    recorded latch/feedback bit totals balancing a recomputation from the
    stage assignment. Raises {!Error}. *)
