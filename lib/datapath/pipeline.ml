(** Data-path pipelining (paper §4.2.3): latches are placed automatically
    based on per-instruction delay estimation; an SNX instruction always gets
    a latch feeding its LPR, and the LPR-to-SNX feedback path must complete
    within a single stage so the pipeline accepts one iteration per cycle
    ("each pipeline stage is an instance of single iteration in the for-loop
    body"). *)

module Instr = Roccc_vm.Instr
module Proc = Roccc_vm.Proc

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(** Default combinational budget per stage, in nanoseconds. *)
let default_target_ns = 5.0

type staged_instr = {
  si : Instr.instr;
  si_node : int;       (** owning data-path node id *)
  mutable stage : int;
  si_delay : float;
}

type t = {
  dp : Graph.t;
  widths : Widths.t;
  instrs : staged_instr list;      (** topological order *)
  stage_count : int;
  stage_delays : float array;      (** worst combinational path per stage *)
  clock_mhz : float;
  latch_bits : int;                (** total pipeline-register bits *)
  feedback_bits : int;             (** SNX register bits *)
  target_ns : float;
}

let latency (p : t) = p.stage_count

(** Throughput in results per clock: one iteration enters per cycle, so it
    equals the number of outputs the data path produces per iteration. *)
let outputs_per_cycle (p : t) = List.length p.dp.Graph.output_ports

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let build ?(target_ns = default_target_ns) (dp : Graph.t)
    (widths : Widths.t) : t =
  (* Flatten in (level, node, index) order — topological by construction. *)
  let consts = Graph.constant_values dp in
  let instrs =
    List.concat_map
      (fun (n : Graph.node) ->
        List.map
          (fun (i : Instr.instr) ->
            let sw = List.map (Widths.width widths) i.Instr.srcs in
            let const_operands =
              List.map (fun r -> Hashtbl.find_opt consts r) i.Instr.srcs
            in
            { si = i;
              si_node = n.Graph.id;
              stage = 0;
              si_delay =
                Delay.instr_delay_ns ~const_operands i.Instr.op i.Instr.kind
                  sw })
          n.Graph.instrs)
      dp.Graph.nodes
  in
  (* producer map: reg -> staged instr *)
  let producer : (Instr.vreg, staged_instr) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun si ->
      match si.si.Instr.dst with
      | Some d -> Hashtbl.replace producer d si
      | None -> ())
    instrs;
  let src_stage r =
    match Hashtbl.find_opt producer r with
    | Some p -> Some p.stage
    | None -> None  (* external input: available at stage 0 start *)
  in
  (* ---- pass 1: greedy delay-driven staging ---- *)
  let finish : (Instr.vreg, float) Hashtbl.t = Hashtbl.create 64 in
  let is_lpr si = match si.si.Instr.op with Instr.Lpr _ -> true | _ -> false in
  List.iter
    (fun si ->
      let max_src_stage =
        List.fold_left
          (fun acc r ->
            match src_stage r with Some s -> max acc s | None -> acc)
          0 si.si.Instr.srcs
      in
      let arrival r =
        match Hashtbl.find_opt producer r with
        | Some p when p.stage = max_src_stage ->
          Option.value
            (Option.bind p.si.Instr.dst (Hashtbl.find_opt finish))
            ~default:0.0
        | Some _ | None -> 0.0
      in
      let start =
        List.fold_left (fun acc r -> Float.max acc (arrival r)) 0.0
          si.si.Instr.srcs
      in
      let s, t =
        if start +. si.si_delay > target_ns && start > 0.0 then
          (* operands latched at a new stage boundary *)
          max_src_stage + 1, si.si_delay
        else max_src_stage, start +. si.si_delay
      in
      si.stage <- s;
      (match si.si.Instr.dst with
      | Some d -> Hashtbl.replace finish d t
      | None -> ()))
    instrs;
  (* ---- pass 2: feedback paths collapse onto the SNX stage ---- *)
  (* For each feedback signal: instrs reachable forward from its LPRs and
     backward from its SNX must share one stage. *)
  let consumers : (Instr.vreg, staged_instr list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun si ->
      List.iter
        (fun r ->
          let cur = Option.value (Hashtbl.find_opt consumers r) ~default:[] in
          Hashtbl.replace consumers r (si :: cur))
        si.si.Instr.srcs)
    instrs;
  let feedback_names =
    List.map (fun (n, _, _) -> n) dp.Graph.proc.Proc.feedbacks
  in
  List.iter
    (fun name ->
      let lprs =
        List.filter
          (fun si ->
            match si.si.Instr.op with
            | Instr.Lpr n -> String.equal n name
            | _ -> false)
          instrs
      in
      let snxs =
        List.filter
          (fun si ->
            match si.si.Instr.op with
            | Instr.Snx n -> String.equal n name
            | _ -> false)
          instrs
      in
      if snxs <> [] then begin
        (* forward reachability from LPR defs *)
        let fwd = Hashtbl.create 16 in
        let rec forward si =
          if not (Hashtbl.mem fwd si.si) then begin
            Hashtbl.replace fwd si.si ();
            match si.si.Instr.dst with
            | Some d ->
              List.iter forward
                (Option.value (Hashtbl.find_opt consumers d) ~default:[])
            | None -> ()
          end
        in
        List.iter forward lprs;
        (* backward reachability from SNX sources *)
        let bwd = Hashtbl.create 16 in
        let rec backward si =
          if not (Hashtbl.mem bwd si.si) then begin
            Hashtbl.replace bwd si.si ();
            List.iter
              (fun r ->
                match Hashtbl.find_opt producer r with
                | Some p -> backward p
                | None -> ())
              si.si.Instr.srcs
          end
        in
        List.iter backward snxs;
        let path =
          List.filter
            (fun si -> Hashtbl.mem fwd si.si && Hashtbl.mem bwd si.si)
            instrs
        in
        let s_star = List.fold_left (fun acc si -> max acc si.stage) 0 path in
        List.iter (fun si -> si.stage <- s_star) path;
        List.iter (fun si -> si.stage <- s_star) lprs
      end)
    feedback_names;
  (* ---- pass 3: forward monotonicity fixup ---- *)
  List.iter
    (fun si ->
      if not (is_lpr si) then begin
        let m =
          List.fold_left
            (fun acc r ->
              match src_stage r with Some s -> max acc s | None -> acc)
            si.stage si.si.Instr.srcs
        in
        si.stage <- m
      end)
    instrs;
  (* ---- feedback sanity: LPR and SNX share a stage ---- *)
  List.iter
    (fun name ->
      let stages op_match =
        List.filter_map
          (fun si ->
            match si.si.Instr.op with
            | op when op_match op -> Some si.stage
            | _ -> None)
          instrs
      in
      let lpr_stages =
        stages (function Instr.Lpr n -> String.equal n name | _ -> false)
      in
      let snx_stages =
        stages (function Instr.Snx n -> String.equal n name | _ -> false)
      in
      match lpr_stages, snx_stages with
      | _, [] | [], _ -> ()
      | ls, ss ->
        List.iter
          (fun l ->
            List.iter
              (fun s ->
                if l <> s then
                  errf
                    "pipeline: feedback %s spans stages %d and %d — the \
                     LPR/SNX loop must fit one stage"
                    name l s)
              ss)
          ls)
    feedback_names;
  let stage_count =
    1 + List.fold_left (fun acc si -> max acc si.stage) 0 instrs
  in
  (* ---- per-stage combinational delay ---- *)
  let stage_delays = Array.make stage_count 0.0 in
  let finish2 : (Instr.vreg, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun si ->
      let start =
        List.fold_left
          (fun acc r ->
            match Hashtbl.find_opt producer r with
            | Some p when p.stage = si.stage ->
              Float.max acc
                (Option.value
                   (Option.bind p.si.Instr.dst (Hashtbl.find_opt finish2))
                   ~default:0.0)
            | Some _ | None -> acc)
          0.0 si.si.Instr.srcs
      in
      let f = start +. si.si_delay in
      (match si.si.Instr.dst with
      | Some d -> Hashtbl.replace finish2 d f
      | None -> ());
      if f > stage_delays.(si.stage) then stage_delays.(si.stage) <- f)
    instrs;
  let worst = Array.fold_left Float.max 0.0 stage_delays in
  let clock_mhz = Delay.clock_mhz_of_stage_delay worst in
  (* ---- latch accounting ---- *)
  (* A register defined at stage s and consumed at stage u > s (or exported)
     crosses u - s latch boundaries. *)
  let last_use : (Instr.vreg, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun si ->
      List.iter
        (fun r ->
          let cur = Option.value (Hashtbl.find_opt last_use r) ~default:(-1) in
          if si.stage > cur then Hashtbl.replace last_use r si.stage)
        si.si.Instr.srcs)
    instrs;
  List.iter
    (fun (p : Proc.port) ->
      Hashtbl.replace last_use p.Proc.port_reg stage_count)
    dp.Graph.output_ports;
  let latch_bits =
    Hashtbl.fold
      (fun r use_stage acc ->
        let def_stage =
          match Hashtbl.find_opt producer r with
          | Some p -> p.stage
          | None -> 0  (* external input *)
        in
        let crossings = max 0 (use_stage - def_stage) in
        acc + (crossings * (try Widths.width widths r with _ -> 32)))
      last_use 0
  in
  let feedback_bits =
    List.fold_left
      (fun acc (_, kind, _) -> acc + kind.Roccc_cfront.Ast.bits)
      0 dp.Graph.proc.Proc.feedbacks
  in
  { dp; widths; instrs; stage_count; stage_delays; clock_mhz; latch_bits;
    feedback_bits; target_ns }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let describe (p : t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "pipeline %s: %d stage(s), clock %.1f MHz, %d latch bits, %d feedback \
        bits\n"
       p.dp.Graph.proc.Proc.pname p.stage_count p.clock_mhz p.latch_bits
       p.feedback_bits);
  Array.iteri
    (fun s d ->
      let count = List.length (List.filter (fun si -> si.stage = s) p.instrs) in
      Buffer.add_string buf
        (Printf.sprintf "  stage %d: %d instr(s), %.2f ns\n" s count d))
    p.stage_delays;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Well-formedness                                                     *)
(* ------------------------------------------------------------------ *)

(** Invariants of a staged pipeline: every data-path instruction is staged
    exactly once, stages lie in [0, stage_count), dataflow is forward
    (a producer's stage never exceeds its consumer's, LPRs excepted — they
    read the previous iteration), each feedback's LPR/SNX pair shares one
    stage, and the recorded latch/feedback bit counts balance against a
    recomputation from the stage assignment. Raises {!Error}. *)
let verify (p : t) : unit =
  let n_staged = List.length p.instrs in
  let n_graph = Graph.instr_count p.dp in
  if n_staged <> n_graph then
    errf "pipeline: %d staged instruction(s) but the data path has %d"
      n_staged n_graph;
  if Array.length p.stage_delays <> p.stage_count then
    errf "pipeline: %d stage delay(s) for %d stage(s)"
      (Array.length p.stage_delays) p.stage_count;
  List.iter
    (fun si ->
      if si.stage < 0 || si.stage >= p.stage_count then
        errf "pipeline: instruction staged at %d outside [0,%d)" si.stage
          p.stage_count)
    p.instrs;
  let producer : (Instr.vreg, staged_instr) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun si ->
      match si.si.Instr.dst with
      | Some d -> Hashtbl.replace producer d si
      | None -> ())
    p.instrs;
  List.iter
    (fun si ->
      match si.si.Instr.op with
      | Instr.Lpr _ -> ()  (* reads the feedback register, not a wire *)
      | _ ->
        List.iter
          (fun r ->
            match Hashtbl.find_opt producer r with
            | Some prod when prod.stage > si.stage ->
              errf
                "pipeline: value v%d produced at stage %d but consumed at \
                 stage %d"
                r prod.stage si.stage
            | Some _ | None -> ())
          si.si.Instr.srcs)
    p.instrs;
  List.iter
    (fun (name, _, _) ->
      let stages op_match =
        List.filter_map
          (fun si ->
            match si.si.Instr.op with
            | op when op_match op -> Some si.stage
            | _ -> None)
          p.instrs
      in
      let lpr_stages =
        stages (function Instr.Lpr n -> String.equal n name | _ -> false)
      in
      let snx_stages =
        stages (function Instr.Snx n -> String.equal n name | _ -> false)
      in
      match lpr_stages, snx_stages with
      | _, [] | [], _ -> ()
      | ls, ss ->
        List.iter
          (fun l ->
            List.iter
              (fun s ->
                if l <> s then
                  errf "pipeline: feedback %s latched across stages %d and %d"
                    name l s)
              ss)
          ls)
    p.dp.Graph.proc.Proc.feedbacks;
  (* latch balance: recompute register crossings from the stage assignment *)
  let last_use : (Instr.vreg, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun si ->
      List.iter
        (fun r ->
          let cur = Option.value (Hashtbl.find_opt last_use r) ~default:(-1) in
          if si.stage > cur then Hashtbl.replace last_use r si.stage)
        si.si.Instr.srcs)
    p.instrs;
  List.iter
    (fun (port : Proc.port) ->
      Hashtbl.replace last_use port.Proc.port_reg p.stage_count)
    p.dp.Graph.output_ports;
  let latch_bits =
    Hashtbl.fold
      (fun r use_stage acc ->
        let def_stage =
          match Hashtbl.find_opt producer r with
          | Some prod -> prod.stage
          | None -> 0
        in
        let crossings = max 0 (use_stage - def_stage) in
        acc + (crossings * (try Widths.width p.widths r with _ -> 32)))
      last_use 0
  in
  if latch_bits <> p.latch_bits then
    errf "pipeline: latch bits out of balance — recorded %d, stages imply %d"
      p.latch_bits latch_bits;
  let feedback_bits =
    List.fold_left
      (fun acc (_, kind, _) -> acc + kind.Roccc_cfront.Ast.bits)
      0 p.dp.Graph.proc.Proc.feedbacks
  in
  if feedback_bits <> p.feedback_bits then
    errf "pipeline: feedback bits out of balance — recorded %d, expected %d"
      p.feedback_bits feedback_bits
